package prodpred

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: build the paper's two-machine example, combine stochastic values,
// monitor a simulated platform, and predict an SOR run.
func TestFacadeEndToEnd(t *testing.T) {
	// Stochastic values and arithmetic.
	a := FromPercent(12, 5)
	b := FromPercent(12, 30)
	if a.Mean != 12 || math.Abs(b.Spread-3.6) > 1e-12 {
		t.Fatalf("values: %v %v", a, b)
	}
	sum := a.AddUnrelated(b)
	if sum.Mean != 24 {
		t.Errorf("sum=%v", sum)
	}
	m, err := Max(LargestMagnitude, a, b)
	if err != nil || m != b {
		t.Errorf("max=%v err=%v", m, err)
	}

	// Scheduling on the §1.2 example.
	alloc, err := UnitAllocation(100, []Value{a, b}, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0]+alloc[1] != 100 || alloc[0] <= alloc[1] {
		t.Errorf("alloc=%v", alloc)
	}

	// Simulated platform + NWS + structural prediction.
	plat := Platform1()
	env, err := NewDedicatedEnv(plat)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewCPUMonitor(env, 0, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	v, err := mon.Report(300)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Mean-1) > 1e-9 {
		t.Errorf("dedicated availability forecast=%v", v)
	}

	weights := make([]float64, plat.Size())
	machines := make([]Machine, plat.Size())
	for i := range weights {
		machines[i] = plat.Machine(i)
		weights[i] = machines[i].ElemRate
	}
	part, err := NewWeightedPartition(600, weights)
	if err != nil {
		t.Fatal(err)
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &SORConfig{
		N: 600, Iterations: 10, Partition: part, Machines: machines,
		Link: link, MaxStrategy: LargestMean,
	}
	params := cfg.DedicatedParams()
	params[LoadParam(0)] = NewValue(0.48, 0.05)
	pred, err := cfg.Predict(params)
	if err != nil {
		t.Fatal(err)
	}
	if pred.IsPoint() || pred.Mean <= 0 {
		t.Errorf("prediction=%v", pred)
	}

	// Experiments registry is reachable.
	if len(Experiments()) < 20 {
		t.Errorf("experiments=%d", len(Experiments()))
	}
	if _, err := LookupExperiment("table1"); err != nil {
		t.Error(err)
	}
	if _, err := LookupExperiment("nope"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestFacadeSchedulingExtensions(t *testing.T) {
	unit := []Value{FromPercent(12, 5), FromPercent(12, 30)}

	// Objective-tuned allocation through the facade.
	alloc, makespan, err := OptimizeAllocation(60, unit, func(v Value) float64 { return v.Hi() })
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0]+alloc[1] != 60 || makespan.Mean <= 0 {
		t.Errorf("alloc=%v makespan=%v", alloc, makespan)
	}

	// Service-range promise.
	p, err := PromiseFor(makespan, 0.05)
	if err != nil || p < makespan.Mean {
		t.Errorf("promise=%g err=%v", p, err)
	}

	// Time-balanced partitioning.
	plat := Platform1()
	machines := make([]Machine, plat.Size())
	loads := make([]Value, plat.Size())
	for i := range machines {
		machines[i] = plat.Machine(i)
		loads[i] = Point(1)
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := TimeBalancedPartition(200, machines, loads, link, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeDistributedAndModal(t *testing.T) {
	// TCP backend through the facade.
	part, err := NewWeightedPartition(33, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewTCPBackend(part)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGrid(33)
	g.SetBoundary(func(x, y float64) float64 { return x + y })
	omega := OptimalOmega(33)
	if omega <= 1 || omega >= 2 {
		t.Errorf("omega=%g", omega)
	}
	res, err := backend.Run(g, omega, 50)
	if err != nil || res.Iterations != 50 {
		t.Fatalf("TCP run res=%+v err=%v", res, err)
	}

	// Relation detection through the facade.
	xs := make([]float64, 64)
	ys := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = -float64(i)
	}
	kind, rho, err := DetectRelation(xs, ys, 0.35)
	if err != nil || kind != RelatedKind || rho > -0.9 {
		t.Errorf("DetectRelation=%v rho=%g err=%v", kind, rho, err)
	}

	// Empirical values through the facade.
	e, err := NewEmpirical([]float64{1, 2, 3, 4})
	if err != nil || e.N() != 4 {
		t.Fatalf("NewEmpirical err=%v", err)
	}
	if s := e.Summary(); s.Mean != 2.5 {
		t.Errorf("summary=%v", s)
	}

	// Modal analysis through the facade (reuse a bursty trace).
	proc, err := BurstyLoad(3)
	if err != nil {
		t.Fatal(err)
	}
	_, vals, err := RecordLoad(proc, 0, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := FitModes(vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mm.K() < 2 {
		t.Errorf("modes=%d", mm.K())
	}
	v, _, err := ModalStochasticValue(mm, vals)
	if err != nil || v.Spread <= 0 {
		t.Errorf("modal value=%v err=%v", v, err)
	}
	if _, err := AnalyzeBurstiness(mm, vals); err != nil {
		t.Error(err)
	}
}

// TestFacadePredictionService round-trips the fault-injection and
// prediction-service exports: build a fault-injected service for a paper
// platform through the facade only, warm it up, and predict under both
// healthy and degraded monitors.
func TestFacadePredictionService(t *testing.T) {
	in := NewFaultInjector(5)
	if err := in.Set(0, FaultSchedule{
		DropProb:    0.3,
		SpikeProb:   0.05,
		SpikeFactor: DefaultSpikeFactor,
		Outages:     []OutageWindow{{Start: 100, End: 220}},
	}); err != nil {
		t.Fatal(err)
	}
	cfg, err := SimulatedPredictConfig(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Injector = in
	svc, err := NewPredictionService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AdvanceTo(300); err != nil {
		t.Fatal(err)
	}

	pred, err := svc.Predict(PredictRequest{N: 120, Iterations: 6, MaxStrategy: LargestMean})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Value.Mean <= 0 || pred.Value.IsPoint() {
		t.Errorf("prediction=%v", pred.Value)
	}
	if len(pred.Loads) != Platform2().Size() {
		t.Fatalf("loads=%d", len(pred.Loads))
	}
	var rep MachineReport = pred.Loads[0]
	var gaps GapStats = rep.Gaps
	if gaps.Dropped == 0 || gaps.Outage == 0 {
		t.Errorf("machine 0 gaps=%+v, want drops and outage misses", gaps)
	}
	var stats FaultStats = in.Stats(0)
	if stats.Drops == 0 || stats.OutageHits == 0 || stats.Total() == 0 {
		t.Errorf("injector stats empty: %+v", stats)
	}

	// Route the same request through a registry, as predictd does.
	reg := NewPredictRegistry()
	if err := reg.Register(svc); err != nil {
		t.Fatal(err)
	}
	routed, err := reg.Predict(PredictRequest{
		Platform: svc.Name(), N: 120, Iterations: 6, MaxStrategy: LargestMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	if routed.Value != pred.Value {
		t.Errorf("registry routing changed the prediction: %v vs %v", routed.Value, pred.Value)
	}

	// The conservative prior is the documented fallback bound.
	if DefaultCPUPrior.Mean != 0.5 || DefaultCPUPrior.Spread != 0.5 {
		t.Errorf("prior=%v", DefaultCPUPrior)
	}
}

// TestFacadeCalibration round-trips the online-accuracy exports: a
// standalone AccuracyTracker, the closed Predict -> Observe loop on a
// PredictionService, and registry-routed observation — facade types only.
func TestFacadeCalibration(t *testing.T) {
	// Standalone tracker: feed dead-center outcomes until the conformal
	// multiplier tightens below identity.
	tr, err := NewAccuracyTracker(CalibrationConfig{TargetCapture: DefaultTargetCapture})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAccuracyTracker(CalibrationConfig{TargetCapture: 2}); err == nil {
		t.Error("invalid capture target should fail")
	}
	for i := 0; i < 24; i++ {
		raw := NewValue(10, 2)
		out := CalibrationOutcome{
			ID: uint64(i + 1), Time: float64(i),
			Raw: raw, Calibrated: tr.Calibrate(raw),
			Actual: 10 + 0.02*float64(i%5-2),
		}
		if _, fired := tr.Observe(out); fired {
			t.Fatalf("outcome %d: unexpected drift", i)
		}
	}
	snap := tr.Snapshot()
	if snap.Observed != 24 || snap.Scale >= 1 {
		t.Errorf("snapshot=%+v, want 24 observed and a tightened scale", snap)
	}
	if snap.Target != DefaultTargetCapture {
		t.Errorf("target=%g", snap.Target)
	}

	// Closed loop through a service and a registry.
	cfg, err := SimulatedPredictConfig(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewPredictionService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AdvanceTo(200); err != nil {
		t.Fatal(err)
	}
	pred, err := svc.Predict(PredictRequest{N: 120, Iterations: 6, MaxStrategy: LargestMean})
	if err != nil {
		t.Fatal(err)
	}
	if pred.ID == 0 || pred.CalibrationScale != 1 || pred.Value != pred.Raw {
		t.Errorf("uncalibrated prediction: id=%d scale=%g", pred.ID, pred.CalibrationScale)
	}
	reg := NewPredictRegistry()
	if err := reg.Register(svc); err != nil {
		t.Fatal(err)
	}
	var got CalibrationSnapshot
	got, err = reg.Observe(svc.Name(), pred.ID, pred.Value.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if got.Observed != 1 || got.RawCapture != 1 {
		t.Errorf("after observe: %+v", got)
	}
	if _, err := reg.Observe("nope", 1, 1); err == nil {
		t.Error("unknown platform should fail")
	}

	// The shared staleness-widening seam is exported.
	if StalenessFactor(0) != 1 || StalenessFactor(4) != 1+4*StalenessDegradeRate {
		t.Errorf("staleness factor: %g %g", StalenessFactor(0), StalenessFactor(4))
	}
	var _ DriftEvent
	if DriftReasonCUSUM == DriftReasonModeCount {
		t.Error("drift reasons must be distinct")
	}
}

func TestFacadeSampleRoundTrip(t *testing.T) {
	xs := []float64{11, 12, 13, 12, 11.5, 12.5}
	v, err := FromSample(xs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Mean < 11.9 || v.Mean > 12.1 {
		t.Errorf("mean=%g", v.Mean)
	}
	if _, err := FromSample(nil); err == nil {
		t.Error("empty sample should fail")
	}
	if p := Point(5); !p.IsPoint() {
		t.Error("Point should be a point value")
	}
	if _, err := Min(LargestMean, Point(1), Point(2)); err != nil {
		t.Error(err)
	}
	g, err := NewGrid(10)
	if err != nil || g.N != 10 {
		t.Errorf("grid err=%v", err)
	}
	if Platform2().Size() != 4 {
		t.Error("platform2 size")
	}
}
