module prodpred

go 1.22
