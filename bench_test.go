package prodpred

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=. -benchmem). Each BenchmarkTableN /
// BenchmarkFigureN runs the corresponding experiment end to end and reports
// its headline shape metric alongside the timing, so a single bench run
// doubles as a reproduction report. Micro-benchmarks of the core stochastic
// operations and the SOR kernel follow.

import (
	"math/rand"
	"testing"

	"prodpred/internal/experiments"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

// benchExperiment runs a registered experiment once per iteration and
// publishes selected metrics through the benchmark reporter.
func benchExperiment(b *testing.B, id string, reported ...string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err = e.Run(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range reported {
		v, err := res.Metric(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v, m)
	}
}

func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1", "relSpreadA", "relSpreadB")
}

func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, "table2", "add_mc_spread_err", "mul_mc_spread_err")
}

func BenchmarkFigure1And2(b *testing.B) {
	benchExperiment(b, "fig1-2", "ks_p", "coverage2s")
}

func BenchmarkFigure3And4(b *testing.B) {
	benchExperiment(b, "fig3-4", "coverage2s", "mean_mbit")
}

func BenchmarkFigure5(b *testing.B) {
	benchExperiment(b, "fig5", "modes")
}

func BenchmarkFigure6(b *testing.B) {
	benchExperiment(b, "fig6", "strips")
}

func BenchmarkFigure7(b *testing.B) {
	benchExperiment(b, "fig7", "max_skew")
}

func BenchmarkFigure8(b *testing.B) {
	benchExperiment(b, "fig8", "mean", "spread")
}

func BenchmarkFigure9(b *testing.B) {
	benchExperiment(b, "fig9", "captured_all", "max_mean_err")
}

func BenchmarkFigure10And11(b *testing.B) {
	benchExperiment(b, "fig10-11", "modes", "transition_rate")
}

func BenchmarkFigure12And13(b *testing.B) {
	benchExperiment(b, "fig12-13", "capture_frac", "max_interval_err", "max_mean_err")
}

func BenchmarkFigure14And15(b *testing.B) {
	benchExperiment(b, "fig14-15", "capture_frac", "max_interval_err", "max_mean_err")
}

func BenchmarkFigure16And17(b *testing.B) {
	benchExperiment(b, "fig16-17", "capture_frac", "max_interval_err", "max_mean_err")
}

func BenchmarkDedicated(b *testing.B) {
	benchExperiment(b, "dedicated", "worst_err")
}

func BenchmarkLongtail(b *testing.B) {
	benchExperiment(b, "longtail", "long_cov2")
}

func BenchmarkMaxOps(b *testing.B) {
	benchExperiment(b, "maxops", "clark_mean_err")
}

func BenchmarkAllocation(b *testing.B) {
	benchExperiment(b, "allocation", "high-penalty_conservative_penalty", "high-penalty_mean_penalty")
}

func BenchmarkAblationIterationRel(b *testing.B) {
	benchExperiment(b, "ablation-iteration-rel", "related_capture", "unrelated_capture")
}

func BenchmarkAblationForecaster(b *testing.B) {
	benchExperiment(b, "ablation-forecaster", "bursty-4mode_best_rmse")
}

func BenchmarkAblationModal(b *testing.B) {
	benchExperiment(b, "ablation-modal", "paper_cov", "mixture_cov")
}

func BenchmarkAblationMaxStrategy(b *testing.B) {
	benchExperiment(b, "ablation-maxstrategy", "probabilistic_capture")
}

func BenchmarkAblationEmpirical(b *testing.B) {
	benchExperiment(b, "ablation-empirical", "s0_rule_cov", "s1_rule_cov")
}

func BenchmarkAblationPartition(b *testing.B) {
	benchExperiment(b, "ablation-partition", "speedup_n120")
}

func BenchmarkAblationObjective(b *testing.B) {
	benchExperiment(b, "ablation-objective", "mean_allocA", "p95_allocA")
}

func BenchmarkAblationSelfSched(b *testing.B) {
	benchExperiment(b, "ablation-selfsched", "self-sched_chunk5", "static_mean-balanced")
}

func BenchmarkHostTCP(b *testing.B) {
	benchExperiment(b, "host-tcp", "comp_ratio", "capture_frac")
}

func BenchmarkHostBench(b *testing.B) {
	benchExperiment(b, "host-bench", "coverage2s")
}

func BenchmarkSORTCPDistributed(b *testing.B) {
	n := 257
	part, err := sor.NewEqualPartition(n, 4)
	if err != nil {
		b.Fatal(err)
	}
	backend, err := sor.NewTCPBackend(part)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := sor.NewGrid(n)
		g.SetBoundary(func(x, y float64) float64 { return x + y })
		if _, err := backend.Run(g, sor.DefaultOmega, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core-operation micro-benchmarks ---------------------------------------

func BenchmarkStochasticAddUnrelated(b *testing.B) {
	x := stochastic.New(8, 2)
	y := stochastic.New(5, 1.5)
	var sink stochastic.Value
	for i := 0; i < b.N; i++ {
		sink = x.AddUnrelated(y)
	}
	_ = sink
}

func BenchmarkStochasticMulUnrelated(b *testing.B) {
	x := stochastic.New(8, 2)
	y := stochastic.New(5, 1.5)
	var sink stochastic.Value
	for i := 0; i < b.N; i++ {
		sink = x.MulUnrelated(y)
	}
	_ = sink
}

func BenchmarkStochasticClarkMax(b *testing.B) {
	vs := []stochastic.Value{
		stochastic.New(4, 0.5), stochastic.New(3, 2), stochastic.New(3, 1),
	}
	for i := 0; i < b.N; i++ {
		if _, err := stochastic.Max(stochastic.Probabilistic, vs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSORSweep(b *testing.B) {
	g, err := sor.NewGrid(512)
	if err != nil {
		b.Fatal(err)
	}
	g.SetBoundary(func(x, y float64) float64 { return x + y })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SweepPhase(sor.Red, 1, 511, sor.DefaultOmega)
		g.SweepPhase(sor.Black, 1, 511, sor.DefaultOmega)
	}
	elems := int64(g.InteriorPoints())
	b.SetBytes(elems * 8)
}

func BenchmarkSORLocalParallel(b *testing.B) {
	n := 512
	part, err := sor.NewEqualPartition(n, 4)
	if err != nil {
		b.Fatal(err)
	}
	backend, err := sor.NewLocalBackend(part)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := sor.NewGrid(n)
	g.SetBoundary(func(x, y float64) float64 { return x + y })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.Run(g, sor.DefaultOmega, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSORSolveTol exercises the fused convergence path: with tol > 0
// every iteration needs a residual, which SweepPhaseResidual folds into the
// black half-sweep so the grid is touched three times per iteration instead
// of four.
func BenchmarkSORSolveTol(b *testing.B) {
	g, err := sor.NewGrid(256)
	if err != nil {
		b.Fatal(err)
	}
	g.SetBoundary(func(x, y float64) float64 { return x*x - y*y })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		if _, err := g.Solve(sor.OptimalOmega(256), 1e-6, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCMoments measures the sharded Monte Carlo engine on the
// Table 2 unrelated-add cross-check workload (60k draws).
func BenchmarkMCMoments(b *testing.B) {
	x := stochastic.New(8, 2)
	y := stochastic.New(5, 1.5)
	mc := stochastic.MC{Seed: 1}
	f := func(rng *rand.Rand) float64 { return x.Sample(rng) + y.Sample(rng) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Moments(60000, f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStructuralSORPredict(b *testing.B) {
	plat := Platform1()
	weights := make([]float64, plat.Size())
	machines := make([]Machine, plat.Size())
	for i := range weights {
		machines[i] = plat.Machine(i)
		weights[i] = machines[i].ElemRate
	}
	part, err := NewWeightedPartition(1000, weights)
	if err != nil {
		b.Fatal(err)
	}
	link, _ := plat.Link(0, 1)
	cfg := &SORConfig{
		N: 1000, Iterations: 20, Partition: part, Machines: machines,
		Link: link, MaxStrategy: LargestMean,
	}
	params := cfg.DedicatedParams()
	params[LoadParam(0)] = NewValue(0.48, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Predict(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueSample(b *testing.B) {
	v := stochastic.New(12, 1.2)
	rng := rand.New(rand.NewSource(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = v.Sample(rng)
	}
	_ = sink
}
