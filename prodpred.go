// Package prodpred is a Go implementation of stochastic-value performance
// prediction for production distributed systems, reproducing Schopf &
// Berman, "Performance Prediction in Production Environments"
// (IPPS/SPDP 1998).
//
// The core idea: model parameters measured on shared ("production")
// systems — CPU availability, bandwidth, benchmark times — are not single
// numbers but distributions. A stochastic Value summarizes such a
// distribution as mean ± two standard deviations, combination rules
// propagate those ranges through structural performance models, and the
// resulting predictions are intervals that bound actual application
// behaviour far better than point estimates.
//
// The package is a facade over the implementation packages:
//
//   - Value and its arithmetic        (internal/stochastic)
//   - structural models               (internal/structural)
//   - the Network Weather Service     (internal/nws)
//   - production-platform simulation  (internal/simenv, cluster, load)
//   - the distributed Red-Black SOR   (internal/sor)
//   - stochastic-aware scheduling     (internal/sched)
//   - sensor-fault injection          (internal/faults)
//   - the prediction-service core     (internal/predict)
//   - the paper's tables and figures  (internal/experiments)
//
// Serving infrastructure (the HTTP layer in internal/api and the metrics
// registry in internal/obs) is not re-exported here; cmd/predictd and
// cmd/loadtest consume it directly, and OPERATIONS.md documents it.
//
// Two time units appear throughout: simulation and prediction APIs run in
// virtual seconds (the simulated platform clock), while telemetry
// latencies are wall-clock seconds. Types in this facade are plain values
// unless their doc says otherwise; PredictionService, PredictRegistry,
// AccuracyTracker, FaultInjector, and Monitor-bearing types are the
// concurrency-safe long-lived objects.
//
// See examples/ for runnable walk-throughs and cmd/ for the tools.
package prodpred

import (
	"prodpred/internal/calib"
	"prodpred/internal/cluster"
	"prodpred/internal/experiments"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/modal"
	"prodpred/internal/nws"
	"prodpred/internal/predict"
	"prodpred/internal/sched"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// Value is a stochastic value X ± a (mean and two standard deviations).
type Value = stochastic.Value

// MaxStrategy resolves group Max/Min operations over stochastic values.
type MaxStrategy = stochastic.MaxStrategy

// Max strategies (§2.3.3 of the paper).
const (
	LargestMean      = stochastic.LargestMean
	LargestMagnitude = stochastic.LargestMagnitude
	Probabilistic    = stochastic.Probabilistic
)

// Point returns the point value x.
func Point(x float64) Value { return stochastic.Point(x) }

// NewValue returns mean ± spread; it panics on invalid input (see
// stochastic.TryNew for the validating form).
func NewValue(mean, spread float64) Value { return stochastic.New(mean, spread) }

// FromPercent returns mean ± pct% (e.g. 12 s ± 30%).
func FromPercent(mean, pct float64) Value { return stochastic.FromPercent(mean, pct) }

// FromSample summarizes a measurement sample as mean ± 2 standard
// deviations.
func FromSample(xs []float64) (Value, error) { return stochastic.FromSample(xs) }

// Max combines stochastic values under a group-Max strategy.
func Max(strategy MaxStrategy, vs ...Value) (Value, error) {
	return stochastic.Max(strategy, vs...)
}

// Min combines stochastic values under a group-Min strategy.
func Min(strategy MaxStrategy, vs ...Value) (Value, error) {
	return stochastic.Min(strategy, vs...)
}

// RelationKind is the §2.3.1 relatedness judgement between two measured
// quantities.
type RelationKind = stochastic.RelationKind

// Relation kinds.
const (
	RelatedKind   = stochastic.RelatedKind
	UnrelatedKind = stochastic.UnrelatedKind
)

// DetectRelation judges relatedness from paired measurement histories via
// rank correlation, automating the combination-rule choice the paper
// leaves to the modeler.
func DetectRelation(xs, ys []float64, threshold float64) (RelationKind, float64, error) {
	return stochastic.DetectRelation(xs, ys, threshold)
}

// Empirical is a quantity carried as its full sample instead of a normal
// summary — the ground-truth baseline for the Table 2 rules.
type Empirical = stochastic.Empirical

// NewEmpirical builds an empirical value from a measurement sample.
func NewEmpirical(samples []float64) (*Empirical, error) {
	return stochastic.NewEmpirical(samples)
}

// Structural modeling.
type (
	// Component is a node of a structural performance model.
	Component = structural.Component
	// Params maps parameter names to stochastic values.
	Params = structural.Params
	// SORConfig is the structural model of the distributed Red-Black SOR.
	SORConfig = structural.SORConfig
	// Relation tags combinations as related (conservative) or unrelated
	// (independent, root-sum-square).
	Relation = structural.Relation
)

// Relations.
const (
	Related   = structural.Related
	Unrelated = structural.Unrelated
)

// LoadParam names processor p's CPU-availability model parameter.
func LoadParam(p int) string { return structural.LoadParam(p) }

// BWAvailParam names the bandwidth-availability model parameter.
const BWAvailParam = structural.BWAvailParam

// Hardware model and simulation.
type (
	// Machine is a workstation with a dedicated compute rate.
	Machine = cluster.Machine
	// Link is a network channel with dedicated bandwidth and latency.
	Link = cluster.Link
	// Platform is a set of machines with a link matrix.
	Platform = cluster.Platform
	// Env simulates a production environment in virtual time.
	Env = simenv.Env
	// LoadProcess is a time-varying CPU-availability signal.
	LoadProcess = load.Process
)

// Platform1 returns the paper's first evaluation platform (2x Sparc-2,
// Sparc-5, Sparc-10 on 10 Mbit ethernet).
func Platform1() *Platform { return cluster.Platform1() }

// Platform2 returns the paper's second evaluation platform (Sparc-5,
// Sparc-10, 2x UltraSparc on 10 Mbit ethernet).
func Platform2() *Platform { return cluster.Platform2() }

// Load-process presets calibrated to the paper's measured shapes.

// DedicatedLoad returns full availability (no competing users).
func DedicatedLoad() LoadProcess { return load.Dedicated() }

// CenterModeLoad returns Platform 1's center-mode load (0.48 ± 0.05).
func CenterModeLoad(seed int64) (LoadProcess, error) { return load.Platform1CenterMode(seed) }

// TriModalLoad returns Platform 1's tri-modal load (Figure 5).
func TriModalLoad(seed int64) (LoadProcess, error) { return load.Platform1TriModal(seed) }

// BurstyLoad returns Platform 2's 4-modal bursty load (Figures 10-11).
func BurstyLoad(seed int64) (LoadProcess, error) { return load.Platform2FourModeBursty(seed) }

// LightLoadProcess returns a lightly loaded machine (availability ~0.92).
func LightLoadProcess(seed int64) (LoadProcess, error) { return load.LightLoad(seed) }

// EthernetContentionLoad returns the long-tailed bandwidth-availability
// process of Figure 3.
func EthernetContentionLoad(seed int64) (LoadProcess, error) {
	return load.EthernetContention(seed)
}

// RecordLoad samples a load process every dt over [t0, t1], returning
// parallel time and value slices.
func RecordLoad(p LoadProcess, t0, t1, dt float64) (ts, vs []float64, err error) {
	s, err := load.Record(p, t0, t1, dt)
	if err != nil {
		return nil, nil, err
	}
	return s.Times(), s.Values(), nil
}

// NewEnv binds a platform to per-machine load processes and a network
// contention process.
func NewEnv(p *Platform, cpu []LoadProcess, net LoadProcess) (*Env, error) {
	return simenv.New(p, cpu, net)
}

// NewDedicatedEnv returns an unloaded environment for the platform.
func NewDedicatedEnv(p *Platform) (*Env, error) { return simenv.NewDedicated(p) }

// Network Weather Service.
type (
	// Monitor drives an NWS sensor and forecaster over an environment.
	Monitor = nws.Monitor
	// Forecast is one NWS report (value, error estimate, winning method).
	Forecast = nws.Forecast
)

// NewCPUMonitor monitors machine m's CPU availability in env.
func NewCPUMonitor(env *Env, m int, period float64, histSize int) (*Monitor, error) {
	return nws.NewCPUMonitor(env, m, period, histSize)
}

// NewBandwidthMonitor monitors achieved bandwidth between machines i and j.
func NewBandwidthMonitor(env *Env, i, j int, probeBytes, period float64, histSize int) (*Monitor, error) {
	return nws.NewBandwidthMonitor(env, i, j, probeBytes, period, histSize)
}

// SOR application.
type (
	// Grid is the SOR solution grid.
	Grid = sor.Grid
	// Partition is a strip decomposition.
	Partition = sor.Partition
	// SimResult reports a simulated distributed run.
	SimResult = sor.SimResult
)

// NewGrid allocates an N x N grid.
func NewGrid(n int) (*Grid, error) { return sor.NewGrid(n) }

// OptimalOmega returns the asymptotically optimal SOR over-relaxation
// factor for an n x n model problem.
func OptimalOmega(n int) float64 { return sor.OptimalOmega(n) }

// NewTCPBackend returns the genuinely distributed SOR backend: one worker
// per strip exchanging ghost rows over loopback TCP.
func NewTCPBackend(part *Partition) (*sor.TCPBackend, error) {
	return sor.NewTCPBackend(part)
}

// NewWeightedPartition splits interior rows proportionally to weights.
func NewWeightedPartition(n int, weights []float64) (*Partition, error) {
	return sor.NewWeightedPartition(n, weights)
}

// Scheduling.
type (
	// SchedStrategy selects how a scheduler reads stochastic predictions.
	SchedStrategy = sched.Strategy
	// PolicyReport is a Monte Carlo evaluation of a scheduling strategy.
	PolicyReport = sched.PolicyReport
)

// Scheduling strategies.
const (
	MeanBalanced = sched.MeanBalanced
	Conservative = sched.Conservative
	Optimistic   = sched.Optimistic
)

// UnitAllocation splits work units across machines by predicted rate.
func UnitAllocation(total int, unitTimes []Value, s SchedStrategy) ([]int, error) {
	return sched.UnitAllocation(total, unitTimes, s)
}

// TimeBalancedPartition builds an AppLeS-style strip decomposition whose
// predicted per-iteration strip times (compute under forecast load plus
// ghost-row communication) are equalized by fixed-point refinement.
func TimeBalancedPartition(n int, machines []Machine, loads []Value, link Link, refinements int) (*Partition, error) {
	return sched.TimeBalancedPartition(n, machines, loads, link, refinements)
}

// PromiseFor converts a stochastic completion-time prediction into a
// service promise missed with at most the given probability — the paper's
// "service range" alternative to hard QoS guarantees.
func PromiseFor(v Value, missProb float64) (float64, error) {
	return sched.PromiseFor(v, missProb)
}

// OptimizeAllocation searches for the unit allocation minimizing the given
// objective over the stochastic makespan (see sched.MeanObjective,
// sched.UpperBoundObjective, sched.QuantileObjective).
func OptimizeAllocation(total int, unitTimes []Value, objective sched.Objective) ([]int, Value, error) {
	return sched.OptimizeAllocation(total, unitTimes, objective)
}

// Modal load analysis (§2.1.2).
type (
	// MixtureModel is a fitted 1-D Gaussian mixture over load samples.
	MixtureModel = modal.MixtureModel
	// Mode is one detected load mode.
	Mode = modal.Mode
	// Burstiness summarizes how a load series moves between modes.
	Burstiness = modal.Burstiness
)

// FitModes fits Gaussian mixtures with 1..kMax modes to load samples and
// returns the BIC-best model.
func FitModes(xs []float64, kMax int) (*MixtureModel, error) {
	return modal.FitBIC(xs, kMax)
}

// ModalStochasticValue summarizes a load series per the paper's §2.1.2:
// the dominant mode's value when the series is effectively single-mode,
// otherwise the occupancy-weighted combination of mode values. The bool
// reports whether the single-mode branch was taken.
func ModalStochasticValue(mm *MixtureModel, xs []float64) (Value, bool, error) {
	return modal.StochasticValue(mm, xs)
}

// AnalyzeBurstiness classifies a load series against a fitted model and
// summarizes its mode dynamics.
func AnalyzeBurstiness(mm *MixtureModel, xs []float64) (Burstiness, error) {
	return modal.AnalyzeBurstiness(mm, xs)
}

// Sensor-fault injection: deterministic measurement-failure schedules
// wrapped around NWS sensors, for studying prediction quality when the
// monitoring layer itself misbehaves.
type (
	// FaultInjector wraps NWS sensors with deterministic, seed-keyed
	// measurement faults (drops, outages, transient errors, spikes).
	FaultInjector = faults.Injector
	// FaultSchedule describes the fault classes applied to one machine's
	// sensor: per-sample probabilities plus scheduled outage windows.
	FaultSchedule = faults.Schedule
	// OutageWindow is a half-open [Start, End) interval of virtual time
	// during which a sensor returns no measurements at all.
	OutageWindow = faults.Window
	// FaultStats counts fault decisions made by an injector.
	FaultStats = faults.Stats
	// GapStats is a monitor's per-fault-class accounting of measurement
	// gaps: clean samples, drops, outage misses, transients, retries.
	GapStats = nws.GapStats
)

// DefaultSpikeFactor is the load multiplier applied by injected outlier
// spikes when a FaultSchedule does not set its own.
const DefaultSpikeFactor = faults.DefaultSpikeFactor

// NewFaultInjector returns a fault injector whose decisions are pure
// functions of (seed, machine, virtual time) — deterministic across runs
// and safe for concurrent sensors. Configure per-machine schedules with
// Set, then wrap sensors via Sensor or CPUSensor.
func NewFaultInjector(seed int64) *FaultInjector { return faults.NewInjector(seed) }

// Prediction service: the monitor -> forecast -> model -> schedule ->
// predict flow packaged as a long-lived, goroutine-safe core.
type (
	// PredictionService owns per-machine NWS monitors over a simulated
	// production platform, advances them on a shared virtual clock, and
	// answers concurrent Predict calls. Safe for concurrent use; every
	// time in its API (clock positions, predictions, observed runtimes)
	// is in virtual seconds.
	PredictionService = predict.Service
	// PredictConfig configures a PredictionService: platform, per-machine
	// CPU load processes, network contention, monitoring period and
	// history, optional fault injector, and fallback prior.
	PredictConfig = predict.Config
	// PredictRequest names what to predict: grid size, iteration count,
	// partition strategy, Max strategy, and iteration relation.
	PredictRequest = predict.Request
	// Prediction is a stochastic execution-time prediction (virtual
	// seconds) with the chosen partition, per-machine load reports, and
	// gap/staleness diagnostics.
	Prediction = predict.Prediction
	// MachineReport is one machine's forecast load plus monitor health.
	MachineReport = predict.MachineReport
	// PredictRegistry routes prediction requests across several hosted
	// platforms by name. Safe for concurrent use.
	PredictRegistry = predict.Registry
)

// DefaultCPUPrior is the conservative fallback CPU-availability prior
// (0.5 ± 0.5, i.e. "anything is possible") used when a machine's monitor
// has no usable history — for example during a sensor outage.
var DefaultCPUPrior = predict.DefaultCPUPrior

// NewPredictionService builds a prediction service over the configured
// simulated platform. Advance or AdvanceTo moves its virtual clock (and
// all monitors) forward; Predict answers at the current time.
func NewPredictionService(cfg PredictConfig) (*PredictionService, error) {
	return predict.NewService(cfg)
}

// NewPredictRegistry returns an empty prediction-service registry.
func NewPredictRegistry() *PredictRegistry { return predict.NewRegistry() }

// SimulatedPredictConfig returns the canonical PredictConfig for the
// paper's evaluation platforms (1 or 2) under their calibrated production
// load shapes — the same construction cmd/sorpredict and cmd/predictd use.
func SimulatedPredictConfig(platform int, seed int64) (PredictConfig, error) {
	return predict.SimulatedConfig(platform, seed)
}

// Online accuracy tracking, adaptive interval calibration, and load-regime
// drift detection: the feedback half of the prediction loop. A
// PredictionService owns one AccuracyTracker per platform; Observe feeds
// measured runtimes back, and subsequent predictions return conformally
// calibrated intervals.
type (
	// AccuracyTracker ingests (prediction, actual) outcomes — both sides
	// in virtual seconds — and maintains rolling capture/error/width
	// statistics, a conformal half-width multiplier, and CUSUM +
	// mode-count regime-drift detection. Safe for concurrent use.
	AccuracyTracker = calib.Tracker
	// CalibrationConfig tunes an AccuracyTracker (capture target, window,
	// scale floor/ceiling, CUSUM sensitivity); zero fields take defaults.
	CalibrationConfig = calib.Config
	// CalibrationSnapshot is a consistent read of a tracker's accuracy and
	// calibration state — what GET /accuracy serves.
	CalibrationSnapshot = calib.Snapshot
	// CalibrationOutcome is one observed (prediction, actual) pair.
	CalibrationOutcome = calib.Outcome
	// DriftEvent records one detected load-regime change.
	DriftEvent = calib.DriftEvent
)

// Calibration defaults and drift-event reasons.
const (
	// DefaultTargetCapture is the paper's two-σ nominal coverage (~95%).
	DefaultTargetCapture = calib.DefaultTargetCapture
	// DriftReasonCUSUM marks a sustained forecast-residual shift.
	DriftReasonCUSUM = calib.ReasonCUSUM
	// DriftReasonModeCount marks residuals that turned multi-modal.
	DriftReasonModeCount = calib.ReasonModeCount
)

// NewAccuracyTracker returns a standalone online accuracy tracker — the
// same machinery a PredictionService embeds, for callers that run their
// own prediction loop.
func NewAccuracyTracker(cfg CalibrationConfig) (*AccuracyTracker, error) {
	return calib.New(cfg)
}

// StalenessDegradeRate is the per-period staleness widening rate shared by
// NWS monitor reports and the calibration layer: a monitor's spread is
// multiplied by StalenessFactor(stale) = 1 + StalenessDegradeRate·stale,
// and the conformal calibration multiplier composes on top of that.
const StalenessDegradeRate = nws.DegradeRate

// StalenessFactor returns the staleness spread multiplier for a given
// staleness in sensor periods.
func StalenessFactor(stale float64) float64 { return nws.StalenessFactor(stale) }

// Experiments.
type (
	// Experiment is one registered reproduction artifact.
	Experiment = experiments.Experiment
	// ExperimentResult is an experiment's rendered output and metrics.
	ExperimentResult = experiments.Result
)

// Experiments lists every registered table/figure reproduction.
func Experiments() []Experiment { return experiments.All() }

// LookupExperiment finds an experiment by ID (e.g. "fig9", "table1").
func LookupExperiment(id string) (Experiment, error) { return experiments.Lookup(id) }
