// Quickstart: build stochastic values from measurements, combine them with
// the paper's Table 2 rules, and read prediction intervals.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prodpred"
)

func main() {
	// A stochastic value is mean ± two standard deviations. Build one
	// directly, from a percentage, or from a measurement sample.
	bandwidth := prodpred.NewValue(8, 2)    // 8 ± 2 Mbit/s
	cpu := prodpred.FromPercent(0.48, 10.4) // 0.48 ± 10.4% = 0.48 ± 0.05
	samples := []float64{11.2, 10.8, 11.5, 11.0, 10.9, 11.3, 11.1}
	benchTime, err := prodpred.FromSample(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bandwidth:     ", bandwidth)
	fmt.Println("cpu available: ", cpu)
	fmt.Println("benchmark time:", benchTime)

	// Combine values. Related quantities (coupled fluctuations) use
	// conservative error accumulation; unrelated (independent) ones use
	// root-sum-square propagation.
	latency := prodpred.NewValue(0.010, 0.002)
	msgTime := latency.AddUnrelated(prodpred.Point(4.0).DivUnrelated(bandwidth))
	fmt.Println("\nmessage time = latency + size/bandwidth =", msgTime)

	// Computation under production load: benchmark time / availability.
	prodTime := benchTime.DivUnrelated(cpu)
	fmt.Println("production compute time =", prodTime)

	// Intervals answer the questions schedulers ask.
	lo, hi := prodTime.Interval()
	fmt.Printf("\n~95%% interval: [%.1f, %.1f] s\n", lo, hi)
	fmt.Printf("is 26 s within expectations? %v\n", prodTime.Contains(26))
	fmt.Printf("error if the run takes 40 s: %.1f%%\n",
		prodTime.RelativeErrorOutside(40)*100)

	// Group operations resolve "the slowest machine" questions; the right
	// strategy depends on the penalty for guessing wrong (§2.3.3).
	a, b, c := prodpred.NewValue(4, 0.5), prodpred.NewValue(3, 2), prodpred.NewValue(3, 1)
	byMean, err := prodpred.Max(prodpred.LargestMean, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	byMag, err := prodpred.Max(prodpred.LargestMagnitude, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	probabilistic, err := prodpred.Max(prodpred.Probabilistic, a, b, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMax{%v, %v, %v}:\n", a, b, c)
	fmt.Println("  largest mean:     ", byMean)
	fmt.Println("  largest magnitude:", byMag)
	fmt.Println("  probabilistic:    ", probabilistic)
}
