// SOR in production: a miniature of the paper's Platform 2 evaluation.
// Monitor a bursty simulated platform with the NWS reimplementation,
// predict each distributed Red-Black SOR run as a stochastic value, execute
// it, and compare interval predictions against point predictions.
//
//	go run ./examples/sorproduction
package main

import (
	"fmt"
	"log"
	"math"

	"prodpred"
	"prodpred/internal/sor"
)

func main() {
	const (
		n     = 800
		iters = 10
		runs  = 8
	)
	plat := prodpred.Platform2()

	// Bursty 4-modal load on every machine, long-tailed ethernet.
	cpu := make([]prodpred.LoadProcess, plat.Size())
	for i := range cpu {
		p, err := prodpred.BurstyLoad(int64(100 + i*17))
		if err != nil {
			log.Fatal(err)
		}
		cpu[i] = p
	}
	net, err := prodpred.EthernetContentionLoad(999)
	if err != nil {
		log.Fatal(err)
	}
	env, err := prodpred.NewEnv(plat, cpu, net)
	if err != nil {
		log.Fatal(err)
	}

	// NWS monitors per machine, 5-second cadence as in the paper.
	monitors := make([]*prodpred.Monitor, plat.Size())
	for i := range monitors {
		if monitors[i], err = prodpred.NewCPUMonitor(env, i, 5, 512); err != nil {
			log.Fatal(err)
		}
	}
	t := 900.0 // warm up the forecasters

	// Capacity-balanced strips from the first forecasts.
	weights := make([]float64, plat.Size())
	machines := make([]prodpred.Machine, plat.Size())
	for i := range weights {
		v, err := monitors[i].Report(t)
		if err != nil {
			log.Fatal(err)
		}
		machines[i] = plat.Machine(i)
		weights[i] = machines[i].ElemRate * math.Max(v.Mean, 0.05)
	}
	part, err := prodpred.NewWeightedPartition(n, weights)
	if err != nil {
		log.Fatal(err)
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	model := &prodpred.SORConfig{
		N: n, Iterations: iters, Partition: part, Machines: machines,
		MachineIdx: sor.IdentityMapping(plat.Size()), Link: link,
		MaxStrategy: prodpred.LargestMean,
	}
	backend, err := sor.NewSimBackend(env, part, sor.IdentityMapping(plat.Size()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%dx%d Red-Black SOR on Platform 2, %d iterations/run, bursty load\n\n", n, n, iters)
	fmt.Printf("%-8s %-20s %-9s %-9s %-12s\n", "t", "stochastic pred", "point", "actual", "verdict")
	captured, pointErr, intErr := 0, 0.0, 0.0
	for r := 0; r < runs; r++ {
		params := prodpred.Params{prodpred.BWAvailParam: prodpred.Point(1)}
		for i, mon := range monitors {
			v, err := mon.Report(t)
			if err != nil {
				log.Fatal(err)
			}
			params[prodpred.LoadParam(i)] = v
		}
		pred, err := model.Predict(params)
		if err != nil {
			log.Fatal(err)
		}
		g, err := prodpred.NewGrid(n)
		if err != nil {
			log.Fatal(err)
		}
		g.SetBoundary(func(x, y float64) float64 { return x*x - y*y })
		res, err := backend.Run(g, sor.DefaultOmega, iters, t)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "inside"
		if pred.Contains(res.ExecTime) {
			captured++
		} else {
			e := pred.RelativeErrorOutside(res.ExecTime)
			intErr = math.Max(intErr, e)
			verdict = fmt.Sprintf("out by %.0f%%", e*100)
		}
		pointErr = math.Max(pointErr, math.Abs(res.ExecTime-pred.Mean)/res.ExecTime)
		fmt.Printf("%-8.0f %-20s %-9.2f %-9.2f %-12s\n",
			t, pred.String(), pred.Mean, res.ExecTime, verdict)
		t += res.ExecTime + 30
	}
	fmt.Printf("\nStochastic intervals captured %d/%d runs (max error outside %.0f%%).\n",
		captured, runs, intErr*100)
	fmt.Printf("Point (mean) predictions missed by up to %.0f%% — the paper's core result.\n",
		pointErr*100)
}
