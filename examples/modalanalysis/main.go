// Modal analysis: fit a multi-modal model to production CPU load, classify
// its burstiness, and build the §2.1.2 stochastic value — the paper's
// recipe for machines whose load jumps between modes.
//
//	go run ./examples/modalanalysis
package main

import (
	"fmt"
	"log"

	"prodpred"
)

func main() {
	// Record two days of load from the bursty Platform 2 generator.
	proc, err := prodpred.BurstyLoad(7)
	if err != nil {
		log.Fatal(err)
	}
	_, vals, err := prodpred.RecordLoad(proc, 0, 2*86400, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Recorded %d load samples.\n\n", len(vals))

	// Fit Gaussian mixtures with 1..6 modes; BIC picks the best.
	mm, err := prodpred.FitModes(vals, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BIC selected %d modes:\n", mm.K())
	occ := mm.Occupancy(vals)
	for i, m := range mm.Modes {
		fmt.Printf("  mode %d: %-16s weight %.2f  occupancy %.2f\n",
			i+1, m.Stochastic().String(), m.Weight, occ[i])
	}

	// Burstiness decides which stochastic-value construction applies.
	burst, err := prodpred.AnalyzeBurstiness(mm, vals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBurstiness: %d transitions (rate %.3f/sample), mean dwell %.1f samples\n",
		burst.Transitions, burst.TransitionRate, burst.MeanDwell)
	fmt.Printf("Dominant mode %d holds %.0f%% of samples\n",
		burst.DominantMode+1, burst.DominantFrac*100)

	v, single, err := prodpred.ModalStochasticValue(mm, vals)
	if err != nil {
		log.Fatal(err)
	}
	if single {
		fmt.Println("\nLoad is effectively single-mode; using that mode directly:")
	} else {
		fmt.Println("\nLoad is multi-modal and bursty; using the occupancy-weighted")
		fmt.Println("combination P1(M1±SD1) + P2(M2±SD2) + ... :")
	}
	fmt.Println("  stochastic load value:", v)

	// Contrast with the single-mode regime of Platform 1's center mode.
	steady, err := prodpred.CenterModeLoad(7)
	if err != nil {
		log.Fatal(err)
	}
	_, sv, err := prodpred.RecordLoad(steady, 0, 86400, 5)
	if err != nil {
		log.Fatal(err)
	}
	mm2, err := prodpred.FitModes(sv, 4)
	if err != nil {
		log.Fatal(err)
	}
	v2, single2, err := prodpred.ModalStochasticValue(mm2, sv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor comparison, Platform 1's center-mode machine: %d mode(s), single=%v, value %s\n",
		mm2.K(), single2, v2)
	fmt.Println("(the paper's §3.1 parameter was 0.48 ± 0.05)")
}
