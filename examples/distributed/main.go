// Distributed: run the Red-Black SOR as a real distributed program — one
// worker per strip, ghost rows exchanged over TCP loopback — and verify the
// result against the shared-memory parallel backend and the analytic
// solution.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"prodpred"
	"prodpred/internal/sor"
)

func main() {
	const (
		n       = 129
		workers = 4
	)
	// Solve the Poisson problem ∇²u = 4 with boundary u = x² + y²; the
	// analytic solution is u = x² + y² everywhere.
	analytic := func(x, y float64) float64 { return x*x + y*y }
	mkGrid := func() *prodpred.Grid {
		g, err := prodpred.NewGrid(n)
		if err != nil {
			log.Fatal(err)
		}
		g.SetBoundary(analytic)
		g.SetSource(func(x, y float64) float64 { return 4 })
		return g
	}
	part, err := prodpred.NewWeightedPartition(n, []float64{1, 1, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Solving %dx%d Poisson problem on %d TCP workers:\n\n", n, n, workers)
	fmt.Println(part.Render())

	tcp, err := sor.NewTCPBackend(part)
	if err != nil {
		log.Fatal(err)
	}
	gTCP := mkGrid()
	const iters = 2000
	omega := sor.OptimalOmega(n)
	fmt.Printf("over-relaxation factor: %.4f (optimal for N=%d)\n\n", omega, n)
	res, err := tcp.Run(gTCP, omega, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP backend:   %d iterations in %v (residual %.2e)\n",
		res.Iterations, res.Elapsed, res.Residual)
	for i := range res.CommTime {
		fmt.Printf("  worker %d: compute %v, comm %v, sent %d KB\n",
			i, res.CompTime[i], res.CommTime[i], res.BytesSent[i]/1024)
	}

	local, err := sor.NewLocalBackend(part)
	if err != nil {
		log.Fatal(err)
	}
	gLocal := mkGrid()
	lres, err := local.Run(gLocal, omega, iters, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLocal backend: %d iterations in %v (residual %.2e)\n",
		lres.Iterations, lres.Elapsed, lres.Residual)

	identical := true
	for i := range gTCP.U {
		if gTCP.U[i] != gLocal.U[i] {
			identical = false
			break
		}
	}
	fmt.Printf("\nTCP and shared-memory results bit-identical: %v\n", identical)
	fmt.Printf("Max error vs analytic solution: %.2e\n", gTCP.MaxErrorAgainst(analytic))
}
