// Scheduling: the paper's §1.2 two-machine example. Machines A and B both
// average 12 s per unit of work in production, but A is stable (±5%) and B
// volatile (±30%). A point-value scheduler splits work equally; a
// stochastic-value scheduler can adapt to the penalty structure.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prodpred"
	"prodpred/internal/sched"
)

func main() {
	unitTimes := []prodpred.Value{
		prodpred.FromPercent(12, 5),  // machine A
		prodpred.FromPercent(12, 30), // machine B
	}
	const totalWork = 100
	fmt.Println("Unit-work times:  A =", unitTimes[0], "  B =", unitTimes[1])
	fmt.Println("Total work:", totalWork, "units")

	for _, s := range []prodpred.SchedStrategy{
		prodpred.MeanBalanced, prodpred.Conservative, prodpred.Optimistic,
	} {
		alloc, err := prodpred.UnitAllocation(totalWork, unitTimes, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-13s allocation: A=%d B=%d\n", s, alloc[0], alloc[1])

		// Predict the makespan as a stochastic value.
		makespan, err := sched.PredictMakespan(alloc, unitTimes, prodpred.LargestMagnitude)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("   predicted makespan:", makespan)
	}

	// Monte Carlo: which policy wins under which penalty regime?
	fmt.Println("\nMonte Carlo (5000 trials), penalty = 100/s of overrun:")
	rng := rand.New(rand.NewSource(1))
	penalty := sched.OverrunPenalty(100)
	for _, s := range []prodpred.SchedStrategy{
		prodpred.MeanBalanced, prodpred.Conservative, prodpred.Optimistic,
	} {
		rep, err := sched.EvaluatePolicy(totalWork, unitTimes, s, penalty, rng, 5000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s promised %6.1f s  mean makespan %6.1f s  mean penalty %8.1f\n",
			s, rep.Promised, rep.MeanMakespan, rep.MeanPenalty)
	}
	fmt.Println("\nWhen misses are expensive, the conservative allocation —")
	fmt.Println("more work on the stable machine — pays for its longer promise.")

	// Service ranges (§1.2): convert a stochastic makespan into promises
	// at chosen miss probabilities instead of a hard guarantee.
	alloc, err := prodpred.UnitAllocation(totalWork, unitTimes, prodpred.MeanBalanced)
	if err != nil {
		log.Fatal(err)
	}
	makespan, err := sched.PredictMakespan(alloc, unitTimes, prodpred.Probabilistic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nService range for the mean-balanced plan (makespan %s):\n", makespan)
	for _, miss := range []float64{0.5, 0.1, 0.05, 0.01} {
		p, err := prodpred.PromiseFor(makespan, miss)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  promise %.1f s -> missed at most %.0f%% of the time\n", p, miss*100)
	}

	// Or let the optimizer pick the allocation for the metric you pay on.
	optAlloc, optMakespan, err := prodpred.OptimizeAllocation(totalWork, unitTimes,
		sched.QuantileObjective(0.95))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\np95-optimized allocation A=%d B=%d, makespan %s\n",
		optAlloc[0], optAlloc[1], optMakespan)
}
