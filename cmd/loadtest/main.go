// Command loadtest drives a predictd instance with a concurrent
// closed-loop workload and reports serving throughput and latency. Each
// worker loops: POST /predict, then (per the configured mix) POST /observe
// feeding the measured runtime back, and POST /advance stepping the
// virtual clock. Latency is summarized per operation as a stochastic
// mean ± 2σ interval (the paper's own representation) plus exact p50/p95/
// p99 sample quantiles.
//
// With no -url, loadtest builds the daemon's full stack in-process
// (simulated platforms, shared metrics registry) behind an ephemeral
// httptest server — the mode the CI smoke uses. After the run it scrapes
// GET /metrics and verifies the exposition parses.
//
// Usage:
//
//	loadtest -duration 5 -workers 8 -observe 0.8 -advance 0.1
//	loadtest -url http://localhost:8080 -duration 30
//	loadtest -duration 2 -bench-out BENCH_$(date +%F).json
//	loadtest -duration 3 -batch 16          # drive POST /predict/batch
//	loadtest -duration 3 -no-cache          # A/B the tick cache off
//	loadtest -platforms 1000 -kill-restore  # multi-tenant fleet mode
//	loadtest -duration 3 -sched 0.2         # mix in POST /schedule placements
//
// With -sched FRAC, that fraction of worker loops also submits a one-job
// POST /schedule placement, and the run ends with a GET /schedule/status
// sweep whose job population is reported (and must parse — a smoke of the
// fleet-scheduler surface under concurrency).
//
// With -platforms N, the in-process server hosts a fleet of N declarative
// tenant specs (lazily instantiated on first request) instead of the two
// paper platforms, and workers spread requests across the whole fleet.
// With -kill-restore, the driver snapshots the server mid-run via
// POST /snapshot, tears it down, restores a new server from the image,
// and the workload continues against the restored fleet — the run must
// still finish with zero errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"prodpred/internal/api"
	"prodpred/internal/obs"
	"prodpred/internal/predict"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
	"prodpred/internal/workload"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.URL, "url", "", "target daemon base URL (empty = in-process server)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "seed for the in-process platforms and the workload mix")
	flag.Float64Var(&cfg.Warmup, "warmup", 600, "in-process NWS warmup (virtual seconds)")
	flag.Float64Var(&cfg.Duration, "duration", 5, "wall-clock seconds to drive load")
	flag.IntVar(&cfg.Workers, "workers", 8, "concurrent closed-loop workers")
	flag.IntVar(&cfg.N, "n", 200, "SOR problem size per /predict request")
	flag.IntVar(&cfg.Iterations, "iterations", 5, "SOR iterations per /predict request")
	flag.Float64Var(&cfg.ObserveFrac, "observe", 0.8, "fraction of predictions fed back via /observe")
	flag.Float64Var(&cfg.AdvanceFrac, "advance", 0.1, "fraction of loops issuing a /advance clock step")
	flag.IntVar(&cfg.Batch, "batch", 0, "requests per POST /predict/batch call (0 = use POST /predict)")
	flag.BoolVar(&cfg.NoCache, "no-cache", false, "disable the tick-scoped forecast cache on the in-process platforms")
	flag.StringVar(&cfg.BenchOut, "bench-out", "", "JSON file to merge a \"serving\" entry into (BENCH_<date>.json style)")
	flag.IntVar(&cfg.Platforms, "platforms", 0, "host a fleet of N lazily-instantiated tenant specs instead of the two paper platforms")
	flag.BoolVar(&cfg.KillRestore, "kill-restore", false, "snapshot, kill, and restore the in-process server mid-run")
	flag.StringVar(&cfg.Scenario, "scenario", "", "drive the in-process platforms with this workload-library scenario instead of the paper load models")
	flag.Float64Var(&cfg.SchedFrac, "sched", 0, "fraction of loops also submitting a one-job POST /schedule placement")
	flag.Parse()

	res, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
	res.print(os.Stdout)
	if cfg.BenchOut != "" {
		if err := mergeBenchEntry(cfg.BenchOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "loadtest: bench-out:", err)
			os.Exit(1)
		}
		fmt.Printf("loadtest: merged serving entry into %s\n", cfg.BenchOut)
	}
}

// config is the full knob set of one load-test run.
type config struct {
	URL         string
	Seed        int64
	Warmup      float64
	Duration    float64
	Workers     int
	N           int
	Iterations  int
	ObserveFrac float64
	AdvanceFrac float64
	Batch       int
	NoCache     bool
	BenchOut    string
	Platforms   int     // fleet size (0 = the two paper platforms)
	KillRestore bool    // snapshot/kill/restore the in-process server mid-run
	Scenario    string  // workload-library scenario for the in-process platforms
	SchedFrac   float64 // fraction of loops also issuing a POST /schedule
}

// opStats summarizes one operation's latency sample: the stochastic
// mean ± 2σ interval in milliseconds plus exact sample quantiles.
type opStats struct {
	Count  int
	RPS    float64
	MeanMS float64 // sample mean
	TwoSig float64 // ± half-width (2σ)
	P50MS  float64
	P95MS  float64
	P99MS  float64
}

// result is the aggregated outcome of a run.
type result struct {
	Target         string
	Duration       float64 // actual wall seconds driven
	Workers        int
	Batch          int // requests per batch call (0 = single-predict mode)
	Total          int // individual requests (each batch item counts once)
	Errors         int
	Throughput     float64 // total requests per wall second
	Ops            map[string]opStats
	MetricFamilies int // families on GET /metrics (0 if the scrape failed)
	Platforms      int // fleet size (0 = the two paper platforms)
	Restores       int // mid-run snapshot/kill/restore cycles completed
	SchedJobs      int // jobs reported by the final GET /schedule/status sweep
}

// serverHandle is the workload's swappable view of the target server.
// Workers hold the read lock for one whole closed-loop iteration (predict
// through observe), so the kill/restore sequence — which takes the write
// lock — only ever runs between iterations: no prediction is issued on the
// old server and observed on the restored one before the snapshot captured
// it.
type serverHandle struct {
	mu       sync.RWMutex
	target   string
	ts       *httptest.Server // nil when driving an external -url daemon
	restores int
}

// killRestore snapshots the in-process server over its own HTTP API, tears
// it down, and brings up a new server restored from the image — the
// operator's crash-recovery drill, compressed into one run.
func (h *serverHandle) killRestore() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	resp, err := http.Post(h.target+"/snapshot", "application/octet-stream", nil)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("snapshot body: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: status %d: %s", resp.StatusCode, snap)
	}
	h.ts.Close()
	metrics := obs.NewRegistry()
	reg, err := predict.ReadSnapshot(bytes.NewReader(snap), predict.RegistryOptions{Metrics: metrics})
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	h.ts = httptest.NewServer(api.NewHandler(reg, api.Options{Metrics: metrics}))
	h.target = h.ts.URL
	h.restores++
	return nil
}

// run drives the closed-loop workload and aggregates the latency samples.
func run(cfg config) (result, error) {
	if cfg.Workers < 1 || cfg.Duration <= 0 {
		return result{}, fmt.Errorf("need workers >= 1 and duration > 0")
	}
	h := &serverHandle{target: cfg.URL}
	if h.target == "" {
		ts, err := inProcess(cfg)
		if err != nil {
			return result{}, err
		}
		h.ts, h.target = ts, ts.URL
	}
	if cfg.KillRestore && h.ts == nil {
		return result{}, fmt.Errorf("-kill-restore needs the in-process server (drop -url)")
	}

	type sample struct {
		op    string
		ms    float64
		items int // requests this sample accounts for (batch > 1)
		ok    bool
	}
	var (
		mu      sync.Mutex
		samples []sample
	)
	deadline := time.Now().Add(time.Duration(cfg.Duration * float64(time.Second)))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			client := &http.Client{Timeout: 30 * time.Second}
			var local []sample
			for time.Now().Before(deadline) {
				h.mu.RLock()
				target := h.target
				platform := fmt.Sprintf("platform%d", 1+rng.Intn(2))
				if cfg.Platforms > 0 {
					platform = fmt.Sprintf("tenant-%04d", rng.Intn(cfg.Platforms))
				}
				var pr api.PredictResponse
				var ms float64
				var err error
				if cfg.Batch > 1 {
					pr, ms, err = doBatch(client, target, platform, cfg)
					local = append(local, sample{"batch", ms, cfg.Batch, err == nil})
				} else {
					pr, ms, err = doPredict(client, target, platform, cfg)
					local = append(local, sample{"predict", ms, 1, err == nil})
				}
				if err == nil && rng.Float64() < cfg.ObserveFrac {
					ms, err = doObserve(client, target, platform, pr)
					local = append(local, sample{"observe", ms, 1, err == nil})
				}
				if rng.Float64() < cfg.AdvanceFrac {
					ms, err := doAdvance(client, target, platform)
					local = append(local, sample{"advance", ms, 1, err == nil})
				}
				if cfg.SchedFrac > 0 && rng.Float64() < cfg.SchedFrac {
					ms, err := doSchedule(client, target, cfg, w)
					local = append(local, sample{"schedule", ms, 1, err == nil})
				}
				h.mu.RUnlock()
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	killErr := make(chan error, 1)
	if cfg.KillRestore {
		go func() {
			// Halfway through the run: enough traffic before the snapshot to
			// make the image non-trivial, enough after to prove the restored
			// fleet serves.
			time.Sleep(time.Duration(cfg.Duration * float64(time.Second) / 2))
			killErr <- h.killRestore()
		}()
	} else {
		killErr <- nil
	}
	// Wait for every worker to finish before touching the server again: the
	// metrics scrape below must not race in-flight requests, and the
	// in-process server is closed only after the scrape so no worker ever
	// sees a connection torn down mid-call (the old error-count flake).
	wg.Wait()
	if err := <-killErr; err != nil {
		return result{}, err
	}

	res := result{
		Target:    h.target,
		Duration:  cfg.Duration,
		Workers:   cfg.Workers,
		Batch:     cfg.Batch,
		Platforms: cfg.Platforms,
		Restores:  h.restores,
		Ops:       map[string]opStats{},
	}
	byOp := map[string][]float64{}
	for _, s := range samples {
		res.Total += s.items
		if !s.ok {
			res.Errors++
			continue
		}
		byOp[s.op] = append(byOp[s.op], s.ms)
	}
	res.Throughput = float64(res.Total) / cfg.Duration
	for op, ms := range byOp {
		v, err := stochastic.FromSample(ms)
		if err != nil {
			continue
		}
		p50, _ := stats.Quantile(ms, 0.5)
		p95, _ := stats.Quantile(ms, 0.95)
		p99, _ := stats.Quantile(ms, 0.99)
		res.Ops[op] = opStats{
			Count:  len(ms),
			RPS:    float64(len(ms)) / cfg.Duration,
			MeanMS: v.Mean,
			TwoSig: v.Spread,
			P50MS:  p50, P95MS: p95, P99MS: p99,
		}
	}
	res.MetricFamilies = scrapeMetrics(h.target)
	if cfg.SchedFrac > 0 {
		n, err := schedStatus(h.target)
		if err != nil {
			return result{}, fmt.Errorf("schedule/status sweep: %w", err)
		}
		res.SchedJobs = n
	}
	if h.ts != nil {
		h.ts.Close()
	}
	return res, nil
}

// inProcess builds the daemon's serving stack in this process: both
// simulated platforms on a shared metrics registry behind api.NewHandler,
// or — with cfg.Platforms > 0 — a fleet of that many declarative tenant
// specs, registered cold so instantiation cost lands on first request.
func inProcess(cfg config) (*httptest.Server, error) {
	metrics := obs.NewRegistry()
	reg := predict.NewRegistryWith(predict.RegistryOptions{Metrics: metrics})
	if cfg.Scenario != "" {
		if cfg.Platforms > 0 {
			return nil, fmt.Errorf("-scenario and -platforms are mutually exclusive")
		}
		if _, ok := workload.Lookup(cfg.Scenario); !ok {
			return nil, fmt.Errorf("unknown scenario %q (have %v)", cfg.Scenario, workload.Names())
		}
		// Keep the paper platform names so the worker routing is unchanged;
		// only the load driving them comes from the scenario library.
		for i, id := range []int{1, 2} {
			spec := predict.PlatformSpec{
				Name: fmt.Sprintf("platform%d", id),
				Machines: []predict.MachineSpec{
					{Name: "m0", Kind: "sparc5"},
					{Name: "m1", Kind: "sparc10"},
					{Name: "m2", Kind: "ultra"},
					{Name: "m3", Kind: "ultra"},
				},
				CPU:              []predict.LoadSpec{{Kind: "scenario", Scenario: cfg.Scenario}},
				Net:              &predict.LoadSpec{Kind: "ethernet-contention"},
				Seed:             cfg.Seed + int64(i)*1013,
				Warmup:           cfg.Warmup,
				DisableTickCache: cfg.NoCache,
			}
			if err := reg.RegisterSpec(spec); err != nil {
				return nil, err
			}
		}
		return httptest.NewServer(api.NewHandler(reg, api.Options{Metrics: metrics})), nil
	}
	if cfg.Platforms > 0 {
		for _, spec := range predict.FleetSpecs(cfg.Platforms, cfg.Seed) {
			spec.DisableTickCache = cfg.NoCache
			if err := reg.RegisterSpec(spec); err != nil {
				return nil, err
			}
		}
		return httptest.NewServer(api.NewHandler(reg, api.Options{Metrics: metrics})), nil
	}
	for _, id := range []int{1, 2} {
		c, err := predict.SimulatedConfig(id, cfg.Seed)
		if err != nil {
			return nil, err
		}
		c.Metrics = metrics
		c.DisableTickCache = cfg.NoCache
		svc, err := predict.NewService(c)
		if err != nil {
			return nil, err
		}
		if err := svc.AdvanceTo(cfg.Warmup); err != nil {
			return nil, err
		}
		if err := reg.Register(svc); err != nil {
			return nil, err
		}
	}
	return httptest.NewServer(api.NewHandler(reg, api.Options{Metrics: metrics})), nil
}

func doPredict(client *http.Client, target, platform string, cfg config) (api.PredictResponse, float64, error) {
	var pr api.PredictResponse
	ms, err := timedPost(client, target+"/predict",
		api.PredictRequest{Platform: platform, N: cfg.N, Iterations: cfg.Iterations}, &pr)
	return pr, ms, err
}

// doBatch issues one POST /predict/batch of cfg.Batch identical requests
// and returns the first item's prediction (for the observe feedback step).
// Any per-item error fails the whole sample — batch runs should be as
// clean as single-predict runs.
func doBatch(client *http.Client, target, platform string, cfg config) (api.PredictResponse, float64, error) {
	req := api.BatchPredictRequest{Requests: make([]api.PredictRequest, cfg.Batch)}
	for i := range req.Requests {
		req.Requests[i] = api.PredictRequest{Platform: platform, N: cfg.N, Iterations: cfg.Iterations}
	}
	var br api.BatchPredictResponse
	ms, err := timedPost(client, target+"/predict/batch", req, &br)
	if err != nil {
		return api.PredictResponse{}, ms, err
	}
	if br.Errors > 0 || len(br.Responses) != cfg.Batch {
		return api.PredictResponse{}, ms, fmt.Errorf("batch: %d item errors in %d responses", br.Errors, len(br.Responses))
	}
	first := br.Responses[0]
	if first.PredictResponse == nil {
		return api.PredictResponse{}, ms, fmt.Errorf("batch: first item has no prediction")
	}
	return *first.PredictResponse, ms, nil
}

func doObserve(client *http.Client, target, platform string, pr api.PredictResponse) (float64, error) {
	// Close the loop with the predicted mean as the "measured" runtime — a
	// well-calibrated steady state that exercises the full feedback path.
	return timedPost(client, target+"/observe",
		api.ObserveRequest{Platform: platform, ID: pr.ID, Actual: pr.Mean}, nil)
}

func doAdvance(client *http.Client, target, platform string) (float64, error) {
	return timedPost(client, target+"/advance",
		api.AdvanceRequest{Platform: platform, Seconds: 5}, nil)
}

// doSchedule submits a one-job placement; a job the scheduler cannot place
// anywhere fails the sample.
func doSchedule(client *http.Client, target string, cfg config, worker int) (float64, error) {
	var sr api.ScheduleResponse
	ms, err := timedPost(client, target+"/schedule", api.ScheduleRequest{
		Jobs: []api.ScheduleJob{{
			Name:       fmt.Sprintf("lt-w%d", worker),
			N:          cfg.N,
			Iterations: cfg.Iterations,
		}},
	}, &sr)
	if err != nil {
		return ms, err
	}
	if sr.Unplaced > 0 || len(sr.Placements) != 1 {
		return ms, fmt.Errorf("schedule: %d placements, %d unplaced", len(sr.Placements), sr.Unplaced)
	}
	return ms, nil
}

// schedStatus sweeps GET /schedule/status after the run and returns the
// submitted-job count — the status body must parse under whatever state the
// concurrent workers left behind.
func schedStatus(target string) (int, error) {
	resp, err := http.Get(target + "/schedule/status")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st struct {
		Submitted int `json:"submitted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.Submitted, nil
}

// timedPost posts a JSON body and decodes the response, returning the
// request's wall-clock latency in milliseconds. The body is always drained
// to EOF before close so the keep-alive connection returns to the pool —
// half-read bodies force new connections and, under load, sporadic dial
// errors that showed up as a nonzero error count.
func timedPost(client *http.Client, url string, body, out any) (float64, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	ms := float64(time.Since(start).Microseconds()) / 1000
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return ms, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return ms, err
		}
	}
	return ms, nil
}

// scrapeMetrics fetches GET /metrics and returns the number of metric
// families in a parseable exposition; 0 when the scrape or parse fails
// (e.g. an older daemon without the endpoint).
func scrapeMetrics(target string) int {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	fams, _, err := obs.ParseText(resp.Body)
	if err != nil {
		return 0
	}
	return len(fams)
}

// print renders the human report: one row per operation, ops sorted for a
// stable layout.
func (r result) print(w io.Writer) {
	fmt.Fprintf(w, "loadtest: %d workers for %.1fs against %s\n", r.Workers, r.Duration, r.Target)
	if r.Platforms > 0 {
		fmt.Fprintf(w, "fleet: %d tenant platforms, %d kill/restore cycles\n", r.Platforms, r.Restores)
	}
	fmt.Fprintf(w, "total %d requests (%.1f req/s), %d errors\n", r.Total, r.Throughput, r.Errors)
	ops := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "%-8s %8s %8s %18s %8s %8s %8s\n",
		"op", "count", "req/s", "mean±2σ (ms)", "p50", "p95", "p99")
	for _, op := range ops {
		s := r.Ops[op]
		fmt.Fprintf(w, "%-8s %8d %8.1f %9.2f ± %6.2f %8.2f %8.2f %8.2f\n",
			op, s.Count, s.RPS, s.MeanMS, s.TwoSig, s.P50MS, s.P95MS, s.P99MS)
	}
	if r.MetricFamilies > 0 {
		fmt.Fprintf(w, "metrics: %d families exposed on /metrics\n", r.MetricFamilies)
	}
	if r.SchedJobs > 0 {
		fmt.Fprintf(w, "scheduler: %d jobs submitted via /schedule\n", r.SchedJobs)
	}
}

// mergeBenchEntry inserts/replaces a "serving" object (or "serving_batch"
// when the run drove POST /predict/batch) in a BENCH_<date> style JSON
// file, preserving the benchmark entries bench.sh wrote.
func mergeBenchEntry(path string, r result) error {
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	serving := map[string]any{
		"workers":        r.Workers,
		"duration_s":     r.Duration,
		"throughput_rps": round2(r.Throughput),
	}
	for op, s := range r.Ops {
		serving[op+"_p50_ms"] = round2(s.P50MS)
		serving[op+"_p95_ms"] = round2(s.P95MS)
	}
	key := "serving"
	switch {
	case r.Platforms > 0:
		key = "serving_fleet"
		serving["platforms"] = r.Platforms
		serving["kill_restores"] = r.Restores
	case r.Batch > 1:
		key = "serving_batch"
		serving["batch"] = r.Batch
	}
	doc[key] = serving
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
