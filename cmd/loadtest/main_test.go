package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunInProcessSmoke is the CI smoke: a short in-process run must
// produce nonzero throughput, clean predict latency stats, and a parseable
// /metrics exposition carrying the documented catalog size.
func TestRunInProcessSmoke(t *testing.T) {
	res, err := run(config{
		Seed: 1, Warmup: 300, Duration: 1.5, Workers: 4,
		N: 120, Iterations: 4, ObserveFrac: 0.8, AdvanceFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 || res.Throughput <= 0 {
		t.Fatalf("no load driven: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	p, ok := res.Ops["predict"]
	if !ok || p.Count == 0 {
		t.Fatalf("no predict samples: %+v", res.Ops)
	}
	if p.MeanMS <= 0 || p.TwoSig < 0 || !(p.P50MS <= p.P95MS && p.P95MS <= p.P99MS) {
		t.Errorf("predict latency stats incoherent: %+v", p)
	}
	if o := res.Ops["observe"]; o.Count == 0 {
		t.Error("observe mix configured but no observe samples")
	}
	if res.MetricFamilies < 12 {
		t.Errorf("/metrics exposes %d families, want >= 12", res.MetricFamilies)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := run(config{Workers: 0, Duration: 1}); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := run(config{Workers: 1, Duration: 0}); err == nil {
		t.Error("duration=0 accepted")
	}
}

// TestMergeBenchEntry: the serving entry lands next to existing bench
// content without clobbering it, and overwrites a previous serving entry.
func TestMergeBenchEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(`{"date":"2026-08-06","ns_per_op":{"BenchmarkX":1.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r := result{
		Workers: 4, Duration: 2, Throughput: 123.456,
		Ops: map[string]opStats{"predict": {P50MS: 1.234, P95MS: 5.678}},
	}
	if err := mergeBenchEntry(path, r); err != nil {
		t.Fatal(err)
	}
	if err := mergeBenchEntry(path, r); err != nil { // idempotent re-merge
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{`"BenchmarkX"`, `"serving"`, `"predict_p50_ms": 1.23`, `"throughput_rps": 123.46`} {
		if !strings.Contains(text, want) {
			t.Errorf("merged file missing %s:\n%s", want, text)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	// A fresh path (no existing bench file) also works.
	fresh := filepath.Join(t.TempDir(), "new.json")
	if err := mergeBenchEntry(fresh, r); err != nil {
		t.Fatal(err)
	}
}

func TestResultPrint(t *testing.T) {
	var sb strings.Builder
	r := result{
		Target: "http://x", Workers: 2, Duration: 1, Total: 10, Throughput: 10,
		Ops:            map[string]opStats{"predict": {Count: 10, RPS: 10, MeanMS: 2, TwoSig: 0.5, P50MS: 1.9, P95MS: 2.8, P99MS: 3}},
		MetricFamilies: 13,
	}
	r.print(&sb)
	out := sb.String()
	for _, want := range []string{"2 workers", "predict", "±", "13 families"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCacheVsUncachedSmoke is the serving-cache regression gate: with a
// steady clock (no advances, so every repeated shape is a cache hit) the
// cached serving path must never be slower than the same run with the
// tick cache disabled. ~2 s budget.
func TestCacheVsUncachedSmoke(t *testing.T) {
	base := config{
		Seed: 1, Warmup: 300, Duration: 1, Workers: 4,
		N: 120, Iterations: 4, ObserveFrac: 0, AdvanceFrac: 0,
	}
	cachedCfg, uncachedCfg := base, base
	uncachedCfg.NoCache = true
	cached, err := run(cachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := run(uncachedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Errors != 0 || uncached.Errors != 0 {
		t.Fatalf("request errors: cached=%d uncached=%d", cached.Errors, uncached.Errors)
	}
	if cached.Throughput < uncached.Throughput {
		t.Errorf("cached serving path slower than uncached: %.1f req/s vs %.1f req/s",
			cached.Throughput, uncached.Throughput)
	}
	t.Logf("cached %.1f req/s, uncached %.1f req/s", cached.Throughput, uncached.Throughput)
}

// TestRunFleetKillRestoreSmoke is the fleet-mode acceptance: 1,000
// lazily-instantiated tenant platforms, a mid-run snapshot/kill/restore
// cycle, and the run still completes with zero request errors.
func TestRunFleetKillRestoreSmoke(t *testing.T) {
	res, err := run(config{
		Seed: 1, Duration: 2, Workers: 8,
		N: 120, Iterations: 4, ObserveFrac: 0.8, AdvanceFrac: 0.1,
		Platforms: 1000, KillRestore: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors across the kill/restore cycle", res.Errors)
	}
	if res.Restores != 1 {
		t.Errorf("restores = %d, want 1", res.Restores)
	}
	if p := res.Ops["predict"]; p.Count == 0 {
		t.Fatalf("no predict samples: %+v", res.Ops)
	}
	if res.Platforms != 1000 {
		t.Errorf("result platforms = %d", res.Platforms)
	}
}

// TestRunBatchSmoke drives the POST /predict/batch path in-process: batch
// samples must appear, account for every item in the throughput, and stay
// error-free.
func TestRunBatchSmoke(t *testing.T) {
	res, err := run(config{
		Seed: 1, Warmup: 300, Duration: 1, Workers: 4, Batch: 8,
		N: 120, Iterations: 4, ObserveFrac: 0.5, AdvanceFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	bs, ok := res.Ops["batch"]
	if !ok || bs.Count == 0 {
		t.Fatalf("no batch samples: %+v", res.Ops)
	}
	if _, ok := res.Ops["predict"]; ok {
		t.Error("batch mode still issued single predicts")
	}
	if res.Total < bs.Count*8 {
		t.Errorf("total %d does not account for %d batches of 8", res.Total, bs.Count)
	}
}

// TestRunSchedSmoke mixes POST /schedule placements into the closed loop:
// every placement must land, and the final /schedule/status sweep must
// account for every submitted job.
func TestRunSchedSmoke(t *testing.T) {
	res, err := run(config{
		Seed: 1, Warmup: 300, Duration: 1.5, Workers: 4,
		N: 120, Iterations: 4, ObserveFrac: 0.5, AdvanceFrac: 0.1,
		SchedFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	s, ok := res.Ops["schedule"]
	if !ok || s.Count == 0 {
		t.Fatalf("sched mix configured but no schedule samples: %+v", res.Ops)
	}
	if res.SchedJobs != s.Count {
		t.Errorf("status reports %d jobs, drove %d placements", res.SchedJobs, s.Count)
	}
}
