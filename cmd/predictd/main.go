// Command predictd serves stochastic execution-time predictions over
// HTTP/JSON — the predict.Service core exposed as a long-lived daemon
// against the paper's simulated production platforms. It hosts Platform 1
// (center-mode load) and Platform 2 (bursty 4-modal load) behind one
// registry, advances their shared virtual clocks from wall time, and can
// inject deterministic sensor faults to exercise the gap-aware monitors.
//
// Endpoints:
//
//	POST /predict  {"platform":"platform2","n":800,"iterations":10,...}
//	POST /predict/batch  {"requests":[{...},{...}]} — up to 1024 predict
//	               bodies answered positionally in one tick-coherent call
//	POST /observe  {"platform":"platform2","id":7,"actual":41.3} — feed a
//	               measured runtime back to the online calibrator
//	GET  /accuracy ?platform=platform2 — capture rates, calibration
//	               multiplier, and drift events (all platforms when omitted)
//	GET  /report   ?platform=platform2 — per-machine monitor reports plus
//	               the platform's calibration state
//	GET  /healthz  — status plus per-fault-class gap counters
//	POST /advance  {"platform":"platform2","seconds":60} — manual clock step
//	POST /snapshot — stream a binary image of the full fleet state,
//	               restorable with -restore
//	POST /schedule {"jobs":[{"n":800,"iterations":10,...}],"policy":"quantile"}
//	               — place SOR jobs across the fleet by predicted runtime
//	               distribution (policy defaults to -sched-policy)
//	GET  /schedule/status — fleet-scheduler state: per-tenant saturation,
//	               job lifecycle, makespan, deadline misses
//	GET  /metrics  — Prometheus text exposition (see OPERATIONS.md for the
//	               full metric catalog)
//
// With -specs fleet.json, the daemon serves the declarative fleet in the
// file instead of the built-in paper platforms; tenants instantiate lazily
// on their first request. With -restore snap.bin, the daemon resumes a
// fleet captured by POST /snapshot, bit-identical to a run that never
// stopped. With -record-traces DIR, a clean shutdown records every
// instantiated platform's load processes to DIR as versioned trace files
// (<platform>-cpu<i>.trace, plus <platform>-net.trace when the network is
// contended) that predict.LoadSpec{Kind:"trace"} replays bit-identically.
// With -pprof, net/http/pprof is mounted under /debug/pprof/;
// with -log-requests, one JSON access-log line per request goes to stderr.
// The operator runbook is OPERATIONS.md at the repo root.
//
// Usage:
//
//	predictd -addr :8080 -seed 1 -warmup 600 -tick 5 -drop 0.1 -pprof
//	predictd -specs fleet.json
//	predictd -restore snap.bin
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"prodpred/internal/api"
	"prodpred/internal/faults"
	"prodpred/internal/fleetsched"
	"prodpred/internal/load"
	"prodpred/internal/obs"
	"prodpred/internal/predict"
	"prodpred/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 1, "random seed for the simulated platforms")
		warmup    = flag.Float64("warmup", 600, "virtual seconds of NWS warmup before serving")
		tick      = flag.Float64("tick", 5, "virtual seconds advanced per wall-clock second (0 = manual /advance only)")
		drop      = flag.Float64("drop", 0, "per-sample measurement drop probability on every machine")
		transient = flag.Float64("transient", 0, "per-sample transient sensor-error probability on every machine")
		spike     = flag.Float64("spike", 0, "per-sample outlier-spike probability on every machine")
		outageAt  = flag.Float64("outage-start", 0, "outage window start on machine 0 (virtual s)")
		outageEnd = flag.Float64("outage-end", 0, "outage window end on machine 0 (virtual s)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logReqs   = flag.Bool("log-requests", false, "write one JSON access-log line per request to stderr")
		specsPath = flag.String("specs", "", "serve the declarative fleet in this JSON file instead of the built-in platforms")
		restore   = flag.String("restore", "", "resume the fleet captured in this POST /snapshot image")
		recordDir = flag.String("record-traces", "", "on shutdown, record every instantiated platform's load processes as replayable trace files in this directory")
		schedPol  = flag.String("sched-policy", string(fleetsched.PolicyQuantile), fmt.Sprintf("default POST /schedule placement policy %v", fleetsched.Policies))
		schedQ    = flag.Float64("sched-quantile", fleetsched.DefaultQuantile, "default quantile for the quantile placement policy (0,1)")
	)
	flag.Parse()
	pol, err := fleetsched.ParsePolicy(*schedPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(2)
	}
	if err := run(*addr, *seed, *warmup, *tick, faultFlags{
		drop: *drop, transient: *transient, spike: *spike,
		outageStart: *outageAt, outageEnd: *outageEnd,
	}, *specsPath, *restore, *recordDir, fleetsched.Config{Policy: pol, Quantile: *schedQ}, *pprofOn, *logReqs); err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

// faultFlags collects the sensor-fault knobs applied to every hosted
// platform.
type faultFlags struct {
	drop, transient, spike float64
	outageStart, outageEnd float64
}

// injector builds the deterministic fault injector the flags describe, or
// nil when no fault class is enabled.
func (f faultFlags) injector(seed int64, machines int) (*faults.Injector, error) {
	sched := faults.Schedule{
		DropProb:      f.drop,
		TransientProb: f.transient,
		SpikeProb:     f.spike,
	}
	hasOutage := f.outageEnd > f.outageStart
	if f.drop == 0 && f.transient == 0 && f.spike == 0 && !hasOutage {
		return nil, nil
	}
	in := faults.NewInjector(seed)
	for m := 0; m < machines; m++ {
		s := sched
		if m == 0 && hasOutage {
			s.Outages = []faults.Window{{Start: f.outageStart, End: f.outageEnd}}
		}
		if err := in.Set(m, s); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// specs translates the flags into the declarative per-machine fault
// schedules a PlatformSpec carries — the same shape injector builds, so a
// spec-hosted platform serves bit-identical values to a config-hosted one.
func (f faultFlags) specs(machines int) []predict.FaultSpec {
	hasOutage := f.outageEnd > f.outageStart
	if f.drop == 0 && f.transient == 0 && f.spike == 0 && !hasOutage {
		return nil
	}
	out := make([]predict.FaultSpec, machines)
	for m := range out {
		out[m] = predict.FaultSpec{Machine: m, Drop: f.drop, Transient: f.transient, Spike: f.spike}
		if m == 0 && hasOutage {
			out[m].Outages = []predict.OutageSpec{{Start: f.outageStart, End: f.outageEnd}}
		}
	}
	return out
}

// buildRegistry hosts both paper platforms under the same seed, warmup,
// and fault schedule, declared as specs so the fleet is snapshottable.
// The hosted defaults are instantiated eagerly: the daemon pays warmup at
// startup, not on the first request. A non-nil metrics registry
// instruments every service (per-stage timings, per-platform counters);
// nil disables telemetry.
func buildRegistry(seed int64, warmup float64, ff faultFlags, metrics *obs.Registry) (*predict.Registry, error) {
	reg := predict.NewRegistryWith(predict.RegistryOptions{Metrics: metrics})
	for _, id := range []int{1, 2} {
		spec, err := predict.SimulatedSpec(id, seed)
		if err != nil {
			return nil, err
		}
		spec.Warmup = warmup
		spec.FaultSeed = seed + int64(id)
		spec.Faults = ff.specs(len(spec.Machines))
		if err := reg.RegisterSpec(spec); err != nil {
			return nil, err
		}
		if _, err := reg.Lookup(spec.Name); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// specRegistry serves the declarative fleet in path: every spec registers
// cold and instantiates lazily on its first request.
func specRegistry(path string, metrics *obs.Registry) (*predict.Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	specs, err := predict.ParseSpecs(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	reg := predict.NewRegistryWith(predict.RegistryOptions{Metrics: metrics})
	for _, spec := range specs {
		if err := reg.RegisterSpec(spec); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// restoreRegistry resumes the fleet captured in a POST /snapshot image.
func restoreRegistry(path string, metrics *obs.Registry) (*predict.Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	reg, err := predict.ReadSnapshot(f, predict.RegistryOptions{Metrics: metrics})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}

func run(addr string, seed int64, warmup, tick float64, ff faultFlags, specsPath, restorePath, recordDir string, sched fleetsched.Config, pprofOn, logReqs bool) error {
	metrics := obs.NewRegistry()
	var reg *predict.Registry
	var err error
	switch {
	case restorePath != "" && specsPath != "":
		return errors.New("-specs and -restore are mutually exclusive")
	case restorePath != "":
		reg, err = restoreRegistry(restorePath, metrics)
	case specsPath != "":
		reg, err = specRegistry(specsPath, metrics)
	default:
		reg, err = buildRegistry(seed, warmup, ff, metrics)
	}
	if err != nil {
		return err
	}
	opts := api.Options{Metrics: metrics, EnablePprof: pprofOn, Sched: sched}
	if logReqs {
		opts.AccessLog = log.New(os.Stderr, "", 0)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	log.Printf("predictd: serving %v on %s (tick %gx, warmup %gs, pprof %v)",
		reg.Names(), ln.Addr(), tick, warmup, pprofOn)
	if err := serve(ctx, reg, ln, tick, api.NewHandler(reg, opts)); err != nil {
		return err
	}
	if recordDir != "" {
		return recordFleet(reg, recordDir)
	}
	return nil
}

// recordFleet writes every instantiated platform's load processes to
// replayable trace files: <platform>-cpu<i>.trace per machine plus
// <platform>-net.trace when the network is contended. The traces cover
// virtual time [0, now], so a fleet spec pointing at them (LoadSpec kind
// "trace") replays the exact loads this daemon served against.
func recordFleet(reg *predict.Registry, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	wrote := 0
	for _, svc := range reg.Services() {
		end := svc.Now()
		if end <= 0 {
			continue // never advanced: nothing to record
		}
		scenario, specHash, seed := provenance(svc.Spec())
		record := func(p load.Process, machine int, name string) error {
			h, vals, err := workload.CaptureTrace(p, scenario, specHash, seed, machine, 0, end)
			if err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if err := workload.WriteTrace(f, h, vals); err != nil {
				f.Close()
				return err
			}
			wrote++
			return f.Close()
		}
		env := svc.Env()
		for i := range svc.Machines() {
			if err := record(env.CPULoad(i), i, fmt.Sprintf("%s-cpu%d.trace", svc.Name(), i)); err != nil {
				return err
			}
		}
		if _, constant := env.NetLoad().(load.Constant); !constant {
			if err := record(env.NetLoad(), -1, svc.Name()+"-net.trace"); err != nil {
				return err
			}
		}
	}
	log.Printf("predictd: recorded %d trace files to %s", wrote, dir)
	return nil
}

// provenance extracts trace-header provenance from a platform spec: the
// first scenario name its loads reference (if any), a hash of the spec
// JSON, and the platform seed.
func provenance(spec *predict.PlatformSpec) (scenario, specHash string, seed int64) {
	if spec == nil {
		return "", "", 0
	}
	for _, ls := range spec.CPU {
		if ls.Kind == "scenario" {
			scenario = ls.Scenario
			break
		}
	}
	if b, err := json.Marshal(spec); err == nil {
		sum := sha256.Sum256(b)
		specHash = hex.EncodeToString(sum[:8])
	}
	return scenario, specHash, spec.Seed
}

// serve runs the daemon's HTTP server on ln until ctx is cancelled, then
// shuts it down gracefully, draining in-flight requests. Split from run so
// the tests can bind an ephemeral port, cancel the context, and assert a
// clean stop.
func serve(ctx context.Context, reg *predict.Registry, ln net.Listener, tick float64, handler http.Handler) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	srv := &http.Server{Handler: handler}
	if tick > 0 {
		// Map wall time onto the simulated clocks so monitors keep
		// measuring while the daemon idles between requests.
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					for _, svc := range reg.Services() {
						if err := svc.Advance(tick); err != nil {
							log.Printf("predictd: clock advance: %v", err)
						}
					}
				}
			}
		}()
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutdownCancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("predictd: shutdown: %v", err)
		}
	}()
	err := srv.Serve(ln)
	// Release the shutdown watcher (Serve may have failed on its own) and
	// wait for it so in-flight requests are drained before returning.
	cancel()
	<-shutdownDone
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
