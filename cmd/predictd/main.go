// Command predictd serves stochastic execution-time predictions over
// HTTP/JSON — the predict.Service core exposed as a long-lived daemon
// against the paper's simulated production platforms. It hosts Platform 1
// (center-mode load) and Platform 2 (bursty 4-modal load) behind one
// registry, advances their shared virtual clocks from wall time, and can
// inject deterministic sensor faults to exercise the gap-aware monitors.
//
// Endpoints:
//
//	POST /predict  {"platform":"platform2","n":800,"iterations":10,...}
//	POST /predict/batch  {"requests":[{...},{...}]} — up to 1024 predict
//	               bodies answered positionally in one tick-coherent call
//	POST /observe  {"platform":"platform2","id":7,"actual":41.3} — feed a
//	               measured runtime back to the online calibrator
//	GET  /accuracy ?platform=platform2 — capture rates, calibration
//	               multiplier, and drift events (all platforms when omitted)
//	GET  /report   ?platform=platform2 — per-machine monitor reports plus
//	               the platform's calibration state
//	GET  /healthz  — status plus per-fault-class gap counters
//	POST /advance  {"platform":"platform2","seconds":60} — manual clock step
//	GET  /metrics  — Prometheus text exposition (see OPERATIONS.md for the
//	               full metric catalog)
//
// With -pprof, net/http/pprof is mounted under /debug/pprof/; with
// -log-requests, one JSON access-log line per request goes to stderr. The
// operator runbook is OPERATIONS.md at the repo root.
//
// Usage:
//
//	predictd -addr :8080 -seed 1 -warmup 600 -tick 5 -drop 0.1 -pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"prodpred/internal/api"
	"prodpred/internal/faults"
	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 1, "random seed for the simulated platforms")
		warmup    = flag.Float64("warmup", 600, "virtual seconds of NWS warmup before serving")
		tick      = flag.Float64("tick", 5, "virtual seconds advanced per wall-clock second (0 = manual /advance only)")
		drop      = flag.Float64("drop", 0, "per-sample measurement drop probability on every machine")
		transient = flag.Float64("transient", 0, "per-sample transient sensor-error probability on every machine")
		spike     = flag.Float64("spike", 0, "per-sample outlier-spike probability on every machine")
		outageAt  = flag.Float64("outage-start", 0, "outage window start on machine 0 (virtual s)")
		outageEnd = flag.Float64("outage-end", 0, "outage window end on machine 0 (virtual s)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logReqs   = flag.Bool("log-requests", false, "write one JSON access-log line per request to stderr")
	)
	flag.Parse()
	if err := run(*addr, *seed, *warmup, *tick, faultFlags{
		drop: *drop, transient: *transient, spike: *spike,
		outageStart: *outageAt, outageEnd: *outageEnd,
	}, *pprofOn, *logReqs); err != nil {
		fmt.Fprintln(os.Stderr, "predictd:", err)
		os.Exit(1)
	}
}

// faultFlags collects the sensor-fault knobs applied to every hosted
// platform.
type faultFlags struct {
	drop, transient, spike float64
	outageStart, outageEnd float64
}

// injector builds the deterministic fault injector the flags describe, or
// nil when no fault class is enabled.
func (f faultFlags) injector(seed int64, machines int) (*faults.Injector, error) {
	sched := faults.Schedule{
		DropProb:      f.drop,
		TransientProb: f.transient,
		SpikeProb:     f.spike,
	}
	hasOutage := f.outageEnd > f.outageStart
	if f.drop == 0 && f.transient == 0 && f.spike == 0 && !hasOutage {
		return nil, nil
	}
	in := faults.NewInjector(seed)
	for m := 0; m < machines; m++ {
		s := sched
		if m == 0 && hasOutage {
			s.Outages = []faults.Window{{Start: f.outageStart, End: f.outageEnd}}
		}
		if err := in.Set(m, s); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// buildRegistry hosts both paper platforms under the same seed, warmup,
// and fault schedule. A non-nil metrics registry instruments every service
// (per-stage timings, per-platform counters); nil disables telemetry.
func buildRegistry(seed int64, warmup float64, ff faultFlags, metrics *obs.Registry) (*predict.Registry, error) {
	reg := predict.NewRegistry()
	for _, id := range []int{1, 2} {
		cfg, err := predict.SimulatedConfig(id, seed)
		if err != nil {
			return nil, err
		}
		cfg.Metrics = metrics
		if cfg.Injector, err = ff.injector(seed+int64(id), cfg.Platform.Size()); err != nil {
			return nil, err
		}
		svc, err := predict.NewService(cfg)
		if err != nil {
			return nil, err
		}
		if err := svc.AdvanceTo(warmup); err != nil {
			return nil, err
		}
		if err := reg.Register(svc); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

func run(addr string, seed int64, warmup, tick float64, ff faultFlags, pprofOn, logReqs bool) error {
	metrics := obs.NewRegistry()
	reg, err := buildRegistry(seed, warmup, ff, metrics)
	if err != nil {
		return err
	}
	opts := api.Options{Metrics: metrics, EnablePprof: pprofOn}
	if logReqs {
		opts.AccessLog = log.New(os.Stderr, "", 0)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	log.Printf("predictd: serving %v on %s (tick %gx, warmup %gs, pprof %v)",
		reg.Names(), ln.Addr(), tick, warmup, pprofOn)
	return serve(ctx, reg, ln, tick, api.NewHandler(reg, opts))
}

// serve runs the daemon's HTTP server on ln until ctx is cancelled, then
// shuts it down gracefully, draining in-flight requests. Split from run so
// the tests can bind an ephemeral port, cancel the context, and assert a
// clean stop.
func serve(ctx context.Context, reg *predict.Registry, ln net.Listener, tick float64, handler http.Handler) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	srv := &http.Server{Handler: handler}
	if tick > 0 {
		// Map wall time onto the simulated clocks so monitors keep
		// measuring while the daemon idles between requests.
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					for _, svc := range reg.Services() {
						if err := svc.Advance(tick); err != nil {
							log.Printf("predictd: clock advance: %v", err)
						}
					}
				}
			}
		}()
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutdownCancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("predictd: shutdown: %v", err)
		}
	}()
	err := srv.Serve(ln)
	// Release the shutdown watcher (Serve may have failed on its own) and
	// wait for it so in-flight requests are drained before returning.
	cancel()
	<-shutdownDone
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
