package main

import (
	"net/http"

	"prodpred/internal/api"
	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

// The HTTP layer (handlers, wire types, route table) lives in internal/api
// so the load-test driver and the docs-drift checks can import it. These
// aliases keep the integration tests reading naturally.
type (
	predictRequest   = api.PredictRequest
	predictResponse  = api.PredictResponse
	observeRequest   = api.ObserveRequest
	observeResponse  = api.ObserveResponse
	accuracyResponse = api.AccuracyResponse
	reportResponse   = api.ReportResponse
	healthResponse   = api.HealthResponse
	advanceRequest   = api.AdvanceRequest
)

// newServer returns the daemon's HTTP handler over the registry — split
// from main so the integration tests can drive it through httptest. Pass
// the obs registry the services were built with so GET /metrics serves the
// pipeline families alongside the HTTP ones; nil still serves /metrics
// from a private registry.
func newServer(reg *predict.Registry, metrics *obs.Registry) http.Handler {
	return api.NewHandler(reg, api.Options{Metrics: metrics})
}
