package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"prodpred/internal/calib"
	"prodpred/internal/nws"
	"prodpred/internal/predict"
	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// server routes HTTP requests onto a predict.Registry.
type server struct {
	reg *predict.Registry
}

// newServer returns the daemon's HTTP handler over the registry — split
// from main so the integration tests can drive it through httptest.
func newServer(reg *predict.Registry) http.Handler {
	s := &server{reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /observe", s.handleObserve)
	mux.HandleFunc("GET /accuracy", s.handleAccuracy)
	mux.HandleFunc("GET /report", s.handleReport)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /advance", s.handleAdvance)
	return mux
}

// predictRequest is the wire form of predict.Request.
type predictRequest struct {
	Platform     string  `json:"platform"`
	N            int     `json:"n"`
	Iterations   int     `json:"iterations"`
	Strategy     string  `json:"strategy"`      // mean | conservative | optimistic | balanced
	MaxStrategy  string  `json:"max_strategy"`  // mean | magnitude | probabilistic
	IterationRel string  `json:"iteration_rel"` // related | unrelated
	Advance      float64 `json:"advance"`       // optional virtual seconds to advance first
}

func (pr predictRequest) toRequest() (predict.Request, error) {
	req := predict.Request{
		Platform:   pr.Platform,
		N:          pr.N,
		Iterations: pr.Iterations,
	}
	switch pr.Strategy {
	case "", "mean":
		req.Strategy = sched.MeanBalanced
	case "conservative":
		req.Strategy = sched.Conservative
	case "optimistic":
		req.Strategy = sched.Optimistic
	case "balanced":
		req.TimeBalanced = true
	default:
		return req, fmt.Errorf("unknown strategy %q", pr.Strategy)
	}
	switch pr.MaxStrategy {
	case "", "mean":
		req.MaxStrategy = stochastic.LargestMean
	case "magnitude":
		req.MaxStrategy = stochastic.LargestMagnitude
	case "probabilistic":
		req.MaxStrategy = stochastic.Probabilistic
	default:
		return req, fmt.Errorf("unknown max_strategy %q", pr.MaxStrategy)
	}
	switch pr.IterationRel {
	case "", "related":
		req.IterationRel = structural.Related
	case "unrelated":
		req.IterationRel = structural.Unrelated
	default:
		return req, fmt.Errorf("unknown iteration_rel %q", pr.IterationRel)
	}
	return req, nil
}

// gapsJSON is the wire form of nws.GapStats.
type gapsJSON struct {
	Clean         int `json:"clean"`
	Recovered     int `json:"recovered"`
	Retries       int `json:"retries"`
	Dropped       int `json:"dropped"`
	Outage        int `json:"outage"`
	TransientLost int `json:"transient_lost"`
	SensorErrors  int `json:"sensor_errors"`
	Missed        int `json:"missed"`
	LongestGap    int `json:"longest_gap"`
}

func toGapsJSON(g nws.GapStats) gapsJSON {
	return gapsJSON{
		Clean: g.Clean, Recovered: g.Recovered, Retries: g.Retries,
		Dropped: g.Dropped, Outage: g.Outage, TransientLost: g.TransientLost,
		SensorErrors: g.SensorErrors, Missed: g.Missed, LongestGap: g.LongestGap,
	}
}

type loadJSON struct {
	Machine   int      `json:"machine"`
	Mean      float64  `json:"mean"`
	Spread    float64  `json:"spread"`
	Raw       float64  `json:"raw"`
	Staleness float64  `json:"staleness"`
	Widening  float64  `json:"widening"`
	Gaps      gapsJSON `json:"gaps"`
}

func toLoadJSON(r predict.MachineReport) loadJSON {
	return loadJSON{
		Machine: r.Machine, Mean: r.Load.Mean, Spread: r.Load.Spread,
		Raw: r.Raw, Staleness: r.Staleness, Widening: r.Widening,
		Gaps: toGapsJSON(r.Gaps),
	}
}

// driftJSON is the wire form of calib.DriftEvent.
type driftJSON struct {
	Time   float64 `json:"time"`
	Seq    int     `json:"seq"`
	Reason string  `json:"reason"`
	Stat   float64 `json:"stat"`
}

// accuracyJSON is the wire form of calib.Snapshot — the online accuracy
// and calibration state the /accuracy and /report endpoints expose.
type accuracyJSON struct {
	Observed             int         `json:"observed"`
	WindowFill           int         `json:"window_fill"`
	RawCapture           float64     `json:"raw_capture"`
	CalibratedCapture    float64     `json:"calibrated_capture"`
	CumRawCapture        float64     `json:"cum_raw_capture"`
	CumCalibratedCapture float64     `json:"cum_calibrated_capture"`
	MeanSignedRelErr     float64     `json:"mean_signed_rel_err"`
	MeanAbsRelErr        float64     `json:"mean_abs_rel_err"`
	MeanRawWidth         float64     `json:"mean_raw_width"`
	MeanCalibratedWidth  float64     `json:"mean_calibrated_width"`
	Scale                float64     `json:"scale"`
	Target               float64     `json:"target"`
	SinceReset           int         `json:"since_reset"`
	Drifts               []driftJSON `json:"drifts,omitempty"`
	LastTime             float64     `json:"last_time"`
}

func toAccuracyJSON(s calib.Snapshot) accuracyJSON {
	a := accuracyJSON{
		Observed: s.Observed, WindowFill: s.WindowFill,
		RawCapture: s.RawCapture, CalibratedCapture: s.CalibratedCapture,
		CumRawCapture: s.CumRawCapture, CumCalibratedCapture: s.CumCalibratedCapture,
		MeanSignedRelErr: s.MeanSignedRelErr, MeanAbsRelErr: s.MeanAbsRelErr,
		MeanRawWidth: s.MeanRawWidth, MeanCalibratedWidth: s.MeanCalibratedWidth,
		Scale: s.Scale, Target: s.Target, SinceReset: s.SinceReset,
		LastTime: s.LastTime,
	}
	for _, d := range s.Drifts {
		a.Drifts = append(a.Drifts, driftJSON{Time: d.Time, Seq: d.Seq, Reason: d.Reason, Stat: d.Stat})
	}
	return a
}

type predictResponse struct {
	Platform string  `json:"platform"`
	Time     float64 `json:"time"`
	// ID names this prediction for the POST /observe feedback call.
	ID     uint64  `json:"id"`
	Mean   float64 `json:"mean"`
	Spread float64 `json:"spread"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	// RawSpread is the uncalibrated half-width; Spread is RawSpread ×
	// CalibrationScale (the mean is never rescaled).
	RawSpread        float64    `json:"raw_spread"`
	CalibrationScale float64    `json:"calibration_scale"`
	Degraded         bool       `json:"degraded"`
	PartitionRows    []int      `json:"partition_rows"`
	Loads            []loadJSON `json:"loads"`
	BWMean           float64    `json:"bw_mean"`
	BWSpread         float64    `json:"bw_spread"`
	BWGaps           gapsJSON   `json:"bw_gaps"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var pr predictRequest
	if err := json.NewDecoder(r.Body).Decode(&pr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	req, err := pr.toRequest()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	svc, err := s.reg.Lookup(pr.Platform)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if pr.Advance > 0 {
		if err := svc.Advance(pr.Advance); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	pred, err := svc.Predict(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	lo, hi := pred.Value.Interval()
	resp := predictResponse{
		Platform:         svc.Name(),
		Time:             pred.Time,
		ID:               pred.ID,
		Mean:             pred.Value.Mean,
		Spread:           pred.Value.Spread,
		Lo:               lo,
		Hi:               hi,
		RawSpread:        pred.Raw.Spread,
		CalibrationScale: pred.CalibrationScale,
		Degraded:         pred.Degraded(),
		PartitionRows:    pred.Partition.Rows,
		BWMean:           pred.Bandwidth.Mean,
		BWSpread:         pred.Bandwidth.Spread,
		BWGaps:           toGapsJSON(pred.BWGaps),
	}
	for _, l := range pred.Loads {
		resp.Loads = append(resp.Loads, toLoadJSON(l))
	}
	writeJSON(w, http.StatusOK, resp)
}

type reportResponse struct {
	Platform    string       `json:"platform"`
	Time        float64      `json:"time"`
	Loads       []loadJSON   `json:"loads"`
	Calibration accuracyJSON `json:"calibration"`
	Outstanding int          `json:"outstanding"`
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	svc, err := s.reg.Lookup(r.URL.Query().Get("platform"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	resp := reportResponse{
		Platform:    svc.Name(),
		Time:        svc.Now(),
		Calibration: toAccuracyJSON(svc.Accuracy()),
		Outstanding: svc.Outstanding(),
	}
	for _, rep := range svc.Reports() {
		resp.Loads = append(resp.Loads, toLoadJSON(rep))
	}
	writeJSON(w, http.StatusOK, resp)
}

// observeRequest closes the loop on one prediction: the platform that
// issued it, the prediction id, and the measured runtime in seconds.
type observeRequest struct {
	Platform string  `json:"platform"`
	ID       uint64  `json:"id"`
	Actual   float64 `json:"actual"`
}

type observeResponse struct {
	Platform string       `json:"platform"`
	Accuracy accuracyJSON `json:"accuracy"`
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var or observeRequest
	if err := json.NewDecoder(r.Body).Decode(&or); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	svc, err := s.reg.Lookup(or.Platform)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	snap, err := svc.Observe(or.ID, or.Actual)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, observeResponse{Platform: svc.Name(), Accuracy: toAccuracyJSON(snap)})
}

type accuracyPlatform struct {
	Platform    string       `json:"platform"`
	Time        float64      `json:"time"`
	Outstanding int          `json:"outstanding"`
	Accuracy    accuracyJSON `json:"accuracy"`
}

type accuracyResponse struct {
	Platforms []accuracyPlatform `json:"platforms"`
}

func (s *server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	services := s.reg.Services()
	if name := r.URL.Query().Get("platform"); name != "" {
		svc, err := s.reg.Lookup(name)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		services = []*predict.Service{svc}
	}
	var resp accuracyResponse
	for _, svc := range services {
		resp.Platforms = append(resp.Platforms, accuracyPlatform{
			Platform:    svc.Name(),
			Time:        svc.Now(),
			Outstanding: svc.Outstanding(),
			Accuracy:    toAccuracyJSON(svc.Accuracy()),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthMachine struct {
	Machine   int      `json:"machine"`
	Staleness float64  `json:"staleness"`
	Gaps      gapsJSON `json:"gaps"`
}

type healthPlatform struct {
	Platform string          `json:"platform"`
	Time     float64         `json:"time"`
	Degraded bool            `json:"degraded"`
	Machines []healthMachine `json:"machines"`
	BWGaps   gapsJSON        `json:"bw_gaps"`
}

type healthResponse struct {
	Status    string           `json:"status"` // ok | degraded
	Platforms []healthPlatform `json:"platforms"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok"}
	for _, svc := range s.reg.Services() {
		hp := healthPlatform{
			Platform: svc.Name(),
			Time:     svc.Now(),
			BWGaps:   toGapsJSON(svc.BWGaps()),
		}
		for _, rep := range svc.Reports() {
			if rep.Staleness > 0 {
				hp.Degraded = true
				resp.Status = "degraded"
			}
			hp.Machines = append(hp.Machines, healthMachine{
				Machine: rep.Machine, Staleness: rep.Staleness, Gaps: toGapsJSON(rep.Gaps),
			})
		}
		resp.Platforms = append(resp.Platforms, hp)
	}
	writeJSON(w, http.StatusOK, resp)
}

type advanceRequest struct {
	Platform string  `json:"platform"`
	Seconds  float64 `json:"seconds"`
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var ar advanceRequest
	if err := json.NewDecoder(r.Body).Decode(&ar); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if ar.Seconds <= 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("seconds must be positive, got %g", ar.Seconds))
		return
	}
	services := s.reg.Services()
	if ar.Platform != "" {
		svc, err := s.reg.Lookup(ar.Platform)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		services = []*predict.Service{svc}
	}
	out := map[string]float64{}
	for _, svc := range services {
		if err := svc.Advance(ar.Seconds); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		out[svc.Name()] = svc.Now()
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
