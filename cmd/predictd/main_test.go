package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

// newTestServer builds the daemon's full stack — registry, services,
// injected faults, shared metrics registry — behind an httptest server.
// Faults: 30% dropout on every machine plus an outage window on machine 0
// that the warmup period crosses, so the gap-aware path is exercised end
// to end.
func newTestServer(t *testing.T, seed int64) (*httptest.Server, *predict.Registry) {
	t.Helper()
	metrics := obs.NewRegistry()
	reg, err := buildRegistry(seed, 600, faultFlags{
		drop:        0.3,
		outageStart: 100,
		outageEnd:   250,
	}, metrics)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(reg, metrics))
	t.Cleanup(ts.Close)
	return ts, reg
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPredictEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	resp := postJSON(t, ts.URL+"/predict", predictRequest{
		Platform: "platform2", N: 120, Iterations: 6,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	pr := decode[predictResponse](t, resp)
	if pr.Platform != "platform2" {
		t.Errorf("platform=%q", pr.Platform)
	}
	if pr.Time != 600 {
		t.Errorf("time=%g, want warmup 600", pr.Time)
	}
	if pr.Mean <= 0 || pr.Spread <= 0 {
		t.Errorf("prediction %g ± %g not a production interval", pr.Mean, pr.Spread)
	}
	if !(pr.Lo < pr.Mean && pr.Mean < pr.Hi) {
		t.Errorf("interval [%g,%g] does not bracket mean %g", pr.Lo, pr.Hi, pr.Mean)
	}
	if len(pr.PartitionRows) != 4 || len(pr.Loads) != 4 {
		t.Errorf("partition=%v loads=%d", pr.PartitionRows, len(pr.Loads))
	}
	rows := 0
	for _, r := range pr.PartitionRows {
		rows += r
	}
	if rows != 120-2 {
		t.Errorf("partition rows sum=%d, want %d interior rows", rows, 118)
	}
	// Injected sensor faults must surface in the per-machine diagnostics.
	dropped, outage := 0, 0
	for _, l := range pr.Loads {
		dropped += l.Gaps.Dropped
		outage += l.Gaps.Outage
	}
	if dropped == 0 {
		t.Error("30% dropout injected but no drops reported")
	}
	if outage == 0 {
		t.Error("outage window injected but no outage misses reported")
	}
	if pr.BWMean <= 0 || pr.BWMean > 1 {
		t.Errorf("bandwidth fraction=%g", pr.BWMean)
	}
}

func TestPredictEndpointOptions(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	for _, body := range []predictRequest{
		{Platform: "platform1", N: 80, Iterations: 4, Strategy: "conservative"},
		{Platform: "platform2", N: 80, Iterations: 4, Strategy: "balanced", MaxStrategy: "probabilistic", IterationRel: "unrelated"},
		{Platform: "platform2", N: 80, Iterations: 4, Strategy: "optimistic", MaxStrategy: "magnitude", Advance: 30},
	} {
		resp := postJSON(t, ts.URL+"/predict", body)
		pr := decode[predictResponse](t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: status=%d", body, resp.StatusCode)
		}
		if pr.Mean <= 0 {
			t.Errorf("%+v: mean=%g", body, pr.Mean)
		}
	}
}

func TestPredictEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status=%d", resp.StatusCode)
	}
	cases := []struct {
		body predictRequest
		want int
	}{
		{predictRequest{Platform: "atlantis", N: 80, Iterations: 4}, http.StatusNotFound},
		{predictRequest{Platform: "platform2", N: 2, Iterations: 4}, http.StatusBadRequest},
		{predictRequest{Platform: "platform2", N: 80, Iterations: 0}, http.StatusBadRequest},
		{predictRequest{Platform: "platform2", N: 80, Iterations: 4, Strategy: "vibes"}, http.StatusBadRequest},
		{predictRequest{N: 80, Iterations: 4}, http.StatusNotFound}, // ambiguous: two platforms hosted
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/predict", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%+v: status=%d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

func TestHealthzReportsFaultClasses(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	h := decode[healthResponse](t, resp)
	if h.Status != "ok" && h.Status != "degraded" {
		t.Errorf("status=%q", h.Status)
	}
	if len(h.Platforms) != 2 {
		t.Fatalf("platforms=%d", len(h.Platforms))
	}
	for _, p := range h.Platforms {
		if len(p.Machines) != 4 {
			t.Errorf("%s: machines=%d", p.Platform, len(p.Machines))
		}
		dropped, outage, clean := 0, 0, 0
		for _, m := range p.Machines {
			dropped += m.Gaps.Dropped
			outage += m.Gaps.Outage
			clean += m.Gaps.Clean
		}
		if dropped == 0 || clean == 0 {
			t.Errorf("%s: per-fault-class counters empty: dropped=%d clean=%d",
				p.Platform, dropped, clean)
		}
		if p.Machines[0].Gaps.Outage == 0 {
			t.Errorf("%s: machine 0 outage window not counted", p.Platform)
		}
		if outage != p.Machines[0].Gaps.Outage {
			t.Errorf("%s: outage on unscheduled machines", p.Platform)
		}
	}
}

func TestReportAndAdvanceEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	resp, err := http.Get(ts.URL + "/report?platform=platform1")
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[reportResponse](t, resp)
	if rep.Platform != "platform1" || rep.Time != 600 || len(rep.Loads) != 4 {
		t.Errorf("report=%+v", rep)
	}
	for _, l := range rep.Loads {
		if l.Mean <= 0 {
			t.Errorf("machine %d report mean=%g", l.Machine, l.Mean)
		}
	}
	adv := postJSON(t, ts.URL+"/advance", advanceRequest{Platform: "platform1", Seconds: 60})
	times := decode[map[string]float64](t, adv)
	if times["platform1"] != 660 {
		t.Errorf("advance result=%v", times)
	}
	// Platform 2 was not advanced.
	resp2, err := http.Get(ts.URL + "/report?platform=platform2")
	if err != nil {
		t.Fatal(err)
	}
	if rep2 := decode[reportResponse](t, resp2); rep2.Time != 600 {
		t.Errorf("platform2 time=%g, want 600", rep2.Time)
	}
	bad := postJSON(t, ts.URL+"/advance", advanceRequest{Platform: "platform1", Seconds: -5})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("negative advance status=%d", bad.StatusCode)
	}
}

// TestServingDeterminism: two daemons with the same seed and fault flags
// serve bit-identical predictions — the serving layer preserves the
// pipeline's same-seed determinism even under injected faults.
func TestServingDeterminism(t *testing.T) {
	ts1, _ := newTestServer(t, 7)
	ts2, _ := newTestServer(t, 7)
	body := predictRequest{Platform: "platform2", N: 100, Iterations: 5}
	p1 := decode[predictResponse](t, postJSON(t, ts1.URL+"/predict", body))
	p2 := decode[predictResponse](t, postJSON(t, ts2.URL+"/predict", body))
	if p1.Mean != p2.Mean || p1.Spread != p2.Spread {
		t.Errorf("same-seed daemons diverged: %g±%g vs %g±%g",
			p1.Mean, p1.Spread, p2.Mean, p2.Spread)
	}
	if fmt.Sprintf("%+v", p1.Loads) != fmt.Sprintf("%+v", p2.Loads) {
		t.Error("same-seed daemons report different load diagnostics")
	}
}

func TestFaultFlagInjector(t *testing.T) {
	in, err := faultFlags{}.injector(1, 4)
	if err != nil || in != nil {
		t.Errorf("no flags should build no injector: %v, %v", in, err)
	}
	in, err = faultFlags{drop: 0.5}.injector(1, 4)
	if err != nil || in == nil {
		t.Errorf("drop flag should build an injector: %v", err)
	}
	if _, err = (faultFlags{drop: 1.5}).injector(1, 4); err == nil {
		t.Error("out-of-range probability should fail")
	}
}

// TestObserveAndAccuracyEndpoints closes the prediction loop over the
// wire: predict, observe the measured runtime against the returned id,
// and read the accuracy state back through /observe, /accuracy, and
// /report.
func TestObserveAndAccuracyEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	pr := decode[predictResponse](t, postJSON(t, ts.URL+"/predict", predictRequest{
		Platform: "platform1", N: 100, Iterations: 5,
	}))
	if pr.ID == 0 {
		t.Fatal("prediction carries no id")
	}
	if pr.CalibrationScale != 1 || pr.RawSpread != pr.Spread {
		t.Errorf("fresh daemon should serve uncalibrated intervals: scale=%g raw=%g spread=%g",
			pr.CalibrationScale, pr.RawSpread, pr.Spread)
	}

	resp := postJSON(t, ts.URL+"/observe", observeRequest{
		Platform: "platform1", ID: pr.ID, Actual: pr.Mean,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status=%d", resp.StatusCode)
	}
	or := decode[observeResponse](t, resp)
	if or.Platform != "platform1" || or.Accuracy.Observed != 1 || or.Accuracy.RawCapture != 1 {
		t.Errorf("observe response=%+v", or)
	}

	resp2, err := http.Get(ts.URL + "/accuracy")
	if err != nil {
		t.Fatal(err)
	}
	acc := decode[accuracyResponse](t, resp2)
	if len(acc.Platforms) != 2 {
		t.Fatalf("accuracy platforms=%d", len(acc.Platforms))
	}
	for _, p := range acc.Platforms {
		want := 0
		if p.Platform == "platform1" {
			want = 1
		}
		if p.Accuracy.Observed != want || p.Outstanding != 0 {
			t.Errorf("%s: observed=%d outstanding=%d, want %d observed",
				p.Platform, p.Accuracy.Observed, p.Outstanding, want)
		}
		if p.Accuracy.Target != 0.95 || p.Accuracy.Scale != 1 {
			t.Errorf("%s: target=%g scale=%g", p.Platform, p.Accuracy.Target, p.Accuracy.Scale)
		}
	}
	resp3, err := http.Get(ts.URL + "/accuracy?platform=platform1")
	if err != nil {
		t.Fatal(err)
	}
	if one := decode[accuracyResponse](t, resp3); len(one.Platforms) != 1 || one.Platforms[0].Platform != "platform1" {
		t.Errorf("filtered accuracy=%+v", one)
	}

	// /report now carries the calibration state alongside the monitors.
	resp4, err := http.Get(ts.URL + "/report?platform=platform1")
	if err != nil {
		t.Fatal(err)
	}
	rep := decode[reportResponse](t, resp4)
	if rep.Calibration.Observed != 1 || rep.Outstanding != 0 {
		t.Errorf("report calibration=%+v outstanding=%d", rep.Calibration, rep.Outstanding)
	}
	for _, l := range rep.Loads {
		if l.Widening < 1 {
			t.Errorf("machine %d widening=%g", l.Machine, l.Widening)
		}
	}
}

func TestObserveEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	pr := decode[predictResponse](t, postJSON(t, ts.URL+"/predict", predictRequest{
		Platform: "platform1", N: 100, Iterations: 5,
	}))
	cases := []struct {
		name string
		body observeRequest
		want int
	}{
		{"unknown platform", observeRequest{Platform: "atlantis", ID: pr.ID, Actual: 1}, http.StatusNotFound},
		{"never-issued id", observeRequest{Platform: "platform1", ID: 999, Actual: 1}, http.StatusBadRequest},
		{"non-positive actual", observeRequest{Platform: "platform1", ID: pr.ID, Actual: 0}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/observe", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status=%d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Post(ts.URL+"/observe", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status=%d", resp.StatusCode)
	}
	// First observe consumes the id; a second must fail.
	ok := postJSON(t, ts.URL+"/observe", observeRequest{Platform: "platform1", ID: pr.ID, Actual: pr.Mean})
	ok.Body.Close()
	dup := postJSON(t, ts.URL+"/observe", observeRequest{Platform: "platform1", ID: pr.ID, Actual: pr.Mean})
	dup.Body.Close()
	if ok.StatusCode != http.StatusOK || dup.StatusCode != http.StatusBadRequest {
		t.Errorf("observe=%d re-observe=%d", ok.StatusCode, dup.StatusCode)
	}
}

// TestMetricsEndpoint: the daemon's GET /metrics serves the shared
// registry — pipeline families for both hosted platforms alongside the
// HTTP families, in parseable exposition form.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 4)
	pr := postJSON(t, ts.URL+"/predict", predictRequest{Platform: "platform2", N: 80, Iterations: 4})
	pr.Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	fams, samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("daemon exposition does not parse: %v", err)
	}
	if len(fams) < 12 || samples == 0 {
		t.Errorf("daemon exposes %d families / %d samples, want >= 12 / > 0", len(fams), samples)
	}
	for _, name := range []string{"predict_predictions_total", "http_requests_total", "predictd_uptime_seconds"} {
		if _, ok := fams[name]; !ok {
			t.Errorf("daemon exposition missing %q", name)
		}
	}
}

// TestGracefulShutdown drives the real serve loop (not httptest): bind an
// ephemeral port, answer a request, cancel the context, and require a
// clean drain — the path main exercises on SIGINT.
func TestGracefulShutdown(t *testing.T) {
	reg, err := buildRegistry(9, 600, faultFlags{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- serve(ctx, reg, ln, 5, newServer(reg, nil)) }()
	url := "http://" + ln.Addr().String()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("server not serving before shutdown: %v", err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not stop after context cancellation")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
