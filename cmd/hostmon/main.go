// Command hostmon runs the NWS reimplementation against THIS machine: it
// samples the real 1-minute load average at a fixed cadence, converts it
// to an availability fraction, and prints the mixture-of-experts forecast
// stream — a live miniature of the monitoring the paper's experiments
// depended on. Linux only (reads /proc/loadavg).
//
// Usage:
//
//	hostmon -samples 30 -period 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prodpred/internal/nws"
)

func main() {
	var (
		samples = flag.Int("samples", 30, "number of measurements to take")
		period  = flag.Duration("period", time.Second, "sampling period")
	)
	flag.Parse()
	if err := run(*samples, *period); err != nil {
		fmt.Fprintln(os.Stderr, "hostmon:", err)
		os.Exit(1)
	}
}

func run(samples int, period time.Duration) error {
	mon, err := nws.NewHostMonitor(512)
	if err != nil {
		return err
	}
	fmt.Printf("Monitoring this host's CPU availability (%d samples, every %v)\n", samples, period)
	fmt.Printf("%-6s %-12s %-14s %-12s %s\n", "#", "availability", "forecast", "±2·RMSE", "best forecaster")
	for i := 0; i < samples; i++ {
		v, err := mon.Sample()
		if err != nil {
			return err
		}
		f, ferr := mon.Forecast()
		if ferr != nil {
			fmt.Printf("%-6d %-12.3f %s\n", i, v, "(warming up)")
		} else {
			sv := f.Stochastic()
			fmt.Printf("%-6d %-12.3f %-14.3f %-12.3f %s\n", i, v, f.Value, sv.Spread, f.Best)
		}
		if i < samples-1 {
			time.Sleep(period)
		}
	}
	f, err := mon.Forecast()
	if err != nil {
		return err
	}
	fmt.Printf("\nFinal stochastic availability value for this host: %s\n", f.Stochastic())
	return nil
}
