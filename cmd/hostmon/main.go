// Command hostmon runs the NWS reimplementation against THIS machine: it
// samples the real 1-minute load average at a fixed cadence, converts it
// to an availability fraction, and prints the mixture-of-experts forecast
// stream — a live miniature of the monitoring the paper's experiments
// depended on. Linux only (reads /proc/loadavg).
//
// Usage:
//
//	hostmon -samples 30 -period 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prodpred/internal/nws"
)

func main() {
	var (
		samples = flag.Int("samples", 30, "number of measurements to take")
		period  = flag.Duration("period", time.Second, "sampling period")
	)
	flag.Parse()
	if err := run(*samples, *period); err != nil {
		fmt.Fprintln(os.Stderr, "hostmon:", err)
		os.Exit(1)
	}
}

func run(samples int, period time.Duration) error {
	mon, err := nws.NewHostMonitor(512)
	if err != nil {
		return err
	}
	fmt.Printf("Monitoring this host's CPU availability (%d samples, every %v)\n", samples, period)
	fmt.Printf("%-6s %-12s %-14s %-12s %s\n", "#", "availability", "forecast", "±2·RMSE", "best forecaster")
	missed := 0
	for i := 0; i < samples; i++ {
		v, err := mon.Sample()
		switch {
		case err != nil:
			// A failed read is a gap, not a fatal condition: skip the tick,
			// keep forecasting from the surviving history.
			missed++
			fmt.Printf("%-6d %-12s (sensor error: %v)\n", i, "-", err)
		default:
			f, ferr := mon.Forecast()
			if ferr != nil {
				fmt.Printf("%-6d %-12.3f %s\n", i, v, "(warming up)")
			} else {
				sv := f.Stochastic()
				fmt.Printf("%-6d %-12.3f %-14.3f %-12.3f %s\n", i, v, f.Value, sv.Spread, f.Best)
			}
		}
		if i < samples-1 {
			time.Sleep(period)
		}
	}
	if missed > 0 {
		fmt.Printf("\nSensor health: %d/%d samples recorded, %d missed\n", samples-missed, samples, missed)
	}
	f, err := mon.Forecast()
	if err != nil {
		return fmt.Errorf("no sample ever succeeded: %w", err)
	}
	fmt.Printf("\nFinal stochastic availability value for this host: %s\n", f.Stochastic())
	return nil
}
