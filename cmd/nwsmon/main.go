// Command nwsmon runs the Network Weather Service reimplementation against
// a simulated production machine and prints the forecast stream: the
// measured availability, the mixture-of-experts forecast, its error
// estimate, and the winning forecaster.
//
// Sensor faults can be injected to demonstrate the gap-aware monitor:
// dropped samples, outlier spikes, transient errors, and timed outage
// windows are skipped, retried, or degraded through — never fatal — and a
// per-fault-class summary is printed at the end.
//
// Usage:
//
//	nwsmon -load bursty -duration 600 -period 5 -seed 1
//	nwsmon -load bursty -drop 0.2 -outage 300:420 -spike 0.05 -faultseed 7
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"prodpred/internal/cluster"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/simenv"
	"prodpred/internal/stochastic"
)

func main() {
	var (
		loadKind  = flag.String("load", "bursty", "load class: center | trimodal | bursty | light | dedicated")
		duration  = flag.Float64("duration", 600, "virtual seconds to monitor")
		period    = flag.Float64("period", nws.DefaultPeriod, "sensor period (s)")
		seed      = flag.Int64("seed", 1, "random seed")
		drop      = flag.Float64("drop", 0, "per-sample probability of a dropped measurement")
		spike     = flag.Float64("spike", 0, "per-sample probability of an outlier spike")
		spikeFac  = flag.Float64("spikefactor", faults.DefaultSpikeFactor, "outlier magnitude (x and /)")
		transient = flag.Float64("transient", 0, "per-sample probability of a transient (retryable) error")
		outage    = flag.String("outage", "", "comma-separated outage windows start:end, e.g. 300:420")
		faultSeed = flag.Int64("faultseed", 1, "seed for the fault injector")
	)
	flag.Parse()
	windows, err := parseOutages(*outage)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwsmon:", err)
		os.Exit(1)
	}
	cfg := runConfig{
		kind:     *loadKind,
		duration: *duration,
		period:   *period,
		seed:     *seed,
		schedule: faults.Schedule{
			DropProb:      *drop,
			SpikeProb:     *spike,
			SpikeFactor:   *spikeFac,
			TransientProb: *transient,
			Outages:       windows,
		},
		faultSeed: *faultSeed,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "nwsmon:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	kind      string
	duration  float64
	period    float64
	seed      int64
	schedule  faults.Schedule
	faultSeed int64
}

func (c runConfig) faulty() bool {
	s := c.schedule
	return s.DropProb > 0 || s.SpikeProb > 0 || s.TransientProb > 0 || len(s.Outages) > 0
}

// parseOutages parses "start:end[,start:end...]" into windows.
func parseOutages(s string) ([]faults.Window, error) {
	if s == "" {
		return nil, nil
	}
	var out []faults.Window
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("outage window %q is not start:end", part)
		}
		start, err := strconv.ParseFloat(lo, 64)
		if err != nil {
			return nil, fmt.Errorf("outage start %q: %v", lo, err)
		}
		end, err := strconv.ParseFloat(hi, 64)
		if err != nil {
			return nil, fmt.Errorf("outage end %q: %v", hi, err)
		}
		out = append(out, faults.Window{Start: start, End: end})
	}
	return out, nil
}

func makeLoad(kind string, seed int64) (load.Process, error) {
	switch kind {
	case "center":
		return load.Platform1CenterMode(seed)
	case "trimodal":
		return load.Platform1TriModal(seed)
	case "bursty":
		return load.Platform2FourModeBursty(seed)
	case "light":
		return load.LightLoad(seed)
	case "dedicated":
		return load.Dedicated(), nil
	}
	return nil, fmt.Errorf("unknown load class %q", kind)
}

func run(w *os.File, cfg runConfig) error {
	proc, err := makeLoad(cfg.kind, cfg.seed)
	if err != nil {
		return err
	}
	plat := cluster.Platform1()
	cpu := make([]load.Process, plat.Size())
	cpu[0] = proc
	for i := 1; i < plat.Size(); i++ {
		cpu[i] = load.Dedicated()
	}
	env, err := simenv.New(plat, cpu, load.Dedicated())
	if err != nil {
		return err
	}
	sensor, err := nws.CPUSensor(env, 0)
	if err != nil {
		return err
	}
	var inj *faults.Injector
	if cfg.faulty() {
		inj = faults.NewInjector(cfg.faultSeed)
		if err := inj.Set(0, cfg.schedule); err != nil {
			return err
		}
		sensor = inj.Sensor(0, sensor)
	}
	mon, err := nws.NewSensorMonitor(sensor, cfg.period, 512)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "NWS CPU monitor: %s load, period %.0fs", cfg.kind, cfg.period)
	if inj != nil {
		fmt.Fprintf(w, " (faults: drop %.0f%%, spike %.0f%%, transient %.0f%%, %d outage windows)",
			cfg.schedule.DropProb*100, cfg.schedule.SpikeProb*100,
			cfg.schedule.TransientProb*100, len(cfg.schedule.Outages))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %-10s %-14s %-10s %s\n", "t", "measured", "forecast", "±2·RMSE", "best forecaster")
	prior := stochastic.New(0.5, 0.5)
	// Integer step index, not t += period: float accumulation on
	// non-representable periods (0.1, ...) skips or duplicates the final
	// sample on long runs.
	steps := int(math.Floor(cfg.duration/cfg.period + 1e-9))
	var prevGaps nws.GapStats
	for i := 0; i <= steps; i++ {
		t := float64(i) * cfg.period
		if err := mon.RunUntil(t); err != nil {
			return err
		}
		gaps := mon.Gaps()
		measured := "-"
		if gaps.Missed == prevGaps.Missed {
			if last, ok := mon.Last(); ok {
				measured = fmt.Sprintf("%.3f", last.V)
			}
		} else {
			measured = "(" + missClass(prevGaps, gaps) + ")"
		}
		prevGaps = gaps
		sv := mon.RobustReport(t, prior)
		best := "(degraded)"
		if f, err := mon.Forecast(); err == nil && mon.Staleness() <= 8 {
			best = f.Best
		}
		fmt.Fprintf(w, "%-8.0f %-10s %-14.3f %-10.3f %s\n", t, measured, sv.Mean, sv.Spread, best)
	}

	fmt.Fprintln(w, "\nFinal forecaster scoreboard (postmortem RMSE):")
	rmses := mon.Mix().RMSEs()
	names := make([]string, 0, len(rmses))
	for name := range rmses {
		names = append(names, name)
	}
	sort.Strings(names) // map order would shuffle the scoreboard run-to-run
	for _, name := range names {
		fmt.Fprintf(w, "  %-14s %.4f\n", name, rmses[name])
	}

	g := mon.Gaps()
	fmt.Fprintf(w, "\nSensor health: %d/%d samples recorded (%d clean, %d recovered by retry)\n",
		g.Recorded(), g.Scheduled(), g.Clean, g.Recovered)
	fmt.Fprintf(w, "  dropped %d | outage %d | transient-lost %d | sensor errors %d | retries %d | longest gap %d samples\n",
		g.Dropped, g.Outage, g.TransientLost, g.SensorErrors, g.Retries, g.LongestGap)
	if inj != nil {
		st := inj.Stats(0)
		fmt.Fprintf(w, "Injected faults: %d drops, %d spikes, %d transients, %d outage hits (%d calls clean)\n",
			st.Drops, st.Spikes, st.Transients, st.OutageHits, st.Clean)
	}
	fmt.Fprintf(w, "Final staleness: %.0f periods (degradation factor %.2f)\n",
		mon.Staleness(), mon.DegradationFactor())
	return nil
}

// missClass names the fault class of the sample missed since the previous
// tick, for the stream display.
func missClass(prev, cur nws.GapStats) string {
	switch {
	case cur.Dropped > prev.Dropped:
		return "dropped"
	case cur.Outage > prev.Outage:
		return "outage"
	case cur.TransientLost > prev.TransientLost:
		return "transient"
	default:
		return "error"
	}
}
