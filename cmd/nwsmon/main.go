// Command nwsmon runs the Network Weather Service reimplementation against
// a simulated production machine and prints the forecast stream: the
// measured availability, the mixture-of-experts forecast, its error
// estimate, and the winning forecaster.
//
// Usage:
//
//	nwsmon -load bursty -duration 600 -period 5 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/simenv"
)

func main() {
	var (
		loadKind = flag.String("load", "bursty", "load class: center | trimodal | bursty | light | dedicated")
		duration = flag.Float64("duration", 600, "virtual seconds to monitor")
		period   = flag.Float64("period", nws.DefaultPeriod, "sensor period (s)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*loadKind, *duration, *period, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "nwsmon:", err)
		os.Exit(1)
	}
}

func makeLoad(kind string, seed int64) (load.Process, error) {
	switch kind {
	case "center":
		return load.Platform1CenterMode(seed)
	case "trimodal":
		return load.Platform1TriModal(seed)
	case "bursty":
		return load.Platform2FourModeBursty(seed)
	case "light":
		return load.LightLoad(seed)
	case "dedicated":
		return load.Dedicated(), nil
	}
	return nil, fmt.Errorf("unknown load class %q", kind)
}

func run(kind string, duration, period float64, seed int64) error {
	proc, err := makeLoad(kind, seed)
	if err != nil {
		return err
	}
	plat := cluster.Platform1()
	cpu := make([]load.Process, plat.Size())
	cpu[0] = proc
	for i := 1; i < plat.Size(); i++ {
		cpu[i] = load.Dedicated()
	}
	env, err := simenv.New(plat, cpu, load.Dedicated())
	if err != nil {
		return err
	}
	mon, err := nws.NewCPUMonitor(env, 0, period, 512)
	if err != nil {
		return err
	}

	fmt.Printf("NWS CPU monitor: %s load, period %.0fs\n", kind, period)
	fmt.Printf("%-8s %-10s %-14s %-10s %s\n", "t", "measured", "forecast", "±2·RMSE", "best forecaster")
	for t := 0.0; t <= duration; t += period {
		if err := mon.RunUntil(t); err != nil {
			return err
		}
		measured, _ := mon.Last()
		f, err := mon.Forecast()
		if err != nil {
			return err
		}
		sv := f.Stochastic()
		fmt.Printf("%-8.0f %-10.3f %-14.3f %-10.3f %s\n",
			t, measured.V, f.Value, sv.Spread, f.Best)
	}
	fmt.Println("\nFinal forecaster scoreboard (postmortem RMSE):")
	for name, rmse := range mon.Mix().RMSEs() {
		fmt.Printf("  %-14s %.4f\n", name, rmse)
	}
	return nil
}
