// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list             list all experiment IDs
//	experiments -run fig9         run one experiment
//	experiments -all              run everything
//	experiments -all -jobs 4      run everything on 4 workers
//	experiments -seed 7 -run fig5 override the seed
//
// With -jobs N (or -jobs 0 for GOMAXPROCS), -all executes experiments
// concurrently on a worker pool; every experiment is deterministic given
// its seed, so the output is identical to a sequential run and is always
// printed in ID order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prodpred/internal/experiments"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiments")
		run  = flag.String("run", "", "experiment ID to run")
		all  = flag.Bool("all", false, "run every experiment")
		seed = flag.Int64("seed", 1, "random seed")
		jobs = flag.Int("jobs", 0, "workers for -all (0 = GOMAXPROCS)")
		out  = flag.String("out", "", "also write artifacts (<id>.txt, <id>_metrics.csv) to this directory")
	)
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
	case *run != "":
		e, err := experiments.Lookup(*run)
		if err != nil {
			fatal(err)
		}
		if err := runOne(e, *seed, *out); err != nil {
			fatal(err)
		}
	case *all:
		for _, oc := range experiments.RunAll(*seed, *jobs) {
			if oc.Err != nil {
				fatal(fmt.Errorf("%s: %w", oc.Experiment.ID, oc.Err))
			}
			if err := printResult(oc.Experiment, oc.Result, *out); err != nil {
				fatal(err)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, seed int64, outDir string) error {
	res, err := e.Run(seed)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	return printResult(e, res, outDir)
}

func printResult(e experiments.Experiment, res *experiments.Result, outDir string) error {
	fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
	fmt.Printf("paper: %s\n\n", e.Paper)
	fmt.Println(res.Text)
	if len(res.Metrics) > 0 {
		fmt.Println("metrics:")
		for _, k := range sortedKeys(res.Metrics) {
			fmt.Printf("  %-24s %.6g\n", k, res.Metrics[k])
		}
	}
	fmt.Println()
	if outDir != "" {
		return writeArtifacts(res, e, outDir)
	}
	return nil
}

func writeArtifacts(res *experiments.Result, e experiments.Experiment, dir string) error {
	header := fmt.Sprintf("%s: %s\npaper: %s\n\n", e.ID, e.Title, e.Paper)
	txt := filepath.Join(dir, res.ID+".txt")
	if err := os.WriteFile(txt, []byte(header+res.Text), 0o644); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("metric,value\n")
	for _, k := range sortedKeys(res.Metrics) {
		fmt.Fprintf(&b, "%s,%g\n", k, res.Metrics[k])
	}
	return os.WriteFile(filepath.Join(dir, res.ID+"_metrics.csv"), []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
