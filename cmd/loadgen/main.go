// Command loadgen generates production-load traces and summarizes recorded
// ones. Generation goes through the workload scenario subsystem: pick a
// library scenario (-scenario), a scenario spec file (-spec), or a legacy
// single-generator alias (-kind), and loadgen writes the versioned trace
// format (JSON header + one sample per line) that predict.LoadSpec{Kind:
// "trace"} replays bit-identically. -replay summarizes an existing trace
// (either format): distribution stats, modal structure, and the scenario
// scorecard (burst count, tail index, diurnal period).
//
// Usage:
//
//	loadgen -list
//	loadgen -scenario flash-crowd -machine 1 -duration 3600 -o crowd.trace
//	loadgen -spec myscenario.json -seed 7 -o custom.trace
//	loadgen -kind bursty -duration 3600 -o trace.out
//	loadgen -replay crowd.trace
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"prodpred/internal/load"
	"prodpred/internal/modal"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
	"prodpred/internal/timeseries"
	"prodpred/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "", "legacy generator alias: center | trimodal | bursty | light | ethernet | sessions (default bursty when no -scenario/-spec)")
		scenario = flag.String("scenario", "", "workload-library scenario to generate from (see -list)")
		specPath = flag.String("spec", "", "scenario spec JSON file to generate from")
		machine  = flag.Int("machine", 0, "scenario machine entry to generate")
		list     = flag.Bool("list", false, "list library scenarios and exit")
		duration = flag.Float64("duration", 3600, "trace length in virtual seconds")
		dt       = flag.Float64("dt", 0, "sampling interval (s); 0 = the process's native tick")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output trace path (default stdout)")
		replay   = flag.String("replay", "", "replay and summarize an existing trace (versioned or legacy CSV)")
	)
	flag.Parse()

	var err error
	switch {
	case *list:
		for _, name := range workload.Names() {
			sc, _ := workload.Lookup(name)
			fmt.Printf("%-18s %d machine entries, dt=%gs, hash %s\n", name, len(sc.Machines), sc.DT, sc.Hash())
		}
	case *replay != "":
		err = summarize(*replay)
	default:
		err = generate(*scenario, *specPath, *kind, *machine, *duration, *dt, *seed, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// legacyScenario wraps one of the historical -kind generators in a
// single-machine scenario spec, so the legacy aliases flow through the
// same spec path (and trace format) as everything else.
func legacyScenario(kind string) (*workload.ScenarioSpec, error) {
	var comp workload.ComponentSpec
	switch kind {
	case "center":
		comp = workload.ComponentSpec{Kind: "preset", Preset: "platform1-center"}
	case "trimodal":
		comp = workload.ComponentSpec{Kind: "preset", Preset: "platform1-trimodal"}
	case "bursty":
		comp = workload.ComponentSpec{Kind: "preset", Preset: "platform2-bursty"}
	case "light":
		comp = workload.ComponentSpec{Kind: "preset", Preset: "light"}
	case "ethernet":
		comp = workload.ComponentSpec{Kind: "preset", Preset: "ethernet-contention"}
	case "sessions":
		comp = workload.ComponentSpec{Kind: "user-sessions", Lambda: 0.1, Mu: 0.05}
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
	sc := &workload.ScenarioSpec{
		Version:  workload.SpecVersion,
		Name:     "legacy-" + kind,
		DT:       1,
		Machines: []workload.ComponentSpec{comp},
	}
	return sc, sc.Validate()
}

// resolveScenario picks the scenario source: an explicit spec file, a
// library name, or a legacy -kind alias (defaulting to bursty).
func resolveScenario(scenario, specPath, kind string) (*workload.ScenarioSpec, error) {
	switch {
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		return workload.ParseScenario(data)
	case scenario != "":
		sc, ok := workload.Lookup(scenario)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (have %v)", scenario, workload.Names())
		}
		return sc, nil
	case kind != "":
		return legacyScenario(kind)
	default:
		return legacyScenario("bursty")
	}
}

func generate(scenario, specPath, kind string, machine int, duration, dt float64, seed int64, out string) error {
	sc, err := resolveScenario(scenario, specPath, kind)
	if err != nil {
		return err
	}
	proc, err := sc.Machine(machine, seed)
	if err != nil {
		return err
	}
	if dt == 0 {
		dt = proc.Interval()
	}
	s, err := load.Record(proc, 0, duration, dt)
	if err != nil {
		return err
	}
	h := workload.TraceHeader{
		Scenario: sc.Name,
		SpecHash: sc.Hash(),
		Seed:     seed,
		Machine:  machine,
		DT:       dt,
		T0:       0,
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, h, s.Values()); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("wrote %d samples (%s, dt=%gs) to %s\n", s.Len(), sc.Name, dt, out)
	}
	return nil
}

// readAny loads either trace format: the versioned header+samples file or
// the legacy "time,value" CSV.
func readAny(path string) (vals []float64, dt float64, origin string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, "", err
	}
	if workload.IsTrace(data) {
		h, vals, err := workload.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return nil, 0, "", err
		}
		origin := h.Scenario
		if origin == "" {
			origin = "unlabeled trace"
		}
		return vals, h.DT, fmt.Sprintf("%s (seed %d, machine %d, hash %s)", origin, h.Seed, h.Machine, h.SpecHash), nil
	}
	s, err := timeseries.ReadCSV(bytes.NewReader(data))
	if err != nil {
		return nil, 0, "", err
	}
	dt = 1.0
	if s.Len() > 1 {
		dt = s.At(1).T - s.At(0).T
	}
	return s.Values(), dt, "legacy CSV", nil
}

func summarize(path string) error {
	xs, dt, origin, err := readAny(path)
	if err != nil {
		return err
	}
	sum, err := stats.Summarize(xs)
	if err != nil {
		return err
	}
	sv, err := stochastic.FromSample(xs)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d samples, %s\n", path, len(xs), origin)
	fmt.Printf("  mean %.4f  std %.4f  min %.4f  median %.4f  max %.4f  skew %.2f\n",
		sum.Mean, sum.StdDev, sum.Min, sum.Median, sum.Max, sum.Skewness)
	fmt.Printf("  stochastic value: %s\n", sv)

	card := workload.NewScorecard(xs, dt)
	fmt.Printf("  scorecard: %d bursts below mean-2sigma", card.BurstCount)
	if card.TailIndex > 0 {
		fmt.Printf(", tail index %.2f (Hill; smaller = heavier)", card.TailIndex)
	} else {
		fmt.Printf(", tail index n/a")
	}
	if card.DiurnalPeriod > 0 {
		fmt.Printf(", dominant period %.0fs", card.DiurnalPeriod)
	} else {
		fmt.Printf(", no dominant period")
	}
	fmt.Println()

	mm, err := modal.FitBIC(xs, 6)
	if err != nil {
		return fmt.Errorf("modal fit: %w", err)
	}
	fmt.Printf("  modes (BIC): %d\n", mm.K())
	occ := mm.Occupancy(xs)
	for i, m := range mm.Modes {
		fmt.Printf("    mode %d: %-18s weight %.2f occupancy %.2f\n",
			i+1, m.Stochastic().String(), m.Weight, occ[i])
	}
	b, err := modal.AnalyzeBurstiness(mm, xs)
	if err != nil {
		return err
	}
	fmt.Printf("  burstiness: %d transitions (rate %.3f), mean dwell %.1f samples\n",
		b.Transitions, b.TransitionRate, b.MeanDwell)
	v, single, err := modal.StochasticValue(mm, xs)
	if err != nil {
		return err
	}
	branch := "multi-modal weighted combination"
	if single {
		branch = "single dominant mode"
	}
	fmt.Printf("  §2.1.2 stochastic value (%s): %s\n", branch, v)
	return nil
}
