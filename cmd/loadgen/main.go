// Command loadgen generates production-load traces from the calibrated
// generators and writes them as CSV, or replays an existing trace and
// summarizes it (modal structure, burstiness, stochastic value). Exported
// traces can be replayed into experiments via the load.Trace process,
// which is how recorded real-machine data would enter the pipeline.
//
// Usage:
//
//	loadgen -kind bursty -duration 3600 -dt 5 -seed 1 -o trace.csv
//	loadgen -replay trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"prodpred/internal/load"
	"prodpred/internal/modal"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
	"prodpred/internal/timeseries"
)

func main() {
	var (
		kind     = flag.String("kind", "bursty", "generator: center | trimodal | bursty | light | ethernet | sessions")
		duration = flag.Float64("duration", 3600, "trace length in virtual seconds")
		dt       = flag.Float64("dt", 5, "sampling interval (s)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
		replay   = flag.String("replay", "", "replay and summarize an existing trace CSV")
	)
	flag.Parse()

	var err error
	if *replay != "" {
		err = summarize(*replay)
	} else {
		err = generate(*kind, *duration, *dt, *seed, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func makeProcess(kind string, seed int64) (load.Process, error) {
	switch kind {
	case "center":
		return load.Platform1CenterMode(seed)
	case "trimodal":
		return load.Platform1TriModal(seed)
	case "bursty":
		return load.Platform2FourModeBursty(seed)
	case "light":
		return load.LightLoad(seed)
	case "ethernet":
		return load.EthernetContention(seed)
	case "sessions":
		return load.NewUserSessions(0.1, 0.05, 1, seed)
	}
	return nil, fmt.Errorf("unknown generator %q", kind)
}

func generate(kind string, duration, dt float64, seed int64, out string) error {
	proc, err := makeProcess(kind, seed)
	if err != nil {
		return err
	}
	s, err := load.Record(proc, 0, duration, dt)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := s.WriteCSV(w); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("wrote %d samples to %s\n", s.Len(), out)
	}
	return nil
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := timeseries.ReadCSV(f)
	if err != nil {
		return err
	}
	xs := s.Values()
	sum, err := stats.Summarize(xs)
	if err != nil {
		return err
	}
	sv, err := stochastic.FromSample(xs)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d samples\n", path, s.Len())
	fmt.Printf("  mean %.4f  std %.4f  min %.4f  median %.4f  max %.4f  skew %.2f\n",
		sum.Mean, sum.StdDev, sum.Min, sum.Median, sum.Max, sum.Skewness)
	fmt.Printf("  stochastic value: %s\n", sv)

	mm, err := modal.FitBIC(xs, 6)
	if err != nil {
		return fmt.Errorf("modal fit: %w", err)
	}
	fmt.Printf("  modes (BIC): %d\n", mm.K())
	occ := mm.Occupancy(xs)
	for i, m := range mm.Modes {
		fmt.Printf("    mode %d: %-18s weight %.2f occupancy %.2f\n",
			i+1, m.Stochastic().String(), m.Weight, occ[i])
	}
	b, err := modal.AnalyzeBurstiness(mm, xs)
	if err != nil {
		return err
	}
	fmt.Printf("  burstiness: %d transitions (rate %.3f), mean dwell %.1f samples\n",
		b.Transitions, b.TransitionRate, b.MeanDwell)
	v, single, err := modal.StochasticValue(mm, xs)
	if err != nil {
		return err
	}
	branch := "multi-modal weighted combination"
	if single {
		branch = "single dominant mode"
	}
	fmt.Printf("  §2.1.2 stochastic value (%s): %s\n", branch, v)
	return nil
}
