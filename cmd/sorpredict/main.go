// Command sorpredict runs the full prediction pipeline end to end on a
// simulated production platform: monitor CPU availability with the NWS
// reimplementation, build the SOR structural model, predict execution time
// as a stochastic value, execute the run, and compare.
//
// Usage:
//
//	sorpredict -platform 2 -n 1600 -iters 10 -runs 20 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/sched"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

func main() {
	var (
		platformID = flag.Int("platform", 2, "paper platform: 1 (tri-modal) or 2 (bursty)")
		n          = flag.Int("n", 1600, "grid size N (NxN)")
		iters      = flag.Int("iters", 10, "SOR iterations per run")
		runs       = flag.Int("runs", 10, "number of executions")
		seed       = flag.Int64("seed", 1, "random seed")
		strategy   = flag.String("strategy", "mean", "partition strategy: mean | conservative | optimistic | balanced")
	)
	flag.Parse()
	if err := run(*platformID, *n, *iters, *runs, *seed, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "sorpredict:", err)
		os.Exit(1)
	}
}

// buildPartition cuts strips under the requested strategy; "balanced" uses
// the AppLeS-style time-balancing refinement.
func buildPartition(strategy string, n int, machines []cluster.Machine, loads []stochastic.Value, link cluster.Link) (*sor.Partition, error) {
	switch strategy {
	case "mean":
		return sched.SORPartition(n, machines, loads, sched.MeanBalanced)
	case "conservative":
		return sched.SORPartition(n, machines, loads, sched.Conservative)
	case "optimistic":
		return sched.SORPartition(n, machines, loads, sched.Optimistic)
	case "balanced":
		return sched.TimeBalancedPartition(n, machines, loads, link, 8)
	}
	return nil, fmt.Errorf("unknown strategy %q", strategy)
}

func run(platformID, n, iters, runs int, seed int64, strategy string) error {
	var plat *cluster.Platform
	var cpu []load.Process
	switch platformID {
	case 1:
		plat = cluster.Platform1()
		for i := 0; i < plat.Size(); i++ {
			var p load.Process
			var err error
			if i < 2 { // the Sparc-2s carry the center-mode load
				p, err = load.Platform1CenterMode(seed + int64(i))
			} else {
				p, err = load.LightLoad(seed + int64(i))
			}
			if err != nil {
				return err
			}
			cpu = append(cpu, p)
		}
	case 2:
		plat = cluster.Platform2()
		for i := 0; i < plat.Size(); i++ {
			p, err := load.Platform2FourModeBursty(seed + int64(i)*17)
			if err != nil {
				return err
			}
			cpu = append(cpu, p)
		}
	default:
		return fmt.Errorf("unknown platform %d", platformID)
	}
	net, err := load.EthernetContention(seed + 999)
	if err != nil {
		return err
	}
	env, err := simenv.New(plat, cpu, net)
	if err != nil {
		return err
	}

	fmt.Printf("Platform %d (%s), %dx%d grid, %d iterations per run\n\n",
		platformID, plat.Name, n, n, iters)

	monitors := make([]*nws.Monitor, plat.Size())
	for i := range monitors {
		monitors[i], err = nws.NewCPUMonitor(env, i, nws.DefaultPeriod, 512)
		if err != nil {
			return err
		}
	}
	t := 900.0 // NWS warmup

	loads := make([]stochastic.Value, plat.Size())
	machines := make([]cluster.Machine, plat.Size())
	for i := range loads {
		if loads[i], err = monitors[i].Report(t); err != nil {
			return err
		}
		machines[i] = plat.Machine(i)
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		return err
	}
	part, err := buildPartition(strategy, n, machines, loads, link)
	if err != nil {
		return err
	}
	fmt.Printf("Strip decomposition (%s strategy) from first NWS forecasts:\n", strategy)
	fmt.Println(part.Render())
	model := &structural.SORConfig{
		N: n, Iterations: iters, Partition: part, Machines: machines,
		MachineIdx: sor.IdentityMapping(plat.Size()), Link: link,
		MaxStrategy: stochastic.LargestMean,
	}
	backend, err := sor.NewSimBackend(env, part, sor.IdentityMapping(plat.Size()))
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %-22s %-22s %-10s %s\n", "t(start)", "prediction", "interval", "actual", "verdict")
	captured := 0
	for r := 0; r < runs; r++ {
		params := structural.Params{structural.BWAvailParam: stochastic.Point(1)}
		for i, mon := range monitors {
			v, err := mon.Report(t)
			if err != nil {
				return err
			}
			params[structural.LoadParam(i)] = v
		}
		pred, err := model.Predict(params)
		if err != nil {
			return err
		}
		g, err := sor.NewGrid(n)
		if err != nil {
			return err
		}
		g.SetBoundary(func(x, y float64) float64 { return x*x - y*y })
		res, err := backend.Run(g, sor.DefaultOmega, iters, t)
		if err != nil {
			return err
		}
		verdict := "inside"
		if pred.Contains(res.ExecTime) {
			captured++
		} else {
			verdict = fmt.Sprintf("outside by %.1f%%", pred.RelativeErrorOutside(res.ExecTime)*100)
		}
		lo, hi := pred.Interval()
		fmt.Printf("%-10.0f %-22s [%7.2f,%7.2f]     %-10.2f %s\n",
			t, pred.String(), lo, hi, res.ExecTime, verdict)
		t += res.ExecTime + 30
	}
	fmt.Printf("\nCaptured %d/%d runs inside the stochastic interval.\n", captured, runs)
	return nil
}
