// Command sorpredict runs the full prediction pipeline end to end on a
// simulated production platform: monitor CPU availability with the NWS
// reimplementation, build the SOR structural model, predict execution time
// as a stochastic value, execute the run, and compare. The whole
// monitor->forecast->model->schedule->predict flow lives in the shared
// predict.Service; this command is one thin run loop over it.
//
// Usage:
//
//	sorpredict -platform 2 -n 1600 -iters 10 -runs 20 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"prodpred/internal/predict"
	"prodpred/internal/sched"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

func main() {
	var (
		platformID = flag.Int("platform", 2, "paper platform: 1 (tri-modal) or 2 (bursty)")
		n          = flag.Int("n", 1600, "grid size N (NxN)")
		iters      = flag.Int("iters", 10, "SOR iterations per run")
		runs       = flag.Int("runs", 10, "number of executions")
		seed       = flag.Int64("seed", 1, "random seed")
		strategy   = flag.String("strategy", "mean", "partition strategy: mean | conservative | optimistic | balanced")
	)
	flag.Parse()
	if err := run(*platformID, *n, *iters, *runs, *seed, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "sorpredict:", err)
		os.Exit(1)
	}
}

// applyStrategy maps the flag onto the request's partitioning knobs;
// "balanced" selects the AppLeS-style time-balancing refinement.
func applyStrategy(req *predict.Request, strategy string) error {
	switch strategy {
	case "mean":
		req.Strategy = sched.MeanBalanced
	case "conservative":
		req.Strategy = sched.Conservative
	case "optimistic":
		req.Strategy = sched.Optimistic
	case "balanced":
		req.TimeBalanced = true
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	return nil
}

func run(platformID, n, iters, runs int, seed int64, strategy string) error {
	cfg, err := predict.SimulatedConfig(platformID, seed)
	if err != nil {
		return err
	}
	svc, err := predict.NewService(cfg)
	if err != nil {
		return err
	}
	if err := svc.AdvanceTo(900); err != nil { // NWS warmup
		return err
	}
	plat := svc.Platform()
	fmt.Printf("Platform %d (%s), %dx%d grid, %d iterations per run\n\n",
		platformID, plat.Name, n, n, iters)

	req := predict.Request{N: n, Iterations: iters, MaxStrategy: stochastic.LargestMean}
	if err := applyStrategy(&req, strategy); err != nil {
		return err
	}
	part, err := svc.Partition(req)
	if err != nil {
		return err
	}
	req.Partition = part
	fmt.Printf("Strip decomposition (%s strategy) from first NWS forecasts:\n", strategy)
	fmt.Println(part.Render())

	backend, err := sor.NewSimBackend(svc.Env(), part, sor.IdentityMapping(plat.Size()))
	if err != nil {
		return err
	}
	g, err := sor.NewGrid(n)
	if err != nil {
		return err
	}
	g.SetBoundary(func(x, y float64) float64 { return x*x - y*y })

	fmt.Printf("%-10s %-22s %-22s %-10s %s\n", "t(start)", "prediction", "interval", "actual", "verdict")
	captured := 0
	for r := 0; r < runs; r++ {
		if r > 0 {
			g.Reset()
		}
		pred, err := svc.Predict(req)
		if err != nil {
			return err
		}
		res, err := backend.Run(g, sor.DefaultOmega, iters, pred.Time)
		if err != nil {
			return err
		}
		verdict := "inside"
		if pred.Value.Contains(res.ExecTime) {
			captured++
		} else {
			verdict = fmt.Sprintf("outside by %.1f%%", pred.Value.RelativeErrorOutside(res.ExecTime)*100)
		}
		if pred.Degraded() {
			verdict += " (degraded monitors)"
		}
		lo, hi := pred.Value.Interval()
		fmt.Printf("%-10.0f %-22s [%7.2f,%7.2f]     %-10.2f %s\n",
			pred.Time, pred.Value.String(), lo, hi, res.ExecTime, verdict)
		if err := svc.Advance(res.ExecTime + 30); err != nil {
			return err
		}
	}
	fmt.Printf("\nCaptured %d/%d runs inside the stochastic interval.\n", captured, runs)
	return nil
}
