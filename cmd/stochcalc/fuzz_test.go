package main

import (
	"math"
	"testing"
)

// FuzzParseValue checks the value parser never panics and that every
// successfully parsed value is well-formed (finite mean, non-negative
// spread). Run with `go test -fuzz=FuzzParseValue ./cmd/stochcalc`.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{
		"8", "8±2", "8+-2", "12±30%", "-3.5", "0±0", "1e9±1e8",
		"", "±", "%", "8±", "±2", "8±x%", "nan±1", "inf±1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		v, err := parseValue(in)
		if err != nil {
			return
		}
		if math.IsNaN(v.Mean) || math.IsNaN(v.Spread) {
			t.Fatalf("parseValue(%q) produced NaN: %v", in, v)
		}
		if v.Spread < 0 {
			t.Fatalf("parseValue(%q) produced negative spread: %v", in, v)
		}
	})
}

// FuzzEval checks the expression evaluator never panics on arbitrary
// argument vectors.
func FuzzEval(f *testing.F) {
	f.Add("8±2", "+u", "5±1.5")
	f.Add("max-prob", "4±0.5", "3±2")
	f.Add("1", "/u", "0")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		// Errors are fine; panics are not.
		_, _ = eval([]string{a, b, c})
		_, _ = eval([]string{a})
	})
}
