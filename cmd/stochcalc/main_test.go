package main

import (
	"math"
	"strings"
	"testing"

	"prodpred/internal/stochastic"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want stochastic.Value
	}{
		{"8", stochastic.Point(8)},
		{"-3.5", stochastic.Point(-3.5)},
		{"8±2", stochastic.New(8, 2)},
		{"8+-2", stochastic.New(8, 2)},
		{"12±30%", stochastic.New(12, 3.6)},
		{"12+-30%", stochastic.New(12, 3.6)},
	}
	for _, c := range cases {
		got, err := parseValue(c.in)
		if err != nil {
			t.Errorf("parseValue(%q): %v", c.in, err)
			continue
		}
		if !got.ApproxEqual(c.want, 1e-12) {
			t.Errorf("parseValue(%q)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "8±x", "8±5x%", "8±-2", "±2"} {
		if _, err := parseValue(in); err == nil {
			t.Errorf("parseValue(%q) should fail", in)
		}
	}
}

func TestEvalChain(t *testing.T) {
	out, err := eval([]string{"8±2", "+u", "5±1.5", "*r", "2"})
	if err != nil {
		t.Fatal(err)
	}
	// (8±2 +u 5±1.5) = 13±2.5; *r 2 = 26±5.
	if !strings.Contains(out, "26") || !strings.Contains(out, "5") {
		t.Errorf("eval chain=%q", out)
	}
	for _, op := range []string{"+r", "-r", "-u", "*u", "/r", "/u"} {
		if _, err := eval([]string{"8±2", op, "5±1.5"}); err != nil {
			t.Errorf("op %s: %v", op, err)
		}
	}
}

func TestEvalMax(t *testing.T) {
	out, err := eval([]string{"max-mean", "4±0.5", "3±2", "3±1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "4 ±") {
		t.Errorf("max-mean=%q", out)
	}
	out, err = eval([]string{"max-mag", "4±0.5", "3±2"})
	if err != nil || !strings.HasPrefix(out, "3 ±") {
		t.Errorf("max-mag=%q err=%v", out, err)
	}
	out, err = eval([]string{"max-prob", "4±0.5", "3±2"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := parseValue(strings.ReplaceAll(out, " ", ""))
	if err != nil || math.Abs(v.Mean-4.1) > 0.2 {
		t.Errorf("max-prob=%q", out)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := eval([]string{"8±2", "+u"}); err == nil {
		t.Error("dangling operator should fail")
	}
	if _, err := eval([]string{"8±2", "??", "1"}); err == nil {
		t.Error("unknown operator should fail")
	}
	if _, err := eval([]string{"bad"}); err == nil {
		t.Error("bad value should fail")
	}
	if _, err := eval([]string{"8", "+u", "bad"}); err == nil {
		t.Error("bad rhs should fail")
	}
	if _, err := eval([]string{"max-mean"}); err == nil {
		t.Error("empty max should fail")
	}
	if _, err := eval([]string{"max-mean", "bad"}); err == nil {
		t.Error("bad max operand should fail")
	}
}
