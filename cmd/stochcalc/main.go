// Command stochcalc is a calculator for stochastic values, demonstrating
// the paper's Table 2 combination rules from the shell.
//
// Values are written MEAN, MEAN±SPREAD, or MEAN±PCT% (e.g. "12±30%").
// Operators: +r +u -r -u *r *u /r /u (related/unrelated), and the group
// operators max-mean, max-mag, max-prob over the remaining operands.
//
// Examples:
//
//	stochcalc 8±2 +u 5±1.5
//	stochcalc 12±30% *r 3
//	stochcalc max-prob 4±0.5 3±2 3±1
package main

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"prodpred/internal/stochastic"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	out, err := eval(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stochcalc:", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: stochcalc VALUE OP VALUE [OP VALUE ...]
       stochcalc max-mean|max-mag|max-prob VALUE VALUE [VALUE ...]
values: 8, 8±2, 12±30%   ops: +r +u -r -u *r *u /r /u`)
}

func eval(args []string) (string, error) {
	switch args[0] {
	case "max-mean", "max-mag", "max-prob":
		strategy := map[string]stochastic.MaxStrategy{
			"max-mean": stochastic.LargestMean,
			"max-mag":  stochastic.LargestMagnitude,
			"max-prob": stochastic.Probabilistic,
		}[args[0]]
		var vs []stochastic.Value
		for _, a := range args[1:] {
			v, err := parseValue(a)
			if err != nil {
				return "", err
			}
			vs = append(vs, v)
		}
		res, err := stochastic.Max(strategy, vs...)
		if err != nil {
			return "", err
		}
		return res.String(), nil
	}

	acc, err := parseValue(args[0])
	if err != nil {
		return "", err
	}
	rest := args[1:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return "", fmt.Errorf("dangling operator %q", rest[0])
		}
		op := rest[0]
		rhs, err := parseValue(rest[1])
		if err != nil {
			return "", err
		}
		switch op {
		case "+r":
			acc = acc.AddRelated(rhs)
		case "+u":
			acc = acc.AddUnrelated(rhs)
		case "-r":
			acc = acc.SubRelated(rhs)
		case "-u":
			acc = acc.SubUnrelated(rhs)
		case "*r":
			acc = acc.MulRelated(rhs)
		case "*u":
			acc = acc.MulUnrelated(rhs)
		case "/r":
			acc = acc.DivRelated(rhs)
		case "/u":
			acc = acc.DivUnrelated(rhs)
		default:
			return "", fmt.Errorf("unknown operator %q", op)
		}
		rest = rest[2:]
	}
	return acc.String(), nil
}

// parseValue accepts "8", "8±2", "8+-2", "12±30%", "12+-30%".
func parseValue(s string) (stochastic.Value, error) {
	norm := strings.ReplaceAll(s, "±", "+-")
	parts := strings.SplitN(norm, "+-", 2)
	mean, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return stochastic.Value{}, fmt.Errorf("bad value %q: %v", s, err)
	}
	if math.IsNaN(mean) || math.IsInf(mean, 0) {
		return stochastic.Value{}, fmt.Errorf("non-finite mean in %q", s)
	}
	if len(parts) == 1 {
		return stochastic.Point(mean), nil
	}
	spreadStr := parts[1]
	if strings.HasSuffix(spreadStr, "%") {
		pct, err := strconv.ParseFloat(strings.TrimSuffix(spreadStr, "%"), 64)
		if err != nil {
			return stochastic.Value{}, fmt.Errorf("bad percentage in %q: %v", s, err)
		}
		return stochastic.FromPercent(mean, pct), nil
	}
	spread, err := strconv.ParseFloat(spreadStr, 64)
	if err != nil {
		return stochastic.Value{}, fmt.Errorf("bad spread in %q: %v", s, err)
	}
	if math.IsInf(spread, 0) {
		return stochastic.Value{}, fmt.Errorf("non-finite spread in %q", s)
	}
	return stochastic.TryNew(mean, spread)
}
