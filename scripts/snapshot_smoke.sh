#!/usr/bin/env bash
# snapshot_smoke.sh — end-to-end snapshot/restore drill over the real
# daemon binary and real sockets: serve, predict, snapshot, keep serving
# (the uninterrupted reference), kill, restore from the image, and assert
# the restored daemon answers the next prediction byte-identically —
# same values, same prediction ID — to the daemon that never stopped.
#
# Runs with -tick 0 (manual clock only), so both timelines are pure
# functions of the served request sequence and the comparison is exact.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/predictd" ./cmd/predictd

# wait_addr <logfile>: poll the startup log for the bound address.
wait_addr() {
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.* on \([0-9.]*:[0-9]*\) (.*/\1/p' "$1")
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "snapshot_smoke.sh: daemon never logged its address" >&2
    cat "$1" >&2
    return 1
}

body='{"platform":"platform2","n":400,"iterations":6}'

"$workdir/predictd" -addr 127.0.0.1:0 -tick 0 -warmup 120 2> "$workdir/a.log" &
pids+=($!)
addr_a=$(wait_addr "$workdir/a.log")

curl -sf "http://$addr_a/predict" -d "$body" > "$workdir/p1.json"
curl -sf -X POST "http://$addr_a/snapshot" -o "$workdir/fleet.snap"
# The uninterrupted daemon's next answer is the reference.
curl -sf "http://$addr_a/predict" -d "$body" > "$workdir/ref.json"
kill "${pids[0]}" 2>/dev/null || true
wait "${pids[0]}" 2>/dev/null || true
pids=()

"$workdir/predictd" -addr 127.0.0.1:0 -tick 0 -restore "$workdir/fleet.snap" 2> "$workdir/b.log" &
pids+=($!)
addr_b=$(wait_addr "$workdir/b.log")

curl -sf "http://$addr_b/predict" -d "$body" > "$workdir/got.json"

if ! cmp -s "$workdir/ref.json" "$workdir/got.json"; then
    echo "snapshot_smoke.sh: restored daemon diverged from the uninterrupted run" >&2
    echo "  reference: $(cat "$workdir/ref.json")" >&2
    echo "  restored:  $(cat "$workdir/got.json")" >&2
    exit 1
fi

echo "snapshot_smoke.sh: restored daemon byte-identical to uninterrupted run ($(cat "$workdir/got.json" | head -c 80)...)"
