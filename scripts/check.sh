#!/usr/bin/env bash
# check.sh — the repo gate: formatting, vet, the race-clean test suite, and
# a one-iteration bench smoke. The SOR worker pool, the sharded Monte Carlo
# engine, and the predict.Service prediction core are concurrent by design,
# so -race is not optional here.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "check.sh: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./...
# Bench smoke: every benchmark must still run for one iteration without
# error (no measurement — regressions are caught by scripts/bench.sh).
go test -bench=. -benchtime=1x -run '^$' ./...

# Loadtest smokes: a short closed-loop run against the in-process serving
# stack must produce nonzero throughput with zero request errors and a
# parseable /metrics exposition, the tick-cached serving path must not be
# slower than the same run with the cache disabled, and a 1,000-tenant
# fleet must survive a mid-run snapshot/kill/restore cycle with zero
# errors (~6 s budget total; the asserting tests wrap cmd/loadtest's run
# function).
go test -run 'TestRunInProcessSmoke|TestCacheVsUncachedSmoke|TestRunFleetKillRestoreSmoke' -count=1 ./cmd/loadtest

# Distribution-valued serving smoke: the forecaster tournament must beat
# the normal incumbent and the recentered quantile grid must hold nominal
# coverage on the bursty acceptance scenario (~4 s; the asserting tests
# replay the dist-tournament experiment on its pinned seeds).
go test -run 'TestDistTournamentShape|TestDistTournamentStableAcrossSeeds' -count=1 ./internal/experiments

# Workload-scenario smoke: record a scenario-driven service's served loads
# to trace files, replay them through a fresh service, and assert the
# predictions come back bit-identical; plus the scenario-sweep scorecard
# acceptance (every library scenario's capture/width/Winkler within its
# pinned bounds). ~3 s.
go test -run 'TestScenarioRecordReplayBitIdentical|TestWorkloadScenariosShape' -count=1 ./internal/predict ./internal/experiments
# The loadgen CLI must round-trip the trace format end to end: generate a
# short trace from a library scenario, then replay-summarize it.
tmptrace=$(mktemp)
go run ./cmd/loadgen -scenario flash-crowd -duration 600 -o "$tmptrace" >/dev/null
go run ./cmd/loadgen -replay "$tmptrace" >/dev/null
rm -f "$tmptrace"

# Fleet-scheduler smoke: the fleet-sched experiment's acceptance — p95
# placement strictly beats mean placement on makespan AND deadline-miss
# rate under both bursty scenarios at the pinned seed (~13 s), plus a
# short loadtest mixing POST /schedule submissions into the worker loop
# with the scheduler's ledger reconciled against the client-side count.
go test -run 'TestFleetSchedQuantileWins$' -count=1 ./internal/experiments
go test -run 'TestRunSchedSmoke' -count=1 ./cmd/loadtest

# Fuzz smoke: a few seconds of coverage-guided input on the hand-rolled
# JSON request parser — it must never diverge from the stdlib fallback.
go test -run '^$' -fuzz FuzzCodecParsers -fuzztime 5s ./internal/api

# Snapshot round-trip smoke over the real daemon binary: serve, snapshot,
# kill, restore — the restored daemon must answer byte-identically to the
# one that never stopped.
scripts/snapshot_smoke.sh

# Coverage summary for the online-calibration layer (report-only, no gate).
go test -cover ./internal/calib ./internal/predict | awk '{print "check.sh: coverage:", $0}'

echo "check.sh: gofmt, vet, race-enabled tests, bench smoke, and loadtest smoke all clean"
