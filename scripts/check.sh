#!/usr/bin/env bash
# check.sh — the repo gate: formatting, vet, and the race-clean test suite.
# The SOR worker pool and the sharded Monte Carlo engine are concurrent by
# design, so -race is not optional here.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "check.sh: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./...

echo "check.sh: gofmt, vet, and race-enabled tests all clean"
