#!/usr/bin/env bash
# bench.sh — run the root benchmark suite (every table/figure reproduction
# plus the kernel micro-benchmarks) and record the mean ns/op per benchmark
# in a dated JSON summary, so the performance trajectory of the hot paths is
# tracked in-repo across PRs.
#
# Usage: scripts/bench.sh [extra go-test args...]
#   COUNT=5 scripts/bench.sh            # more repetitions
#   scripts/bench.sh -bench SOR         # restrict the benchmark set
set -euo pipefail
cd "$(dirname "$0")/.."

count="${COUNT:-3}"
out="BENCH_$(date +%Y-%m-%d).json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -count "$count" "$@" . | tee "$raw"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date +%Y-%m-%d)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "count": %s,\n' "$count"
    printf '  "ns_per_op": {\n'
    awk '$1 ~ /^Benchmark/ && $4 == "ns/op" {
            name = $1; sub(/-[0-9]+$/, "", name)
            sum[name] += $3; cnt[name]++
         }
         END { for (k in sum) printf "%s %.1f\n", k, sum[k] / cnt[k] }' "$raw" |
        sort |
        awk '{ printf "%s    \"%s\": %s", sep, $1, $2; sep = ",\n" } END { printf "\n" }'
    printf '  }\n'
    printf '}\n'
} >"$out"

echo "bench.sh: wrote $out"

# Serving throughput: drive the in-process daemon through cmd/loadtest and
# merge a "serving" entry (single POST /predict) and a "serving_batch"
# entry (POST /predict/batch) into the same dated file.
go run ./cmd/loadtest -duration 3 -workers 8 -bench-out "$out"
go run ./cmd/loadtest -duration 3 -workers 8 -batch 32 -bench-out "$out"
