package load

import (
	"math"
	"testing"

	"prodpred/internal/stats"
	"prodpred/internal/timeseries"
)

func TestConstant(t *testing.T) {
	c := NewConstant(0.5)
	if c.At(0) != 0.5 || c.At(1e6) != 0.5 {
		t.Error("constant not constant")
	}
	if c.Interval() <= 0 {
		t.Error("interval must be positive")
	}
	if NewConstant(-1).Level != 0 || NewConstant(2).Level != 1 {
		t.Error("constant should clamp to [0,1]")
	}
	if Dedicated().At(0) != 1 {
		t.Error("dedicated should be full availability")
	}
}

func TestSingleModeValidation(t *testing.T) {
	cases := []struct{ mean, sigma, phi, dt float64 }{
		{-0.1, 0.1, 0.5, 1}, {1.1, 0.1, 0.5, 1},
		{0.5, 0, 0.5, 1}, {0.5, -1, 0.5, 1},
		{0.5, 0.1, -0.1, 1}, {0.5, 0.1, 1, 1},
		{0.5, 0.1, 0.5, 0},
	}
	for _, c := range cases {
		if _, err := NewSingleMode(c.mean, c.sigma, c.phi, c.dt, 1); err == nil {
			t.Errorf("NewSingleMode(%v) should fail", c)
		}
	}
}

func TestSingleModeStatistics(t *testing.T) {
	p, err := NewSingleMode(0.48, 0.025, 0.9, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Record(p, 0, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	xs := s.Values()
	if m := stats.Mean(xs); math.Abs(m-0.48) > 0.01 {
		t.Errorf("mean=%g want ~0.48", m)
	}
	if sd := stats.StdDev(xs); math.Abs(sd-0.025) > 0.005 {
		t.Errorf("std=%g want ~0.025", sd)
	}
	for _, x := range xs {
		if x < 0 || x > 1 {
			t.Fatalf("value %g outside [0,1]", x)
		}
	}
	// AR(1) with phi=0.9 must be strongly autocorrelated.
	if ac := stats.Autocorrelation(xs, []int{1}); ac[0] < 0.7 {
		t.Errorf("lag-1 autocorr=%g want >0.7", ac[0])
	}
}

func TestProcessDeterminism(t *testing.T) {
	a, _ := NewSingleMode(0.5, 0.05, 0.8, 1, 7)
	b, _ := NewSingleMode(0.5, 0.05, 0.8, 1, 7)
	for _, tt := range []float64{0, 3.5, 10, 2, 100} { // deliberately out of order
		if a.At(tt) != b.At(tt) {
			t.Fatalf("same seed diverged at t=%g", tt)
		}
	}
	c, _ := NewSingleMode(0.5, 0.05, 0.8, 1, 8)
	same := true
	for tt := 0.0; tt < 50; tt++ {
		if a.At(tt) != c.At(tt) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestPiecewiseConstantWithinTick(t *testing.T) {
	p, _ := NewSingleMode(0.5, 0.05, 0.8, 2.0, 9)
	if p.At(4.0) != p.At(5.9) {
		t.Error("values within one tick should be identical")
	}
	if p.Interval() != 2.0 {
		t.Errorf("Interval=%g", p.Interval())
	}
	if p.At(-5) != p.At(0) {
		t.Error("negative times should clamp to t=0")
	}
}

func TestMarkovModalValidation(t *testing.T) {
	good := []ModeSpec{{Mean: 0.3, Sigma: 0.02}, {Mean: 0.9, Sigma: 0.02}}
	w := []float64{1, 1}
	if _, err := NewMarkovModal(nil, nil, 0.1, 0.5, 1, 1); err == nil {
		t.Error("no modes should fail")
	}
	if _, err := NewMarkovModal(good, []float64{1}, 0.1, 0.5, 1, 1); err == nil {
		t.Error("weight mismatch should fail")
	}
	if _, err := NewMarkovModal([]ModeSpec{{Mean: 2, Sigma: 0.1}}, []float64{1}, 0.1, 0.5, 1, 1); err == nil {
		t.Error("mean>1 should fail")
	}
	if _, err := NewMarkovModal([]ModeSpec{{Mean: 0.5, Sigma: 0}}, []float64{1}, 0.1, 0.5, 1, 1); err == nil {
		t.Error("sigma=0 should fail")
	}
	if _, err := NewMarkovModal(good, []float64{-1, 1}, 0.1, 0.5, 1, 1); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMarkovModal(good, []float64{0, 0}, 0.1, 0.5, 1, 1); err == nil {
		t.Error("zero weights should fail")
	}
	if _, err := NewMarkovModal(good, w, 1.5, 0.5, 1, 1); err == nil {
		t.Error("switchProb>1 should fail")
	}
	if _, err := NewMarkovModal(good, w, 0.1, 1.0, 1, 1); err == nil {
		t.Error("phi=1 should fail")
	}
	if _, err := NewMarkovModal(good, w, 0.1, 0.5, 0, 1); err == nil {
		t.Error("dt=0 should fail")
	}
}

func TestMarkovModalOccupancyMatchesWeights(t *testing.T) {
	modes := []ModeSpec{{Mean: 0.2, Sigma: 0.02}, {Mean: 0.8, Sigma: 0.02}}
	p, err := NewMarkovModal(modes, []float64{0.3, 0.7}, 0.2, 0.5, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	n := 30000
	inHigh := 0
	for i := 0; i < n; i++ {
		if p.ModeAt(float64(i)) == 1 {
			inHigh++
		}
	}
	frac := float64(inHigh) / float64(n)
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("high-mode occupancy=%g want ~0.7", frac)
	}
}

func TestMarkovModalBurstyVsSlow(t *testing.T) {
	modes := []ModeSpec{{Mean: 0.2, Sigma: 0.02}, {Mean: 0.8, Sigma: 0.02}}
	w := []float64{0.5, 0.5}
	bursty, _ := NewMarkovModal(modes, w, 0.3, 0.5, 1, 13)
	slow, _ := NewMarkovModal(modes, w, 0.002, 0.5, 1, 13)
	countTransitions := func(p *MarkovModal, n int) int {
		tr := 0
		prev := p.ModeAt(0)
		for i := 1; i < n; i++ {
			cur := p.ModeAt(float64(i))
			if cur != prev {
				tr++
			}
			prev = cur
		}
		return tr
	}
	bt := countTransitions(bursty, 5000)
	st := countTransitions(slow, 5000)
	if bt <= st*10 {
		t.Errorf("bursty transitions %d should dwarf slow %d", bt, st)
	}
}

func TestMarkovModalModes(t *testing.T) {
	modes := []ModeSpec{{Mean: 0.2, Sigma: 0.02}}
	p, _ := NewMarkovModal(modes, []float64{1}, 0.1, 0.5, 1, 1)
	if got := p.Modes(); len(got) != 1 || got[0] != modes[0] {
		t.Errorf("Modes=%v", got)
	}
}

func TestTrace(t *testing.T) {
	s, _ := timeseries.FromSlices([]float64{10, 20}, []float64{0.3, 1.7})
	tr, err := NewTrace(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(5); got != 0.3 {
		t.Errorf("before first point=%g want first value", got)
	}
	if got := tr.At(15); got != 0.3 {
		t.Errorf("At(15)=%g", got)
	}
	if got := tr.At(25); got != 1 {
		t.Errorf("At(25)=%g want clamped 1", got)
	}
	if tr.Interval() != 1 {
		t.Errorf("Interval=%g", tr.Interval())
	}
	if _, err := NewTrace(timeseries.NewSeries(0), 1); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := NewTrace(s, 0); err == nil {
		t.Error("dt=0 should fail")
	}
	if _, err := NewTrace(nil, 1); err == nil {
		t.Error("nil series should fail")
	}
}

func TestUserSessions(t *testing.T) {
	if _, err := NewUserSessions(0, 1, 1, 1); err == nil {
		t.Error("lambda=0 should fail")
	}
	if _, err := NewUserSessions(1, 0, 1, 1); err == nil {
		t.Error("mu=0 should fail")
	}
	if _, err := NewUserSessions(1, 1, 0, 1); err == nil {
		t.Error("dt=0 should fail")
	}
	// Busy machine (many users): low availability on average; idle machine:
	// high availability.
	busy, err := NewUserSessions(0.5, 0.05, 1, 17) // ~10 users
	if err != nil {
		t.Fatal(err)
	}
	idle, err := NewUserSessions(0.01, 0.1, 1, 18) // ~0.1 users
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := Record(busy, 0, 5000, 1)
	si, _ := Record(idle, 0, 5000, 1)
	mb := stats.Mean(sb.Values())
	mi := stats.Mean(si.Values())
	if mb >= 0.4 {
		t.Errorf("busy availability=%g want low", mb)
	}
	if mi <= 0.7 {
		t.Errorf("idle availability=%g want high", mi)
	}
	for _, x := range sb.Values() {
		if x <= 0 || x > 1 {
			t.Fatalf("availability %g outside (0,1]", x)
		}
	}
}

func TestRecord(t *testing.T) {
	p := NewConstant(0.5)
	s, err := Record(p, 0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Errorf("len=%d want 6", s.Len())
	}
	if _, err := Record(p, 10, 0, 1); err == nil {
		t.Error("reversed range should fail")
	}
	if _, err := Record(p, 0, 10, 0); err == nil {
		t.Error("dt=0 should fail")
	}
}

func TestPresetsConstructAndBehave(t *testing.T) {
	p1, err := Platform1TriModal(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Modes()) != 3 {
		t.Errorf("platform1 modes=%d", len(p1.Modes()))
	}
	center, err := Platform1CenterMode(2)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Record(center, 0, 5000, 1)
	if m := stats.Mean(s.Values()); math.Abs(m-0.48) > 0.02 {
		t.Errorf("center mode mean=%g", m)
	}
	p2, err := Platform2FourModeBursty(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Modes()) != 4 {
		t.Errorf("platform2 modes=%d", len(p2.Modes()))
	}
	light, err := LightLoad(4)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Record(light, 0, 2000, 1)
	if m := stats.Mean(s2.Values()); m < 0.85 {
		t.Errorf("light load mean=%g", m)
	}
}

func TestPlatform2IsBurstier(t *testing.T) {
	p1, _ := Platform1TriModal(5)
	p2, _ := Platform2FourModeBursty(5)
	trans := func(p *MarkovModal, n int) int {
		tr, prev := 0, p.ModeAt(0)
		for i := 1; i < n; i++ {
			if cur := p.ModeAt(float64(i)); cur != prev {
				tr++
				prev = cur
			}
		}
		return tr
	}
	if t1, t2 := trans(p1, 3000), trans(p2, 3000); t2 <= t1*5 {
		t.Errorf("platform2 transitions %d should dwarf platform1 %d", t2, t1)
	}
}

func TestConcurrentAccess(t *testing.T) {
	p, _ := NewSingleMode(0.5, 0.05, 0.8, 1, 99)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				v := p.At(float64((g*137 + i) % 5000))
				if v < 0 || v > 1 {
					t.Errorf("out of range value %g", v)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestRecordNoDriftOnLongRanges(t *testing.T) {
	// Regression: t += dt accumulation dropped the final sample on long
	// recordings with non-representable steps.
	s, err := Record(Dedicated(), 0, 10000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100001 {
		t.Errorf("len=%d want 100001", s.Len())
	}
}

func TestSwitchRegimeChange(t *testing.T) {
	before := NewConstant(0.9)
	after := NewConstant(0.2)
	sw, err := NewSwitch(500, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if sw.SwitchTime() != 500 || sw.Interval() != 1 {
		t.Errorf("at=%g dt=%g", sw.SwitchTime(), sw.Interval())
	}
	if v := sw.At(499); v != 0.9 {
		t.Errorf("before switch: %g", v)
	}
	if v := sw.At(500); v != 0.2 {
		t.Errorf("at switch: %g", v)
	}
	if v := sw.At(10000); v != 0.2 {
		t.Errorf("after switch: %g", v)
	}
	// The composed tick is the finer of the two components.
	fine, err := NewSingleMode(0.5, 0.05, 0.8, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := NewSwitch(100, before, fine)
	if err != nil {
		t.Fatal(err)
	}
	if sw2.Interval() != 0.25 {
		t.Errorf("interval=%g want 0.25", sw2.Interval())
	}
	if _, err := NewSwitch(0, before, after); err == nil {
		t.Error("non-positive switch time should fail")
	}
	if _, err := NewSwitch(10, nil, after); err == nil {
		t.Error("nil process should fail")
	}
}
