// Package load implements the stochastic CPU-availability processes that
// stand in for the paper's production machines. The paper's experiments ran
// on shared Sparc workstations whose "CPU load" signal — as supplied by the
// Network Weather Service — is the *fraction of CPU available* to the
// application (§2.2.1 divides benchmark time by that fraction). All
// processes here therefore emit values in [0, 1].
//
// Three statistical classes of signal matter to the reproduction:
//
//   - single-mode load that wanders within one normal mode (Figure 8,
//     Platform 1),
//   - multi-modal bursty load that jumps between modes (Figures 10-11,
//     Platform 2), and
//   - long-tailed contention (the bandwidth histograms of Figure 3).
//
// Every process is deterministic given its seed and piecewise-constant over
// ticks of Interval() seconds, which lets the simulator integrate work
// progress in closed form segment by segment.
package load

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"prodpred/internal/timeseries"
)

// Process is a time-varying CPU-availability signal. At returns the
// fraction of CPU available at virtual time t >= 0; values are constant
// within ticks of Interval() seconds. Implementations are safe for
// concurrent use.
type Process interface {
	At(t float64) float64
	Interval() float64
}

// Constant is a fixed availability level.
type Constant struct {
	Level float64
}

// NewConstant returns a constant process clamped to [0, 1].
func NewConstant(level float64) Constant {
	return Constant{Level: clamp01(level)}
}

// At implements Process.
func (c Constant) At(float64) float64 { return c.Level }

// Interval implements Process. Constants use a nominal 1-second tick.
func (c Constant) Interval() float64 { return 1 }

// Dedicated is full availability — a machine with no competing users.
func Dedicated() Constant { return Constant{Level: 1} }

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// cache lazily materializes a per-tick sequence from a generator function,
// keeping processes deterministic and At() pure from the caller's view.
type cache struct {
	mu   sync.Mutex
	vals []float64
	gen  func(i int, prev float64) float64
	dt   float64
}

func newCache(dt float64, gen func(i int, prev float64) float64) *cache {
	return &cache{gen: gen, dt: dt}
}

func (c *cache) at(t float64) float64 {
	if t < 0 {
		t = 0
	}
	idx := int(t / c.dt)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.vals) <= idx {
		prev := math.NaN()
		if n := len(c.vals); n > 0 {
			prev = c.vals[n-1]
		}
		c.vals = append(c.vals, c.gen(len(c.vals), prev))
	}
	return c.vals[idx]
}

// SingleMode is availability that wanders within one mode: an AR(1)
// process with the given mean and stationary standard deviation, clamped to
// [0, 1]. Phi controls smoothness (0 = white noise, close to 1 = slow
// wander like the paper's Figure 8 trace).
type SingleMode struct {
	c *cache
}

// NewSingleMode constructs a single-mode process. mean must lie in [0,1],
// sigma > 0, and 0 <= phi < 1.
func NewSingleMode(mean, sigma, phi, dt float64, seed int64) (*SingleMode, error) {
	if mean < 0 || mean > 1 {
		return nil, fmt.Errorf("load: mean %g outside [0,1]", mean)
	}
	if !(sigma > 0) {
		return nil, errors.New("load: sigma must be positive")
	}
	if phi < 0 || phi >= 1 {
		return nil, fmt.Errorf("load: phi %g outside [0,1)", phi)
	}
	if !(dt > 0) {
		return nil, errors.New("load: dt must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	// Innovation scale chosen so the stationary std is sigma.
	innov := sigma * math.Sqrt(1-phi*phi)
	gen := func(i int, prev float64) float64 {
		if i == 0 {
			return clamp01(mean + sigma*rng.NormFloat64())
		}
		return clamp01(mean + phi*(prev-mean) + innov*rng.NormFloat64())
	}
	return &SingleMode{c: newCache(dt, gen)}, nil
}

// At implements Process.
func (s *SingleMode) At(t float64) float64 { return s.c.at(t) }

// Interval implements Process.
func (s *SingleMode) Interval() float64 { return s.c.dt }

// ModeSpec describes one mode of a Markov-modulated process.
type ModeSpec struct {
	Mean  float64 // availability mean in [0,1]
	Sigma float64 // within-mode std dev
}

// MarkovModal is availability that jumps between modes according to a
// per-tick switching probability and mode-stationary weights, with AR(1)
// wander inside the current mode. This reproduces the "multi-modal bursty"
// load of the paper's Platform 2 (Figures 10-11): dwell periods in a mode
// punctuated by abrupt jumps.
type MarkovModal struct {
	c     *cache
	modes []ModeSpec
	// trace of mode indices, parallel to the cache, for tests and for
	// occupancy ground truth.
	mu        sync.Mutex
	modeTrace []int
}

// NewMarkovModal constructs a bursty modal process. switchProb is the
// per-tick probability of re-drawing the mode from weights; phi is the
// within-mode AR(1) smoothness.
func NewMarkovModal(modes []ModeSpec, weights []float64, switchProb, phi, dt float64, seed int64) (*MarkovModal, error) {
	if len(modes) == 0 {
		return nil, errors.New("load: no modes")
	}
	if len(weights) != len(modes) {
		return nil, errors.New("load: weight length mismatch")
	}
	total := 0.0
	for i, m := range modes {
		if m.Mean < 0 || m.Mean > 1 {
			return nil, fmt.Errorf("load: mode %d mean %g outside [0,1]", i, m.Mean)
		}
		if !(m.Sigma > 0) {
			return nil, fmt.Errorf("load: mode %d sigma must be positive", i)
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("load: negative weight %g", weights[i])
		}
		total += weights[i]
	}
	if total <= 0 {
		return nil, errors.New("load: weights sum to zero")
	}
	if switchProb < 0 || switchProb > 1 {
		return nil, fmt.Errorf("load: switchProb %g outside [0,1]", switchProb)
	}
	if phi < 0 || phi >= 1 {
		return nil, fmt.Errorf("load: phi %g outside [0,1)", phi)
	}
	if !(dt > 0) {
		return nil, errors.New("load: dt must be positive")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	rng := rand.New(rand.NewSource(seed))
	pick := func() int {
		u := rng.Float64()
		acc := 0.0
		for i, w := range norm {
			acc += w
			if u < acc {
				return i
			}
		}
		return len(norm) - 1
	}
	mm := &MarkovModal{modes: append([]ModeSpec(nil), modes...)}
	cur := -1
	gen := func(i int, prev float64) float64 {
		if i == 0 || rng.Float64() < switchProb {
			cur = pick()
			prev = math.NaN()
		}
		m := modes[cur]
		mm.mu.Lock()
		mm.modeTrace = append(mm.modeTrace, cur)
		mm.mu.Unlock()
		if math.IsNaN(prev) {
			return clamp01(m.Mean + m.Sigma*rng.NormFloat64())
		}
		innov := m.Sigma * math.Sqrt(1-phi*phi)
		return clamp01(m.Mean + phi*(prev-m.Mean) + innov*rng.NormFloat64())
	}
	mm.c = newCache(dt, gen)
	return mm, nil
}

// At implements Process.
func (m *MarkovModal) At(t float64) float64 { return m.c.at(t) }

// Interval implements Process.
func (m *MarkovModal) Interval() float64 { return m.c.dt }

// ModeAt returns the index of the mode in force at time t (forcing
// generation up to t).
func (m *MarkovModal) ModeAt(t float64) int {
	m.c.at(t)
	idx := int(math.Max(t, 0) / m.c.dt)
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx >= len(m.modeTrace) {
		idx = len(m.modeTrace) - 1
	}
	return m.modeTrace[idx]
}

// Modes returns the mode specifications.
func (m *MarkovModal) Modes() []ModeSpec { return m.modes }

// Trace wraps a recorded time series as a Process (last observation carried
// forward), for replaying measured or exported load signals.
type Trace struct {
	s  *timeseries.Series
	dt float64
}

// NewTrace wraps s; dt is the nominal tick used by Interval. Values are
// clamped to [0,1] on read. The series must be non-empty.
func NewTrace(s *timeseries.Series, dt float64) (*Trace, error) {
	if s == nil || s.Len() == 0 {
		return nil, errors.New("load: empty trace")
	}
	if !(dt > 0) {
		return nil, errors.New("load: dt must be positive")
	}
	return &Trace{s: s, dt: dt}, nil
}

// At implements Process. Times before the first observation return the
// first observation.
func (tr *Trace) At(t float64) float64 {
	v, ok := tr.s.ValueAt(t)
	if !ok {
		v = tr.s.At(0).V
	}
	return clamp01(v)
}

// Interval implements Process.
func (tr *Trace) Interval() float64 { return tr.dt }

// NewUniformTrace wraps s like NewTrace but additionally requires the
// series to be sampled on a uniform grid of spacing dt. The replay path
// (workload trace files, predictd -record-traces) leans on this: a uniform
// grid guarantees last-observation-carried-forward lookup lands on exactly
// the sample the original generator emitted for that tick, which is what
// makes record→replay bit-identical.
func NewUniformTrace(s *timeseries.Series, dt float64) (*Trace, error) {
	tr, err := NewTrace(s, dt)
	if err != nil {
		return nil, err
	}
	t0 := s.At(0).T
	for i := 1; i < s.Len(); i++ {
		want := t0 + float64(i)*dt
		if math.Abs(s.At(i).T-want) > 1e-9*math.Max(1, math.Abs(want)) {
			return nil, fmt.Errorf("load: non-uniform trace: sample %d at t=%g, want %g (dt=%g)", i, s.At(i).T, want, dt)
		}
	}
	return tr, nil
}

// UserSessions models availability driven by an M/M/infinity population of
// competing users: users arrive at rate lambda per second, stay for
// exponential sessions of mean 1/mu seconds, and the application receives a
// 1/(1+n) share of the CPU when n users are active. This is the generative
// story behind "machine B is much faster ... it has more users and
// therefore a more dynamic load" (§1.2).
type UserSessions struct {
	c *cache
}

// NewUserSessions constructs the process; lambda and mu must be positive.
func NewUserSessions(lambda, mu, dt float64, seed int64) (*UserSessions, error) {
	if !(lambda > 0) || !(mu > 0) {
		return nil, errors.New("load: lambda and mu must be positive")
	}
	if !(dt > 0) {
		return nil, errors.New("load: dt must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	// Track the active-user count tick to tick. Within a tick of length
	// dt, arrivals ~ Poisson(lambda*dt) and each active user departs with
	// probability 1 - exp(-mu*dt).
	n := 0
	// Start at the stationary mean to skip burn-in.
	n = int(lambda / mu)
	pDepart := 1 - math.Exp(-mu*dt)
	gen := func(i int, prev float64) float64 {
		stay := 0
		for j := 0; j < n; j++ {
			if rng.Float64() >= pDepart {
				stay++
			}
		}
		n = stay + poisson(rng, lambda*dt)
		return 1 / float64(1+n)
	}
	return &UserSessions{c: newCache(dt, gen)}, nil
}

// At implements Process.
func (u *UserSessions) At(t float64) float64 { return u.c.at(t) }

// Interval implements Process.
func (u *UserSessions) Interval() float64 { return u.c.dt }

// poisson draws a Poisson(mean) variate by Knuth's method; mean values here
// are small (a few arrivals per tick).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // numerical guard; unreachable for sane means
			return k
		}
	}
}

// Switch composes two processes into a piecewise regime change: the signal
// follows Before until virtual time At, then follows After (which keeps its
// own absolute clock, so a bursty after-process is already "running" when
// the switch lands). This is the drift-detection experiments' ground truth:
// a machine that is steady for the first half of a series and turns
// Platform-2-bursty at a known instant.
type Switch struct {
	before, after Process
	at            float64
	dt            float64
}

// NewSwitch returns a process that follows before on [0, at) and after from
// at onward. For the piecewise-constant contract to hold exactly, at should
// fall on a tick boundary of both component processes.
func NewSwitch(at float64, before, after Process) (*Switch, error) {
	if before == nil || after == nil {
		return nil, errors.New("load: switch needs both processes")
	}
	if !(at > 0) {
		return nil, errors.New("load: switch time must be positive")
	}
	dt := before.Interval()
	if a := after.Interval(); a < dt {
		dt = a
	}
	return &Switch{before: before, after: after, at: at, dt: dt}, nil
}

// At implements Process.
func (s *Switch) At(t float64) float64 {
	if t < s.at {
		return s.before.At(t)
	}
	return s.after.At(t)
}

// Interval implements Process: the finer of the two component ticks.
func (s *Switch) Interval() float64 { return s.dt }

// SwitchTime returns the regime-change instant.
func (s *Switch) SwitchTime() float64 { return s.at }

// Record samples the process every dt from t0 to t1 and returns the series,
// the shape consumed by histogram figures and by modal fitting.
func Record(p Process, t0, t1, dt float64) (*timeseries.Series, error) {
	if !(dt > 0) || t1 < t0 {
		return nil, errors.New("load: bad recording range")
	}
	// Integer step index, not t += dt: accumulated rounding on steps like
	// 0.1 would skip or duplicate the final sample on long recordings.
	n := int(math.Floor((t1-t0)/dt + 1e-9))
	s := timeseries.NewSeries(n + 1)
	for i := 0; i <= n; i++ {
		t := t0 + float64(i)*dt
		if err := s.Append(t, p.At(t)); err != nil {
			return nil, err
		}
	}
	return s, nil
}
