package load

import (
	"errors"
	"math/rand"

	"prodpred/internal/dist"
)

// LongTailed is an availability process with a left long tail: values
// cluster near a peak and occasionally drop far below it. This reproduces
// the shape of the paper's measured ethernet bandwidth (Figure 3): a
// threshold near the achievable maximum with a long tail of congested
// samples, and a median above the mean.
//
// The process emits clamp01(peak - D) per tick, where D is a lognormal
// congestion drop.
type LongTailed struct {
	c *cache
}

// NewLongTailed constructs the process. peak is the availability ceiling in
// (0,1]; dropMean and dropStd are the linear-space moments of the lognormal
// congestion drop (both > 0).
func NewLongTailed(peak, dropMean, dropStd, dt float64, seed int64) (*LongTailed, error) {
	if !(peak > 0) || peak > 1 {
		return nil, errors.New("load: peak must be in (0,1]")
	}
	ln, err := dist.LogNormalFromMoments(dropMean, dropStd)
	if err != nil {
		return nil, err
	}
	if !(dt > 0) {
		return nil, errors.New("load: dt must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	gen := func(i int, prev float64) float64 {
		return clamp01(peak - ln.Sample(rng))
	}
	return &LongTailed{c: newCache(dt, gen)}, nil
}

// At implements Process.
func (l *LongTailed) At(t float64) float64 { return l.c.at(t) }

// Interval implements Process.
func (l *LongTailed) Interval() float64 { return l.c.dt }

// Congested is a two-regime availability process: most ticks see a small
// lognormal drop below the peak, but with probability burstProb a tick is a
// congestion episode with a much larger drop. The episode cluster sits
// beyond the 2-sigma band of the overall sample, which is what produces the
// paper's §2.1.1 observation that a normal summary covers ~91% rather than
// 95% of long-tailed bandwidth data.
type Congested struct {
	c *cache
}

// NewCongested constructs the process. peak is the availability ceiling in
// (0,1]; base and burst give the linear-space (mean, std) of the two drop
// regimes; burstProb in [0,1] is the per-tick episode probability.
func NewCongested(peak float64, baseMean, baseStd, burstProb, burstMean, burstStd, dt float64, seed int64) (*Congested, error) {
	if !(peak > 0) || peak > 1 {
		return nil, errors.New("load: peak must be in (0,1]")
	}
	if burstProb < 0 || burstProb > 1 {
		return nil, errors.New("load: burstProb must be in [0,1]")
	}
	base, err := dist.LogNormalFromMoments(baseMean, baseStd)
	if err != nil {
		return nil, err
	}
	burst, err := dist.LogNormalFromMoments(burstMean, burstStd)
	if err != nil {
		return nil, err
	}
	if !(dt > 0) {
		return nil, errors.New("load: dt must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	gen := func(i int, prev float64) float64 {
		d := base.Sample(rng)
		if rng.Float64() < burstProb {
			d = burst.Sample(rng)
		}
		return clamp01(peak - d)
	}
	return &Congested{c: newCache(dt, gen)}, nil
}

// At implements Process.
func (c *Congested) At(t float64) float64 { return c.c.at(t) }

// Interval implements Process.
func (c *Congested) Interval() float64 { return c.c.dt }

// EthernetContention returns the bandwidth-availability process calibrated
// to Figure 3: on a 10 Mbit/s ethernet the measured bandwidth histogram has
// its threshold near 6.2 Mbit/s (the protocol ceiling), mean ~5.25 Mbit/s,
// a long left tail of congestion episodes, and ~91% of samples within the
// 2-sigma normal summary.
func EthernetContention(seed int64) (*Congested, error) {
	return NewCongested(0.62, 0.08, 0.025, 0.10, 0.26, 0.035, 1.0, seed)
}
