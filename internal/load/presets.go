package load

// Presets reproducing the statistical shape of the paper's measured load.

// Platform1TriModal returns the tri-modal load of the paper's Figure 5: a
// mode near 0.33, a mode near 0.49 (the "center mode" used in §3.1), and a
// mode near 0.94, with slow switching so executions typically stay within a
// single mode (Figure 8).
func Platform1TriModal(seed int64) (*MarkovModal, error) {
	return NewMarkovModal(
		[]ModeSpec{
			{Mean: 0.33, Sigma: 0.02},
			{Mean: 0.48, Sigma: 0.025}, // center mode: 0.48 ± 0.05 at 2 sigma
			{Mean: 0.94, Sigma: 0.015},
		},
		[]float64{0.25, 0.45, 0.30},
		0.002, // expected dwell ~500 ticks: mode rarely changes mid-run
		0.9,
		1.0,
		seed,
	)
}

// Platform1CenterMode returns just the center mode of Platform 1 as a
// single-mode process — the regime of the paper's first experiment, where
// "the load of the (consistently) slowest machine ... was in the center
// mode, with a mean of 0.48" and stochastic value 0.48 ± 0.05.
func Platform1CenterMode(seed int64) (*SingleMode, error) {
	return NewSingleMode(0.48, 0.025, 0.9, 1.0, seed)
}

// Platform2FourModeBursty returns the 4-modal bursty load of Figures 10-11:
// four modes spanning the availability range with fast, unpredictable
// switching.
func Platform2FourModeBursty(seed int64) (*MarkovModal, error) {
	return NewMarkovModal(
		[]ModeSpec{
			{Mean: 0.12, Sigma: 0.03},
			{Mean: 0.35, Sigma: 0.04},
			{Mean: 0.62, Sigma: 0.04},
			{Mean: 0.90, Sigma: 0.03},
		},
		[]float64{0.2, 0.3, 0.3, 0.2},
		0.08, // expected dwell ~12 ticks: bursty
		0.7,
		1.0,
		seed,
	)
}

// LightLoad returns a mildly loaded machine (availability ~0.9) for
// dedicated-ish scenarios with small perturbations.
func LightLoad(seed int64) (*SingleMode, error) {
	return NewSingleMode(0.92, 0.015, 0.8, 1.0, seed)
}
