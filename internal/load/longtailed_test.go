package load

import (
	"testing"

	"prodpred/internal/stats"
)

func TestNewLongTailedValidation(t *testing.T) {
	cases := []struct{ peak, m, s, dt float64 }{
		{0, 0.1, 0.1, 1}, {1.5, 0.1, 0.1, 1},
		{0.6, 0, 0.1, 1}, {0.6, 0.1, 0, 1},
		{0.6, 0.1, 0.1, 0},
	}
	for _, c := range cases {
		if _, err := NewLongTailed(c.peak, c.m, c.s, c.dt, 1); err == nil {
			t.Errorf("NewLongTailed(%v) should fail", c)
		}
	}
}

func TestLongTailedShape(t *testing.T) {
	p, err := NewLongTailed(0.62, 0.095, 0.08, 1, 23)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Record(p, 0, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	xs := s.Values()
	for _, x := range xs {
		if x < 0 || x > 0.62+1e-12 {
			t.Fatalf("value %g outside [0, peak]", x)
		}
	}
	// Left-skewed: median above mean, negative skewness.
	mean := stats.Mean(xs)
	med, _ := stats.Median(xs)
	if med <= mean {
		t.Errorf("median %g should exceed mean %g for a left tail", med, mean)
	}
	if sk := stats.Skewness(xs); sk >= 0 {
		t.Errorf("skewness=%g want negative (left tail)", sk)
	}
}

func TestEthernetContentionMatchesFigure3(t *testing.T) {
	p, err := EthernetContention(29)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Record(p, 0, 30000, 1)
	xs := s.Values()
	// Figure 3 reports mean bandwidth 5.25 Mbit/s on 10 Mbit ethernet,
	// i.e. a mean availability fraction ~0.525.
	mean := stats.Mean(xs)
	if mean < 0.50 || mean > 0.55 {
		t.Errorf("mean availability=%g want ~0.525", mean)
	}
	// §2.1.1: a 2-sigma normal summary covers ~91% of this long-tailed
	// data rather than the nominal 95%.
	cov := stats.CoverageSigma(xs, 2)
	if cov < 0.88 || cov > 0.94 {
		t.Errorf("2-sigma coverage=%g want ~0.91", cov)
	}
	// And it must actually be long-tailed: a Jarque-Bera test rejects
	// normality decisively.
	res, err := stats.JarqueBera(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("JB failed to reject normality: p=%g", res.PValue)
	}
}

func TestNewCongestedValidation(t *testing.T) {
	cases := []struct{ peak, m1, s1, pb, m2, s2, dt float64 }{
		{0, 0.1, 0.1, 0.1, 0.2, 0.1, 1},   // bad peak
		{1.5, 0.1, 0.1, 0.1, 0.2, 0.1, 1}, // peak > 1
		{0.6, 0, 0.1, 0.1, 0.2, 0.1, 1},   // bad base mean
		{0.6, 0.1, 0, 0.1, 0.2, 0.1, 1},   // bad base std
		{0.6, 0.1, 0.1, -0.1, 0.2, 0.1, 1},
		{0.6, 0.1, 0.1, 1.1, 0.2, 0.1, 1},
		{0.6, 0.1, 0.1, 0.1, 0, 0.1, 1}, // bad burst mean
		{0.6, 0.1, 0.1, 0.1, 0.2, 0.1, 0},
	}
	for _, c := range cases {
		if _, err := NewCongested(c.peak, c.m1, c.s1, c.pb, c.m2, c.s2, c.dt, 1); err == nil {
			t.Errorf("NewCongested(%v) should fail", c)
		}
	}
	p, err := NewCongested(0.62, 0.08, 0.025, 0.10, 0.26, 0.035, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Interval() != 1 {
		t.Errorf("Interval=%g", p.Interval())
	}
	for tt := 0.0; tt < 100; tt++ {
		if v := p.At(tt); v < 0 || v > 0.62 {
			t.Fatalf("value %g outside [0, peak]", v)
		}
	}
}
