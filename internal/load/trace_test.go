package load

import (
	"strings"
	"testing"

	"prodpred/internal/timeseries"
)

// TestUniformTraceBoundaries pins the replay-critical LOCF edges: times
// before the first sample carry the first value backward, times past the
// last sample carry the last value forward, and grid points return the
// exact recorded sample.
func TestUniformTraceBoundaries(t *testing.T) {
	s, err := timeseries.FromSlices(
		[]float64{100, 101, 102, 103},
		[]float64{0.25, 0.5, 0.75, 0.625})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewUniformTrace(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(0); got != 0.25 {
		t.Errorf("before first sample: At(0)=%g, want first value 0.25", got)
	}
	if got := tr.At(99.999); got != 0.25 {
		t.Errorf("just before first sample: At(99.999)=%g, want 0.25", got)
	}
	for i := 0; i < s.Len(); i++ {
		if got := tr.At(s.At(i).T); got != s.At(i).V {
			t.Errorf("grid point %d: At(%g)=%g, want exact sample %g", i, s.At(i).T, got, s.At(i).V)
		}
	}
	if got := tr.At(102.5); got != 0.75 {
		t.Errorf("mid-tick: At(102.5)=%g, want LOCF 0.75", got)
	}
	if got := tr.At(1e6); got != 0.625 {
		t.Errorf("past end: At(1e6)=%g, want last value 0.625", got)
	}
}

// TestUniformTraceRejectsNonUniform is the contract NewUniformTrace adds
// over NewTrace: any sample off the dt grid fails construction, with the
// offending sample named, instead of silently replaying shifted values.
func TestUniformTraceRejectsNonUniform(t *testing.T) {
	s, err := timeseries.FromSlices([]float64{0, 1, 2.5, 3}, []float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewUniformTrace(s, 1)
	if err == nil {
		t.Fatal("non-uniform series accepted")
	}
	if !strings.Contains(err.Error(), "sample 2") {
		t.Errorf("error %q does not name the offending sample", err)
	}
	// The lax constructor still accepts it — replay strictness must not
	// break measured-trace imports.
	if _, err := NewTrace(s, 1); err != nil {
		t.Errorf("NewTrace rejected non-uniform series: %v", err)
	}
	// Wrong dt for an otherwise-uniform grid is the same failure.
	u, err := timeseries.FromSlices([]float64{0, 1, 2, 3}, []float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUniformTrace(u, 2); err == nil {
		t.Error("uniform grid accepted under the wrong dt")
	}
	// Float round-off within the relative tolerance is not a rejection:
	// 0.1 steps are non-representable but still a uniform grid.
	ts := make([]float64, 1000)
	vs := make([]float64, 1000)
	for i := range ts {
		ts[i] = float64(i) * 0.1
		vs[i] = 0.5
	}
	f, err := timeseries.FromSlices(ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewUniformTrace(f, 0.1); err != nil {
		t.Errorf("0.1-step grid rejected: %v", err)
	}
	if _, err := NewUniformTrace(nil, 1); err == nil {
		t.Error("nil series accepted")
	}
}

// TestLongTailedDeterminism pins the same-seed contract for the
// heavy-tailed generators the workload scenarios compose: two processes
// built with identical parameters and seed must agree bit-for-bit at
// every tick (including out-of-order access), and a different seed must
// diverge.
func TestLongTailedDeterminism(t *testing.T) {
	build := map[string]func(seed int64) (Process, error){
		"long-tailed": func(seed int64) (Process, error) {
			return NewLongTailed(0.9, 0.4, 0.2, 1, seed)
		},
		"congested": func(seed int64) (Process, error) {
			return NewCongested(0.85, 0.1, 0.05, 0.08, 0.5, 0.15, 1, seed)
		},
		"ethernet-contention": func(seed int64) (Process, error) {
			return EthernetContention(seed)
		},
	}
	times := []float64{0, 500, 3, 127, 1000, 64, 2.5} // deliberately out of order
	for name, mk := range build {
		a, err := mk(42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := mk(42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, tt := range times {
			if av, bv := a.At(tt), b.At(tt); av != bv {
				t.Errorf("%s: same seed diverged at t=%g: %g vs %g", name, tt, av, bv)
			}
		}
		// Sequential pass must bit-match too (the cache's generation order).
		for tt := 0.0; tt < 200; tt++ {
			if av, bv := a.At(tt), b.At(tt); av != bv {
				t.Fatalf("%s: sequential divergence at t=%g", name, tt)
			}
		}
		c, err := mk(43)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		same := true
		for tt := 0.0; tt < 200; tt++ {
			if a.At(tt) != c.At(tt) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical paths", name)
		}
	}
}
