package modal

import (
	"errors"

	"prodpred/internal/stochastic"
)

// Burstiness summarizes how a series moves between modes over time —
// the paper distinguishes load that "remains within a single mode" from
// "multi-modal bursty" load (§2.1.2, Figures 8 vs 11), and picks the
// stochastic-value construction accordingly.
type Burstiness struct {
	Transitions    int     // number of adjacent-sample mode changes
	TransitionRate float64 // transitions per sample
	DominantMode   int     // mode with the highest occupancy
	DominantFrac   float64 // occupancy of the dominant mode
	MeanDwell      float64 // average run length within a mode, in samples
}

// AnalyzeBurstiness classifies the series xs with the model and summarizes
// its mode dynamics.
func AnalyzeBurstiness(mm *MixtureModel, xs []float64) (Burstiness, error) {
	if len(xs) == 0 {
		return Burstiness{}, errors.New("modal: empty series")
	}
	labels := mm.ClassifySeries(xs)
	occ := mm.Occupancy(xs)
	b := Burstiness{}
	for i, f := range occ {
		if f > b.DominantFrac {
			b.DominantMode, b.DominantFrac = i, f
		}
	}
	runs := 1
	for i := 1; i < len(labels); i++ {
		if labels[i] != labels[i-1] {
			b.Transitions++
			runs++
		}
	}
	b.TransitionRate = float64(b.Transitions) / float64(len(labels))
	b.MeanDwell = float64(len(labels)) / float64(runs)
	return b, nil
}

// SingleMode reports whether the series effectively stays in one mode: the
// dominant mode covers at least domFrac of samples and the transition rate
// is below maxRate. These are the conditions under which the paper uses the
// current mode's distribution directly (§3.1).
func (b Burstiness) SingleMode(domFrac, maxRate float64) bool {
	return b.DominantFrac >= domFrac && b.TransitionRate <= maxRate
}

// StochasticValue builds the prediction parameter from a fitted model and
// the observed series per §2.1.2:
//
//   - If the series is effectively single-mode, return that mode's
//     stochastic value (mean ± 2 sigma of the mode).
//   - Otherwise, return the occupancy-weighted combination
//     P1(M1 ± SD1) + P2(M2 ± SD2) + ... .
//
// The returned bool reports whether the single-mode branch was taken.
func StochasticValue(mm *MixtureModel, xs []float64) (stochastic.Value, bool, error) {
	b, err := AnalyzeBurstiness(mm, xs)
	if err != nil {
		return stochastic.Value{}, false, err
	}
	if b.SingleMode(0.9, 0.05) {
		return mm.Modes[b.DominantMode].Stochastic(), true, nil
	}
	modes := make([]stochastic.Value, mm.K())
	for i, m := range mm.Modes {
		modes[i] = m.Stochastic()
	}
	v, err := stochastic.WeightedCombine(modes, mm.Occupancy(xs))
	return v, false, err
}

// MixtureStochasticValue is the variance-complete alternative summary
// (exact mixture mean ± 2 sigma including between-mode variance), used by
// the modal ablation experiment.
func MixtureStochasticValue(mm *MixtureModel, xs []float64) (stochastic.Value, error) {
	modes := make([]stochastic.Value, mm.K())
	for i, m := range mm.Modes {
		modes[i] = m.Stochastic()
	}
	return stochastic.MixtureSummary(modes, mm.Occupancy(xs))
}
