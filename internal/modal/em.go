// Package modal analyzes multi-modal measurement data — the paper's §2.1.2.
// Production CPU load often consists of several modes (Figure 5 shows a
// tri-modal workstation load); this package detects the modes (1-D Gaussian
// mixture fitting via EM with BIC model selection), classifies observations
// into modes, computes mode-occupancy fractions P_i and burstiness metrics,
// and combines per-mode stochastic values into a single prediction
// parameter using the paper's weighted formula.
package modal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"prodpred/internal/dist"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
)

// Mode is one detected mode: a normal component with a mixture weight.
type Mode struct {
	Mean   float64
	Sigma  float64
	Weight float64
}

// Stochastic returns the mode's stochastic value (mean ± 2 sigma).
func (m Mode) Stochastic() stochastic.Value {
	return stochastic.FromMeanSigma(m.Mean, m.Sigma)
}

// MixtureModel is a fitted 1-D Gaussian mixture, modes sorted by ascending
// mean.
type MixtureModel struct {
	Modes         []Mode
	LogLikelihood float64
	Iterations    int
	Converged     bool
}

// K returns the number of modes.
func (mm *MixtureModel) K() int { return len(mm.Modes) }

// BIC returns the Bayesian Information Criterion of the fit on a sample of
// size n: k_params*ln(n) - 2*LL, with 3K-1 free parameters. Lower is
// better.
func (mm *MixtureModel) BIC(n int) float64 {
	k := float64(3*mm.K() - 1)
	return k*math.Log(float64(n)) - 2*mm.LogLikelihood
}

// Mixture converts the model into a dist.Mixture.
func (mm *MixtureModel) Mixture() (*dist.Mixture, error) {
	comps := make([]dist.Distribution, mm.K())
	ws := make([]float64, mm.K())
	for i, m := range mm.Modes {
		n, err := dist.NewNormal(m.Mean, m.Sigma)
		if err != nil {
			return nil, err
		}
		comps[i] = n
		ws[i] = m.Weight
	}
	return dist.NewMixture(comps, ws)
}

// Classify returns the index of the mode with the highest posterior
// responsibility for observation x.
func (mm *MixtureModel) Classify(x float64) int {
	best, bestVal := 0, math.Inf(-1)
	for i, m := range mm.Modes {
		v := math.Log(m.Weight) + logNormalPDF(x, m.Mean, m.Sigma)
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// ClassifySeries maps each observation to its most likely mode.
func (mm *MixtureModel) ClassifySeries(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = mm.Classify(x)
	}
	return out
}

// Occupancy returns the empirical fraction of observations classified into
// each mode — the P_i of §2.1.2.
func (mm *MixtureModel) Occupancy(xs []float64) []float64 {
	counts := make([]float64, mm.K())
	for _, x := range xs {
		counts[mm.Classify(x)]++
	}
	if len(xs) > 0 {
		for i := range counts {
			counts[i] /= float64(len(xs))
		}
	}
	return counts
}

func logNormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

const (
	emMaxIter  = 500
	emTol      = 1e-8
	minSigma   = 1e-6 // variance floor keeps components from collapsing
	minWeight  = 1e-8
	minSamples = 8
)

// FitEM fits a k-component Gaussian mixture to xs by expectation-
// maximization, initialized with 1-D k-means (which is deterministic given
// the quantile seeding used here). It returns an error for k < 1 or when
// the sample is too small or degenerate.
func FitEM(xs []float64, k int) (*MixtureModel, error) {
	if k < 1 {
		return nil, errors.New("modal: k must be >= 1")
	}
	if len(xs) < minSamples || len(xs) < 2*k {
		return nil, fmt.Errorf("modal: need at least %d samples for k=%d", max(minSamples, 2*k), k)
	}
	lo, _ := stats.Min(xs)
	hi, _ := stats.Max(xs)
	if hi == lo {
		return nil, errors.New("modal: degenerate sample")
	}

	means, sigmas, weights := kmeansInit(xs, k)
	n := len(xs)
	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	logW := make([]float64, k)
	logS := make([]float64, k)
	halfLog2Pi := 0.5 * math.Log(2*math.Pi)

	prevLL := math.Inf(-1)
	var ll float64
	iters := 0
	converged := false
	for iters = 1; iters <= emMaxIter; iters++ {
		// E-step with log-sum-exp for numeric safety. The parameters are
		// fixed within the step, so their logs hoist out of the n×k inner
		// loop; the expression keeps logNormalPDF's exact operation order,
		// so the fit is bit-identical to the unhoisted form.
		for j := 0; j < k; j++ {
			logW[j] = math.Log(weights[j])
			logS[j] = math.Log(sigmas[j])
		}
		ll = 0
		for i, x := range xs {
			maxLog := math.Inf(-1)
			for j := 0; j < k; j++ {
				z := (x - means[j]) / sigmas[j]
				resp[i][j] = logW[j] + (-0.5*z*z - logS[j] - halfLog2Pi)
				if resp[i][j] > maxLog {
					maxLog = resp[i][j]
				}
			}
			var sum float64
			for j := 0; j < k; j++ {
				resp[i][j] = math.Exp(resp[i][j] - maxLog)
				sum += resp[i][j]
			}
			for j := 0; j < k; j++ {
				resp[i][j] /= sum
			}
			ll += maxLog + math.Log(sum)
		}
		// M-step.
		for j := 0; j < k; j++ {
			var nj, mu float64
			for i, x := range xs {
				nj += resp[i][j]
				mu += resp[i][j] * x
			}
			if nj < minWeight*float64(n) {
				// Collapsed component: re-seed it at the sample point with
				// the worst likelihood to escape the degenerate optimum.
				means[j] = reseedPoint(xs, means, sigmas, weights)
				sigmas[j] = (hi - lo) / float64(4*k)
				weights[j] = 1.0 / float64(n)
				continue
			}
			mu /= nj
			var v float64
			for i, x := range xs {
				d := x - mu
				v += resp[i][j] * d * d
			}
			v /= nj
			means[j] = mu
			sigmas[j] = math.Sqrt(v)
			if sigmas[j] < minSigma {
				sigmas[j] = minSigma
			}
			weights[j] = nj / float64(n)
		}
		normalize(weights)
		if math.Abs(ll-prevLL) < emTol*(1+math.Abs(ll)) {
			converged = true
			break
		}
		prevLL = ll
	}

	mm := &MixtureModel{LogLikelihood: ll, Iterations: iters, Converged: converged}
	for j := 0; j < k; j++ {
		mm.Modes = append(mm.Modes, Mode{Mean: means[j], Sigma: sigmas[j], Weight: weights[j]})
	}
	sort.Slice(mm.Modes, func(a, b int) bool { return mm.Modes[a].Mean < mm.Modes[b].Mean })
	return mm, nil
}

// FitBIC fits mixtures with k = 1..kMax and returns the one minimizing BIC.
func FitBIC(xs []float64, kMax int) (*MixtureModel, error) {
	if kMax < 1 {
		return nil, errors.New("modal: kMax must be >= 1")
	}
	var best *MixtureModel
	bestBIC := math.Inf(1)
	var firstErr error
	for k := 1; k <= kMax; k++ {
		mm, err := FitEM(xs, k)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if b := mm.BIC(len(xs)); b < bestBIC {
			best, bestBIC = mm, b
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

// kmeansInit seeds EM with 1-D k-means initialized at evenly spaced sample
// quantiles (deterministic).
func kmeansInit(xs []float64, k int) (means, sigmas, weights []float64) {
	means = make([]float64, k)
	for j := 0; j < k; j++ {
		q := (float64(j) + 0.5) / float64(k)
		means[j], _ = stats.Quantile(xs, q)
	}
	assign := make([]int, len(xs))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, x := range xs {
			best, bestD := 0, math.Inf(1)
			for j, m := range means {
				d := math.Abs(x - m)
				if d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]float64, k)
		for i, x := range xs {
			sums[assign[i]] += x
			counts[assign[i]]++
		}
		for j := 0; j < k; j++ {
			if counts[j] > 0 {
				means[j] = sums[j] / counts[j]
			}
		}
		if !changed {
			break
		}
	}
	sigmas = make([]float64, k)
	weights = make([]float64, k)
	lo, _ := stats.Min(xs)
	hi, _ := stats.Max(xs)
	fallback := (hi - lo) / float64(4*k)
	if fallback < minSigma {
		fallback = minSigma
	}
	for j := 0; j < k; j++ {
		var ss, cnt float64
		for i, x := range xs {
			if assign[i] == j {
				d := x - means[j]
				ss += d * d
				cnt++
			}
		}
		if cnt > 1 && ss > 0 {
			sigmas[j] = math.Sqrt(ss / cnt)
		} else {
			sigmas[j] = fallback
		}
		if sigmas[j] < minSigma {
			sigmas[j] = minSigma
		}
		weights[j] = (cnt + 1) / float64(len(xs)+k) // Laplace smoothing
	}
	normalize(weights)
	return means, sigmas, weights
}

// reseedPoint returns the sample value with the lowest mixture density,
// used to revive a collapsed EM component.
func reseedPoint(xs []float64, means, sigmas, weights []float64) float64 {
	worst, worstD := xs[0], math.Inf(1)
	for _, x := range xs {
		d := 0.0
		for j := range means {
			d += weights[j] * math.Exp(logNormalPDF(x, means[j], sigmas[j]))
		}
		if d < worstD {
			worst, worstD = x, d
		}
	}
	return worst
}

func normalize(ws []float64) {
	var tot float64
	for _, w := range ws {
		tot += w
	}
	if tot <= 0 {
		for i := range ws {
			ws[i] = 1 / float64(len(ws))
		}
		return
	}
	for i := range ws {
		ws[i] /= tot
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
