package modal

import (
	"math/rand"
	"testing"

	"prodpred/internal/stochastic"
)

func twoModeModel() *MixtureModel {
	return &MixtureModel{Modes: []Mode{
		{Mean: 0.3, Sigma: 0.02, Weight: 0.5},
		{Mean: 0.9, Sigma: 0.02, Weight: 0.5},
	}}
}

// steadySeries stays in mode 0; burstySeries alternates every sample.
func steadySeries(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 0.3
	}
	return xs
}

func burstySeries(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 0.3
		} else {
			xs[i] = 0.9
		}
	}
	return xs
}

func TestAnalyzeBurstinessSteady(t *testing.T) {
	mm := twoModeModel()
	b, err := AnalyzeBurstiness(mm, steadySeries(100))
	if err != nil {
		t.Fatal(err)
	}
	if b.Transitions != 0 || b.TransitionRate != 0 {
		t.Errorf("steady transitions=%d rate=%g", b.Transitions, b.TransitionRate)
	}
	if b.DominantMode != 0 || b.DominantFrac != 1 {
		t.Errorf("dominant=%d frac=%g", b.DominantMode, b.DominantFrac)
	}
	if b.MeanDwell != 100 {
		t.Errorf("dwell=%g", b.MeanDwell)
	}
	if !b.SingleMode(0.9, 0.05) {
		t.Error("steady series should be single-mode")
	}
}

func TestAnalyzeBurstinessBursty(t *testing.T) {
	mm := twoModeModel()
	b, err := AnalyzeBurstiness(mm, burstySeries(100))
	if err != nil {
		t.Fatal(err)
	}
	if b.Transitions != 99 {
		t.Errorf("transitions=%d", b.Transitions)
	}
	if b.MeanDwell != 1 {
		t.Errorf("dwell=%g", b.MeanDwell)
	}
	if b.SingleMode(0.9, 0.05) {
		t.Error("bursty series should not be single-mode")
	}
}

func TestAnalyzeBurstinessEmpty(t *testing.T) {
	if _, err := AnalyzeBurstiness(twoModeModel(), nil); err == nil {
		t.Error("empty series should fail")
	}
}

func TestStochasticValueSingleModeBranch(t *testing.T) {
	mm := twoModeModel()
	v, single, err := StochasticValue(mm, steadySeries(200))
	if err != nil {
		t.Fatal(err)
	}
	if !single {
		t.Error("should take single-mode branch")
	}
	want := stochastic.FromMeanSigma(0.3, 0.02)
	if !v.ApproxEqual(want, 1e-12) {
		t.Errorf("value=%v want %v", v, want)
	}
}

func TestStochasticValueWeightedBranch(t *testing.T) {
	mm := twoModeModel()
	v, single, err := StochasticValue(mm, burstySeries(200))
	if err != nil {
		t.Fatal(err)
	}
	if single {
		t.Error("should take weighted branch")
	}
	// 50/50 occupancy: mean = 0.6, spread = 0.5*0.04 + 0.5*0.04 = 0.04.
	want := stochastic.New(0.6, 0.04)
	if !v.ApproxEqual(want, 1e-9) {
		t.Errorf("value=%v want %v", v, want)
	}
}

func TestStochasticValueEmptySeries(t *testing.T) {
	if _, _, err := StochasticValue(twoModeModel(), nil); err == nil {
		t.Error("empty series should fail")
	}
}

func TestMixtureStochasticValueIsWider(t *testing.T) {
	mm := twoModeModel()
	xs := burstySeries(200)
	paper, _, err := StochasticValue(mm, xs)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MixtureStochasticValue(mm, xs)
	if err != nil {
		t.Fatal(err)
	}
	if full.Spread <= paper.Spread {
		t.Errorf("mixture spread %g should exceed weighted-combine spread %g",
			full.Spread, paper.Spread)
	}
	if !almostEqual(full.Mean, paper.Mean, 1e-9) {
		t.Errorf("means differ: %g vs %g", full.Mean, paper.Mean)
	}
}

func TestEndToEndFitAndSummarize(t *testing.T) {
	// Fit a bursty 4-modal series like Platform 2's, then summarize.
	rng := rand.New(rand.NewSource(120))
	means := []float64{0.1, 0.35, 0.6, 0.92}
	n := 2000
	xs := make([]float64, n)
	mode := 0
	for i := range xs {
		if rng.Float64() < 0.1 { // bursty switching
			mode = rng.Intn(4)
		}
		xs[i] = means[mode] + 0.02*rng.NormFloat64()
	}
	mm, err := FitBIC(xs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if mm.K() < 3 || mm.K() > 5 {
		t.Errorf("fitted K=%d want ~4", mm.K())
	}
	v, single, err := StochasticValue(mm, xs)
	if err != nil {
		t.Fatal(err)
	}
	if single {
		t.Error("bursty multi-modal series took the single-mode branch")
	}
	if v.Mean < 0.1 || v.Mean > 0.92 {
		t.Errorf("combined mean %g outside mode range", v.Mean)
	}
	if v.Spread <= 0 {
		t.Errorf("combined spread %g", v.Spread)
	}
}
