package modal

import (
	"math"
	"math/rand"
	"testing"

	"prodpred/internal/dist"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// paperTriModal draws samples resembling the paper's Figure 5 load: modes
// at 0.33, 0.49, 0.94.
func paperTriModal(rng *rand.Rand, n int) []float64 {
	comps := []dist.Normal{
		{Mu: 0.33, Sigma: 0.02},
		{Mu: 0.49, Sigma: 0.03},
		{Mu: 0.94, Sigma: 0.02},
	}
	ws := []float64{0.3, 0.3, 0.4}
	xs := make([]float64, n)
	for i := range xs {
		u := rng.Float64()
		var c dist.Normal
		switch {
		case u < ws[0]:
			c = comps[0]
		case u < ws[0]+ws[1]:
			c = comps[1]
		default:
			c = comps[2]
		}
		xs[i] = c.Sample(rng)
	}
	return xs
}

func TestFitEMRecoversTriModal(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	xs := paperTriModal(rng, 3000)
	mm, err := FitEM(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Converged {
		t.Errorf("EM did not converge in %d iterations", mm.Iterations)
	}
	wantMeans := []float64{0.33, 0.49, 0.94}
	wantWs := []float64{0.3, 0.3, 0.4}
	for i, m := range mm.Modes {
		if !almostEqual(m.Mean, wantMeans[i], 0.02) {
			t.Errorf("mode %d mean=%g want %g", i, m.Mean, wantMeans[i])
		}
		if !almostEqual(m.Weight, wantWs[i], 0.04) {
			t.Errorf("mode %d weight=%g want %g", i, m.Weight, wantWs[i])
		}
		if m.Sigma <= 0 || m.Sigma > 0.1 {
			t.Errorf("mode %d sigma=%g", i, m.Sigma)
		}
	}
}

func TestFitEMSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	xs := dist.SampleN(dist.Normal{Mu: 5, Sigma: 0.5}, rng, 500)
	mm, err := FitEM(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mm.Modes[0].Mean, 5, 0.1) || !almostEqual(mm.Modes[0].Sigma, 0.5, 0.08) {
		t.Errorf("single mode=%+v", mm.Modes[0])
	}
	if !almostEqual(mm.Modes[0].Weight, 1, 1e-9) {
		t.Errorf("weight=%g", mm.Modes[0].Weight)
	}
}

func TestFitEMValidation(t *testing.T) {
	if _, err := FitEM([]float64{1, 2, 3}, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := FitEM([]float64{1, 2, 3}, 2); err == nil {
		t.Error("tiny sample should fail")
	}
	same := make([]float64, 50)
	for i := range same {
		same[i] = 3
	}
	if _, err := FitEM(same, 2); err == nil {
		t.Error("degenerate sample should fail")
	}
}

func TestFitEMWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, k := range []int{1, 2, 3, 4} {
		xs := paperTriModal(rng, 800)
		mm, err := FitEM(xs, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		var sum float64
		for _, m := range mm.Modes {
			sum += m.Weight
			if m.Weight < 0 {
				t.Errorf("k=%d negative weight %g", k, m.Weight)
			}
			if m.Sigma <= 0 {
				t.Errorf("k=%d non-positive sigma %g", k, m.Sigma)
			}
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("k=%d weights sum to %g", k, sum)
		}
		// Modes sorted by mean.
		for i := 1; i < len(mm.Modes); i++ {
			if mm.Modes[i].Mean < mm.Modes[i-1].Mean {
				t.Errorf("k=%d modes not sorted", k)
			}
		}
	}
}

func TestFitBICSelectsThreeModes(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	xs := paperTriModal(rng, 3000)
	mm, err := FitBIC(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mm.K() != 3 {
		t.Errorf("BIC selected k=%d want 3", mm.K())
	}
}

func TestFitBICSelectsOneModeForUnimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	xs := dist.SampleN(dist.Normal{Mu: 0.5, Sigma: 0.05}, rng, 2000)
	mm, err := FitBIC(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mm.K() != 1 {
		t.Errorf("BIC selected k=%d want 1", mm.K())
	}
}

func TestFitBICValidation(t *testing.T) {
	if _, err := FitBIC([]float64{1, 2}, 0); err == nil {
		t.Error("kMax=0 should fail")
	}
	if _, err := FitBIC([]float64{1, 2}, 3); err == nil {
		t.Error("tiny sample should propagate error")
	}
}

func TestClassify(t *testing.T) {
	mm := &MixtureModel{Modes: []Mode{
		{Mean: 0.3, Sigma: 0.05, Weight: 0.5},
		{Mean: 0.9, Sigma: 0.05, Weight: 0.5},
	}}
	if got := mm.Classify(0.25); got != 0 {
		t.Errorf("Classify(0.25)=%d", got)
	}
	if got := mm.Classify(0.95); got != 1 {
		t.Errorf("Classify(0.95)=%d", got)
	}
	labels := mm.ClassifySeries([]float64{0.3, 0.9, 0.31})
	if labels[0] != 0 || labels[1] != 1 || labels[2] != 0 {
		t.Errorf("labels=%v", labels)
	}
}

func TestClassifyRespectsWeights(t *testing.T) {
	// At the midpoint of two equal-sigma modes, the heavier mode wins.
	mm := &MixtureModel{Modes: []Mode{
		{Mean: 0.0, Sigma: 0.1, Weight: 0.99},
		{Mean: 1.0, Sigma: 0.1, Weight: 0.01},
	}}
	if got := mm.Classify(0.5); got != 0 {
		t.Errorf("midpoint classified to light mode")
	}
}

func TestOccupancy(t *testing.T) {
	mm := &MixtureModel{Modes: []Mode{
		{Mean: 0.3, Sigma: 0.05, Weight: 0.5},
		{Mean: 0.9, Sigma: 0.05, Weight: 0.5},
	}}
	xs := []float64{0.3, 0.3, 0.3, 0.9}
	occ := mm.Occupancy(xs)
	if !almostEqual(occ[0], 0.75, 1e-12) || !almostEqual(occ[1], 0.25, 1e-12) {
		t.Errorf("occupancy=%v", occ)
	}
	occEmpty := mm.Occupancy(nil)
	if occEmpty[0] != 0 || occEmpty[1] != 0 {
		t.Errorf("empty occupancy=%v", occEmpty)
	}
}

func TestMixtureModelMixtureRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	xs := paperTriModal(rng, 2000)
	mm, err := FitEM(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := mm.Mixture()
	if err != nil {
		t.Fatal(err)
	}
	if mix.K() != 3 {
		t.Fatalf("K=%d", mix.K())
	}
	// Mixture mean should match the weighted mode means.
	var want float64
	for _, m := range mm.Modes {
		want += m.Weight * m.Mean
	}
	if !almostEqual(mix.Mean(), want, 1e-9) {
		t.Errorf("mixture mean=%g want %g", mix.Mean(), want)
	}
}

func TestBICPenalizesComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	xs := dist.SampleN(dist.Normal{Mu: 0, Sigma: 1}, rng, 1000)
	m1, err := FitEM(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := FitEM(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m1.BIC(len(xs)) >= m3.BIC(len(xs)) {
		t.Errorf("BIC should prefer k=1 on unimodal data: %g vs %g",
			m1.BIC(len(xs)), m3.BIC(len(xs)))
	}
}

func TestEMIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	xs := paperTriModal(rng, 1000)
	a, err := FitEM(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitEM(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Modes {
		if a.Modes[i] != b.Modes[i] {
			t.Fatalf("EM nondeterministic: %+v vs %+v", a.Modes[i], b.Modes[i])
		}
	}
}
