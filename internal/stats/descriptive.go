// Package stats implements the descriptive and inferential statistics the
// reproduction needs: moments, quantiles, histograms, empirical CDFs,
// goodness-of-fit tests, and autocorrelation.
//
// The paper's methodology (Schopf & Berman, IPPS/SPDP '98) summarizes
// measured system characteristics as normal distributions ("stochastic
// values"); this package supplies the machinery to compute those summaries
// from raw samples and to judge when the normal summary is adequate
// (normality tests, coverage-within-k-sigma for long-tailed data).
//
// Everything here is stdlib-only and deterministic.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Kahan summation: load traces can be long and narrow-ranged, and the
	// variance computations downstream are sensitive to the mean.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population (n) variance of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns the mean and sample standard deviation in one pass over
// the moments.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Min returns the smallest element of xs, or an error if xs is empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs, or an error if xs is empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Range returns max-min of xs, or an error if xs is empty.
func Range(xs []float64) (float64, error) {
	lo, err := Min(xs)
	if err != nil {
		return 0, err
	}
	hi, _ := Max(xs)
	return hi - lo, nil
}

// Median returns the median of xs (average of the two central order
// statistics for even n). It returns an error for an empty sample.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs, 0 <= q <= 1, using linear
// interpolation between order statistics (type-7, the R/NumPy default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile q out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	h := q * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo], nil
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Skewness returns the adjusted Fisher-Pearson sample skewness (g1 with the
// small-sample correction). It returns 0 when n < 3 or the sample is
// degenerate.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// ExcessKurtosis returns the sample excess kurtosis (g2 = m4/m2^2 - 3).
// It returns 0 when n < 4 or the sample is degenerate.
func ExcessKurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	Q25      float64
	Median   float64
	Q75      float64
	Max      float64
	Skewness float64
	Kurtosis float64 // excess kurtosis
}

// Summarize computes a Summary of xs. It returns an error for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	q25, _ := Quantile(xs, 0.25)
	med, _ := Quantile(xs, 0.5)
	q75, _ := Quantile(xs, 0.75)
	return Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		StdDev:   StdDev(xs),
		Min:      lo,
		Q25:      q25,
		Median:   med,
		Q75:      q75,
		Max:      hi,
		Skewness: Skewness(xs),
		Kurtosis: ExcessKurtosis(xs),
	}, nil
}

// Coverage returns the fraction of xs lying inside the closed interval
// [lo, hi]. The paper uses this to quantify how much of a long-tailed sample
// a 2-sigma normal summary actually covers (§2.1.1: 91% instead of the
// nominal 95%).
func Coverage(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	in := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			in++
		}
	}
	return float64(in) / float64(len(xs))
}

// CoverageSigma returns the fraction of xs within k sample standard
// deviations of the sample mean.
func CoverageSigma(xs []float64, k float64) float64 {
	m, s := MeanStd(xs)
	return Coverage(xs, m-k*s, m+k*s)
}

// WeightedMean returns the mean of xs weighted by ws. The weights must be
// non-negative and not all zero, and len(ws) must equal len(xs).
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, errors.New("stats: weight length mismatch")
	}
	var num, den float64
	for i, x := range xs {
		if ws[i] < 0 {
			return 0, errors.New("stats: negative weight")
		}
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0, errors.New("stats: zero total weight")
	}
	return num / den, nil
}

// Standardize returns (xs - mean)/std elementwise. If the sample standard
// deviation is zero it returns a zero slice of the same length.
func Standardize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m, s := MeanStd(xs)
	if s == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / s
	}
	return out
}
