package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Perfect positive and negative linear relationships.
	if r, err := PearsonCorrelation(xs, []float64{2, 4, 6, 8, 10}); err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("r=%g err=%v want 1", r, err)
	}
	if r, err := PearsonCorrelation(xs, []float64{5, 4, 3, 2, 1}); err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("r=%g err=%v want -1", r, err)
	}
	// Independent noise: near zero.
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if r, _ := PearsonCorrelation(a, b); math.Abs(r) > 0.05 {
		t.Errorf("independent r=%g", r)
	}
}

func TestPearsonCorrelationErrors(t *testing.T) {
	if _, err := PearsonCorrelation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PearsonCorrelation([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair should fail")
	}
	if _, err := PearsonCorrelation([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("constant x should fail")
	}
	if _, err := PearsonCorrelation([]float64{1, 3}, []float64{2, 2}); err == nil {
		t.Error("constant y should fail")
	}
}

func TestSpearmanCatchesMonotoneNonlinear(t *testing.T) {
	// y = exp(x): weakly linear but perfectly monotone.
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = math.Exp(xs[i])
	}
	rho, err := SpearmanCorrelation(xs, ys)
	if err != nil || !almostEqual(rho, 1, 1e-9) {
		t.Errorf("rho=%g err=%v want 1", rho, err)
	}
	pear, _ := PearsonCorrelation(xs, ys)
	if pear >= rho {
		t.Errorf("pearson %g should be below spearman %g here", pear, rho)
	}
}

func TestSpearmanHandlesTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	rho, err := SpearmanCorrelation(xs, ys)
	if err != nil || !almostEqual(rho, 1, 1e-9) {
		t.Errorf("tied rho=%g err=%v", rho, err)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks=%v want %v", got, want)
		}
	}
	// Ties share the average rank.
	got = ranks([]float64{5, 5, 1})
	if got[0] != 2.5 || got[1] != 2.5 || got[2] != 1 {
		t.Errorf("tied ranks=%v", got)
	}
}
