package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1}, 0},
		{"typical", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: Mean=%g want %g", c.name, got, c.want)
		}
	}
}

func TestMeanKahanStability(t *testing.T) {
	// Many values near 1 plus a large offset; naive summation loses
	// precision here, Kahan does not.
	xs := make([]float64, 1e5)
	for i := range xs {
		xs[i] = 1e9 + 0.1
	}
	if got := Mean(xs); !almostEqual(got, 1e9+0.1, 1e-4) {
		t.Errorf("Mean lost precision: got %.10f", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known example: population variance 4, sample variance 32/7.
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance=%g want 4", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance=%g want %g", got, 32.0/7.0)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %g want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance of empty = %g want 0", got)
	}
}

func TestStdDevMatchesVariance(t *testing.T) {
	xs := []float64{1.5, 2.5, 2.5, 2.75, 3.25, 4.75}
	if got, want := StdDev(xs), math.Sqrt(Variance(xs)); !almostEqual(got, want, 1e-15) {
		t.Errorf("StdDev=%g want %g", got, want)
	}
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	lo, err := Min(xs)
	if err != nil || lo != -9 {
		t.Errorf("Min=%g,%v want -9", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 6 {
		t.Errorf("Max=%g,%v want 6", hi, err)
	}
	r, err := Range(xs)
	if err != nil || r != 15 {
		t.Errorf("Range=%g,%v want 15", r, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err=%v want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err=%v want ErrEmpty", err)
	}
	if _, err := Range(nil); err != ErrEmpty {
		t.Errorf("Range(nil) err=%v want ErrEmpty", err)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	if m, err := Median([]float64{3, 1, 2}); err != nil || m != 2 {
		t.Errorf("Median odd=%g,%v want 2", m, err)
	}
	if m, err := Median([]float64{4, 1, 3, 2}); err != nil || m != 2.5 {
		t.Errorf("Median even=%g,%v want 2.5", m, err)
	}
	xs := []float64{1, 2, 3, 4, 5}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("Q0=%g want 1", q)
	}
	if q, _ := Quantile(xs, 1); q != 5 {
		t.Errorf("Q1=%g want 5", q)
	}
	if q, _ := Quantile(xs, 0.25); q != 2 {
		t.Errorf("Q25=%g want 2", q)
	}
	if q, _ := Quantile(xs, 0.1); !almostEqual(q, 1.4, 1e-12) {
		t.Errorf("Q10=%g want 1.4", q)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) err=%v want ErrEmpty", err)
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) should error")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("Quantile(NaN) should error")
	}
	// Quantile must not mutate its input.
	xs2 := []float64{5, 1, 3}
	Quantile(xs2, 0.5)
	if xs2[0] != 5 || xs2[1] != 1 || xs2[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs2)
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0001; q += 0.01 {
		qq := math.Min(q, 1)
		v, err := Quantile(xs, qq)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", qq, err)
		}
		if v < prev-1e-12 {
			t.Fatalf("Quantile not monotone at q=%g: %g < %g", qq, v, prev)
		}
		prev = v
	}
}

func TestSkewnessSymmetric(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	if got := Skewness(xs); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Skewness symmetric=%g want 0", got)
	}
	// A right-skewed sample has positive skewness.
	right := []float64{1, 1, 1, 1, 2, 2, 3, 10}
	if got := Skewness(right); got <= 0 {
		t.Errorf("Skewness right-tailed=%g want > 0", got)
	}
	if got := Skewness([]float64{1, 2}); got != 0 {
		t.Errorf("Skewness n<3 = %g want 0", got)
	}
	if got := Skewness([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("Skewness degenerate=%g want 0", got)
	}
}

func TestExcessKurtosis(t *testing.T) {
	// A large normal sample should have excess kurtosis near 0.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if got := ExcessKurtosis(xs); math.Abs(got) > 0.15 {
		t.Errorf("ExcessKurtosis(normal sample)=%g want ~0", got)
	}
	// A heavy-tailed sample should have positive excess kurtosis.
	for i := range xs {
		u := rng.Float64()
		xs[i] = math.Tan(math.Pi * (u - 0.5) * 0.9) // truncated-Cauchy-ish
	}
	if got := ExcessKurtosis(xs); got <= 0 {
		t.Errorf("ExcessKurtosis(heavy tails)=%g want > 0", got)
	}
	if got := ExcessKurtosis([]float64{1, 2, 3}); got != 0 {
		t.Errorf("ExcessKurtosis n<4 = %g want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 || s.Median != 5.5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Q25 >= s.Median || s.Median >= s.Q75 {
		t.Errorf("quartiles out of order: %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err=%v", err)
	}
}

func TestCoverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Coverage(xs, 3, 7); got != 0.5 {
		t.Errorf("Coverage=%g want 0.5", got)
	}
	if got := Coverage(xs, -100, 100); got != 1 {
		t.Errorf("Coverage all=%g want 1", got)
	}
	if got := Coverage(xs, 100, 200); got != 0 {
		t.Errorf("Coverage none=%g want 0", got)
	}
	if got := Coverage(nil, 0, 1); got != 0 {
		t.Errorf("Coverage empty=%g want 0", got)
	}
}

func TestCoverageSigmaNormal(t *testing.T) {
	// ~95% of a large normal sample falls within 2 sigma; this is the
	// paper's core premise for stochastic values.
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = 12 + 0.6*rng.NormFloat64()
	}
	got := CoverageSigma(xs, 2)
	if math.Abs(got-0.9545) > 0.01 {
		t.Errorf("CoverageSigma(2)=%g want ~0.9545", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]float64{1, 2, 3}, []float64{1, 1, 2})
	if err != nil || !almostEqual(got, 2.25, 1e-12) {
		t.Errorf("WeightedMean=%g,%v want 2.25", got, err)
	}
	if _, err := WeightedMean(nil, nil); err != ErrEmpty {
		t.Errorf("empty err=%v", err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero total weight should error")
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{2, 4, 6}
	z := Standardize(xs)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("standardized mean=%g", Mean(z))
	}
	if !almostEqual(StdDev(z), 1, 1e-12) {
		t.Errorf("standardized std=%g", StdDev(z))
	}
	z2 := Standardize([]float64{3, 3, 3})
	for _, v := range z2 {
		if v != 0 {
			t.Errorf("degenerate standardize=%v", z2)
		}
	}
}

// Property: mean lies within [min, max] and variance is non-negative.
func TestMeanVarianceProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e8 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		if m < lo-1e-6 || m > hi+1e-6 {
			return false
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: standardizing is shift/scale invariant in the right way.
func TestStandardizeProperty(t *testing.T) {
	f := func(shift float64, scaleRaw float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		scale := 1 + math.Abs(math.Mod(scaleRaw, 5))
		xs := []float64{1, 2, 4, 8, 16}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = x*scale + shift
		}
		zx := Standardize(xs)
		zy := Standardize(ys)
		for i := range zx {
			if !almostEqual(zx[i], zy[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
