package stats

import "errors"

// LinearFit returns the least-squares line y = intercept + slope*x through
// the points. It requires at least two points with distinct x values.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, errors.New("stats: LinearFit needs at least 2 points")
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: LinearFit with constant x")
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// TrimmedMean returns the mean of xs after removing the trim fraction of
// observations from each end (0 <= trim < 0.5). trim = 0 is the plain mean.
func TrimmedMean(xs []float64, trim float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if trim < 0 || trim >= 0.5 {
		return 0, errors.New("stats: trim fraction outside [0, 0.5)")
	}
	k := int(trim * float64(len(xs)))
	if 2*k >= len(xs) {
		k = (len(xs) - 1) / 2
	}
	s := append([]float64(nil), xs...)
	sortFloats(s)
	return Mean(s[k : len(s)-k]), nil
}

// sortFloats is a tiny insertion sort used where samples are small windows;
// it avoids re-importing sort in hot paths with 5-30 elements.
func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
