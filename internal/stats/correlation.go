package stats

import (
	"errors"
	"math"
	"sort"
)

// PearsonCorrelation returns the linear correlation coefficient of the
// paired samples. It requires equal lengths >= 2 and non-degenerate
// variance on both sides.
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation length mismatch")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: correlation needs at least 2 pairs")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation of a constant sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// SpearmanCorrelation returns the rank correlation coefficient — Pearson on
// ranks, robust to the monotone-but-nonlinear couplings typical of system
// metrics (e.g. latency vs bandwidth under shared congestion).
func SpearmanCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation length mismatch")
	}
	return PearsonCorrelation(ranks(xs), ranks(ys))
}

// ranks returns fractional ranks (ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
