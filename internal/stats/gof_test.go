package stats

import (
	"math"
	"math/rand"
	"testing"
)

func normalCDFWith(mu, sigma float64) func(float64) float64 {
	return func(x float64) float64 { return NormalCDF((x - mu) / sigma) }
}

func TestKolmogorovSmirnovAcceptsTrueDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 5 + 2*rng.NormFloat64()
	}
	res, err := KolmogorovSmirnov(xs, normalCDFWith(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Errorf("K-S rejected true distribution: D=%g p=%g", res.Statistic, res.PValue)
	}
}

func TestKolmogorovSmirnovRejectsWrongDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.ExpFloat64() // strongly non-normal
	}
	res, err := KolmogorovSmirnov(xs, normalCDFWith(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("K-S failed to reject: D=%g p=%g", res.Statistic, res.PValue)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, normalCDFWith(0, 1)); err != ErrEmpty {
		t.Errorf("err=%v want ErrEmpty", err)
	}
}

func TestKSStatisticBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		res, err := KolmogorovSmirnov(xs, func(x float64) float64 {
			switch {
			case x < 0:
				return 0
			case x > 1:
				return 1
			}
			return x
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Statistic < 0 || res.Statistic > 1 {
			t.Fatalf("D out of [0,1]: %g", res.Statistic)
		}
		if res.PValue < 0 || res.PValue > 1 {
			t.Fatalf("p out of [0,1]: %g", res.PValue)
		}
	}
}

func TestChiSquareGOFAcceptsTrueDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 10 + 3*rng.NormFloat64()
	}
	h, _ := NewHistogram(xs, 0, 20, 20)
	res, err := ChiSquareGOF(h, normalCDFWith(10, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.005) {
		t.Errorf("chi-square rejected true distribution: stat=%g p=%g df=%d",
			res.Statistic, res.PValue, res.DF)
	}
}

func TestChiSquareGOFRejectsWrongDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 3
	}
	h, _ := NewHistogram(xs, 0, 20, 20)
	res, err := ChiSquareGOF(h, normalCDFWith(3, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("chi-square failed to reject: stat=%g p=%g", res.Statistic, res.PValue)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	empty := &Histogram{Lo: 0, Hi: 1, Counts: []int{0, 0}, N: 0}
	if _, err := ChiSquareGOF(empty, normalCDFWith(0, 1), 0); err != ErrEmpty {
		t.Errorf("empty err=%v", err)
	}
	// A single usable bin leaves no degrees of freedom.
	tiny := &Histogram{Lo: 0, Hi: 1, Counts: []int{6}, N: 6}
	if _, err := ChiSquareGOF(tiny, normalCDFWith(0.5, 0.2), 0); err == nil {
		t.Error("df<1 should error")
	}
}

func TestChiSquareGOFSparseBinMerging(t *testing.T) {
	// Heavily skewed histogram: most bins sparse; merging must still give a
	// valid df >= 1 result.
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 8 + 0.5*rng.NormFloat64()
	}
	h, _ := NewHistogram(xs, 0, 16, 64) // mostly empty bins
	res, err := ChiSquareGOF(h, normalCDFWith(8, 0.5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF < 1 {
		t.Errorf("df=%d", res.DF)
	}
	if res.Reject(0.005) {
		t.Errorf("rejected true dist after merging: p=%g", res.PValue)
	}
}

func TestJarqueBera(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	normal := make([]float64, 1000)
	for i := range normal {
		normal[i] = rng.NormFloat64()
	}
	res, err := JarqueBera(normal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.005) {
		t.Errorf("JB rejected normal sample: p=%g", res.PValue)
	}
	skewed := make([]float64, 1000)
	for i := range skewed {
		skewed[i] = rng.ExpFloat64()
	}
	res, err = JarqueBera(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.01) {
		t.Errorf("JB failed to reject exponential sample: p=%g", res.PValue)
	}
	if _, err := JarqueBera([]float64{1, 2, 3}); err == nil {
		t.Error("JB on tiny sample should error")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly autocorrelated AR(1) series.
	rng := rand.New(rand.NewSource(41))
	n := 2000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.9*xs[i-1] + rng.NormFloat64()
	}
	ac := Autocorrelation(xs, []int{1, 5, 0, n})
	if ac[0] < 0.8 {
		t.Errorf("lag-1 autocorr=%g want >0.8", ac[0])
	}
	if ac[1] < 0.4 {
		t.Errorf("lag-5 autocorr=%g want >0.4", ac[1])
	}
	if !math.IsNaN(ac[2]) || !math.IsNaN(ac[3]) {
		t.Errorf("invalid lags should be NaN: %v", ac)
	}
	// White noise should have near-zero lag-1 autocorrelation.
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ac = Autocorrelation(xs, []int{1})
	if math.Abs(ac[0]) > 0.1 {
		t.Errorf("white-noise lag-1 autocorr=%g", ac[0])
	}
	// Constant series: zero denominator -> NaN.
	ac = Autocorrelation([]float64{2, 2, 2, 2, 2}, []int{1})
	if !math.IsNaN(ac[0]) {
		t.Errorf("constant series autocorr=%g want NaN", ac[0])
	}
}

func TestGOFResultReject(t *testing.T) {
	r := GOFResult{PValue: 0.04}
	if !r.Reject(0.05) || r.Reject(0.01) {
		t.Errorf("Reject thresholds wrong")
	}
}
