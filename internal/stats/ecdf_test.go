package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewECDFErrors(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("NewECDF(nil) err=%v want ErrEmpty", err)
	}
}

func TestECDFAt(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%g)=%g want %g", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N=%d", e.N())
	}
}

func TestECDFTies(t *testing.T) {
	e, _ := NewECDF([]float64{2, 2, 2, 5})
	if got := e.At(2); got != 0.75 {
		t.Errorf("At(2)=%g want 0.75", got)
	}
	if got := e.At(1.999); got != 0 {
		t.Errorf("At(just below)=%g want 0", got)
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e, _ := NewECDF(xs)
	xs[0] = 100
	if got := e.At(3); got != 1 {
		t.Errorf("ECDF aliased caller slice: At(3)=%g", got)
	}
}

func TestECDFQuantileAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	e, _ := NewECDF(xs)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		want, _ := Quantile(xs, q)
		got, err := e.Quantile(q)
		if err != nil || !almostEqual(got, want, 1e-12) {
			t.Errorf("Quantile(%g)=%g,%v want %g", q, got, err, want)
		}
	}
}

func TestECDFCurve(t *testing.T) {
	e, _ := NewECDF([]float64{0, 1, 2, 3, 4})
	xs, fs := e.Curve(5)
	if len(xs) != 5 || len(fs) != 5 {
		t.Fatalf("curve lengths %d %d", len(xs), len(fs))
	}
	if xs[0] != 0 || xs[4] != 4 {
		t.Errorf("curve endpoints %g %g", xs[0], xs[4])
	}
	if fs[4] != 1 {
		t.Errorf("curve final F=%g", fs[4])
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] < fs[i-1] {
			t.Errorf("curve not monotone at %d", i)
		}
	}
	// n < 2 clamps to 2 points.
	xs, fs = e.Curve(1)
	if len(xs) != 2 || len(fs) != 2 {
		t.Errorf("clamped curve lengths %d %d", len(xs), len(fs))
	}
}

// Properties: ECDF is monotone non-decreasing, bounded in [0,1], and hits 1
// at the sample maximum.
func TestECDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		hi, _ := Max(xs)
		if e.At(hi) != 1 {
			return false
		}
		prev := -1.0
		vals := e.Values()
		for _, v := range vals {
			f := e.At(v)
			if f < prev || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
