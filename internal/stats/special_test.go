package stats

import (
	"math"
	"testing"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-2, 0.02275013194817921},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%g)=%.15g want %.15g", c.z, got, c.want)
		}
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Errorf("NormalPDF(0)=%g", got)
	}
	if got := NormalPDF(3); got >= NormalPDF(0) {
		t.Errorf("PDF not unimodal: f(3)=%g f(0)=%g", got, NormalPDF(0))
	}
	if !almostEqual(NormalPDF(1.3), NormalPDF(-1.3), 1e-15) {
		t.Error("PDF not symmetric")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-4, 0.01, 0.025, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 0.99, 1 - 1e-6} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEqual(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%g))=%g", p, got)
		}
	}
	if got := NormalQuantile(0.975); !almostEqual(got, 1.959963984540054, 1e-8) {
		t.Errorf("Quantile(0.975)=%.12g", got)
	}
	if got := NormalQuantile(0.5); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Quantile(0.5)=%g", got)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) || !math.IsNaN(NormalQuantile(1.5)) || !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Error("out-of-range p should be NaN")
	}
}

func TestRegIncGammaLower(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaLower(1, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%g)=%g want %g", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.2, 1, 3} {
		want := math.Erf(math.Sqrt(x))
		if got := RegIncGammaLower(0.5, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(0.5,%g)=%g want %g", x, got, want)
		}
	}
	if got := RegIncGammaLower(2, 0); got != 0 {
		t.Errorf("P(a,0)=%g", got)
	}
	if !math.IsNaN(RegIncGammaLower(-1, 1)) || !math.IsNaN(RegIncGammaLower(1, -1)) {
		t.Error("invalid args should be NaN")
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Chi-square with k=2 is Exp(1/2): CDF(x) = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 1, 2, 5.991} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); !almostEqual(got, want, 1e-9) {
			t.Errorf("ChiSquareCDF(%g,2)=%g want %g", x, got, want)
		}
	}
	// 95th percentile of chi-square(3) is about 7.815.
	if got := ChiSquareCDF(7.815, 3); !almostEqual(got, 0.95, 1e-3) {
		t.Errorf("ChiSquareCDF(7.815,3)=%g want ~0.95", got)
	}
	if got := ChiSquareCDF(-1, 4); got != 0 {
		t.Errorf("negative x CDF=%g", got)
	}
	if got := ChiSquareSurvival(-1, 4); got != 1 {
		t.Errorf("negative x survival=%g", got)
	}
	if got := ChiSquareCDF(3, 3) + ChiSquareSurvival(3, 3); !almostEqual(got, 1, 1e-12) {
		t.Errorf("CDF+survival=%g", got)
	}
}

func TestKolmogorovSurvival(t *testing.T) {
	if got := KolmogorovSurvival(0); got != 1 {
		t.Errorf("Q(0)=%g", got)
	}
	if got := KolmogorovSurvival(-1); got != 1 {
		t.Errorf("Q(-1)=%g", got)
	}
	// Known value: Q(1.36) ~= 0.0505 (the classic 5% critical point).
	if got := KolmogorovSurvival(1.36); math.Abs(got-0.0505) > 0.002 {
		t.Errorf("Q(1.36)=%g want ~0.0505", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := KolmogorovSurvival(l)
		if q > prev+1e-12 || q < 0 || q > 1 {
			t.Fatalf("Q not monotone in [0,1] at lambda=%g: %g > %g", l, q, prev)
		}
		prev = q
	}
	if got := KolmogorovSurvival(10); got > 1e-12 {
		t.Errorf("Q(10)=%g want ~0", got)
	}
}

func TestGammaLn(t *testing.T) {
	if got := GammaLn(1); !almostEqual(got, 0, 1e-14) {
		t.Errorf("lnGamma(1)=%g", got)
	}
	if got := GammaLn(5); !almostEqual(got, math.Log(24), 1e-12) {
		t.Errorf("lnGamma(5)=%g want ln24", got)
	}
}
