package stats

import (
	"errors"
	"math"
	"sort"
)

// GOFResult is the outcome of a goodness-of-fit test.
type GOFResult struct {
	Statistic float64
	PValue    float64
	DF        int // degrees of freedom for chi-square; 0 otherwise
}

// Reject reports whether the null hypothesis is rejected at significance
// level alpha.
func (r GOFResult) Reject(alpha float64) bool { return r.PValue < alpha }

// KolmogorovSmirnov runs the one-sample K-S test of xs against the
// hypothesized CDF. The p-value uses the Stephens-corrected asymptotic
// Kolmogorov distribution and is approximate but adequate for the sample
// sizes in this reproduction (tens to thousands).
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) (GOFResult, error) {
	n := len(xs)
	if n == 0 {
		return GOFResult{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		// D+ and D- around each order statistic.
		dPlus := float64(i+1)/float64(n) - f
		dMinus := f - float64(i)/float64(n)
		if dPlus > d {
			d = dPlus
		}
		if dMinus > d {
			d = dMinus
		}
	}
	sqn := math.Sqrt(float64(n))
	lambda := (sqn + 0.12 + 0.11/sqn) * d
	return GOFResult{Statistic: d, PValue: KolmogorovSurvival(lambda)}, nil
}

// ChiSquareGOF runs Pearson's chi-square goodness-of-fit test of the sample
// histogram h against a hypothesized CDF. Bins with expected count < 5 are
// merged with their right neighbor (and the trailing remainder with the last
// kept bin), the standard remedy for sparse tails. fittedParams is the
// number of distribution parameters estimated from the same data (2 for a
// fitted normal); it reduces the degrees of freedom.
func ChiSquareGOF(h *Histogram, cdf func(float64) float64, fittedParams int) (GOFResult, error) {
	if h.N == 0 {
		return GOFResult{}, ErrEmpty
	}
	type bin struct{ obs, exp float64 }
	var bins []bin
	total := float64(h.N)
	for i := range h.Counts {
		lo, hi := h.BinEdges(i)
		pLo, pHi := cdf(lo), cdf(hi)
		if i == 0 {
			pLo = 0 // fold the left tail into the first bin
		}
		if i == len(h.Counts)-1 {
			pHi = 1 // fold the right tail into the last bin
		}
		bins = append(bins, bin{obs: float64(h.Counts[i]), exp: total * (pHi - pLo)})
	}
	// Merge sparse bins rightward.
	var merged []bin
	var acc bin
	for _, b := range bins {
		acc.obs += b.obs
		acc.exp += b.exp
		if acc.exp >= 5 {
			merged = append(merged, acc)
			acc = bin{}
		}
	}
	if acc.exp > 0 || acc.obs > 0 {
		if len(merged) == 0 {
			merged = append(merged, acc)
		} else {
			merged[len(merged)-1].obs += acc.obs
			merged[len(merged)-1].exp += acc.exp
		}
	}
	df := len(merged) - 1 - fittedParams
	if df < 1 {
		return GOFResult{}, errors.New("stats: too few usable bins for chi-square test")
	}
	stat := 0.0
	for _, b := range merged {
		if b.exp <= 0 {
			continue
		}
		d := b.obs - b.exp
		stat += d * d / b.exp
	}
	return GOFResult{Statistic: stat, PValue: ChiSquareSurvival(stat, df), DF: df}, nil
}

// JarqueBera runs the Jarque-Bera normality test on xs: the statistic
// n/6*(S^2 + K^2/4) is asymptotically chi-square with 2 degrees of freedom
// under normality (S = skewness, K = excess kurtosis).
func JarqueBera(xs []float64) (GOFResult, error) {
	n := len(xs)
	if n < 8 {
		return GOFResult{}, errors.New("stats: Jarque-Bera needs at least 8 observations")
	}
	s := Skewness(xs)
	k := ExcessKurtosis(xs)
	stat := float64(n) / 6 * (s*s + k*k/4)
	return GOFResult{Statistic: stat, PValue: ChiSquareSurvival(stat, 2), DF: 2}, nil
}

// Autocorrelation returns the sample autocorrelation of xs at the given
// lags. Lags outside [1, n-2] yield NaN. NWS-style forecasters use this to
// decide whether recent history is informative.
func Autocorrelation(xs []float64, lags []int) []float64 {
	out := make([]float64, len(lags))
	n := len(xs)
	m := Mean(xs)
	var denom float64
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	for i, lag := range lags {
		if lag < 1 || lag >= n-1 || denom == 0 {
			out[i] = math.NaN()
			continue
		}
		var num float64
		for t := 0; t+lag < n; t++ {
			num += (xs[t] - m) * (xs[t+lag] - m)
		}
		out[i] = num / denom
	}
	return out
}
