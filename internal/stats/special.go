package stats

import "math"

// Special functions needed for goodness-of-fit p-values. Implementations
// follow the classical series / continued-fraction forms (Abramowitz &
// Stegun 6.5, 26.4); accuracy is far beyond what hypothesis testing on a few
// hundred load samples needs.

// GammaLn returns ln(Gamma(x)) for x > 0.
func GammaLn(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegIncGammaLower returns P(a, x), the regularized lower incomplete gamma
// function, for a > 0 and x >= 0.
func RegIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

// gammaSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-GammaLn(a))
}

// gammaContinuedFraction evaluates Q(a,x)=1-P(a,x) by Lentz's continued
// fraction, valid for x >= a+1.
func gammaContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-GammaLn(a)) * h
}

// ChiSquareCDF returns the CDF of the chi-square distribution with k degrees
// of freedom at x.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGammaLower(float64(k)/2, x/2)
}

// ChiSquareSurvival returns 1 - ChiSquareCDF(x, k), the upper tail used for
// p-values.
func ChiSquareSurvival(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - ChiSquareCDF(x, k)
}

// KolmogorovSurvival returns Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1}
// exp(-2 j^2 lambda^2), the asymptotic survival function of the Kolmogorov
// distribution used for K-S p-values.
func KolmogorovSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const eps1 = 1e-10
	const eps2 = 1e-12
	sum := 0.0
	fac := 2.0
	termBF := 0.0
	a2 := -2 * lambda * lambda
	for j := 1; j <= 200; j++ {
		term := fac * math.Exp(a2*float64(j)*float64(j))
		sum += term
		if math.Abs(term) <= eps1*termBF || math.Abs(term) <= eps2*sum {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		fac = -fac
		termBF = math.Abs(term)
	}
	return 1 // failed to converge: be conservative
}

// NormalCDF returns the standard normal CDF at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalPDF returns the standard normal density at z.
func NormalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) at
// p in (0,1), using the Acklam rational approximation refined by one Halley
// step; absolute error is below 1e-9 over the full range.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
