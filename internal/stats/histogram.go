package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binning of a sample over [Lo, Hi). The final
// bin is closed on the right so the sample maximum is counted.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int // total observations binned
}

// BinRule selects an automatic bin-count rule for NewHistogramAuto.
type BinRule int

const (
	// Sturges uses ceil(log2 n) + 1 bins.
	Sturges BinRule = iota
	// Scott uses bin width 3.49*sigma*n^(-1/3).
	Scott
	// FreedmanDiaconis uses bin width 2*IQR*n^(-1/3).
	FreedmanDiaconis
)

// NewHistogram bins xs into bins equal-width bins spanning [lo, hi]. Values
// outside the range are clamped into the first or last bin, matching how the
// paper's load histograms treat occasional out-of-range spikes.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		return nil, errors.New("stats: histogram range must have hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Counts[idx]++
		h.N++
	}
	return h, nil
}

// NewHistogramAuto bins xs using the given automatic rule over the sample's
// own range. It returns an error for an empty sample.
func NewHistogramAuto(xs []float64, rule BinRule) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if hi == lo {
		hi = lo + 1 // degenerate sample: single bin of width 1
		return NewHistogram(xs, lo, hi, 1)
	}
	n := float64(len(xs))
	var bins int
	switch rule {
	case Sturges:
		bins = int(math.Ceil(math.Log2(n))) + 1
	case Scott:
		w := 3.49 * StdDev(xs) * math.Pow(n, -1.0/3.0)
		bins = widthToBins(lo, hi, w)
	case FreedmanDiaconis:
		q25, _ := Quantile(xs, 0.25)
		q75, _ := Quantile(xs, 0.75)
		w := 2 * (q75 - q25) * math.Pow(n, -1.0/3.0)
		bins = widthToBins(lo, hi, w)
	default:
		return nil, fmt.Errorf("stats: unknown bin rule %d", rule)
	}
	if bins < 1 {
		bins = 1
	}
	return NewHistogram(xs, lo, hi, bins)
}

func widthToBins(lo, hi, w float64) int {
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return 1
	}
	return int(math.Ceil((hi - lo) / w))
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// BinEdges returns the low and high edge of bin i.
func (h *Histogram) BinEdges(i int) (lo, hi float64) {
	w := h.BinWidth()
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Density returns the probability-density estimate for bin i, i.e.
// count / (N * width), so that the histogram integrates to 1.
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.N) * h.BinWidth())
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Densities returns the per-bin density estimates.
func (h *Histogram) Densities() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range h.Counts {
		out[i] = h.Density(i)
	}
	return out
}

// Peaks returns the indices of local maxima of the histogram counts that are
// at least minFrac of the total sample, in ascending bin order. A bin is a
// local maximum if its count is >= both neighbors (plateaus report their
// leftmost bin). This is the first-pass mode detector used on load
// histograms like the paper's Figures 5 and 10.
func (h *Histogram) Peaks(minFrac float64) []int {
	var peaks []int
	c := h.Counts
	for i := range c {
		if h.Fraction(i) < minFrac || c[i] == 0 {
			continue
		}
		left := i == 0 || c[i-1] < c[i]
		// Walk right over any plateau.
		j := i
		for j+1 < len(c) && c[j+1] == c[i] {
			j++
		}
		right := j == len(c)-1 || c[j+1] < c[i]
		// Leftmost bin of a plateau only.
		if i > 0 && c[i-1] == c[i] {
			continue
		}
		if left && right {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

// Render draws the histogram as ASCII art, one row per bin, scaled to width
// columns. It is used by cmd/experiments to present the paper's histogram
// figures in a terminal.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo, hi := h.BinEdges(i)
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "[%8.3f,%8.3f) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}
