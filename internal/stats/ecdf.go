package stats

import (
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
// The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs. It copies the data, so the caller
// may reuse xs. It returns an error for an empty sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F(x), the fraction of the sample <= x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// we need the count of elements <= x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// N returns the number of observations.
func (e *ECDF) N() int { return len(e.sorted) }

// Quantile returns the q-th empirical quantile (type-7 interpolation).
func (e *ECDF) Quantile(q float64) (float64, error) {
	// The sample is already sorted; reuse the package Quantile on it. It
	// re-sorts a copy, which is wasteful but keeps one code path; ECDFs in
	// this codebase are small (load traces of a few thousand points).
	return Quantile(e.sorted, q)
}

// Values returns the sorted sample. The caller must not modify it.
func (e *ECDF) Values() []float64 { return e.sorted }

// Curve samples the ECDF at n evenly spaced points across [min, max] and
// returns parallel slices of x and F(x), for plotting CDFs like the paper's
// Figures 2 and 4.
func (e *ECDF) Curve(n int) (xs, fs []float64) {
	if n < 2 {
		n = 2
	}
	lo := e.sorted[0]
	hi := e.sorted[len(e.sorted)-1]
	xs = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		fs[i] = e.At(x)
	}
	return xs, fs
}
