package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) {
		t.Errorf("fit: slope=%g intercept=%g", slope, intercept)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3 - 0.5*xs[i] + rng.NormFloat64()
	}
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope+0.5) > 0.01 || math.Abs(intercept-3) > 1 {
		t.Errorf("fit: slope=%g intercept=%g", slope, intercept)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should fail")
	}
	if _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should fail")
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{100, 1, 2, 3, -50}
	v, err := TrimmedMean(xs, 0.2) // drops -50 and 100
	if err != nil || v != 2 {
		t.Errorf("TrimmedMean=%g err=%v want 2", v, err)
	}
	// trim=0 is the plain mean.
	v, err = TrimmedMean([]float64{1, 2, 3}, 0)
	if err != nil || v != 2 {
		t.Errorf("untrimmed=%g err=%v", v, err)
	}
	if _, err := TrimmedMean(nil, 0.1); err != ErrEmpty {
		t.Errorf("empty err=%v", err)
	}
	if _, err := TrimmedMean([]float64{1}, -0.1); err == nil {
		t.Error("negative trim should fail")
	}
	if _, err := TrimmedMean([]float64{1}, 0.5); err == nil {
		t.Error("trim >= 0.5 should fail")
	}
	// Aggressive trim on a tiny sample keeps at least one value.
	v, err = TrimmedMean([]float64{1, 2, 3}, 0.49)
	if err != nil || v != 2 {
		t.Errorf("aggressive trim=%g err=%v", v, err)
	}
	// Must not mutate its input.
	xs2 := []float64{3, 1, 2}
	TrimmedMean(xs2, 0.34)
	if xs2[0] != 3 {
		t.Error("TrimmedMean mutated input")
	}
}
