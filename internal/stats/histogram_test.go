package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramBasics(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 0.9, 0.95}
	h, err := NewHistogram(xs, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins() != 4 || h.N != 5 {
		t.Fatalf("bins=%d n=%d", h.Bins(), h.N)
	}
	want := []int{2, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d count=%d want %d", i, h.Counts[i], w)
		}
	}
	if got := h.BinWidth(); got != 0.25 {
		t.Errorf("BinWidth=%g", got)
	}
	lo, hi := h.BinEdges(1)
	if lo != 0.25 || hi != 0.5 {
		t.Errorf("BinEdges(1)=%g,%g", lo, hi)
	}
	if got := h.BinCenter(0); got != 0.125 {
		t.Errorf("BinCenter(0)=%g", got)
	}
}

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("0 bins should error")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Error("hi==lo should error")
	}
	if _, err := NewHistogram(nil, 2, 1, 3); err == nil {
		t.Error("hi<lo should error")
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	xs := []float64{-5, 0.5, 99}
	h, err := NewHistogram(xs, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Errorf("counts=%v", h.Counts)
	}
}

func TestHistogramMaxValueCounted(t *testing.T) {
	// The sample maximum lands exactly on the top edge; it must be counted
	// in the last bin, not dropped.
	xs := []float64{0, 0.5, 1.0}
	h, _ := NewHistogram(xs, 0, 1, 2)
	if h.N != 3 || h.Counts[1] != 2 {
		t.Errorf("counts=%v n=%d", h.Counts, h.N)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	h, _ := NewHistogram(xs, 0, 10, 17)
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * h.BinWidth()
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("density integral=%g", sum)
	}
	fsum := 0.0
	for i := range h.Counts {
		fsum += h.Fraction(i)
	}
	if !almostEqual(fsum, 1, 1e-9) {
		t.Errorf("fraction sum=%g", fsum)
	}
}

func TestHistogramAutoRules(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, rule := range []BinRule{Sturges, Scott, FreedmanDiaconis} {
		h, err := NewHistogramAuto(xs, rule)
		if err != nil {
			t.Fatalf("rule %d: %v", rule, err)
		}
		if h.Bins() < 2 || h.Bins() > 200 {
			t.Errorf("rule %d produced %d bins", rule, h.Bins())
		}
		if h.N != len(xs) {
			t.Errorf("rule %d binned %d of %d", rule, h.N, len(xs))
		}
	}
	if _, err := NewHistogramAuto(nil, Sturges); err != ErrEmpty {
		t.Errorf("empty err=%v", err)
	}
	if _, err := NewHistogramAuto(xs, BinRule(99)); err == nil {
		t.Error("unknown rule should error")
	}
	// Degenerate single-value sample gets one bin.
	h, err := NewHistogramAuto([]float64{7, 7, 7}, Scott)
	if err != nil || h.Bins() != 1 || h.N != 3 {
		t.Errorf("degenerate: %+v err=%v", h, err)
	}
}

func TestHistogramPeaks(t *testing.T) {
	// Bimodal: peaks at bins 1 and 4.
	h := &Histogram{Lo: 0, Hi: 6, Counts: []int{1, 10, 2, 1, 8, 2}, N: 24}
	peaks := h.Peaks(0.05)
	if len(peaks) != 2 || peaks[0] != 1 || peaks[1] != 4 {
		t.Errorf("peaks=%v want [1 4]", peaks)
	}
	// minFrac filters the minor peak out.
	peaks = h.Peaks(0.40)
	if len(peaks) != 1 || peaks[0] != 1 {
		t.Errorf("filtered peaks=%v want [1]", peaks)
	}
	// A plateau reports its leftmost bin once.
	h2 := &Histogram{Lo: 0, Hi: 4, Counts: []int{1, 5, 5, 1}, N: 12}
	peaks = h2.Peaks(0)
	if len(peaks) != 1 || peaks[0] != 1 {
		t.Errorf("plateau peaks=%v want [1]", peaks)
	}
	// Monotone increasing: single peak at the end.
	h3 := &Histogram{Lo: 0, Hi: 3, Counts: []int{1, 2, 3}, N: 6}
	peaks = h3.Peaks(0)
	if len(peaks) != 1 || peaks[0] != 2 {
		t.Errorf("monotone peaks=%v want [2]", peaks)
	}
	// All-zero bins: no peaks.
	h4 := &Histogram{Lo: 0, Hi: 3, Counts: []int{0, 0, 0}, N: 0}
	if peaks := h4.Peaks(0); len(peaks) != 0 {
		t.Errorf("zero-histogram peaks=%v", peaks)
	}
}

func TestHistogramRender(t *testing.T) {
	h := &Histogram{Lo: 0, Hi: 2, Counts: []int{1, 4}, N: 5}
	out := h.Render(8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render lines=%d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "########") {
		t.Errorf("max bin not full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], "##") || strings.Contains(lines[0], "###") {
		t.Errorf("scaled bin wrong: %q", lines[0])
	}
	// Zero width falls back to a default, and an empty histogram renders
	// without dividing by zero.
	empty := &Histogram{Lo: 0, Hi: 1, Counts: []int{0}, N: 0}
	if out := empty.Render(0); !strings.Contains(out, "0") {
		t.Errorf("empty render=%q", out)
	}
}

// Property: total counts equal input length and every count is non-negative,
// regardless of range.
func TestHistogramCountConservation(t *testing.T) {
	f := func(raw []float64, binsRaw uint8) bool {
		bins := int(binsRaw%30) + 1
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		h, err := NewHistogram(xs, -10, 10, bins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range h.Counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == len(xs) && h.N == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
