package calib

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"prodpred/internal/stochastic"
)

// feedOutcomes drives n deterministic outcomes through tr, exercising
// capture hits and misses, excluded point predictions, and (for large n)
// the drift detector.
func feedOutcomes(t *testing.T, tr *Tracker, start, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	// Burn the stream up to start so two trackers fed [0,k) and [k,n) with
	// the same generator seed see the same values as one fed [0,n).
	for i := 0; i < start*2; i++ {
		rng.NormFloat64()
	}
	for i := start; i < start+n; i++ {
		raw := stochastic.New(10+math.Sin(float64(i)/9), 1.2)
		if i%17 == 0 {
			raw = stochastic.Point(10) // excluded from score quantiles
		}
		actual := raw.Mean + rng.NormFloat64()*0.8
		if i > start && i%23 == 0 {
			actual = raw.Mean + 6 // an occasional gross miss
		}
		rng.NormFloat64() // keep the stream in lockstep with the burn loop
		tr.Observe(Outcome{
			ID:         uint64(i + 1),
			Time:       float64(i) * 5,
			Raw:        raw,
			Calibrated: tr.Calibrate(raw),
			Actual:     math.Abs(actual) + 0.1,
		})
	}
}

// TestTrackerStateRoundTrip asserts that exporting a tracker's state into
// a fresh tracker with the same config reproduces the original exactly,
// including after both ingest the same further outcomes.
func TestTrackerStateRoundTrip(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	feedOutcomes(t, a, 0, 150)

	b, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := b.ImportState(a.ExportState()); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatalf("snapshots diverge after import:\n%+v\nvs\n%+v", a.Snapshot(), b.Snapshot())
	}
	if a.Scale() != b.Scale() {
		t.Fatalf("scales diverge: %v vs %v", a.Scale(), b.Scale())
	}

	// Continue both with identical outcomes; they must stay in lockstep.
	feedOutcomes(t, a, 150, 80)
	feedOutcomes(t, b, 150, 80)
	if !reflect.DeepEqual(a.ExportState(), b.ExportState()) {
		t.Fatal("tracker states diverge after continued observation")
	}
}

func TestTrackerImportStateValidates(t *testing.T) {
	tr, err := New(Config{Window: 8, MinObserved: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := tr.ImportState(State{Window: make([]WindowRec, 9), Scale: 1}); err == nil {
		t.Fatal("want error for oversized window")
	}
	if err := tr.ImportState(State{Scale: 0}); err == nil {
		t.Fatal("want error for non-positive scale")
	}
}
