package calib

import (
	"math"
	"testing"

	"prodpred/internal/stochastic"
)

func TestQuantileGridLevels(t *testing.T) {
	want := []float64{0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.975}
	if len(QuantileGridLevels) != len(want) {
		t.Fatalf("grid has %d levels, want %d", len(QuantileGridLevels), len(want))
	}
	for i, w := range want {
		if math.Abs(QuantileGridLevels[i]-w) > 1e-12 {
			t.Fatalf("grid[%d] = %g, want %g", i, QuantileGridLevels[i], w)
		}
	}
}

// gridAround tabulates a normal-ish grid centered on mean with the given
// half-offsets per interval level.
func gridAround(mean float64, off []float64) []float64 {
	n := len(IntervalLevels)
	g := make([]float64, 2*n+1)
	g[n] = mean
	for i := range IntervalLevels {
		g[n-1-i] = mean - off[i]
		g[n+1+i] = mean + off[i]
	}
	return g
}

func distOutcome(id uint64, mean, actual float64) Outcome {
	return Outcome{
		ID:           id,
		Time:         float64(id),
		Raw:          stochastic.Value{Mean: mean, Spread: 1},
		Calibrated:   stochastic.Value{Mean: mean, Spread: 1},
		Actual:       actual,
		RawQuantiles: gridAround(mean, []float64{0.3, 0.55, 0.7, 0.85}),
	}
}

func TestQuantileScalesWidenUnderCoveredTails(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Actuals land alternately far above and far below the grid's outer
	// quantiles: every level under-covers on both sides, so every
	// multiplier must rise above 1. Alternation keeps the CUSUM drift
	// detector quiet.
	for i := 0; i < 40; i++ {
		d := 2.0
		if i%2 == 1 {
			d = -2.0
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 10+d))
	}
	lo, hi := tr.QuantileScales()
	for i := range IntervalLevels {
		if !(lo[i] > 1) || !(hi[i] > 1) {
			t.Fatalf("level %g scales lo=%g hi=%g, want both > 1 (all %v / %v)",
				IntervalLevels[i], lo[i], hi[i], lo, hi)
		}
	}
	snap := tr.Snapshot()
	if snap.PITCount == 0 {
		t.Fatal("no PIT scored")
	}
	if math.Abs(snap.MeanPIT-0.5) > 0.1 {
		t.Fatalf("alternating outcomes mean PIT %g, want near 0.5", snap.MeanPIT)
	}
}

func TestQuantileScalesTightenOverCoveredGrid(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Actuals hug the median: the grid is far too wide everywhere and the
	// multipliers should drop below 1 (down to the floor).
	for i := 0; i < 40; i++ {
		d := 0.01
		if i%2 == 1 {
			d = -0.01
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 10+d))
	}
	lo, hi := tr.QuantileScales()
	for i := range IntervalLevels {
		if !(lo[i] < 1) || !(hi[i] < 1) {
			t.Fatalf("level %g scales lo=%g hi=%g, want both < 1", IntervalLevels[i], lo[i], hi[i])
		}
		if lo[i] < tr.Config().QScaleFloor || hi[i] < tr.Config().QScaleFloor {
			t.Fatalf("scales %g/%g fell below floor %g", lo[i], hi[i], tr.Config().QScaleFloor)
		}
	}
}

func TestQuantileScalesAsymmetric(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Upper tail under-covers (large positive surprises), lower side is
	// fine: hi multipliers must exceed lo multipliers.
	for i := 0; i < 60; i++ {
		d := -0.05
		if i%3 == 0 {
			d = 2.5
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 10+d))
	}
	lo, hi := tr.QuantileScales()
	for i := range IntervalLevels {
		if !(hi[i] > lo[i]) {
			t.Fatalf("level %g: hi %g not above lo %g under upper-tail misses", IntervalLevels[i], hi[i], lo[i])
		}
	}
}

func TestCalibrateQuantilesAppliesScalesAndStaysMonotone(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		d := 2.0
		if i%2 == 1 {
			d = -2.0
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 10+d))
	}
	raw := gridAround(10, []float64{0.3, 0.55, 0.7, 0.85})
	cal := tr.CalibrateQuantiles(nil, raw)
	if len(cal) != len(raw) {
		t.Fatalf("calibrated grid has %d points, want %d", len(cal), len(raw))
	}
	n := len(IntervalLevels)
	if cal[n] != raw[n] {
		t.Fatalf("median moved: %g -> %g", raw[n], cal[n])
	}
	prev := math.Inf(-1)
	for i, q := range cal {
		if q < prev {
			t.Fatalf("calibrated grid not monotone at %d: %g < %g", i, q, prev)
		}
		prev = q
	}
	// Widening scales must push the outer quantiles outward.
	if !(cal[0] < raw[0]) || !(cal[len(cal)-1] > raw[len(raw)-1]) {
		t.Fatalf("outer quantiles not widened: [%g,%g] vs raw [%g,%g]",
			cal[0], cal[len(cal)-1], raw[0], raw[len(raw)-1])
	}
}

func TestCalibrateQuantilesPassesThroughUnexpectedLength(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	raw := []float64{1, 2, 3}
	got := tr.CalibrateQuantiles(nil, raw)
	for i := range raw {
		if got[i] != raw[i] {
			t.Fatalf("unexpected-length grid modified: %v -> %v", raw, got)
		}
	}
}

func TestGridPIT(t *testing.T) {
	grid := gridAround(0, []float64{0.25, 0.4, 0.45, 0.475})
	if p := gridPIT(grid, 0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("median PIT %g, want 0.5", p)
	}
	if p := gridPIT(grid, -10); p != QuantileGridLevels[0] {
		t.Fatalf("below-grid PIT %g, want clamp to %g", p, QuantileGridLevels[0])
	}
	if p := gridPIT(grid, 10); p != QuantileGridLevels[len(grid)-1] {
		t.Fatalf("above-grid PIT %g, want clamp to %g", p, QuantileGridLevels[len(grid)-1])
	}
	// Halfway between the median (0) and the 0.75 quantile (0.25).
	if p := gridPIT(grid, 0.125); math.Abs(p-0.625) > 1e-12 {
		t.Fatalf("interpolated PIT %g, want 0.625", p)
	}
}

func TestQuantileStateRoundTrip(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		d := 2.0
		if i%2 == 1 {
			d = -2.0
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 10+d))
	}
	st := tr.ExportState()
	tr2, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	lo1, hi1 := tr.QuantileScales()
	lo2, hi2 := tr2.QuantileScales()
	for i := range IntervalLevels {
		if lo1[i] != lo2[i] || hi1[i] != hi2[i] {
			t.Fatalf("restored scales differ at level %g: %g/%g vs %g/%g",
				IntervalLevels[i], lo2[i], hi2[i], lo1[i], hi1[i])
		}
	}
	// Further identical observations must keep the trackers in lockstep.
	for i := 40; i < 60; i++ {
		d := 2.0
		if i%2 == 1 {
			d = -2.0
		}
		o := distOutcome(uint64(i+1), 10, 10+d)
		tr.Observe(o)
		tr2.Observe(o)
	}
	lo1, hi1 = tr.QuantileScales()
	lo2, hi2 = tr2.QuantileScales()
	for i := range IntervalLevels {
		if lo1[i] != lo2[i] || hi1[i] != hi2[i] {
			t.Fatalf("post-restore divergence at level %g", IntervalLevels[i])
		}
	}
}

func TestQuantileShiftRecentersBiasedGrid(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The model systematically overpredicts: actuals sit ~12% below the
	// predictive median. A pure around-the-median stretch cannot repair
	// that; the conformal median shift must.
	for i := 0; i < 40; i++ {
		d := 0.1
		if i%2 == 1 {
			d = -0.1
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 8.8+d))
	}
	shift := tr.QuantileShift()
	if shift < -0.15 || shift > -0.09 {
		t.Fatalf("shift %g, want near -0.12", shift)
	}
	if got := tr.Snapshot().QuantileShift; got != shift {
		t.Fatalf("snapshot shift %g != accessor %g", got, shift)
	}
	raw := gridAround(10, []float64{0.3, 0.55, 0.7, 0.85})
	cal := tr.CalibrateQuantiles(nil, raw)
	n := len(IntervalLevels)
	if !(cal[n] < 9.2) {
		t.Fatalf("calibrated median %g, want recentered below 9.2", cal[n])
	}
	// The recentered 95% interval must reach the biased actuals (the
	// conformal bound lands exactly on the extreme outcomes here).
	if !(cal[0] <= 8.7+1e-9) || !(cal[len(cal)-1] >= 8.9-1e-9) {
		t.Fatalf("recentered interval [%g, %g] misses actuals around 8.8", cal[0], cal[len(cal)-1])
	}
}

func TestDriftResetClearsQuantileScales(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		d := 2.0
		if i%2 == 1 {
			d = -2.0
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 10+d))
	}
	lo, _ := tr.QuantileScales()
	if lo[0] == 1 {
		t.Fatal("scales never moved; test needs a moving baseline")
	}
	tr.mu.Lock()
	tr.resetLocked()
	tr.mu.Unlock()
	lo, hi := tr.QuantileScales()
	for i := range IntervalLevels {
		if lo[i] != 1 || hi[i] != 1 {
			t.Fatalf("post-reset scales %v/%v, want all 1", lo, hi)
		}
	}
}

func TestDriftResetKeepsQuantileShift(t *testing.T) {
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Persistent ~12% overprediction: the shift is model bias, so a drift
	// reset (a load-regime event) must not discard it.
	for i := 0; i < 40; i++ {
		d := 0.1
		if i%2 == 1 {
			d = -0.1
		}
		tr.Observe(distOutcome(uint64(i+1), 10, 8.8+d))
	}
	before := tr.QuantileShift()
	if before >= -0.09 {
		t.Fatalf("shift %g never engaged; test needs a biased baseline", before)
	}
	tr.mu.Lock()
	tr.resetLocked()
	tr.mu.Unlock()
	if after := tr.QuantileShift(); after != before {
		t.Fatalf("drift reset changed shift %g -> %g; model bias should survive regime resets", before, after)
	}
}
