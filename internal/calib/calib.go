// Package calib closes the prediction loop: it tracks, online, whether the
// stochastic intervals the pipeline emits actually capture observed
// runtimes, and corrects them when they do not.
//
// The paper's whole validation story is *capture* — §4 reports that the
// ±2σ stochastic intervals contain the actual execution time ~80-100% of
// the time, against a 38.6% maximum error for point predictions. That
// analysis is offline; a serving system must run it continuously. A
// Tracker ingests (prediction, actual) outcome pairs per platform and
// maintains three coupled mechanisms:
//
//  1. An outcome recorder: rolling windows of interval capture rate,
//     signed relative error, and interval-width statistics, plus
//     cumulative counters, for the /accuracy diagnostics.
//  2. An adaptive calibrator: a conformal-style multiplier on the ±2σ
//     half-width, chosen from the rolling empirical quantiles of the
//     normalized nonconformity score |actual - mean| / halfwidth. When
//     capture sits comfortably above the target the quantile drops below
//     1 and intervals tighten; when capture dips the quantile rises and
//     intervals widen. A floor/ceiling keeps the interval from ever
//     collapsing to a point value or exploding without bound.
//  3. A regime-drift detector: a two-sided CUSUM over standardized
//     forecast residuals plus a mode-count check (internal/modal) that
//     flags Platform-2-style transitions from single-mode to bursty
//     multi-modal behaviour (the §2.1 normality caveat). A detected
//     changepoint *resets* calibration state instead of averaging across
//     regimes.
//
// All state evolves only through Observe, so for a fixed configuration the
// Tracker is a pure function of the observation sequence: same seed + same
// observation order ⇒ byte-identical state, including under concurrent
// readers. The Tracker is safe for concurrent use.
package calib

import (
	"fmt"
	"math"
	"sync"

	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
)

// Defaults. TargetCapture matches the paper's two-σ interval semantics
// (~95% nominal coverage, §2.1).
const (
	DefaultTargetCapture = 0.95
	DefaultWindow        = 64
	DefaultMinObserved   = 8
	DefaultScaleFloor    = 0.5
	DefaultScaleCeil     = 3.0
	DefaultCUSUMSlack    = 0.5
	DefaultCUSUMLimit    = 8.0
	DefaultModeCheck     = 16
	DefaultMaxModes      = 3
	DefaultQScaleFloor   = 0.1
	DefaultQScaleCeil    = 3.0
)

// Config tunes a Tracker. The zero value selects the defaults above.
type Config struct {
	// TargetCapture is the desired interval capture rate in (0, 1).
	TargetCapture float64
	// Window is the rolling-outcome window size.
	Window int
	// MinObserved is how many outcomes (since the last regime reset) must
	// accumulate before the calibrator moves the scale off 1 and the drift
	// detector arms. It doubles as the residual-baseline sample size.
	MinObserved int
	// ScaleFloor and ScaleCeil clamp the half-width multiplier so a
	// calibrated interval can never collapse to a point value (floor) nor
	// widen without bound (ceiling).
	ScaleFloor, ScaleCeil float64
	// CUSUMSlack is the per-observation allowance k (in residual σ units)
	// subtracted before accumulating; CUSUMLimit is the decision threshold
	// h. Larger values make the detector slower and more conservative.
	CUSUMSlack, CUSUMLimit float64
	// ModeCheckEvery is how often (in outcomes) the modal mode-count check
	// runs; MaxModes is the largest mixture it will fit.
	ModeCheckEvery, MaxModes int
	// QScaleFloor and QScaleCeil clamp the per-level quantile multipliers
	// (see quantile.go). The floor sits below ScaleFloor because a single
	// well-placed quantile offset may legitimately shrink more than a
	// whole symmetric interval; the ceiling sits above ScaleCeil because a
	// conditional forecaster's narrow wrong-mode side needs a larger
	// stretch to reach the realized mode than a distribution-wide
	// half-width ever does.
	QScaleFloor, QScaleCeil float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.TargetCapture == 0 {
		c.TargetCapture = DefaultTargetCapture
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.MinObserved == 0 {
		c.MinObserved = DefaultMinObserved
	}
	if c.ScaleFloor == 0 {
		c.ScaleFloor = DefaultScaleFloor
	}
	if c.ScaleCeil == 0 {
		c.ScaleCeil = DefaultScaleCeil
	}
	if c.CUSUMSlack == 0 {
		c.CUSUMSlack = DefaultCUSUMSlack
	}
	if c.CUSUMLimit == 0 {
		c.CUSUMLimit = DefaultCUSUMLimit
	}
	if c.ModeCheckEvery == 0 {
		c.ModeCheckEvery = DefaultModeCheck
	}
	if c.MaxModes == 0 {
		c.MaxModes = DefaultMaxModes
	}
	if c.QScaleFloor == 0 {
		c.QScaleFloor = DefaultQScaleFloor
	}
	if c.QScaleCeil == 0 {
		c.QScaleCeil = DefaultQScaleCeil
	}
	return c
}

// validate rejects configurations the math cannot support.
func (c Config) validate() error {
	if !(c.TargetCapture > 0 && c.TargetCapture < 1) {
		return fmt.Errorf("calib: target capture %g outside (0,1)", c.TargetCapture)
	}
	if c.Window < 2 {
		return fmt.Errorf("calib: window %d too small", c.Window)
	}
	if c.MinObserved < 2 {
		return fmt.Errorf("calib: min observed %d too small", c.MinObserved)
	}
	if !(c.ScaleFloor > 0) || c.ScaleCeil < c.ScaleFloor {
		return fmt.Errorf("calib: scale bounds [%g, %g] invalid", c.ScaleFloor, c.ScaleCeil)
	}
	if c.CUSUMSlack < 0 || !(c.CUSUMLimit > 0) {
		return fmt.Errorf("calib: CUSUM slack %g / limit %g invalid", c.CUSUMSlack, c.CUSUMLimit)
	}
	if !(c.QScaleFloor > 0) || c.QScaleCeil < c.QScaleFloor {
		return fmt.Errorf("calib: quantile scale bounds [%g, %g] invalid", c.QScaleFloor, c.QScaleCeil)
	}
	return nil
}

// Outcome is one observed (prediction, actual) pair.
type Outcome struct {
	// ID is the prediction's issue identifier (monotone per service).
	ID uint64
	// Time is the virtual time the outcome was observed at, in virtual
	// seconds.
	Time float64
	// Raw is the uncalibrated stochastic prediction the model produced.
	Raw stochastic.Value
	// Calibrated is the interval actually returned to the caller (Raw with
	// the then-current half-width multiplier applied).
	Calibrated stochastic.Value
	// Actual is the measured runtime, in the same virtual seconds as the
	// prediction.
	Actual float64
	// RawQuantiles, when present, are the uncalibrated predictive quantiles
	// at QuantileGridLevels (distribution-valued predictions). They feed the
	// per-level quantile calibrator and the realized-quantile (PIT) scorer;
	// nil for legacy point-plus-spread outcomes.
	RawQuantiles []float64
}

// DriftEvent records one detected regime change.
type DriftEvent struct {
	// Time is the virtual time of the outcome that triggered detection, in
	// virtual seconds.
	Time float64
	// Seq is the 1-based count of outcomes observed when the event fired.
	Seq int
	// Reason is "cusum" (sustained residual shift) or "mode-count"
	// (residuals turned multi-modal).
	Reason string
	// Stat is the detector statistic at the trigger: the CUSUM excursion,
	// or the fitted mode count.
	Stat float64
}

// Snapshot is a consistent read of a Tracker's accuracy and calibration
// state — the /accuracy payload.
type Snapshot struct {
	// Observed is the total number of outcomes ingested.
	Observed int
	// WindowFill is the current rolling-window population.
	WindowFill int
	// RawCapture / CalibratedCapture are capture rates over the rolling
	// window for the raw and calibrated intervals.
	RawCapture, CalibratedCapture float64
	// CumRawCapture / CumCalibratedCapture are the same rates over every
	// outcome ever observed.
	CumRawCapture, CumCalibratedCapture float64
	// MeanSignedRelErr is the windowed mean of (actual - mean)/actual —
	// negative when the model over-predicts.
	MeanSignedRelErr float64
	// MeanAbsRelErr is the windowed mean of |actual - mean|/actual.
	MeanAbsRelErr float64
	// MeanRawWidth / MeanCalibratedWidth are windowed mean interval full
	// widths (2 × spread), in virtual seconds.
	MeanRawWidth, MeanCalibratedWidth float64
	// Scale is the current half-width multiplier.
	Scale float64
	// QuantileLevels lists the central interval levels the per-quantile
	// calibrator maintains; QuantileScaleLo/Hi are the current two-sided
	// multipliers, parallel to it (1 until enough distribution-valued
	// outcomes accumulate in the regime). QuantileShift is the conformal
	// median recentering term, as a fraction of the predictive median (0
	// when unbiased or without evidence): the calibrated grid's median is
	// raw median × (1 + QuantileShift).
	QuantileLevels  []float64
	QuantileScaleLo []float64
	QuantileScaleHi []float64
	QuantileShift   float64
	// MeanPIT is the windowed mean realized quantile over
	// distribution-valued outcomes — 0.5 when the predictive distribution
	// is centered on the actuals. PITCount is how many windowed outcomes
	// carried a grid.
	MeanPIT  float64
	PITCount int
	// Target is the configured capture target.
	Target float64
	// SinceReset counts outcomes since the last regime reset.
	SinceReset int
	// Drifts lists every detected regime change, oldest first.
	Drifts []DriftEvent
	// LastTime is the virtual time of the most recent outcome, in virtual
	// seconds (0 before any).
	LastTime float64
}

// rec is one windowed outcome in reduced form.
type rec struct {
	id       uint64
	time     float64
	z        float64 // standardized signed residual (actual-mean)/σ_raw
	score    float64 // nonconformity |actual-mean|/halfwidth_raw
	signed   float64 // signed relative error (actual-mean)/actual
	abs      float64 // |signed|
	rawW     float64 // raw interval full width
	calW     float64 // calibrated interval full width
	rawIn    bool
	calIn    bool
	armed    bool // true once this rec counted toward drift detection
	excluded bool // true when the raw prediction had no usable spread

	// Distribution-valued fields, populated only when the outcome carried a
	// raw quantile grid with positive offsets at every level (qok). The
	// side offsets and the actual are stored relative to the predictive
	// median so the calibrator can re-score them under any candidate
	// recentering shift.
	qok  bool
	qsLo []float64 // per-IntervalLevels (median - lo_L) / median
	qsHi []float64 // per-IntervalLevels (hi_L - median) / median
	qrel float64   // actual / median
	pit  float64   // realized quantile of actual under the raw grid
}

// Tracker is the per-platform online accuracy tracker, interval
// calibrator, and regime-drift detector. Safe for concurrent use.
type Tracker struct {
	mu  sync.Mutex
	cfg Config

	window []rec
	drifts []DriftEvent

	observed int
	cumRawIn int
	cumCalIn int
	lastTime float64

	// Per-regime state, cleared by resetLocked.
	sinceReset int
	scale      float64
	qLo, qHi   []float64 // per-IntervalLevels quantile multipliers
	// qShift is the conformal median shift (fraction of median). Unlike
	// the fields above it is full-window state: drift resets leave it in
	// place because model bias outlives load regimes.
	qShift     float64
	baseN      int     // residual-baseline sample count
	baseSum    float64 // residual-baseline running sum
	cusumPos   float64
	cusumNeg   float64
	sinceCheck int
	baseModes  int // mode count at regime start (0 = not yet fitted)
}

// New returns a Tracker under cfg (zero-value fields take defaults).
func New(cfg Config) (*Tracker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tracker{cfg: cfg, scale: 1}
	t.qLo = make([]float64, len(IntervalLevels))
	t.qHi = make([]float64, len(IntervalLevels))
	for i := range IntervalLevels {
		t.qLo[i], t.qHi[i] = 1, 1
	}
	return t, nil
}

// Config returns the tracker's effective (defaulted) configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Scale returns the current half-width multiplier. It is 1 until
// MinObserved outcomes accumulate and after every regime reset.
func (t *Tracker) Scale() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.scale
}

// Calibrate applies the current multiplier to a raw prediction: the mean is
// untouched, the half-width is scaled. Point values pass through unchanged
// (there is no spread to correct).
func (t *Tracker) Calibrate(raw stochastic.Value) stochastic.Value {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calibrateLocked(raw)
}

func (t *Tracker) calibrateLocked(raw stochastic.Value) stochastic.Value {
	if raw.IsPoint() {
		return raw
	}
	return stochastic.Value{Mean: raw.Mean, Spread: t.scale * raw.Spread}
}

// Observe ingests one outcome: records it in the rolling windows, updates
// the conformal multiplier, and runs the drift detectors. It returns the
// drift event if this outcome triggered a regime reset.
func (t *Tracker) Observe(o Outcome) (DriftEvent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()

	r := rec{id: o.ID, time: o.Time}
	r.rawIn = o.Raw.Contains(o.Actual)
	r.calIn = o.Calibrated.Contains(o.Actual)
	r.rawW = 2 * o.Raw.Spread
	r.calW = 2 * o.Calibrated.Spread
	if o.Actual != 0 {
		r.signed = (o.Actual - o.Raw.Mean) / math.Abs(o.Actual)
		r.abs = math.Abs(r.signed)
	}
	if o.Raw.Spread > 0 {
		r.score = math.Abs(o.Actual-o.Raw.Mean) / o.Raw.Spread
		r.z = (o.Actual - o.Raw.Mean) / o.Raw.Sigma()
	} else {
		// A point prediction carries no interval to calibrate; keep it for
		// the capture statistics but exclude it from score quantiles and
		// residual standardization.
		r.excluded = true
	}
	if len(o.RawQuantiles) == len(QuantileGridLevels) {
		quantileRec(&r, o)
	}

	t.observed++
	t.sinceReset++
	t.lastTime = o.Time
	if r.rawIn {
		t.cumRawIn++
	}
	if r.calIn {
		t.cumCalIn++
	}
	t.window = append(t.window, r)
	if len(t.window) > t.cfg.Window {
		t.window = t.window[1:]
	}

	ev, drifted := t.detectLocked(&t.window[len(t.window)-1])
	if drifted {
		t.drifts = append(t.drifts, ev)
		t.resetLocked()
		return ev, true
	}
	t.rescaleLocked()
	t.rescaleQuantilesLocked()
	return DriftEvent{}, false
}

// rescaleLocked recomputes the conformal multiplier from the nonconformity
// scores of the current regime (the post-reset portion of the window).
func (t *Tracker) rescaleLocked() {
	scores := make([]float64, 0, len(t.window))
	for _, r := range t.regimeWindowLocked() {
		if !r.excluded {
			scores = append(scores, r.score)
		}
	}
	n := len(scores)
	if n < t.cfg.MinObserved {
		t.scale = 1
		return
	}
	// Split-conformal quantile level with the finite-sample correction
	// ceil((n+1)·target)/n, clamped to the sample maximum.
	level := math.Ceil(float64(n+1)*t.cfg.TargetCapture) / float64(n)
	if level > 1 {
		level = 1
	}
	q, err := stats.Quantile(scores, level)
	if err != nil {
		t.scale = 1
		return
	}
	t.scale = math.Min(math.Max(q, t.cfg.ScaleFloor), t.cfg.ScaleCeil)
}

// regimeWindowLocked returns the suffix of the window belonging to the
// current regime (the sinceReset most recent outcomes).
func (t *Tracker) regimeWindowLocked() []rec {
	if t.sinceReset >= len(t.window) {
		return t.window
	}
	return t.window[len(t.window)-t.sinceReset:]
}

// resetLocked clears all per-regime calibration state after a detected
// changepoint, so the next regime is calibrated from its own outcomes
// instead of an average across regimes. Cumulative counters and the drift
// log survive.
func (t *Tracker) resetLocked() {
	t.sinceReset = 0
	t.scale = 1
	// qShift deliberately survives: it tracks model bias, which is a
	// property of the structural model vs the platform, not of the load
	// regime that just changed (it recomputes from the full window).
	for i := range IntervalLevels {
		t.qLo[i], t.qHi[i] = 1, 1
	}
	t.baseN = 0
	t.baseSum = 0
	t.cusumPos = 0
	t.cusumNeg = 0
	t.sinceCheck = 0
	t.baseModes = 0
}

// Snapshot returns a consistent copy of the accuracy and calibration state.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Observed:        t.observed,
		WindowFill:      len(t.window),
		Scale:           t.scale,
		QuantileLevels:  append([]float64(nil), IntervalLevels...),
		QuantileScaleLo: append([]float64(nil), t.qLo...),
		QuantileScaleHi: append([]float64(nil), t.qHi...),
		QuantileShift:   t.qShift,
		Target:          t.cfg.TargetCapture,
		SinceReset:      t.sinceReset,
		LastTime:        t.lastTime,
		Drifts:          append([]DriftEvent(nil), t.drifts...),
	}
	if t.observed > 0 {
		s.CumRawCapture = float64(t.cumRawIn) / float64(t.observed)
		s.CumCalibratedCapture = float64(t.cumCalIn) / float64(t.observed)
	}
	n := len(t.window)
	if n == 0 {
		return s
	}
	var rawIn, calIn int
	for _, r := range t.window {
		if r.rawIn {
			rawIn++
		}
		if r.calIn {
			calIn++
		}
		if r.qok {
			s.MeanPIT += r.pit
			s.PITCount++
		}
		s.MeanSignedRelErr += r.signed
		s.MeanAbsRelErr += r.abs
		s.MeanRawWidth += r.rawW
		s.MeanCalibratedWidth += r.calW
	}
	if s.PITCount > 0 {
		s.MeanPIT /= float64(s.PITCount)
	}
	fn := float64(n)
	s.RawCapture = float64(rawIn) / fn
	s.CalibratedCapture = float64(calIn) / fn
	s.MeanSignedRelErr /= fn
	s.MeanAbsRelErr /= fn
	s.MeanRawWidth /= fn
	s.MeanCalibratedWidth /= fn
	return s
}
