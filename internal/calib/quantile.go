// Per-quantile conformal calibration.
//
// The base calibrator rescales one symmetric half-width — correct for
// normal-shaped errors, wrong for the asymmetric, fat-tailed residuals of
// bursty multi-modal platforms, where the upper tail needs widening while
// the core stays sharp. When outcomes carry a full raw quantile grid
// (distribution-valued predictions), the Tracker additionally maintains a
// conformal adjustment in two parts.
//
// First, a *median shift*: the structural model's point prediction can
// carry a systematic relative bias against the measured platform (it
// prices contention it never observes, or misses overhead it cannot see),
// and no symmetric-around-the-median stretch can repair a miscentered
// grid. The shift is the regime-window median of the relative residual
// (actual - median) / median; the calibrated grid is recentered at
// median x (1 + shift).
//
// Second, a *two-sided, per-level* stretch around the shifted median: for
// each central interval level L it learns separate multipliers for the
// lower and upper quantile offsets, from the empirical quantiles of the
// side-specific nonconformity scores (written in median-relative units,
// with a = actual/median and relLo/relHi the side offsets as fractions of
// the median)
//
//	sLo = ((1 + shift) - a) / relLo_L
//	sHi = (a - (1 + shift)) / relHi_L
//
// at probability (1+L)/2 with the usual split-conformal finite-sample
// correction. A score above 1 means that side's quantile was too tight; the
// learned multiplier says exactly how much to stretch it. Multiplicative
// (rather than CQR-style additive) adjustment is deliberate: the raw grids
// come from conditional forecasters whose side widths vary per prediction,
// and a per-side ratio both transfers across that heteroscedasticity and —
// clamped to [QScaleFloor, QScaleCeil] — lets an overdispersed side shrink
// toward the floor without letting one wrong-mode miss inflate every later
// interval, which an additive window-max offset would. Shift and
// multipliers recompute from the current regime window only, so a drift
// reset restarts quantile calibration alongside the symmetric scale.
//
// Observe also scores each distribution-valued outcome's realized quantile
// (the probability integral transform of the actual under the raw grid); a
// windowed mean PIT near 0.5 indicates a centered predictive distribution.
package calib

import (
	"math"

	"prodpred/internal/stats"
)

// IntervalLevels are the central interval levels the quantile calibrator
// maintains two-sided multipliers for, ascending.
var IntervalLevels = []float64{0.5, 0.8, 0.9, 0.95}

// QuantileGridLevels is the symmetric quantile grid implied by
// IntervalLevels — the lo/hi ends (1∓L)/2 of every level plus the median,
// ascending. Raw quantile grids handed to Observe and CalibrateQuantiles
// use this layout; it matches nws.DistLevels by construction.
var QuantileGridLevels = buildGridLevels()

func buildGridLevels() []float64 {
	n := len(IntervalLevels)
	g := make([]float64, 2*n+1)
	for i, L := range IntervalLevels {
		g[n-1-i] = (1 - L) / 2
		g[n+1+i] = (1 + L) / 2
	}
	g[n] = 0.5
	return g
}

// quantileRec fills the rec's median-relative calibration ingredients and
// realized quantile from a distribution-valued outcome. A grid with a
// non-positive median or a degenerate (non-positive-width) side at any
// level is left out of quantile calibration entirely — there is no offset
// to rescale.
func quantileRec(r *rec, o Outcome) {
	n := len(IntervalLevels)
	med := o.RawQuantiles[n]
	if !(med > 0) {
		return
	}
	for i := range IntervalLevels {
		if !(med-o.RawQuantiles[n-1-i] > 0) || !(o.RawQuantiles[n+1+i]-med > 0) {
			return
		}
	}
	r.qok = true
	r.qsLo = make([]float64, n)
	r.qsHi = make([]float64, n)
	for i := range IntervalLevels {
		r.qsLo[i] = (med - o.RawQuantiles[n-1-i]) / med
		r.qsHi[i] = (o.RawQuantiles[n+1+i] - med) / med
	}
	r.qrel = o.Actual / med
	r.pit = gridPIT(o.RawQuantiles, o.Actual)
}

// gridPIT inverts the raw quantile grid at actual: the realized quantile,
// linearly interpolated between grid points and clamped to the grid's tail
// levels outside it.
func gridPIT(grid []float64, actual float64) float64 {
	if actual <= grid[0] {
		return QuantileGridLevels[0]
	}
	for i := 1; i < len(grid); i++ {
		if actual <= grid[i] {
			lo, hi := grid[i-1], grid[i]
			pl, ph := QuantileGridLevels[i-1], QuantileGridLevels[i]
			if hi <= lo {
				return pl
			}
			return pl + (ph-pl)*(actual-lo)/(hi-lo)
		}
	}
	return QuantileGridLevels[len(grid)-1]
}

// qShiftLimit bounds the conformal median shift: the calibrated median
// stays within [1/2, 3/2] of the raw one, so a few wild outcomes cannot
// recenter the grid off the forecast entirely.
const qShiftLimit = 0.5

// rescaleQuantilesLocked recomputes the conformal median shift and the
// per-level two-sided multipliers from the windowed distribution-valued
// outcomes, mirroring rescaleLocked for the symmetric scale — with one
// deliberate asymmetry in what evidence each part draws on.
//
// The shift estimates *model* bias — the structural model against the
// platform it serves — which persists across load-regime changes, so it is
// the median of the relative residual (actual - median)/median over the
// FULL window, clamped to ±qShiftLimit; a drift reset does not discard it
// (the window itself survives resets).
//
// The multipliers estimate *regime* dispersion, so they use only the
// current regime's outcomes: the empirical quantile of each side's scores
// — re-derived against the shifted median — at (1+L)/2 with the
// finite-sample correction, clamped to [QScaleFloor, QScaleCeil]. Without
// enough evidence the shift stays 0 and the multipliers stay 1.
func (t *Tracker) rescaleQuantilesLocked() {
	n := len(IntervalLevels)
	t.qShift = 0
	for i := 0; i < n; i++ {
		t.qLo[i], t.qHi[i] = 1, 1
	}
	resid := make([]float64, 0, len(t.window))
	for i := range t.window {
		if t.window[i].qok {
			resid = append(resid, t.window[i].qrel-1)
		}
	}
	if len(resid) >= t.cfg.MinObserved {
		if shift, err := stats.Quantile(resid, 0.5); err == nil {
			t.qShift = math.Min(math.Max(shift, -qShiftLimit), qShiftLimit)
		}
	}

	regime := t.regimeWindowLocked()
	qrecs := make([]rec, 0, len(regime))
	for _, r := range regime {
		if r.qok {
			qrecs = append(qrecs, r)
		}
	}
	if len(qrecs) < t.cfg.MinObserved {
		return
	}
	scores := make([]float64, 0, len(qrecs))
	for side := 0; side < 2; side++ {
		for i, L := range IntervalLevels {
			scores = scores[:0]
			for _, r := range qrecs {
				if side == 0 {
					scores = append(scores, ((1+t.qShift)-r.qrel)/r.qsLo[i])
				} else {
					scores = append(scores, (r.qrel-(1+t.qShift))/r.qsHi[i])
				}
			}
			m := len(scores)
			level := math.Ceil(float64(m+1)*(1+L)/2) / float64(m)
			if level > 1 {
				level = 1
			}
			q, err := stats.Quantile(scores, level)
			if err != nil {
				continue
			}
			q = math.Min(math.Max(q, t.cfg.QScaleFloor), t.cfg.QScaleCeil)
			if side == 0 {
				t.qLo[i] = q
			} else {
				t.qHi[i] = q
			}
		}
	}
}

// QuantileScales returns copies of the current per-level multipliers for
// the lower and upper quantile offsets, parallel to IntervalLevels. Both
// are 1 per level until MinObserved distribution-valued outcomes accumulate
// in the current regime.
func (t *Tracker) QuantileScales() (lo, hi []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]float64(nil), t.qLo...), append([]float64(nil), t.qHi...)
}

// QuantileShift returns the current conformal median shift as a fraction
// of the predictive median — 0 until MinObserved distribution-valued
// outcomes accumulate in the current regime.
func (t *Tracker) QuantileShift() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.qShift
}

// CalibrateQuantiles recenters a raw quantile grid (QuantileGridLevels
// layout) by the conformal median shift, rescales the side offsets with
// the current per-level multipliers, and appends the calibrated, monotone
// grid to dst. A grid of unexpected length is appended unchanged.
func (t *Tracker) CalibrateQuantiles(dst, raw []float64) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(IntervalLevels)
	if len(raw) != 2*n+1 {
		return append(dst, raw...)
	}
	med := raw[n]
	shifted := med * (1 + t.qShift)
	start := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, shifted-t.qLo[n-1-i]*(med-raw[i]))
	}
	dst = append(dst, shifted)
	for i := 0; i < n; i++ {
		dst = append(dst, shifted+t.qHi[i]*(raw[n+1+i]-med))
	}
	out := dst[start:]
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			out[i] = out[i-1]
		}
	}
	return dst
}
