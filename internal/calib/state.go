package calib

import "fmt"

// WindowRec is one windowed outcome in exported form — the portable mirror
// of the private rec.
type WindowRec struct {
	ID       uint64
	Time     float64
	Z        float64
	Score    float64
	Signed   float64
	Abs      float64
	RawW     float64
	CalW     float64
	RawIn    bool
	CalIn    bool
	Armed    bool
	Excluded bool
	// Distribution-valued fields (snapshot v2; zero-valued when restoring
	// a v1 image, which leaves the rec out of quantile calibration). QsLo
	// and QsHi are the side offsets of the raw grid as fractions of its
	// median; QRel is actual/median.
	Qok  bool
	QsLo []float64
	QsHi []float64
	QRel float64
	Pit  float64
}

// State is the complete dynamic state of a Tracker in portable form, for
// the snapshot/restore path: a Tracker evolves only through Observe, so
// exporting this state and importing it into a Tracker built with the same
// Config yields byte-identical future behavior for the same observation
// sequence.
type State struct {
	Window []WindowRec
	Drifts []DriftEvent

	Observed int
	CumRawIn int
	CumCalIn int
	LastTime float64

	// Per-regime state (cleared by drift resets).
	SinceReset int
	Scale      float64
	BaseN      int
	BaseSum    float64
	CusumPos   float64
	CusumNeg   float64
	SinceCheck int
	BaseModes  int
}

// ExportState returns a consistent copy of the tracker's full dynamic
// state.
func (t *Tracker) ExportState() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := State{
		Window:     make([]WindowRec, len(t.window)),
		Drifts:     append([]DriftEvent(nil), t.drifts...),
		Observed:   t.observed,
		CumRawIn:   t.cumRawIn,
		CumCalIn:   t.cumCalIn,
		LastTime:   t.lastTime,
		SinceReset: t.sinceReset,
		Scale:      t.scale,
		BaseN:      t.baseN,
		BaseSum:    t.baseSum,
		CusumPos:   t.cusumPos,
		CusumNeg:   t.cusumNeg,
		SinceCheck: t.sinceCheck,
		BaseModes:  t.baseModes,
	}
	for i, r := range t.window {
		st.Window[i] = WindowRec{
			ID: r.id, Time: r.time, Z: r.z, Score: r.score,
			Signed: r.signed, Abs: r.abs, RawW: r.rawW, CalW: r.calW,
			RawIn: r.rawIn, CalIn: r.calIn, Armed: r.armed, Excluded: r.excluded,
			Qok:  r.qok,
			QsLo: append([]float64(nil), r.qsLo...),
			QsHi: append([]float64(nil), r.qsHi...),
			QRel: r.qrel,
			Pit:  r.pit,
		}
	}
	return st
}

// ImportState replaces the tracker's dynamic state with st. The tracker
// must carry the same Config the state was exported under (the window
// bound, in particular, is validated here).
func (t *Tracker) ImportState(st State) error {
	if len(st.Window) > t.cfg.Window {
		return fmt.Errorf("calib: state window %d exceeds configured window %d", len(st.Window), t.cfg.Window)
	}
	if !(st.Scale > 0) {
		return fmt.Errorf("calib: state scale %g must be positive", st.Scale)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.window = make([]rec, len(st.Window))
	for i, r := range st.Window {
		qok := r.Qok && len(r.QsLo) == len(IntervalLevels) && len(r.QsHi) == len(IntervalLevels)
		t.window[i] = rec{
			id: r.ID, time: r.Time, z: r.Z, score: r.Score,
			signed: r.Signed, abs: r.Abs, rawW: r.RawW, calW: r.CalW,
			rawIn: r.RawIn, calIn: r.CalIn, armed: r.Armed, excluded: r.Excluded,
			qok:  qok,
			qsLo: append([]float64(nil), r.QsLo...),
			qsHi: append([]float64(nil), r.QsHi...),
			qrel: r.QRel,
			pit:  r.Pit,
		}
	}
	t.drifts = append([]DriftEvent(nil), st.Drifts...)
	t.observed = st.Observed
	t.cumRawIn = st.CumRawIn
	t.cumCalIn = st.CumCalIn
	t.lastTime = st.LastTime
	t.sinceReset = st.SinceReset
	t.scale = st.Scale
	t.baseN = st.BaseN
	t.baseSum = st.BaseSum
	t.cusumPos = st.CusumPos
	t.cusumNeg = st.CusumNeg
	t.sinceCheck = st.SinceCheck
	t.baseModes = st.BaseModes
	// The median shift and per-level quantile multipliers are a pure
	// function of the regime window, so recompute rather than serialize
	// them — a v1 state (no quantile fields) lands on zero-shift/all-ones
	// exactly as a fresh tracker would.
	t.rescaleQuantilesLocked()
	return nil
}
