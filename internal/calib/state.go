package calib

import "fmt"

// WindowRec is one windowed outcome in exported form — the portable mirror
// of the private rec.
type WindowRec struct {
	ID       uint64
	Time     float64
	Z        float64
	Score    float64
	Signed   float64
	Abs      float64
	RawW     float64
	CalW     float64
	RawIn    bool
	CalIn    bool
	Armed    bool
	Excluded bool
}

// State is the complete dynamic state of a Tracker in portable form, for
// the snapshot/restore path: a Tracker evolves only through Observe, so
// exporting this state and importing it into a Tracker built with the same
// Config yields byte-identical future behavior for the same observation
// sequence.
type State struct {
	Window []WindowRec
	Drifts []DriftEvent

	Observed int
	CumRawIn int
	CumCalIn int
	LastTime float64

	// Per-regime state (cleared by drift resets).
	SinceReset int
	Scale      float64
	BaseN      int
	BaseSum    float64
	CusumPos   float64
	CusumNeg   float64
	SinceCheck int
	BaseModes  int
}

// ExportState returns a consistent copy of the tracker's full dynamic
// state.
func (t *Tracker) ExportState() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := State{
		Window:     make([]WindowRec, len(t.window)),
		Drifts:     append([]DriftEvent(nil), t.drifts...),
		Observed:   t.observed,
		CumRawIn:   t.cumRawIn,
		CumCalIn:   t.cumCalIn,
		LastTime:   t.lastTime,
		SinceReset: t.sinceReset,
		Scale:      t.scale,
		BaseN:      t.baseN,
		BaseSum:    t.baseSum,
		CusumPos:   t.cusumPos,
		CusumNeg:   t.cusumNeg,
		SinceCheck: t.sinceCheck,
		BaseModes:  t.baseModes,
	}
	for i, r := range t.window {
		st.Window[i] = WindowRec{
			ID: r.id, Time: r.time, Z: r.z, Score: r.score,
			Signed: r.signed, Abs: r.abs, RawW: r.rawW, CalW: r.calW,
			RawIn: r.rawIn, CalIn: r.calIn, Armed: r.armed, Excluded: r.excluded,
		}
	}
	return st
}

// ImportState replaces the tracker's dynamic state with st. The tracker
// must carry the same Config the state was exported under (the window
// bound, in particular, is validated here).
func (t *Tracker) ImportState(st State) error {
	if len(st.Window) > t.cfg.Window {
		return fmt.Errorf("calib: state window %d exceeds configured window %d", len(st.Window), t.cfg.Window)
	}
	if !(st.Scale > 0) {
		return fmt.Errorf("calib: state scale %g must be positive", st.Scale)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.window = make([]rec, len(st.Window))
	for i, r := range st.Window {
		t.window[i] = rec{
			id: r.ID, time: r.Time, z: r.Z, score: r.Score,
			signed: r.Signed, abs: r.Abs, rawW: r.RawW, calW: r.CalW,
			rawIn: r.RawIn, calIn: r.CalIn, armed: r.Armed, excluded: r.Excluded,
		}
	}
	t.drifts = append([]DriftEvent(nil), st.Drifts...)
	t.observed = st.Observed
	t.cumRawIn = st.CumRawIn
	t.cumCalIn = st.CumCalIn
	t.lastTime = st.LastTime
	t.sinceReset = st.SinceReset
	t.scale = st.Scale
	t.baseN = st.BaseN
	t.baseSum = st.BaseSum
	t.cusumPos = st.CusumPos
	t.cusumNeg = st.CusumNeg
	t.sinceCheck = st.SinceCheck
	t.baseModes = st.BaseModes
	return nil
}
