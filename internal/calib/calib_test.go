package calib

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"prodpred/internal/stochastic"
)

// mk builds the outcome with the given standardized residual z against a
// fixed raw prediction 10 ± 2 (σ = 1).
func mk(i int, z float64) Outcome {
	raw := stochastic.New(10, 2)
	return Outcome{
		ID:         uint64(i),
		Time:       float64(i) * 5,
		Raw:        raw,
		Calibrated: raw,
		Actual:     10 + z,
	}
}

// jitter is a small deterministic unimodal perturbation.
func jitter(i int) float64 { return 0.05 * float64(i%7-3) }

func mustNew(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{TargetCapture: 1.2},
		{TargetCapture: -0.1},
		{Window: 1},
		{ScaleFloor: 0.5, ScaleCeil: 0.1},
		{CUSUMSlack: -1},
		{CUSUMLimit: -3},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v should fail validation", cfg)
		}
	}
	tr := mustNew(t, Config{})
	cfg := tr.Config()
	if cfg.TargetCapture != DefaultTargetCapture || cfg.Window != DefaultWindow {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestCaptureAccounting(t *testing.T) {
	tr := mustNew(t, Config{})
	// 8 captured, 2 escaped (z = ±5 is outside a ±2σ interval).
	for i := 0; i < 8; i++ {
		tr.Observe(mk(i, jitter(i)))
	}
	tr.Observe(mk(8, 5))
	tr.Observe(mk(9, -5))
	s := tr.Snapshot()
	if s.Observed != 10 || s.WindowFill != 10 {
		t.Fatalf("observed=%d fill=%d", s.Observed, s.WindowFill)
	}
	if s.RawCapture != 0.8 || s.CumRawCapture != 0.8 {
		t.Errorf("raw capture=%g cum=%g, want 0.8", s.RawCapture, s.CumRawCapture)
	}
	if s.MeanRawWidth != 4 {
		t.Errorf("mean raw width=%g, want 4 (2×spread)", s.MeanRawWidth)
	}
	if s.LastTime != 45 {
		t.Errorf("last time=%g", s.LastTime)
	}
	if s.MeanAbsRelErr <= 0 {
		t.Errorf("mean abs rel err=%g", s.MeanAbsRelErr)
	}
}

func TestConformalTightening(t *testing.T) {
	tr := mustNew(t, Config{})
	// Residuals far smaller than the claimed half-width: scores ≈ 0.05,
	// so the conformal quantile drops and the floor clamps the scale.
	for i := 0; i < 32; i++ {
		tr.Observe(mk(i, 0.1+0.02*float64(i%5)))
	}
	s := tr.Snapshot()
	if s.Scale != DefaultScaleFloor {
		t.Errorf("scale=%g, want floor %g for near-perfect predictions", s.Scale, DefaultScaleFloor)
	}
	cal := tr.Calibrate(stochastic.New(10, 2))
	if cal.Mean != 10 || cal.Spread != 2*DefaultScaleFloor {
		t.Errorf("calibrated=%v", cal)
	}
}

func TestConformalWidening(t *testing.T) {
	// Residuals routinely escape the raw interval: scores ≈ 1.5-2, so the
	// scale must rise above 1 — and the calibrated interval must then
	// capture what the raw one missed.
	tr := mustNew(t, Config{CUSUMLimit: 1e9}) // isolate the calibrator
	for i := 0; i < 40; i++ {
		z := 3.0 + jitter(i) // outside ±2σ every time
		if i%2 == 0 {
			z = -z
		}
		raw := stochastic.New(10, 2)
		o := Outcome{ID: uint64(i), Time: float64(i) * 5, Raw: raw,
			Calibrated: tr.Calibrate(raw), Actual: 10 + z}
		tr.Observe(o)
	}
	s := tr.Snapshot()
	if s.Scale <= 1 {
		t.Fatalf("scale=%g, want > 1 when raw intervals under-cover", s.Scale)
	}
	if s.Scale > DefaultScaleCeil {
		t.Fatalf("scale=%g above ceiling", s.Scale)
	}
	if s.CalibratedCapture <= s.RawCapture {
		t.Errorf("calibrated capture %g not above raw %g", s.CalibratedCapture, s.RawCapture)
	}
}

func TestScaleCeiling(t *testing.T) {
	tr := mustNew(t, Config{CUSUMLimit: 1e9})
	for i := 0; i < 30; i++ {
		z := 20.0 + jitter(i)
		if i%2 == 0 {
			z = -z
		}
		tr.Observe(mk(i, z)) // scores ≈ 10, far past the ceiling
	}
	if s := tr.Snapshot(); s.Scale != DefaultScaleCeil {
		t.Errorf("scale=%g, want ceiling %g", s.Scale, DefaultScaleCeil)
	}
}

func TestPointPredictionsPassThrough(t *testing.T) {
	tr := mustNew(t, Config{})
	if got := tr.Calibrate(stochastic.Point(7)); got != stochastic.Point(7) {
		t.Errorf("point value calibrated to %v", got)
	}
	// Point outcomes count toward capture but not toward the score
	// quantiles, so the scale stays 1 no matter how many arrive.
	for i := 0; i < 30; i++ {
		tr.Observe(Outcome{ID: uint64(i), Time: float64(i), Raw: stochastic.Point(10),
			Calibrated: stochastic.Point(10), Actual: 11})
	}
	s := tr.Snapshot()
	if s.Scale != 1 {
		t.Errorf("scale=%g from point-only outcomes", s.Scale)
	}
	if s.RawCapture != 0 {
		t.Errorf("point interval captured a mismatched actual: %g", s.RawCapture)
	}
}

func TestCUSUMDriftAndReset(t *testing.T) {
	tr := mustNew(t, Config{})
	// Steady regime, then a sustained +4σ shift in the residuals.
	var fired *DriftEvent
	for i := 0; i < 40; i++ {
		z := jitter(i)
		if i >= 30 {
			z = 4 + jitter(i)
		}
		if ev, ok := tr.Observe(mk(i, z)); ok {
			if fired != nil {
				t.Fatalf("second drift at %d: %+v", i, ev)
			}
			e := ev
			fired = &e
		}
	}
	if fired == nil {
		t.Fatal("sustained 4σ residual shift did not fire the CUSUM")
	}
	if fired.Reason != ReasonCUSUM {
		t.Errorf("reason=%q", fired.Reason)
	}
	if fired.Seq <= 30 || fired.Seq > 35 {
		t.Errorf("drift at seq %d, want shortly after the shift at 31", fired.Seq)
	}
	s := tr.Snapshot()
	if len(s.Drifts) != 1 {
		t.Fatalf("drifts=%d", len(s.Drifts))
	}
	if s.SinceReset >= s.Observed {
		t.Errorf("sinceReset=%d not reset (observed=%d)", s.SinceReset, s.Observed)
	}
	if s.Scale != 1 {
		t.Errorf("scale=%g after reset, want 1", s.Scale)
	}
}

func TestNoDriftOnSteadyStream(t *testing.T) {
	tr := mustNew(t, Config{})
	for i := 0; i < 200; i++ {
		if ev, ok := tr.Observe(mk(i, jitter(i))); ok {
			t.Fatalf("steady stream drifted at %d: %+v", i, ev)
		}
	}
	if s := tr.Snapshot(); len(s.Drifts) != 0 {
		t.Errorf("drifts=%v", s.Drifts)
	}
}

func TestModeCountDrift(t *testing.T) {
	// Residuals stay near zero mean throughout (the CUSUM sees nothing)
	// but switch from unimodal noise to a ±2σ bimodal alternation — the
	// Platform-2-style bursty shift the mode check exists for.
	tr := mustNew(t, Config{})
	var fired *DriftEvent
	for i := 0; i < 120; i++ {
		z := jitter(i)
		if i >= 60 {
			z = 2 + 0.1*jitter(i)
			if i%2 == 0 {
				z = -z
			}
		}
		if ev, ok := tr.Observe(mk(i, z)); ok {
			e := ev
			fired = &e
			break
		}
	}
	if fired == nil {
		t.Fatal("bimodal residual shift never detected")
	}
	if fired.Reason != ReasonModeCount {
		t.Errorf("reason=%q, want %q", fired.Reason, ReasonModeCount)
	}
	if fired.Stat < 2 {
		t.Errorf("mode count=%g", fired.Stat)
	}
	if fired.Seq <= 60 {
		t.Errorf("drift at seq %d, before the shift at 61", fired.Seq)
	}
}

// TestDeterministicState: two trackers fed the identical observation
// sequence hold byte-identical state, including under concurrent readers.
func TestDeterministicState(t *testing.T) {
	run := func() string {
		tr := mustNew(t, Config{})
		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Concurrent readers must not perturb the write path.
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = tr.Snapshot()
						_ = tr.Calibrate(stochastic.New(10, 2))
						_ = tr.Scale()
					}
				}
			}()
		}
		for i := 0; i < 150; i++ {
			z := jitter(i)
			switch {
			case i >= 100:
				z = 2.5 + jitter(i)
			case i >= 50 && i%3 == 0:
				z = 2.2 // occasional escapes to move the quantile
			}
			tr.Observe(mk(i, z))
		}
		close(stop)
		wg.Wait()
		return fmt.Sprintf("%#v|%#v", tr.Snapshot(), tr.Scale())
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same observation order diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestConcurrentObserve: parallel Observe calls race-cleanly; the
// commutative aggregates agree with the sequential result.
func TestConcurrentObserve(t *testing.T) {
	tr := mustNew(t, Config{CUSUMLimit: 1e9})
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Observe(mk(i, jitter(i)))
		}(i)
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Observed != n {
		t.Errorf("observed=%d", s.Observed)
	}
	if s.CumRawCapture != 1 {
		t.Errorf("capture=%g, want 1 (every jitter residual is inside ±2σ)", s.CumRawCapture)
	}
	if math.IsNaN(s.Scale) || s.Scale <= 0 {
		t.Errorf("scale=%g", s.Scale)
	}
}
