package calib

import (
	"math"

	"prodpred/internal/modal"
)

// Drift-event reasons.
const (
	// ReasonCUSUM marks a sustained shift of the standardized forecast
	// residuals away from their regime baseline.
	ReasonCUSUM = "cusum"
	// ReasonModeCount marks residuals that turned multi-modal after a
	// single-mode regime baseline — the Platform-2-style bursty shift of
	// the paper's §2.1 normality caveat.
	ReasonModeCount = "mode-count"
)

// detectLocked runs both drift detectors against the newly appended outcome
// and reports whether a regime change fired. The CUSUM arms only after a
// residual baseline of MinObserved outcomes accumulates for the current
// regime, so the detector measures drift *within* a regime rather than the
// transient of its own warmup.
func (t *Tracker) detectLocked(r *rec) (DriftEvent, bool) {
	if r.excluded {
		return DriftEvent{}, false
	}
	// Phase 1: accumulate the regime's residual baseline.
	if t.baseN < t.cfg.MinObserved {
		t.baseN++
		t.baseSum += r.z
		r.armed = false
		return DriftEvent{}, false
	}
	r.armed = true
	base := t.baseSum / float64(t.baseN)

	// Phase 2: two-sided CUSUM on the baseline-centered residual, in σ
	// units of the raw interval. Slack k absorbs ordinary wander; a
	// sustained shift accumulates toward the decision limit h.
	d := r.z - base
	t.cusumPos = math.Max(0, t.cusumPos+d-t.cfg.CUSUMSlack)
	t.cusumNeg = math.Max(0, t.cusumNeg-d-t.cfg.CUSUMSlack)
	if stat := math.Max(t.cusumPos, t.cusumNeg); stat > t.cfg.CUSUMLimit {
		return DriftEvent{Time: r.time, Seq: t.observed, Reason: ReasonCUSUM, Stat: stat}, true
	}

	// Phase 3: periodic mode-count check. A regime whose residuals were
	// single-mode and become multi-modal has changed character even if its
	// mean has not moved far enough for the CUSUM.
	t.sinceCheck++
	if t.sinceCheck < t.cfg.ModeCheckEvery {
		return DriftEvent{}, false
	}
	t.sinceCheck = 0
	zs := make([]float64, 0, len(t.window))
	for _, w := range t.regimeWindowLocked() {
		if !w.excluded {
			zs = append(zs, w.z)
		}
	}
	if len(zs) < 2*t.cfg.MinObserved {
		return DriftEvent{}, false
	}
	mm, err := modal.FitBIC(zs, t.cfg.MaxModes)
	if err != nil {
		return DriftEvent{}, false // degenerate or short sample: no verdict
	}
	k := mm.K()
	if t.baseModes == 0 {
		t.baseModes = k
		return DriftEvent{}, false
	}
	if t.baseModes == 1 && k >= 2 {
		return DriftEvent{Time: r.time, Seq: t.observed, Reason: ReasonModeCount, Stat: float64(k)}, true
	}
	return DriftEvent{}, false
}
