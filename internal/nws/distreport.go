package nws

import (
	"math"

	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
)

// LoadDist is a distribution-valued monitor report: the tournament
// winner's predictive quantiles on the DistLevels grid,
// staleness-widened around the median exactly as RobustReport widens its
// spread, plus the winner's mixture-component summary and tag.
type LoadDist struct {
	// Quantiles are the predictive quantiles at DistLevels, nondecreasing.
	Quantiles []float64
	// Components summarize the predictive distribution as a Gaussian
	// mixture; a single component for normal-shaped reports.
	Components []Component
	// Forecaster is the tournament winner's tag, or a fallback tag
	// ("fallback", "prior") when the chain degraded past the tournament.
	Forecaster string
}

// Fallback tags reported when no tournament competitor can serve.
const (
	// FallbackForecasterName tags a running-mean fallback report (stale
	// history or no competitor ready).
	FallbackForecasterName = "fallback"
	// PriorForecasterName tags a caller-prior report (no history at all).
	PriorForecasterName = "prior"
)

// RobustDistReport runs the monitor to time t and always returns a usable
// distribution report, degrading along the same chain as RobustReport:
//
//  1. fresh history: the tournament winner's quantile function, widened
//     around its median by the staleness factor;
//  2. stale history or no ready competitor: a normal around the running
//     mean with a conservative, staleness-widened sigma;
//  3. no history at all: the caller-supplied prior, read as a normal.
func (m *Monitor) RobustDistReport(t float64, prior stochastic.Value) LoadDist {
	_ = m.RunUntil(t)
	if m.ring.Len() == 0 {
		return normalLoadDist(prior.Mean, math.Max(prior.Sigma(), minConservativeRMSE), PriorForecasterName)
	}
	hist := m.ring.Values()
	if m.stale <= staleLimit {
		winner, name := m.tour.Winner()
		if qf, ok := winner.QuantileFn(hist); ok {
			return m.widenedDist(qf, winner.Components(hist), name)
		}
	}
	mean, std := stats.MeanStd(hist)
	sigma := math.Max(std, 0.1*math.Abs(mean))
	if sigma < minConservativeRMSE {
		sigma = minConservativeRMSE
	}
	return normalLoadDist(mean, sigma*m.widenFactor(), FallbackForecasterName)
}

// widenedDist evaluates qf on the DistLevels grid, widens it around the
// median by the staleness degradation factor, and enforces monotonicity.
func (m *Monitor) widenedDist(qf func(p float64) float64, comps []Component, name string) LoadDist {
	qs := make([]float64, len(DistLevels))
	for i, p := range DistLevels {
		qs[i] = qf(p)
	}
	if w := m.widenFactor(); w != 1 {
		med := qf(0.5)
		for i := range qs {
			qs[i] = med + w*(qs[i]-med)
		}
		widened := make([]Component, len(comps))
		for i, c := range comps {
			widened[i] = Component{Weight: c.Weight, Mean: c.Mean, Sigma: c.Sigma * w}
		}
		comps = widened
	}
	monotonize(qs)
	return LoadDist{Quantiles: qs, Components: comps, Forecaster: name}
}

// normalLoadDist tabulates a normal's quantiles on the grid.
func normalLoadDist(mean, sigma float64, name string) LoadDist {
	qs := make([]float64, len(DistLevels))
	for i, p := range DistLevels {
		qs[i] = mean + sigma*normalQuantileZ(p)
	}
	return LoadDist{
		Quantiles:  qs,
		Components: []Component{{Weight: 1, Mean: mean, Sigma: sigma}},
		Forecaster: name,
	}
}

// normalQuantileZ is the standard normal quantile, via the stochastic
// package's normal interpretation (Value{Spread: 2} has σ = 1).
func normalQuantileZ(p float64) float64 {
	return stochastic.Value{Mean: 0, Spread: 2}.Quantile(p)
}

// monotonize enforces a nondecreasing quantile curve in place (running
// max) — numeric noise in widened or interpolated curves must never
// surface an inverted interval.
func monotonize(qs []float64) {
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			qs[i] = qs[i-1]
		}
	}
}
