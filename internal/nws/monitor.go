package nws

import (
	"errors"
	"math"

	"prodpred/internal/simenv"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
	"prodpred/internal/timeseries"
)

// DefaultPeriod is the paper's sensor cadence: measurements and variance
// reports every 5 seconds.
const DefaultPeriod = 5.0

// Retry and degradation policy. Backoff is in virtual time and the retry
// schedule stays strictly inside one period so a recovered tick never
// collides with the next scheduled sample.
const (
	// maxRetries is how many backoff retries a transient error gets before
	// the tick is abandoned as a gap.
	maxRetries = 3
	// staleLimit is the staleness (in periods) beyond which the forecaster
	// mix is no longer trusted and RobustReport falls back to the running
	// mean of the surviving history.
	staleLimit = 8
)

// DegradeRate widens a monitor's reported interval per period of
// staleness: spread is multiplied by StalenessFactor(stale) =
// 1 + DegradeRate·stale. This is the single source of truth for
// staleness widening — monitor reports, the predictd diagnostics, and the
// online calibrator (internal/calib) all compose against this one factor.
// The calibrator's conformal multiplier applies on top of it, so a stale
// sensor and an under-covering model widen independently and
// multiplicatively.
const DegradeRate = 0.25

// StalenessFactor returns the spread multiplier for a given staleness in
// sensor periods: 1 on a healthy stream, 1 + DegradeRate·stale otherwise.
func StalenessFactor(stale float64) float64 { return 1 + DegradeRate*stale }

// GapStats counts per-fault-class sensor outcomes, for diagnostics and for
// the robustness experiments. Missed is the total of scheduled samples that
// produced no measurement (Dropped + Outage + TransientLost + SensorErrors).
type GapStats struct {
	Clean         int // samples recorded without incident
	Recovered     int // samples recorded after one or more transient retries
	Retries       int // transient retries performed (in virtual time)
	Dropped       int // samples lost to drops
	Outage        int // samples lost inside outage windows
	TransientLost int // samples lost after exhausting retries
	SensorErrors  int // samples lost to unclassified sensor errors
	Missed        int // total scheduled samples not recorded
	LongestGap    int // longest run of consecutive missed samples
}

// Recorded returns the number of samples that produced a measurement.
func (g GapStats) Recorded() int { return g.Clean + g.Recovered }

// Scheduled returns the number of sample ticks attempted.
func (g GapStats) Scheduled() int { return g.Recorded() + g.Missed }

// Monitor drives a sensor over a simulated environment at a fixed period,
// keeps a bounded history, scores the forecaster mix postmortem after every
// new measurement, and reports stochastic forecasts on demand.
//
// The monitor is gap-aware: a failing sensor never aborts the measurement
// stream. Transient errors are retried with backoff in virtual time;
// dropped samples and outage windows are skipped and recorded in GapStats;
// and the reported interval widens as the last good measurement ages,
// recovering to normal confidence as fresh samples refill the history.
// Not safe for concurrent use.
type Monitor struct {
	measure Sensor
	period  float64
	ring    *timeseries.Ring
	mix     *Mix
	tour    *Tournament
	nextT   float64
	started bool

	stats  GapStats
	curGap int     // consecutive missed samples in the current gap
	stale  float64 // effective staleness in periods (rises on miss, decays on success)
}

// NewCPUMonitor returns a monitor of machine m's CPU availability in env.
func NewCPUMonitor(env *simenv.Env, m int, period float64, histSize int) (*Monitor, error) {
	s, err := CPUSensor(env, m)
	if err != nil {
		return nil, err
	}
	return NewSensorMonitor(s, period, histSize)
}

// NewBandwidthMonitor returns a monitor of achieved bandwidth (bytes/s)
// between machines i and j in env, probing with probeBytes messages.
func NewBandwidthMonitor(env *simenv.Env, i, j int, probeBytes, period float64, histSize int) (*Monitor, error) {
	s, err := BandwidthSensor(env, i, j, probeBytes)
	if err != nil {
		return nil, err
	}
	return NewSensorMonitor(s, period, histSize)
}

// NewSensorMonitor returns a monitor over an arbitrary sensor — the
// constructor fault-injection wrappers and custom sensors use.
func NewSensorMonitor(sensor Sensor, period float64, histSize int) (*Monitor, error) {
	if sensor == nil {
		return nil, errors.New("nws: nil sensor")
	}
	if !(period > 0) {
		return nil, errors.New("nws: period must be positive")
	}
	ring, err := timeseries.NewRing(histSize)
	if err != nil {
		return nil, err
	}
	mix := NewMix(nil)
	return &Monitor{measure: sensor, period: period, ring: ring, mix: mix, tour: NewTournament(mix)}, nil
}

// Period returns the sensor period in seconds.
func (m *Monitor) Period() float64 { return m.period }

// RunUntil takes all measurements due up to and including virtual time t.
// It is idempotent: calling it twice with the same t takes no extra
// measurements. Sensor failures never abort the stream — they are retried
// (transient), or skipped and recorded in Gaps(); the returned error is
// always nil and retained only for interface stability.
func (m *Monitor) RunUntil(t float64) error {
	if !m.started {
		m.started = true
		m.nextT = 0
	}
	for m.nextT <= t {
		v, err := m.sample(m.nextT)
		if err != nil {
			m.recordMiss(err)
		} else {
			if hist := m.ring.Values(); len(hist) > 0 {
				// Score the distribution tournament against the same
				// postmortem round before the shared mix absorbs it, so
				// every competitor is judged on the pre-update state.
				m.tour.Update(hist, v)
				m.mix.Update(hist, v)
			}
			m.ring.Push(m.nextT, v)
			m.curGap = 0
			m.stale = math.Max(0, m.stale-1)
		}
		m.nextT += m.period
	}
	return nil
}

// sample reads the sensor at tick time t, retrying transient errors with
// linear backoff in virtual time (t + period/8, t + 2·period/8, ...; the
// whole schedule stays inside one period). A retry that fails
// non-transiently reports that failure class.
func (m *Monitor) sample(t float64) (float64, error) {
	v, err := m.measure(t)
	if err == nil {
		m.stats.Clean++
		return v, nil
	}
	if !IsTransient(err) {
		return v, err
	}
	backoff := m.period / 8
	for attempt := 1; attempt <= maxRetries; attempt++ {
		m.stats.Retries++
		v, err = m.measure(t + float64(attempt)*backoff)
		if err == nil {
			m.stats.Recovered++
			return v, nil
		}
		if !IsTransient(err) {
			return v, err
		}
	}
	return v, err
}

// recordMiss classifies and counts a scheduled sample that produced no
// measurement, and advances the staleness clock.
func (m *Monitor) recordMiss(err error) {
	switch {
	case errors.Is(err, ErrSampleDropped):
		m.stats.Dropped++
	case errors.Is(err, ErrOutage):
		m.stats.Outage++
	case IsTransient(err):
		m.stats.TransientLost++
	default:
		m.stats.SensorErrors++
	}
	m.stats.Missed++
	m.curGap++
	if m.curGap > m.stats.LongestGap {
		m.stats.LongestGap = m.curGap
	}
	m.stale++
}

// Gaps returns the per-fault-class sensor counters accumulated so far.
func (m *Monitor) Gaps() GapStats { return m.stats }

// Staleness returns the current effective staleness in periods: it rises by
// one per missed sample and decays by one per recorded sample, so it is
// zero on a healthy stream and the degradation factor is 1 there.
func (m *Monitor) Staleness() float64 { return m.stale }

// DegradationFactor returns the multiplier currently applied to the
// reported spread: 1 on a healthy stream, growing with staleness.
func (m *Monitor) DegradationFactor() float64 { return StalenessFactor(m.stale) }

func (m *Monitor) widenFactor() float64 { return m.DegradationFactor() }

// Len returns the number of stored measurements.
func (m *Monitor) Len() int { return m.ring.Len() }

// History returns the stored measurement values, oldest first.
func (m *Monitor) History() []float64 { return m.ring.Values() }

// Last returns the most recent measurement; ok is false before the first
// successful sample.
func (m *Monitor) Last() (timeseries.Point, bool) { return m.ring.Last() }

// Forecast reports the NWS prediction from the current history. The error
// estimate is widened by the staleness degradation factor, so intervals
// grow while the sensor is dark and shrink back as the history refills.
func (m *Monitor) Forecast() (Forecast, error) {
	if m.ring.Len() == 0 {
		return Forecast{}, errors.New("nws: no measurements yet")
	}
	f, err := m.mix.Forecast(m.ring.Values())
	if err != nil {
		return f, err
	}
	if m.stale > 0 && f.RMSE < minConservativeRMSE {
		// A perfectly-scoring forecaster earns a zero RMSE, but staleness
		// must still widen the interval — floor it so the degradation
		// factor has something to act on.
		f.RMSE = minConservativeRMSE
	}
	f.RMSE *= m.widenFactor()
	return f, nil
}

// Report runs the monitor to time t and returns the stochastic forecast —
// the one-call form the prediction pipeline uses: "a value generated by the
// Network Weather Service at runtime" (§2.1.2). It fails only when no
// measurement has ever succeeded; use RobustReport for a total fallback.
func (m *Monitor) Report(t float64) (stochastic.Value, error) {
	if err := m.RunUntil(t); err != nil {
		return stochastic.Value{}, err
	}
	f, err := m.Forecast()
	if err != nil {
		return stochastic.Value{}, err
	}
	return f.Stochastic(), nil
}

// RobustReport runs the monitor to time t and always returns a usable
// stochastic value, degrading gracefully:
//
//  1. fresh enough history (staleness <= staleLimit periods): the normal
//     mix forecast, spread widened by the staleness factor;
//  2. stale history or a failed mix: the running mean of the surviving
//     history with a conservative, staleness-widened spread;
//  3. no history at all: the caller-supplied prior.
func (m *Monitor) RobustReport(t float64, prior stochastic.Value) stochastic.Value {
	_ = m.RunUntil(t)
	if m.ring.Len() == 0 {
		return prior
	}
	if m.stale <= staleLimit {
		if f, err := m.Forecast(); err == nil {
			return f.Stochastic()
		}
	}
	hist := m.ring.Values()
	mean, std := stats.MeanStd(hist)
	sigma := math.Max(std, 0.1*math.Abs(mean))
	if sigma < minConservativeRMSE {
		sigma = minConservativeRMSE
	}
	return stochastic.FromMeanSigma(mean, sigma*m.widenFactor())
}

// Mix exposes the forecaster mix for diagnostics.
func (m *Monitor) Mix() *Mix { return m.mix }

// Tournament exposes the distribution-forecaster tournament for
// diagnostics and snapshots.
func (m *Monitor) Tournament() *Tournament { return m.tour }
