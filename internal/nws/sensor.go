package nws

import (
	"errors"
	"fmt"

	"prodpred/internal/simenv"
)

// Sensor is one measurement source: it reads the monitored quantity at
// virtual time t. A production sensor can fail, and the Monitor's handling
// depends on how it fails:
//
//   - ErrSampleDropped: the sample is lost (a UDP-style dropout). The
//     monitor skips it, records the gap, and waits for the next tick.
//   - ErrOutage: the sensor is inside a known outage window (machine
//     reboot, network partition). Same skip-and-record handling as a drop,
//     counted separately.
//   - a TransientError: a momentary failure (EINTR, a busy collector) that
//     a quick retry may clear. The monitor retries with backoff in virtual
//     time before giving up on the tick.
//
// Any other error is an unclassified sensor failure; the monitor records
// it and moves on rather than aborting the measurement stream.
type Sensor func(t float64) (float64, error)

// ErrSampleDropped reports a measurement lost in transit.
var ErrSampleDropped = errors.New("nws: sample dropped")

// ErrOutage reports a measurement attempted inside a sensor outage window.
var ErrOutage = errors.New("nws: sensor outage")

// TransientError wraps a momentary sensor failure that is worth retrying.
type TransientError struct {
	Err error
}

// Error implements error.
func (e *TransientError) Error() string {
	return "nws: transient sensor error: " + e.Err.Error()
}

// Unwrap exposes the underlying cause.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient marks err as a retryable sensor failure.
func Transient(err error) error { return &TransientError{Err: err} }

// IsTransient reports whether err is (or wraps) a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// CPUSensor returns the sensor reading machine m's raw CPU availability in
// env — the measurement primitive behind NewCPUMonitor.
func CPUSensor(env *simenv.Env, m int) (Sensor, error) {
	if env == nil {
		return nil, errors.New("nws: nil environment")
	}
	if m < 0 || m >= env.Platform().Size() {
		return nil, fmt.Errorf("nws: machine %d out of range", m)
	}
	return func(t float64) (float64, error) {
		return env.RawCPUAvail(m, t), nil
	}, nil
}

// BandwidthSensor returns the sensor probing achieved bandwidth (bytes/s)
// between machines i and j in env with probeBytes messages.
func BandwidthSensor(env *simenv.Env, i, j int, probeBytes float64) (Sensor, error) {
	if env == nil {
		return nil, errors.New("nws: nil environment")
	}
	if !(probeBytes > 0) {
		return nil, errors.New("nws: probe size must be positive")
	}
	if _, err := env.Platform().Link(i, j); err != nil {
		return nil, err
	}
	return func(t float64) (float64, error) {
		dur, err := env.TransferDuration(i, j, probeBytes, t)
		if err != nil {
			return 0, err
		}
		return probeBytes / dur, nil
	}, nil
}
