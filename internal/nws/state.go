package nws

import (
	"fmt"

	"prodpred/internal/timeseries"
)

// MonitorState is the complete dynamic state of a Monitor in portable form
// — everything RunUntil and the forecaster mix have accumulated that is not
// derivable from the constructor arguments alone. It exists for the
// snapshot/restore path (internal/predict): export from a live monitor,
// rebuild an identically configured monitor from its spec, import, and the
// restored monitor's future reports are bit-identical to the original's.
//
// Monitors are pure functions of virtual time, so replaying RunUntil from
// zero would reconstruct this state too — but at O(t/period) sensor reads
// per monitor. Serializing the state directly makes restore O(history).
type MonitorState struct {
	// NextT is the next scheduled sample time; Started mirrors the
	// first-RunUntil latch.
	NextT   float64
	Started bool
	// Stale and CurGap carry the staleness clock; Stats the per-fault-class
	// gap counters.
	Stale  float64
	CurGap int
	Stats  GapStats
	// Times and Values are the ring history, oldest first, parallel slices.
	Times  []float64
	Values []float64
	// MixSqErr and MixN are the forecaster mix's postmortem accumulators,
	// parallel to the battery order.
	MixSqErr []float64
	MixN     []int
	// Tournament is the distribution-forecaster tournament's state
	// (snapshot v2; zero-valued when restoring a v1 image, which resets
	// the tournament to the incumbent).
	Tournament TournamentState
}

// ExportState copies the monitor's full dynamic state. The monitor is not
// safe for concurrent use; callers serialize against RunUntil as usual.
func (m *Monitor) ExportState() MonitorState {
	st := MonitorState{
		NextT:    m.nextT,
		Started:  m.started,
		Stale:    m.stale,
		CurGap:   m.curGap,
		Stats:    m.stats,
		MixSqErr: append([]float64(nil), m.mix.sqErr...),
		MixN:     append([]int(nil), m.mix.n...),
	}
	st.Tournament = m.tour.ExportState()
	n := m.ring.Len()
	st.Times = make([]float64, n)
	st.Values = make([]float64, n)
	for i := 0; i < n; i++ {
		p := m.ring.At(i)
		st.Times[i] = p.T
		st.Values[i] = p.V
	}
	return st
}

// ImportState replaces the monitor's dynamic state with st. The monitor
// must have been built with the same battery and a ring at least as large
// as the exported history; the sensor and period come from the
// constructor, so a state imported into a differently configured monitor
// is rejected where detectable.
func (m *Monitor) ImportState(st MonitorState) error {
	if len(st.Times) != len(st.Values) {
		return fmt.Errorf("nws: state history slices differ: %d times vs %d values", len(st.Times), len(st.Values))
	}
	if len(st.Times) > m.ring.Cap() {
		return fmt.Errorf("nws: state history %d exceeds ring capacity %d", len(st.Times), m.ring.Cap())
	}
	if len(st.MixSqErr) != len(m.mix.forecasters) || len(st.MixN) != len(m.mix.forecasters) {
		return fmt.Errorf("nws: state mix size %d/%d does not match battery of %d",
			len(st.MixSqErr), len(st.MixN), len(m.mix.forecasters))
	}
	if err := m.tour.ImportState(st.Tournament); err != nil {
		return err
	}
	ring, err := timeseries.NewRing(m.ring.Cap())
	if err != nil {
		return err
	}
	for i := range st.Times {
		ring.Push(st.Times[i], st.Values[i])
	}
	m.ring = ring
	copy(m.mix.sqErr, st.MixSqErr)
	copy(m.mix.n, st.MixN)
	m.nextT = st.NextT
	m.started = st.Started
	m.stale = st.Stale
	m.curGap = st.CurGap
	m.stats = st.Stats
	return nil
}
