package nws

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLastValue(t *testing.T) {
	f := LastValue{}
	if _, ok := f.Predict(nil); ok {
		t.Error("empty history should not predict")
	}
	v, ok := f.Predict([]float64{1, 2, 3})
	if !ok || v != 3 {
		t.Errorf("Predict=%g,%v", v, ok)
	}
	if f.Name() != "last" {
		t.Errorf("Name=%q", f.Name())
	}
}

func TestRunningMean(t *testing.T) {
	f := RunningMean{}
	if _, ok := f.Predict(nil); ok {
		t.Error("empty history should not predict")
	}
	v, ok := f.Predict([]float64{1, 2, 3, 4})
	if !ok || v != 2.5 {
		t.Errorf("Predict=%g,%v", v, ok)
	}
}

func TestWindowMean(t *testing.T) {
	f := WindowMean{W: 2}
	if _, ok := f.Predict([]float64{1}); ok {
		t.Error("short history should not predict")
	}
	v, ok := f.Predict([]float64{10, 1, 3})
	if !ok || v != 2 {
		t.Errorf("Predict=%g,%v", v, ok)
	}
	if _, ok := (WindowMean{W: 0}).Predict([]float64{1}); ok {
		t.Error("W=0 should not predict")
	}
	if (WindowMean{W: 7}).Name() != "mean-7" {
		t.Error("name format")
	}
}

func TestWindowMedian(t *testing.T) {
	f := WindowMedian{W: 3}
	v, ok := f.Predict([]float64{100, 5, 1, 9})
	if !ok || v != 5 {
		t.Errorf("odd median=%g,%v", v, ok)
	}
	f4 := WindowMedian{W: 4}
	v, ok = f4.Predict([]float64{1, 2, 3, 100})
	if !ok || v != 2.5 {
		t.Errorf("even median=%g,%v", v, ok)
	}
	if _, ok := f.Predict([]float64{1, 2}); ok {
		t.Error("short history should not predict")
	}
	// Median must not mutate the history.
	hist := []float64{3, 1, 2}
	f3 := WindowMedian{W: 3}
	f3.Predict(hist)
	if hist[0] != 3 || hist[1] != 1 {
		t.Error("Predict mutated history")
	}
}

func TestExpSmoothing(t *testing.T) {
	f := ExpSmoothing{Alpha: 0.5}
	v, ok := f.Predict([]float64{0, 4})
	if !ok || v != 2 {
		t.Errorf("Predict=%g,%v", v, ok)
	}
	if _, ok := f.Predict(nil); ok {
		t.Error("empty history should not predict")
	}
	if _, ok := (ExpSmoothing{Alpha: 0}).Predict([]float64{1}); ok {
		t.Error("alpha=0 should not predict")
	}
	if _, ok := (ExpSmoothing{Alpha: 1.5}).Predict([]float64{1}); ok {
		t.Error("alpha>1 should not predict")
	}
	// Alpha=1 degenerates to last value.
	v, ok = (ExpSmoothing{Alpha: 1}).Predict([]float64{3, 9})
	if !ok || v != 9 {
		t.Errorf("alpha=1 Predict=%g", v)
	}
}

func TestDefaultBatteryPredictsEventually(t *testing.T) {
	hist := []float64{0.5, 0.52, 0.48, 0.49, 0.5, 0.51, 0.5, 0.49,
		0.5, 0.52, 0.48, 0.49, 0.5, 0.51, 0.5, 0.49,
		0.5, 0.52, 0.48, 0.49, 0.5, 0.51, 0.5, 0.49,
		0.5, 0.52, 0.48, 0.49, 0.5, 0.51}
	for _, f := range DefaultBattery() {
		if _, ok := f.Predict(hist); !ok {
			t.Errorf("forecaster %s cannot predict from 30 samples", f.Name())
		}
	}
}

func TestMixSelectsBestForecaster(t *testing.T) {
	// On a constant series with one old spike, window median and means beat
	// last-value; on a pure random walk, last-value wins. Feed a noisy
	// mean-reverting series: running mean should dominate last value.
	mix := NewMix([]Forecaster{LastValue{}, RunningMean{}})
	rng := rand.New(rand.NewSource(5))
	hist := []float64{}
	for i := 0; i < 500; i++ {
		next := 0.5 + 0.1*rng.NormFloat64() // iid around 0.5
		if len(hist) > 0 {
			mix.Update(hist, next)
		}
		hist = append(hist, next)
	}
	f, err := mix.Forecast(hist)
	if err != nil {
		t.Fatal(err)
	}
	if f.Best != "running-mean" {
		t.Errorf("best=%s want running-mean (RMSEs %v)", f.Best, mix.RMSEs())
	}
	if !almostEqual(f.Value, 0.5, 0.05) {
		t.Errorf("forecast=%g want ~0.5", f.Value)
	}
	// The winner's RMSE should approximate the iid sigma (for the mean
	// predictor, ~sigma).
	if f.RMSE < 0.05 || f.RMSE > 0.15 {
		t.Errorf("RMSE=%g want ~0.1", f.RMSE)
	}
}

func TestMixPrefersLastValueOnRandomWalk(t *testing.T) {
	mix := NewMix([]Forecaster{LastValue{}, RunningMean{}})
	rng := rand.New(rand.NewSource(6))
	hist := []float64{0}
	x := 0.0
	for i := 0; i < 500; i++ {
		x += rng.NormFloat64()
		mix.Update(hist, x)
		hist = append(hist, x)
	}
	f, err := mix.Forecast(hist)
	if err != nil {
		t.Fatal(err)
	}
	if f.Best != "last" {
		t.Errorf("best=%s want last", f.Best)
	}
}

func TestMixForecastWithNoHistory(t *testing.T) {
	mix := NewMix(nil)
	if _, err := mix.Forecast(nil); err == nil {
		t.Error("empty history should fail")
	}
}

func TestMixUnscoredFallback(t *testing.T) {
	// With history but no postmortem updates, the forecast must still
	// return, with a conservative non-zero RMSE.
	mix := NewMix(nil)
	f, err := mix.Forecast([]float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if f.RMSE <= 0 {
		t.Errorf("fallback RMSE=%g want >0", f.RMSE)
	}
	// Degenerate constant history: falls back to a fraction of the value.
	f2, err := mix.Forecast([]float64{0.4, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if f2.RMSE <= 0 {
		t.Errorf("degenerate fallback RMSE=%g", f2.RMSE)
	}
}

func TestForecastStochastic(t *testing.T) {
	f := Forecast{Value: 0.48, RMSE: 0.025}
	v := f.Stochastic()
	if !almostEqual(v.Mean, 0.48, 1e-12) || !almostEqual(v.Spread, 0.05, 1e-12) {
		t.Errorf("Stochastic=%v", v)
	}
}

func TestRMSEs(t *testing.T) {
	mix := NewMix([]Forecaster{LastValue{}})
	m := mix.RMSEs()
	if !math.IsNaN(m["last"]) {
		t.Error("unscored forecaster should report NaN")
	}
	mix.Update([]float64{1}, 3) // error 2
	m = mix.RMSEs()
	if !almostEqual(m["last"], 2, 1e-12) {
		t.Errorf("RMSE=%g want 2", m["last"])
	}
}

func TestMixDefaultBatteryUsedWhenNil(t *testing.T) {
	mix := NewMix(nil)
	if len(mix.RMSEs()) != len(DefaultBattery()) {
		t.Error("nil battery should default")
	}
}

func TestMixAllZeroHistoryRegression(t *testing.T) {
	// Regression: the no-postmortem fallback was |bestVal| * 0.5, which is
	// 0 for an all-zero history — a ±0 "stochastic" interval. It must be
	// floored at a small positive epsilon.
	mix := NewMix(nil)
	f, err := mix.Forecast([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.RMSE <= 0 {
		t.Fatalf("all-zero history RMSE=%g want > 0", f.RMSE)
	}
	if sv := f.Stochastic(); sv.Spread <= 0 {
		t.Errorf("all-zero history spread=%g want > 0", sv.Spread)
	}
}
