package nws

import (
	"fmt"

	"prodpred/internal/stats"
)

// Additional forecasters beyond the classic battery. The NWS papers
// emphasize that the set is open-ended: any cheap predictor can join the
// mix because postmortem scoring demotes the bad ones automatically.

// TrimmedWindowMean predicts the trimmed mean of the last W measurements,
// discarding the Trim fraction from each end — robust to the congestion
// spikes of long-tailed histories without the median's coarseness.
type TrimmedWindowMean struct {
	W    int
	Trim float64
}

// Name implements Forecaster.
func (f TrimmedWindowMean) Name() string {
	return fmt.Sprintf("trimmed-%d-%.0f%%", f.W, f.Trim*100)
}

// Predict implements Forecaster.
func (f TrimmedWindowMean) Predict(hist []float64) (float64, bool) {
	if f.W <= 0 || len(hist) < f.W {
		return 0, false
	}
	v, err := stats.TrimmedMean(hist[len(hist)-f.W:], f.Trim)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Trend predicts by extrapolating a least-squares line over the last W
// measurements one step ahead — the only battery member that can lead a
// ramp instead of lagging it.
type Trend struct{ W int }

// Name implements Forecaster.
func (f Trend) Name() string { return fmt.Sprintf("trend-%d", f.W) }

// Predict implements Forecaster.
func (f Trend) Predict(hist []float64) (float64, bool) {
	if f.W < 2 || len(hist) < f.W {
		return 0, false
	}
	w := hist[len(hist)-f.W:]
	xs := make([]float64, len(w))
	for i := range xs {
		xs[i] = float64(i)
	}
	slope, intercept, err := stats.LinearFit(xs, w)
	if err != nil {
		return 0, false
	}
	return intercept + slope*float64(len(w)), true
}

// AdaptiveMean re-selects its window size on every prediction: it scores
// each candidate width by its one-step error over the available history and
// predicts with the best. This is the NWS "adaptive window" idea in its
// simplest form.
type AdaptiveMean struct {
	Widths []int // candidate window sizes, e.g. {3, 5, 10, 20}
}

// Name implements Forecaster.
func (f AdaptiveMean) Name() string { return "adaptive-mean" }

// Predict implements Forecaster.
func (f AdaptiveMean) Predict(hist []float64) (float64, bool) {
	if len(f.Widths) == 0 || len(hist) == 0 {
		return 0, false
	}
	bestW, bestErr := 0, 0.0
	found := false
	for _, w := range f.Widths {
		if w <= 0 || len(hist) < w+1 {
			continue
		}
		// Backtest this width over up to the last 20 steps.
		steps := len(hist) - w
		if steps > 20 {
			steps = 20
		}
		var se float64
		for s := 0; s < steps; s++ {
			end := len(hist) - s
			mean := 0.0
			for _, x := range hist[end-w-1 : end-1] {
				mean += x
			}
			mean /= float64(w)
			d := mean - hist[end-1]
			se += d * d
		}
		if !found || se < bestErr {
			bestW, bestErr, found = w, se, true
		}
	}
	if !found {
		// History too short to backtest any width: fall back to the
		// smallest feasible plain window.
		for _, w := range f.Widths {
			if w > 0 && len(hist) >= w {
				return WindowMean{W: w}.Predict(hist)
			}
		}
		return 0, false
	}
	return WindowMean{W: bestW}.Predict(hist)
}

// ExtendedBattery returns DefaultBattery plus the adaptive forecasters.
func ExtendedBattery() []Forecaster {
	return append(DefaultBattery(),
		TrimmedWindowMean{W: 10, Trim: 0.2},
		TrimmedWindowMean{W: 30, Trim: 0.1},
		Trend{W: 6},
		Trend{W: 15},
		AdaptiveMean{Widths: []int{3, 5, 10, 20, 40}},
	)
}
