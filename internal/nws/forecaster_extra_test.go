package nws

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrimmedWindowMean(t *testing.T) {
	f := TrimmedWindowMean{W: 5, Trim: 0.2}
	// Window {1, 2, 3, 4, 100}: trimming one from each end -> mean(2,3,4)=3.
	v, ok := f.Predict([]float64{9, 9, 1, 2, 3, 4, 100})
	if !ok || v != 3 {
		t.Errorf("Predict=%g,%v want 3", v, ok)
	}
	if _, ok := f.Predict([]float64{1, 2}); ok {
		t.Error("short history should not predict")
	}
	if _, ok := (TrimmedWindowMean{W: 0, Trim: 0.1}).Predict([]float64{1}); ok {
		t.Error("W=0 should not predict")
	}
	if _, ok := (TrimmedWindowMean{W: 2, Trim: 0.9}).Predict([]float64{1, 2}); ok {
		t.Error("bad trim should not predict")
	}
	if (TrimmedWindowMean{W: 10, Trim: 0.2}).Name() != "trimmed-10-20%" {
		t.Error("name format")
	}
}

func TestTrimmedMeanRobustToSpike(t *testing.T) {
	plain := WindowMean{W: 5}
	robust := TrimmedWindowMean{W: 5, Trim: 0.2}
	hist := []float64{0.5, 0.5, 0.5, 0.5, 0.01} // one congestion spike
	pv, _ := plain.Predict(hist)
	rv, _ := robust.Predict(hist)
	if math.Abs(rv-0.5) >= math.Abs(pv-0.5) {
		t.Errorf("trimmed %g should be closer to 0.5 than plain %g", rv, pv)
	}
}

func TestTrendExtrapolates(t *testing.T) {
	f := Trend{W: 4}
	// Perfect ramp 1,2,3,4 -> next is 5.
	v, ok := f.Predict([]float64{9, 1, 2, 3, 4})
	if !ok || math.Abs(v-5) > 1e-9 {
		t.Errorf("Predict=%g,%v want 5", v, ok)
	}
	// Constant history -> predicts the constant.
	v, ok = f.Predict([]float64{2, 2, 2, 2})
	if !ok || math.Abs(v-2) > 1e-9 {
		t.Errorf("constant Predict=%g,%v", v, ok)
	}
	if _, ok := f.Predict([]float64{1, 2}); ok {
		t.Error("short history should not predict")
	}
	if _, ok := (Trend{W: 1}).Predict([]float64{1, 2}); ok {
		t.Error("W<2 should not predict")
	}
}

func TestTrendBeatsMeanOnRamp(t *testing.T) {
	mix := NewMix([]Forecaster{WindowMean{W: 6}, Trend{W: 6}})
	hist := []float64{}
	for i := 0; i < 100; i++ {
		x := 0.01 * float64(i)
		if len(hist) >= 6 {
			mix.Update(hist, x)
		}
		hist = append(hist, x)
	}
	f, err := mix.Forecast(hist)
	if err != nil {
		t.Fatal(err)
	}
	if f.Best != "trend-6" {
		t.Errorf("best=%s want trend-6 (%v)", f.Best, mix.RMSEs())
	}
}

func TestAdaptiveMean(t *testing.T) {
	f := AdaptiveMean{Widths: []int{3, 10}}
	if _, ok := f.Predict(nil); ok {
		t.Error("empty history should not predict")
	}
	if _, ok := (AdaptiveMean{}).Predict([]float64{1, 2, 3}); ok {
		t.Error("no widths should not predict")
	}
	// Short history: falls back to the smallest feasible width.
	v, ok := f.Predict([]float64{1, 2, 3})
	if !ok || v != 2 {
		t.Errorf("fallback Predict=%g,%v want 2", v, ok)
	}
	// On iid data, the wider window backtests better than the narrow one.
	rng := rand.New(rand.NewSource(1))
	hist := make([]float64, 200)
	for i := range hist {
		hist[i] = 0.5 + 0.1*rng.NormFloat64()
	}
	v, ok = f.Predict(hist)
	if !ok {
		t.Fatal("should predict")
	}
	wide, _ := WindowMean{W: 10}.Predict(hist)
	if v != wide {
		t.Errorf("adaptive=%g want wide-window %g on iid data", v, wide)
	}
	// On a fast-switching series, the narrow window should win.
	for i := range hist {
		hist[i] = float64((i / 30) % 2) // square wave
	}
	v, ok = f.Predict(hist)
	if !ok {
		t.Fatal("should predict")
	}
	narrow, _ := WindowMean{W: 3}.Predict(hist)
	if v != narrow {
		t.Errorf("adaptive=%g want narrow-window %g on switching data", v, narrow)
	}
}

func TestExtendedBatterySuperset(t *testing.T) {
	ext := ExtendedBattery()
	if len(ext) <= len(DefaultBattery()) {
		t.Error("extended battery should add forecasters")
	}
	names := map[string]bool{}
	for _, f := range ext {
		if names[f.Name()] {
			t.Errorf("duplicate forecaster name %q", f.Name())
		}
		names[f.Name()] = true
	}
	// Everything in the extended battery predicts from a 50-sample history.
	hist := make([]float64, 50)
	for i := range hist {
		hist[i] = 0.5 + 0.01*float64(i%7)
	}
	for _, f := range ext {
		if _, ok := f.Predict(hist); !ok {
			t.Errorf("%s cannot predict from 50 samples", f.Name())
		}
	}
}

func TestExtendedBatteryInMix(t *testing.T) {
	// The mix over the extended battery still works end to end.
	mix := NewMix(ExtendedBattery())
	rng := rand.New(rand.NewSource(2))
	hist := []float64{}
	x := 0.5
	for i := 0; i < 300; i++ {
		x = 0.5 + 0.9*(x-0.5) + 0.02*rng.NormFloat64()
		if len(hist) > 0 {
			mix.Update(hist, x)
		}
		hist = append(hist, x)
	}
	f, err := mix.Forecast(hist)
	if err != nil {
		t.Fatal(err)
	}
	if f.RMSE <= 0 || f.RMSE > 0.1 {
		t.Errorf("RMSE=%g", f.RMSE)
	}
}
