package nws

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestReadLoadAvg(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		p := filepath.Join(dir, "loadavg")
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := write("0.52 0.58 0.59 1/389 12345\n")
	v, err := readLoadAvg(p)
	if err != nil || v != 0.52 {
		t.Errorf("readLoadAvg=%g err=%v", v, err)
	}
	p = write("")
	if _, err := readLoadAvg(p); err == nil {
		t.Error("empty file should fail")
	}
	p = write("abc 1 2\n")
	if _, err := readLoadAvg(p); err == nil {
		t.Error("garbage should fail")
	}
	p = write("-1 0 0\n")
	if _, err := readLoadAvg(p); err == nil {
		t.Error("negative loadavg should fail")
	}
	if _, err := readLoadAvg(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestNewHostMonitorValidation(t *testing.T) {
	if runtime.GOOS != "linux" {
		if _, err := NewHostMonitor(10); !errors.Is(err, ErrHostSensorUnavailable) {
			t.Errorf("non-linux err=%v", err)
		}
		t.Skip("host sensor requires linux")
	}
	if _, err := newHostMonitor("/nonexistent/loadavg", 10); !errors.Is(err, ErrHostSensorUnavailable) {
		t.Errorf("missing path err=%v", err)
	}
	if _, err := NewHostMonitor(0); err == nil {
		t.Error("zero history should fail")
	}
}

func TestHostMonitorSampleAndForecast(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("host sensor requires linux")
	}
	h, err := NewHostMonitor(32)
	if err != nil {
		t.Skipf("host sensor unavailable: %v", err)
	}
	if _, err := h.Forecast(); err == nil {
		t.Error("forecast before sampling should fail")
	}
	for i := 0; i < 10; i++ {
		v, err := h.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 || v > 1 {
			t.Fatalf("availability %g outside (0,1]", v)
		}
	}
	if h.Len() != 10 || len(h.History()) != 10 {
		t.Errorf("history len=%d", h.Len())
	}
	f, err := h.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if f.Value <= 0 || f.Value > 1 {
		t.Errorf("forecast=%g", f.Value)
	}
	sv := f.Stochastic()
	if sv.Spread < 0 {
		t.Errorf("spread=%g", sv.Spread)
	}
}

func TestHostMonitorFakeLoadavg(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("host sensor requires linux")
	}
	// Drive the monitor with a synthetic loadavg file to make the
	// conversion deterministic.
	dir := t.TempDir()
	p := filepath.Join(dir, "loadavg")
	if err := os.WriteFile(p, []byte("1.00 0 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := newHostMonitor(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := h.Sample()
	if err != nil {
		t.Fatal(err)
	}
	// ncpu/(1+1) clamped to 1.
	want := float64(runtime.NumCPU()) / 2
	if want > 1 {
		want = 1
	}
	if v != want {
		t.Errorf("avail=%g want %g", v, want)
	}
}
