package nws

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"prodpred/internal/timeseries"
)

// HostMonitor samples this machine's real CPU availability — the sensor an
// actual NWS deployment would run. On Linux it reads /proc/loadavg and
// converts the 1-minute load average into an availability fraction the way
// the NWS CPU sensor does: avail = ncpu / (load + 1), clamped to [0, 1]
// (the share an additional runnable process would receive). Unlike
// Monitor, HostMonitor samples wall-clock time; it exists for live use and
// for the host-calibration experiments, not for the deterministic
// reproduction pipeline.
type HostMonitor struct {
	path string
	ncpu float64
	ring *timeseries.Ring
	mix  *Mix
}

// ErrHostSensorUnavailable reports that this platform exposes no readable
// load average.
var ErrHostSensorUnavailable = errors.New("nws: host load sensor unavailable on this platform")

// NewHostMonitor returns a monitor of the local machine's availability with
// the given bounded history size. It fails on platforms without
// /proc/loadavg.
func NewHostMonitor(histSize int) (*HostMonitor, error) {
	return newHostMonitor("/proc/loadavg", histSize)
}

func newHostMonitor(path string, histSize int) (*HostMonitor, error) {
	if runtime.GOOS != "linux" {
		return nil, ErrHostSensorUnavailable
	}
	if _, err := os.Stat(path); err != nil {
		return nil, ErrHostSensorUnavailable
	}
	ring, err := timeseries.NewRing(histSize)
	if err != nil {
		return nil, err
	}
	return &HostMonitor{
		path: path,
		ncpu: float64(runtime.NumCPU()),
		ring: ring,
		mix:  NewMix(nil),
	}, nil
}

// readLoadAvg parses the 1-minute load average from a /proc/loadavg-format
// line.
func readLoadAvg(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(raw))
	if len(fields) < 1 {
		return 0, fmt.Errorf("nws: malformed loadavg %q", string(raw))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("nws: malformed loadavg %q: %v", fields[0], err)
	}
	if v < 0 {
		return 0, fmt.Errorf("nws: negative loadavg %g", v)
	}
	return v, nil
}

// Sample takes one measurement now and scores the forecaster mix
// postmortem against it.
func (h *HostMonitor) Sample() (float64, error) {
	loadavg, err := readLoadAvg(h.path)
	if err != nil {
		return 0, err
	}
	avail := h.ncpu / (loadavg + 1)
	if avail > 1 {
		avail = 1
	}
	if hist := h.ring.Values(); len(hist) > 0 {
		h.mix.Update(hist, avail)
	}
	h.ring.Push(float64(time.Now().UnixNano())/1e9, avail)
	return avail, nil
}

// Len returns the number of stored measurements.
func (h *HostMonitor) Len() int { return h.ring.Len() }

// History returns the stored availability values, oldest first.
func (h *HostMonitor) History() []float64 { return h.ring.Values() }

// Forecast reports the NWS prediction of the host's availability from the
// measurements taken so far.
func (h *HostMonitor) Forecast() (Forecast, error) {
	if h.ring.Len() == 0 {
		return Forecast{}, errors.New("nws: no measurements yet")
	}
	return h.mix.Forecast(h.ring.Values())
}
