package nws

import (
	"fmt"
	"math"
	"sort"

	"prodpred/internal/dist"
	"prodpred/internal/modal"
	"prodpred/internal/stochastic"
)

// DistLevels is the fixed quantile grid every distribution-valued forecast
// is reported on. It is symmetric around the median so a central interval
// at mass L ∈ {0.5, 0.8, 0.9, 0.95} reads directly off the grid at
// p = (1∓L)/2, and so the prediction pipeline can propagate execution-time
// quantiles by evaluating the structural model at mirrored availability
// quantiles. Callers must treat it as immutable.
var DistLevels = []float64{0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.975}

// DistLevelIndex returns the index of level p in DistLevels, or -1.
func DistLevelIndex(p float64) int {
	for i, l := range DistLevels {
		if l == p {
			return i
		}
	}
	return -1
}

// Component is one Gaussian component of a predictive distribution —
// the portable summary the wire layer and snapshots carry.
type Component struct {
	Weight float64
	Mean   float64
	Sigma  float64
}

// DistForecaster predicts the *distribution* of the next measurement, not
// just a point: it returns a quantile function over the current history.
// Implementations are scored against realized measurements by the
// Tournament, which picks the winner per series. Not safe for concurrent
// use — callers serialize exactly as for Mix.
type DistForecaster interface {
	Name() string
	// Observe absorbs a realized measurement postmortem. hist is the
	// history *before* actual, oldest first, mirroring Mix.Update.
	Observe(hist []float64, actual float64)
	// QuantileFn returns the current predictive quantile function, valid
	// for p in (0,1). ok is false while the history is too short.
	QuantileFn(hist []float64) (func(p float64) float64, bool)
	// Components summarizes the current predictive distribution as a
	// Gaussian mixture (a single component for normal forecasters). nil
	// while the forecaster cannot predict.
	Components(hist []float64) []Component
}

// normalDist is the incumbent: the NWS mixture-of-experts point forecast
// with its postmortem RMSE read as a normal distribution — exactly the
// X ± 2σ summary the rest of the system used before distributions.
type normalDist struct{ t *Tournament }

// NormalForecasterName tags the NWS mixture-of-experts competitor.
const NormalForecasterName = "nws-normal"

func (f *normalDist) Name() string { return NormalForecasterName }

// Observe is a no-op: the shared Mix is scored by Monitor.RunUntil.
func (f *normalDist) Observe(hist []float64, actual float64) {}

func (f *normalDist) QuantileFn(hist []float64) (func(p float64) float64, bool) {
	fc, ok := f.t.pointForecast(hist)
	if !ok {
		return nil, false
	}
	n := dist.Normal{Mu: fc.Value, Sigma: math.Max(fc.RMSE, minConservativeRMSE)}
	return n.Quantile, true
}

func (f *normalDist) Components(hist []float64) []Component {
	fc, ok := f.t.pointForecast(hist)
	if !ok {
		return nil
	}
	return []Component{{Weight: 1, Mean: fc.Value, Sigma: math.Max(fc.RMSE, minConservativeRMSE)}}
}

// Empirical-quantile competitor policy knobs.
const (
	// empiricalWindow bounds the residual window the empirical forecaster
	// reads its quantiles from.
	empiricalWindow = 64
	// empiricalMinResiduals is the least postmortem residuals before the
	// empirical forecaster reports (tail quantiles from fewer points are
	// noise).
	empiricalMinResiduals = 12
)

// EmpiricalForecasterName tags the empirical residual-quantile competitor.
const EmpiricalForecasterName = "empirical-q"

// empiricalDist predicts conditionally: the shared point forecast plus
// the empirical quantiles of its recent postmortem residuals — a
// conformal-style predictive distribution. On regime-switching series the
// residual distribution has a narrow core (within-mode rounds) and fat
// asymmetric tails (jumps), exactly the shape a symmetric normal cannot
// represent.
type empiricalDist struct {
	t         *Tournament
	residuals []float64 // FIFO window of point-forecast residuals
	scratch   []float64 // reused sort buffer
}

func (f *empiricalDist) Name() string { return EmpiricalForecasterName }

func (f *empiricalDist) Observe(hist []float64, actual float64) {
	fc, ok := f.t.pointForecast(hist)
	if !ok {
		return
	}
	if len(f.residuals) >= empiricalWindow {
		f.residuals = f.residuals[:copy(f.residuals, f.residuals[1:])]
	}
	f.residuals = append(f.residuals, actual-fc.Value)
}

// sortedResiduals returns the ascending residual window; ok is false on
// insufficient postmortem data.
func (f *empiricalDist) sortedResiduals() ([]float64, bool) {
	if len(f.residuals) < empiricalMinResiduals {
		return nil, false
	}
	f.scratch = append(f.scratch[:0], f.residuals...)
	sort.Float64s(f.scratch)
	return f.scratch, true
}

func (f *empiricalDist) QuantileFn(hist []float64) (func(p float64) float64, bool) {
	rs, ok := f.sortedResiduals()
	if !ok {
		return nil, false
	}
	fc, ok := f.t.pointForecast(hist)
	if !ok {
		return nil, false
	}
	v := fc.Value
	return func(p float64) float64 { return v + sortedQuantile(rs, p) }, true
}

func (f *empiricalDist) Components(hist []float64) []Component {
	rs, ok := f.sortedResiduals()
	if !ok {
		return nil
	}
	fc, ok := f.t.pointForecast(hist)
	if !ok {
		return nil
	}
	rv, err := stochastic.FromSample(rs)
	if err != nil {
		return nil
	}
	return []Component{{Weight: 1, Mean: fc.Value + rv.Mean, Sigma: math.Max(rv.Sigma(), minConservativeRMSE)}}
}

// sortedQuantile interpolates quantile p from an ascending sample.
func sortedQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Mixture-model competitor policy knobs.
const (
	// mixtureRefitEvery is how many postmortem rounds pass between EM
	// refits; between refits the cached fit answers from its precomputed
	// quantile grid, so the steady-state cost per round is O(1).
	mixtureRefitEvery = 16
	// mixtureWindow is how many trailing measurements each refit uses.
	mixtureWindow = 64
	// mixtureMinHist gates the first fit.
	mixtureMinHist = 24
	// mixtureKMax bounds the BIC model selection — the bursty paper
	// platform has four modes.
	mixtureKMax = 4
)

// MixtureForecasterName tags the modal/dist Gaussian-mixture competitor.
const MixtureForecasterName = "mixture-em"

// mixtureDist fits a BIC-selected Gaussian mixture (internal/modal) to the
// trailing window every mixtureRefitEvery rounds and predicts its
// unconditional distribution — the right shape for regime-switching
// multimodal series where point tracking chases the jumps.
type mixtureDist struct {
	obs     int         // postmortem rounds absorbed
	modes   []Component // cached fit; nil before the first successful fit
	qgrid   []float64   // cached quantiles of the fit at DistLevels
	scratch []float64   // reused fit window buffer
}

func (f *mixtureDist) Name() string { return MixtureForecasterName }

func (f *mixtureDist) Observe(hist []float64, actual float64) {
	f.obs++
	if f.obs%mixtureRefitEvery != 0 || len(hist)+1 < mixtureMinHist {
		return
	}
	f.scratch = append(f.scratch[:0], hist...)
	f.scratch = append(f.scratch, actual)
	if len(f.scratch) > mixtureWindow {
		f.scratch = f.scratch[len(f.scratch)-mixtureWindow:]
	}
	mm, err := modal.FitBIC(f.scratch, mixtureKMax)
	if err != nil {
		return // degenerate window; keep the previous fit
	}
	modes := make([]Component, len(mm.Modes))
	for i, md := range mm.Modes {
		modes[i] = Component{Weight: md.Weight, Mean: md.Mean, Sigma: math.Max(md.Sigma, minConservativeRMSE)}
	}
	f.setFit(modes)
}

// setFit installs a fitted mixture and precomputes its DistLevels grid.
// Shared with snapshot import so a restored forecaster reports
// bit-identically without re-running EM.
func (f *mixtureDist) setFit(modes []Component) {
	mx, err := componentsMixture(modes)
	if err != nil {
		return
	}
	grid := make([]float64, len(DistLevels))
	for i, p := range DistLevels {
		grid[i] = mx.Quantile(p)
	}
	f.modes = modes
	f.qgrid = grid
}

// componentsMixture rebuilds a dist.Mixture from component summaries.
func componentsMixture(modes []Component) (*dist.Mixture, error) {
	comps := make([]dist.Distribution, len(modes))
	ws := make([]float64, len(modes))
	for i, c := range modes {
		n, err := dist.NewNormal(c.Mean, math.Max(c.Sigma, minConservativeRMSE))
		if err != nil {
			return nil, err
		}
		comps[i] = n
		ws[i] = c.Weight
	}
	return dist.NewMixture(comps, ws)
}

func (f *mixtureDist) QuantileFn(hist []float64) (func(p float64) float64, bool) {
	if f.modes == nil {
		return nil, false
	}
	grid := f.qgrid
	return func(p float64) float64 { return gridQuantile(grid, p) }, true
}

func (f *mixtureDist) Components(hist []float64) []Component { return f.modes }

// GridQuantile interpolates a quantile function tabulated on DistLevels at
// probability p, extrapolating flat beyond the grid ends — the one-call
// form consumers use to read arbitrary levels off a LoadDist or
// distribution-valued prediction grid.
func GridQuantile(grid []float64, p float64) float64 { return gridQuantile(grid, p) }

// gridQuantile interpolates a quantile function tabulated on DistLevels,
// extrapolating flat beyond the grid ends.
func gridQuantile(grid []float64, p float64) float64 {
	ls := DistLevels
	if p <= ls[0] {
		return grid[0]
	}
	last := len(ls) - 1
	if p >= ls[last] {
		return grid[last]
	}
	i := sort.SearchFloat64s(ls, p)
	if ls[i] == p {
		return grid[i]
	}
	frac := (p - ls[i-1]) / (ls[i] - ls[i-1])
	return grid[i-1] + frac*(grid[i]-grid[i-1])
}

// Tournament policy knobs.
const (
	// tournamentDecay is the per-round exponential decay on every
	// competitor's accumulated pinball loss, so scores reflect the current
	// regime (half-life ≈ 34 rounds at 0.98) and the winner can change
	// when the series does.
	tournamentDecay = 0.98
	// tournamentMinWeight is the least decayed score mass a competitor
	// needs before it is eligible to win; below it the incumbent
	// nws-normal serves.
	tournamentMinWeight = 8.0
)

// tournamentScoreLevels are the pinball-loss quantiles each competitor is
// scored on every postmortem round. They deliberately weight the interval
// ends the serving layer reports (50–95% central bands) rather than the
// median: the tournament exists to pick the best *interval* shape, and a
// median-heavy score would always hand the win to point trackers on
// regime-switching series.
var tournamentScoreLevels = []float64{0.025, 0.05, 0.25, 0.75, 0.95, 0.975}

// Tournament runs competing distribution forecasters over one measurement
// series, scores each postmortem by mean pinball (quantile) loss with
// exponential decay, and reports the current winner. Deterministic in
// observation order; not safe for concurrent use.
type Tournament struct {
	mix         *Mix
	forecasters []DistForecaster
	loss        []float64 // decayed cumulative pinball loss
	weight      []float64 // decayed round count (the loss normalizer)
	wins        []int64   // rounds each competitor led after scoring

	// Per-round point-forecast cache: Update computes the shared mix
	// forecast once and every competitor reads it, instead of each
	// rerunning the 10-forecaster battery over the full history.
	inRound   bool
	roundFc   Forecast
	roundFcOK bool
}

// NewTournament builds the standard three-way tournament over a shared
// mix: the incumbent NWS-normal summary, the empirical residual-quantile
// forecaster, and the EM Gaussian-mixture forecaster.
func NewTournament(mix *Mix) *Tournament {
	t := &Tournament{mix: mix}
	t.forecasters = []DistForecaster{&normalDist{t: t}, &empiricalDist{t: t}, &mixtureDist{}}
	t.loss = make([]float64, len(t.forecasters))
	t.weight = make([]float64, len(t.forecasters))
	t.wins = make([]int64, len(t.forecasters))
	return t
}

// pointForecast returns the shared mix forecast for hist, served from the
// per-round cache inside Update and computed fresh outside it (the
// serving path, which runs at most once per tick per series thanks to
// the tick cache upstream).
func (t *Tournament) pointForecast(hist []float64) (Forecast, bool) {
	if t.inRound {
		return t.roundFc, t.roundFcOK
	}
	fc, err := t.mix.Forecast(hist)
	return fc, err == nil
}

// DistForecasterNames lists the competitor tags of the standard
// tournament in battery order — the label set of the
// forecaster_tournament_wins_total metric.
func DistForecasterNames() []string {
	return []string{NormalForecasterName, EmpiricalForecasterName, MixtureForecasterName}
}

// pinball is the quantile loss of predicting quantile q at level p when
// the realized value is y.
func pinball(p, q, y float64) float64 {
	if y >= q {
		return p * (y - q)
	}
	return (1 - p) * (q - y)
}

// Update runs one postmortem round: every competitor's current quantile
// function is scored against the realized measurement, decayed losses are
// updated, and each competitor absorbs the measurement. Call with the
// history *before* actual, exactly like Mix.Update, and before the
// monitor's shared Mix absorbs the round.
func (t *Tournament) Update(hist []float64, actual float64) {
	fc, err := t.mix.Forecast(hist)
	t.roundFc, t.roundFcOK, t.inRound = fc, err == nil, true
	defer func() { t.inRound = false }()
	for i, f := range t.forecasters {
		t.loss[i] *= tournamentDecay
		t.weight[i] *= tournamentDecay
		if qf, ok := f.QuantileFn(hist); ok {
			var sum float64
			for _, p := range tournamentScoreLevels {
				sum += pinball(p, qf(p), actual)
			}
			t.loss[i] += sum / float64(len(tournamentScoreLevels))
			t.weight[i]++
		}
	}
	for _, f := range t.forecasters {
		f.Observe(hist, actual)
	}
	t.wins[t.leader()]++
}

// leader returns the index of the current winner: the eligible competitor
// with the lowest decayed mean pinball loss, the incumbent (index 0) when
// none is eligible; ties resolve in battery order.
func (t *Tournament) leader() int {
	best := 0
	bestLoss := math.Inf(1)
	found := false
	for i := range t.forecasters {
		if t.weight[i] < tournamentMinWeight {
			continue
		}
		l := t.loss[i] / t.weight[i]
		if !found || l < bestLoss {
			best, bestLoss, found = i, l, true
		}
	}
	if !found {
		return 0
	}
	return best
}

// Winner returns the current winning competitor and its tag.
func (t *Tournament) Winner() (DistForecaster, string) {
	f := t.forecasters[t.leader()]
	return f, f.Name()
}

// Scores reports each competitor's decayed mean pinball loss (NaN while
// unscored) keyed by tag, for diagnostics.
func (t *Tournament) Scores() map[string]float64 {
	out := make(map[string]float64, len(t.forecasters))
	for i, f := range t.forecasters {
		if t.weight[i] == 0 {
			out[f.Name()] = math.NaN()
			continue
		}
		out[f.Name()] = t.loss[i] / t.weight[i]
	}
	return out
}

// Wins reports how many scored rounds each competitor has led, in battery
// order — the source of the tournament-wins metric.
func (t *Tournament) Wins() []int64 { return t.wins }

// Names reports the competitor tags in battery order.
func (t *Tournament) Names() []string {
	out := make([]string, len(t.forecasters))
	for i, f := range t.forecasters {
		out[i] = f.Name()
	}
	return out
}

// TournamentState is the Tournament's dynamic state in portable form for
// the snapshot layer: decayed scores plus the mixture competitor's cached
// fit (the fit is a function of the window at fit time, which a restore
// cannot replay, so it is carried verbatim).
type TournamentState struct {
	Loss      []float64
	Weight    []float64
	Wins      []int64
	Residuals []float64
	FitObs    int
	FitModes  []Component
}

// ExportState copies the tournament's dynamic state.
func (t *Tournament) ExportState() TournamentState {
	st := TournamentState{
		Loss:   append([]float64(nil), t.loss...),
		Weight: append([]float64(nil), t.weight...),
		Wins:   append([]int64(nil), t.wins...),
	}
	for _, f := range t.forecasters {
		switch ff := f.(type) {
		case *mixtureDist:
			st.FitObs = ff.obs
			st.FitModes = append([]Component(nil), ff.modes...)
		case *empiricalDist:
			st.Residuals = append([]float64(nil), ff.residuals...)
		}
	}
	return st
}

// ImportState replaces the tournament's dynamic state with st. Zero-value
// state (a v1 snapshot) resets the tournament: the incumbent serves until
// new rounds score the competitors.
func (t *Tournament) ImportState(st TournamentState) error {
	n := len(t.forecasters)
	if len(st.Loss) == 0 && len(st.Weight) == 0 && len(st.Wins) == 0 {
		for i := range t.forecasters {
			t.loss[i], t.weight[i], t.wins[i] = 0, 0, 0
		}
		st.Loss, st.Weight, st.Wins = nil, nil, nil
	} else if len(st.Loss) != n || len(st.Weight) != n || len(st.Wins) != n {
		return fmt.Errorf("nws: tournament state size %d/%d/%d does not match battery of %d",
			len(st.Loss), len(st.Weight), len(st.Wins), n)
	} else {
		copy(t.loss, st.Loss)
		copy(t.weight, st.Weight)
		copy(t.wins, st.Wins)
	}
	for _, f := range t.forecasters {
		switch ff := f.(type) {
		case *mixtureDist:
			ff.obs = st.FitObs
			ff.modes, ff.qgrid = nil, nil
			if len(st.FitModes) > 0 {
				ff.setFit(append([]Component(nil), st.FitModes...))
			}
		case *empiricalDist:
			rs := st.Residuals
			if len(rs) > empiricalWindow {
				rs = rs[len(rs)-empiricalWindow:]
			}
			ff.residuals = append(ff.residuals[:0], rs...)
		}
	}
	return nil
}
