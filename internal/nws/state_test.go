package nws

import (
	"math"
	"reflect"
	"testing"
)

// faultySine is a deterministic sensor with drops and transient errors
// sprinkled in, so the exported state carries non-trivial gap counters and
// staleness.
func faultySine(t float64) (float64, error) {
	k := int(t) // period 5 ticks land on integers
	switch {
	case k%35 == 0 && k > 0:
		return 0, ErrSampleDropped
	case k%55 == 0 && k > 0:
		return 0, Transient(ErrSampleDropped)
	}
	return 0.5 + 0.3*math.Sin(t/40), nil
}

func newStateMonitor(t *testing.T) *Monitor {
	t.Helper()
	m, err := NewSensorMonitor(faultySine, 5, 64)
	if err != nil {
		t.Fatalf("NewSensorMonitor: %v", err)
	}
	return m
}

// TestMonitorStateRoundTrip drives a monitor, exports its state into a
// fresh identically-configured monitor, then runs both forward and asserts
// their reports stay bit-identical — the property the snapshot/restore
// path depends on.
func TestMonitorStateRoundTrip(t *testing.T) {
	orig := newStateMonitor(t)
	if err := orig.RunUntil(500); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	st := orig.ExportState()

	restored := newStateMonitor(t)
	if err := restored.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if got, want := restored.Gaps(), orig.Gaps(); got != want {
		t.Fatalf("gaps after import: got %+v want %+v", got, want)
	}
	if got, want := restored.Staleness(), orig.Staleness(); got != want {
		t.Fatalf("staleness after import: got %v want %v", got, want)
	}
	for _, horizon := range []float64{500, 640, 900} {
		a, errA := orig.Report(horizon)
		b, errB := restored.Report(horizon)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("report errors diverge at t=%g: %v vs %v", horizon, errA, errB)
		}
		if a != b {
			t.Fatalf("reports diverge at t=%g: %+v vs %+v", horizon, a, b)
		}
	}
	if got, want := restored.History(), orig.History(); !reflect.DeepEqual(got, want) {
		t.Fatalf("histories diverge: %v vs %v", got, want)
	}
	if got, want := restored.Gaps(), orig.Gaps(); got != want {
		t.Fatalf("gaps diverge after advancing: got %+v want %+v", got, want)
	}
}

// TestMonitorStateRoundTripMatchesUninterrupted asserts the export itself
// is faithful: an exported-and-reimported monitor equals one that never
// stopped, including the forecaster mix accumulators.
func TestMonitorStateRoundTripMatchesUninterrupted(t *testing.T) {
	orig := newStateMonitor(t)
	if err := orig.RunUntil(300); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	restored := newStateMonitor(t)
	if err := restored.ImportState(orig.ExportState()); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	st1, st2 := orig.ExportState(), restored.ExportState()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("re-export diverges:\n%+v\nvs\n%+v", st1, st2)
	}
}

func TestMonitorImportStateValidates(t *testing.T) {
	m := newStateMonitor(t)
	if err := m.ImportState(MonitorState{Times: []float64{1}, Values: nil}); err == nil {
		t.Fatal("want error for mismatched history slices")
	}
	if err := m.ImportState(MonitorState{
		Times:  make([]float64, 65),
		Values: make([]float64, 65),
	}); err == nil {
		t.Fatal("want error for history exceeding ring capacity")
	}
	if err := m.ImportState(MonitorState{MixSqErr: []float64{1}, MixN: []int{1}}); err == nil {
		t.Fatal("want error for mismatched mix size")
	}
}
