// Package nws reimplements the forecasting core of the Network Weather
// Service (Wolski '96/'97), the monitoring system the paper uses to obtain
// run-time CPU-availability values and their variances at 5-second
// intervals.
//
// NWS runs a battery of cheap forecasters over each measurement history,
// tracks every forecaster's postmortem error, and reports the prediction of
// the currently most accurate one together with an error estimate. Here the
// report is surfaced directly as a stochastic.Value (forecast ± 2·RMSE), the
// form the paper's structural models consume.
package nws

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"prodpred/internal/stochastic"
)

// Forecaster predicts the next measurement from a history (oldest first).
// ok is false when the history is too short for this method.
type Forecaster interface {
	Name() string
	Predict(hist []float64) (value float64, ok bool)
}

// LastValue predicts the most recent measurement.
type LastValue struct{}

// Name implements Forecaster.
func (LastValue) Name() string { return "last" }

// Predict implements Forecaster.
func (LastValue) Predict(hist []float64) (float64, bool) {
	if len(hist) == 0 {
		return 0, false
	}
	return hist[len(hist)-1], true
}

// RunningMean predicts the mean of the entire history.
type RunningMean struct{}

// Name implements Forecaster.
func (RunningMean) Name() string { return "running-mean" }

// Predict implements Forecaster.
func (RunningMean) Predict(hist []float64) (float64, bool) {
	if len(hist) == 0 {
		return 0, false
	}
	var s float64
	for _, x := range hist {
		s += x
	}
	return s / float64(len(hist)), true
}

// WindowMean predicts the mean of the last W measurements.
type WindowMean struct{ W int }

// Name implements Forecaster.
func (f WindowMean) Name() string { return fmt.Sprintf("mean-%d", f.W) }

// Predict implements Forecaster.
func (f WindowMean) Predict(hist []float64) (float64, bool) {
	if f.W <= 0 || len(hist) < f.W {
		return 0, false
	}
	var s float64
	for _, x := range hist[len(hist)-f.W:] {
		s += x
	}
	return s / float64(f.W), true
}

// WindowMedian predicts the median of the last W measurements — robust to
// the spikes in long-tailed histories.
type WindowMedian struct{ W int }

// Name implements Forecaster.
func (f WindowMedian) Name() string { return fmt.Sprintf("median-%d", f.W) }

// Predict implements Forecaster.
func (f WindowMedian) Predict(hist []float64) (float64, bool) {
	if f.W <= 0 || len(hist) < f.W {
		return 0, false
	}
	w := append([]float64(nil), hist[len(hist)-f.W:]...)
	sort.Float64s(w)
	n := len(w)
	if n%2 == 1 {
		return w[n/2], true
	}
	return (w[n/2-1] + w[n/2]) / 2, true
}

// ExpSmoothing predicts with exponential smoothing at gain Alpha in (0,1].
type ExpSmoothing struct{ Alpha float64 }

// Name implements Forecaster.
func (f ExpSmoothing) Name() string { return fmt.Sprintf("exp-%.2f", f.Alpha) }

// Predict implements Forecaster.
func (f ExpSmoothing) Predict(hist []float64) (float64, bool) {
	if len(hist) == 0 || f.Alpha <= 0 || f.Alpha > 1 {
		return 0, false
	}
	s := hist[0]
	for _, x := range hist[1:] {
		s = f.Alpha*x + (1-f.Alpha)*s
	}
	return s, true
}

// DefaultBattery returns the NWS-style mixture-of-experts forecaster set:
// last value, running mean, sliding means and medians at several widths,
// and exponential smoothing at several gains.
func DefaultBattery() []Forecaster {
	return []Forecaster{
		LastValue{},
		RunningMean{},
		WindowMean{W: 5}, WindowMean{W: 10}, WindowMean{W: 30},
		WindowMedian{W: 5}, WindowMedian{W: 15},
		ExpSmoothing{Alpha: 0.1}, ExpSmoothing{Alpha: 0.3}, ExpSmoothing{Alpha: 0.6},
	}
}

// minConservativeRMSE floors every no-postmortem conservative error
// estimate: without it a degenerate constant history (e.g. all zeros)
// produces a ±0 "stochastic" interval that can never capture anything.
const minConservativeRMSE = 1e-6

// Forecast is one NWS report: the best forecaster's prediction and the
// error estimate derived from its postmortem RMSE.
type Forecast struct {
	Value float64
	RMSE  float64
	Best  string // name of the winning forecaster
}

// Stochastic renders the forecast as a stochastic value: Value ± 2·RMSE.
func (f Forecast) Stochastic() stochastic.Value {
	return stochastic.FromMeanSigma(f.Value, f.RMSE)
}

// Mix is the mixture-of-experts selector: it scores every forecaster by
// cumulative squared postmortem error and forecasts with the current best.
// Not safe for concurrent use.
type Mix struct {
	forecasters []Forecaster
	sqErr       []float64
	n           []int
}

// NewMix builds a Mix over the given forecasters (DefaultBattery() if nil).
func NewMix(fs []Forecaster) *Mix {
	if len(fs) == 0 {
		fs = DefaultBattery()
	}
	return &Mix{
		forecasters: fs,
		sqErr:       make([]float64, len(fs)),
		n:           make([]int, len(fs)),
	}
}

// Update performs one postmortem round: every forecaster predicts from
// hist, and its squared error against the actual next measurement is
// accumulated.
func (m *Mix) Update(hist []float64, actual float64) {
	for i, f := range m.forecasters {
		v, ok := f.Predict(hist)
		if !ok {
			continue
		}
		d := v - actual
		m.sqErr[i] += d * d
		m.n[i]++
	}
}

// Forecast predicts the next measurement from hist using the forecaster
// with the lowest postmortem RMSE (ties and unscored forecasters resolve in
// battery order, preferring scored ones). It fails when no forecaster can
// predict from the history.
func (m *Mix) Forecast(hist []float64) (Forecast, error) {
	bestIdx := -1
	bestRMSE := math.Inf(1)
	bestVal := 0.0
	for i, f := range m.forecasters {
		v, ok := f.Predict(hist)
		if !ok {
			continue
		}
		rmse := math.Inf(1)
		if m.n[i] > 0 {
			rmse = math.Sqrt(m.sqErr[i] / float64(m.n[i]))
		}
		if bestIdx == -1 || rmse < bestRMSE {
			bestIdx, bestRMSE, bestVal = i, rmse, v
		}
	}
	if bestIdx == -1 {
		return Forecast{}, errors.New("nws: no forecaster can predict from this history")
	}
	if math.IsInf(bestRMSE, 1) {
		// No postmortem data yet: report a large conservative error of half
		// the history range (or the value itself when degenerate), floored
		// at a small epsilon so a constant — in particular all-zero —
		// history still yields a non-degenerate ±2·RMSE interval.
		lo, hi := hist[0], hist[0]
		for _, x := range hist {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		bestRMSE = (hi - lo) / 2
		if bestRMSE == 0 {
			bestRMSE = math.Abs(bestVal) * 0.5
		}
		if bestRMSE < minConservativeRMSE {
			bestRMSE = minConservativeRMSE
		}
	}
	return Forecast{Value: bestVal, RMSE: bestRMSE, Best: m.forecasters[bestIdx].Name()}, nil
}

// RMSEs reports each forecaster's name and current postmortem RMSE (NaN
// when unscored), for diagnostics and the forecaster ablation.
func (m *Mix) RMSEs() map[string]float64 {
	out := make(map[string]float64, len(m.forecasters))
	for i, f := range m.forecasters {
		if m.n[i] == 0 {
			out[f.Name()] = math.NaN()
			continue
		}
		out[f.Name()] = math.Sqrt(m.sqErr[i] / float64(m.n[i]))
	}
	return out
}
