package nws

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"prodpred/internal/stochastic"
)

// failAt returns a sensor over base that fails with the given error at
// exactly the listed tick times.
func failAt(base Sensor, failErr error, times ...float64) Sensor {
	return func(t float64) (float64, error) {
		for _, ft := range times {
			if t == ft {
				return 0, failErr
			}
		}
		return base(t)
	}
}

func steadySensor(v float64) Sensor {
	return func(float64) (float64, error) { return v, nil }
}

func TestMonitorSkipsDroppedSamples(t *testing.T) {
	s := failAt(steadySensor(0.5), ErrSampleDropped, 10, 15, 40)
	m, err := NewSensorMonitor(s, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(100); err != nil {
		t.Fatalf("dropped samples must not abort: %v", err)
	}
	g := m.Gaps()
	if g.Dropped != 3 || g.Missed != 3 {
		t.Errorf("Dropped=%d Missed=%d want 3/3", g.Dropped, g.Missed)
	}
	if g.LongestGap != 2 { // t=10 and t=15 are consecutive ticks
		t.Errorf("LongestGap=%d want 2", g.LongestGap)
	}
	if m.Len() != 21-3 {
		t.Errorf("Len=%d want 18 (21 ticks minus 3 drops)", m.Len())
	}
	if g.Clean != 18 || g.Recorded() != 18 || g.Scheduled() != 21 {
		t.Errorf("Clean=%d Recorded=%d Scheduled=%d want 18/18/21",
			g.Clean, g.Recorded(), g.Scheduled())
	}
}

func TestMonitorOutageCountersExact(t *testing.T) {
	// Outage window [100, 200): ticks 100,105,...,195 -> exactly 20 misses.
	s := func(t float64) (float64, error) {
		if t >= 100 && t < 200 {
			return 0, fmt.Errorf("blackout: %w", ErrOutage)
		}
		return 0.5, nil
	}
	m, err := NewSensorMonitor(s, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(500); err != nil {
		t.Fatalf("outage must not abort: %v", err)
	}
	g := m.Gaps()
	if g.Outage != 20 || g.Missed != 20 || g.Dropped != 0 {
		t.Errorf("Outage=%d Missed=%d Dropped=%d want 20/20/0", g.Outage, g.Missed, g.Dropped)
	}
	if g.LongestGap != 20 {
		t.Errorf("LongestGap=%d want 20", g.LongestGap)
	}
	if m.Len() != 101-20 {
		t.Errorf("Len=%d want 81", m.Len())
	}
}

func TestMonitorIntervalWidensMonotonicallyWithStaleness(t *testing.T) {
	// A wandering (but deterministic) signal, so the mix carries a real
	// postmortem RMSE for the degradation factor to widen.
	s := func(t float64) (float64, error) {
		if t >= 100 && t < 200 {
			return 0, ErrOutage
		}
		return 0.5 + 0.2*math.Sin(t/30), nil
	}
	m, err := NewSensorMonitor(s, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(95); err != nil {
		t.Fatal(err)
	}
	base, err := m.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if m.Staleness() != 0 {
		t.Fatalf("healthy stream staleness=%g want 0", m.Staleness())
	}
	// During the outage the spread must grow with every missed tick.
	prev := base.Stochastic().Spread
	for tick := 100.0; tick < 200; tick += 5 {
		if err := m.RunUntil(tick); err != nil {
			t.Fatal(err)
		}
		f, err := m.Forecast()
		if err != nil {
			t.Fatal(err)
		}
		sp := f.Stochastic().Spread
		if sp <= prev {
			t.Fatalf("t=%g spread %g did not widen (prev %g)", tick, sp, prev)
		}
		prev = sp
	}
	if m.Staleness() != 20 {
		t.Errorf("staleness after 20 missed ticks = %g want 20", m.Staleness())
	}
	// Recovery: staleness decays one period per good sample, reaching
	// normal confidence after the history refills.
	if err := m.RunUntil(295); err != nil {
		t.Fatal(err)
	}
	if m.Staleness() != 0 {
		t.Errorf("staleness after refill = %g want 0", m.Staleness())
	}
	f, err := m.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if f.Stochastic().Spread >= prev {
		t.Errorf("spread %g did not recover below outage peak %g", f.Stochastic().Spread, prev)
	}
}

func TestMonitorRetriesTransientErrors(t *testing.T) {
	// The sensor glitches at exact tick times but serves backoff offsets.
	glitchTicks := map[float64]bool{20: true, 45: true}
	calls := 0
	s := func(t float64) (float64, error) {
		calls++
		if glitchTicks[t] {
			return 0, Transient(errors.New("busy collector"))
		}
		return 0.42, nil
	}
	m, err := NewSensorMonitor(s, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(100); err != nil {
		t.Fatalf("transient errors must not abort: %v", err)
	}
	g := m.Gaps()
	if g.Retries != 2 || g.Recovered != 2 {
		t.Errorf("Retries=%d Recovered=%d want 2/2 (one retry per glitch)", g.Retries, g.Recovered)
	}
	if g.Missed != 0 {
		t.Errorf("Missed=%d want 0 — retries recovered every tick", g.Missed)
	}
	if m.Len() != 21 {
		t.Errorf("Len=%d want 21", m.Len())
	}
}

func TestMonitorTransientExhaustionBecomesGap(t *testing.T) {
	s := func(t float64) (float64, error) {
		if t >= 50 && t < 60 { // covers tick 50 and 55 plus all their retries
			return 0, Transient(errors.New("persistent glitch"))
		}
		return 0.5, nil
	}
	m, err := NewSensorMonitor(s, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(100); err != nil {
		t.Fatalf("exhausted retries must not abort: %v", err)
	}
	g := m.Gaps()
	if g.TransientLost != 2 || g.Missed != 2 {
		t.Errorf("TransientLost=%d Missed=%d want 2/2", g.TransientLost, g.Missed)
	}
	if g.Retries != 2*3 {
		t.Errorf("Retries=%d want 6 (maxRetries per lost tick)", g.Retries)
	}
}

func TestMonitorUnclassifiedSensorErrorRecorded(t *testing.T) {
	s := failAt(steadySensor(0.5), errors.New("disk on fire"), 25)
	m, err := NewSensorMonitor(s, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(100); err != nil {
		t.Fatalf("unclassified errors must not abort: %v", err)
	}
	g := m.Gaps()
	if g.SensorErrors != 1 || g.Missed != 1 {
		t.Errorf("SensorErrors=%d Missed=%d want 1/1", g.SensorErrors, g.Missed)
	}
}

func TestMonitorBitIdenticalWithSameSeed(t *testing.T) {
	// Two independently built environments and monitors with the same seed
	// must produce identical histories, counters, and reports.
	build := func() *Monitor {
		env := platform1Env(t, 77)
		m, err := NewCPUMonitor(env, 0, 5, 200)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	for _, tt := range []float64{100, 500, 1000} {
		va := a.RobustReport(tt, stochastic.New(0.5, 0.5))
		vb := b.RobustReport(tt, stochastic.New(0.5, 0.5))
		if va != vb {
			t.Fatalf("t=%g reports differ: %v vs %v", tt, va, vb)
		}
	}
	ha, hb := a.History(), b.History()
	if len(ha) != len(hb) {
		t.Fatalf("history lengths differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("history diverges at %d: %g vs %g", i, ha[i], hb[i])
		}
	}
	if a.Gaps() != b.Gaps() {
		t.Fatalf("gap stats differ: %+v vs %+v", a.Gaps(), b.Gaps())
	}
}

func TestRobustReportFallsBackToPrior(t *testing.T) {
	s := func(float64) (float64, error) { return 0, ErrSampleDropped }
	m, err := NewSensorMonitor(s, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	prior := stochastic.New(0.5, 0.5)
	got := m.RobustReport(200, prior)
	if got != prior {
		t.Errorf("empty history should return the prior: got %v", got)
	}
	if m.Gaps().Dropped != 41 {
		t.Errorf("Dropped=%d want 41", m.Gaps().Dropped)
	}
}

func TestRobustReportStaleFallsBackToRunningMean(t *testing.T) {
	// Healthy until t=100, dark forever after: staleness blows past the
	// trust limit and the report must switch to the running-mean fallback.
	s := func(t float64) (float64, error) {
		if t > 100 {
			return 0, ErrOutage
		}
		return 0.6, nil
	}
	m, err := NewSensorMonitor(s, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	prior := stochastic.New(0.5, 0.5)
	fresh := m.RobustReport(100, prior)
	stale := m.RobustReport(400, prior)
	if math.Abs(stale.Mean-0.6) > 1e-9 {
		t.Errorf("stale mean=%g want running mean 0.6", stale.Mean)
	}
	if stale.Spread <= fresh.Spread {
		t.Errorf("stale spread %g should exceed fresh spread %g", stale.Spread, fresh.Spread)
	}
	if stale == prior {
		t.Error("history exists; prior should not be used")
	}
}
