package nws

import (
	"math"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/simenv"
)

func platform1Env(t *testing.T, seed int64) *simenv.Env {
	t.Helper()
	p := cluster.Platform1()
	proc, err := load.Platform1CenterMode(seed)
	if err != nil {
		t.Fatal(err)
	}
	ded := load.Dedicated()
	env, err := simenv.New(p, []load.Process{proc, ded, ded, ded}, ded)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewCPUMonitorValidation(t *testing.T) {
	env := platform1Env(t, 1)
	if _, err := NewCPUMonitor(nil, 0, 5, 10); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := NewCPUMonitor(env, 9, 5, 10); err == nil {
		t.Error("bad machine should fail")
	}
	if _, err := NewCPUMonitor(env, 0, 0, 10); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := NewCPUMonitor(env, 0, 5, 0); err == nil {
		t.Error("zero history should fail")
	}
}

func TestMonitorRunUntilCadence(t *testing.T) {
	env := platform1Env(t, 2)
	m, err := NewCPUMonitor(env, 0, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(24); err != nil {
		t.Fatal(err)
	}
	// Measurements at t=0,5,10,15,20 -> 5 samples.
	if m.Len() != 5 {
		t.Errorf("Len=%d want 5", m.Len())
	}
	// Idempotent.
	if err := m.RunUntil(24); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 5 {
		t.Errorf("re-run Len=%d want 5", m.Len())
	}
	if err := m.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 6 {
		t.Errorf("after t=25 Len=%d want 6", m.Len())
	}
	last, ok := m.Last()
	if !ok || last.T != 25 {
		t.Errorf("Last=%+v,%v", last, ok)
	}
	if m.Period() != 5 {
		t.Errorf("Period=%g", m.Period())
	}
}

func TestMonitorForecastTracksLoad(t *testing.T) {
	env := platform1Env(t, 3)
	m, err := NewCPUMonitor(env, 0, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Report(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Center mode is 0.48 ± 0.05; the forecast must land in that vicinity
	// and carry a usable non-zero spread.
	if math.Abs(v.Mean-0.48) > 0.06 {
		t.Errorf("forecast mean=%g want ~0.48", v.Mean)
	}
	if v.Spread <= 0 || v.Spread > 0.3 {
		t.Errorf("forecast spread=%g", v.Spread)
	}
}

func TestMonitorForecastBeforeMeasurements(t *testing.T) {
	env := platform1Env(t, 4)
	m, _ := NewCPUMonitor(env, 0, 5, 10)
	if _, err := m.Forecast(); err == nil {
		t.Error("forecast with no data should fail")
	}
}

func TestMonitorHistoryBounded(t *testing.T) {
	env := platform1Env(t, 5)
	m, _ := NewCPUMonitor(env, 0, 5, 10)
	if err := m.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 10 {
		t.Errorf("history len=%d want bounded at 10", m.Len())
	}
	if len(m.History()) != 10 {
		t.Errorf("History len=%d", len(m.History()))
	}
}

func TestBandwidthMonitor(t *testing.T) {
	p := cluster.Platform1()
	ded := load.Dedicated()
	contention, err := load.EthernetContention(6)
	if err != nil {
		t.Fatal(err)
	}
	env, err := simenv.New(p, []load.Process{ded, ded, ded, ded}, contention)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewBandwidthMonitor(env, 0, 1, 12500, 5, 500)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Report(5000)
	if err != nil {
		t.Fatal(err)
	}
	// ~5.25 Mbit/s = 656 kB/s mean achieved bandwidth.
	if v.Mean < 5e5 || v.Mean > 7.5e5 {
		t.Errorf("bandwidth forecast=%g B/s want ~6.5e5", v.Mean)
	}
	if v.Spread <= 0 {
		t.Errorf("spread=%g", v.Spread)
	}
}

func TestBandwidthMonitorValidation(t *testing.T) {
	env := platform1Env(t, 7)
	if _, err := NewBandwidthMonitor(nil, 0, 1, 100, 5, 10); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := NewBandwidthMonitor(env, 0, 0, 100, 5, 10); err == nil {
		t.Error("self link should fail")
	}
	if _, err := NewBandwidthMonitor(env, 0, 1, 0, 5, 10); err == nil {
		t.Error("zero probe should fail")
	}
}

func TestMonitorMixImproves(t *testing.T) {
	// After enough postmortems, the winning forecaster's RMSE should be
	// small relative to the load sigma (0.025) — NWS forecasting beats the
	// naive half-range fallback.
	env := platform1Env(t, 8)
	m, _ := NewCPUMonitor(env, 0, 5, 500)
	if err := m.RunUntil(5000); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if f.RMSE > 0.05 {
		t.Errorf("RMSE=%g want < 0.05 (mix=%v)", f.RMSE, m.Mix().RMSEs())
	}
	if f.Best == "" {
		t.Error("no winner recorded")
	}
}
