package nws

import (
	"math"
	"testing"

	"prodpred/internal/stochastic"
)

// fourModal switches pseudo-randomly between four well-separated modes
// with small within-mode wobble — the shape of the bursty paper platform,
// where the *switch times* are unpredictable (a periodic series would be
// trackable and the point forecaster would rightly win).
func fourModal(n int) []float64 { return fourModalRate(n, 8) }

// fourModalRate switches modes with probability ratePct/100 per tick.
func fourModalRate(n, ratePct int) []float64 {
	modes := []float64{0.12, 0.35, 0.62, 0.90}
	out := make([]float64, n)
	x := uint64(0x9E3779B97F4A7C15)
	mode := 0
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		if (x>>33)%100 < uint64(ratePct) {
			mode = int((x >> 40) % 4)
		}
		out[i] = modes[mode] + 0.01*math.Sin(float64(i)*1.7)
	}
	return out
}

func TestTournamentPrefersDistributionOnMultimodal(t *testing.T) {
	mix := NewMix(nil)
	tour := NewTournament(mix)
	series := fourModal(400)
	for i := 1; i < len(series); i++ {
		hist := series[:i]
		tour.Update(hist, series[i])
		mix.Update(hist, series[i])
	}
	_, name := tour.Winner()
	if name == NormalForecasterName {
		t.Fatalf("tournament still prefers %q on a 4-modal series; scores %v", name, tour.Scores())
	}
	scores := tour.Scores()
	if !(scores[name] < scores[NormalForecasterName]) {
		t.Fatalf("winner %q score %v not below normal %v", name, scores[name], scores[NormalForecasterName])
	}
	var total int64
	for _, w := range tour.Wins() {
		total += w
	}
	if total == 0 {
		t.Fatal("no tournament rounds recorded")
	}
}

func TestTournamentQuantilesMonotoneAndCalibratedShape(t *testing.T) {
	mix := NewMix(nil)
	tour := NewTournament(mix)
	// Fast switching (dwell ≈ 4 ticks) so every EM fit window covers all
	// four modes.
	series := fourModalRate(300, 25)
	for i := 1; i < len(series); i++ {
		tour.Update(series[:i], series[i])
		mix.Update(series[:i], series[i])
	}
	winner, name := tour.Winner()
	qf, ok := winner.QuantileFn(series)
	if !ok {
		t.Fatalf("winner %q cannot predict", name)
	}
	prev := math.Inf(-1)
	for _, p := range DistLevels {
		q := qf(p)
		if q < prev {
			t.Fatalf("quantile curve not monotone at p=%g: %g < %g", p, q, prev)
		}
		prev = q
	}
	// The 4 modes span [0.12, 0.90]; the unconditional mixture
	// competitor's 95% band must cover most of that range.
	var mf DistForecaster
	for _, f := range tour.forecasters {
		if f.Name() == MixtureForecasterName {
			mf = f
		}
	}
	mqf, ok := mf.QuantileFn(series)
	if !ok {
		t.Fatal("mixture competitor cannot predict after 300 rounds")
	}
	if lo, hi := mqf(0.025), mqf(0.975); lo > 0.2 || hi < 0.8 {
		t.Fatalf("mixture 95%% band [%g, %g] misses the mode range", lo, hi)
	}
}

func TestTournamentStateRoundTrip(t *testing.T) {
	mix := NewMix(nil)
	tour := NewTournament(mix)
	series := fourModal(200)
	for i := 1; i < len(series); i++ {
		tour.Update(series[:i], series[i])
		mix.Update(series[:i], series[i])
	}
	st := tour.ExportState()

	mix2 := NewMix(nil)
	tour2 := NewTournament(mix2)
	if err := tour2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	copy(mix2.sqErr, mix.sqErr)
	copy(mix2.n, mix.n)
	// Both tournaments must agree on the winner and score identically on
	// further rounds.
	for i := len(series) - 50; i < len(series); i++ {
		tour.Update(series[:i], series[i])
		tour2.Update(series[:i], series[i])
	}
	_, n1 := tour.Winner()
	_, n2 := tour2.Winner()
	if n1 != n2 {
		t.Fatalf("restored tournament winner %q != original %q", n2, n1)
	}
	s1, s2 := tour.Scores(), tour2.Scores()
	for k, v := range s1 {
		if v2 := s2[k]; v != v2 && !(math.IsNaN(v) && math.IsNaN(v2)) {
			t.Fatalf("restored score %q = %v, want %v", k, v2, v)
		}
	}
}

func TestTournamentImportZeroStateResets(t *testing.T) {
	mix := NewMix(nil)
	tour := NewTournament(mix)
	series := fourModal(200)
	for i := 1; i < len(series); i++ {
		tour.Update(series[:i], series[i])
	}
	if err := tour.ImportState(TournamentState{}); err != nil {
		t.Fatal(err)
	}
	if _, name := tour.Winner(); name != NormalForecasterName {
		t.Fatalf("reset tournament winner = %q, want incumbent %q", name, NormalForecasterName)
	}
	for _, s := range tour.Scores() {
		if !math.IsNaN(s) {
			t.Fatalf("reset tournament still scored: %v", tour.Scores())
		}
	}
}

func TestTournamentImportRejectsSizeMismatch(t *testing.T) {
	tour := NewTournament(NewMix(nil))
	err := tour.ImportState(TournamentState{Loss: []float64{1}, Weight: []float64{1}, Wins: []int64{1}})
	if err == nil {
		t.Fatal("size-mismatched tournament state accepted")
	}
}

func TestRobustDistReportFallbackChain(t *testing.T) {
	// No history at all: the prior, tagged as such.
	m, err := NewSensorMonitor(func(t float64) (float64, error) { return 0, ErrSampleDropped }, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	prior := stochastic.New(0.5, 0.5)
	ld := m.RobustDistReport(10, prior)
	if ld.Forecaster != PriorForecasterName {
		t.Fatalf("no-history report tagged %q, want %q", ld.Forecaster, PriorForecasterName)
	}
	if med := ld.Quantiles[DistLevelIndex(0.5)]; math.Abs(med-0.5) > 1e-9 {
		t.Fatalf("prior median %g, want 0.5", med)
	}
	if len(ld.Quantiles) != len(DistLevels) {
		t.Fatalf("report has %d quantiles, want %d", len(ld.Quantiles), len(DistLevels))
	}

	// Short healthy history: the incumbent normal forecaster serves.
	healthy, err := NewSensorMonitor(func(t float64) (float64, error) { return 0.4, nil }, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	ld = healthy.RobustDistReport(20, prior)
	if ld.Forecaster != NormalForecasterName {
		t.Fatalf("healthy report tagged %q, want %q", ld.Forecaster, NormalForecasterName)
	}
	if len(ld.Components) != 1 {
		t.Fatalf("normal report has %d components, want 1", len(ld.Components))
	}

	// Staleness beyond the limit: running-mean fallback, widened.
	stale := 0
	flaky, err := NewSensorMonitor(func(ts float64) (float64, error) {
		if stale > 0 {
			return 0, ErrSampleDropped
		}
		return 0.4, nil
	}, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	_ = flaky.RunUntil(20)
	stale = 1
	ld = flaky.RobustDistReport(40, prior)
	if ld.Forecaster != FallbackForecasterName {
		t.Fatalf("stale report tagged %q, want %q", ld.Forecaster, FallbackForecasterName)
	}
}

func TestRobustDistReportWidensWithStaleness(t *testing.T) {
	stale := false
	m, err := NewSensorMonitor(func(ts float64) (float64, error) {
		if stale {
			return 0, ErrSampleDropped
		}
		return 0.4 + 0.05*math.Sin(ts), nil
	}, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	prior := stochastic.New(0.5, 0.5)
	fresh := m.RobustDistReport(60, prior)
	stale = true
	// A few missed samples keep staleness under the fallback limit but
	// must widen the reported band.
	degraded := m.RobustDistReport(64, prior)
	if degraded.Forecaster != fresh.Forecaster {
		t.Fatalf("tag changed under mild staleness: %q -> %q", fresh.Forecaster, degraded.Forecaster)
	}
	fw := fresh.Quantiles[len(fresh.Quantiles)-1] - fresh.Quantiles[0]
	dw := degraded.Quantiles[len(degraded.Quantiles)-1] - degraded.Quantiles[0]
	if !(dw > fw) {
		t.Fatalf("stale band %g not wider than fresh %g", dw, fw)
	}
}

func TestGridQuantileInterpolates(t *testing.T) {
	grid := make([]float64, len(DistLevels))
	for i, p := range DistLevels {
		grid[i] = 10 * p // identity-ish curve
	}
	for _, p := range []float64{0.025, 0.3, 0.5, 0.61, 0.975} {
		got := gridQuantile(grid, p)
		if math.Abs(got-10*p) > 1e-9 {
			t.Fatalf("gridQuantile(%g) = %g, want %g", p, got, 10*p)
		}
	}
	if got := gridQuantile(grid, 0.001); got != grid[0] {
		t.Fatalf("below-grid quantile %g, want clamp to %g", got, grid[0])
	}
	if got := gridQuantile(grid, 0.999); got != grid[len(grid)-1] {
		t.Fatalf("above-grid quantile %g, want clamp to %g", got, grid[len(grid)-1])
	}
}

func TestPinballLoss(t *testing.T) {
	if got := pinball(0.9, 1.0, 2.0); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("pinball under-prediction = %g, want 0.9", got)
	}
	if got := pinball(0.9, 2.0, 1.0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("pinball over-prediction = %g, want 0.1", got)
	}
	if got := pinball(0.5, 1.0, 1.0); got != 0 {
		t.Fatalf("pinball exact = %g, want 0", got)
	}
}
