package workload

import "sort"

// The shipped scenario library. Each scenario compresses production time:
// a "day" is a few hundred virtual seconds, so diurnal structure, flash
// crowds, and regime cascades all land inside the horizons the experiments
// and loadtests actually run. All ticks are exact binary floats so that
// recorded traces replay bit-identically (see TraceProcess).
var library = map[string]*ScenarioSpec{
	// diurnal-web: a web fleet breathing with its audience — a slow
	// daily cycle plus a sharper lunchtime harmonic, modulated by
	// session-level AR(1) jitter. Machines are phase-staggered the way
	// geographically split clusters are.
	"diurnal-web": {
		Version: SpecVersion,
		Name:    "diurnal-web",
		DT:      1,
		Machines: []ComponentSpec{
			diurnalWebMachine(0),
			diurnalWebMachine(1.6),
			diurnalWebMachine(3.1),
			diurnalWebMachine(4.7),
		},
		Net: &ComponentSpec{Kind: "preset", Preset: "ethernet-contention"},
	},

	// flash-crowd: quiet machines hit by a recurring stampede — a sharp
	// linear onset, exponential cool-down, recurring every 900 virtual
	// seconds with onsets staggered across machines (a rolling page-push).
	"flash-crowd": {
		Version: SpecVersion,
		Name:    "flash-crowd",
		DT:      1,
		Machines: []ComponentSpec{
			{Kind: "flash-crowd", Users: 0.4, Crowd: 5, Onset: 240, Ramp: 45, Decay: 150, Repeat: 900},
			{Kind: "flash-crowd", Users: 0.6, Crowd: 7, Onset: 420, Ramp: 30, Decay: 180, Repeat: 900},
			{Kind: "flash-crowd", Users: 0.3, Crowd: 4, Onset: 600, Ramp: 60, Decay: 120, Repeat: 900},
			{Kind: "flash-crowd", Users: 0.5, Crowd: 6, Onset: 330, Ramp: 40, Decay: 160, Repeat: 900},
		},
		Net: &ComponentSpec{Kind: "preset", Preset: "ethernet-contention"},
	},

	// heavy-tail-batch: batch machines whose availability clusters near a
	// ceiling with long-tailed congestion drops (the Figure 3 shape,
	// pushed harder), one machine strictly two-regime congested.
	"heavy-tail-batch": {
		Version: SpecVersion,
		Name:    "heavy-tail-batch",
		DT:      1,
		Machines: []ComponentSpec{
			{Kind: "heavy-tail", Peak: 0.85, DropMean: 0.12, DropStd: 0.10},
			{Kind: "congested", Peak: 0.80, DropMean: 0.08, DropStd: 0.03, BurstProb: 0.12, BurstMean: 0.45, BurstStd: 0.08},
			{Kind: "heavy-tail", Peak: 0.90, DropMean: 0.18, DropStd: 0.15},
			{Kind: "congested", Peak: 0.75, DropMean: 0.06, DropStd: 0.02, BurstProb: 0.08, BurstMean: 0.40, BurstStd: 0.06},
		},
		Net: &ComponentSpec{
			Kind: "congested",
			Peak: 0.62, DropMean: 0.08, DropStd: 0.025,
			BurstProb: 0.18, BurstMean: 0.30, BurstStd: 0.05,
		},
	},

	// cohort-mix: three user populations per machine — office workers on
	// the day cycle, an international cohort half a day out of phase, and
	// an overnight batch crew that ramps in late — all sharing the CPU.
	"cohort-mix": {
		Version: SpecVersion,
		Name:    "cohort-mix",
		DT:      1,
		Machines: []ComponentSpec{
			cohortMixMachine(0),
			cohortMixMachine(1.5),
			cohortMixMachine(3.0),
			cohortMixMachine(4.5),
		},
		Net: &ComponentSpec{Kind: "preset", Preset: "ethernet-contention"},
	},

	// regime-cascade: machines that change character mid-run — steady
	// center-mode, then a flash crowd, then bursty four-mode switching —
	// the drift detector's nightmare schedule, staggered per machine.
	"regime-cascade": {
		Version: SpecVersion,
		Name:    "regime-cascade",
		DT:      1,
		Machines: []ComponentSpec{
			cascadeMachine(500, 1100),
			cascadeMachine(650, 1250),
			cascadeMachine(800, 1400),
			cascadeMachine(950, 1550),
		},
		Net: &ComponentSpec{Kind: "preset", Preset: "ethernet-contention"},
	},

	// quiet-baseline: lightly loaded machines with a faint diurnal
	// breath and a gentle clamp keeping availability high — the control
	// scenario every other one is judged against.
	"quiet-baseline": {
		Version: SpecVersion,
		Name:    "quiet-baseline",
		DT:      1,
		Machines: []ComponentSpec{
			quietMachine(0),
			quietMachine(0.9),
			quietMachine(1.8),
			quietMachine(2.7),
		},
	},
}

// diurnalWebMachine is one phase-staggered diurnal-web component: a daily
// cycle (period 720 s compressed) and a lunch harmonic (period 240 s),
// modulated by single-mode jitter.
func diurnalWebMachine(phase float64) ComponentSpec {
	return ComponentSpec{
		Kind: "modulate",
		Children: []ComponentSpec{
			{
				Kind: "diurnal",
				Base: 0.62,
				Cycles: []Cycle{
					{Period: 720, Amp: 0.25, Phase: phase},
					{Period: 240, Amp: 0.08, Phase: phase * 1.3},
				},
			},
			{Kind: "single-mode", Mean: 0.92, Sigma: 0.03, Phi: 0.85},
		},
	}
}

// cohortMixMachine is one cohort-mix component with the phase shifting the
// office and international populations' day cycles.
func cohortMixMachine(phase float64) ComponentSpec {
	return ComponentSpec{
		Kind: "cohorts",
		Cohorts: []Cohort{
			{Lambda: 0.030, Mu: 0.020, Period: 720, Swing: 0.8, Phase: phase},             // office workers
			{Lambda: 0.020, Mu: 0.015, Period: 720, Swing: 0.8, Phase: phase + 3.14159},   // international, half a day out
			{Lambda: 0.012, Mu: 0.010, Start: 400, Period: 720, Swing: 0.4, Phase: phase}, // overnight batch ramp
		},
	}
}

// cascadeMachine is one regime-cascade component: steady until t1, a flash
// crowd regime until t2, bursty four-mode switching after.
func cascadeMachine(t1, t2 float64) ComponentSpec {
	return ComponentSpec{
		Kind: "switch",
		At:   []float64{t1, t2},
		Children: []ComponentSpec{
			{Kind: "preset", Preset: "platform1-center"},
			{Kind: "flash-crowd", Users: 0.5, Crowd: 6, Onset: t1, Ramp: 40, Decay: 180},
			{Kind: "preset", Preset: "platform2-bursty"},
		},
	}
}

// quietMachine is one quiet-baseline component: light load with a faint
// diurnal breath, clamped to stay comfortably available.
func quietMachine(phase float64) ComponentSpec {
	return ComponentSpec{
		Kind: "clamp",
		Lo:   0.55,
		Hi:   0.99,
		Children: []ComponentSpec{
			{
				Kind: "modulate",
				Children: []ComponentSpec{
					{Kind: "diurnal", Base: 0.97, Cycles: []Cycle{{Period: 600, Amp: 0.05, Phase: phase}}},
					{Kind: "preset", Preset: "light"},
				},
			},
		},
	}
}

// Lookup returns the named library scenario (a deep copy, so callers can
// mutate freely) and whether it exists.
func Lookup(name string) (*ScenarioSpec, bool) {
	sc, ok := library[name]
	if !ok {
		return nil, false
	}
	return sc.Clone(), true
}

// Names lists the library scenarios in sorted order.
func Names() []string {
	out := make([]string, 0, len(library))
	for name := range library {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
