package workload

import (
	"strings"
	"testing"
)

func TestParseScenarioValid(t *testing.T) {
	js := `{
		"version": 1,
		"name": "two-tier",
		"dt": 1,
		"machines": [
			{"kind": "sum", "weights": [0.5, 0.5], "children": [
				{"kind": "diurnal", "base": 0.6, "cycles": [{"period": 300, "amp": 0.2}]},
				{"kind": "single-mode", "mean": 0.8, "sigma": 0.05, "phi": 0.9}
			]},
			{"kind": "flash-crowd", "users": 1, "crowd": 5, "onset": 60, "ramp": 20, "decay": 80}
		],
		"net": {"kind": "preset", "preset": "ethernet-contention"}
	}`
	sc, err := ParseScenario([]byte(js))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sc.Name != "two-tier" || len(sc.Machines) != 2 {
		t.Fatalf("unexpected spec: %+v", sc)
	}
	p, err := sc.Machine(0, 42)
	if err != nil {
		t.Fatalf("machine 0: %v", err)
	}
	for tt := 0.0; tt < 100; tt++ {
		if v := p.At(tt); v < 0 || v > 1 {
			t.Fatalf("availability %g outside [0,1] at t=%g", v, tt)
		}
	}
	np, err := sc.NetProcess(7)
	if err != nil || np == nil {
		t.Fatalf("net: %v %v", np, err)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"version":1,"name":"x","bogus":1,"machines":[{"kind":"constant","level":0.5}]}`,
		"bad version":     `{"version":9,"name":"x","machines":[{"kind":"constant","level":0.5}]}`,
		"no name":         `{"version":1,"machines":[{"kind":"constant","level":0.5}]}`,
		"no machines":     `{"version":1,"name":"x","machines":[]}`,
		"missing kind":    `{"version":1,"name":"x","machines":[{"level":0.5}]}`,
		"unknown kind":    `{"version":1,"name":"x","machines":[{"kind":"wat"}]}`,
		"unknown preset":  `{"version":1,"name":"x","machines":[{"kind":"preset","preset":"wat"}]}`,
		"sum arity":       `{"version":1,"name":"x","machines":[{"kind":"sum","children":[{"kind":"constant","level":0.5}]}]}`,
		"weight mismatch": `{"version":1,"name":"x","machines":[{"kind":"sum","weights":[1],"children":[{"kind":"constant","level":0.5},{"kind":"constant","level":0.4}]}]}`,
		"clamp bounds":    `{"version":1,"name":"x","machines":[{"kind":"clamp","lo":0.9,"hi":0.2,"children":[{"kind":"constant","level":0.5}]}]}`,
		"switch bounds":   `{"version":1,"name":"x","machines":[{"kind":"switch","at":[200,100],"children":[{"kind":"constant","level":0.5},{"kind":"constant","level":0.4},{"kind":"constant","level":0.3}]}]}`,
		"switch arity":    `{"version":1,"name":"x","machines":[{"kind":"switch","at":[100],"children":[{"kind":"constant","level":0.5}]}]}`,
		"flash params":    `{"version":1,"name":"x","machines":[{"kind":"flash-crowd","users":1,"crowd":5,"ramp":0,"decay":80}]}`,
		"cohort params":   `{"version":1,"name":"x","machines":[{"kind":"cohorts","cohorts":[{"lambda":0,"mu":0.1}]}]}`,
		"diurnal period":  `{"version":1,"name":"x","machines":[{"kind":"diurnal","base":0.5,"cycles":[{"period":0,"amp":0.1}]}]}`,
	}
	for name, js := range cases {
		if _, err := ParseScenario([]byte(js)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

// TestComponentDeterminism asserts the core contract: the same spec and
// seed reproduce every sample bit-identically across independent builds.
func TestComponentDeterminism(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Lookup(name)
		for m := 0; m < len(sc.Machines); m++ {
			a, err := sc.Machine(m, 1234)
			if err != nil {
				t.Fatalf("%s machine %d: %v", name, m, err)
			}
			b, err := sc.Machine(m, 1234)
			if err != nil {
				t.Fatalf("%s machine %d: %v", name, m, err)
			}
			for i := 0; i < 400; i++ {
				tt := float64(i) * a.Interval()
				if va, vb := a.At(tt), b.At(tt); va != vb {
					t.Fatalf("%s machine %d diverges at t=%g: %g vs %g", name, m, tt, va, vb)
				}
			}
		}
	}
}

// TestComponentSeedSensitivity: distinct seeds should produce distinct
// stochastic sample paths (deterministic components exempt).
func TestComponentSeedSensitivity(t *testing.T) {
	sc, ok := Lookup("flash-crowd")
	if !ok {
		t.Fatal("flash-crowd missing from library")
	}
	a, _ := sc.Machine(0, 1)
	b, _ := sc.Machine(0, 2)
	same := true
	for i := 0; i < 500 && same; i++ {
		tt := float64(i) * a.Interval()
		if a.At(tt) != b.At(tt) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical flash-crowd paths")
	}
}

func TestMachineWraparound(t *testing.T) {
	sc, _ := Lookup("quiet-baseline")
	n := len(sc.Machines)
	// Machine n must reuse entry 0's component but with the caller's seed.
	a, err := sc.Machine(n, 99)
	if err != nil {
		t.Fatalf("wraparound build: %v", err)
	}
	b, err := sc.Machine(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(10) != b.At(10) {
		t.Fatalf("entry %d with same seed should match entry 0: %g vs %g", n, a.At(10), b.At(10))
	}
	if _, err := sc.Machine(-1, 0); err == nil {
		t.Fatal("negative machine index accepted")
	}
}

func TestHashStableAndSensitive(t *testing.T) {
	a, _ := Lookup("diurnal-web")
	b, _ := Lookup("diurnal-web")
	if a.Hash() != b.Hash() {
		t.Fatal("hash differs across lookups of the same scenario")
	}
	b.Machines[0].Children[0].Base += 0.01
	if a.Hash() == b.Hash() {
		t.Fatal("hash insensitive to spec change")
	}
	if len(a.Hash()) != 16 {
		t.Fatalf("hash length %d, want 16 hex chars", len(a.Hash()))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a, _ := Lookup("diurnal-web")
	b := a.Clone()
	b.Machines[0].Children[0].Base = 0.01
	if a.Machines[0].Children[0].Base == 0.01 {
		t.Fatal("Clone shares machine storage with original")
	}
}

func TestValidateErrorsNameTheScenario(t *testing.T) {
	sc := &ScenarioSpec{Version: SpecVersion, Name: "broken", Machines: []ComponentSpec{{Kind: "wat"}}}
	err := sc.Validate()
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("error should name the scenario: %v", err)
	}
}
