package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTripBitIdentical(t *testing.T) {
	sc, _ := Lookup("heavy-tail-batch")
	p, err := sc.Machine(1, 321)
	if err != nil {
		t.Fatal(err)
	}
	h, vals, err := CaptureTrace(p, sc.Name, sc.Hash(), 321, 1, 0, 599)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, h, vals); err != nil {
		t.Fatal(err)
	}
	if !IsTrace(buf.Bytes()) {
		t.Fatal("IsTrace rejects a freshly written trace")
	}
	h2, vals2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("header changed in round trip:\n  wrote %+v\n  read  %+v", h, h2)
	}
	if len(vals2) != len(vals) {
		t.Fatalf("sample count %d -> %d", len(vals), len(vals2))
	}
	for i := range vals {
		if vals[i] != vals2[i] {
			t.Fatalf("sample %d changed: %v -> %v", i, vals[i], vals2[i])
		}
	}
	// Replaying through TraceProcess must reproduce the generator exactly
	// at every tick it was sampled on.
	rp, err := TraceProcess(h2, vals2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(vals); i++ {
		tt := h.T0 + float64(i)*h.DT
		if got, want := rp.At(tt), p.At(tt); got != want {
			t.Fatalf("replay diverges at t=%g: %v vs %v", tt, got, want)
		}
	}
}

func TestReadTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not a trace":     "time,value\n0,0.5\n",
		"wrong format":    `{"format":"other","version":1,"seed":1,"machine":0,"dt":1,"t0":0,"samples":1}` + "\n0.5\n",
		"wrong version":   `{"format":"prodpred-trace","version":9,"seed":1,"machine":0,"dt":1,"t0":0,"samples":1}` + "\n0.5\n",
		"bad dt":          `{"format":"prodpred-trace","version":1,"seed":1,"machine":0,"dt":0,"t0":0,"samples":1}` + "\n0.5\n",
		"count mismatch":  `{"format":"prodpred-trace","version":1,"seed":1,"machine":0,"dt":1,"t0":0,"samples":3}` + "\n0.5\n0.6\n",
		"bad sample":      `{"format":"prodpred-trace","version":1,"seed":1,"machine":0,"dt":1,"t0":0,"samples":1}` + "\nnope\n",
		"unknown hdr key": `{"format":"prodpred-trace","version":1,"seed":1,"machine":0,"dt":1,"t0":0,"samples":1,"extra":true}` + "\n0.5\n",
	}
	for name, data := range cases {
		if _, _, err := ReadTrace(strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestIsTraceRejectsCSV(t *testing.T) {
	if IsTrace([]byte("time,value\n0,0.5\n")) {
		t.Fatal("IsTrace accepted legacy CSV")
	}
}

func TestWriteTraceFillsDefaults(t *testing.T) {
	var buf bytes.Buffer
	h := TraceHeader{Seed: 1, Machine: 0, DT: 1}
	if err := WriteTrace(&buf, h, []float64{0.25, 0.5}); err != nil {
		t.Fatal(err)
	}
	h2, vals, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Format != TraceFormat || h2.Version != TraceVersion || h2.Samples != 2 || len(vals) != 2 {
		t.Fatalf("defaults not filled: %+v", h2)
	}
}
