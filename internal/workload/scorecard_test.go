package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestScorecardDetectsPeriod(t *testing.T) {
	n := 1200
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 0.5 + 0.2*math.Sin(2*math.Pi*float64(i)/100)
	}
	sc := NewScorecard(vals, 1)
	if sc.DiurnalPeriod < 90 || sc.DiurnalPeriod > 110 {
		t.Fatalf("period %g, want ~100", sc.DiurnalPeriod)
	}
}

func TestScorecardNoPeriodOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 800)
	for i := range vals {
		vals[i] = 0.5 + 0.05*rng.NormFloat64()
	}
	sc := NewScorecard(vals, 1)
	if sc.DiurnalPeriod != 0 {
		t.Fatalf("white noise reported period %g", sc.DiurnalPeriod)
	}
}

func TestScorecardCountsBursts(t *testing.T) {
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = 0.8
	}
	// Small symmetric jitter to give a nonzero std.
	for i := range vals {
		if i%2 == 0 {
			vals[i] += 0.01
		} else {
			vals[i] -= 0.01
		}
	}
	// Three separated dips, one of them two ticks wide: 3 episodes.
	vals[50] = 0.1
	vals[150] = 0.1
	vals[151] = 0.12
	vals[300] = 0.05
	sc := NewScorecard(vals, 1)
	if sc.BurstCount != 3 {
		t.Fatalf("burst count %d, want 3", sc.BurstCount)
	}
}

func TestScorecardTailIndexOrdersTails(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	heavy := make([]float64, 4000)
	light := make([]float64, 4000)
	for i := range heavy {
		// Pareto(alpha=1.2) drops: genuinely heavy.
		heavy[i] = 1 - math.Min(0.9, 0.01*math.Pow(rng.Float64(), -1/1.2))
		// Exponential-ish light drops.
		light[i] = 1 - math.Min(0.9, 0.05*rng.ExpFloat64())
	}
	h := NewScorecard(heavy, 1)
	l := NewScorecard(light, 1)
	if h.TailIndex == 0 || l.TailIndex == 0 {
		t.Fatalf("tail index degenerate: heavy %g light %g", h.TailIndex, l.TailIndex)
	}
	if h.TailIndex >= l.TailIndex {
		t.Fatalf("heavy tail index %.2f should be below light %.2f", h.TailIndex, l.TailIndex)
	}
}

func TestScorecardEmptyAndDegenerate(t *testing.T) {
	if sc := NewScorecard(nil, 1); sc.Samples != 0 {
		t.Fatal("empty scorecard nonzero samples")
	}
	flat := []float64{0.5, 0.5, 0.5, 0.5}
	sc := NewScorecard(flat, 1)
	if sc.Std != 0 || sc.BurstCount != 0 || sc.TailIndex != 0 || sc.DiurnalPeriod != 0 {
		t.Fatalf("flat signal produced structure: %+v", sc)
	}
	if sc.String() == "" {
		t.Fatal("String() empty")
	}
}
