package workload

import (
	"sort"
	"testing"

	"prodpred/internal/load"
)

func TestLibraryShipsAtLeastSixValidScenarios(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("library has %d scenarios, want >= 6", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"diurnal-web", "flash-crowd", "heavy-tail-batch", "cohort-mix", "regime-cascade", "quiet-baseline"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("library missing scenario %q", want)
		}
	}
	for _, name := range names {
		sc, _ := Lookup(name)
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("scenario %q has Name %q", name, sc.Name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Fatal("Lookup invented a scenario")
	}
}

// record samples machine m of scenario name for n ticks.
func record(t *testing.T, name string, m int, seed int64, n int) ([]float64, float64) {
	t.Helper()
	sc, ok := Lookup(name)
	if !ok {
		t.Fatalf("scenario %q missing", name)
	}
	p, err := sc.Machine(m, seed)
	if err != nil {
		t.Fatal(err)
	}
	dt := p.Interval()
	s, err := load.Record(p, 0, float64(n-1)*dt, dt)
	if err != nil {
		t.Fatal(err)
	}
	return s.Values(), dt
}

// TestScenarioShapes checks each scenario actually exhibits the regime it
// is named for.
func TestScenarioShapes(t *testing.T) {
	t.Run("diurnal-web has periodic structure", func(t *testing.T) {
		vals, dt := record(t, "diurnal-web", 0, 7, 2000)
		sc := NewScorecard(vals, dt)
		if sc.DiurnalPeriod < 500 || sc.DiurnalPeriod > 1000 {
			t.Fatalf("dominant period %gs, want near the 720s day cycle", sc.DiurnalPeriod)
		}
	})
	t.Run("flash-crowd availability collapses at onset", func(t *testing.T) {
		vals, _ := record(t, "flash-crowd", 0, 7, 900)
		// Pre-onset (t<240) vs crowd peak (t in [285, 330]).
		pre, peak := 0.0, 0.0
		for i := 0; i < 240; i++ {
			pre += vals[i]
		}
		pre /= 240
		for i := 285; i < 330; i++ {
			peak += vals[i]
		}
		peak /= 45
		if peak > pre/2 {
			t.Fatalf("crowd barely dents availability: pre=%.3f peak=%.3f", pre, peak)
		}
	})
	t.Run("heavy-tail-batch is left-skewed", func(t *testing.T) {
		vals, dt := record(t, "heavy-tail-batch", 0, 7, 3000)
		sc := NewScorecard(vals, dt)
		med := median(vals)
		if med <= sc.Mean {
			t.Fatalf("median %.4f <= mean %.4f: no left tail", med, sc.Mean)
		}
		if sc.BurstCount == 0 {
			t.Fatal("no congestion episodes in 3000 ticks")
		}
	})
	t.Run("regime-cascade changes character at boundaries", func(t *testing.T) {
		vals, _ := record(t, "regime-cascade", 0, 7, 2000)
		early := NewScorecard(vals[:500], 1)
		late := NewScorecard(vals[1400:], 1)
		// Steady center-mode early; bursty four-mode late.
		if late.Std < 2*early.Std {
			t.Fatalf("late regime not burstier: early std %.4f, late std %.4f", early.Std, late.Std)
		}
	})
	t.Run("quiet-baseline stays quiet", func(t *testing.T) {
		vals, dt := record(t, "quiet-baseline", 0, 7, 1000)
		sc := NewScorecard(vals, dt)
		if sc.Min < 0.55 || sc.Mean < 0.85 {
			t.Fatalf("baseline not quiet: mean %.3f min %.3f", sc.Mean, sc.Min)
		}
	})
	t.Run("cohort-mix stays stochastic and bounded", func(t *testing.T) {
		vals, _ := record(t, "cohort-mix", 0, 7, 1500)
		distinct := map[float64]bool{}
		for _, v := range vals {
			if v <= 0 || v > 1 {
				t.Fatalf("availability %g outside (0,1]", v)
			}
			distinct[v] = true
		}
		if len(distinct) < 5 {
			t.Fatalf("only %d distinct availability levels: populations not evolving", len(distinct))
		}
	})
}

func median(vals []float64) float64 {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
