package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"prodpred/internal/load"
)

// SpecVersion is the current ScenarioSpec format version. Parsers accept
// exactly this version; bumping it is the signal that the JSON shape
// changed incompatibly.
const SpecVersion = 1

// ScenarioSpec is the versioned declarative description of a production
// workload: one component tree per machine plus an optional network
// contention process. A spec plus a seed fully determines every sample the
// scenario will ever emit.
type ScenarioSpec struct {
	Version  int             `json:"version"`
	Name     string          `json:"name"`
	DT       float64         `json:"dt,omitempty"` // default tick seconds (1 if omitted)
	Machines []ComponentSpec `json:"machines"`
	Net      *ComponentSpec  `json:"net,omitempty"`
}

// ComponentSpec is one node of a scenario's component tree — either a leaf
// generator or a combinator over Children. Kind selects the variant; the
// other fields are kind-specific and ignored elsewhere.
//
// Leaves: "constant", "diurnal", "cohorts", "flash-crowd", "heavy-tail",
// "congested", "single-mode", "user-sessions", "preset".
// Combinators: "sum", "modulate", "clamp", "switch".
type ComponentSpec struct {
	Kind string `json:"kind"`

	// constant
	Level float64 `json:"level,omitempty"`

	// diurnal
	Base   float64 `json:"base,omitempty"`
	Cycles []Cycle `json:"cycles,omitempty"`

	// cohorts
	Cohorts []Cohort `json:"cohorts,omitempty"`

	// flash-crowd
	Users  float64 `json:"users,omitempty"`
	Crowd  float64 `json:"crowd,omitempty"`
	Onset  float64 `json:"onset,omitempty"`
	Ramp   float64 `json:"ramp,omitempty"`
	Decay  float64 `json:"decay,omitempty"`
	Repeat float64 `json:"repeat,omitempty"`

	// heavy-tail / congested
	Peak      float64 `json:"peak,omitempty"`
	DropMean  float64 `json:"dropMean,omitempty"`
	DropStd   float64 `json:"dropStd,omitempty"`
	BurstProb float64 `json:"burstProb,omitempty"`
	BurstMean float64 `json:"burstMean,omitempty"`
	BurstStd  float64 `json:"burstStd,omitempty"`

	// single-mode
	Mean  float64 `json:"mean,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	Phi   float64 `json:"phi,omitempty"`

	// user-sessions
	Lambda float64 `json:"lambda,omitempty"`
	Mu     float64 `json:"mu,omitempty"`

	// preset: one of the named constructors in internal/load
	Preset string `json:"preset,omitempty"`

	// combinators
	Children []ComponentSpec `json:"children,omitempty"`
	Weights  []float64       `json:"weights,omitempty"` // sum: default 1 each
	Lo       float64         `json:"lo,omitempty"`      // clamp lower bound
	Hi       float64         `json:"hi,omitempty"`      // clamp upper bound (0 = 1)
	At       []float64       `json:"at,omitempty"`      // switch boundaries, ascending

	// DT overrides the scenario's default tick for this subtree's leaves.
	DT float64 `json:"dt,omitempty"`
}

// ParseScenario decodes a ScenarioSpec from JSON, rejecting unknown fields
// and validating the result — same strictness as predict.ParseSpecs.
func ParseScenario(data []byte) (*ScenarioSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sc ScenarioSpec
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("workload: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// tick returns the scenario's default tick.
func (sc *ScenarioSpec) tick() float64 {
	if sc.DT > 0 {
		return sc.DT
	}
	return 1
}

// Validate checks the spec by building every component with a throwaway
// seed and discarding the result.
func (sc *ScenarioSpec) Validate() error {
	if sc.Version != SpecVersion {
		return fmt.Errorf("workload: scenario %q: unsupported version %d (want %d)", sc.Name, sc.Version, SpecVersion)
	}
	if sc.Name == "" {
		return errors.New("workload: scenario needs a name")
	}
	if sc.DT < 0 {
		return fmt.Errorf("workload: scenario %q: negative dt", sc.Name)
	}
	if len(sc.Machines) == 0 {
		return fmt.Errorf("workload: scenario %q: no machines", sc.Name)
	}
	for i := range sc.Machines {
		if _, err := sc.Machines[i].build(sc.tick(), 1); err != nil {
			return fmt.Errorf("workload: scenario %q machine %d: %w", sc.Name, i, err)
		}
	}
	if sc.Net != nil {
		if _, err := sc.Net.build(sc.tick(), 1); err != nil {
			return fmt.Errorf("workload: scenario %q net: %w", sc.Name, err)
		}
	}
	return nil
}

// Hash returns a short stable digest of the spec's canonical JSON, stamped
// into trace headers so a replayed trace can be matched to the exact spec
// that produced it.
func (sc *ScenarioSpec) Hash() string {
	b, err := json.Marshal(sc)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Machine builds machine i's load process under the given seed. Scenarios
// with fewer component entries than the platform has machines wrap around
// (entry i%len), with the seed still distinct per machine, so a 4-entry
// scenario drives a 100-machine platform with 100 distinct processes.
func (sc *ScenarioSpec) Machine(i int, seed int64) (load.Process, error) {
	if i < 0 {
		return nil, fmt.Errorf("workload: negative machine index %d", i)
	}
	if len(sc.Machines) == 0 {
		return nil, fmt.Errorf("workload: scenario %q: no machines", sc.Name)
	}
	c := &sc.Machines[i%len(sc.Machines)]
	return c.build(sc.tick(), seed)
}

// NetProcess builds the scenario's network contention process, or nil if
// the scenario does not define one (contention-free link).
func (sc *ScenarioSpec) NetProcess(seed int64) (load.Process, error) {
	if sc.Net == nil {
		return nil, nil
	}
	return sc.Net.build(sc.tick(), seed)
}

// Clone returns a deep copy of the spec.
func (sc *ScenarioSpec) Clone() *ScenarioSpec {
	if sc == nil {
		return nil
	}
	b, err := json.Marshal(sc)
	if err != nil {
		cp := *sc
		return &cp
	}
	var cp ScenarioSpec
	if err := json.Unmarshal(b, &cp); err != nil {
		cp2 := *sc
		return &cp2
	}
	return &cp
}

// childSeed derives child i's seed from the parent's: a splitmix-style odd
// multiplier keeps sibling streams decorrelated while staying a pure
// function of (parent seed, child index).
func childSeed(seed int64, i int) int64 {
	return seed*1000003 + int64(i+1)*7919
}

// build constructs the process for a component. dt is the default tick
// inherited from the scenario (or an enclosing DT override); seed is this
// node's random stream.
func (c *ComponentSpec) build(dt float64, seed int64) (load.Process, error) {
	if c.DT < 0 {
		return nil, errors.New("negative dt")
	}
	if c.DT > 0 {
		dt = c.DT
	}
	switch c.Kind {
	case "constant":
		if c.Level < 0 || c.Level > 1 {
			return nil, fmt.Errorf("constant level %g outside [0,1]", c.Level)
		}
		return load.NewConstant(c.Level), nil
	case "diurnal":
		if len(c.Cycles) == 0 {
			return nil, errors.New("diurnal needs at least one cycle")
		}
		for i, cy := range c.Cycles {
			if !(cy.Period > 0) {
				return nil, fmt.Errorf("diurnal cycle %d: period must be positive", i)
			}
		}
		return &diurnal{base: c.Base, cycles: append([]Cycle(nil), c.Cycles...), dt: dt}, nil
	case "cohorts":
		if len(c.Cohorts) == 0 {
			return nil, errors.New("cohorts needs at least one cohort")
		}
		for i, co := range c.Cohorts {
			if !(co.Lambda > 0) || !(co.Mu > 0) {
				return nil, fmt.Errorf("cohort %d: lambda and mu must be positive", i)
			}
			if co.Swing < 0 || co.Swing > 1 {
				return nil, fmt.Errorf("cohort %d: swing %g outside [0,1]", i, co.Swing)
			}
		}
		return newCohorts(append([]Cohort(nil), c.Cohorts...), dt, seed), nil
	case "flash-crowd":
		if c.Users < 0 {
			return nil, errors.New("flash-crowd: negative baseline users")
		}
		if !(c.Crowd > 0) || !(c.Ramp > 0) || !(c.Decay > 0) {
			return nil, errors.New("flash-crowd: crowd, ramp, and decay must be positive")
		}
		if c.Onset < 0 || c.Repeat < 0 {
			return nil, errors.New("flash-crowd: negative onset or repeat")
		}
		return newFlashCrowd(c.Users, c.Crowd, c.Onset, c.Ramp, c.Decay, c.Repeat, dt, seed), nil
	case "heavy-tail":
		return load.NewLongTailed(c.Peak, c.DropMean, c.DropStd, dt, seed)
	case "congested":
		return load.NewCongested(c.Peak, c.DropMean, c.DropStd, c.BurstProb, c.BurstMean, c.BurstStd, dt, seed)
	case "single-mode":
		return load.NewSingleMode(c.Mean, c.Sigma, c.Phi, dt, seed)
	case "user-sessions":
		return load.NewUserSessions(c.Lambda, c.Mu, dt, seed)
	case "preset":
		switch c.Preset {
		case "platform1-center":
			return load.Platform1CenterMode(seed)
		case "platform1-trimodal":
			return load.Platform1TriModal(seed)
		case "platform2-bursty":
			return load.Platform2FourModeBursty(seed)
		case "light":
			return load.LightLoad(seed)
		case "ethernet-contention":
			return load.EthernetContention(seed)
		default:
			return nil, fmt.Errorf("unknown preset %q", c.Preset)
		}
	case "sum":
		children, err := c.buildChildren(dt, seed, 2)
		if err != nil {
			return nil, err
		}
		w := c.Weights
		if len(w) == 0 {
			w = make([]float64, len(children))
			for i := range w {
				w[i] = 1
			}
		}
		if len(w) != len(children) {
			return nil, fmt.Errorf("sum: %d weights for %d children", len(w), len(children))
		}
		return &sumProc{children: children, weights: append([]float64(nil), w...), dt: minInterval(children)}, nil
	case "modulate":
		children, err := c.buildChildren(dt, seed, 2)
		if err != nil {
			return nil, err
		}
		return &modProc{children: children, dt: minInterval(children)}, nil
	case "clamp":
		children, err := c.buildChildren(dt, seed, 1)
		if err != nil {
			return nil, err
		}
		if len(children) != 1 {
			return nil, fmt.Errorf("clamp: wants exactly one child, got %d", len(children))
		}
		lo, hi := c.Lo, c.Hi
		if hi == 0 {
			hi = 1
		}
		if lo < 0 || hi > 1 || lo >= hi {
			return nil, fmt.Errorf("clamp: bad bounds [%g, %g]", lo, hi)
		}
		return &clampProc{child: children[0], lo: lo, hi: hi}, nil
	case "switch":
		children, err := c.buildChildren(dt, seed, 2)
		if err != nil {
			return nil, err
		}
		if len(c.At) != len(children)-1 {
			return nil, fmt.Errorf("switch: %d boundaries for %d children (want %d)", len(c.At), len(children), len(children)-1)
		}
		prev := 0.0
		for i, b := range c.At {
			if !(b > prev) {
				return nil, fmt.Errorf("switch: boundary %d (%g) not ascending and positive", i, b)
			}
			prev = b
		}
		return &switchProc{children: children, at: append([]float64(nil), c.At...), dt: minInterval(children)}, nil
	case "":
		return nil, errors.New("component missing kind")
	default:
		return nil, fmt.Errorf("unknown component kind %q", c.Kind)
	}
}

// buildChildren builds a combinator's child processes with derived seeds.
func (c *ComponentSpec) buildChildren(dt float64, seed int64, min int) ([]load.Process, error) {
	if len(c.Children) < min {
		return nil, fmt.Errorf("%s: wants at least %d children, got %d", c.Kind, min, len(c.Children))
	}
	out := make([]load.Process, len(c.Children))
	for i := range c.Children {
		p, err := c.Children[i].build(dt, childSeed(seed, i))
		if err != nil {
			return nil, fmt.Errorf("%s child %d: %w", c.Kind, i, err)
		}
		out[i] = p
	}
	return out, nil
}
