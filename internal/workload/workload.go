// Package workload composes the primitive load processes of internal/load
// into production-shaped machine loads: declarative, versioned scenario
// specs whose component trees mix diurnal multi-period cycles, user cohorts
// with distinct arrival patterns, flash-crowd ramps, and heavy-tailed
// contention under deterministic combinators (sum, modulate, clamp,
// switch-at-time).
//
// The paper's evaluation runs two platforms and one switch process; a
// production fleet sees "extreme variability" (arXiv 1801.03898) — diurnal
// swings, flash crowds, heavy-tailed batch contention — and this package is
// the generator for exactly those regimes. Everything stays inside the
// availability convention of internal/load: every process emits the
// fraction of CPU available in [0, 1], piecewise-constant over ticks, and
// is a pure function of (spec, seed, virtual time), so two builds of the
// same scenario are bit-identical.
//
// The package also defines the versioned trace interchange format
// (TraceHeader + one sample per line) that cmd/loadgen writes, cmd/predictd
// records on shutdown, and predict.LoadSpec{Kind: "trace"} replays — the
// record/replay seam that turns any served workload into a reproducible
// test input.
package workload

import (
	"math"
	"math/rand"
	"sync"

	"prodpred/internal/load"
)

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// seq lazily materializes a per-tick sequence from a generator that must
// run in tick order (population processes evolve tick to tick). It mirrors
// the cache inside internal/load: At() is pure from the caller's view and
// safe for concurrent use.
type seq struct {
	mu   sync.Mutex
	vals []float64
	gen  func(i int) float64
	dt   float64
}

func (s *seq) At(t float64) float64 {
	if t < 0 {
		t = 0
	}
	idx := int(t / s.dt)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.vals) <= idx {
		s.vals = append(s.vals, s.gen(len(s.vals)))
	}
	return s.vals[idx]
}

func (s *seq) Interval() float64 { return s.dt }

// Cycle is one sinusoidal component of a diurnal availability pattern.
// Availability contribution is Amp * sin(2π·t/Period + Phase); stacking a
// long and a short Period reproduces the day-plus-lunch-spike shape of web
// traffic. Periods are virtual seconds — scenarios typically compress a
// "day" into minutes of virtual time.
type Cycle struct {
	Period float64 `json:"period"`          // seconds per cycle (> 0)
	Amp    float64 `json:"amp"`             // availability amplitude
	Phase  float64 `json:"phase,omitempty"` // radians
}

// diurnal is the deterministic multi-period cycle component: availability
// Base + Σ Amp·sin(2πt/Period + Phase), clamped to [0,1] and quantized to
// tick starts so the piecewise-constant Process contract holds exactly.
type diurnal struct {
	base   float64
	cycles []Cycle
	dt     float64
}

func (d *diurnal) At(t float64) float64 {
	if t < 0 {
		t = 0
	}
	// Quantize to the tick start: the value is constant within a tick.
	tq := math.Floor(t/d.dt) * d.dt
	v := d.base
	for _, c := range d.cycles {
		v += c.Amp * math.Sin(2*math.Pi*tq/c.Period+c.Phase)
	}
	return clamp01(v)
}

func (d *diurnal) Interval() float64 { return d.dt }

// Cohort is one user population with its own arrival pattern: an M/M/∞
// pool (arrivals Lambda/s, mean session 1/Mu s) whose arrival rate can ramp
// in at Start and swing diurnally (rate × (1 + Swing·sin(2πt/Period +
// Phase))). Distinct cohorts — office workers, overnight batch, an
// international audience a phase apart — compose into one machine's
// competing-user count.
type Cohort struct {
	Lambda float64 `json:"lambda"`           // arrivals per second (> 0)
	Mu     float64 `json:"mu"`               // session end rate (> 0)
	Start  float64 `json:"start,omitempty"`  // arrivals begin at this time
	Period float64 `json:"period,omitempty"` // diurnal swing period (0 = flat)
	Swing  float64 `json:"swing,omitempty"`  // relative rate swing in [0,1]
	Phase  float64 `json:"phase,omitempty"`  // radians
}

// rateAt returns the cohort's arrival rate at tick-start time t.
func (c Cohort) rateAt(t float64) float64 {
	if t < c.Start {
		return 0
	}
	r := c.Lambda
	if c.Period > 0 && c.Swing != 0 {
		r *= 1 + c.Swing*math.Sin(2*math.Pi*t/c.Period+c.Phase)
	}
	if r < 0 {
		return 0
	}
	return r
}

// newCohorts builds the cohort-population process: each cohort keeps its
// own active-user count (per-tick exponential departures, Poisson arrivals
// at its possibly time-varying rate), and the application receives a
// 1/(1+n) CPU share of the total n — the same generative story as
// load.UserSessions, with population structure.
func newCohorts(cohorts []Cohort, dt float64, seed int64) load.Process {
	rng := rand.New(rand.NewSource(seed))
	n := make([]int, len(cohorts))
	for i, c := range cohorts {
		// Start cohorts with no ramp at their stationary mean to skip
		// burn-in; ramped cohorts start empty.
		if c.Start == 0 {
			n[i] = int(c.Lambda / c.Mu)
		}
	}
	return &seq{dt: dt, gen: func(tick int) float64 {
		t := float64(tick) * dt
		total := 0
		for i, c := range cohorts {
			pDepart := 1 - math.Exp(-c.Mu*dt)
			stay := 0
			for j := 0; j < n[i]; j++ {
				if rng.Float64() >= pDepart {
					stay++
				}
			}
			n[i] = stay + poisson(rng, c.rateAt(t)*dt)
			total += n[i]
		}
		return 1 / float64(1+total)
	}}
}

// newFlashCrowd builds the flash-crowd process: a baseline of `users`
// competing users plus a crowd whose expected size ramps linearly from 0 to
// `crowd` over `ramp` seconds starting at `onset`, then decays
// exponentially with time constant `decay`. With repeat > 0 the episode
// recurs every `repeat` seconds. The realized crowd is a fresh Poisson draw
// around the envelope each tick; availability is the 1/(1+n) CPU share.
func newFlashCrowd(users, crowd, onset, ramp, decay, repeat, dt float64, seed int64) load.Process {
	rng := rand.New(rand.NewSource(seed))
	return &seq{dt: dt, gen: func(tick int) float64 {
		t := float64(tick) * dt
		n := poisson(rng, flashEnvelope(t, crowd, onset, ramp, decay, repeat))
		return 1 / (1 + users + float64(n))
	}}
}

// flashEnvelope is the expected crowd size at time t.
func flashEnvelope(t, crowd, onset, ramp, decay, repeat float64) float64 {
	phase := t - onset
	if repeat > 0 {
		phase = math.Mod(phase, repeat)
		if phase < 0 {
			phase += repeat
		}
	}
	switch {
	case phase < 0:
		return 0
	case phase < ramp:
		return crowd * phase / ramp
	default:
		return crowd * math.Exp(-(phase-ramp)/decay)
	}
}

// poisson draws a Poisson(mean) variate by Knuth's method (means here are a
// few arrivals per tick).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // numerical guard; unreachable for sane means
			return k
		}
	}
}

// minInterval returns the finest tick among processes — the composite
// interval of every combinator, matching load.Switch's convention.
func minInterval(ps []load.Process) float64 {
	dt := ps[0].Interval()
	for _, p := range ps[1:] {
		if i := p.Interval(); i < dt {
			dt = i
		}
	}
	return dt
}

// sumProc is the weighted-sum combinator: clamp01(Σ wᵢ·childᵢ(t)).
type sumProc struct {
	children []load.Process
	weights  []float64
	dt       float64
}

func (s *sumProc) At(t float64) float64 {
	v := 0.0
	for i, c := range s.children {
		v += s.weights[i] * c.At(t)
	}
	return clamp01(v)
}

func (s *sumProc) Interval() float64 { return s.dt }

// modProc is the modulate combinator: the product of its children's
// availabilities — independent contention sources each claim their share of
// what the previous ones left.
type modProc struct {
	children []load.Process
	dt       float64
}

func (m *modProc) At(t float64) float64 {
	v := 1.0
	for _, c := range m.children {
		v *= c.At(t)
	}
	return clamp01(v)
}

func (m *modProc) Interval() float64 { return m.dt }

// clampProc bounds a child's availability to [lo, hi].
type clampProc struct {
	child  load.Process
	lo, hi float64
}

func (c *clampProc) At(t float64) float64 {
	v := c.child.At(t)
	if v < c.lo {
		return c.lo
	}
	if v > c.hi {
		return c.hi
	}
	return v
}

func (c *clampProc) Interval() float64 { return c.child.Interval() }

// switchProc is the n-way switch-at-time combinator: child j is in force on
// [at[j-1], at[j]). Children keep their own absolute clocks, exactly like
// load.Switch, so a bursty late regime is already "running" when the switch
// lands.
type switchProc struct {
	children []load.Process
	at       []float64 // len(children)-1 ascending boundaries
	dt       float64
}

func (s *switchProc) At(t float64) float64 {
	for j, b := range s.at {
		if t < b {
			return s.children[j].At(t)
		}
	}
	return s.children[len(s.children)-1].At(t)
}

func (s *switchProc) Interval() float64 { return s.dt }
