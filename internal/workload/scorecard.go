package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Scorecard summarizes a recorded availability signal along the axes the
// scenario library is designed to exercise: burstiness (episodes far below
// the running level), tail weight (Hill index of the congestion drops),
// and periodic structure (dominant autocorrelation period).
type Scorecard struct {
	Samples int
	DT      float64
	Mean    float64
	Std     float64
	Min     float64
	Max     float64

	// BurstCount is the number of maximal runs of consecutive samples
	// below mean − 2σ — each run is one contention episode.
	BurstCount int

	// TailIndex is the Hill estimator of the availability-drop tail
	// (drops measured below the observed peak). Smaller means heavier:
	// values ≲ 2 indicate a genuinely heavy tail, large values an
	// effectively light one. 0 when there are too few distinct drops to
	// estimate.
	TailIndex float64

	// DiurnalPeriod is the period (seconds) of the most prominent
	// autocorrelation peak, or 0 when no periodic structure stands out.
	DiurnalPeriod float64
}

// NewScorecard analyzes vals sampled every dt seconds.
func NewScorecard(vals []float64, dt float64) Scorecard {
	sc := Scorecard{Samples: len(vals), DT: dt}
	if len(vals) == 0 || !(dt > 0) {
		return sc
	}
	sc.Min, sc.Max = vals[0], vals[0]
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < sc.Min {
			sc.Min = v
		}
		if v > sc.Max {
			sc.Max = v
		}
	}
	sc.Mean = sum / float64(len(vals))
	ss := 0.0
	for _, v := range vals {
		d := v - sc.Mean
		ss += d * d
	}
	if len(vals) > 1 {
		sc.Std = math.Sqrt(ss / float64(len(vals)-1))
	}
	sc.BurstCount = burstCount(vals, sc.Mean, sc.Std)
	sc.TailIndex = hillTailIndex(vals, sc.Max)
	sc.DiurnalPeriod = dominantPeriod(vals, sc.Mean, dt)
	return sc
}

// burstCount counts maximal runs of consecutive samples below mean − 2σ.
func burstCount(vals []float64, mean, std float64) int {
	if std == 0 {
		return 0
	}
	thresh := mean - 2*std
	count := 0
	in := false
	for _, v := range vals {
		below := v < thresh
		if below && !in {
			count++
		}
		in = below
	}
	return count
}

// hillTailIndex estimates the tail index of the drops below the observed
// peak using the Hill estimator over the largest 10% of drops. Returns 0
// when fewer than 8 distinct positive drops exist.
func hillTailIndex(vals []float64, peak float64) float64 {
	drops := make([]float64, 0, len(vals))
	for _, v := range vals {
		if d := peak - v; d > 0 {
			drops = append(drops, d)
		}
	}
	if len(drops) < 16 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(drops)))
	k := len(drops) / 10
	if k < 8 {
		k = 8
	}
	if k >= len(drops) {
		k = len(drops) - 1
	}
	ref := drops[k]
	if !(ref > 0) {
		return 0
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += math.Log(drops[i] / ref)
	}
	if s <= 0 {
		return 0
	}
	return float64(k) / s
}

// dominantPeriod finds the most prominent local autocorrelation maximum at
// lags in [4, n/2] and returns lag·dt; 0 when the best peak's correlation
// is below 0.15 (no periodic structure worth reporting).
func dominantPeriod(vals []float64, mean, dt float64) float64 {
	n := len(vals)
	if n < 16 {
		return 0
	}
	dev := make([]float64, n)
	var0 := 0.0
	for i, v := range vals {
		dev[i] = v - mean
		var0 += dev[i] * dev[i]
	}
	if var0 == 0 {
		return 0
	}
	maxLag := n / 2
	ac := make([]float64, maxLag+1)
	for lag := 1; lag <= maxLag; lag++ {
		s := 0.0
		for i := 0; i+lag < n; i++ {
			s += dev[i] * dev[i+lag]
		}
		ac[lag] = s / var0
	}
	bestLag, bestCorr := 0, 0.15
	for lag := 4; lag < maxLag; lag++ {
		if ac[lag] > ac[lag-1] && ac[lag] >= ac[lag+1] && ac[lag] > bestCorr {
			bestLag, bestCorr = lag, ac[lag]
		}
	}
	if bestLag == 0 {
		return 0
	}
	return float64(bestLag) * dt
}

// String renders the scorecard as the multi-line summary loadgen prints.
func (sc Scorecard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "samples      %d (dt=%gs, %.0fs span)\n", sc.Samples, sc.DT, float64(sc.Samples)*sc.DT)
	fmt.Fprintf(&b, "mean/std     %.4f / %.4f\n", sc.Mean, sc.Std)
	fmt.Fprintf(&b, "min/max      %.4f / %.4f\n", sc.Min, sc.Max)
	fmt.Fprintf(&b, "bursts       %d episodes below mean-2sigma\n", sc.BurstCount)
	if sc.TailIndex > 0 {
		fmt.Fprintf(&b, "tail index   %.2f (Hill; smaller = heavier)\n", sc.TailIndex)
	} else {
		fmt.Fprintf(&b, "tail index   n/a (too few drops)\n")
	}
	if sc.DiurnalPeriod > 0 {
		fmt.Fprintf(&b, "period       %.0fs dominant autocorrelation peak\n", sc.DiurnalPeriod)
	} else {
		fmt.Fprintf(&b, "period       none detected\n")
	}
	return b.String()
}
