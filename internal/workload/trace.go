package workload

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"prodpred/internal/load"
	"prodpred/internal/timeseries"
)

// TraceVersion is the current trace interchange format version.
const TraceVersion = 1

// TraceFormat is the magic format tag in every trace header.
const TraceFormat = "prodpred-trace"

// TraceHeader is the first line of a trace file: a single JSON object
// naming the format version, provenance (scenario name + spec hash + seed),
// and the sampling grid. The samples follow, one availability value per
// line, at implied timestamps T0 + i·DT.
type TraceHeader struct {
	Format   string  `json:"format"`
	Version  int     `json:"version"`
	Scenario string  `json:"scenario,omitempty"`
	SpecHash string  `json:"specHash,omitempty"`
	Seed     int64   `json:"seed"`
	Machine  int     `json:"machine"` // machine index; -1 = network process
	DT       float64 `json:"dt"`
	T0       float64 `json:"t0"`
	Samples  int     `json:"samples"`
}

func (h *TraceHeader) validate() error {
	if h.Format != TraceFormat {
		return fmt.Errorf("workload: not a trace (format %q, want %q)", h.Format, TraceFormat)
	}
	if h.Version != TraceVersion {
		return fmt.Errorf("workload: unsupported trace version %d (want %d)", h.Version, TraceVersion)
	}
	if !(h.DT > 0) {
		return fmt.Errorf("workload: trace dt %g must be positive", h.DT)
	}
	if h.Samples <= 0 {
		return errors.New("workload: trace has no samples")
	}
	return nil
}

// IsTrace reports whether data looks like a versioned trace file (as
// opposed to the legacy "time,value" CSV): the first line parses as a
// header object.
func IsTrace(data []byte) bool {
	line := data
	if i := strings.IndexByte(string(data), '\n'); i >= 0 {
		line = data[:i]
	}
	var h TraceHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return false
	}
	return h.Format == TraceFormat
}

// WriteTrace streams a trace to w: the JSON header line, then one sample
// per line formatted with FormatFloat(.., 'g', -1, 64) so every float64
// round-trips bit-exactly. len(vals) must equal h.Samples.
func WriteTrace(w io.Writer, h TraceHeader, vals []float64) error {
	if h.Format == "" {
		h.Format = TraceFormat
	}
	if h.Version == 0 {
		h.Version = TraceVersion
	}
	h.Samples = len(vals)
	if err := h.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(&h)
	if err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for _, v := range vals {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace, checking the header and
// the sample count.
func ReadTrace(r io.Reader) (TraceHeader, []float64, error) {
	var h TraceHeader
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return h, nil, fmt.Errorf("workload: read trace header: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return h, nil, fmt.Errorf("workload: parse trace header: %w", err)
	}
	if err := h.validate(); err != nil {
		return h, nil, err
	}
	vals := make([]float64, 0, h.Samples)
	sc := bufio.NewScanner(br)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return h, nil, fmt.Errorf("workload: trace sample %d: %w", len(vals), err)
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return h, nil, err
	}
	if len(vals) != h.Samples {
		return h, nil, fmt.Errorf("workload: trace has %d samples, header says %d", len(vals), h.Samples)
	}
	return h, vals, nil
}

// TraceProcess turns a parsed trace back into a load.Process on the exact
// sampling grid it was recorded on. Because the header's DT is an exact
// binary float for every library scenario, the replayed process returns
// bit-identical values at every tick the original generator was sampled
// on.
func TraceProcess(h TraceHeader, vals []float64) (load.Process, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	if len(vals) != h.Samples {
		return nil, fmt.Errorf("workload: trace has %d samples, header says %d", len(vals), h.Samples)
	}
	s := timeseries.NewSeries(len(vals))
	for i, v := range vals {
		if err := s.Append(h.T0+float64(i)*h.DT, v); err != nil {
			return nil, err
		}
	}
	return load.NewUniformTrace(s, h.DT)
}

// CaptureTrace samples p on [t0, t1] every p.Interval() seconds and
// returns a trace carrying the given provenance, ready for WriteTrace.
func CaptureTrace(p load.Process, scenario, specHash string, seed int64, machine int, t0, t1 float64) (TraceHeader, []float64, error) {
	dt := p.Interval()
	s, err := load.Record(p, t0, t1, dt)
	if err != nil {
		return TraceHeader{}, nil, err
	}
	h := TraceHeader{
		Format:   TraceFormat,
		Version:  TraceVersion,
		Scenario: scenario,
		SpecHash: specHash,
		Seed:     seed,
		Machine:  machine,
		DT:       dt,
		T0:       t0,
		Samples:  s.Len(),
	}
	return h, s.Values(), nil
}
