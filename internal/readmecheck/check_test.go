package readmecheck

// This test compiles the README quickstart snippet (lightly adapted: real
// values filled in) to keep the documentation honest.

import (
	"testing"

	"prodpred"
)

func TestReadmeQuickstartCompiles(t *testing.T) {
	measurements := []float64{11.2, 10.8, 11.5, 11.0, 10.9}
	cpu := prodpred.FromPercent(0.48, 10.4)
	bench, err := prodpred.FromSample(measurements)
	if err != nil {
		t.Fatal(err)
	}
	prodTime := bench.DivUnrelated(cpu)
	lo, hi := prodTime.Interval()
	if !(lo < hi) {
		t.Fatalf("interval [%g,%g]", lo, hi)
	}

	plat := prodpred.Platform1()
	machines := make([]prodpred.Machine, plat.Size())
	weights := make([]float64, plat.Size())
	for i := range machines {
		machines[i] = plat.Machine(i)
		weights[i] = machines[i].ElemRate
	}
	part, err := prodpred.NewWeightedPartition(1600, weights)
	if err != nil {
		t.Fatal(err)
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &prodpred.SORConfig{N: 1600, Iterations: 10, Partition: part,
		Machines: machines, Link: link, MaxStrategy: prodpred.LargestMean}
	params := cfg.DedicatedParams()
	params[prodpred.LoadParam(0)] = cpu
	pred, err := cfg.Predict(params)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Mean <= 0 {
		t.Fatalf("pred=%v", pred)
	}
}
