package readmecheck

// These tests keep OPERATIONS.md honest: every route the daemon actually
// registers and every metric family the serving stack actually exposes
// must appear in the runbook, and README.md must link to it. Adding an
// endpoint or metric without documenting it fails here.

import (
	"os"
	"strings"
	"testing"

	"prodpred/internal/api"
	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

func readRepoFile(t *testing.T, name string) string {
	t.Helper()
	raw, err := os.ReadFile("../../" + name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(raw)
}

// buildServingMetrics boots the daemon's serving stack (both platforms on
// a shared registry plus the HTTP handler) and returns every registered
// metric family name — the ground truth the runbook must cover.
func buildServingMetrics(t *testing.T) []string {
	t.Helper()
	metrics := obs.NewRegistry()
	reg := predict.NewRegistry()
	for _, id := range []int{1, 2} {
		cfg, err := predict.SimulatedConfig(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Metrics = metrics
		svc, err := predict.NewService(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(svc); err != nil {
			t.Fatal(err)
		}
	}
	api.NewHandler(reg, api.Options{Metrics: metrics})
	return metrics.MetricNames()
}

func TestOperationsDocumentsEveryRoute(t *testing.T) {
	ops := readRepoFile(t, "OPERATIONS.md")
	for _, rt := range append(append([]api.Route{}, api.Routes...), api.PprofRoutes...) {
		// The runbook headings use the pattern form ("POST /predict") or at
		// minimum the path itself.
		parts := strings.SplitN(rt.Pattern, " ", 2)
		if len(parts) != 2 {
			t.Fatalf("malformed route pattern %q", rt.Pattern)
		}
		if !strings.Contains(ops, parts[1]) {
			t.Errorf("OPERATIONS.md does not mention route %q", rt.Pattern)
		}
	}
}

func TestOperationsDocumentsEveryMetric(t *testing.T) {
	ops := readRepoFile(t, "OPERATIONS.md")
	names := buildServingMetrics(t)
	if len(names) < 12 {
		t.Fatalf("serving stack registers %d metric families, want >= 12: %v",
			len(names), names)
	}
	for _, name := range names {
		if !strings.Contains(ops, "`"+name+"`") {
			t.Errorf("OPERATIONS.md does not document metric %q", name)
		}
	}
	// And every pipeline stage label value.
	for _, stage := range predict.Stages {
		if !strings.Contains(ops, "`"+stage+"`") {
			t.Errorf("OPERATIONS.md does not document stage %q", stage)
		}
	}
	// The serving-cache and batch families must be both registered (the
	// enumeration above would miss a family that silently stopped being
	// registered) and documented.
	registered := make(map[string]bool, len(names))
	for _, name := range names {
		registered[name] = true
	}
	for _, name := range []string{
		predict.MetricCacheHits, predict.MetricCacheMisses, predict.MetricBatchSize,
	} {
		if !registered[name] {
			t.Errorf("serving stack no longer registers %q", name)
		}
		if !strings.Contains(ops, "`"+name+"`") {
			t.Errorf("OPERATIONS.md does not document metric %q", name)
		}
	}
}

func TestReadmeLinksOperations(t *testing.T) {
	readme := readRepoFile(t, "README.md")
	if !strings.Contains(readme, "OPERATIONS.md") {
		t.Error("README.md does not link to OPERATIONS.md")
	}
}
