// Package fleetsched closes the paper's outer loop at cluster scale: it
// places SOR-style jobs across a multi-tenant fleet (a predict.Registry)
// using the predicted execution-time *distributions*, not just their means.
//
// Placement walks every registered tenant in sorted-name order, asks each
// tenant's service for a prediction of the job at the current virtual
// tick, scores it under the configured policy — the predicted mean
// (PolicyMean), the calibrated interval's upper bound (PolicyUpper), or a
// calibrated quantile of the full predictive distribution (PolicyQuantile,
// the distribution-aware default) — adds the tenant's planned backlog, and
// commits the job to the cheapest tenant. The paper's argument that
// stochastic predictions exist to drive decisions (§scheduling) is this
// seam: two fleets with identical point predictions place differently once
// the distributions disagree.
//
// The loop is closed: Sync executes due jobs against each tenant's
// simulated environment (the same availability trajectories the monitors
// sample), feeds the measured runtimes back through Observe, and reads the
// resulting calib.Snapshot for saturation signals. A tenant saturates when
// its calibrator detects a load-regime drift event or its latest
// prediction's relative interval width crosses Config.SatRelWidth;
// saturated tenants are skipped by placement for Config.SatHold virtual
// seconds, and their still-queued jobs are migrated to the cheapest
// non-saturated tenant.
//
// Units: every time in this package's API — job deadlines, placement
// times, start/finish stamps, SatHold — is in virtual seconds on the
// tenants' simulated clocks; the scheduler assumes the fleet's clocks are
// advanced in lockstep (the daemon's tick loop and the experiments both
// do). Wall-clock time appears only in the schedule-latency telemetry and
// never feeds back into decisions.
//
// Determinism: with metrics detached from control flow, every placement,
// migration, and completion is a pure function of (tenant seeds, clock
// schedule, submission order). Two schedulers driven identically produce
// identical Status snapshots.
//
// Thread-safety: Scheduler is safe for concurrent use; one mutex
// serializes placement rounds, Sync, and Status. Plain data types
// (JobSpec, Placement, Status) are values the caller owns once returned.
package fleetsched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"prodpred/internal/predict"
	"prodpred/internal/sched"
	"prodpred/internal/sor"
)

// Policy selects how placement scores a candidate tenant's predicted
// execution time.
type Policy string

const (
	// PolicyMean scores by the predicted mean — the distribution-blind
	// baseline.
	PolicyMean Policy = "mean"
	// PolicyQuantile scores by Config.Quantile of the calibrated
	// predictive distribution (falling back to the normal-interpretation
	// quantile of the two-number prediction when no grid is available).
	PolicyQuantile Policy = "quantile"
	// PolicyUpper scores by the calibrated interval's upper bound,
	// sched.UpperBoundObjective.
	PolicyUpper Policy = "upper"
)

// ParsePolicy maps a flag/wire string onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyMean, PolicyQuantile, PolicyUpper:
		return Policy(s), nil
	default:
		return "", fmt.Errorf("fleetsched: unknown policy %q (want mean, quantile, or upper)", s)
	}
}

// DefaultQuantile is the placement quantile when Config.Quantile is zero.
const DefaultQuantile = 0.95

// DefaultSatRelWidth is the saturation threshold on a tenant's latest
// relative interval width (full 95% width / median) when Config.SatRelWidth
// is zero.
const DefaultSatRelWidth = 1.5

// DefaultSatHold is how long a saturation verdict sticks, in virtual
// seconds, when Config.SatHold is zero.
const DefaultSatHold = 240

// Config tunes a Scheduler. The zero value gives quantile placement at
// DefaultQuantile with default saturation thresholds and no telemetry.
type Config struct {
	// Policy is the default placement policy (PolicyQuantile when empty);
	// SubmitWith can override it per round.
	Policy Policy
	// Quantile is the placement quantile for PolicyQuantile, in (0,1)
	// (DefaultQuantile when 0).
	Quantile float64
	// SatRelWidth is the relative-interval-width saturation threshold
	// (DefaultSatRelWidth when 0): a tenant whose latest prediction's
	// 95% width divided by its median exceeds it is marked saturated.
	SatRelWidth float64
	// SatHold is how long a saturated tenant stays excluded from
	// placement, in virtual seconds (DefaultSatHold when 0). Drift events
	// and width re-crossings extend the hold.
	SatHold float64
	// Metrics, when non-nil, receives the fleetsched_* families. Telemetry
	// never feeds back into placement: same inputs give the same schedule
	// with metrics on or off.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = PolicyQuantile
	}
	if c.Quantile == 0 {
		c.Quantile = DefaultQuantile
	}
	if c.SatRelWidth == 0 {
		c.SatRelWidth = DefaultSatRelWidth
	}
	if c.SatHold == 0 {
		c.SatHold = DefaultSatHold
	}
	return c
}

// JobSpec describes one SOR job to place: the problem shape plus an
// optional completion deadline in absolute virtual seconds (0 = none).
type JobSpec struct {
	// Name optionally labels the job in Status listings.
	Name string
	// N is the grid size (N x N); Iterations the SOR iteration count.
	N          int
	Iterations int
	// Deadline is the absolute virtual-seconds completion deadline on the
	// fleet's shared timeline; 0 means the job has none.
	Deadline float64
}

// Placement reports where one submitted job landed.
type Placement struct {
	// JobID identifies the job in later Status listings.
	JobID uint64
	// Name echoes JobSpec.Name.
	Name string
	// Tenant is the platform the job was committed to.
	Tenant string
	// Policy and Quantile record the objective the decision used.
	Policy   Policy
	Quantile float64
	// Score is the winning objective value: planned tenant backlog plus
	// the policy's execution-time score, in virtual seconds.
	Score float64
	// PredictedMean and PredictedExec are the winner's predicted mean and
	// policy-scored execution time, in virtual seconds.
	PredictedMean float64
	PredictedExec float64
	// PredictionID is the winning tenant's ledger ID for the placement
	// prediction (the one Observe closes when the job completes).
	PredictionID uint64
	// Time is the tenant's virtual clock at placement.
	Time float64
	// Deadline echoes JobSpec.Deadline.
	Deadline float64
	// Skips counts tenants that could not be scored for this job (lookup
	// or prediction failure) and were skipped instead of failing the
	// round.
	Skips int
}

// Job states reported by Status.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateCompleted = "completed"
)

// JobStatus is one job's public state.
type JobStatus struct {
	ID         uint64 `json:"id"`
	Name       string `json:"name,omitempty"`
	Tenant     string `json:"tenant"`
	State      string `json:"state"`
	N          int    `json:"n"`
	Iterations int    `json:"iterations"`
	// PlacedAt, Start, and Finish are virtual seconds (Start/Finish zero
	// until the job starts).
	PlacedAt float64 `json:"placed_at"`
	Start    float64 `json:"start,omitempty"`
	Finish   float64 `json:"finish,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	// PredictedExec is the policy-scored execution time the placement
	// committed to, in virtual seconds.
	PredictedExec float64 `json:"predicted_exec"`
	// Migrations counts how many times rebalancing moved this job.
	Migrations int `json:"migrations,omitempty"`
	// Missed is set on completed jobs that finished after their deadline.
	Missed bool `json:"missed,omitempty"`
}

// TenantStatus is one tenant's scheduler-side state.
type TenantStatus struct {
	Name string `json:"name"`
	// Time is the tenant's virtual clock, in virtual seconds.
	Time float64 `json:"time"`
	// Queued counts jobs waiting (not yet started); Running reports an
	// in-flight job.
	Queued  int  `json:"queued"`
	Running bool `json:"running"`
	// Saturated reports the tenant is excluded from placement until
	// SatUntil (virtual seconds).
	Saturated bool    `json:"saturated"`
	SatUntil  float64 `json:"sat_until,omitempty"`
	// RelWidth is the latest prediction's relative interval width.
	RelWidth float64 `json:"rel_width"`
	// DriftEvents counts calibrator drift events seen so far; Skips counts
	// placement rounds that skipped this tenant on lookup/predict errors.
	DriftEvents int    `json:"drift_events"`
	Skips       uint64 `json:"skips,omitempty"`
	// Completed counts jobs this tenant finished.
	Completed uint64 `json:"completed"`
}

// Status is a consistent snapshot of the scheduler.
type Status struct {
	// Policy and Quantile are the configured defaults.
	Policy   Policy  `json:"policy"`
	Quantile float64 `json:"quantile"`
	// Job population counters.
	Submitted int `json:"submitted"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	// Misses counts completed jobs that blew their deadline; Migrations
	// counts rebalancing moves; Unplaced counts jobs no tenant could
	// score.
	Misses     int `json:"misses"`
	Migrations int `json:"migrations"`
	Unplaced   int `json:"unplaced"`
	// Makespan is the span from the earliest placement to the latest
	// completion, in virtual seconds (0 until a job completes).
	Makespan float64 `json:"makespan"`
	// SaturatedTenants counts currently saturated tenants.
	SaturatedTenants int `json:"saturated_tenants"`
	// Tenants lists per-tenant state in name order; Jobs lists every
	// still-live job plus the most recent completions (oldest first,
	// bounded).
	Tenants []TenantStatus `json:"tenants"`
	Jobs    []JobStatus    `json:"jobs"`
}

// recentCap bounds the completed-job history Status reports.
const recentCap = 256

// job is one placed job's internal record.
type job struct {
	id   uint64
	spec JobSpec

	tenant      string
	predID      uint64
	part        *sor.Partition
	predMean    float64
	plannedExec float64
	placedAt    float64
	migrations  int

	started       bool
	start, finish float64
}

// tenant is the scheduler's per-tenant state.
type tenant struct {
	name    string
	queue   []*job // waiting, in placement order
	running *job
	doneAt  float64 // actual finish of the last completed job

	saturated  bool
	satUntil   float64
	relWidth   float64
	driftsSeen int
	skips      uint64
	completed  uint64
	everScored bool
}

// Scheduler places jobs across the fleet hosted by a predict.Registry.
// Safe for concurrent use.
type Scheduler struct {
	reg *predict.Registry
	cfg Config
	m   *Metrics

	mu       sync.Mutex
	nextID   uint64
	tenants  map[string]*tenant
	unplaced int
	misses   int
	migrated int
	done     int

	firstPlace float64 // earliest placement time (virtual), NaN until set
	lastFinish float64 // latest completion time (virtual)

	recent []JobStatus // completed ring, oldest first
}

// New builds a scheduler over reg. The registry may keep gaining (or
// losing) tenants afterwards: every placement round re-reads the live
// roster.
func New(reg *predict.Registry, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	return &Scheduler{
		reg:        reg,
		cfg:        cfg,
		m:          cfg.Metrics,
		tenants:    make(map[string]*tenant),
		firstPlace: math.NaN(),
	}
}

// Policy returns the configured default policy and quantile.
func (s *Scheduler) Policy() (Policy, float64) { return s.cfg.Policy, s.cfg.Quantile }

// Submit places jobs under the configured default policy. See SubmitWith.
func (s *Scheduler) Submit(jobs []JobSpec) ([]Placement, error) {
	return s.SubmitWith(jobs, s.cfg.Policy, s.cfg.Quantile)
}

// SubmitWith places jobs in order under an explicit policy. Each job is
// scored on every live tenant (sorted by name) and committed to the
// cheapest; tenants that fail Lookup or Predict — a just-retired tenant,
// a broken spec — are skipped and recorded rather than failing the round.
// A job no tenant can score is dropped and counted in Status.Unplaced.
// The call returns one Placement per placed job, in submission order.
// It is an error to submit a malformed job (N < 3, Iterations < 1) or an
// unknown policy.
func (s *Scheduler) SubmitWith(jobs []JobSpec, policy Policy, quantile float64) ([]Placement, error) {
	if policy == "" {
		policy = s.cfg.Policy
	}
	if _, err := ParsePolicy(string(policy)); err != nil {
		return nil, err
	}
	if quantile == 0 {
		quantile = s.cfg.Quantile
	}
	if quantile <= 0 || quantile >= 1 {
		return nil, fmt.Errorf("fleetsched: quantile %g outside (0,1)", quantile)
	}
	for i, js := range jobs {
		if js.N < 3 {
			return nil, fmt.Errorf("fleetsched: job %d: grid size %d too small (need N >= 3)", i, js.N)
		}
		if js.Iterations < 1 {
			return nil, fmt.Errorf("fleetsched: job %d: iterations %d must be positive", i, js.Iterations)
		}
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncLocked()
	placements := make([]Placement, 0, len(jobs))
	for _, js := range jobs {
		s.nextID++
		j := &job{id: s.nextID, spec: js}
		pl, ok := s.placeLocked(j, policy, quantile, "", false)
		if !ok {
			s.unplaced++
			s.m.recordUnplaced()
			continue
		}
		placements = append(placements, pl)
	}
	s.m.recordRound(time.Since(start).Seconds())
	return placements, nil
}

// placeLocked scores j on every live tenant and commits it to the
// cheapest. exclude names a tenant never to consider (the migration
// source). Saturated tenants are skipped unless no unsaturated tenant can
// be scored; onlyUnsaturated disables that fallback (the migration pass,
// which would rather keep a job than move it to another saturated
// tenant). Reports false — with j untouched — when no tenant qualifies.
func (s *Scheduler) placeLocked(j *job, policy Policy, quantile float64, exclude string, onlyUnsaturated bool) (Placement, bool) {
	names := s.reg.Names()
	sort.Strings(names)
	type cand struct {
		name      string
		saturated bool
		score     float64
		exec      float64
		mean      float64
		predID    uint64
		part      *sor.Partition
		now       float64
	}
	var best, bestSat *cand
	skips := 0
	for _, name := range names {
		if name == exclude {
			continue
		}
		ts := s.tenantLocked(name)
		svc, err := s.reg.Lookup(name)
		if err != nil {
			ts.skips++
			skips++
			s.m.recordSkip()
			continue
		}
		req := predict.Request{N: j.spec.N, Iterations: j.spec.Iterations}
		if policy == PolicyQuantile {
			req.Distribution = true
		}
		pred, err := svc.Predict(req)
		if err != nil {
			ts.skips++
			skips++
			s.m.recordSkip()
			continue
		}
		ts.relWidth = relWidth(pred)
		ts.everScored = true
		exec := execScore(pred, policy, quantile)
		c := &cand{
			name:      name,
			saturated: ts.saturated,
			score:     s.backlogLocked(ts, svc.Now()) + exec,
			exec:      exec,
			mean:      pred.Value.Mean,
			predID:    pred.ID,
			part:      pred.Partition,
			now:       svc.Now(),
		}
		if c.saturated {
			if bestSat == nil || c.score < bestSat.score {
				bestSat = c
			}
		} else if best == nil || c.score < best.score {
			best = c
		}
	}
	if best == nil && !onlyUnsaturated {
		best = bestSat // every scorable tenant saturated: degrade, don't drop
	}
	if best == nil {
		return Placement{}, false
	}
	ts := s.tenantLocked(best.name)
	j.tenant = best.name
	j.predID = best.predID
	j.part = best.part
	j.predMean = best.mean
	j.plannedExec = best.exec
	j.placedAt = best.now
	ts.queue = append(ts.queue, j)
	if math.IsNaN(s.firstPlace) || best.now < s.firstPlace {
		s.firstPlace = best.now
	}
	s.m.recordPlacement(policy)
	return Placement{
		JobID:         j.id,
		Name:          j.spec.Name,
		Tenant:        best.name,
		Policy:        policy,
		Quantile:      quantile,
		Score:         best.score,
		PredictedMean: best.mean,
		PredictedExec: best.exec,
		PredictionID:  best.predID,
		Time:          best.now,
		Deadline:      j.spec.Deadline,
		Skips:         skips,
	}, true
}

// tenantLocked returns (creating on first touch) the named tenant state.
func (s *Scheduler) tenantLocked(name string) *tenant {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenant{name: name}
		s.tenants[name] = ts
	}
	return ts
}

// backlogLocked is the tenant's planned outstanding work in virtual
// seconds: the running job's remaining time plus every queued job's
// policy-scored execution time.
func (s *Scheduler) backlogLocked(ts *tenant, now float64) float64 {
	b := 0.0
	if ts.running != nil && ts.running.finish > now {
		b += ts.running.finish - now
	}
	for _, j := range ts.queue {
		b += j.plannedExec
	}
	return b
}

// Sync brings the schedule up to the fleet's current virtual clocks:
// starts and completes due jobs (feeding measured runtimes back through
// Observe), re-reads saturation signals, and migrates queued work away
// from saturated tenants. Callers advance the tenants' clocks (the
// daemon's tick loop, an experiment driver) and call Sync; the scheduler
// never advances a clock itself.
func (s *Scheduler) Sync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncLocked()
}

func (s *Scheduler) syncLocked() {
	names := s.sortedTenantsLocked()
	// Pass 1: execute due work and refresh saturation per tenant.
	for _, name := range names {
		ts := s.tenants[name]
		svc, err := s.reg.Lookup(name)
		if err != nil {
			// The tenant vanished mid-flight (retired): its queued jobs are
			// rescued by the migration pass below; a started job keeps its
			// already-computed finish and completes unobserved.
			ts.skips++
			s.m.recordSkip()
			s.saturateLocked(ts, ts.satUntil) // stays excluded
			s.completeVanishedLocked(ts)
			continue
		}
		now := svc.Now()
		s.runTenantLocked(ts, svc, now)
		s.refreshSaturationLocked(ts, svc, now)
	}
	// Pass 2: migrate queued jobs off saturated tenants.
	for _, name := range names {
		ts := s.tenants[name]
		if !ts.saturated || len(ts.queue) == 0 {
			continue
		}
		queue := ts.queue
		ts.queue = nil
		var kept []*job
		for _, j := range queue {
			// Only move a job somewhere unsaturated; shuffling work between
			// saturated tenants helps nobody.
			if _, ok := s.placeLocked(j, s.cfg.Policy, s.cfg.Quantile, name, true); !ok {
				kept = append(kept, j)
				continue
			}
			j.migrations++
			s.migrated++
			s.m.recordMigration()
		}
		ts.queue = kept
	}
	s.m.recordGauges(s.saturatedCountLocked(), s.queuedCountLocked())
}

// runTenantLocked starts and completes jobs on one tenant up to virtual
// time now. Jobs run one at a time in placement order; a job's actual
// runtime is computed from the tenant's simulated environment the moment
// its start time is reached.
func (s *Scheduler) runTenantLocked(ts *tenant, svc *predict.Service, now float64) {
	for {
		if ts.running != nil {
			if now < ts.running.finish {
				return
			}
			s.completeLocked(ts, svc, ts.running)
			ts.running = nil
		}
		if len(ts.queue) == 0 {
			return
		}
		j := ts.queue[0]
		start := j.placedAt
		if ts.doneAt > start {
			start = ts.doneAt
		}
		if start > now {
			return
		}
		actual, err := s.execTime(svc, j, start)
		if err != nil || actual <= 0 {
			// An unexecutable job (machine mismatch after migration, say)
			// falls back to its planned time so the schedule still closes.
			actual = math.Max(j.plannedExec, 1e-9)
		}
		j.started = true
		j.start = start
		j.finish = start + actual
		ts.queue = ts.queue[1:]
		ts.running = j
	}
}

// completeLocked retires a finished job: Observe the measured runtime,
// count a deadline miss, and roll the job into the bounded history.
func (s *Scheduler) completeLocked(ts *tenant, svc *predict.Service, j *job) {
	if svc != nil && j.predID != 0 {
		// A stale ledger ID (evicted between placement and completion) is
		// not an error worth failing the sync over; calibration just
		// misses one outcome.
		_, _ = svc.Observe(j.predID, j.finish-j.start)
	}
	ts.doneAt = j.finish
	ts.completed++
	s.done++
	if j.finish > s.lastFinish {
		s.lastFinish = j.finish
	}
	missed := j.spec.Deadline > 0 && j.finish > j.spec.Deadline
	if missed {
		s.misses++
	}
	s.m.recordCompletion(missed)
	s.recent = append(s.recent, s.jobStatus(j, StateCompleted, missed))
	if len(s.recent) > recentCap {
		s.recent = s.recent[len(s.recent)-recentCap:]
	}
}

// completeVanishedLocked finishes the running job of a retired tenant at
// its already-computed finish time (unobserved: there is no service left
// to close the loop on).
func (s *Scheduler) completeVanishedLocked(ts *tenant) {
	if ts.running == nil {
		return
	}
	s.completeLocked(ts, nil, ts.running)
	ts.running = nil
}

// refreshSaturationLocked re-reads one tenant's saturation signals: new
// calibrator drift events and the latest relative interval width both
// saturate; a quiet tenant clears once the hold expires.
func (s *Scheduler) refreshSaturationLocked(ts *tenant, svc *predict.Service, now float64) {
	snap := svc.Accuracy()
	if len(snap.Drifts) > ts.driftsSeen {
		ts.driftsSeen = len(snap.Drifts)
		s.saturateLocked(ts, now+s.cfg.SatHold)
	}
	if ts.everScored && ts.relWidth > s.cfg.SatRelWidth {
		s.saturateLocked(ts, now+s.cfg.SatHold)
	}
	if ts.saturated && now >= ts.satUntil && ts.relWidth <= s.cfg.SatRelWidth {
		ts.saturated = false
	}
}

func (s *Scheduler) saturateLocked(ts *tenant, until float64) {
	ts.saturated = true
	if until > ts.satUntil {
		ts.satUntil = until
	}
}

// execTime computes a job's actual runtime starting at start, in virtual
// seconds, from the tenant's simulated environment: each strip's element
// updates integrated over the machine's true availability trajectory,
// plus the ghost-row exchanges at the dedicated link rate (the same
// communication model sched.StripTime plans against), maxed over strips.
func (s *Scheduler) execTime(svc *predict.Service, j *job, start float64) (float64, error) {
	part := j.part
	if part == nil {
		return 0, errors.New("fleetsched: job has no partition")
	}
	env := svc.Env()
	plat := svc.Platform()
	p := part.P()
	if p > plat.Size() {
		return 0, fmt.Errorf("fleetsched: partition spans %d machines, tenant has %d", p, plat.Size())
	}
	n := j.spec.N
	iters := j.spec.Iterations
	ghost := float64(n-2) * 8
	longest := 0.0
	for m := 0; m < p; m++ {
		elems := float64(part.Rows[m]*(n-2)) * float64(iters)
		d, err := env.WorkDuration(m, elems, start)
		if err != nil {
			return 0, err
		}
		neighbors := 0
		comm := 0.0
		if m > 0 {
			neighbors++
		}
		if m < p-1 {
			neighbors++
		}
		if neighbors > 0 {
			other := m - 1
			if other < 0 {
				other = m + 1
			}
			link, err := plat.Link(m, other)
			if err != nil {
				return 0, err
			}
			comm = float64(4*neighbors*iters) * (ghost/link.DedBW + link.Latency)
		}
		if d+comm > longest {
			longest = d + comm
		}
	}
	return longest, nil
}

// sortedTenantsLocked returns the touched-tenant names in sorted order.
func (s *Scheduler) sortedTenantsLocked() []string {
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *Scheduler) saturatedCountLocked() int {
	n := 0
	for _, ts := range s.tenants {
		if ts.saturated {
			n++
		}
	}
	return n
}

func (s *Scheduler) queuedCountLocked() int {
	n := 0
	for _, ts := range s.tenants {
		n += len(ts.queue)
		if ts.running != nil {
			n++
		}
	}
	return n
}

func (s *Scheduler) jobStatus(j *job, state string, missed bool) JobStatus {
	return JobStatus{
		ID:            j.id,
		Name:          j.spec.Name,
		Tenant:        j.tenant,
		State:         state,
		N:             j.spec.N,
		Iterations:    j.spec.Iterations,
		PlacedAt:      j.placedAt,
		Start:         j.start,
		Finish:        j.finish,
		Deadline:      j.spec.Deadline,
		PredictedExec: j.plannedExec,
		Migrations:    j.migrations,
		Missed:        missed,
	}
}

// Status returns a consistent snapshot. It does not advance the schedule;
// call Sync first to fold in clock progress.
func (s *Scheduler) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Policy:     s.cfg.Policy,
		Quantile:   s.cfg.Quantile,
		Completed:  s.done,
		Misses:     s.misses,
		Migrations: s.migrated,
		Unplaced:   s.unplaced,
	}
	st.Submitted = int(s.nextID)
	if s.done > 0 && !math.IsNaN(s.firstPlace) {
		st.Makespan = s.lastFinish - s.firstPlace
	}
	for _, name := range s.sortedTenantsLocked() {
		ts := s.tenants[name]
		t := TenantStatus{
			Name:        name,
			Queued:      len(ts.queue),
			Running:     ts.running != nil,
			Saturated:   ts.saturated,
			SatUntil:    ts.satUntil,
			RelWidth:    ts.relWidth,
			DriftEvents: ts.driftsSeen,
			Skips:       ts.skips,
			Completed:   ts.completed,
		}
		if svc, err := s.reg.Lookup(name); err == nil {
			t.Time = svc.Now()
		}
		if ts.saturated {
			st.SaturatedTenants++
		}
		st.Queued += len(ts.queue)
		if ts.running != nil {
			st.Running++
			st.Jobs = append(st.Jobs, s.jobStatus(ts.running, StateRunning, false))
		}
		for _, j := range ts.queue {
			st.Jobs = append(st.Jobs, s.jobStatus(j, StateQueued, false))
		}
		st.Tenants = append(st.Tenants, t)
	}
	st.Jobs = append(st.Jobs, s.recent...)
	sort.Slice(st.Jobs, func(i, k int) bool { return st.Jobs[i].ID < st.Jobs[k].ID })
	return st
}

// execScore maps a prediction onto the policy's execution-time score, in
// virtual seconds. PolicyQuantile reads the calibrated quantile grid when
// the prediction carries one and falls back to the normal-interpretation
// quantile of the calibrated two-number value otherwise; PolicyMean and
// PolicyUpper reuse the sched objectives.
func execScore(pred predict.Prediction, policy Policy, quantile float64) float64 {
	switch policy {
	case PolicyMean:
		return sched.MeanObjective(pred.Value)
	case PolicyUpper:
		return sched.UpperBoundObjective(pred.Value)
	default:
		if v, ok := pred.Dist.Quantile(quantile); ok {
			return v
		}
		return sched.QuantileObjective(quantile)(pred.Value)
	}
}

// relWidth is a prediction's relative interval width: the calibrated 95%
// interval's full width over its median (grid when present, the
// two-number value otherwise). It is the saturation detector's
// uncertainty signal — dimensionless, so one threshold covers fast and
// slow tenants alike.
func relWidth(pred predict.Prediction) float64 {
	if lo, ok := pred.Dist.Quantile(0.025); ok {
		hi, _ := pred.Dist.Quantile(0.975)
		med, _ := pred.Dist.Quantile(0.5)
		if med > 0 {
			return (hi - lo) / med
		}
	}
	if pred.Value.Mean > 0 {
		return (pred.Value.Hi() - pred.Value.Lo()) / pred.Value.Mean
	}
	return 0
}
