package fleetsched

import (
	"prodpred/internal/obs"
)

// Scheduler metric family names, as exposed on GET /metrics. The full
// catalog lives in OPERATIONS.md, and internal/readmecheck fails the build
// if a registered name is missing from it.
const (
	MetricPlacements      = "fleetsched_placements_total"
	MetricMigrations      = "fleetsched_migrations_total"
	MetricTenantSkips     = "fleetsched_tenant_skips_total"
	MetricUnplaced        = "fleetsched_unplaced_jobs_total"
	MetricJobsCompleted   = "fleetsched_jobs_completed_total"
	MetricDeadlineMisses  = "fleetsched_deadline_misses_total"
	MetricSaturated       = "fleetsched_saturated_tenants"
	MetricJobsOutstanding = "fleetsched_jobs_outstanding"
	MetricRoundDuration   = "fleetsched_schedule_duration_seconds"
)

// Policies lists every placement policy, for eager label registration and
// flag help.
var Policies = []Policy{PolicyMean, PolicyQuantile, PolicyUpper}

// Metrics holds the scheduler's pre-resolved metric series. A nil *Metrics
// makes every record call a cheap no-op, and telemetry never feeds back
// into placement: the schedule is identical with metrics on or off.
type Metrics struct {
	placements map[Policy]*obs.Counter
	migrations *obs.Counter
	skips      *obs.Counter
	unplaced   *obs.Counter
	completed  *obs.Counter
	misses     *obs.Counter
	saturated  *obs.Gauge
	queued     *obs.Gauge
	round      *obs.Histogram
}

// NewMetrics registers (or finds) the fleetsched families on reg and
// resolves every series eagerly — one series per placement policy — so the
// documented catalog exists from the first scrape. A nil reg returns nil,
// which every record method treats as a no-op.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		placements: make(map[Policy]*obs.Counter, len(Policies)),
		migrations: reg.NewCounter(MetricMigrations,
			"Queued jobs migrated away from saturated tenants by the rebalancer."),
		skips: reg.NewCounter(MetricTenantSkips,
			"Tenants skipped during placement or sync on lookup/predict errors (e.g. just retired)."),
		unplaced: reg.NewCounter(MetricUnplaced,
			"Submitted jobs dropped because no tenant could be scored."),
		completed: reg.NewCounter(MetricJobsCompleted,
			"Jobs completed by the fleet scheduler."),
		misses: reg.NewCounter(MetricDeadlineMisses,
			"Completed jobs that finished after their deadline."),
		saturated: reg.NewGauge(MetricSaturated,
			"Tenants currently marked saturated (excluded from placement)."),
		queued: reg.NewGauge(MetricJobsOutstanding,
			"Jobs currently queued or running across the fleet."),
		round: reg.NewHistogram(MetricRoundDuration,
			"Wall-clock latency of one placement round in seconds.", nil),
	}
	vec := reg.NewCounterVec(MetricPlacements,
		"Jobs placed, by placement policy.", "policy")
	for _, p := range Policies {
		m.placements[p] = vec.With(string(p))
	}
	return m
}

func (m *Metrics) recordPlacement(p Policy) {
	if m == nil {
		return
	}
	if c, ok := m.placements[p]; ok {
		c.Inc()
	}
}

func (m *Metrics) recordMigration() {
	if m != nil {
		m.migrations.Inc()
	}
}

func (m *Metrics) recordSkip() {
	if m != nil {
		m.skips.Inc()
	}
}

func (m *Metrics) recordUnplaced() {
	if m != nil {
		m.unplaced.Inc()
	}
}

func (m *Metrics) recordCompletion(missed bool) {
	if m == nil {
		return
	}
	m.completed.Inc()
	if missed {
		m.misses.Inc()
	}
}

func (m *Metrics) recordGauges(saturated, outstanding int) {
	if m == nil {
		return
	}
	m.saturated.Set(float64(saturated))
	m.queued.Set(float64(outstanding))
}

func (m *Metrics) recordRound(seconds float64) {
	if m != nil {
		m.round.Observe(seconds)
	}
}
