package fleetsched

import (
	"reflect"
	"testing"

	"prodpred/internal/obs"
	"prodpred/internal/predict"
)

// testSpec is one small two-machine tenant for scheduler tests.
func testSpec(name, kind, loadKind string, seed int64) predict.PlatformSpec {
	return predict.PlatformSpec{
		Name: name,
		Machines: []predict.MachineSpec{
			{Name: "m0", Kind: kind},
			{Name: "m1", Kind: kind},
		},
		CPU:    []predict.LoadSpec{{Kind: loadKind}},
		Seed:   seed,
		Warmup: 150,
	}
}

func testRegistry(t *testing.T, specs ...predict.PlatformSpec) *predict.Registry {
	t.Helper()
	reg := predict.NewRegistry()
	for _, sp := range specs {
		if err := reg.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// advance moves every live tenant clock forward dt virtual seconds.
func advance(t *testing.T, reg *predict.Registry, dt float64) {
	t.Helper()
	for _, svc := range reg.Services() {
		if err := svc.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	reg := testRegistry(t, testSpec("a", "sparc5", "light", 11))
	s := New(reg, Config{})
	if _, err := s.Submit([]JobSpec{{N: 2, Iterations: 1}}); err == nil {
		t.Error("N=2 should be rejected")
	}
	if _, err := s.Submit([]JobSpec{{N: 50, Iterations: 0}}); err == nil {
		t.Error("zero iterations should be rejected")
	}
	if _, err := s.SubmitWith([]JobSpec{{N: 50, Iterations: 1}}, "median", 0.5); err == nil {
		t.Error("unknown policy should be rejected")
	}
	if _, err := s.SubmitWith([]JobSpec{{N: 50, Iterations: 1}}, PolicyQuantile, 1.5); err == nil {
		t.Error("quantile outside (0,1) should be rejected")
	}
	if _, err := ParsePolicy("quantile"); err != nil {
		t.Error(err)
	}
	if _, err := ParsePolicy("p95"); err == nil {
		t.Error("ParsePolicy should reject unknown names")
	}
}

func TestPlacementPrefersFasterTenant(t *testing.T) {
	// Identical light loads; ultra machines are 8x faster than sparc2, so
	// every policy should place there.
	reg := testRegistry(t,
		testSpec("fast", "ultra", "light", 21),
		testSpec("slow", "sparc2", "light", 22),
	)
	for _, policy := range Policies {
		s := New(reg, Config{Policy: policy})
		pls, err := s.Submit([]JobSpec{{N: 120, Iterations: 10}})
		if err != nil {
			t.Fatal(err)
		}
		if len(pls) != 1 || pls[0].Tenant != "fast" {
			t.Errorf("policy %s placed on %+v, want fast", policy, pls)
		}
		if pls[0].PredictedExec <= 0 || pls[0].Score < pls[0].PredictedExec {
			t.Errorf("policy %s placement %+v has bad score fields", policy, pls[0])
		}
	}
}

func TestBacklogSpreadsWork(t *testing.T) {
	// Two equal tenants: a burst of identical jobs should not all pile on
	// one, because each placement adds its planned time to the backlog.
	reg := testRegistry(t,
		testSpec("a", "sparc10", "light", 31),
		testSpec("b", "sparc10", "light", 32),
	)
	s := New(reg, Config{Policy: PolicyMean})
	jobs := make([]JobSpec, 6)
	for i := range jobs {
		jobs[i] = JobSpec{N: 200, Iterations: 50}
	}
	pls, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	byTenant := map[string]int{}
	for _, pl := range pls {
		byTenant[pl.Tenant]++
	}
	if byTenant["a"] == 0 || byTenant["b"] == 0 {
		t.Errorf("backlog-blind placement: %v", byTenant)
	}
}

func TestLifecycleCompletesAndObserves(t *testing.T) {
	reg := testRegistry(t,
		testSpec("a", "sparc10", "light", 41),
		testSpec("b", "sparc5", "light", 42),
	)
	m := NewMetrics(obs.NewRegistry())
	s := New(reg, Config{Policy: PolicyQuantile, Metrics: m})
	deadline := 150.0 + 4000
	pls, err := s.Submit([]JobSpec{
		{Name: "j1", N: 200, Iterations: 60, Deadline: deadline},
		{Name: "j2", N: 200, Iterations: 60, Deadline: deadline},
		{Name: "j3", N: 150, Iterations: 40},
	})
	if err != nil || len(pls) != 3 {
		t.Fatalf("placements=%v err=%v", pls, err)
	}
	st := s.Status()
	if st.Queued+st.Running != 3 || st.Completed != 0 {
		t.Fatalf("pre-sync status %+v", st)
	}
	var obsBefore int
	for _, svc := range reg.Services() {
		obsBefore += svc.Accuracy().Observed
	}
	for tick := 0; tick < 400 && s.Status().Completed < 3; tick++ {
		advance(t, reg, 5)
		s.Sync()
	}
	st = s.Status()
	if st.Completed != 3 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("jobs did not complete: %+v", st)
	}
	if st.Makespan <= 0 {
		t.Errorf("makespan %g not positive", st.Makespan)
	}
	if st.Misses != 0 {
		t.Errorf("unexpected deadline misses in %+v", st)
	}
	var obsAfter int
	for _, svc := range reg.Services() {
		obsAfter += svc.Accuracy().Observed
	}
	if obsAfter != obsBefore+3 {
		t.Errorf("observe feedback: %d -> %d, want +3", obsBefore, obsAfter)
	}
	// Completed jobs stay visible with start/finish stamps.
	for _, j := range st.Jobs {
		if j.State != StateCompleted || j.Finish <= j.Start || j.Start <= 0 {
			t.Errorf("bad completed job %+v", j)
		}
	}
}

func TestDeadlineMissCounted(t *testing.T) {
	reg := testRegistry(t, testSpec("a", "sparc2", "light", 51))
	s := New(reg, Config{Policy: PolicyMean})
	// An absurd deadline in the past guarantees a miss.
	if _, err := s.Submit([]JobSpec{{N: 150, Iterations: 30, Deadline: 1}}); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 400 && s.Status().Completed < 1; tick++ {
		advance(t, reg, 5)
		s.Sync()
	}
	st := s.Status()
	if st.Completed != 1 || st.Misses != 1 {
		t.Fatalf("want 1 completion + 1 miss, got %+v", st)
	}
	if len(st.Jobs) != 1 || !st.Jobs[0].Missed {
		t.Errorf("job not flagged missed: %+v", st.Jobs)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() Status {
		reg := testRegistry(t,
			testSpec("a", "sparc10", "platform2-bursty", 61),
			testSpec("b", "sparc5", "light", 62),
			testSpec("c", "ultra", "platform1-center", 63),
		)
		s := New(reg, Config{Policy: PolicyQuantile})
		for wave := 0; wave < 3; wave++ {
			if _, err := s.Submit([]JobSpec{
				{N: 180, Iterations: 40, Deadline: 2000},
				{N: 140, Iterations: 30, Deadline: 2000},
			}); err != nil {
				t.Fatal(err)
			}
			for tick := 0; tick < 12; tick++ {
				advance(t, reg, 5)
				s.Sync()
			}
		}
		for tick := 0; tick < 600 && s.Status().Completed < 6; tick++ {
			advance(t, reg, 5)
			s.Sync()
		}
		return s.Status()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("schedule not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.Completed != 6 {
		t.Errorf("expected all 6 jobs to complete: %+v", a)
	}
}

// TestRetiredTenantSkipped is the regression test for the fleet-path miss
// handling: a scheduler querying a just-retired tenant must skip and
// record it, not fail the placement round.
func TestRetiredTenantSkipped(t *testing.T) {
	reg := testRegistry(t,
		testSpec("keep", "sparc10", "light", 71),
		testSpec("gone", "ultra", "light", 72),
	)
	m := NewMetrics(obs.NewRegistry())
	s := New(reg, Config{Policy: PolicyQuantile, Metrics: m})
	// Warm the scheduler's view of both tenants, queueing work on the
	// faster one (which is about to retire).
	pls, err := s.Submit([]JobSpec{{N: 200, Iterations: 80}, {N: 200, Iterations: 80}})
	if err != nil {
		t.Fatal(err)
	}
	queuedOnGone := 0
	for _, pl := range pls {
		if pl.Tenant == "gone" {
			queuedOnGone++
		}
	}
	if queuedOnGone == 0 {
		t.Fatal("test setup: expected at least one job on the ultra tenant")
	}
	if err := reg.Retire("gone"); err != nil {
		t.Fatal(err)
	}
	// Placement after the retire succeeds and lands on the survivor; the
	// sync pass in front of it queries the vanished tenant (which still
	// holds queued work), skips it, and records the skip.
	pls, err = s.Submit([]JobSpec{{N: 150, Iterations: 40}})
	if err != nil {
		t.Fatalf("placement round failed on retired tenant: %v", err)
	}
	if len(pls) != 1 || pls[0].Tenant != "keep" {
		t.Fatalf("want placement on keep, got %+v", pls)
	}
	// Sync rescues the retired tenant's queued jobs onto the survivor.
	advance(t, reg, 5)
	s.Sync()
	st := s.Status()
	for _, j := range st.Jobs {
		if j.State == StateQueued && j.Tenant == "gone" {
			t.Errorf("job still queued on retired tenant: %+v", j)
		}
	}
	var goneTS *TenantStatus
	for i := range st.Tenants {
		if st.Tenants[i].Name == "gone" {
			goneTS = &st.Tenants[i]
		}
	}
	if goneTS == nil || goneTS.Skips == 0 {
		t.Errorf("skip bookkeeping missing for retired tenant: %+v", st.Tenants)
	}
	// Everything still completes on the survivor.
	for tick := 0; tick < 1000 && s.Status().Completed < 3; tick++ {
		advance(t, reg, 5)
		s.Sync()
	}
	if st = s.Status(); st.Completed != 3 {
		t.Errorf("jobs lost after retire: %+v", st)
	}
}

// TestMigrationOffSaturatedTenant drives the rebalancer directly: with a
// tenant marked saturated, Sync must move its queued (not running) work to
// an unsaturated tenant and count the migrations.
func TestMigrationOffSaturatedTenant(t *testing.T) {
	reg := testRegistry(t,
		testSpec("hot", "ultra", "light", 81),
		testSpec("cold", "sparc2", "light", 82),
	)
	m := NewMetrics(obs.NewRegistry())
	s := New(reg, Config{Policy: PolicyQuantile, Metrics: m})
	// Everything lands on the 16x-faster tenant.
	pls, err := s.Submit([]JobSpec{
		{N: 200, Iterations: 80}, {N: 200, Iterations: 80}, {N: 200, Iterations: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range pls {
		if pl.Tenant != "hot" {
			t.Fatalf("test setup: expected all jobs on hot, got %+v", pls)
		}
	}
	// Saturate it (white-box: organic saturation is exercised by the
	// fleet-sched experiment; this pins the rebalancing mechanics).
	s.mu.Lock()
	s.saturateLocked(s.tenants["hot"], 1e12)
	s.mu.Unlock()
	advance(t, reg, 1)
	s.Sync()
	st := s.Status()
	if st.Migrations == 0 {
		t.Fatalf("no migrations recorded: %+v", st)
	}
	if st.SaturatedTenants != 1 {
		t.Errorf("saturated gauge: %+v", st)
	}
	for _, j := range st.Jobs {
		if j.State == StateQueued && j.Tenant == "hot" {
			t.Errorf("queued job left on saturated tenant: %+v", j)
		}
		if j.State == StateRunning && j.Tenant != "hot" {
			t.Errorf("running job should not migrate: %+v", j)
		}
	}
}

// TestStatusMetricNamesRegistered pins the metric families the OPERATIONS
// catalog documents.
func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	NewMetrics(reg)
	names := map[string]bool{}
	for _, n := range reg.MetricNames() {
		names[n] = true
	}
	for _, want := range []string{
		MetricPlacements, MetricMigrations, MetricTenantSkips, MetricUnplaced,
		MetricJobsCompleted, MetricDeadlineMisses, MetricSaturated,
		MetricJobsOutstanding, MetricRoundDuration,
	} {
		if !names[want] {
			t.Errorf("metric %s not registered", want)
		}
	}
}
