package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"prodpred/internal/cluster"
	"prodpred/internal/dist"
	"prodpred/internal/sched"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

func init() {
	register(Experiment{
		ID:    "ablation-empirical",
		Title: "Ablation: closed-form Table 2 rules vs full empirical propagation",
		Paper: "§2.1: 'general distributions are awkward to work with' — quantified: accuracy given up and speed gained by the normal assumption.",
		Run:   runAblationEmpirical,
	})
	register(Experiment{
		ID:    "ablation-partition",
		Title: "Ablation: capacity-proportional vs time-balanced decomposition",
		Paper: "Footnote 2 operationalized: balancing predicted completion times (compute + comm) beats balancing raw capacity on comm-heavy problems.",
		Run:   runAblationPartition,
	})
}

// runAblationEmpirical propagates the SOR computation component both ways:
// the paper's closed-form normal rules and the ground-truth empirical
// (resampling) combination, for a normal load and a long-tailed load.
func runAblationEmpirical(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	const benchSecs = 100.0 // dedicated compute seconds for the strip

	type scenario struct {
		name  string
		draws []float64
	}
	normal, err := dist.NewTruncatedNormal(0.48, 0.025, 0.01, 1)
	if err != nil {
		return nil, err
	}
	longtail, err := dist.LogNormalFromMoments(0.5, 0.15)
	if err != nil {
		return nil, err
	}
	clamp := func(xs []float64) []float64 {
		for i, x := range xs {
			if x > 1 {
				xs[i] = 1
			}
			if x < 0.01 {
				xs[i] = 0.01
			}
		}
		return xs
	}
	scenarios := []scenario{
		{"normal load (0.48±0.05)", dist.SampleN(normal, rng, 4000)},
		{"long-tailed load", clamp(dist.SampleN(longtail, rng, 4000))},
	}

	var b strings.Builder
	metrics := map[string]float64{}
	tb := NewTable("load class", "rule prediction", "empirical prediction", "true 95% interval", "rule covers")
	for i, sc := range scenarios {
		emp, err := stochastic.NewEmpirical(sc.draws)
		if err != nil {
			return nil, err
		}
		// Closed-form: summarize then divide.
		ruleVal := stochastic.Point(benchSecs).DivUnrelated(emp.Summary())
		// Ground truth: divide the samples, then look at the distribution.
		bench, err := stochastic.NewEmpirical([]float64{benchSecs, benchSecs, benchSecs})
		if err != nil {
			return nil, err
		}
		truth, err := bench.Div(emp, rng, 60000)
		if err != nil {
			return nil, err
		}
		lo, hi, err := truth.Interval(0.95)
		if err != nil {
			return nil, err
		}
		covered := truth.Coverage(ruleVal.Lo(), ruleVal.Hi())
		tb.AddRowf(sc.name, ruleVal.String(), truth.String(),
			fmt.Sprintf("[%.1f,%.1f]", lo, hi), pct(covered))
		metrics[fmt.Sprintf("s%d_rule_cov", i)] = covered
	}

	// Cost comparison: one closed-form divide vs one resampled divide.
	empA, err := stochastic.NewEmpirical(scenarios[0].draws)
	if err != nil {
		return nil, err
	}
	v := empA.Summary()
	start := time.Now()
	const ruleReps = 1_000_000
	sink := stochastic.Value{}
	for i := 0; i < ruleReps; i++ {
		sink = stochastic.Point(benchSecs).DivUnrelated(v)
	}
	_ = sink
	rulePer := time.Since(start).Seconds() / ruleReps
	start = time.Now()
	const empReps = 50
	bench3, err := stochastic.NewEmpirical([]float64{benchSecs, benchSecs + 1e-9, benchSecs})
	if err != nil {
		return nil, err
	}
	for i := 0; i < empReps; i++ {
		if _, err := bench3.Div(empA, rng, 10000); err != nil {
			return nil, err
		}
	}
	empPer := time.Since(start).Seconds() / empReps
	speedup := empPer / rulePer
	metrics["rule_speedup"] = speedup

	b.WriteString("Propagating 'benchmark / load' two ways:\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nClosed-form rule: %.0f ns/op; empirical resampling: %.0f µs/op (%.0fx slower)\n",
		rulePer*1e9, empPer*1e6, speedup)
	b.WriteString("On normal load the rule's interval covers ~95% of the true\ndistribution; on long-tailed load it loses tail coverage — the paper's\nstated tradeoff, now with numbers.\n")
	return &Result{ID: "ablation-empirical", Title: "Empirical ablation", Text: b.String(), Metrics: metrics}, nil
}

// runAblationPartition compares capacity-proportional and time-balanced
// decompositions across problem sizes on dedicated Platform 1.
func runAblationPartition(seed int64) (*Result, error) {
	_ = seed
	plat := cluster.Platform1()
	env, err := simenv.NewDedicated(plat)
	if err != nil {
		return nil, err
	}
	ms := make([]cluster.Machine, plat.Size())
	loads := make([]stochastic.Value, plat.Size())
	capWeights := make([]float64, plat.Size())
	for i := range ms {
		ms[i] = plat.Machine(i)
		loads[i] = stochastic.Point(1)
		capWeights[i] = ms[i].ElemRate
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		return nil, err
	}

	run := func(part *sor.Partition, n int) (float64, error) {
		g, err := sor.NewGrid(n)
		if err != nil {
			return 0, err
		}
		g.SetBoundary(func(x, y float64) float64 { return x + y })
		b, err := sor.NewSimBackend(env, part, sor.IdentityMapping(plat.Size()))
		if err != nil {
			return 0, err
		}
		res, err := b.Run(g, sor.DefaultOmega, 20, 0)
		if err != nil {
			return 0, err
		}
		return res.ExecTime, nil
	}

	tb := NewTable("N", "capacity exec (s)", "balanced exec (s)", "speedup", "imbalance cap->bal")
	metrics := map[string]float64{}
	var bld strings.Builder
	for _, n := range []int{80, 120, 200, 400, 800} {
		capPart, err := sor.NewWeightedPartition(n, capWeights)
		if err != nil {
			return nil, err
		}
		balPart, err := sched.TimeBalancedPartition(n, ms, loads, link, 8)
		if err != nil {
			return nil, err
		}
		tCap, err := run(capPart, n)
		if err != nil {
			return nil, err
		}
		tBal, err := run(balPart, n)
		if err != nil {
			return nil, err
		}
		iCap, err := sched.Imbalance(capPart, n, ms, loads, link)
		if err != nil {
			return nil, err
		}
		iBal, err := sched.Imbalance(balPart, n, ms, loads, link)
		if err != nil {
			return nil, err
		}
		tb.AddRowf(n, fmt.Sprintf("%.4f", tCap), fmt.Sprintf("%.4f", tBal),
			fmt.Sprintf("%.2fx", tCap/tBal),
			fmt.Sprintf("%.2f -> %.2f", iCap, iBal))
		metrics[fmt.Sprintf("speedup_n%d", n)] = tCap / tBal
	}
	bld.WriteString("Dedicated Platform 1, 20 iterations, two decompositions:\n")
	bld.WriteString(tb.String())
	bld.WriteString("\nCommunication per strip is size-independent, so on small grids the\ntime-balanced cut shifts rows to the cheap edge strips; as N grows the\ntwo decompositions converge.\n")
	return &Result{ID: "ablation-partition", Title: "Partition ablation", Text: bld.String(), Metrics: metrics}, nil
}
