package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Table renders aligned text tables for experiment output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// %v, floats with 4 significant digits.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		default:
			out[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(out...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// RenderSeries draws y(x) as a rows x cols ASCII plot, the terminal
// analogue of the paper's time-series figures (execution times, load
// traces). Points map to '*'; multiple series can be overlaid by calling
// with different markers via RenderSeriesMulti.
func RenderSeries(xs, ys []float64, cols, rows int) string {
	return RenderSeriesMulti(xs, [][]float64{ys}, []byte{'*'}, cols, rows)
}

// RenderSeriesMulti overlays several series sharing the x axis. Later
// series draw over earlier ones. Markers must parallel the series.
func RenderSeriesMulti(xs []float64, series [][]float64, markers []byte, cols, rows int) string {
	if cols < 8 {
		cols = 8
	}
	if rows < 4 {
		rows = 4
	}
	if len(xs) == 0 || len(series) == 0 {
		return "(no data)\n"
	}
	xLo, xHi := minMax(xs)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, ys := range series {
		lo, hi := minMax(ys)
		yLo = math.Min(yLo, lo)
		yHi = math.Max(yHi, hi)
	}
	if xHi == xLo {
		xHi = xLo + 1
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	canvas := make([][]byte, rows)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", cols))
	}
	for si, ys := range series {
		marker := byte('*')
		if si < len(markers) {
			marker = markers[si]
		}
		for i, y := range ys {
			if i >= len(xs) {
				break
			}
			cx := int((xs[i] - xLo) / (xHi - xLo) * float64(cols-1))
			cy := int((y - yLo) / (yHi - yLo) * float64(rows-1))
			canvas[rows-1-cy][cx] = marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10.4g +%s\n", yHi, strings.Repeat("-", cols))
	for _, line := range canvas {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(line))
	}
	fmt.Fprintf(&b, "%10.4g +%s\n", yLo, strings.Repeat("-", cols))
	fmt.Fprintf(&b, "%10s  %-10.4g%*s\n", "", xLo, cols-10, fmt.Sprintf("%.4g", xHi))
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
