package experiments

import (
	"fmt"
	"strings"
	"time"

	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

func init() {
	register(Experiment{
		ID:    "host-tcp",
		Title: "Host validation: stochastic prediction of real TCP-distributed SOR runs",
		Paper: "The paper's methodology applied to this machine: benchmark-calibrated structural prediction and stochastic summaries of real wall-clock times.",
		Run:   runHostTCP,
	})
}

// runHostTCP is the one experiment that runs on real hardware rather than
// the simulator: the TCP-distributed SOR executes on loopback, the
// benchmark-based computation component is calibrated with a real
// BM(Elt) measurement, and run-to-run wall-clock variation is summarized
// as a stochastic value whose interval is checked against later runs —
// the paper's loop with this host as the production machine. Wall-clock
// numbers vary with host load; the metrics are shapes, not constants.
func runHostTCP(seed int64) (*Result, error) {
	_ = seed // real time is the randomness source here
	const (
		n       = 257
		iters   = 30
		workers = 4
		warmup  = 2
		train   = 6
		test    = 8
	)
	part, err := sor.NewEqualPartition(n, workers)
	if err != nil {
		return nil, err
	}
	backend, err := sor.NewTCPBackend(part)
	if err != nil {
		return nil, err
	}
	runOnce := func() (sor.TCPResult, error) {
		g, err := sor.NewGrid(n)
		if err != nil {
			return sor.TCPResult{}, err
		}
		g.SetBoundary(func(x, y float64) float64 { return x*x - y*y })
		return backend.Run(g, sor.DefaultOmega, iters)
	}

	// Calibrate the benchmark-based computation component (§2.2.1):
	// BM(Elt) on this host.
	bm, err := sor.BenchmarkElement(n, 3)
	if err != nil {
		return nil, err
	}
	// Structural compute prediction per phase: all strips are equal and
	// workers run in parallel, so Max_p Comp_p = elems_p/2 * BM.
	stripElems := float64(part.Elems(0))
	compPred := 2 * float64(iters) * (stripElems / 2) * bm // red + black

	for i := 0; i < warmup; i++ {
		if _, err := runOnce(); err != nil {
			return nil, err
		}
	}
	var trainTimes []float64
	var compObserved time.Duration
	for i := 0; i < train; i++ {
		res, err := runOnce()
		if err != nil {
			return nil, err
		}
		trainTimes = append(trainTimes, res.Elapsed.Seconds())
		for _, c := range res.CompTime {
			compObserved += c
		}
	}
	sv, err := stochastic.FromSample(trainTimes)
	if err != nil {
		return nil, err
	}
	// Observed per-worker compute across training runs, for the
	// calibration ratio.
	compPerRun := compObserved.Seconds() / float64(train*workers)

	captured, tested := 0, 0
	var maxOutside float64
	var testTimes []float64
	for i := 0; i < test; i++ {
		res, err := runOnce()
		if err != nil {
			return nil, err
		}
		t := res.Elapsed.Seconds()
		testTimes = append(testTimes, t)
		tested++
		if sv.Contains(t) {
			captured++
		} else if e := sv.RelativeErrorOutside(t); e > maxOutside {
			maxOutside = e
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Real TCP-distributed SOR on loopback: %dx%d, %d iterations, %d workers\n\n", n, n, iters, workers)
	fmt.Fprintf(&b, "Calibration: BM(Elt) = %.1f ns/element\n", bm*1e9)
	fmt.Fprintf(&b, "Structural compute prediction %.4f s/run vs observed %.4f s/run (ratio %.2f)\n\n",
		compPred, compPerRun, compPerRun/compPred)
	fmt.Fprintf(&b, "Training runs (%d): stochastic wall-clock value %s\n", train, sv.String())
	fmt.Fprintf(&b, "Test runs (%d): %d/%d inside the interval; worst outside error %s\n",
		test, captured, tested, pct(maxOutside))
	tb := NewTable("run", "wall clock (s)", "inside")
	for i, t := range testTimes {
		in := "yes"
		if !sv.Contains(t) {
			in = "NO"
		}
		tb.AddRowf(i+1, fmt.Sprintf("%.4f", t), in)
	}
	b.WriteString(tb.String())
	return &Result{
		ID: "host-tcp", Title: "Host TCP validation", Text: b.String(),
		Metrics: map[string]float64{
			"bm_ns":        bm * 1e9,
			"comp_ratio":   compPerRun / compPred,
			"capture_frac": float64(captured) / float64(tested),
			"spread_rel":   sv.RelativeSpread(),
		},
	}, nil
}
