package experiments

import "testing"

// assertQuantileBeatsMean pins the experiment's headline claim at one
// seed: on every bursty scenario the quantile policy strictly wins both
// makespan and deadline-miss rate against the mean policy.
func assertQuantileBeatsMean(t *testing.T, seed int64) {
	t.Helper()
	r := runExp(t, "fleet-sched", seed)
	assertMetric(t, r, "scenarios", 2, 2)
	assertMetric(t, r, "quantile_wins", 2, 2)
	for _, sc := range []string{"flash-crowd", "regime-cascade"} {
		// Every arm drains its full job stream.
		assertMetric(t, r, sc+"_completed_mean", 24, 24)
		assertMetric(t, r, sc+"_completed_quantile", 24, 24)
		mMk, err := r.Metric(sc + "_makespan_mean")
		if err != nil {
			t.Fatal(err)
		}
		qMk, err := r.Metric(sc + "_makespan_quantile")
		if err != nil {
			t.Fatal(err)
		}
		if qMk >= mMk {
			t.Errorf("seed %d %s: quantile makespan %.0f not under mean %.0f", seed, sc, qMk, mMk)
		}
		mMiss, err := r.Metric(sc + "_missrate_mean")
		if err != nil {
			t.Fatal(err)
		}
		qMiss, err := r.Metric(sc + "_missrate_quantile")
		if err != nil {
			t.Fatal(err)
		}
		if qMiss >= mMiss {
			t.Errorf("seed %d %s: quantile miss rate %.3f not under mean %.3f", seed, sc, qMiss, mMiss)
		}
		// The quantile arm holds the deadline SLO outright; the mean arm
		// pays a real (not rounding-level) miss rate.
		if qMiss > 0.05 {
			t.Errorf("seed %d %s: quantile miss rate %.3f above 5%%", seed, sc, qMiss)
		}
		if mMiss < 0.04 {
			t.Errorf("seed %d %s: mean miss rate %.3f too small to demonstrate the effect", seed, sc, mMiss)
		}
	}
}

// TestFleetSchedQuantileWins is the EXPERIMENTS.md acceptance gate at the
// pinned seed.
func TestFleetSchedQuantileWins(t *testing.T) {
	assertQuantileBeatsMean(t, 1)
}

// TestFleetSchedQuantileWinsSecondSeed re-runs the comparison at a second
// seed: the win is a property of reading the distribution, not of one
// sample path.
func TestFleetSchedQuantileWinsSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("second-seed sweep skipped in -short")
	}
	assertQuantileBeatsMean(t, 2)
}
