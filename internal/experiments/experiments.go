// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each experiment
// is deterministic given its seed and returns a rendered text artifact
// together with named numeric metrics that the benchmark harness and the
// integration tests assert on.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of one experiment.
type Result struct {
	ID      string
	Title   string
	Text    string             // rendered tables / ASCII figures
	Metrics map[string]float64 // named shape metrics
}

// Metric fetches a named metric, failing loudly when absent.
func (r *Result) Metric(name string) (float64, error) {
	v, ok := r.Metrics[name]
	if !ok {
		return 0, fmt.Errorf("experiments: %s has no metric %q", r.ID, name)
	}
	return v, nil
}

// Experiment is a registered, runnable reproduction artifact.
type Experiment struct {
	ID    string
	Title string
	Paper string // what the paper reports, for EXPERIMENTS.md context
	Run   func(seed int64) (*Result, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try one of: %s)",
		id, strings.Join(IDs(), ", "))
}

// IDs lists all registered experiment IDs.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
