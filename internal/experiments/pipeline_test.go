package experiments

import (
	"strings"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
)

// smallBurstyConfig is a scaled-down Platform 2 pipeline for fast tests.
func smallBurstyConfig(t *testing.T, seed int64, runs int) productionConfig {
	t.Helper()
	plat := cluster.Platform2()
	cpu := make([]load.Process, plat.Size())
	for i := range cpu {
		p, err := load.Platform2FourModeBursty(seed + int64(i)*7)
		if err != nil {
			t.Fatal(err)
		}
		cpu[i] = p
	}
	return productionConfig{
		plat:         plat,
		cpu:          cpu,
		net:          load.Dedicated(),
		n:            300,
		iters:        8,
		runs:         runs,
		gap:          20,
		warmup:       600,
		partStrategy: sched.MeanBalanced,
		maxStrategy:  stochastic.LargestMean,
	}
}

func TestRunProductionSeriesBasics(t *testing.T) {
	cfg := smallBurstyConfig(t, 3, 6)
	recs, err := runProductionSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("records=%d", len(recs))
	}
	prev := 0.0
	for i, r := range recs {
		if r.Start < prev {
			t.Errorf("run %d starts before previous ended", i)
		}
		prev = r.Start
		if r.Actual <= 0 {
			t.Errorf("run %d actual=%g", i, r.Actual)
		}
		if r.Pred.Mean <= 0 {
			t.Errorf("run %d prediction=%v", i, r.Pred)
		}
		if r.Pred.IsPoint() {
			t.Errorf("run %d production prediction should carry spread", i)
		}
		if len(r.LoadsAt) != cfg.plat.Size() {
			t.Errorf("run %d loads=%d", i, len(r.LoadsAt))
		}
	}
}

func TestRunProductionSeriesCaptures(t *testing.T) {
	recs, err := runProductionSeries(smallBurstyConfig(t, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	m := summarizeRuns(recs)
	// The evaluation's central claim: stochastic intervals capture most
	// production runs and beat point predictions.
	if m.CaptureFrac < 0.5 {
		t.Errorf("capture=%g too low", m.CaptureFrac)
	}
	if m.MaxMeanErr <= m.MaxIntErr {
		t.Errorf("point error %g should exceed interval error %g", m.MaxMeanErr, m.MaxIntErr)
	}
}

func TestRunProductionSeriesValidation(t *testing.T) {
	cfg := smallBurstyConfig(t, 1, 0)
	if _, err := runProductionSeries(cfg); err == nil {
		t.Error("runs=0 should fail")
	}
	cfg = smallBurstyConfig(t, 1, 1)
	cfg.cpu = cfg.cpu[:1]
	if _, err := runProductionSeries(cfg); err == nil {
		t.Error("cpu count mismatch should fail")
	}
}

func TestRunProductionSeriesCustomPredictor(t *testing.T) {
	cfg := smallBurstyConfig(t, 7, 2)
	called := 0
	cfg.predictLoad = func(machine int, mon *nws.Monitor) (stochastic.Value, error) {
		called++
		return stochastic.New(0.5, 0.2), nil
	}
	recs, err := runProductionSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if called == 0 {
		t.Error("custom predictor not used")
	}
	if len(recs) != 2 {
		t.Errorf("records=%d", len(recs))
	}
}

func TestRunProductionSeriesDeterministic(t *testing.T) {
	a, err := runProductionSeries(smallBurstyConfig(t, 11, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := runProductionSeries(smallBurstyConfig(t, 11, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Actual != b[i].Actual || a[i].Pred != b[i].Pred {
			t.Fatalf("run %d nondeterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSummarizeRuns(t *testing.T) {
	recs := []runRecord{
		{Pred: stochastic.New(10, 2), Actual: 11}, // inside
		{Pred: stochastic.New(10, 2), Actual: 14}, // outside by 2 (rel 2/14)
		{Pred: stochastic.New(10, 2), Actual: 10}, // inside, exact mean
	}
	m := summarizeRuns(recs)
	if m.CaptureFrac < 0.66 || m.CaptureFrac > 0.67 {
		t.Errorf("capture=%g", m.CaptureFrac)
	}
	if m.MaxIntErr < 0.14 || m.MaxIntErr > 0.15 {
		t.Errorf("maxIntErr=%g", m.MaxIntErr)
	}
	if m.MaxMeanErr < 0.28 || m.MaxMeanErr > 0.29 { // |14-10|/14
		t.Errorf("maxMeanErr=%g", m.MaxMeanErr)
	}
	empty := summarizeRuns(nil)
	if empty.CaptureFrac != 0 || empty.MeanMeanErr != 0 {
		t.Errorf("empty summary=%+v", empty)
	}
}

func TestRenderHelpers(t *testing.T) {
	recs := []runRecord{
		{Start: 0, Pred: stochastic.New(10, 2), Actual: 11, LoadsAt: []float64{0.5, 0.6, 0.7, 0.8}},
		{Start: 50, Pred: stochastic.New(12, 1), Actual: 20, LoadsAt: []float64{0.1, 0.2, 0.3, 0.4}},
	}
	out := renderRunSeries(recs)
	for _, want := range []string{"predicted", "actual", "NO", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("renderRunSeries missing %q:\n%s", want, out)
		}
	}
	trace := renderLoadTrace(recs, 0)
	if !strings.Contains(trace, "*") {
		t.Errorf("load trace missing points:\n%s", trace)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("a", "bb")
	tb.AddRow("x")
	tb.AddRow("longer", "y", "extra-dropped")
	tb.AddRowf(1.23456789, 7)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/sep wrong:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if strings.Contains(out, "extra-dropped") {
		t.Error("extra cell should be dropped")
	}
}

func TestRenderSeriesEdgeCases(t *testing.T) {
	if out := RenderSeries(nil, nil, 10, 5); !strings.Contains(out, "no data") {
		t.Errorf("empty render=%q", out)
	}
	// Constant series must not divide by zero.
	out := RenderSeries([]float64{1, 2, 3}, []float64{5, 5, 5}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("constant render missing points:\n%s", out)
	}
	// Tiny dimensions clamp.
	out = RenderSeries([]float64{0, 1}, []float64{0, 1}, 1, 1)
	if len(out) == 0 {
		t.Error("clamped render empty")
	}
}
