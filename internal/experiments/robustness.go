package experiments

import (
	"fmt"
	"strings"

	"prodpred/internal/cluster"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

func init() {
	register(Experiment{
		ID:    "robust-faults",
		Title: "Robustness: interval capture under sensor faults (Platform 2 bursty)",
		Paper: "§2.1.2's NWS values assumed always available — here the measurement stream drops, spikes, and blacks out, and the gap-aware pipeline must keep predicting (the Platform 2 bursty study of Figures 10-17, re-run against a faulty sensor substrate).",
		Run:   runRobustFaults,
	})
}

// faultScenario is one fault class applied to the bursty production series.
type faultScenario struct {
	name  string
	key   string // metric key suffix
	build func(seed int64) *faults.Injector
}

// robustScenarios returns the fault classes the robustness experiment
// sweeps: none, 20% dropout, a 120 s outage window on the most volatile
// machine, 5% outlier spikes, 2% transient errors, and the acceptance
// combination of dropout plus outage.
func robustScenarios(machines int) []faultScenario {
	// The series warms up for 600 virtual seconds; the outage window sits
	// squarely inside the execution region that follows.
	outage := faults.Window{Start: 700, End: 820}
	all := func(seed int64, s faults.Schedule) *faults.Injector {
		in := faults.NewInjector(seed)
		for m := 0; m < machines; m++ {
			if err := in.Set(m, s); err != nil {
				panic(err) // static schedules; cannot fail
			}
		}
		return in
	}
	return []faultScenario{
		{"fault-free", "clean", func(int64) *faults.Injector { return nil }},
		{"20% dropout", "drop", func(seed int64) *faults.Injector {
			return all(seed, faults.Schedule{DropProb: 0.2})
		}},
		{"outage 120s (machine 0)", "outage", func(seed int64) *faults.Injector {
			in := faults.NewInjector(seed)
			if err := in.Set(0, faults.Schedule{Outages: []faults.Window{outage}}); err != nil {
				panic(err)
			}
			return in
		}},
		{"5% spikes (x4)", "spike", func(seed int64) *faults.Injector {
			return all(seed, faults.Schedule{SpikeProb: 0.05, SpikeFactor: 4})
		}},
		{"2% transient errors", "transient", func(seed int64) *faults.Injector {
			return all(seed, faults.Schedule{TransientProb: 0.02})
		}},
		{"20% dropout + outage", "combined", func(seed int64) *faults.Injector {
			in := all(seed, faults.Schedule{DropProb: 0.2})
			if err := in.Set(0, faults.Schedule{DropProb: 0.2, Outages: []faults.Window{outage}}); err != nil {
				panic(err)
			}
			return in
		}},
	}
}

// runRobustFaults re-runs the bursty Platform 2 pipeline under each fault
// scenario and compares stochastic-interval capture against the fault-free
// baseline. The load processes are reseeded identically per scenario, so
// the only difference between rows is the sensor fault schedule.
func runRobustFaults(seed int64) (*Result, error) {
	const (
		n    = 300
		runs = 15
	)
	plat := cluster.Platform2()
	scens := robustScenarios(plat.Size())

	tb := NewTable("scenario", "capture", "mean spread", "missed", "drop/outage/retry", "longest gap")
	metrics := map[string]float64{}
	var cleanCapture float64
	var b strings.Builder
	for si, sc := range scens {
		cpu := make([]load.Process, plat.Size())
		for i := range cpu {
			p, err := load.Platform2FourModeBursty(seed + int64(i)*7)
			if err != nil {
				return nil, err
			}
			cpu[i] = p
		}
		net, err := load.EthernetContention(seed + 999)
		if err != nil {
			return nil, err
		}
		diag := &pipelineDiag{}
		recs, err := runProductionSeries(productionConfig{
			plat:         plat,
			cpu:          cpu,
			net:          net,
			n:            n,
			iters:        8,
			runs:         runs,
			gap:          20,
			warmup:       600,
			partStrategy: sched.MeanBalanced,
			maxStrategy:  stochastic.LargestMean,
			iterationRel: structural.Related,
			inject:       sc.build(seed),
			diag:         diag,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.name, err)
		}
		m := summarizeRuns(recs)
		meanSpread := 0.0
		for _, r := range recs {
			meanSpread += r.Pred.Spread
		}
		meanSpread /= float64(len(recs))
		var missed, dropped, outage, retries, longest int
		for _, g := range diag.CPUGaps {
			missed += g.Missed
			dropped += g.Dropped
			outage += g.Outage
			retries += g.Retries
			if g.LongestGap > longest {
				longest = g.LongestGap
			}
		}
		tb.AddRowf(sc.name, pct(m.CaptureFrac), fmt.Sprintf("%.2f s", meanSpread),
			missed, fmt.Sprintf("%d/%d/%d", dropped, outage, retries), longest)
		metrics["capture_"+sc.key] = m.CaptureFrac
		metrics["missed_"+sc.key] = float64(missed)
		metrics["spread_"+sc.key] = meanSpread
		if si == 0 {
			cleanCapture = m.CaptureFrac
		}
	}
	metrics["combined_capture_delta"] = metrics["capture_combined"] - cleanCapture

	fmt.Fprintf(&b, "Platform 2, bursty 4-modal load, %dx%d, %d executions per scenario.\n", n, n, runs)
	b.WriteString("Identical load sample paths per row; only the sensor fault schedule differs.\n\n")
	b.WriteString(tb.String())
	b.WriteString("\nDropped and blacked-out samples widen the reported interval (staleness\ndegradation) instead of aborting the pipeline; capture stays within a few\npoints of the fault-free run because the gap-aware monitor trades interval\nwidth for sensor coverage.\n")
	return &Result{ID: "robust-faults", Title: "Sensor-fault robustness", Text: b.String(), Metrics: metrics}, nil
}
