package experiments

import (
	"fmt"
	"math"
	"strings"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/sched"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Strip decomposition for Red-Black SOR",
		Paper: "Figure 6: strip decomposition of the NxN grid across processors.",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Program skew under loose synchronization",
		Paper: "Figure 7: communication delays skew iterations by at most P.",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Platform 1: stochastic interval vs actual runtimes across problem sizes",
		Paper: "Figure 9: all actuals inside the stochastic interval; max mean-point discrepancy 9.7%, interval discrepancy 0%.",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig12-13",
		Title: "Platform 2 bursty: 1600x1600 executions and load",
		Paper: "Figures 12-13: ~80% of actuals captured, max interval error ~14%, vs point-value max error 38.6%.",
		Run:   platform2Runner(1600, "fig12-13"),
	})
	register(Experiment{
		ID:    "fig14-15",
		Title: "Platform 2 bursty: 1000x1000 executions and load",
		Paper: "Figures 14-15: same behaviour at a small problem size.",
		Run:   platform2Runner(1000, "fig14-15"),
	})
	register(Experiment{
		ID:    "fig16-17",
		Title: "Platform 2 bursty: 2000x2000 executions and load",
		Paper: "Figures 16-17: same behaviour at a large problem size.",
		Run:   platform2Runner(2000, "fig16-17"),
	})
	register(Experiment{
		ID:    "dedicated",
		Title: "Structural model accuracy on a dedicated system",
		Paper: "§2.2.1: dedicated predictions within 2% of actual execution time.",
		Run:   runDedicated,
	})
}

func runFig6(seed int64) (*Result, error) {
	_ = seed
	plat := cluster.Platform2()
	weights := make([]float64, plat.Size())
	for i := range weights {
		weights[i] = plat.Machine(i).ElemRate
	}
	part, err := sor.NewWeightedPartition(1600, weights)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Strip decomposition of a 1600x1600 grid across Platform 2,\nweighted by dedicated machine capacity:\n\n")
	b.WriteString(part.Render())
	return &Result{
		ID: "fig6", Title: "Strip decomposition", Text: b.String(),
		Metrics: map[string]float64{"strips": float64(part.P())},
	}, nil
}

func runFig7(seed int64) (*Result, error) {
	// Load one interior machine; watch the delay propagate to its
	// neighbours without exceeding the loose-synchronization bound.
	plat := cluster.Platform1()
	slow, err := load.NewSingleMode(0.3, 0.05, 0.9, 1, seed)
	if err != nil {
		return nil, err
	}
	ded := load.Dedicated()
	env, err := simenv.New(plat, []load.Process{ded, slow, ded, ded}, ded)
	if err != nil {
		return nil, err
	}
	n := 402
	part, err := sor.NewEqualPartition(n, plat.Size())
	if err != nil {
		return nil, err
	}
	g, err := sor.NewGrid(n)
	if err != nil {
		return nil, err
	}
	g.SetBoundary(func(x, y float64) float64 { return x + y })
	backend, err := sor.NewSimBackend(env, part, sor.IdentityMapping(plat.Size()))
	if err != nil {
		return nil, err
	}
	iters := 15
	res, err := backend.Run(g, sor.DefaultOmega, iters, 0)
	if err != nil {
		return nil, err
	}
	perIter := res.ExecTime / float64(iters)
	bound := float64(plat.Size()) * perIter
	var b strings.Builder
	fmt.Fprintf(&b, "Loaded strip P2 delays its neighbours through ghost exchanges.\n")
	fmt.Fprintf(&b, "Max skew: %.3f s; per-iteration time %.3f s; P*iteration bound %.3f s\n\n",
		res.MaxSkew, perIter, bound)
	xs := make([]float64, len(res.IterationEnd))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	b.WriteString("Iteration completion times:\n")
	b.WriteString(RenderSeries(xs, res.IterationEnd, 60, 10))
	return &Result{
		ID: "fig7", Title: "Program skew", Text: b.String(),
		Metrics: map[string]float64{
			"max_skew":   res.MaxSkew,
			"skew_bound": bound,
		},
	}, nil
}

// runFig9 reproduces the Platform 1 experiment (§3.1): load on the slowest
// machines stays in the center mode (0.48 ± 0.05); the stochastic interval
// should capture the actual runtime at every problem size.
func runFig9(seed int64) (*Result, error) {
	plat := cluster.Platform1()
	metrics := map[string]float64{}
	tb := NewTable("N", "predicted", "interval", "actual", "inside", "mean-err")
	capturedAll := true
	maxMeanErr := 0.0
	maxIntErr := 0.0

	var xsN, actuals, los, his, means []float64
	for i, n := range []int{1000, 1200, 1400, 1600, 1800, 2000} {
		// Fresh load processes per size, as each paper point is its own
		// set of executions.
		s := seed + int64(i)*101
		proc0, err := load.Platform1CenterMode(s + 1)
		if err != nil {
			return nil, err
		}
		proc1, err := load.Platform1CenterMode(s + 2)
		if err != nil {
			return nil, err
		}
		light2, err := load.LightLoad(s + 3)
		if err != nil {
			return nil, err
		}
		light3, err := load.LightLoad(s + 4)
		if err != nil {
			return nil, err
		}
		recs, err := runProductionSeries(productionConfig{
			plat:         plat,
			cpu:          []load.Process{proc0, proc1, light2, light3},
			net:          load.Dedicated(),
			n:            n,
			iters:        10,
			runs:         1,
			warmup:       900,
			partStrategy: sched.MeanBalanced,
			maxStrategy:  stochastic.LargestMean,
		})
		if err != nil {
			return nil, err
		}
		r := recs[0]
		inside := "yes"
		if !r.Pred.Contains(r.Actual) {
			inside = "NO"
			capturedAll = false
			if e := r.Pred.RelativeErrorOutside(r.Actual); e > maxIntErr {
				maxIntErr = e
			}
		}
		meanErr := math.Abs(r.Actual-r.Pred.Mean) / r.Actual
		if meanErr > maxMeanErr {
			maxMeanErr = meanErr
		}
		lo, hi := r.Pred.Interval()
		tb.AddRowf(n, r.Pred.String(), fmt.Sprintf("[%.2f,%.2f]", lo, hi),
			fmt.Sprintf("%.2f", r.Actual), inside, pct(meanErr))
		xsN = append(xsN, float64(n))
		actuals = append(actuals, r.Actual)
		los = append(los, lo)
		his = append(his, hi)
		means = append(means, r.Pred.Mean)
	}
	var b strings.Builder
	b.WriteString("Platform 1, center-mode load on the Sparc-2s (paper: 0.48 ± 0.05):\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nAll inside interval: %v; max mean-point error %s (paper: 9.7%%); max interval error %s (paper: 0%%)\n",
		capturedAll, pct(maxMeanErr), pct(maxIntErr))
	b.WriteString("\n")
	b.WriteString(RenderSeriesMulti(xsN, [][]float64{los, his, means, actuals},
		[]byte{'-', '-', 'm', 'A'}, 60, 12))
	metrics["captured_all"] = boolTo01(capturedAll)
	metrics["max_mean_err"] = maxMeanErr
	metrics["max_interval_err"] = maxIntErr
	return &Result{ID: "fig9", Title: "Platform 1 predictions", Text: b.String(), Metrics: metrics}, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// platform2Runner builds the bursty Platform 2 experiment at one problem
// size (Figures 12-17).
func platform2Runner(n int, id string) func(int64) (*Result, error) {
	return func(seed int64) (*Result, error) {
		recs, err := runPlatform2Series(n, seed, 20, stochastic.LargestMean, structural.Related, nil)
		if err != nil {
			return nil, err
		}
		m := summarizeRuns(recs)
		var b strings.Builder
		fmt.Fprintf(&b, "Platform 2, bursty 4-modal load, %dx%d, %d executions:\n\n", n, n, len(recs))
		b.WriteString(renderRunSeries(recs))
		fmt.Fprintf(&b, "\nCaptured %s of runs (paper: ~80%%); max interval error %s (paper: ~14%%)\n",
			pct(m.CaptureFrac), pct(m.MaxIntErr))
		fmt.Fprintf(&b, "Point-value (mean) max error %s (paper: 38.6%%), average %s\n",
			pct(m.MaxMeanErr), pct(m.MeanMeanErr))
		b.WriteString("\nLoad on the most volatile machine at run starts:\n")
		b.WriteString(renderLoadTrace(recs, 0))
		return &Result{
			ID: id, Title: fmt.Sprintf("Platform 2 %dx%d", n, n), Text: b.String(),
			Metrics: map[string]float64{
				"capture_frac":     m.CaptureFrac,
				"max_interval_err": m.MaxIntErr,
				"max_mean_err":     m.MaxMeanErr,
				"mean_mean_err":    m.MeanMeanErr,
			},
		}, nil
	}
}

// runPlatform2Series is the shared bursty pipeline, also used by the
// ablations with alternative prediction configurations.
func runPlatform2Series(n int, seed int64, runs int, maxStrat stochastic.MaxStrategy,
	iterRel structural.Relation, predictLoad func(int, *nws.Monitor) (stochastic.Value, error)) ([]runRecord, error) {
	plat := cluster.Platform2()
	cpu := make([]load.Process, plat.Size())
	for i := range cpu {
		p, err := load.Platform2FourModeBursty(seed + int64(i)*17)
		if err != nil {
			return nil, err
		}
		cpu[i] = p
	}
	net, err := load.EthernetContention(seed + 999)
	if err != nil {
		return nil, err
	}
	cfg := productionConfig{
		plat:         plat,
		cpu:          cpu,
		net:          net,
		n:            n,
		iters:        10,
		runs:         runs,
		gap:          30,
		warmup:       1200,
		partStrategy: sched.MeanBalanced,
		maxStrategy:  maxStrat,
		iterationRel: iterRel,
	}
	cfg.predictLoad = predictLoad
	return runProductionSeries(cfg)
}

// runDedicated validates the §2.2.1 dedicated-accuracy claim across sizes.
func runDedicated(seed int64) (*Result, error) {
	_ = seed
	plat := cluster.Platform1()
	env, err := simenv.NewDedicated(plat)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, plat.Size())
	machines := make([]cluster.Machine, plat.Size())
	for i := range weights {
		machines[i] = plat.Machine(i)
		weights[i] = machines[i].ElemRate
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		return nil, err
	}
	tb := NewTable("N", "predicted (s)", "actual (s)", "error")
	worst := 0.0
	for _, n := range []int{400, 800, 1200, 1600} {
		part, err := sor.NewWeightedPartition(n, weights)
		if err != nil {
			return nil, err
		}
		cfg := &structural.SORConfig{
			N: n, Iterations: 10, Partition: part, Machines: machines,
			MachineIdx: sor.IdentityMapping(plat.Size()), Link: link,
			MaxStrategy: stochastic.LargestMean,
		}
		pred, err := cfg.Predict(cfg.DedicatedParams())
		if err != nil {
			return nil, err
		}
		g, err := sor.NewGrid(n)
		if err != nil {
			return nil, err
		}
		g.SetBoundary(func(x, y float64) float64 { return x + y })
		backend, err := sor.NewSimBackend(env, part, cfg.MachineIdx)
		if err != nil {
			return nil, err
		}
		res, err := backend.Run(g, sor.DefaultOmega, cfg.Iterations, 0)
		if err != nil {
			return nil, err
		}
		e := math.Abs(pred.Mean-res.ExecTime) / res.ExecTime
		if e > worst {
			worst = e
		}
		tb.AddRowf(n, fmt.Sprintf("%.4f", pred.Mean), fmt.Sprintf("%.4f", res.ExecTime), pct(e))
	}
	var b strings.Builder
	b.WriteString("Dedicated Platform 1, capacity-weighted strips:\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nWorst error %s (paper: within 2%%)\n", pct(worst))
	return &Result{
		ID: "dedicated", Title: "Dedicated accuracy", Text: b.String(),
		Metrics: map[string]float64{"worst_err": worst},
	}, nil
}
