package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"prodpred/internal/load"
	"prodpred/internal/sched"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Unit-work execution times: dedicated vs production, point vs stochastic",
		Paper: "Table 1: A and B take 10/5 s dedicated; both average 12 s in production, but A is ±5% and B ±30%.",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "allocation",
		Title: "Work allocation strategies under prediction penalties",
		Paper: "§1.2: with stochastic values, a scheduler can favour the low-variance machine when misses are costly.",
		Run:   runAllocation,
	})
}

// runTable1 regenerates Table 1 from simulated measurements: machine A is
// the slow stable machine, machine B the fast one whose extra users make
// its load volatile. Unit-work execution times are measured over a long
// production window and summarized both ways.
func runTable1(seed int64) (*Result, error) {
	// Dedicated unit times: A = 10 s, B = 5 s.
	const dedA, dedB = 10.0, 5.0
	// Production availability: chosen so both machines average 12 s per
	// unit of work (the paper's coincidence): mean avail = ded/12.
	loadA, err := load.NewSingleMode(dedA/12, 0.018, 0.9, 1, seed+1) // stable
	if err != nil {
		return nil, err
	}
	loadB, err := load.NewMarkovModal(
		[]load.ModeSpec{ // volatile: many users come and go
			{Mean: 0.35, Sigma: 0.02},
			{Mean: 0.42, Sigma: 0.02},
			{Mean: 0.52, Sigma: 0.02},
		},
		[]float64{1, 1, 1}, 0.10, 0.7, 1, seed+2,
	)
	if err != nil {
		return nil, err
	}

	measure := func(ded float64, p load.Process, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			t := float64(i) * 60 // one unit-work probe per minute
			out[i] = ded / clampAvail(p.At(t))
		}
		return out
	}
	unitsA := measure(dedA, loadA, 1440) // a day of probes
	unitsB := measure(dedB, loadB, 1440)
	svA, err := stochastic.FromSample(unitsA)
	if err != nil {
		return nil, err
	}
	svB, err := stochastic.FromSample(unitsB)
	if err != nil {
		return nil, err
	}

	tb := NewTable("", "Machine A", "Machine B")
	tb.AddRowf("Dedicated", fmt.Sprintf("%.0f sec", dedA), fmt.Sprintf("%.0f sec", dedB))
	tb.AddRowf("Production (point)", fmt.Sprintf("%.1f sec", svA.Mean), fmt.Sprintf("%.1f sec", svB.Mean))
	tb.AddRowf("Production (stochastic)",
		fmt.Sprintf("%.1f sec ± %.0f%%", svA.Mean, svA.RelativeSpread()*100),
		fmt.Sprintf("%.1f sec ± %.0f%%", svB.Mean, svB.RelativeSpread()*100))

	var b strings.Builder
	b.WriteString("Execution times for a unit of work (measured over 24 h of probes):\n")
	b.WriteString(tb.String())
	b.WriteString("\nEqual production means hide radically different variability —\nthe information a stochastic value preserves.\n")
	return &Result{
		ID: "table1", Title: "Two-machine unit work", Text: b.String(),
		Metrics: map[string]float64{
			"meanA":      svA.Mean,
			"meanB":      svB.Mean,
			"relSpreadA": svA.RelativeSpread(),
			"relSpreadB": svB.RelativeSpread(),
		},
	}, nil
}

func clampAvail(v float64) float64 {
	if v < 0.05 {
		return 0.05
	}
	return v
}

// runAllocation evaluates the §1.2 scheduling argument quantitatively.
func runAllocation(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	unit := []stochastic.Value{
		stochastic.FromPercent(12, 5),  // machine A
		stochastic.FromPercent(12, 30), // machine B
	}
	const totalWork = 100
	const trials = 5000

	var b strings.Builder
	metrics := map[string]float64{}
	for _, regime := range []struct {
		name    string
		penalty sched.PenaltyFn
	}{
		{"no-penalty", sched.OverrunPenalty(0)},
		{"high-penalty", sched.OverrunPenalty(100)},
	} {
		tb := NewTable("strategy", "alloc A/B", "promised (s)", "mean makespan (s)", "mean penalty")
		for _, s := range []sched.Strategy{sched.MeanBalanced, sched.Conservative, sched.Optimistic} {
			rep, err := sched.EvaluatePolicy(totalWork, unit, s, regime.penalty, rng, trials)
			if err != nil {
				return nil, err
			}
			tb.AddRowf(s.String(), fmt.Sprintf("%d/%d", rep.Alloc[0], rep.Alloc[1]),
				rep.Promised, rep.MeanMakespan, rep.MeanPenalty)
			metrics[regime.name+"_"+s.String()+"_penalty"] = rep.MeanPenalty
			metrics[regime.name+"_"+s.String()+"_makespan"] = rep.MeanMakespan
		}
		fmt.Fprintf(&b, "Penalty regime: %s\n", regime.name)
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	b.WriteString("Under a high overrun penalty the conservative (variance-aware)\nallocation wins; with no penalty the strategies tie on makespan —\nexactly the tradeoff stochastic values expose to a scheduler.\n")

	// A quick distributional check: machine B's unit times really are ±30%.
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = unit[1].Sample(rng)
	}
	metrics["unitB_cov"] = stats.Coverage(xs, unit[1].Lo(), unit[1].Hi())
	return &Result{ID: "allocation", Title: "Allocation strategies", Text: b.String(), Metrics: metrics}, nil
}
