package experiments

import (
	"errors"
	"testing"
)

// cheapSubset picks a few fast experiments for pool tests.
func cheapSubset(t *testing.T) []Experiment {
	t.Helper()
	var out []Experiment
	for _, id := range []string{"table2", "maxops", "longtail", "fig1-2"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestRunPoolDeterministicAcrossJobs(t *testing.T) {
	exps := cheapSubset(t)
	seq := runPool(exps, 1, 1)
	par := runPool(exps, 1, 3)
	if len(seq) != len(exps) || len(par) != len(exps) {
		t.Fatalf("outcome counts %d/%d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("outcome %d errored: %v / %v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Experiment.ID != exps[i].ID || par[i].Experiment.ID != exps[i].ID {
			t.Fatalf("outcome %d out of order: %s / %s", i,
				seq[i].Experiment.ID, par[i].Experiment.ID)
		}
		if seq[i].Result.Text != par[i].Result.Text {
			t.Errorf("%s: text differs between jobs=1 and jobs=3", exps[i].ID)
		}
		for k, v := range seq[i].Result.Metrics {
			if pv := par[i].Result.Metrics[k]; pv != v {
				t.Errorf("%s: metric %s = %g sequential vs %g parallel", exps[i].ID, k, v, pv)
			}
		}
	}
}

func TestRunPoolPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "ok", Run: func(seed int64) (*Result, error) {
			return &Result{ID: "ok", Text: "fine"}, nil
		}},
		{ID: "bad", Run: func(seed int64) (*Result, error) { return nil, boom }},
	}
	out := runPool(exps, 1, 2)
	if out[0].Err != nil || out[0].Result == nil {
		t.Errorf("ok outcome: %+v", out[0])
	}
	if !errors.Is(out[1].Err, boom) {
		t.Errorf("bad outcome err=%v", out[1].Err)
	}
}

func TestRunAllCoversRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	out := RunAll(1, 0)
	ids := IDs()
	if len(out) != len(ids) {
		t.Fatalf("outcomes=%d registry=%d", len(out), len(ids))
	}
	for i, oc := range out {
		if oc.Experiment.ID != ids[i] {
			t.Errorf("outcome %d is %s, want %s (ID order)", i, oc.Experiment.ID, ids[i])
		}
		if oc.Err != nil {
			t.Errorf("%s: %v", oc.Experiment.ID, oc.Err)
		}
	}
}
