package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"prodpred/internal/dist"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
)

func init() {
	register(Experiment{
		ID:    "host-bench",
		Title: "Host validation: real in-core sort benchmark runtimes (Figures 1-2 on this machine)",
		Paper: "Figure 1 benchmarks a sorting code on a dedicated workstation; here the same protocol runs for real: repeated sorts, fitted normal, K-S check.",
		Run:   runHostBench,
	})
}

// runHostBench executes the paper's Figure 1 protocol on real hardware:
// time an in-core sorting benchmark repeatedly, fit a normal distribution
// to the runtimes, and report how well the stochastic summary describes
// them. Results depend on the build machine; the metrics are shapes.
func runHostBench(seed int64) (*Result, error) {
	const (
		elems = 200_000
		runs  = 120
	)
	rng := rand.New(rand.NewSource(seed))
	base := make([]float64, elems)
	for i := range base {
		base[i] = rng.Float64()
	}
	buf := make([]float64, elems)
	times := make([]float64, runs)
	for r := range times {
		copy(buf, base)
		start := time.Now()
		sort.Float64s(buf)
		times[r] = time.Since(start).Seconds() * 1e3 // milliseconds
	}
	// Drop warmup outliers the way benchmarkers do: first 10% of runs.
	times = times[runs/10:]

	fit, err := dist.FitNormal(times)
	if err != nil {
		return nil, err
	}
	sv := stochastic.FromNormal(fit)
	ks, err := stats.KolmogorovSmirnov(times, fit.CDF)
	if err != nil {
		return nil, err
	}
	cov := stats.Coverage(times, sv.Lo(), sv.Hi())
	hist, err := stats.NewHistogramAuto(times, stats.FreedmanDiaconis)
	if err != nil {
		return nil, err
	}
	med, _ := stats.Median(times)

	var b strings.Builder
	fmt.Fprintf(&b, "Real sort benchmark: %d elements, %d timed runs on this machine\n\n", elems, len(times))
	fmt.Fprintf(&b, "Runtimes (ms): fitted normal %s, median %.3f\n", fit, med)
	fmt.Fprintf(&b, "Stochastic value %s covers %s of runs; K-S D=%.3f p=%.3f\n\n",
		sv, pct(cov), ks.Statistic, ks.PValue)
	b.WriteString(hist.Render(40))
	b.WriteString("\nDedicated-machine benchmark runtimes cluster tightly; occasional\nscheduler preemptions give a small right tail — the shape behind the\npaper's choice of a normal summary for dedicated measurements.\n")
	return &Result{
		ID: "host-bench", Title: "Host sort benchmark", Text: b.String(),
		Metrics: map[string]float64{
			"mean_ms":    fit.Mu,
			"rel_spread": sv.RelativeSpread(),
			"coverage2s": cov,
			"ks_p":       ks.PValue,
		},
	}, nil
}
