package experiments

import (
	"fmt"
	"sort"
	"strings"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

func init() {
	register(Experiment{
		ID:    "dist-tournament",
		Title: "Distribution-valued predictions: forecaster tournament vs calibrated normal",
		Paper: "§2.1.1 concedes the normal summary trades tail coverage for tractability on multi-modal load. Here the full pipeline runs distribution-valued: per-machine forecasters (normal / conditional empirical-quantile / mixture) compete in an online tournament, the winner's quantile grid drives a Monte Carlo execution-time transform, and conformal calibration (median shift + per-quantile scales) closes the loop. Scored against the calibrated-normal interval on the same bursty Platform 2 sample path.",
		Run:   runDistTournament,
	})
}

// distBurnIn is how many leading observed runs are excluded from the
// capture/width scoring: both calibration paths (the symmetric multiplier
// and the per-quantile scales) need a window of outcomes before their
// multipliers move off identity, and the tournament needs scored forecasts
// before it can dethrone the incumbent.
const distBurnIn = 16

// quantileCapture scores the central 95% interval of the calibrated
// predictive distribution — grid ends 0.025/0.975 — over a record slice.
func quantileCapture(recs []runRecord) (capture, meanWidth float64) {
	in := 0
	for _, r := range recs {
		if r.Actual >= r.QLo && r.Actual <= r.QHi {
			in++
		}
		meanWidth += r.QHi - r.QLo
	}
	n := float64(len(recs))
	return float64(in) / n, meanWidth / n
}

// intervalScore is the mean Winkler score at level 1-alpha: width plus
// (2/alpha)x the miss distance when the actual escapes the interval. It is
// the proper scoring rule for the capture-at-width trade — a forecaster
// can only improve it by being narrow AND capturing, never by gaming one
// side.
func intervalScore(alpha float64, lohi func(runRecord) (float64, float64), recs []runRecord) float64 {
	s := 0.0
	for _, r := range recs {
		lo, hi := lohi(r)
		s += hi - lo
		if r.Actual < lo {
			s += 2 / alpha * (lo - r.Actual)
		} else if r.Actual > hi {
			s += 2 / alpha * (r.Actual - hi)
		}
	}
	return s / float64(len(recs))
}

// distTournamentN is the SOR problem size of the tournament scenario;
// distTournamentRuns how many observed runs the series replays.
const (
	distTournamentN    = 120
	distTournamentRuns = 160
)

// distTournamentSeries replays the tournament scenario once: a short-gap,
// small-problem production series on bursty 4-modal Platform 2 with the
// observe loop closed, so calibration and the forecaster tournament adapt
// within the series.
func distTournamentSeries(seed int64) ([]runRecord, *pipelineDiag, error) {
	cpu := make([]load.Process, 4)
	for i := range cpu {
		p, err := load.Platform2FourModeBursty(seed + int64(i)*7)
		if err != nil {
			return nil, nil, err
		}
		cpu[i] = p
	}
	net, err := load.EthernetContention(seed + 999)
	if err != nil {
		return nil, nil, err
	}
	diag := &pipelineDiag{}
	recs, err := runProductionSeries(productionConfig{
		plat:         cluster.Platform2(),
		cpu:          cpu,
		net:          net,
		n:            distTournamentN,
		iters:        4,
		runs:         distTournamentRuns,
		gap:          5,
		warmup:       600,
		partStrategy: sched.MeanBalanced,
		maxStrategy:  stochastic.LargestMean,
		iterationRel: structural.Related,
		observe:      true,
		diag:         diag,
	})
	if err != nil {
		return nil, nil, err
	}
	return recs, diag, nil
}

// runDistTournament replays the bursty 4-modal Platform 2 production
// scenario once with the observe loop closed and scores two interval
// constructions on the identical sample path: the calibrated-normal
// mean±spread interval (the legacy serving payload) and the central
// intervals of the calibrated predictive quantile grid (the
// distribution-valued payload behind it), via the Winkler interval score
// at the 95% and 50% levels.
func runDistTournament(seed int64) (*Result, error) {
	recs, diag, err := distTournamentSeries(seed)
	if err != nil {
		return nil, err
	}
	if len(recs) <= distBurnIn {
		return nil, fmt.Errorf("dist-tournament: %d records, need more than the %d-run burn-in", len(recs), distBurnIn)
	}
	scored := recs[distBurnIn:]
	normCap, normW := calCapture(scored)
	distCap, distW := quantileCapture(scored)
	const alpha = 0.05
	normScore := intervalScore(alpha, func(r runRecord) (float64, float64) { return r.Pred.Interval() }, scored)
	distScore := intervalScore(alpha, func(r runRecord) (float64, float64) { return r.QLo, r.QHi }, scored)
	// The 50% central interval, where the grid's conditional sharpness
	// shows without the conformal tail premium: normal is mean ± 0.6745σ,
	// the grid's is its 0.25/0.75 points.
	norm50 := intervalScore(0.5, func(r runRecord) (float64, float64) {
		sig := r.Pred.Sigma()
		return r.Pred.Mean - 0.6745*sig, r.Pred.Mean + 0.6745*sig
	}, scored)
	dist50 := intervalScore(0.5, func(r runRecord) (float64, float64) {
		if len(r.Quantiles) != 9 {
			return r.Pred.Mean, r.Pred.Mean
		}
		return r.Quantiles[3], r.Quantiles[5]
	}, scored)

	// Which forecaster dominated each served prediction, over the full
	// series (the tournament's win mix).
	wins := map[string]int{}
	for _, r := range recs {
		wins[r.Forecaster]++
	}
	tags := make([]string, 0, len(wins))
	for tag := range wins {
		tags = append(tags, tag)
	}
	sort.Strings(tags)

	tb := NewTable("interval construction", "capture", "mean width", "Winkler@95", "Winkler@50")
	tb.AddRowf("calibrated normal (mean±spread)", pct(normCap), fmt.Sprintf("%.3f", normW),
		fmt.Sprintf("%.3f", normScore), fmt.Sprintf("%.3f", norm50))
	tb.AddRowf("calibrated quantile grid (2.5-97.5%)", pct(distCap), fmt.Sprintf("%.3f", distW),
		fmt.Sprintf("%.3f", distScore), fmt.Sprintf("%.3f", dist50))

	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d SOR on bursty 4-modal Platform 2; %d observed runs, first %d\nexcluded as calibration burn-in. Both intervals target 95%% on the same\nsample path — the same predictions, scored two ways (Winkler interval\nscore: width + 40x miss distance at 95%%, + 4x at 50%%; lower is better).\n\n", distTournamentN, distTournamentN, distTournamentRuns, distBurnIn)
	b.WriteString(tb.String())
	b.WriteString("\nDominant forecaster per served prediction (full series):\n")
	wtb := NewTable("forecaster", "predictions")
	for _, tag := range tags {
		wtb.AddRowf(tag, wins[tag])
	}
	b.WriteString(wtb.String())
	fmt.Fprintf(&b, "\nMean realized raw-grid quantile (PIT) %.3f over %d windowed outcomes\n(0.5 = centered): the structural model systematically overpredicts on\nthis platform, and the conformal median shift (%.2f here) recenters the\nserved grid — without it the grid's capture collapses to ~0.7.\n",
		diag.Calibration.MeanPIT, diag.Calibration.PITCount, diag.Calibration.QuantileShift)
	b.WriteString("\nThe tournament's conditional forecasters know which mode the burst is\nin; the normal summary must span all four. The recentered grid holds the\nnominal 95% coverage the normal path cannot reach, and its conditional\nsharpness wins the 50% interval outright; at 95% it pays a conformal\ntail premium for that coverage guarantee.\n")

	metrics := map[string]float64{
		"capture_normal": normCap,
		"width_normal":   normW,
		"score_normal":   normScore,
		"capture_dist":   distCap,
		"width_dist":     distW,
		"score_dist":     distScore,
		"score50_normal": norm50,
		"score50_dist":   dist50,
		"width_ratio":    distW / normW,
		"score_ratio":    distScore / normScore,
		"score50_ratio":  dist50 / norm50,
		"mean_pit":       diag.Calibration.MeanPIT,
		"pit_count":      float64(diag.Calibration.PITCount),
		"q_shift":        diag.Calibration.QuantileShift,
		"n_drifts":       float64(len(diag.Calibration.Drifts)),
	}
	for tag, c := range wins {
		metrics["wins_"+tag] = float64(c)
	}
	return &Result{ID: "dist-tournament", Title: "Forecaster tournament vs calibrated normal", Text: b.String(), Metrics: metrics}, nil
}
