package experiments

import "testing"

// TestCalibReplayAcceptance pins the experiment's acceptance criteria: on
// the bursty platform the calibrated intervals capture at least as well as
// the raw ones at no more than ~1.5x the width, the detector stays quiet
// on the steady Platform 1 replay, and it fires at the injected
// light-to-bursty regime change.
func TestCalibReplayAcceptance(t *testing.T) {
	res, err := runCalibReplay(1)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics

	// Bursty Platform 2: calibration never loses capture and pays a
	// bounded width premium for it.
	if m["capture_cal_p2"] < m["capture_raw_p2"] {
		t.Errorf("bursty: calibrated capture %.2f < raw %.2f",
			m["capture_cal_p2"], m["capture_raw_p2"])
	}
	if m["width_ratio_p2"] > 1.55 {
		t.Errorf("bursty: width ratio %.2f exceeds ~1.5x budget", m["width_ratio_p2"])
	}
	if m["capture_cal_p2"] < 0.9 {
		t.Errorf("bursty: calibrated capture %.2f below the 95%% neighborhood", m["capture_cal_p2"])
	}

	// Steady single-mode Platform 1: the calibrator helps (the raw
	// two-sigma intervals under-cover there too) and the drift detector
	// stays quiet.
	if m["capture_cal_p1"] < m["capture_raw_p1"] {
		t.Errorf("steady: calibrated capture %.2f < raw %.2f",
			m["capture_cal_p1"], m["capture_raw_p1"])
	}
	if m["drifts_p1"] != 0 {
		t.Errorf("steady Platform 1 replay fired %g drift events", m["drifts_p1"])
	}

	// Injected regime change: the detector fires shortly after switchAt,
	// never before it, and calibration still nets out ahead of raw.
	if m["drifts_switch"] < 1 {
		t.Fatalf("regime change at t=%g not detected", switchAt)
	}
	if ft := m["first_drift_t_switch"]; ft < switchAt || ft > switchAt+120 {
		t.Errorf("first drift at t=%.0f, want shortly after the switch at t=%g", ft, switchAt)
	}
	if m["capture_cal_switch"] <= m["capture_raw_switch"] {
		t.Errorf("switch: calibrated capture %.2f did not beat raw %.2f",
			m["capture_cal_switch"], m["capture_raw_switch"])
	}

	// Scales respect the configured clamp everywhere.
	for _, k := range []string{"scale_p1", "scale_p2", "scale_switch"} {
		if m[k] < 0.5 || m[k] > 3 {
			t.Errorf("%s=%g outside [0.5, 3]", k, m[k])
		}
	}
}

// TestCalibReplayDeterministic: the closed-loop replay is a pure function
// of the seed — metrics and rendered text must be identical across runs.
func TestCalibReplayDeterministic(t *testing.T) {
	a, err := runCalibReplay(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCalibReplay(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Error("same-seed replay rendered different reports")
	}
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric sets differ: %d vs %d", len(a.Metrics), len(b.Metrics))
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s diverged: %g vs %g", k, v, b.Metrics[k])
		}
	}
}

func TestCalibReplayRegistered(t *testing.T) {
	ex, err := Lookup("calib-replay")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Run == nil || ex.Title == "" {
		t.Errorf("experiment incomplete: %+v", ex)
	}
}
