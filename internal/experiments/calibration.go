package experiments

import (
	"fmt"
	"strings"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

func init() {
	register(Experiment{
		ID:    "calib-replay",
		Title: "Online calibration: Platform 1/2 replay with the feedback loop closed",
		Paper: "The paper scores its stochastic intervals offline, after the fact (§3). Here the same production replays feed each measured runtime back to an online conformal calibrator: raw and calibrated intervals are compared over identical sample paths, and a CUSUM + mode-count detector watches the residuals for the bursty regime changes of §3.2.",
		Run:   runCalibReplay,
	})
}

// calibScenario is one replayed platform with the observe loop closed.
type calibScenario struct {
	name string
	key  string // metric key prefix
	plat *cluster.Platform
	cpu  func(seed int64) ([]load.Process, error)
	// wantDrift notes whether the load path contains an injected regime
	// change the detector is expected to flag.
	wantDrift bool
}

// switchAt is the injected regime change of the third scenario: steady
// light load until this virtual time, Platform-2-bursty after it. The
// series warms up for 600 s and cycles every ~20 s, so roughly the first
// twenty runs precede the switch and the remainder follow it.
const switchAt = 1000.0

func calibScenarios() []calibScenario {
	return []calibScenario{
		{
			name: "Platform 1, steady center-mode",
			key:  "p1",
			plat: cluster.Platform1(),
			cpu: func(seed int64) ([]load.Process, error) {
				p0, err := load.Platform1CenterMode(seed + 1)
				if err != nil {
					return nil, err
				}
				p1, err := load.Platform1CenterMode(seed + 2)
				if err != nil {
					return nil, err
				}
				l2, err := load.LightLoad(seed + 3)
				if err != nil {
					return nil, err
				}
				l3, err := load.LightLoad(seed + 4)
				if err != nil {
					return nil, err
				}
				return []load.Process{p0, p1, l2, l3}, nil
			},
		},
		{
			name: "Platform 2, bursty 4-modal",
			key:  "p2",
			plat: cluster.Platform2(),
			cpu: func(seed int64) ([]load.Process, error) {
				cpu := make([]load.Process, 4)
				for i := range cpu {
					p, err := load.Platform2FourModeBursty(seed + int64(i)*7)
					if err != nil {
						return nil, err
					}
					cpu[i] = p
				}
				return cpu, nil
			},
		},
		{
			name:      "Platform 2, light -> bursty switch",
			key:       "switch",
			plat:      cluster.Platform2(),
			wantDrift: true,
			cpu: func(seed int64) ([]load.Process, error) {
				cpu := make([]load.Process, 4)
				for i := range cpu {
					light, err := load.LightLoad(seed + 100 + int64(i))
					if err != nil {
						return nil, err
					}
					bursty, err := load.Platform2FourModeBursty(seed + int64(i)*7)
					if err != nil {
						return nil, err
					}
					if cpu[i], err = load.NewSwitch(switchAt, light, bursty); err != nil {
						return nil, err
					}
				}
				return cpu, nil
			},
		},
	}
}

// rawCapture scores the uncalibrated intervals of an observed series — the
// "calibration off" replay over the exact same sample path, since Observe
// never moves the model's mean or the monitor state.
func rawCapture(recs []runRecord) (capture, meanWidth float64) {
	in := 0
	for _, r := range recs {
		if r.Raw.Contains(r.Actual) {
			in++
		}
		meanWidth += 2 * r.Raw.Spread
	}
	n := float64(len(recs))
	return float64(in) / n, meanWidth / n
}

func calCapture(recs []runRecord) (capture, meanWidth float64) {
	in := 0
	for _, r := range recs {
		if r.Pred.Contains(r.Actual) {
			in++
		}
		meanWidth += 2 * r.Pred.Spread
	}
	n := float64(len(recs))
	return float64(in) / n, meanWidth / n
}

// runCalibReplay replays each scenario once with the observe loop closed.
// Every run records both the raw and the calibrated interval, so a single
// pass yields the on/off comparison over identical load sample paths.
func runCalibReplay(seed int64) (*Result, error) {
	const (
		n    = 300
		runs = 40
	)
	tb := NewTable("scenario", "raw capture", "cal capture", "width ratio", "final scale", "drifts")
	metrics := map[string]float64{}
	var b strings.Builder
	var drifts []string
	for _, sc := range calibScenarios() {
		cpu, err := sc.cpu(seed)
		if err != nil {
			return nil, err
		}
		net, err := load.EthernetContention(seed + 999)
		if err != nil {
			return nil, err
		}
		diag := &pipelineDiag{}
		recs, err := runProductionSeries(productionConfig{
			plat:         sc.plat,
			cpu:          cpu,
			net:          net,
			n:            n,
			iters:        8,
			runs:         runs,
			gap:          20,
			warmup:       600,
			partStrategy: sched.MeanBalanced,
			maxStrategy:  stochastic.LargestMean,
			iterationRel: structural.Related,
			observe:      true,
			diag:         diag,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.name, err)
		}
		rawCap, rawW := rawCapture(recs)
		calCap, calW := calCapture(recs)
		ratio := calW / rawW
		snap := diag.Calibration
		tb.AddRowf(sc.name, pct(rawCap), pct(calCap), fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.2f", snap.Scale), len(snap.Drifts))
		metrics["capture_raw_"+sc.key] = rawCap
		metrics["capture_cal_"+sc.key] = calCap
		metrics["width_ratio_"+sc.key] = ratio
		metrics["scale_"+sc.key] = snap.Scale
		metrics["drifts_"+sc.key] = float64(len(snap.Drifts))
		if len(snap.Drifts) > 0 {
			metrics["first_drift_t_"+sc.key] = snap.Drifts[0].Time
		}
		for _, d := range snap.Drifts {
			drifts = append(drifts, fmt.Sprintf("  %-34s t=%.0f run=%d reason=%s stat=%.1f",
				sc.name, d.Time, d.Seq, d.Reason, d.Stat))
		}
	}

	fmt.Fprintf(&b, "%dx%d SOR, %d observed executions per scenario; 95%% capture target.\n", n, n, runs)
	b.WriteString("Raw and calibrated intervals are scored on the same sample path: the\nobserve loop rescales half-widths only, never the predicted mean.\n\n")
	b.WriteString(tb.String())
	if len(drifts) > 0 {
		fmt.Fprintf(&b, "\nDrift events (regime change injected at t=%.0f in the switch scenario):\n", switchAt)
		b.WriteString(strings.Join(drifts, "\n"))
		b.WriteString("\n")
	}
	b.WriteString("\nOn the steady Platform 1 replay the detector stays quiet and the\nconformal multiplier barely moves. On the bursty Platform 2 replay the\nraw two-sigma intervals under-cover; the calibrator widens them toward the\ntarget without paying more than ~1.5x the width. The light-to-bursty\nswitch trips the detector, which resets the calibration state so the new\nregime is learned from scratch.\n")
	return &Result{ID: "calib-replay", Title: "Online interval calibration", Text: b.String(), Metrics: metrics}, nil
}
