package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"prodpred/internal/dist"
	"prodpred/internal/load"
	"prodpred/internal/modal"
	"prodpred/internal/stats"
	"prodpred/internal/stochastic"
)

func init() {
	register(Experiment{
		ID:    "fig1-2",
		Title: "PDF and CDF of dedicated sort-benchmark runtimes with fitted normal",
		Paper: "Figures 1-2: in-core benchmark runtimes on a dedicated workstation are close to normal (mean ~11 s).",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig3-4",
		Title: "Long-tailed ethernet bandwidth vs normal summary",
		Paper: "Figures 3-4 and §2.1.1: bandwidth mean 5.25 Mbit/s; a 2-sigma normal summary covers ~91% of samples, not the nominal 95%.",
		Run:   runFig34,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Tri-modal CPU load histogram (Platform 1)",
		Paper: "Figure 5: production load with modes near 0.33, 0.49, and 0.94.",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Single-mode load trace (Platform 1 center mode)",
		Paper: "Figure 8: load staying within the center mode, mean 0.48 (stochastic value 0.48 ± 0.05).",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig10-11",
		Title: "Four-modal bursty load histogram and trace (Platform 2)",
		Paper: "Figures 10-11: 4-modal distribution, bursty in nature.",
		Run:   runFig1011,
	})
	register(Experiment{
		ID:    "longtail",
		Title: "Normal-for-long-tailed coverage tradeoff",
		Paper: "§2.1.1: representing long-tailed data as normal trades tail coverage for tractability.",
		Run:   runLongtail,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Arithmetic combination rules for stochastic values",
		Paper: "Table 2: point/related/unrelated addition and multiplication, cross-checked by Monte Carlo.",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "maxops",
		Title: "Group Max strategies over stochastic values",
		Paper: "§2.3.3: Max of A=4±0.5, B=3±2, C=3±1 depends on the resolution strategy.",
		Run:   runMaxOps,
	})
}

// runFig12 reproduces Figures 1-2. The paper benchmarks a sorting code on
// a dedicated workstation; run-to-run variation comes from residual system
// activity. We model each run as fixed work at normal-varying effective
// speed and show the runtimes are well summarized by a fitted normal.
func runFig12(seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	speed, err := dist.NewTruncatedNormal(1.0, 0.055, 0.5, 1.5)
	if err != nil {
		return nil, err
	}
	const baseRuntime = 11.0 // seconds at nominal speed
	runs := make([]float64, 200)
	for i := range runs {
		runs[i] = baseRuntime / speed.Sample(rng)
	}
	fit, err := dist.FitNormal(runs)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogramAuto(runs, stats.FreedmanDiaconis)
	if err != nil {
		return nil, err
	}
	ks, err := stats.KolmogorovSmirnov(runs, fit.CDF)
	if err != nil {
		return nil, err
	}
	ecdf, err := stats.NewECDF(runs)
	if err != nil {
		return nil, err
	}
	sv := stochastic.FromNormal(fit)

	var b strings.Builder
	fmt.Fprintf(&b, "Sort benchmark, %d dedicated runs. Fitted normal: %s\n", len(runs), fit)
	fmt.Fprintf(&b, "Stochastic value: %s; K-S D=%.3f p=%.3f\n\n", sv, ks.Statistic, ks.PValue)
	b.WriteString("PDF (runtime histogram):\n")
	b.WriteString(hist.Render(40))
	b.WriteString("\nCDF:\n")
	xs, fs := ecdf.Curve(24)
	tb := NewTable("runtime", "empirical F", "normal F")
	for i := range xs {
		tb.AddRowf(xs[i], fs[i], fit.CDF(xs[i]))
	}
	b.WriteString(tb.String())

	return &Result{
		ID: "fig1-2", Title: "Dedicated benchmark runtimes", Text: b.String(),
		Metrics: map[string]float64{
			"mean":       fit.Mu,
			"sigma":      fit.Sigma,
			"ks_p":       ks.PValue,
			"coverage2s": stats.CoverageSigma(runs, 2),
		},
	}, nil
}

// runFig34 reproduces Figures 3-4 and the §2.1.1 coverage analysis.
func runFig34(seed int64) (*Result, error) {
	proc, err := load.EthernetContention(seed)
	if err != nil {
		return nil, err
	}
	s, err := load.Record(proc, 0, 20000, 1)
	if err != nil {
		return nil, err
	}
	// Convert availability fraction to Mbit/s on the 10 Mbit ethernet.
	mbit := make([]float64, s.Len())
	for i, v := range s.Values() {
		mbit[i] = v * 10
	}
	fit, err := dist.FitNormal(mbit)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(mbit, 2, 7, 25)
	if err != nil {
		return nil, err
	}
	sv := stochastic.FromNormal(fit)
	cov := stats.Coverage(mbit, sv.Lo(), sv.Hi())
	jb, err := stats.JarqueBera(mbit)
	if err != nil {
		return nil, err
	}
	med, _ := stats.Median(mbit)

	var b strings.Builder
	fmt.Fprintf(&b, "Ethernet bandwidth, %d samples. Mean %.2f Mbit/s, median %.2f, skewness %.2f\n",
		len(mbit), fit.Mu, med, stats.Skewness(mbit))
	fmt.Fprintf(&b, "Normal summary %s covers %s of samples (nominal 95%%)\n", sv, pct(cov))
	fmt.Fprintf(&b, "Jarque-Bera rejects normality: stat=%.1f p=%.4f\n\n", jb.Statistic, jb.PValue)
	b.WriteString("Bandwidth histogram (long left tail):\n")
	b.WriteString(hist.Render(40))

	return &Result{
		ID: "fig3-4", Title: "Long-tailed bandwidth", Text: b.String(),
		Metrics: map[string]float64{
			"mean_mbit":  fit.Mu,
			"coverage2s": cov,
			"skewness":   stats.Skewness(mbit),
			"jb_p":       jb.PValue,
		},
	}, nil
}

// runFig5 reproduces Figure 5: the tri-modal Platform 1 load histogram,
// recovered by mixture fitting.
func runFig5(seed int64) (*Result, error) {
	proc, err := load.Platform1TriModal(seed)
	if err != nil {
		return nil, err
	}
	s, err := load.Record(proc, 0, 30000, 1)
	if err != nil {
		return nil, err
	}
	xs := s.Values()
	hist, err := stats.NewHistogram(xs, 0, 1, 40)
	if err != nil {
		return nil, err
	}
	mm, err := modal.FitBIC(xs, 5)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Platform 1 CPU load, %d samples. BIC selects %d modes:\n", len(xs), mm.K())
	tb := NewTable("mode", "mean", "sigma", "weight")
	for i, m := range mm.Modes {
		tb.AddRowf(i+1, m.Mean, m.Sigma, m.Weight)
	}
	b.WriteString(tb.String())
	b.WriteString("\nLoad histogram:\n")
	b.WriteString(hist.Render(40))

	metrics := map[string]float64{"modes": float64(mm.K())}
	for i, m := range mm.Modes {
		metrics[fmt.Sprintf("mode%d_mean", i+1)] = m.Mean
	}
	return &Result{ID: "fig5", Title: "Tri-modal load", Text: b.String(), Metrics: metrics}, nil
}

// runFig8 reproduces Figure 8: a load trace that stays in the center mode.
func runFig8(seed int64) (*Result, error) {
	proc, err := load.Platform1CenterMode(seed)
	if err != nil {
		return nil, err
	}
	s, err := load.Record(proc, 0, 1500, 5)
	if err != nil {
		return nil, err
	}
	xs := s.Values()
	sv, err := stochastic.FromSample(xs)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Center-mode load trace (0-1500 s). Stochastic value: %s\n", sv)
	fmt.Fprintf(&b, "(paper: 0.48 ± 0.05)\n\n")
	b.WriteString(RenderSeries(s.Times(), xs, 64, 12))
	return &Result{
		ID: "fig8", Title: "Single-mode load trace", Text: b.String(),
		Metrics: map[string]float64{"mean": sv.Mean, "spread": sv.Spread},
	}, nil
}

// runFig1011 reproduces Figures 10-11: the bursty 4-modal Platform 2 load.
func runFig1011(seed int64) (*Result, error) {
	proc, err := load.Platform2FourModeBursty(seed)
	if err != nil {
		return nil, err
	}
	s, err := load.Record(proc, 0, 30000, 1)
	if err != nil {
		return nil, err
	}
	xs := s.Values()
	hist, err := stats.NewHistogram(xs, 0, 1, 40)
	if err != nil {
		return nil, err
	}
	mm, err := modal.FitBIC(xs, 6)
	if err != nil {
		return nil, err
	}
	burst, err := modal.AnalyzeBurstiness(mm, xs)
	if err != nil {
		return nil, err
	}
	trace, err := load.Record(proc, 0, 1500, 5)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Platform 2 CPU load: %d fitted modes, transition rate %.3f/sample, mean dwell %.1f samples\n\n",
		mm.K(), burst.TransitionRate, burst.MeanDwell)
	b.WriteString("Histogram:\n")
	b.WriteString(hist.Render(40))
	b.WriteString("\nBursty trace (0-1500 s):\n")
	b.WriteString(RenderSeries(trace.Times(), trace.Values(), 64, 12))
	return &Result{
		ID: "fig10-11", Title: "Bursty 4-modal load", Text: b.String(),
		Metrics: map[string]float64{
			"modes":           float64(mm.K()),
			"transition_rate": burst.TransitionRate,
		},
	}, nil
}

// runLongtail quantifies the §2.1.1 tradeoff across k-sigma bands. The two
// coverage sweeps draw their samples on the parallel MC engine, one
// deterministic stream per distribution.
func runLongtail(seed int64) (*Result, error) {
	ln, err := dist.LogNormalFromMoments(5.25, 0.8)
	if err != nil {
		return nil, err
	}
	normal := dist.Normal{Mu: 5.25, Sigma: 0.8}
	xsLong, err := stochastic.MC{Seed: seed}.Samples(20000, ln.Sample)
	if err != nil {
		return nil, err
	}
	xsNorm, err := stochastic.MC{Seed: seed + 1}.Samples(20000, normal.Sample)
	if err != nil {
		return nil, err
	}

	tb := NewTable("k-sigma", "normal data", "long-tailed data", "nominal")
	nominal := map[float64]float64{1: 0.6827, 2: 0.9545, 3: 0.9973}
	metrics := map[string]float64{}
	for _, k := range []float64{1, 2, 3} {
		cn := stats.CoverageSigma(xsNorm, k)
		cl := stats.CoverageSigma(xsLong, k)
		tb.AddRowf(k, pct(cn), pct(cl), pct(nominal[k]))
		metrics[fmt.Sprintf("norm_cov%g", k)] = cn
		metrics[fmt.Sprintf("long_cov%g", k)] = cl
	}
	var b strings.Builder
	b.WriteString("Coverage of mean ± k sigma intervals (20000 samples each):\n")
	b.WriteString(tb.String())
	b.WriteString("\nLong-tailed data loses upper-tail coverage at 2 sigma; the normal\nsummary remains acceptable when the consumer tolerates ~5-10% misses.\n")
	return &Result{ID: "longtail", Title: "Long-tail coverage", Text: b.String(), Metrics: metrics}, nil
}

// runTable2 renders the Table 2 rules with worked examples and Monte Carlo
// cross-checks. The spread-error checks sample on the parallel MC engine,
// one independent seed per cross-check.
func runTable2(seed int64) (*Result, error) {
	a := stochastic.New(8, 2)
	c := stochastic.New(5, 1.5)
	p := 3.0

	mc := func(salt int64, f func(*rand.Rand) float64) stochastic.Value {
		v, err := stochastic.MC{Seed: seed + salt}.Moments(60000, f)
		if err != nil {
			panic(err) // cannot happen: sample count is positive
		}
		return v
	}
	addMC := mc(0, func(rng *rand.Rand) float64 { return a.Sample(rng) + c.Sample(rng) })
	mulMC := mc(1, func(rng *rand.Rand) float64 { return a.Sample(rng) * c.Sample(rng) })

	tb := NewTable("operation", "rule result", "Monte Carlo (indep.)")
	tb.AddRowf("(8±2) + 3 [point]", a.AddPoint(p).String(), "")
	tb.AddRowf("3 * (8±2) [point]", a.MulPoint(p).String(), "")
	tb.AddRowf("(8±2)+(5±1.5) related", a.AddRelated(c).String(), "")
	tb.AddRowf("(8±2)+(5±1.5) unrelated", a.AddUnrelated(c).String(), addMC.String())
	tb.AddRowf("(8±2)*(5±1.5) related", a.MulRelated(c).String(), "")
	tb.AddRowf("(8±2)*(5±1.5) unrelated", a.MulUnrelated(c).String(), mulMC.String())

	var b strings.Builder
	b.WriteString("Table 2 combination rules (spread = two standard deviations):\n")
	b.WriteString(tb.String())
	b.WriteString("\nThe unrelated rules match independent sampling; the related rules\nare conservative upper bounds (exact for perfectly correlated inputs).\n")

	au := a.AddUnrelated(c)
	mu := a.MulUnrelated(c)
	return &Result{
		ID: "table2", Title: "Stochastic arithmetic", Text: b.String(),
		Metrics: map[string]float64{
			"add_mc_mean_err":   relDiff(addMC.Mean, au.Mean),
			"add_mc_spread_err": relDiff(addMC.Spread, au.Spread),
			"mul_mc_mean_err":   relDiff(mulMC.Mean, mu.Mean),
			"mul_mc_spread_err": relDiff(mulMC.Spread, mu.Spread),
		},
	}, nil
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}

// runMaxOps reproduces the §2.3.3 Max example, with the ground-truth Max
// distribution sampled on the parallel MC engine.
func runMaxOps(seed int64) (*Result, error) {
	A := stochastic.New(4, 0.5)
	B := stochastic.New(3, 2)
	C := stochastic.New(3, 1)

	largestMean, err := stochastic.Max(stochastic.LargestMean, A, B, C)
	if err != nil {
		return nil, err
	}
	largestMag, err := stochastic.Max(stochastic.LargestMagnitude, A, B, C)
	if err != nil {
		return nil, err
	}
	prob, err := stochastic.Max(stochastic.Probabilistic, A, B, C)
	if err != nil {
		return nil, err
	}
	mcTruth, err := stochastic.MC{Seed: seed}.Moments(200000, func(rng *rand.Rand) float64 {
		m := A.Sample(rng)
		if v := B.Sample(rng); v > m {
			m = v
		}
		if v := C.Sample(rng); v > m {
			m = v
		}
		return m
	})
	if err != nil {
		return nil, err
	}

	tb := NewTable("strategy", "Max{4±0.5, 3±2, 3±1}")
	tb.AddRowf("largest mean", largestMean.String())
	tb.AddRowf("largest magnitude", largestMag.String())
	tb.AddRowf("probabilistic (Clark)", prob.String())
	tb.AddRowf("Monte Carlo truth", mcTruth.String())
	var b strings.Builder
	b.WriteString("Group Max of stochastic values is situation-dependent (§2.3.3):\n")
	b.WriteString(tb.String())
	return &Result{
		ID: "maxops", Title: "Max strategies", Text: b.String(),
		Metrics: map[string]float64{
			"mean_strategy":  largestMean.Mean,
			"mag_strategy":   largestMag.Hi(),
			"clark_mean":     prob.Mean,
			"mc_mean":        mcTruth.Mean,
			"clark_mean_err": relDiff(prob.Mean, mcTruth.Mean),
		},
	}, nil
}
