package experiments

import (
	"fmt"
	"sort"
	"strings"

	"prodpred/internal/load"
	"prodpred/internal/modal"
	"prodpred/internal/nws"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// Ablations probe the design choices DESIGN.md calls out: the
// related-vs-unrelated iteration combination, the NWS mixture-of-experts
// forecaster, the modal summarization formula, and the Max strategy.

func init() {
	register(Experiment{
		ID:    "ablation-iteration-rel",
		Title: "Ablation: related vs unrelated combination across iterations",
		Paper: "§2.3.1 applied across iterations: related summing (paper) scales spread with NumIts; unrelated scales with sqrt(NumIts).",
		Run:   runAblationIterationRel,
	})
	register(Experiment{
		ID:    "ablation-forecaster",
		Title: "Ablation: NWS mixture-of-experts vs single forecasters",
		Paper: "NWS picks the postmortem-best forecaster; any fixed single method is worse on at least one load class.",
		Run:   runAblationForecaster,
	})
	register(Experiment{
		ID:    "ablation-modal",
		Title: "Ablation: paper's weighted modal combination vs full mixture summary",
		Paper: "§2.1.2's P_i-weighted combination ignores between-mode variance; the full mixture summary is wider.",
		Run:   runAblationModal,
	})
	register(Experiment{
		ID:    "ablation-maxstrategy",
		Title: "Ablation: Max strategy effect on prediction capture",
		Paper: "§2.3.3: the group-Max resolution changes interval width and hence capture.",
		Run:   runAblationMaxStrategy,
	})
}

func runAblationIterationRel(seed int64) (*Result, error) {
	const n = 600
	related, err := runPlatform2Series(n, seed, 12, stochastic.LargestMean, structural.Related, nil)
	if err != nil {
		return nil, err
	}
	unrelated, err := runPlatform2Series(n, seed, 12, stochastic.LargestMean, structural.Unrelated, nil)
	if err != nil {
		return nil, err
	}
	mR := summarizeRuns(related)
	mU := summarizeRuns(unrelated)
	avgSpread := func(recs []runRecord) float64 {
		var s float64
		for _, r := range recs {
			s += r.Pred.Spread
		}
		return s / float64(len(recs))
	}
	tb := NewTable("iteration combination", "avg spread (s)", "capture", "max interval err")
	tb.AddRowf("related (paper)", avgSpread(related), pct(mR.CaptureFrac), pct(mR.MaxIntErr))
	tb.AddRowf("unrelated (sqrt-N)", avgSpread(unrelated), pct(mU.CaptureFrac), pct(mU.MaxIntErr))
	var b strings.Builder
	b.WriteString("Same bursty Platform 2 runs, two ways of combining per-iteration values:\n")
	b.WriteString(tb.String())
	b.WriteString("\nBursty load is persistent within a run, so iterations are NOT\nindependent draws: the related rule's wider interval earns its keep.\n")
	return &Result{
		ID: "ablation-iteration-rel", Title: "Iteration relation ablation", Text: b.String(),
		Metrics: map[string]float64{
			"related_capture":   mR.CaptureFrac,
			"unrelated_capture": mU.CaptureFrac,
			"related_spread":    avgSpread(related),
			"unrelated_spread":  avgSpread(unrelated),
		},
	}, nil
}

func runAblationForecaster(seed int64) (*Result, error) {
	// Score each forecaster and the mix on two load classes.
	classes := []struct {
		name string
		mk   func() (load.Process, error)
	}{
		{"single-mode", func() (load.Process, error) { return load.Platform1CenterMode(seed) }},
		{"bursty-4mode", func() (load.Process, error) { return load.Platform2FourModeBursty(seed) }},
	}
	var b strings.Builder
	metrics := map[string]float64{}
	for _, class := range classes {
		proc, err := class.mk()
		if err != nil {
			return nil, err
		}
		s, err := load.Record(proc, 0, 5000, nws.DefaultPeriod)
		if err != nil {
			return nil, err
		}
		vals := s.Values()
		// Postmortem every forecaster over the trace.
		battery := nws.DefaultBattery()
		mix := nws.NewMix(battery)
		single := make([]*nws.Mix, len(battery))
		for i, f := range battery {
			single[i] = nws.NewMix([]nws.Forecaster{f})
		}
		for i := 1; i < len(vals); i++ {
			hist := vals[:i]
			mix.Update(hist, vals[i])
			for _, m := range single {
				m.Update(hist, vals[i])
			}
		}
		// The mix's eventual choice has the min RMSE by construction;
		// report the spread between best and worst single forecasters.
		tb := NewTable("forecaster", "RMSE")
		best, worst := "", ""
		bestV, worstV := 1e9, -1.0
		rmses := mix.RMSEs()
		names := make([]string, 0, len(rmses))
		for name := range rmses {
			names = append(names, name)
		}
		sort.Strings(names) // map order would shuffle the table run-to-run
		for _, name := range names {
			rmse := rmses[name]
			tb.AddRowf(name, rmse)
			if rmse < bestV {
				best, bestV = name, rmse
			}
			if rmse > worstV {
				worst, worstV = name, rmse
			}
		}
		fmt.Fprintf(&b, "Load class: %s (best=%s %.4f, worst=%s %.4f)\n", class.name, best, bestV, worst, worstV)
		b.WriteString(tb.String())
		b.WriteString("\n")
		metrics[class.name+"_best_rmse"] = bestV
		metrics[class.name+"_worst_rmse"] = worstV
	}
	b.WriteString("No single forecaster wins both classes; the postmortem mix always\ntracks the per-class best — the NWS design the paper relies on.\n")
	return &Result{ID: "ablation-forecaster", Title: "Forecaster ablation", Text: b.String(), Metrics: metrics}, nil
}

func runAblationModal(seed int64) (*Result, error) {
	proc, err := load.Platform2FourModeBursty(seed)
	if err != nil {
		return nil, err
	}
	s, err := load.Record(proc, 0, 20000, 1)
	if err != nil {
		return nil, err
	}
	xs := s.Values()
	mm, err := modal.FitBIC(xs, 6)
	if err != nil {
		return nil, err
	}
	paperVal, single, err := modal.StochasticValue(mm, xs)
	if err != nil {
		return nil, err
	}
	fullVal, err := modal.MixtureStochasticValue(mm, xs)
	if err != nil {
		return nil, err
	}
	// Capture of future load samples by each summary.
	future, err := load.Record(proc, 20000, 40000, 1)
	if err != nil {
		return nil, err
	}
	covPaper, covFull := 0.0, 0.0
	for _, v := range future.Values() {
		if paperVal.Contains(v) {
			covPaper++
		}
		if fullVal.Contains(v) {
			covFull++
		}
	}
	nf := float64(future.Len())
	covPaper /= nf
	covFull /= nf

	tb := NewTable("summary", "value", "future-sample coverage")
	tb.AddRowf("weighted modes (paper §2.1.2)", paperVal.String(), pct(covPaper))
	tb.AddRowf("full mixture (±2 sigma total)", fullVal.String(), pct(covFull))
	var b strings.Builder
	fmt.Fprintf(&b, "Bursty 4-modal load, %d fitted modes (single-mode branch taken: %v):\n", mm.K(), single)
	b.WriteString(tb.String())
	b.WriteString("\nThe paper's combination averages within-mode spreads; on widely\nseparated modes the full mixture interval covers far more of the\nactual load excursions.\n")
	return &Result{
		ID: "ablation-modal", Title: "Modal summary ablation", Text: b.String(),
		Metrics: map[string]float64{
			"paper_spread":   paperVal.Spread,
			"mixture_spread": fullVal.Spread,
			"paper_cov":      covPaper,
			"mixture_cov":    covFull,
		},
	}, nil
}

func runAblationMaxStrategy(seed int64) (*Result, error) {
	const n = 600
	var b strings.Builder
	metrics := map[string]float64{}
	tb := NewTable("max strategy", "capture", "max interval err", "avg spread (s)")
	for _, s := range []struct {
		name string
		s    stochastic.MaxStrategy
	}{
		{"largest-mean", stochastic.LargestMean},
		{"largest-magnitude", stochastic.LargestMagnitude},
		{"probabilistic", stochastic.Probabilistic},
	} {
		recs, err := runPlatform2Series(n, seed, 12, s.s, structural.Related, nil)
		if err != nil {
			return nil, err
		}
		m := summarizeRuns(recs)
		var spread float64
		for _, r := range recs {
			spread += r.Pred.Spread
		}
		spread /= float64(len(recs))
		tb.AddRowf(s.name, pct(m.CaptureFrac), pct(m.MaxIntErr), spread)
		metrics[s.name+"_capture"] = m.CaptureFrac
		metrics[s.name+"_spread"] = spread
	}
	b.WriteString("Bursty Platform 2 runs under each group-Max resolution (§2.3.3):\n")
	b.WriteString(tb.String())
	return &Result{ID: "ablation-maxstrategy", Title: "Max strategy ablation", Text: b.String(), Metrics: metrics}, nil
}
