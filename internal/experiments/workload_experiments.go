package experiments

import (
	"fmt"
	"strings"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
	"prodpred/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "workload-scenarios",
		Title: "Per-scenario prediction scorecards across the workload library",
		Paper: "§4's evaluation fixes the load models to the two measured platforms. The workload library replays the production regimes the paper describes in prose — diurnal cycles, flash crowds, heavy-tailed batch contention, cohort mixes, regime cascades — as declarative scenarios, and this sweep scores both served interval constructions (calibrated normal and calibrated quantile grid) on every one of them: per-scenario capture, width, and Winkler interval score at 95%.",
		Run:   runWorkloadScenarios,
	})
}

// Scenario-sweep shape: a short-gap production series per scenario, small
// enough that the full library sweeps in test time, long enough that the
// post-burn-in window sees each scenario's regime structure. Each scenario
// is run at scenarioSeeds independent seeds and the post-burn-in records
// pooled, so no scorecard hinges on one sample path.
const (
	scenarioN     = 120
	scenarioRuns  = 40
	scenarioSeeds = 2
)

// scenarioSeries replays one observed production series with the named
// library scenario driving all four machines (entry i on machine i) and
// shared-ethernet contention on the network.
func scenarioSeries(name string, seed int64) ([]runRecord, error) {
	sc, ok := workload.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("workload-scenarios: unknown scenario %q", name)
	}
	cpu := make([]load.Process, 4)
	for i := range cpu {
		p, err := sc.Machine(i, seed+int64(i)*7)
		if err != nil {
			return nil, err
		}
		cpu[i] = p
	}
	net, err := load.EthernetContention(seed + 999)
	if err != nil {
		return nil, err
	}
	return runProductionSeries(productionConfig{
		plat:         cluster.Platform2(),
		cpu:          cpu,
		net:          net,
		n:            scenarioN,
		iters:        4,
		runs:         scenarioRuns,
		gap:          5,
		warmup:       600,
		partStrategy: sched.MeanBalanced,
		maxStrategy:  stochastic.LargestMean,
		iterationRel: structural.Related,
		observe:      true,
	})
}

// runWorkloadScenarios sweeps every library scenario and emits one
// scorecard row per scenario: capture fraction, mean interval width, and
// Winkler score at the 95% level for the calibrated-normal interval
// (point path) and the calibrated quantile grid (distribution path),
// pooled over scenarioSeeds seeds after the calibration burn-in.
func runWorkloadScenarios(seed int64) (*Result, error) {
	names := workload.Names()
	tb := NewTable("scenario", "capture pt/dist", "width pt/dist", "Winkler@95 pt/dist")
	metrics := map[string]float64{"scenarios": float64(len(names))}
	for _, name := range names {
		var scored []runRecord
		for s := 0; s < scenarioSeeds; s++ {
			recs, err := scenarioSeries(name, seed+int64(s)*101)
			if err != nil {
				return nil, err
			}
			if len(recs) <= distBurnIn {
				return nil, fmt.Errorf("workload-scenarios: %s: %d records, need more than the %d-run burn-in", name, len(recs), distBurnIn)
			}
			scored = append(scored, recs[distBurnIn:]...)
		}
		capPt, widthPt := calCapture(scored)
		capDist, widthDist := quantileCapture(scored)
		w95Pt := intervalScore(0.05, func(r runRecord) (float64, float64) { return r.Pred.Interval() }, scored)
		w95Dist := intervalScore(0.05, func(r runRecord) (float64, float64) { return r.QLo, r.QHi }, scored)
		tb.AddRowf(name,
			fmt.Sprintf("%s / %s", pct(capPt), pct(capDist)),
			fmt.Sprintf("%.3f / %.3f", widthPt, widthDist),
			fmt.Sprintf("%.3f / %.3f", w95Pt, w95Dist))
		metrics[name+"_capture_point"] = capPt
		metrics[name+"_capture_dist"] = capDist
		metrics[name+"_width_point"] = widthPt
		metrics[name+"_width_dist"] = widthDist
		metrics[name+"_winkler95_point"] = w95Pt
		metrics[name+"_winkler95_dist"] = w95Dist
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d SOR on Platform 2 machines under each workload-library scenario;\n%d observed runs x %d seeds per scenario, first %d runs of each series\nexcluded as calibration burn-in. \"pt\" is the calibrated-normal\nmean±spread interval, \"dist\" the calibrated quantile grid's central 95%%\n(Winkler score: width + 40x miss distance; lower is better).\n\n",
		scenarioN, scenarioN, scenarioRuns, scenarioSeeds, distBurnIn)
	b.WriteString(tb.String())
	b.WriteString("\nEvery scenario is generated, not measured, so the sweep is exactly\nreproducible from (scenario spec, seed) — the same contract that makes\nrecorded traces replay bit-identically through the serving stack.\n")
	return &Result{ID: "workload-scenarios", Title: "Workload-library scenario scorecards", Text: b.String(), Metrics: metrics}, nil
}
