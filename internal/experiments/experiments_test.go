package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig1-2", "fig3-4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10-11", "fig12-13", "fig14-15", "fig16-17",
		"dedicated", "longtail", "maxops", "allocation",
		"ablation-iteration-rel", "ablation-forecaster",
		"ablation-modal", "ablation-maxstrategy",
		"ablation-empirical", "ablation-partition",
		"ablation-selfsched", "ablation-objective",
		"host-tcp", "host-bench",
		"robust-faults", "calib-replay", "dist-tournament",
		"workload-scenarios", "fleet-sched",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("table1")
	if err != nil || e.ID != "table1" {
		t.Errorf("Lookup=%+v err=%v", e, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown ID should fail")
	}
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].ID < all[i-1].ID {
			t.Error("All() not sorted")
		}
	}
}

func TestResultMetric(t *testing.T) {
	r := &Result{ID: "x", Metrics: map[string]float64{"a": 1}}
	if v, err := r.Metric("a"); err != nil || v != 1 {
		t.Errorf("Metric=%g err=%v", v, err)
	}
	if _, err := r.Metric("b"); err == nil {
		t.Error("missing metric should fail")
	}
}

// assertMetric checks lo <= metrics[name] <= hi.
func assertMetric(t *testing.T, r *Result, name string, lo, hi float64) {
	t.Helper()
	v, err := r.Metric(name)
	if err != nil {
		t.Fatal(err)
	}
	if v < lo || v > hi {
		t.Errorf("%s: %s=%g outside [%g, %g]", r.ID, name, v, lo, hi)
	}
}

func runExp(t *testing.T, id string, seed int64) *Result {
	t.Helper()
	e, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run(seed)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.Text == "" {
		t.Fatalf("%s: empty text", id)
	}
	return r
}

func TestTable1Shape(t *testing.T) {
	r := runExp(t, "table1", 1)
	// Both machines average ~12 s, A stable (<10%), B volatile (>20%).
	assertMetric(t, r, "meanA", 11, 13)
	assertMetric(t, r, "meanB", 11, 13.5)
	assertMetric(t, r, "relSpreadA", 0, 0.10)
	assertMetric(t, r, "relSpreadB", 0.20, 0.70)
}

func TestTable2Shape(t *testing.T) {
	r := runExp(t, "table2", 1)
	// Unrelated rules match Monte Carlo within a few percent.
	assertMetric(t, r, "add_mc_mean_err", 0, 0.02)
	assertMetric(t, r, "add_mc_spread_err", 0, 0.05)
	assertMetric(t, r, "mul_mc_mean_err", 0, 0.02)
	assertMetric(t, r, "mul_mc_spread_err", 0, 0.08)
}

func TestFig12Shape(t *testing.T) {
	r := runExp(t, "fig1-2", 1)
	assertMetric(t, r, "mean", 10, 12.5)
	assertMetric(t, r, "ks_p", 0.01, 1) // normal fit not rejected
	assertMetric(t, r, "coverage2s", 0.9, 1)
}

func TestFig34Shape(t *testing.T) {
	r := runExp(t, "fig3-4", 29)
	assertMetric(t, r, "mean_mbit", 5.0, 5.5) // paper: 5.25
	assertMetric(t, r, "coverage2s", 0.88, 0.94)
	assertMetric(t, r, "skewness", -5, -1) // long left tail
	assertMetric(t, r, "jb_p", 0, 0.01)    // decisively non-normal
}

func TestFig5Shape(t *testing.T) {
	r := runExp(t, "fig5", 1)
	assertMetric(t, r, "modes", 3, 3)
	assertMetric(t, r, "mode1_mean", 0.28, 0.38) // paper: 0.33
	assertMetric(t, r, "mode2_mean", 0.43, 0.54) // paper: 0.49
	assertMetric(t, r, "mode3_mean", 0.89, 0.99) // paper: 0.94
}

func TestFig8Shape(t *testing.T) {
	r := runExp(t, "fig8", 1)
	assertMetric(t, r, "mean", 0.45, 0.51)   // paper: 0.48
	assertMetric(t, r, "spread", 0.03, 0.08) // paper: 0.05
}

func TestFig1011Shape(t *testing.T) {
	r := runExp(t, "fig10-11", 1)
	assertMetric(t, r, "modes", 3, 5) // paper: 4
	assertMetric(t, r, "transition_rate", 0.02, 0.3)
}

func TestLongtailShape(t *testing.T) {
	r := runExp(t, "longtail", 1)
	assertMetric(t, r, "norm_cov2", 0.94, 0.97)
	// Long-tailed data deviates from the nominal band at 1 sigma.
	v1, _ := r.Metric("long_cov1")
	n1, _ := r.Metric("norm_cov1")
	if v1 == n1 {
		t.Error("long-tailed and normal 1-sigma coverage identical")
	}
}

func TestMaxOpsShape(t *testing.T) {
	r := runExp(t, "maxops", 1)
	assertMetric(t, r, "mean_strategy", 4, 4) // A has the largest mean
	assertMetric(t, r, "mag_strategy", 5, 5)  // B's range tops at 5
	assertMetric(t, r, "clark_mean_err", 0, 0.03)
	mc, _ := r.Metric("mc_mean")
	if mc <= 4 {
		t.Errorf("MC max mean %g should exceed 4", mc)
	}
}

func TestAllocationShape(t *testing.T) {
	r := runExp(t, "allocation", 1)
	consP, _ := r.Metric("high-penalty_conservative_penalty")
	meanP, _ := r.Metric("high-penalty_mean_penalty")
	optP, _ := r.Metric("high-penalty_optimistic_penalty")
	if !(consP < meanP && meanP < optP) {
		t.Errorf("penalty ordering wrong: cons=%g mean=%g opt=%g", consP, meanP, optP)
	}
	assertMetric(t, r, "unitB_cov", 0.93, 0.97)
}

func TestFig6And7(t *testing.T) {
	r := runExp(t, "fig6", 1)
	assertMetric(t, r, "strips", 4, 4)
	if !strings.Contains(r.Text, "P1") {
		t.Error("fig6 missing strips")
	}
	r = runExp(t, "fig7", 1)
	skew, _ := r.Metric("max_skew")
	bound, _ := r.Metric("skew_bound")
	if skew <= 0 {
		t.Errorf("skew=%g should be positive under uneven load", skew)
	}
	if skew > bound {
		t.Errorf("skew %g exceeds loose-synchronization bound %g", skew, bound)
	}
}

func TestAblationEmpiricalShape(t *testing.T) {
	r := runExp(t, "ablation-empirical", 1)
	// On normal load the rule's interval covers ~95% of the truth; on
	// long-tailed load it covers less.
	assertMetric(t, r, "s0_rule_cov", 0.93, 0.97)
	s0, _ := r.Metric("s0_rule_cov")
	s1, _ := r.Metric("s1_rule_cov")
	if s1 >= s0 {
		t.Errorf("long-tailed coverage %g should fall below normal %g", s1, s0)
	}
	speedup, _ := r.Metric("rule_speedup")
	if speedup < 100 {
		t.Errorf("closed-form speedup %gx implausibly small", speedup)
	}
}

func TestAblationPartitionShape(t *testing.T) {
	r := runExp(t, "ablation-partition", 1)
	s120, _ := r.Metric("speedup_n120")
	s800, _ := r.Metric("speedup_n800")
	if s120 < 1.05 {
		t.Errorf("small-N speedup %g should be material", s120)
	}
	if s800 >= s120 {
		t.Errorf("speedup should shrink with N: %g at 800 vs %g at 120", s800, s120)
	}
	if s800 < 0.99 {
		t.Errorf("time balancing should never lose: %g", s800)
	}
}

func TestDedicatedShape(t *testing.T) {
	r := runExp(t, "dedicated", 1)
	assertMetric(t, r, "worst_err", 0, 0.02) // paper: within 2%
}

func TestAblationObjectiveShape(t *testing.T) {
	r := runExp(t, "ablation-objective", 1)
	meanA, _ := r.Metric("mean_allocA")
	ubA, _ := r.Metric("upper-bound_allocA")
	p95A, _ := r.Metric("p95_allocA")
	if !(ubA > meanA && p95A > meanA) {
		t.Errorf("risk-averse objectives should favor stable machine: mean=%g ub=%g p95=%g",
			meanA, ubA, p95A)
	}
	// Each optimized allocation should win (or tie) on its own MC metric.
	meanMean, _ := r.Metric("mean_mc_mean")
	ubMean, _ := r.Metric("upper-bound_mc_mean")
	if meanMean > ubMean*1.02 {
		t.Errorf("mean-optimized MC mean %g should not lose to ub-optimized %g", meanMean, ubMean)
	}
	meanP95, _ := r.Metric("mean_mc_p95")
	ubP95, _ := r.Metric("upper-bound_mc_p95")
	if ubP95 > meanP95*1.02 {
		t.Errorf("ub-optimized MC p95 %g should not lose to mean-optimized %g", ubP95, meanP95)
	}
}

func TestFig9StableAcrossSeeds(t *testing.T) {
	// The headline Figure 9 claims must not hinge on the default seed.
	for _, seed := range []int64{2, 7, 42} {
		r := runExp(t, "fig9", seed)
		v, _ := r.Metric("captured_all")
		if v != 1 {
			t.Errorf("seed %d: not all runs captured", seed)
		}
		me, _ := r.Metric("max_mean_err")
		if me > 0.2 {
			t.Errorf("seed %d: max mean err %g", seed, me)
		}
	}
}

func TestAblationSelfSchedShape(t *testing.T) {
	r := runExp(t, "ablation-selfsched", 1)
	moderate, _ := r.Metric("self-sched_chunk5")
	static, _ := r.Metric("static_mean-balanced")
	oneShot, _ := r.Metric("self-sched_chunk120")
	if moderate >= static {
		t.Errorf("moderate self-sched %g should beat static %g", moderate, static)
	}
	if oneShot <= static {
		t.Errorf("one-shot self-sched %g should lose to static %g (no adaptivity, same commitment)", oneShot, static)
	}
}

func TestHostTCPShape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-hardware timing experiment")
	}
	r := runExp(t, "host-tcp", 1)
	// Wall-clock behaviour varies with host load (these tests themselves
	// run in parallel with it): assert only order-of-magnitude sanity.
	assertMetric(t, r, "bm_ns", 0.1, 1000)
	assertMetric(t, r, "comp_ratio", 0.05, 20)
	assertMetric(t, r, "capture_frac", 0, 1)
	assertMetric(t, r, "spread_rel", 0, 10)
}

func TestHostBenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("real-hardware timing experiment")
	}
	r := runExp(t, "host-bench", 1)
	assertMetric(t, r, "mean_ms", 0.001, 10000)
	assertMetric(t, r, "rel_spread", 0, 5)
	assertMetric(t, r, "coverage2s", 0.5, 1) // shape only: host noise varies
}

func TestFig9Shape(t *testing.T) {
	r := runExp(t, "fig9", 1)
	assertMetric(t, r, "captured_all", 1, 1)    // paper: 0% interval discrepancy
	assertMetric(t, r, "max_mean_err", 0, 0.15) // paper: 9.7%
}
