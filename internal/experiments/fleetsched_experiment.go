package experiments

import (
	"fmt"
	"strings"

	"prodpred/internal/fleetsched"
	"prodpred/internal/predict"
)

func init() {
	register(Experiment{
		ID:    "fleet-sched",
		Title: "Distribution-aware fleet scheduling under bursty load",
		Paper: "§5 argues the point of predicting execution time is scheduling: a scheduler that knows only the mean picks whichever host looks fastest right now, while one that reads the predicted distribution can hedge against volatility it has already measured. This experiment places identical SOR job waves across a mixed fleet — fast tenants driven by a bursty workload scenario, slower tenants on a quiet baseline — under the mean policy and the 95th-percentile quantile policy, and compares makespan and deadline-miss rate.",
		Run:   runFleetSched,
	})
}

// Fleet-sched shape: jobs sized so one execution (~240 virtual s on an
// unloaded fast tenant) spans a meaningful slice of a burst period — "quiet
// now" does not mean "quiet throughout" — waves spaced so placements sample
// both quiet windows and burst onsets, and a deadline budget that the
// steady quiet path meets with ~80 s to spare while a burst-caught job
// blows through it.
const (
	fsWarmup      = 600.0 // virtual s of NWS warmup per tenant
	fsN           = 2000  // SOR grid size per job
	fsIters       = 400   // SOR iterations per job
	fsWaves       = 8     // submission waves
	fsJobsPerWave = 3
	fsWaveGap     = 350.0 // virtual s between waves
	fsTick        = 25.0  // virtual s per lockstep advance+sync step
	fsDeadline    = 400.0 // per-job budget, virtual s from submission
	fsDrainTicks  = 600   // post-wave sync cap before declaring nonconvergence
	fsQuantile    = 0.95
	// Width-based saturation is opened up so the placement policy — not the
	// shared saturation guard — is what differs between the two arms.
	fsSatRelWidth = 4.0
)

// fleetSchedSpecs declares the mixed fleet: two fast 3-ultra tenants whose
// CPUs replay the named bursty scenario (attractive means, volatile tails)
// and four slower 4-sparc10 tenants on the quiet baseline (higher means,
// narrow tails, enough aggregate capacity that hedging onto them is
// affordable).
func fleetSchedSpecs(scenario string, seed int64) []predict.PlatformSpec {
	spec := func(name, kind, load string, machines int, s int64) predict.PlatformSpec {
		ms := make([]predict.MachineSpec, machines)
		for i := range ms {
			ms[i] = predict.MachineSpec{Name: fmt.Sprintf("m%d", i), Kind: kind}
		}
		return predict.PlatformSpec{
			Name:     name,
			Machines: ms,
			CPU:      []predict.LoadSpec{{Kind: "scenario", Scenario: load}},
			Net:      &predict.LoadSpec{Kind: "ethernet-contention"},
			Seed:     s,
			Warmup:   fsWarmup,
		}
	}
	return []predict.PlatformSpec{
		spec("burst-0", "ultra", scenario, 3, seed+11),
		spec("burst-1", "ultra", scenario, 3, seed+23),
		spec("quiet-0", "sparc10", "quiet-baseline", 4, seed+37),
		spec("quiet-1", "sparc10", "quiet-baseline", 4, seed+41),
		spec("quiet-2", "sparc10", "quiet-baseline", 4, seed+53),
		spec("quiet-3", "sparc10", "quiet-baseline", 4, seed+67),
	}
}

// fleetSchedArm runs one (scenario, policy) arm: a fresh fleet, the same
// wave stream, lockstep clock advances with a Sync per tick, drained until
// every job completes. Returns the final scheduler status.
func fleetSchedArm(scenario string, policy fleetsched.Policy, seed int64) (fleetsched.Status, error) {
	reg := predict.NewRegistry()
	for _, spec := range fleetSchedSpecs(scenario, seed) {
		if err := reg.RegisterSpec(spec); err != nil {
			return fleetsched.Status{}, err
		}
		if _, err := reg.Lookup(spec.Name); err != nil {
			return fleetsched.Status{}, err
		}
	}
	s := fleetsched.New(reg, fleetsched.Config{
		Policy:      policy,
		Quantile:    fsQuantile,
		SatRelWidth: fsSatRelWidth,
	})
	advance := func(dt float64) error {
		for _, svc := range reg.Services() {
			if err := svc.Advance(dt); err != nil {
				return err
			}
		}
		return nil
	}
	now := fsWarmup
	total := 0
	for w := 0; w < fsWaves; w++ {
		jobs := make([]fleetsched.JobSpec, fsJobsPerWave)
		for i := range jobs {
			jobs[i] = fleetsched.JobSpec{
				Name:       fmt.Sprintf("wave%d-job%d", w, i),
				N:          fsN,
				Iterations: fsIters,
				Deadline:   now + fsDeadline,
			}
		}
		if _, err := s.Submit(jobs); err != nil {
			return fleetsched.Status{}, err
		}
		total += len(jobs)
		for t := 0; t < int(fsWaveGap/fsTick); t++ {
			if err := advance(fsTick); err != nil {
				return fleetsched.Status{}, err
			}
			s.Sync()
		}
		now += fsWaveGap
	}
	for i := 0; i < fsDrainTicks; i++ {
		s.Sync()
		st := s.Status()
		if st.Completed+st.Unplaced >= total {
			return st, nil
		}
		if err := advance(fsTick); err != nil {
			return fleetsched.Status{}, err
		}
	}
	return fleetsched.Status{}, fmt.Errorf("fleet-sched: %s/%s did not drain %d jobs in %d ticks",
		scenario, policy, total, fsDrainTicks)
}

// runFleetSched compares mean-based and quantile-based placement on two
// bursty scenarios, reporting makespan and deadline-miss rate per arm.
func runFleetSched(seed int64) (*Result, error) {
	scenarios := []string{"flash-crowd", "regime-cascade"}
	policies := []fleetsched.Policy{fleetsched.PolicyMean, fleetsched.PolicyQuantile}
	tb := NewTable("scenario", "policy", "makespan (vs)", "miss rate", "migrations")
	metrics := map[string]float64{"scenarios": float64(len(scenarios))}
	quantileWins := 0
	for _, sc := range scenarios {
		arm := map[fleetsched.Policy]fleetsched.Status{}
		for _, pol := range policies {
			st, err := fleetSchedArm(sc, pol, seed)
			if err != nil {
				return nil, err
			}
			if st.Completed == 0 {
				return nil, fmt.Errorf("fleet-sched: %s/%s completed no jobs", sc, pol)
			}
			arm[pol] = st
			missRate := float64(st.Misses) / float64(st.Completed)
			tb.AddRowf(sc, string(pol),
				fmt.Sprintf("%.0f", st.Makespan),
				pct(missRate),
				fmt.Sprintf("%d", st.Migrations))
			metrics[sc+"_makespan_"+string(pol)] = st.Makespan
			metrics[sc+"_missrate_"+string(pol)] = missRate
			metrics[sc+"_completed_"+string(pol)] = float64(st.Completed)
			metrics[sc+"_migrations_"+string(pol)] = float64(st.Migrations)
		}
		m, q := arm[fleetsched.PolicyMean], arm[fleetsched.PolicyQuantile]
		if q.Makespan < m.Makespan && q.Misses < m.Misses {
			quantileWins++
		}
	}
	metrics["quantile_wins"] = float64(quantileWins)

	var b strings.Builder
	fmt.Fprintf(&b, "%d waves of %d SOR jobs (%dx%d, %d iterations, %.0f vs deadline budget)\nplaced across a 6-tenant fleet: 2 fast tenants under the bursty scenario,\n4 slower tenants on quiet-baseline. Identical fleets and job streams per\narm; only the placement policy differs (quantile at q=%.2f).\n\n",
		fsWaves, fsJobsPerWave, fsN, fsN, fsIters, fsDeadline, fsQuantile)
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nThe mean policy chases the fast tenants' attractive quiet-time means and\npays when a burst lands mid-job; the quantile policy reads the learned\ntail and hedges onto the steady tenants. Quantile wins both makespan and\nmiss rate on %d/%d scenarios.\n", quantileWins, len(scenarios))
	return &Result{ID: "fleet-sched", Title: "Distribution-aware fleet scheduling", Text: b.String(), Metrics: metrics}, nil
}
