package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
)

func init() {
	register(Experiment{
		ID:    "ablation-objective",
		Title: "Ablation: allocations tuned to different performance metrics",
		Paper: "§1.2: 'a sophisticated scheduling strategy tuned to the user's performance metric' — the same stochastic predictions, three metrics, three different best allocations.",
		Run:   runAblationObjective,
	})
}

func runAblationObjective(seed int64) (*Result, error) {
	unitTimes := []stochastic.Value{
		stochastic.FromPercent(12, 5),  // machine A: stable
		stochastic.FromPercent(12, 30), // machine B: volatile
	}
	const units = 100
	results, err := sched.CompareObjectives(units, unitTimes)
	if err != nil {
		return nil, err
	}

	// Monte Carlo each optimized allocation under every metric to show
	// the cross-metric tradeoffs.
	rng := rand.New(rand.NewSource(seed))
	const trials = 20000
	evaluate := func(alloc []int) (mean, p95 float64, err error) {
		xs := make([]float64, trials)
		for i := range xs {
			xs[i], err = sched.SimulateMakespan(alloc, unitTimes, rng)
			if err != nil {
				return 0, 0, err
			}
			mean += xs[i]
		}
		mean /= trials
		e, err := stochastic.NewEmpirical(xs)
		if err != nil {
			return 0, 0, err
		}
		p95, err = e.Quantile(0.95)
		return mean, p95, err
	}

	tb := NewTable("objective", "alloc A/B", "predicted", "MC mean (s)", "MC p95 (s)")
	metrics := map[string]float64{}
	for _, r := range results {
		mean, p95, err := evaluate(r.Alloc)
		if err != nil {
			return nil, err
		}
		tb.AddRowf(r.Name, fmt.Sprintf("%d/%d", r.Alloc[0], r.Alloc[1]),
			r.Makespan.String(), mean, p95)
		metrics[r.Name+"_allocA"] = float64(r.Alloc[0])
		metrics[r.Name+"_mc_mean"] = mean
		metrics[r.Name+"_mc_p95"] = p95
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Two machines (12s ± 5%% and 12s ± 30%%), %d units, optimizer per metric:\n", units)
	b.WriteString(tb.String())
	b.WriteString("\nMinimizing the mean splits nearly evenly; minimizing the upper bound\nor the 95th percentile shifts work to the stable machine. Each\nallocation wins on its own metric — the information a point value\ncannot express.\n")
	return &Result{ID: "ablation-objective", Title: "Objective-tuned allocation", Text: b.String(), Metrics: metrics}, nil
}
