package experiments

import (
	"fmt"
	"strings"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/sched"
	"prodpred/internal/simenv"
	"prodpred/internal/stochastic"
)

func init() {
	register(Experiment{
		ID:    "ablation-selfsched",
		Title: "Ablation: static prediction-based allocation vs dynamic self-scheduling",
		Paper: "The conclusion's 'sophisticated strategies for scheduling': committing to a forecast vs adapting at runtime, across dispatch chunk sizes.",
		Run:   runAblationSelfSched,
	})
}

func runAblationSelfSched(seed int64) (*Result, error) {
	const (
		units    = 120
		trials   = 10
		dispatch = 0.5 // seconds per chunk dispatch on the shared network
	)
	mkEnv := func(s int64) (*simenv.Env, error) {
		la, err := load.NewSingleMode(10.0/12.0, 0.02, 0.8, 1, s)
		if err != nil {
			return nil, err
		}
		lb, err := load.NewMarkovModal(
			[]load.ModeSpec{{Mean: 0.15, Sigma: 0.03}, {Mean: 0.75, Sigma: 0.03}},
			[]float64{0.5, 0.5}, 0.02, 0.7, 1, s+1)
		if err != nil {
			return nil, err
		}
		return simenv.New(cluster.TwoMachineExample(),
			[]load.Process{la, lb}, load.Dedicated())
	}

	type policy struct {
		name string
		run  func(env *simenv.Env) (float64, error)
	}
	staticAlloc := func(s sched.Strategy) func(env *simenv.Env) (float64, error) {
		return func(env *simenv.Env) (float64, error) {
			// Unit times from the §1.2 production view: A stable, B
			// volatile, both 12 s mean.
			unitTimes := []stochastic.Value{
				stochastic.FromPercent(12, 5),
				stochastic.FromPercent(12, 30),
			}
			alloc, err := sched.UnitAllocation(units, unitTimes, s)
			if err != nil {
				return 0, err
			}
			res, err := sched.SimulateStatic(env, alloc, 1, 0)
			if err != nil {
				return 0, err
			}
			return res.Makespan, nil
		}
	}
	selfSched := func(chunk int) func(env *simenv.Env) (float64, error) {
		return func(env *simenv.Env) (float64, error) {
			res, err := sched.SimulateSelfScheduling(env, units, chunk, 1, dispatch, 0)
			if err != nil {
				return 0, err
			}
			return res.Makespan, nil
		}
	}
	policies := []policy{
		{"static mean-balanced", staticAlloc(sched.MeanBalanced)},
		{"static conservative", staticAlloc(sched.Conservative)},
		{"self-sched chunk=1", selfSched(1)},
		{"self-sched chunk=5", selfSched(5)},
		{"self-sched chunk=20", selfSched(20)},
		{"self-sched chunk=120", selfSched(units)},
	}

	means := make([]float64, len(policies))
	for trial := 0; trial < trials; trial++ {
		env, err := mkEnv(seed + int64(trial)*31)
		if err != nil {
			return nil, err
		}
		for i, p := range policies {
			m, err := p.run(env)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p.name, err)
			}
			means[i] += m
		}
	}
	tb := NewTable("policy", "mean makespan (s)")
	metrics := map[string]float64{}
	for i, p := range policies {
		means[i] /= trials
		tb.AddRowf(p.name, fmt.Sprintf("%.1f", means[i]))
		key := strings.NewReplacer(" ", "_", "=", "").Replace(p.name)
		metrics[key] = means[i]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Two-machine system (§1.2), %d units, %d trials, dispatch cost %.1f s/chunk:\n",
		units, trials, dispatch)
	b.WriteString(tb.String())
	b.WriteString("\nDynamic self-scheduling with moderate chunks tracks the volatile\nmachine's mode changes; one-shot chunks reduce to static allocation and\nunit chunks drown in dispatch overhead. Stochastic predictions still\nmatter for the promise (when will it finish), even when the division of\nlabour is dynamic.\n")
	return &Result{ID: "ablation-selfsched", Title: "Self-scheduling ablation", Text: b.String(), Metrics: metrics}, nil
}
