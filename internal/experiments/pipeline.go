package experiments

import (
	"errors"
	"fmt"
	"math"

	"prodpred/internal/calib"
	"prodpred/internal/cluster"
	"prodpred/internal/faults"
	"prodpred/internal/load"
	"prodpred/internal/nws"
	"prodpred/internal/predict"
	"prodpred/internal/sched"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// pipelineDiag, when attached to a productionConfig, receives per-monitor
// fault diagnostics — and, on observed series, the final calibration
// state — after the series completes.
type pipelineDiag struct {
	CPUGaps     []nws.GapStats // per machine
	BWGaps      nws.GapStats
	Calibration calib.Snapshot
}

// productionConfig describes a monitor->predict->execute series on a
// simulated production platform — the experimental loop behind Figures 9
// and 12-17.
type productionConfig struct {
	plat  *cluster.Platform
	cpu   []load.Process
	net   load.Process
	n     int // grid size
	iters int // SOR iterations per run
	runs  int // number of back-to-back executions
	gap   float64
	// warmup is how long monitors observe before the first run.
	warmup       float64
	partStrategy sched.Strategy
	maxStrategy  stochastic.MaxStrategy
	iterationRel structural.Relation
	// predictLoad optionally overrides the per-machine stochastic load
	// parameter; when nil, the NWS monitor report is used.
	predictLoad func(machine int, mon *nws.Monitor) (stochastic.Value, error)
	// inject, when non-nil, wraps every CPU sensor with its per-machine
	// fault schedule — the robustness experiments' knob.
	inject *faults.Injector
	// observe closes the loop: each run's measured execution time is fed
	// back through Service.Observe, so later predictions in the series
	// carry conformally calibrated intervals.
	observe bool
	// calibration tunes the online tracker when observe is set; the zero
	// value takes the calib defaults.
	calibration calib.Config
	// diag, when non-nil, is filled with per-monitor gap counters after
	// the series completes.
	diag *pipelineDiag
}

// runRecord is one production execution and its predictions.
type runRecord struct {
	Start   float64
	Pred    stochastic.Value // calibrated stochastic execution-time prediction
	Raw     stochastic.Value // uncalibrated model prediction (== Pred off feedback)
	Scale   float64          // calibration multiplier the prediction was issued with
	Actual  float64          // simulated execution time
	LoadsAt []float64        // raw availability per machine at run start
	// Quantiles is the full calibrated predictive quantile grid
	// (calib.QuantileGridLevels layout); QLo/QHi are its ends — the
	// central 95% interval of the distribution-valued prediction (grid
	// levels 0.025 and 0.975). Forecaster is the dominant per-machine
	// distribution-forecaster tag behind the prediction.
	Quantiles  []float64
	QLo, QHi   float64
	Forecaster string
}

// seriesMetrics summarizes a run series the way the paper's evaluation
// does.
type seriesMetrics struct {
	CaptureFrac float64 // fraction of actuals inside the stochastic interval
	MaxIntErr   float64 // max relative error of actuals outside the interval
	MaxMeanErr  float64 // max |actual - predicted mean| / actual
	MeanMeanErr float64 // average of the same
}

func summarizeRuns(recs []runRecord) seriesMetrics {
	var m seriesMetrics
	captured := 0
	for _, r := range recs {
		if r.Pred.Contains(r.Actual) {
			captured++
		} else if e := r.Pred.RelativeErrorOutside(r.Actual); e > m.MaxIntErr {
			m.MaxIntErr = e
		}
		me := math.Abs(r.Actual-r.Pred.Mean) / r.Actual
		if me > m.MaxMeanErr {
			m.MaxMeanErr = me
		}
		m.MeanMeanErr += me
	}
	if len(recs) > 0 {
		m.CaptureFrac = float64(captured) / float64(len(recs))
		m.MeanMeanErr /= float64(len(recs))
	}
	return m
}

// runProductionSeries executes the full pipeline as a thin series-runner
// over predict.Service: the service's NWS monitors warm up on the platform,
// a capacity-balanced partition is chosen from the first forecasts and
// pinned for the series, and then `runs` executions alternate predict ->
// execute -> advance, exactly as the paper's experiments interleave NWS
// readings with SOR runs.
func runProductionSeries(cfg productionConfig) ([]runRecord, error) {
	if cfg.runs <= 0 {
		return nil, errors.New("experiments: runs must be positive")
	}
	svc, err := predict.NewService(predict.Config{
		Platform:    cfg.plat,
		CPU:         cfg.cpu,
		Net:         cfg.net,
		Injector:    cfg.inject,
		Calibration: cfg.calibration,
	})
	if err != nil {
		return nil, err
	}
	if err := svc.AdvanceTo(cfg.warmup); err != nil {
		return nil, err
	}
	req := predict.Request{
		N:            cfg.n,
		Iterations:   cfg.iters,
		Strategy:     cfg.partStrategy,
		MaxStrategy:  cfg.maxStrategy,
		IterationRel: cfg.iterationRel,
		LoadOverride: cfg.predictLoad,
		// The harness always records the full quantile grid; the serving
		// path computes it only on request, so opt in explicitly.
		Distribution: true,
	}
	part, err := svc.Partition(req)
	if err != nil {
		return nil, err
	}
	req.Partition = part
	backend, err := sor.NewSimBackend(svc.Env(), part, sor.IdentityMapping(cfg.plat.Size()))
	if err != nil {
		return nil, err
	}
	// One grid for the whole series: Reset re-zeroes the interior while
	// keeping the boundary, so every run still starts from the exact state
	// a fresh allocation would, without an NxN allocation per run.
	g, err := sor.NewGrid(cfg.n)
	if err != nil {
		return nil, err
	}
	g.SetBoundary(func(x, y float64) float64 { return x*x - y*y })

	var recs []runRecord
	prevExec := 0.0
	for run := 0; run < cfg.runs; run++ {
		if run > 0 {
			g.Reset()
			// Advance the clock only when the next run is about to start,
			// so the monitors never sample past the final run's start.
			if err := svc.Advance(prevExec + cfg.gap); err != nil {
				return nil, err
			}
		}
		pred, err := svc.Predict(req)
		if err != nil {
			return nil, err
		}
		res, err := backend.Run(g, sor.DefaultOmega, cfg.iters, pred.Time)
		if err != nil {
			return nil, err
		}
		rec := runRecord{
			Start: pred.Time, Pred: pred.Value, Raw: pred.Raw,
			Scale: pred.CalibrationScale, Actual: res.ExecTime,
			Forecaster: pred.Dist.Forecaster,
		}
		if n := len(pred.Dist.Calibrated); n > 0 {
			rec.Quantiles = append([]float64(nil), pred.Dist.Calibrated...)
			rec.QLo, rec.QHi = pred.Dist.Calibrated[0], pred.Dist.Calibrated[n-1]
		}
		for _, lr := range pred.Loads {
			rec.LoadsAt = append(rec.LoadsAt, lr.Raw)
		}
		recs = append(recs, rec)
		prevExec = res.ExecTime
		if cfg.observe {
			if _, err := svc.Observe(pred.ID, res.ExecTime); err != nil {
				return nil, err
			}
		}
	}
	if cfg.diag != nil {
		cfg.diag.CPUGaps = svc.CPUGaps()
		cfg.diag.BWGaps = svc.BWGaps()
		cfg.diag.Calibration = svc.Accuracy()
	}
	return recs, nil
}

// renderRunSeries renders a run series as the paper's Figures 9/12/14/16:
// actual execution times against the stochastic interval.
func renderRunSeries(recs []runRecord) string {
	tb := NewTable("t(start)", "predicted", "interval", "actual", "inside", "err-out")
	for _, r := range recs {
		lo, hi := r.Pred.Interval()
		inside := "yes"
		errOut := ""
		if !r.Pred.Contains(r.Actual) {
			inside = "NO"
			errOut = pct(r.Pred.RelativeErrorOutside(r.Actual))
		}
		tb.AddRowf(fmt.Sprintf("%.0f", r.Start), r.Pred.String(),
			fmt.Sprintf("[%.2f,%.2f]", lo, hi),
			fmt.Sprintf("%.2f", r.Actual), inside, errOut)
	}
	xs := make([]float64, len(recs))
	actual := make([]float64, len(recs))
	los := make([]float64, len(recs))
	his := make([]float64, len(recs))
	means := make([]float64, len(recs))
	for i, r := range recs {
		xs[i] = r.Start
		actual[i] = r.Actual
		los[i], his[i] = r.Pred.Interval()
		means[i] = r.Pred.Mean
	}
	plot := RenderSeriesMulti(xs, [][]float64{los, his, means, actual},
		[]byte{'-', '-', 'm', 'A'}, 64, 14)
	return tb.String() + "\n  A=actual, m=predicted mean, -=stochastic interval bounds\n" + plot
}

// renderLoadTrace renders machine loads at run starts (the paper's
// Figures 13/15/17 companion load plots).
func renderLoadTrace(recs []runRecord, machine int) string {
	xs := make([]float64, len(recs))
	ys := make([]float64, len(recs))
	for i, r := range recs {
		xs[i] = r.Start
		ys[i] = r.LoadsAt[machine]
	}
	return RenderSeries(xs, ys, 64, 10)
}
