package experiments

import (
	"testing"

	"prodpred/internal/workload"
)

// TestWorkloadScenariosShape pins the scenario-sweep scorecard at seed 1:
// every library scenario reports a complete, sane scorecard, and the
// qualitative claims the EXPERIMENTS.md section makes hold.
func TestWorkloadScenariosShape(t *testing.T) {
	r := runExp(t, "workload-scenarios", 1)
	assertMetric(t, r, "scenarios", 6, 64)
	for _, name := range workload.Names() {
		// Both interval constructions capture a majority of actuals on
		// every scenario...
		assertMetric(t, r, name+"_capture_point", 0.70, 1.0)
		assertMetric(t, r, name+"_capture_dist", 0.75, 1.0)
		// ...with finite, non-degenerate widths and Winkler scores
		// (score >= width by construction).
		assertMetric(t, r, name+"_width_point", 0.001, 1.0)
		assertMetric(t, r, name+"_width_dist", 0.001, 1.0)
		assertMetric(t, r, name+"_winkler95_point", 0.001, 1.0)
		assertMetric(t, r, name+"_winkler95_dist", 0.001, 1.0)
	}
	// On the steady scenarios the calibrated grid holds near-nominal 95%
	// coverage.
	assertMetric(t, r, "diurnal-web_capture_dist", 0.90, 1.0)
	assertMetric(t, r, "quiet-baseline_capture_dist", 0.90, 1.0)
	// Regime volatility costs interval width: the flash-crowd and
	// regime-cascade grids are wider than the steady diurnal grid.
	steady, err := r.Metric("diurnal-web_width_dist")
	if err != nil {
		t.Fatal(err)
	}
	for _, volatile := range []string{"flash-crowd", "regime-cascade"} {
		w, err := r.Metric(volatile + "_width_dist")
		if err != nil {
			t.Fatal(err)
		}
		if w <= steady {
			t.Errorf("%s width_dist %.3f not wider than diurnal-web %.3f", volatile, w, steady)
		}
	}
}

// TestWorkloadScenariosStableAcrossSeeds re-runs the sweep at a second
// seed: the grid's coverage floor is a property of the calibration loop,
// not of one sample path.
func TestWorkloadScenariosStableAcrossSeeds(t *testing.T) {
	r := runExp(t, "workload-scenarios", 2)
	for _, name := range workload.Names() {
		assertMetric(t, r, name+"_capture_dist", 0.80, 1.0)
	}
}
