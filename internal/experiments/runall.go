package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Outcome is the result (or failure) of one experiment in a RunAll batch.
type Outcome struct {
	Experiment Experiment
	Result     *Result
	Err        error
}

// RunAll executes every registered experiment with the given seed on a pool
// of jobs workers (jobs <= 0 means GOMAXPROCS). Each experiment already
// derives all of its randomness from the seed it is handed, so the batch is
// embarrassingly parallel; outcomes are returned in ID order regardless of
// completion order, and their contents are identical for any jobs setting.
func RunAll(seed int64, jobs int) []Outcome {
	return runPool(All(), seed, jobs)
}

// runPool runs the given experiments on a worker pool, preserving order.
func runPool(exps []Experiment, seed int64, jobs int) []Outcome {
	out := make([]Outcome, len(exps))
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(exps) {
					return
				}
				res, err := exps[i].Run(seed)
				out[i] = Outcome{Experiment: exps[i], Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
