package experiments

import "testing"

func TestRobustFaultsExperiment(t *testing.T) {
	e, err := Lookup("robust-faults")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	cleanCap, err := res.Metric("capture_clean")
	if err != nil {
		t.Fatal(err)
	}
	combCap, err := res.Metric("capture_combined")
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: under 20% dropout plus an outage window on the bursty
	// load, interval capture is no worse than 10 points below fault-free.
	if combCap < cleanCap-0.101 {
		t.Errorf("combined capture %.3f more than 10 points below clean %.3f", combCap, cleanCap)
	}
	// The outage window [700,820) at 5 s cadence is exactly 24 samples.
	for _, key := range []string{"missed_outage"} {
		v, err := res.Metric(key)
		if err != nil {
			t.Fatal(err)
		}
		if v != 24 {
			t.Errorf("%s=%g want exactly 24", key, v)
		}
	}
	if v, _ := res.Metric("missed_clean"); v != 0 {
		t.Errorf("fault-free run missed %g samples", v)
	}
	if v, _ := res.Metric("missed_drop"); v <= 0 {
		t.Errorf("dropout scenario missed %g samples, want > 0", v)
	}
	// Degradation widens intervals: mean spread under faults must be at
	// least the fault-free spread.
	sClean, _ := res.Metric("spread_clean")
	sComb, _ := res.Metric("spread_combined")
	if sComb < sClean {
		t.Errorf("combined spread %.3f narrower than clean %.3f", sComb, sClean)
	}
}

func TestRobustFaultsDeterministic(t *testing.T) {
	e, err := Lookup("robust-faults")
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Error("robust-faults text differs between identical-seed runs")
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs: %g vs %g", k, v, b.Metrics[k])
		}
	}
}
