package experiments

import "testing"

func TestDistTournamentShape(t *testing.T) {
	r := runExp(t, "dist-tournament", 1)
	// The recentered quantile grid holds nominal 95% coverage; the
	// calibrated normal undercovers on this bursty platform.
	assertMetric(t, r, "capture_dist", 0.90, 1.0)
	assertMetric(t, r, "capture_normal", 0, 0.90)
	// The grid's conditional sharpness wins the 50% interval on the
	// Winkler score (ratio < 1 means the grid beats the normal).
	assertMetric(t, r, "score50_ratio", 0, 0.95)
	// The conformal median shift engages: the structural model
	// overpredicts on this platform and the raw-grid PIT sits far below
	// 0.5 until the shift recenters the served grid.
	assertMetric(t, r, "q_shift", -0.45, -0.15)
	assertMetric(t, r, "mean_pit", 0, 0.25)
	// The tournament dethrones the normal incumbent: the conditional
	// empirical-quantile forecaster dominates served predictions.
	assertMetric(t, r, "wins_empirical-q", 100, float64(distTournamentRuns))
}

func TestDistTournamentStableAcrossSeeds(t *testing.T) {
	// The coverage and 50%-interval claims must not hinge on one seed.
	for _, seed := range []int64{2, 8} {
		r := runExp(t, "dist-tournament", seed)
		assertMetric(t, r, "capture_dist", 0.90, 1.0)
		assertMetric(t, r, "score50_ratio", 0, 0.95)
		assertMetric(t, r, "q_shift", -0.45, -0.15)
	}
	// On burst-clustered sample paths the grid also wins the 95% Winkler
	// score outright — narrower AND better-covering (seed 8: 0.84x width
	// at +13pp capture).
	r := runExp(t, "dist-tournament", 8)
	assertMetric(t, r, "score_ratio", 0, 1.0)
	assertMetric(t, r, "width_ratio", 0, 1.0)
}
