package obs

import (
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsAndLog(t *testing.T) {
	reg := NewRegistry()
	var logBuf strings.Builder
	mw := NewHTTPMiddleware(reg)
	mw.Log = log.New(&logBuf, "", 0)
	mw.PlatformFrom = func(r *http.Request) string { return r.URL.Query().Get("platform") }

	h := mw.Wrap("GET /report", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte("hello"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/report?platform=platform1", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status=%d", rec.Code)
	}

	if got := mw.requests.With("GET /report", "GET", "418").Value(); got != 1 {
		t.Errorf("requests counter=%d, want 1", got)
	}
	if s := mw.duration.With("GET /report").Snapshot(); s.Count != 1 || s.Sum < 0 {
		t.Errorf("duration snapshot=%+v", s)
	}
	if v := mw.inflight.Value(); v != 0 {
		t.Errorf("in-flight=%g after completion, want 0", v)
	}

	// The access log is one JSON object per request with the structured
	// fields the runbook documents.
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(logBuf.String())), &entry); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, logBuf.String())
	}
	if entry["method"] != "GET" || entry["route"] != "GET /report" ||
		entry["status"] != float64(418) || entry["platform"] != "platform1" {
		t.Errorf("log entry=%v", entry)
	}
	if _, ok := entry["duration_ms"].(float64); !ok {
		t.Errorf("log entry missing duration_ms: %v", entry)
	}
	if entry["bytes"] != float64(len("hello")) {
		t.Errorf("bytes=%v", entry["bytes"])
	}
}

func TestMiddlewareDefaultStatus200(t *testing.T) {
	reg := NewRegistry()
	mw := NewHTTPMiddleware(reg)
	h := mw.Wrap("GET /ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("x")) // implicit 200
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	if got := mw.requests.With("GET /ok", "GET", "200").Value(); got != 1 {
		t.Errorf("implicit-200 counter=%d, want 1", got)
	}
}

func TestMiddlewareNoRegistryLogsOnly(t *testing.T) {
	var logBuf strings.Builder
	mw := NewHTTPMiddleware(nil)
	mw.Log = log.New(&logBuf, "", 0)
	h := mw.Wrap("GET /x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if !strings.Contains(logBuf.String(), `"route":"GET /x"`) {
		t.Errorf("log-only middleware wrote no access log: %q", logBuf.String())
	}
}

func TestItoa3(t *testing.T) {
	for code, want := range map[int]string{200: "200", 404: "404", 99: "000", 1000: "000"} {
		if got := itoa3(code); got != want {
			t.Errorf("itoa3(%d)=%q, want %q", code, got, want)
		}
	}
}
