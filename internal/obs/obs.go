// Package obs is the observability layer of the prediction stack: a
// dependency-free, goroutine-safe metrics registry with Prometheus
// text-format exposition.
//
// The paper's whole argument is that production systems must report
// distributions, not points (§2.1) — obs applies that standard to the
// serving stack itself. A Registry holds metric families (counters, gauges,
// fixed-bucket latency histograms); internal/predict registers per-platform
// pipeline counters and per-stage latency histograms on it, the HTTP layer
// adds request metrics via Middleware, and GET /metrics exposes everything
// in the Prometheus text format (version 0.0.4) so any standard scraper can
// collect it.
//
// Design constraints, in order:
//
//   - stdlib only (the module is fully offline);
//   - goroutine-safe: counters and gauges are single atomics, histograms
//     take a short mutex per observation;
//   - nil-safe: every method on a nil *Counter, *Gauge, or *Histogram is a
//     no-op, so instrumented code runs unchanged (and nearly free) when no
//     registry is configured;
//   - deterministic exposition: families and series are emitted in sorted
//     order, so two registries holding the same state render byte-identical
//     text.
//
// All durations are wall-clock seconds. The prediction pipeline's *virtual*
// clock is a separate notion — it is exported as the gauge
// predict_virtual_time_seconds, never mixed into latency histograms.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the metric family types the registry can hold.
type Kind int

// Family kinds, matching the Prometheus text-format TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefLatencyBuckets are the default histogram upper bounds for request and
// stage latencies, in wall-clock seconds: roughly exponential from 100 µs
// to 10 s, wide enough for an in-process call and a cold full-platform
// report alike. A final +Inf bucket is always implicit.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; negative n is ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an arbitrary float64 metric that can go up and down. All methods
// are safe for concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the current value, atomically: concurrent Adds (the HTTP
// in-flight gauge) never lose updates.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram: observation counts over
// explicit upper bounds (plus an implicit +Inf overflow bucket), a running
// sum, and quantile snapshots by linear interpolation within buckets — the
// standard Prometheus histogram shape, answerable in-process without a
// query engine. internal/stats.Histogram is the offline sibling (linear
// bins over a known range, for load-shape analysis); latency spans four
// orders of magnitude, so exposition uses exponential bounds instead, and
// exact quantiles over raw samples remain stats.Quantile's job (cmd/loadtest
// computes its client-side quantiles that way).
//
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1, last = overflow
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value (a latency in seconds, for the serving stack).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
}

// HistSnapshot is a consistent point-in-time read of a Histogram.
type HistSnapshot struct {
	// Count is the total number of observations; Sum their sum.
	Count uint64
	Sum   float64
	// Mean is Sum/Count (0 when empty).
	Mean float64
	// P50, P95, P99 are quantile estimates by linear interpolation within
	// the matching bucket; values in the +Inf overflow bucket clamp to the
	// largest finite bound.
	P50, P95, P99 float64
}

// Snapshot returns the histogram's count, sum, mean, and p50/p95/p99
// estimates under one lock acquisition.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.n, Sum: h.sum}
	if h.n == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.n)
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) by interpolation within the
// matching bucket. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// family is one named metric family: a type, a label schema, and a series
// per distinct label-value combination.
type family struct {
	name, help string
	kind       Kind
	labels     []string
	bounds     []float64      // histogram families only
	fn         func() float64 // gauge-func families only

	mu     sync.Mutex
	series map[string]any // *Counter | *Gauge | *Histogram, keyed by joined label values
}

// labelKey joins label values with an unprintable separator so distinct
// tuples cannot collide.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) get(values []string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(values)
	if m, ok := f.series[key]; ok {
		return m
	}
	m := make()
	f.series[key] = m
	return m
}

// Registry is a set of metric families. All methods are safe for concurrent
// use. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register get-or-creates a family, panicking on a name reused with a
// different type or label schema — a programming error caught at startup,
// Prometheus-client style.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validMetricName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || labelKey(f.labels) != labelKey(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v%v (was %v%v)",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]any),
	}
	r.families[name] = f
	return f
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// NewCounter registers (or finds) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// NewGauge registers (or finds) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// NewGaugeFunc registers a gauge whose value is computed by fn at every
// exposition — for values that already live elsewhere (uptime, pool sizes).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// NewHistogram registers (or finds) an unlabeled histogram over the given
// upper bounds (DefLatencyBuckets when nil).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	f := r.register(name, help, KindHistogram, nil, bounds)
	return f.get(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a counter family with a fixed label schema.
type CounterVec struct{ f *family }

// NewCounterVec registers (or finds) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labels, nil)}
}

// With returns the counter for one label-value tuple, creating it on first
// use. The number of values must match the registered label schema.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	v.f.checkValues(values)
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with a fixed label schema.
type GaugeVec struct{ f *family }

// NewGaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for one label-value tuple, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	v.f.checkValues(values)
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with a fixed label schema.
type HistogramVec struct{ f *family }

// NewHistogramVec registers (or finds) a labeled histogram family over the
// given upper bounds (DefLatencyBuckets when nil).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labels, bounds)}
}

// With returns the histogram for one label-value tuple, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	v.f.checkValues(values)
	return v.f.get(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

func (f *family) checkValues(values []string) {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values for labels %v",
			f.name, len(values), f.labels))
	}
}

// MetricNames returns every registered family name, sorted — the catalog
// contract OPERATIONS.md is checked against.
func (r *Registry) MetricNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteText renders every family in the Prometheus text format (0.0.4):
// families sorted by name, series sorted by label values, so equal state
// renders byte-identical.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	fn := f.fn
	f.mu.Unlock()

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	if fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(fn()))
		return err
	}
	for i, m := range series {
		values := strings.Split(keys[i], "\x1f")
		if keys[i] == "" {
			values = nil
		}
		base := f.name + labelString(f.labels, values, "", "")
		var err error
		switch m := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s %d\n", base, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s %s\n", base, formatFloat(m.Value()))
		case *Histogram:
			err = m.writeText(w, f.name, f.labels, values)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) writeText(w io.Writer, name string, labels, values []string) error {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		line := name + "_bucket" + labelString(labels, values, "le", le)
		if _, err := fmt.Fprintf(w, "%s %d\n", line, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", name+"_sum"+labelString(labels, values, "", ""), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", name+"_count"+labelString(labels, values, "", ""), n)
	return err
}

// labelString renders {a="x",b="y"} (plus an optional extra pair), or ""
// when there are no labels at all.
func labelString(labels, values []string, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", l, escapeLabel(v))
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel handles backslash and newline; %q adds the quote escaping.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in the Prometheus text exposition format —
// what cmd/predictd mounts at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = io.WriteString(w, b.String())
	})
}

// ParseText is a minimal validating parser for the Prometheus text format:
// it returns the TYPE-declared families (name -> type) and the number of
// sample lines, and errors on any malformed line. The CI loadtest smoke and
// the readmecheck suite use it to assert that GET /metrics stays parseable.
func ParseText(r io.Reader) (families map[string]string, samples int, err error) {
	families = make(map[string]string)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, samples, fmt.Errorf("obs: line %d: unknown comment form %q", ln+1, line)
			}
			if len(fields) >= 4 && fields[1] == "TYPE" {
				families[fields[2]] = fields[3]
			}
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, samples, fmt.Errorf("obs: line %d: unbalanced braces: %q", ln+1, line)
			}
			name, rest = line[:i], strings.TrimSpace(line[j+1:])
		} else if i := strings.IndexAny(line, " \t"); i >= 0 {
			name, rest = line[:i], strings.TrimSpace(line[i+1:])
		}
		if !validMetricName(name) {
			return nil, samples, fmt.Errorf("obs: line %d: invalid metric name %q", ln+1, name)
		}
		value := strings.Fields(rest)
		if len(value) == 0 {
			return nil, samples, fmt.Errorf("obs: line %d: sample without value: %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(value[0], 64); err != nil && value[0] != "+Inf" && value[0] != "-Inf" && value[0] != "NaN" {
			return nil, samples, fmt.Errorf("obs: line %d: bad sample value %q", ln+1, value[0])
		}
		samples++
	}
	return families, samples, nil
}
