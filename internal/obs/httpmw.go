package obs

import (
	"encoding/json"
	"log"
	"net/http"
	"sync"
	"time"
)

// HTTP-layer metric family names — registered by NewHTTPMiddleware and
// documented in OPERATIONS.md (the readmecheck suite enforces the pairing).
const (
	MetricHTTPRequests = "http_requests_total"
	MetricHTTPDuration = "http_request_duration_seconds"
	MetricHTTPInFlight = "http_in_flight_requests"
)

// HTTPMiddleware instruments HTTP handlers: a request counter by route,
// method, and status code; a per-route wall-clock latency histogram; an
// in-flight gauge; and an optional structured (JSON-lines) access log. One
// middleware instance is shared by every route of a server so the families
// are registered exactly once.
//
// Safe for concurrent use; all fields must be set before the first request.
type HTTPMiddleware struct {
	requests *CounterVec
	duration *HistogramVec
	inflight *Gauge

	// Log, when non-nil, receives one JSON object per completed request:
	// {"ts","method","route","status","duration_ms","platform","bytes"}.
	Log *log.Logger
	// PlatformFrom, when non-nil, extracts the platform a request targets
	// (for the access log); it must not consume the request body it is
	// handed unless it restores it.
	PlatformFrom func(*http.Request) string
}

// NewHTTPMiddleware registers the HTTP metric families on reg and returns
// the middleware. A nil registry yields a log-only middleware (all metric
// updates are nil-safe no-ops).
func NewHTTPMiddleware(reg *Registry) *HTTPMiddleware {
	m := &HTTPMiddleware{}
	if reg != nil {
		m.requests = reg.NewCounterVec(MetricHTTPRequests,
			"HTTP requests served, by route, method, and status code.",
			"route", "method", "code")
		m.duration = reg.NewHistogramVec(MetricHTTPDuration,
			"Wall-clock request latency in seconds, by route.",
			nil, "route")
		m.inflight = reg.NewGauge(MetricHTTPInFlight,
			"Requests currently being served.")
	}
	return m
}

// statusRecorder captures the response status and size for metrics/logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Wrap instruments next under the given route name. The route name is used
// as the metric label and log field — use the registered pattern (e.g.
// "POST /predict"), not the raw request path, to keep cardinality bounded.
//
// The per-route series are resolved once at Wrap time and the per-status
// counter series are cached after first use, so the steady-state request
// path does no label-key formatting or registry map walks. PlatformFrom
// (which may peek at the request body) is only consulted when the access
// log is enabled.
func (m *HTTPMiddleware) Wrap(route string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	var duration *Histogram
	if m.duration != nil {
		duration = m.duration.With(route)
	}
	var statusMu sync.RWMutex
	statusCounters := make(map[[2]string]*Counter)
	counterFor := func(method string, status int) *Counter {
		if m.requests == nil {
			return nil
		}
		key := [2]string{method, itoa3(status)}
		statusMu.RLock()
		c, ok := statusCounters[key]
		statusMu.RUnlock()
		if ok {
			return c
		}
		statusMu.Lock()
		defer statusMu.Unlock()
		if c, ok = statusCounters[key]; !ok {
			c = m.requests.With(route, key[0], key[1])
			statusCounters[key] = c
		}
		return c
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		platform := ""
		if m.Log != nil && m.PlatformFrom != nil {
			platform = m.PlatformFrom(r)
		}
		m.inflight.Add(1)
		defer m.inflight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		counterFor(r.Method, rec.status).Inc()
		duration.Observe(elapsed.Seconds())
		if m.Log != nil {
			line, _ := json.Marshal(map[string]any{
				"ts":          time.Now().UTC().Format(time.RFC3339Nano),
				"method":      r.Method,
				"route":       route,
				"status":      rec.status,
				"duration_ms": float64(elapsed.Microseconds()) / 1000,
				"platform":    platform,
				"bytes":       rec.bytes,
			})
			m.Log.Print(string(line))
		}
	})
}

// itoa3 formats the 3-digit HTTP status codes without strconv allocation
// games for the common range.
func itoa3(code int) string {
	if code < 100 || code > 999 {
		code = 0
	}
	return string([]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)})
}
