package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"prodpred/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "reqs")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("counter=%d, want 5", c.Value())
	}
	g := r.NewGauge("queue_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge=%g, want 1.5", g.Value())
	}
	// Get-or-create: same name returns the same metric.
	if r.NewCounter("requests_total", "reqs").Value() != 5 {
		t.Error("re-registration did not return the existing counter")
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil metrics must read as zero")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot must be empty")
	}
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
	var m *HTTPMiddleware
	if m.Wrap("r", nil) != nil {
		t.Error("nil middleware Wrap must pass through")
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.NewGauge("m", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name must panic")
		}
	}()
	r.NewCounter("9bad name", "")
}

func TestHistogramQuantilesAgainstStats(t *testing.T) {
	// Fill a latency histogram from a deterministic sample and compare its
	// interpolated quantiles with the exact stats.Quantile over the raw
	// sample: they must agree within the bucket resolution at that point.
	h := newHistogram(DefLatencyBuckets)
	var xs []float64
	for i := 0; i < 2000; i++ {
		v := 0.0004 + 0.00001*float64(i%180) // 0.4ms .. 2.2ms
		xs = append(xs, v)
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want, err := stats.Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		got := h.Quantile(q)
		// Bucket resolution around 1–2.5 ms: the 0.0025 bucket is 1.5 ms wide.
		if math.Abs(got-want) > 0.0016 {
			t.Errorf("q%.2f: histogram %.5f vs exact %.5f", q, got, want)
		}
	}
	s := h.Snapshot()
	if s.Count != 2000 {
		t.Errorf("count=%d", s.Count)
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("quantiles not monotone: %g %g %g", s.P50, s.P95, s.P99)
	}
	mean := s.Sum / float64(s.Count)
	if math.Abs(mean-s.Mean) > 1e-12 {
		t.Errorf("mean=%g vs sum/count=%g", s.Mean, mean)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100) // lands in +Inf bucket
	if q := h.Quantile(0.5); q != 2 {
		t.Errorf("overflow quantile=%g, want clamp to 2", q)
	}
}

func TestWriteTextDeterministicAndParses(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.NewCounterVec("predict_predictions_total", "preds", "platform").With("platform2").Add(7)
		r.NewCounterVec("predict_predictions_total", "preds", "platform").With("platform1").Add(3)
		r.NewGaugeVec("predict_calibration_scale", "scale", "platform").With("platform1").Set(1.25)
		h := r.NewHistogramVec("stage_seconds", "stages", []float64{0.001, 0.01}, "stage")
		h.With("model_eval").Observe(0.0005)
		h.With("model_eval").Observe(0.5)
		r.NewGaugeFunc("uptime_seconds", "uptime", func() float64 { return 42 })
		return r
	}
	var a, b strings.Builder
	if err := build().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("equal registries rendered different text")
	}
	text := a.String()
	for _, want := range []string{
		`predict_predictions_total{platform="platform1"} 3`,
		`predict_predictions_total{platform="platform2"} 7`,
		`predict_calibration_scale{platform="platform1"} 1.25`,
		`stage_seconds_bucket{stage="model_eval",le="0.001"} 1`,
		`stage_seconds_bucket{stage="model_eval",le="+Inf"} 2`,
		`stage_seconds_count{stage="model_eval"} 2`,
		`# TYPE stage_seconds histogram`,
		`uptime_seconds 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	fams, samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if len(fams) != 4 || samples == 0 {
		t.Errorf("parsed %d families, %d samples", len(fams), samples)
	}
	if fams["stage_seconds"] != "histogram" || fams["predict_predictions_total"] != "counter" {
		t.Errorf("family types: %v", fams)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"metric_without_value\n",
		"metric one two\nmetric{unbalanced 3\n",
		"9leading_digit 3\n",
		"m 3\n# BOGUS comment\n",
	} {
		if _, _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted malformed input %q", bad)
		}
	}
}

func TestMetricNames(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "")
	r.NewGauge("a_gauge", "")
	names := r.MetricNames()
	if len(names) != 2 || names[0] != "a_gauge" || names[1] != "b_total" {
		t.Errorf("names=%v", names)
	}
}

// TestConcurrentUse hammers one registry from many goroutines under -race:
// counters, gauges, histogram observations, vec series creation, and
// exposition all at once.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	hv := r.NewHistogramVec("h_seconds", "", nil, "stage")
	cv := r.NewCounterVec("cv_total", "", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stage := []string{"read", "forecast", "eval"}[w%3]
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				hv.With(stage).Observe(float64(i) * 1e-4)
				cv.With(stage).Inc()
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Error(err)
						return
					}
					if _, _, err := ParseText(strings.NewReader(sb.String())); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Errorf("counter=%d, want %d", c.Value(), 8*500)
	}
}
