package stochastic

import (
	"errors"
	"math"

	"prodpred/internal/stats"
)

// RelationKind is the §2.3.1 relatedness judgement: whether two measured
// quantities have "a causal connection between their values".
type RelationKind int

// Related quantities fluctuate together and must be combined
// conservatively; Unrelated quantities are independent and combine
// root-sum-square.
const (
	RelatedKind RelationKind = iota
	UnrelatedKind
)

func (k RelationKind) String() string {
	if k == RelatedKind {
		return "related"
	}
	return "unrelated"
}

// DefaultRelationThreshold is the |Spearman rho| above which paired
// measurement histories are judged related. 0.35 flags the latency/
// bandwidth-style couplings the paper describes while leaving white-noise
// pairs (|rho| ~ 1/sqrt(n)) unrelated for reasonable history sizes.
const DefaultRelationThreshold = 0.35

// DetectRelation judges relatedness from paired measurement histories
// (e.g. simultaneous latency and bandwidth sensor readings) using rank
// correlation, which catches monotone couplings regardless of shape. The
// paper leaves relatedness to the modeler; this helper automates the
// judgement when joint histories exist. It returns the detected kind and
// the measured rho.
func DetectRelation(xs, ys []float64, threshold float64) (RelationKind, float64, error) {
	if threshold <= 0 || threshold >= 1 {
		return UnrelatedKind, 0, errors.New("stochastic: relation threshold outside (0,1)")
	}
	if len(xs) < 8 {
		return UnrelatedKind, 0, errors.New("stochastic: need at least 8 paired observations")
	}
	rho, err := stats.SpearmanCorrelation(xs, ys)
	if err != nil {
		return UnrelatedKind, 0, err
	}
	if math.Abs(rho) >= threshold {
		return RelatedKind, rho, nil
	}
	return UnrelatedKind, rho, nil
}

// AddAuto adds two stochastic values using the rule selected by their
// paired measurement histories: the conservative related rule when the
// histories are coupled, the RSS unrelated rule otherwise.
func AddAuto(v, w Value, histV, histW []float64) (Value, RelationKind, error) {
	kind, _, err := DetectRelation(histV, histW, DefaultRelationThreshold)
	if err != nil {
		return Value{}, kind, err
	}
	if kind == RelatedKind {
		return v.AddRelated(w), kind, nil
	}
	return v.AddUnrelated(w), kind, nil
}

// MulAuto multiplies two stochastic values with the auto-detected rule.
func MulAuto(v, w Value, histV, histW []float64) (Value, RelationKind, error) {
	kind, _, err := DetectRelation(histV, histW, DefaultRelationThreshold)
	if err != nil {
		return Value{}, kind, err
	}
	if kind == RelatedKind {
		return v.MulRelated(w), kind, nil
	}
	return v.MulUnrelated(w), kind, nil
}
