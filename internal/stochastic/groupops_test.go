package stochastic

import (
	"math"
	"math/rand"
	"testing"

	"prodpred/internal/stats"
)

// The paper's §2.3.3 worked example: A = 4±0.5, B = 3±2, C = 3±1. A has the
// largest mean; B has the largest value within its range.
func paperMaxExample() (a, b, c Value) {
	return New(4, 0.5), New(3, 2), New(3, 1)
}

func TestMaxLargestMean(t *testing.T) {
	a, b, c := paperMaxExample()
	got, err := Max(LargestMean, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("LargestMean picked %v want %v", got, a)
	}
}

func TestMaxLargestMagnitude(t *testing.T) {
	a, b, c := paperMaxExample()
	got, err := Max(LargestMagnitude, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != b { // B's range tops out at 5 > A's 4.5
		t.Errorf("LargestMagnitude picked %v want %v", got, b)
	}
}

func TestMaxProbabilisticAgainstMonteCarlo(t *testing.T) {
	a, b, c := paperMaxExample()
	got, err := Max(Probabilistic, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	xs := make([]float64, 300000)
	for i := range xs {
		xs[i] = math.Max(a.Sample(rng), math.Max(b.Sample(rng), c.Sample(rng)))
	}
	mcMean := stats.Mean(xs)
	mcSpread := 2 * stats.StdDev(xs)
	// Clark's pairwise approximation: a few percent accuracy is expected.
	if math.Abs(got.Mean-mcMean) > 0.03*mcMean {
		t.Errorf("Clark mean %g vs MC %g", got.Mean, mcMean)
	}
	if math.Abs(got.Spread-mcSpread) > 0.12*mcSpread {
		t.Errorf("Clark spread %g vs MC %g", got.Spread, mcSpread)
	}
	// The probabilistic max mean must exceed the largest input mean: taking
	// a max over noisy values inflates the expectation.
	if got.Mean <= 4 {
		t.Errorf("probabilistic max mean %g should exceed 4", got.Mean)
	}
}

func TestMaxErrors(t *testing.T) {
	if _, err := Max(LargestMean); err == nil {
		t.Error("empty Max should fail")
	}
	if _, err := Max(MaxStrategy(42), Point(1)); err == nil {
		t.Error("unknown strategy should fail")
	}
	if _, err := Min(LargestMean); err == nil {
		t.Error("empty Min should fail")
	}
	if _, err := Min(MaxStrategy(42), Point(1)); err == nil {
		t.Error("unknown Min strategy should fail")
	}
}

func TestMaxSingleValue(t *testing.T) {
	v := New(3, 1)
	for _, s := range []MaxStrategy{LargestMean, LargestMagnitude, Probabilistic} {
		got, err := Max(s, v)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(v, 1e-12) {
			t.Errorf("strategy %d single Max=%v", s, got)
		}
	}
}

func TestMaxOfPointValuesIsExact(t *testing.T) {
	got, err := Max(Probabilistic, Point(3), Point(7), Point(5))
	if err != nil {
		t.Fatal(err)
	}
	if got != Point(7) {
		t.Errorf("Max of points=%v want 7", got)
	}
}

func TestMinStrategies(t *testing.T) {
	a, b, c := paperMaxExample() // 4±0.5, 3±2, 3±1
	got, err := Min(LargestMean, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != b { // first value with the smallest mean (3)
		t.Errorf("Min smallest-mean picked %v", got)
	}
	got, err = Min(LargestMagnitude, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != b { // B's range bottoms out at 1
		t.Errorf("Min smallest-magnitude picked %v", got)
	}
}

func TestMinProbabilisticAgainstMonteCarlo(t *testing.T) {
	a, b, c := paperMaxExample()
	got, err := Min(Probabilistic, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	xs := make([]float64, 300000)
	for i := range xs {
		xs[i] = math.Min(a.Sample(rng), math.Min(b.Sample(rng), c.Sample(rng)))
	}
	mcMean := stats.Mean(xs)
	if math.Abs(got.Mean-mcMean) > 0.03*math.Abs(mcMean) {
		t.Errorf("Clark min mean %g vs MC %g", got.Mean, mcMean)
	}
	if got.Mean >= 3 {
		t.Errorf("probabilistic min mean %g should be below 3", got.Mean)
	}
}

func TestClarkMaxTwoNormalsExactMean(t *testing.T) {
	// For two independent normals the Clark mean formula is exact:
	// E[max] = mu1*Phi(alpha) + mu2*Phi(-alpha) + theta*phi(alpha).
	a := New(0, 2) // sigma 1
	b := New(0, 2) // sigma 1
	got, err := Max(Probabilistic, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// E[max(X,Y)] for iid N(0,1) is theta*phi(0) = sqrt(2)/sqrt(2*pi) = 1/sqrt(pi).
	want := 1 / math.Sqrt(math.Pi)
	rng := rand.New(rand.NewSource(73))
	xs := make([]float64, 400000)
	for i := range xs {
		xs[i] = math.Max(rng.NormFloat64(), rng.NormFloat64())
	}
	mc := stats.Mean(xs)
	if math.Abs(want-mc) > 0.01 {
		t.Fatalf("analytic %g vs MC %g disagree; formula misremembered", want, mc)
	}
	if math.Abs(got.Mean-want) > 1e-9 {
		t.Errorf("Clark mean %g want %g", got.Mean, want)
	}
}

func TestMaxIndex(t *testing.T) {
	a, b, c := paperMaxExample()
	vs := []Value{a, b, c}
	i, err := MaxIndex(LargestMean, vs)
	if err != nil || i != 0 {
		t.Errorf("LargestMean index=%d err=%v", i, err)
	}
	i, err = MaxIndex(LargestMagnitude, vs)
	if err != nil || i != 1 {
		t.Errorf("LargestMagnitude index=%d err=%v", i, err)
	}
	if _, err := MaxIndex(Probabilistic, vs); err == nil {
		t.Error("Probabilistic MaxIndex should fail")
	}
	if _, err := MaxIndex(LargestMean, nil); err == nil {
		t.Error("empty MaxIndex should fail")
	}
}

func TestProbabilisticMaxDominatesInputs(t *testing.T) {
	// E[max(X1..Xn)] >= max E[Xi]; spread stays finite and non-negative.
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		vs := make([]Value, n)
		maxMean := math.Inf(-1)
		for i := range vs {
			vs[i] = New(rng.Float64()*10-5, rng.Float64()*3)
			if vs[i].Mean > maxMean {
				maxMean = vs[i].Mean
			}
		}
		got, err := Max(Probabilistic, vs...)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean < maxMean-1e-9 {
			t.Fatalf("trial %d: max mean %g below input max %g (vs=%v)", trial, got.Mean, maxMean, vs)
		}
		if got.Spread < 0 || math.IsNaN(got.Spread) {
			t.Fatalf("trial %d: bad spread %g", trial, got.Spread)
		}
	}
}
