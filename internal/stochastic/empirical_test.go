package stochastic

import (
	"math"
	"math/rand"
	"testing"
)

func normSample(rng *rand.Rand, mean, sigma float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + sigma*rng.NormFloat64()
	}
	return xs
}

func TestNewEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := NewEmpirical([]float64{1}); err == nil {
		t.Error("single sample should fail")
	}
	e, err := NewEmpirical([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 3 || e.Mean() != 2 {
		t.Errorf("N=%d mean=%g", e.N(), e.Mean())
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	xs := []float64{1, 2, 3}
	e, _ := NewEmpirical(xs)
	xs[0] = 100
	if e.Mean() != 2 {
		t.Error("empirical aliased caller slice")
	}
}

func TestEmpiricalSummaryMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, err := NewEmpirical(normSample(rng, 12, 0.6, 20000))
	if err != nil {
		t.Fatal(err)
	}
	s := e.Summary()
	if !almostEqual(s.Mean, 12, 0.02) || !almostEqual(s.Spread, 1.2, 0.03) {
		t.Errorf("summary=%v", s)
	}
	if !almostEqual(e.Sigma(), 0.6, 0.02) {
		t.Errorf("sigma=%g", e.Sigma())
	}
}

func TestEmpiricalQuantileAndInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := NewEmpirical(normSample(rng, 0, 1, 50000))
	q, err := e.Quantile(0.975)
	if err != nil || math.Abs(q-1.96) > 0.05 {
		t.Errorf("q975=%g err=%v", q, err)
	}
	lo, hi, err := e.Interval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo+1.96) > 0.05 || math.Abs(hi-1.96) > 0.05 {
		t.Errorf("interval=[%g,%g]", lo, hi)
	}
	if got := e.Coverage(lo, hi); math.Abs(got-0.95) > 0.01 {
		t.Errorf("coverage=%g", got)
	}
	if _, _, err := e.Interval(0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, _, err := e.Interval(1.1); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestEmpiricalAddMatchesUnrelatedRule(t *testing.T) {
	// Ground-truth check of Table 2: empirical combination of independent
	// normals agrees with the closed-form unrelated rule.
	rng := rand.New(rand.NewSource(3))
	a, _ := NewEmpirical(normSample(rng, 8, 1, 20000))    // 8 ± 2
	b, _ := NewEmpirical(normSample(rng, 5, 0.75, 20000)) // 5 ± 1.5
	sum, err := a.Add(b, rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rule := a.Summary().AddUnrelated(b.Summary())
	if !sum.Summary().ApproxEqual(rule, 0.05) {
		t.Errorf("empirical %v vs rule %v", sum.Summary(), rule)
	}
}

func TestEmpiricalMulMatchesUnrelatedRule(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, _ := NewEmpirical(normSample(rng, 10, 0.4, 20000))
	b, _ := NewEmpirical(normSample(rng, 4, 0.2, 20000))
	prod, err := a.Mul(b, rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rule := a.Summary().MulUnrelated(b.Summary())
	if math.Abs(prod.Mean()-rule.Mean)/rule.Mean > 0.01 {
		t.Errorf("mean %g vs %g", prod.Mean(), rule.Mean)
	}
	if math.Abs(2*2*prod.Sigma()-2*rule.Spread)/(2*rule.Spread) > 0.55 {
		// loose: first-order rule vs exact; must be same order of magnitude
		t.Errorf("spread %g vs %g", 2*prod.Sigma(), rule.Spread)
	}
}

func TestEmpiricalSubAndDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, _ := NewEmpirical(normSample(rng, 10, 0.5, 10000))
	b, _ := NewEmpirical(normSample(rng, 4, 0.2, 10000))
	diff, err := a.Sub(b, rng, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(diff.Mean(), 6, 0.05) {
		t.Errorf("diff mean=%g", diff.Mean())
	}
	quot, err := a.Div(b, rng, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(quot.Mean(), 2.5, 0.05) {
		t.Errorf("quot mean=%g", quot.Mean())
	}
	zeros, _ := NewEmpirical([]float64{0, 0, 0})
	if _, err := a.Div(zeros, rng, 100); err == nil {
		t.Error("division by all-zero sample should fail")
	}
	// A divisor sample containing some zeros still works (rejection).
	mixed, _ := NewEmpirical([]float64{0, 2, 2, 2})
	q2, err := a.Div(mixed, rng, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(q2.Mean(), 5, 0.2) {
		t.Errorf("rejected-zero quotient mean=%g", q2.Mean())
	}
}

func TestEmpiricalCombineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, _ := NewEmpirical([]float64{1, 2})
	if _, err := a.Add(a, rng, 1); err == nil {
		t.Error("n<2 should fail")
	}
	if _, err := MaxEmpirical(rng, 100); err == nil {
		t.Error("empty max should fail")
	}
	if _, err := MaxEmpirical(rng, 1, a); err == nil {
		t.Error("n<2 max should fail")
	}
}

func TestMaxEmpiricalMatchesClark(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	A := New(4, 0.5)
	B := New(3, 2)
	C := New(3, 1)
	ea, err := FromValue(A, rng, 20000)
	if err != nil {
		t.Fatal(err)
	}
	eb, _ := FromValue(B, rng, 20000)
	ec, _ := FromValue(C, rng, 20000)
	truth, err := MaxEmpirical(rng, 200000, ea, eb, ec)
	if err != nil {
		t.Fatal(err)
	}
	clark, err := Max(Probabilistic, A, B, C)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(truth.Mean()-clark.Mean) > 0.05 {
		t.Errorf("empirical max mean %g vs Clark %g", truth.Mean(), clark.Mean)
	}
}

func TestFromValue(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, err := FromValue(New(5, 1), rng, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Mean(), 5, 0.02) || !almostEqual(e.Sigma(), 0.5, 0.02) {
		t.Errorf("FromValue: mean=%g sigma=%g", e.Mean(), e.Sigma())
	}
	if _, err := FromValue(New(5, 1), rng, 1); err == nil {
		t.Error("n<2 should fail")
	}
	// Point values materialize as a constant sample... which NewEmpirical
	// accepts (sigma 0).
	p, err := FromValue(Point(3), rng, 10)
	if err != nil || p.Sigma() != 0 {
		t.Errorf("point FromValue sigma=%g err=%v", p.Sigma(), err)
	}
}

func TestEmpiricalString(t *testing.T) {
	e, _ := NewEmpirical([]float64{1, 2, 3})
	s := e.String()
	if s == "" || !almostEqual(e.Mean(), 2, 1e-12) {
		t.Errorf("String=%q", s)
	}
}

func TestEmpiricalPreservesLongTailWhereSummaryCannot(t *testing.T) {
	// The motivating case: a long-tailed sample. The normal summary's
	// 2-sigma interval misses tail mass that the empirical interval
	// captures by construction.
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()) // lognormal(0,1): heavy right tail
	}
	e, _ := NewEmpirical(xs)
	sum := e.Summary()
	normCov := e.Coverage(sum.Lo(), sum.Hi())
	lo, hi, err := e.Interval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	empCov := e.Coverage(lo, hi)
	if !(empCov > 0.94 && empCov < 0.96) {
		t.Errorf("empirical interval coverage=%g", empCov)
	}
	// The normal summary over-covers or under-covers; it cannot hit 95%.
	if math.Abs(normCov-0.95) < 0.005 {
		t.Errorf("normal summary coverage suspiciously exact: %g", normCov)
	}
}
