package stochastic

import (
	"math/rand"
	"testing"
)

// coupledHistories simulates latency/bandwidth-style coupling: both driven
// by a shared congestion signal.
func coupledHistories(rng *rand.Rand, n int) (lat, bw []float64) {
	lat = make([]float64, n)
	bw = make([]float64, n)
	for i := range lat {
		congestion := rng.Float64()
		lat[i] = 0.01 + 0.05*congestion + 0.002*rng.NormFloat64()
		bw[i] = 8 - 5*congestion + 0.2*rng.NormFloat64()
	}
	return lat, bw
}

func TestDetectRelationCoupled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lat, bw := coupledHistories(rng, 300)
	kind, rho, err := DetectRelation(lat, bw, DefaultRelationThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if kind != RelatedKind {
		t.Errorf("coupled histories detected as %v (rho=%g)", kind, rho)
	}
	if rho >= 0 {
		t.Errorf("latency/bandwidth coupling should be negative: rho=%g", rho)
	}
}

func TestDetectRelationIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	kind, rho, err := DetectRelation(a, b, DefaultRelationThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if kind != UnrelatedKind {
		t.Errorf("independent histories detected as %v (rho=%g)", kind, rho)
	}
}

func TestDetectRelationValidation(t *testing.T) {
	ok := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if _, _, err := DetectRelation(ok, ok, 0); err == nil {
		t.Error("threshold 0 should fail")
	}
	if _, _, err := DetectRelation(ok, ok, 1); err == nil {
		t.Error("threshold 1 should fail")
	}
	if _, _, err := DetectRelation(ok[:4], ok[:4], 0.5); err == nil {
		t.Error("short histories should fail")
	}
	if _, _, err := DetectRelation(ok, ok[:7], 0.5); err == nil {
		t.Error("length mismatch should fail")
	}
	constant := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if _, _, err := DetectRelation(constant, ok, 0.5); err == nil {
		t.Error("constant history should fail")
	}
}

func TestAddAutoPicksRule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := New(3, 1)
	w := New(4, 2)
	lat, bw := coupledHistories(rng, 200)
	got, kind, err := AddAuto(v, w, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	if kind != RelatedKind || got != v.AddRelated(w) {
		t.Errorf("coupled AddAuto=%v kind=%v", got, kind)
	}
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	got, kind, err = AddAuto(v, w, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if kind != UnrelatedKind || !got.ApproxEqual(v.AddUnrelated(w), 1e-12) {
		t.Errorf("independent AddAuto=%v kind=%v", got, kind)
	}
	if _, _, err := AddAuto(v, w, a[:2], b[:2]); err == nil {
		t.Error("short histories should fail")
	}
}

func TestMulAutoPicksRule(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := New(3, 1)
	w := New(4, 2)
	lat, bw := coupledHistories(rng, 200)
	got, kind, err := MulAuto(v, w, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	if kind != RelatedKind || got != v.MulRelated(w) {
		t.Errorf("coupled MulAuto=%v kind=%v", got, kind)
	}
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	got, kind, err = MulAuto(v, w, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if kind != UnrelatedKind || !got.ApproxEqual(v.MulUnrelated(w), 1e-12) {
		t.Errorf("independent MulAuto=%v kind=%v", got, kind)
	}
	if _, _, err := MulAuto(v, w, a[:2], b[:2]); err == nil {
		t.Error("short histories should fail")
	}
}

func TestRelationKindString(t *testing.T) {
	if RelatedKind.String() != "related" || UnrelatedKind.String() != "unrelated" {
		t.Error("kind strings")
	}
}
