package stochastic

import (
	"math"
	"math/rand"
	"testing"
)

func TestMCMomentsIdenticalAcrossJobs(t *testing.T) {
	f := func(rng *rand.Rand) float64 { return 3 + 0.5*rng.NormFloat64() }
	base, err := MC{Seed: 42, Jobs: 1}.Moments(10000, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 3, 8, 0} {
		v, err := MC{Seed: 42, Jobs: jobs}.Moments(10000, f)
		if err != nil {
			t.Fatal(err)
		}
		if v != base {
			t.Errorf("jobs=%d: %v differs from jobs=1 %v", jobs, v, base)
		}
	}
}

func TestMCSamplesIdenticalAcrossJobs(t *testing.T) {
	f := func(rng *rand.Rand) float64 { return rng.Float64() }
	base, err := MC{Seed: 7, Jobs: 1}.Samples(999, f) // not a multiple of the shard count
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		xs, err := MC{Seed: 7, Jobs: jobs}.Samples(999, f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if xs[i] != base[i] {
				t.Fatalf("jobs=%d: sample %d is %g, jobs=1 gave %g", jobs, i, xs[i], base[i])
			}
		}
	}
}

func TestMCMomentsMatchSamples(t *testing.T) {
	// The streaming moments must agree with FromSample over the identical
	// draws to floating-point accuracy.
	mc := MC{Seed: 11, Jobs: 4}
	f := func(rng *rand.Rand) float64 { return 10 + 2*rng.NormFloat64() }
	xs, err := mc.Samples(20000, f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromSample(xs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mc.Moments(20000, f)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-9) {
		t.Errorf("Moments %v vs FromSample %v", got, want)
	}
	// And both should recover the true distribution decently.
	if math.Abs(got.Mean-10) > 0.1 || math.Abs(got.Spread-4) > 0.2 {
		t.Errorf("moments far from truth: %v", got)
	}
}

func TestMCSeedAndShardsChangeStreams(t *testing.T) {
	f := func(rng *rand.Rand) float64 { return rng.NormFloat64() }
	a, _ := MC{Seed: 1}.Moments(5000, f)
	b, _ := MC{Seed: 2}.Moments(5000, f)
	if a == b {
		t.Error("different seeds produced identical moments")
	}
	c, _ := MC{Seed: 1, Shards: 16}.Moments(5000, f)
	if a == c {
		t.Error("different shard counts should produce different streams")
	}
	a2, _ := MC{Seed: 1}.Moments(5000, f)
	if a != a2 {
		t.Error("same configuration not reproducible")
	}
}

func TestMCFewerSamplesThanShards(t *testing.T) {
	// n < Shards leaves some shards empty; every draw must still happen
	// exactly once and the merge must skip the empty shards.
	f := func(rng *rand.Rand) float64 { return 1 }
	v, err := MC{Seed: 3, Jobs: 8}.Moments(5, f)
	if err != nil {
		t.Fatal(err)
	}
	if v.Mean != 1 || v.Spread != 0 {
		t.Errorf("constant sample summarized as %v", v)
	}
	xs, err := MC{Seed: 3, Jobs: 8}.Samples(5, f)
	if err != nil || len(xs) != 5 {
		t.Fatalf("Samples=%v err=%v", xs, err)
	}
}

func TestMCValidation(t *testing.T) {
	f := func(rng *rand.Rand) float64 { return 0 }
	if _, err := (MC{Seed: 1}).Moments(0, f); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := (MC{Seed: 1}).Samples(-3, f); err == nil {
		t.Error("negative n should fail")
	}
}

func TestMCMergeAgainstDirect(t *testing.T) {
	// Property check of the Chan et al. merge: merging split halves equals
	// accumulating the whole stream.
	xs := []float64{1, 4, -2, 8, 3.5, 0, 7, 7, -1, 2.25}
	for split := 1; split < len(xs); split++ {
		var a, b, whole mcMoments
		for _, x := range xs[:split] {
			a.add(x)
			whole.add(x)
		}
		for _, x := range xs[split:] {
			b.add(x)
			whole.add(x)
		}
		m := a.merge(b)
		if m.n != whole.n || math.Abs(m.mean-whole.mean) > 1e-12 || math.Abs(m.m2-whole.m2) > 1e-9 {
			t.Errorf("split %d: merged %+v vs direct %+v", split, m, whole)
		}
	}
}
