package stochastic

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"prodpred/internal/stats"
)

// Empirical is the representation the paper's §2.1 declines to use: a
// quantity carried as its full sample rather than a normal summary.
// "General distributions are awkward to work with because they have no
// unifying properties" — combining them requires Monte Carlo resampling
// instead of closed-form rules. Implementing them anyway gives the
// reproduction a ground-truth baseline: every Table 2 rule can be checked
// against the empirical combination, and the cost difference (a resampling
// pass vs a few multiplications) quantifies the efficiency the normal
// assumption buys.
//
// Empirical values are immutable after construction.
type Empirical struct {
	sorted []float64
	mean   float64
	sigma  float64
}

// NewEmpirical builds an empirical value from a sample (copied; at least
// two observations).
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) < 2 {
		return nil, errors.New("stochastic: empirical value needs >= 2 samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	m, sd := stats.MeanStd(s)
	return &Empirical{sorted: s, mean: m, sigma: sd}, nil
}

// N returns the sample size.
func (e *Empirical) N() int { return len(e.sorted) }

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// Sigma returns the sample standard deviation.
func (e *Empirical) Sigma() float64 { return e.sigma }

// Summary collapses the empirical value to the paper's normal summary:
// mean ± 2σ.
func (e *Empirical) Summary() Value {
	return Value{Mean: e.mean, Spread: 2 * e.sigma}
}

// Quantile returns the q-th sample quantile.
func (e *Empirical) Quantile(q float64) (float64, error) {
	return stats.Quantile(e.sorted, q)
}

// Interval returns the central interval holding fraction p of the sample
// (e.g. p = 0.95 gives the [2.5%, 97.5%] band) — the empirical analogue of
// Value.Interval.
func (e *Empirical) Interval(p float64) (lo, hi float64, err error) {
	if p <= 0 || p > 1 {
		return 0, 0, fmt.Errorf("stochastic: interval mass %g outside (0,1]", p)
	}
	tail := (1 - p) / 2
	lo, err = e.Quantile(tail)
	if err != nil {
		return 0, 0, err
	}
	hi, err = e.Quantile(1 - tail)
	return lo, hi, err
}

// Coverage returns the fraction of the sample within [lo, hi].
func (e *Empirical) Coverage(lo, hi float64) float64 {
	return stats.Coverage(e.sorted, lo, hi)
}

// Draw returns one sample value chosen uniformly (bootstrap draw).
func (e *Empirical) Draw(rng *rand.Rand) float64 {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// combine resamples two empirical values independently n times through op.
func combine(a, b *Empirical, rng *rand.Rand, n int, op func(x, y float64) float64) (*Empirical, error) {
	if n < 2 {
		return nil, errors.New("stochastic: resample size must be >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = op(a.Draw(rng), b.Draw(rng))
	}
	return NewEmpirical(out)
}

// Add returns the empirical distribution of X + Y for independent draws,
// via n bootstrap resamples.
func (e *Empirical) Add(o *Empirical, rng *rand.Rand, n int) (*Empirical, error) {
	return combine(e, o, rng, n, func(x, y float64) float64 { return x + y })
}

// Sub returns the empirical distribution of X - Y for independent draws.
func (e *Empirical) Sub(o *Empirical, rng *rand.Rand, n int) (*Empirical, error) {
	return combine(e, o, rng, n, func(x, y float64) float64 { return x - y })
}

// Mul returns the empirical distribution of X * Y for independent draws.
func (e *Empirical) Mul(o *Empirical, rng *rand.Rand, n int) (*Empirical, error) {
	return combine(e, o, rng, n, func(x, y float64) float64 { return x * y })
}

// Div returns the empirical distribution of X / Y for independent draws.
// Divisor draws of zero are rejected; a divisor sample containing only
// zeros fails.
func (e *Empirical) Div(o *Empirical, rng *rand.Rand, n int) (*Empirical, error) {
	allZero := true
	for _, y := range o.sorted {
		if y != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return nil, errors.New("stochastic: empirical division by all-zero sample")
	}
	return combine(e, o, rng, n, func(x, y float64) float64 {
		for y == 0 {
			y = o.Draw(rng)
		}
		return x / y
	})
}

// MaxEmpirical returns the empirical distribution of max(X1, ..., Xk) for
// independent draws — the ground truth behind the Probabilistic Max
// strategy.
func MaxEmpirical(rng *rand.Rand, n int, es ...*Empirical) (*Empirical, error) {
	if len(es) == 0 {
		return nil, errEmptyGroup
	}
	if n < 2 {
		return nil, errors.New("stochastic: resample size must be >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		m := es[0].Draw(rng)
		for _, e := range es[1:] {
			if v := e.Draw(rng); v > m {
				m = v
			}
		}
		out[i] = m
	}
	return NewEmpirical(out)
}

// FromValue materializes a normal stochastic value as an empirical sample
// of size n — the bridge in the other direction, used to mix the two
// representations in one computation.
func FromValue(v Value, rng *rand.Rand, n int) (*Empirical, error) {
	if n < 2 {
		return nil, errors.New("stochastic: sample size must be >= 2")
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = v.Sample(rng)
	}
	return NewEmpirical(xs)
}

// String renders the empirical value as its normal summary plus sample
// size.
func (e *Empirical) String() string {
	return fmt.Sprintf("%s (n=%d)", e.Summary().String(), e.N())
}
