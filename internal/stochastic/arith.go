package stochastic

import (
	"math"
)

// Table 2 arithmetic. All operations are pure; spreads are kept
// non-negative by construction. Since normal distributions are closed under
// linear combination, sums and point-scalings of stochastic values remain
// exactly normal; products are long-tailed but are approximated as normal
// per §2.3.2 (the tail is ignored when the relative spreads are modest).

// AddPoint returns (X ± a) + p = (X + p) ± a.
func (v Value) AddPoint(p float64) Value {
	return Value{Mean: v.Mean + p, Spread: v.Spread}
}

// SubPoint returns (X ± a) - p = (X - p) ± a.
func (v Value) SubPoint(p float64) Value { return v.AddPoint(-p) }

// MulPoint returns p * (X ± a) = pX ± |p|a (Table 2, point multiplication).
func (v Value) MulPoint(p float64) Value {
	return Value{Mean: p * v.Mean, Spread: math.Abs(p) * v.Spread}
}

// DivPoint returns (X ± a) / p for p != 0. Division by zero yields ±Inf
// mean, matching float semantics; callers validating input should check p.
func (v Value) DivPoint(p float64) Value { return v.MulPoint(1 / p) }

// Neg returns -(X ± a) = -X ± a.
func (v Value) Neg() Value { return Value{Mean: -v.Mean, Spread: v.Spread} }

// AddRelated returns the conservative sum for related distributions
// (Table 2): sum of means ± sum of |spreads|. Use when the operands'
// fluctuations are causally coupled and may peak together.
func (v Value) AddRelated(w Value) Value {
	return Value{Mean: v.Mean + w.Mean, Spread: v.Spread + w.Spread}
}

// AddUnrelated returns the root-sum-square sum for unrelated (independent)
// distributions (Table 2): sum of means ± sqrt(a_i^2 + a_j^2). This is
// exact for independent normals.
func (v Value) AddUnrelated(w Value) Value {
	return Value{Mean: v.Mean + w.Mean, Spread: math.Hypot(v.Spread, w.Spread)}
}

// SubRelated returns v - w under the related rule (§2.3.1: subtraction has
// the same form as addition with a negated mean — spreads still accumulate).
func (v Value) SubRelated(w Value) Value { return v.AddRelated(w.Neg()) }

// SubUnrelated returns v - w under the unrelated rule.
func (v Value) SubUnrelated(w Value) Value { return v.AddUnrelated(w.Neg()) }

// SumRelated returns the related sum of values (conservative).
func SumRelated(vs ...Value) Value {
	var out Value
	for _, v := range vs {
		out = out.AddRelated(v)
	}
	return out
}

// SumUnrelated returns the unrelated (RSS) sum of values.
func SumUnrelated(vs ...Value) Value {
	var mean, ss float64
	for _, v := range vs {
		mean += v.Mean
		ss += v.Spread * v.Spread
	}
	return Value{Mean: mean, Spread: math.Sqrt(ss)}
}

// MulRelated returns the related product (Table 2):
//
//	(Xi ± ai)(Xj ± aj) = XiXj ± (ai|Xj| + aj|Xi| + ai*aj)
//
// The spread expression is the standard first-order error propagation plus
// the conservative second-order ai*aj term. Absolute values on the means
// keep the spread non-negative for negative operands (the paper's operands
// are all positive capacities/counts; we generalize safely).
func (v Value) MulRelated(w Value) Value {
	spread := v.Spread*math.Abs(w.Mean) + w.Spread*math.Abs(v.Mean) + v.Spread*w.Spread
	return Value{Mean: v.Mean * w.Mean, Spread: spread}
}

// MulUnrelated returns the unrelated product (Table 2):
//
//	(Xi ± ai)(Xj ± aj) ≈ XiXj ± |XiXj| sqrt((ai/Xi)^2 + (aj/Xj)^2)
//
// When either mean is zero the paper defines the product to be zero (the
// relative-error form is undefined there).
func (v Value) MulUnrelated(w Value) Value {
	if v.Mean == 0 || w.Mean == 0 {
		return Value{}
	}
	rel := math.Hypot(v.Spread/v.Mean, w.Spread/w.Mean)
	mean := v.Mean * w.Mean
	return Value{Mean: mean, Spread: math.Abs(mean) * rel}
}

// Recip returns the first-order reciprocal 1/(X ± a) = (1/X) ± a/X^2.
// The paper's footnote 5 reduces division to multiplication by the
// reciprocal; first-order propagation of the reciprocal preserves the
// relative spread (a/|X|), which is the property both product rules consume.
// The mean must be non-zero.
func (v Value) Recip() Value {
	if v.Mean == 0 {
		return Value{Mean: math.Inf(1), Spread: math.Inf(1)}
	}
	return Value{Mean: 1 / v.Mean, Spread: v.Spread / (v.Mean * v.Mean)}
}

// DivRelated returns v / w for related distributions, via v * Recip(w).
func (v Value) DivRelated(w Value) Value { return v.MulRelated(w.Recip()) }

// DivUnrelated returns v / w for unrelated distributions, via
// v * Recip(w); the relative errors combine in quadrature.
func (v Value) DivUnrelated(w Value) Value { return v.MulUnrelated(w.Recip()) }

// WeightedCombine implements the multi-modal combination of §2.1.2:
//
//	P1(M1 ± SD1) + P2(M2 ± SD2) + ... with Pi >= 0, sum Pi = 1
//
// where Pi is the fraction of time spent in mode i. Each term is a point
// multiplication, and the terms are summed with the related rule (the modes
// belong to the same underlying quantity). Weights are normalized; an
// all-zero weight vector or a length mismatch returns an error.
//
// Note this is the paper's formula: it averages mode distributions and
// deliberately ignores *between*-mode variance. MixtureSummary provides the
// variance-complete alternative for comparison (see the ablation bench).
func WeightedCombine(modes []Value, weights []float64) (Value, error) {
	ws, err := normalizeWeights(len(modes), weights)
	if err != nil {
		return Value{}, err
	}
	var out Value
	for i, m := range modes {
		out = out.AddRelated(m.MulPoint(ws[i]))
	}
	return out, nil
}

// MixtureSummary summarizes the exact Gaussian mixture defined by the modes
// and weights as mean ± 2*sigma_mixture, where sigma_mixture includes
// between-mode variance by the law of total variance. This is wider than
// WeightedCombine whenever mode means differ.
func MixtureSummary(modes []Value, weights []float64) (Value, error) {
	ws, err := normalizeWeights(len(modes), weights)
	if err != nil {
		return Value{}, err
	}
	var mean float64
	for i, m := range modes {
		mean += ws[i] * m.Mean
	}
	var variance float64
	for i, m := range modes {
		s := m.Sigma()
		d := m.Mean - mean
		variance += ws[i] * (s*s + d*d)
	}
	return Value{Mean: mean, Spread: 2 * math.Sqrt(variance)}, nil
}

func normalizeWeights(n int, weights []float64) ([]float64, error) {
	if n == 0 {
		return nil, errEmptyModes
	}
	if len(weights) != n {
		return nil, errWeightMismatch
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, errBadWeight
		}
		total += w
	}
	if total <= 0 {
		return nil, errZeroWeights
	}
	out := make([]float64, n)
	for i, w := range weights {
		out[i] = w / total
	}
	return out, nil
}
