package stochastic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prodpred/internal/stats"
)

// genValue maps three arbitrary float64s to a well-formed stochastic value
// with bounded magnitude, for property tests.
func genValue(meanRaw, spreadRaw float64) Value {
	mean := math.Mod(meanRaw, 1e3)
	if math.IsNaN(mean) || math.IsInf(mean, 0) {
		mean = 1
	}
	spread := math.Abs(math.Mod(spreadRaw, 1e2))
	if math.IsNaN(spread) || math.IsInf(spread, 0) {
		spread = 0.5
	}
	return Value{Mean: mean, Spread: spread}
}

func TestPointArithmetic(t *testing.T) {
	v := New(10, 2)
	if got := v.AddPoint(5); got != New(15, 2) {
		t.Errorf("AddPoint=%v", got)
	}
	if got := v.SubPoint(3); got != New(7, 2) {
		t.Errorf("SubPoint=%v", got)
	}
	if got := v.MulPoint(3); got != New(30, 6) {
		t.Errorf("MulPoint=%v", got)
	}
	if got := v.MulPoint(-3); got != New(-30, 6) {
		t.Errorf("MulPoint negative=%v", got)
	}
	if got := v.DivPoint(2); got != New(5, 1) {
		t.Errorf("DivPoint=%v", got)
	}
	if got := v.Neg(); got != New(-10, 2) {
		t.Errorf("Neg=%v", got)
	}
}

func TestAddRelatedIsConservative(t *testing.T) {
	// Table 2 row 2: sum of means, sum of |spreads|.
	a := New(3, 1)
	b := New(4, 2)
	got := a.AddRelated(b)
	if got != New(7, 3) {
		t.Errorf("AddRelated=%v want 7±3", got)
	}
}

func TestAddUnrelatedIsRSS(t *testing.T) {
	// Table 2 row 3: sum of means, sqrt(sum of spreads^2).
	a := New(3, 3)
	b := New(4, 4)
	got := a.AddUnrelated(b)
	if !got.ApproxEqual(New(7, 5), 1e-12) {
		t.Errorf("AddUnrelated=%v want 7±5", got)
	}
}

func TestSubtraction(t *testing.T) {
	a := New(10, 1)
	b := New(4, 2)
	if got := a.SubRelated(b); got != New(6, 3) {
		t.Errorf("SubRelated=%v", got)
	}
	if got := a.SubUnrelated(b); !got.ApproxEqual(New(6, math.Sqrt(5)), 1e-12) {
		t.Errorf("SubUnrelated=%v", got)
	}
}

func TestSumVariadic(t *testing.T) {
	vs := []Value{New(1, 1), New(2, 2), New(3, 2)}
	if got := SumRelated(vs...); got != New(6, 5) {
		t.Errorf("SumRelated=%v", got)
	}
	if got := SumUnrelated(vs...); !got.ApproxEqual(New(6, 3), 1e-12) {
		t.Errorf("SumUnrelated=%v", got)
	}
	if got := SumRelated(); got != Point(0) {
		t.Errorf("empty SumRelated=%v", got)
	}
	if got := SumUnrelated(); got != Point(0) {
		t.Errorf("empty SumUnrelated=%v", got)
	}
}

func TestMulRelatedTable2(t *testing.T) {
	// Table 2: (Xi±ai)(Xj±aj) = XiXj ± (aiXj + ajXi + aiaj).
	a := New(10, 1)
	b := New(5, 2)
	want := New(50, 1*5+2*10+1*2) // 50 ± 27
	if got := a.MulRelated(b); got != want {
		t.Errorf("MulRelated=%v want %v", got, want)
	}
	// Commutative.
	if got := b.MulRelated(a); got != want {
		t.Errorf("MulRelated not commutative: %v", got)
	}
}

func TestMulUnrelatedTable2(t *testing.T) {
	a := New(10, 1) // rel 0.1
	b := New(5, 2)  // rel 0.4
	rel := math.Hypot(0.1, 0.4)
	want := New(50, 50*rel)
	if got := a.MulUnrelated(b); !got.ApproxEqual(want, 1e-9) {
		t.Errorf("MulUnrelated=%v want %v", got, want)
	}
	// Zero-mean operand: defined as zero (paper §2.3.2).
	if got := New(0, 1).MulUnrelated(b); got != Point(0) {
		t.Errorf("zero-mean product=%v want 0", got)
	}
	if got := a.MulUnrelated(Point(0)); got != Point(0) {
		t.Errorf("times zero point=%v want 0", got)
	}
}

func TestMulWithPointDegeneratesToMulPoint(t *testing.T) {
	// Multiplying by a point value must agree with MulPoint under both
	// rules (point values have zero spread, so ai terms vanish).
	v := New(8, 1.5)
	p := Point(3)
	if got := v.MulRelated(p); got != v.MulPoint(3) {
		t.Errorf("MulRelated by point=%v want %v", got, v.MulPoint(3))
	}
	if got := v.MulUnrelated(p); !got.ApproxEqual(v.MulPoint(3), 1e-12) {
		t.Errorf("MulUnrelated by point=%v want %v", got, v.MulPoint(3))
	}
}

func TestRecip(t *testing.T) {
	v := New(4, 0.4) // rel spread 0.1
	r := v.Recip()
	if !almostEqual(r.Mean, 0.25, 1e-12) {
		t.Errorf("recip mean=%g", r.Mean)
	}
	// First-order reciprocal preserves relative spread.
	if !almostEqual(r.RelativeSpread(), v.RelativeSpread(), 1e-12) {
		t.Errorf("recip rel spread=%g want %g", r.RelativeSpread(), v.RelativeSpread())
	}
	z := Point(0).Recip()
	if !math.IsInf(z.Mean, 1) {
		t.Errorf("recip of zero mean=%v", z)
	}
}

func TestDivision(t *testing.T) {
	// Comp / load, the paper's computation component: benchmark time
	// divided by a stochastic CPU-availability value.
	comp := Point(100)
	load := New(0.5, 0.05) // rel 0.1
	got := comp.DivUnrelated(load)
	if !almostEqual(got.Mean, 200, 1e-9) {
		t.Errorf("div mean=%g", got.Mean)
	}
	if !almostEqual(got.RelativeSpread(), 0.1, 1e-9) {
		t.Errorf("div rel spread=%g", got.RelativeSpread())
	}
	gotR := comp.DivRelated(load)
	if !almostEqual(gotR.Mean, 200, 1e-9) {
		t.Errorf("divRelated mean=%g", gotR.Mean)
	}
	// Related division of a point by a stochastic keeps the same first-order
	// spread (ai = 0 kills the cross terms).
	if !almostEqual(gotR.Spread, 20, 1e-9) {
		t.Errorf("divRelated spread=%g", gotR.Spread)
	}
}

func TestWeightedCombine(t *testing.T) {
	// §2.1.2: P1(M1±SD1) + P2(M2±SD2) + P3(M3±SD3).
	modes := []Value{New(0.33, 0.06), New(0.49, 0.10), New(0.94, 0.04)}
	ws := []float64{0.25, 0.5, 0.25}
	got, err := WeightedCombine(modes, ws)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.25*0.33 + 0.5*0.49 + 0.25*0.94
	wantSpread := 0.25*0.06 + 0.5*0.10 + 0.25*0.04
	if !got.ApproxEqual(New(wantMean, wantSpread), 1e-12) {
		t.Errorf("WeightedCombine=%v want %g±%g", got, wantMean, wantSpread)
	}
	// Weights normalize.
	got2, err := WeightedCombine(modes, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got2.ApproxEqual(got, 1e-12) {
		t.Errorf("unnormalized weights gave %v want %v", got2, got)
	}
}

func TestWeightedCombineErrors(t *testing.T) {
	if _, err := WeightedCombine(nil, nil); err == nil {
		t.Error("empty modes should fail")
	}
	if _, err := WeightedCombine([]Value{Point(1)}, []float64{1, 2}); err == nil {
		t.Error("mismatched weights should fail")
	}
	if _, err := WeightedCombine([]Value{Point(1)}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := WeightedCombine([]Value{Point(1)}, []float64{0}); err == nil {
		t.Error("zero weights should fail")
	}
	if _, err := WeightedCombine([]Value{Point(1)}, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight should fail")
	}
}

func TestMixtureSummaryWiderThanWeightedCombine(t *testing.T) {
	// With separated mode means, the true mixture spread must exceed the
	// paper's within-mode average (the basis for the modal ablation).
	modes := []Value{New(0.2, 0.05), New(0.9, 0.05)}
	ws := []float64{0.5, 0.5}
	wc, err := WeightedCombine(modes, ws)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MixtureSummary(modes, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ms.Mean, wc.Mean, 1e-12) {
		t.Errorf("means differ: %g vs %g", ms.Mean, wc.Mean)
	}
	if ms.Spread <= wc.Spread {
		t.Errorf("mixture spread %g should exceed combined %g", ms.Spread, wc.Spread)
	}
	// With identical mode means they coincide.
	same := []Value{New(0.5, 0.1), New(0.5, 0.1)}
	wc2, _ := WeightedCombine(same, ws)
	ms2, _ := MixtureSummary(same, ws)
	if !ms2.ApproxEqual(wc2, 1e-12) {
		t.Errorf("identical modes: %v vs %v", ms2, wc2)
	}
}

func TestMixtureSummaryMatchesSampling(t *testing.T) {
	modes := []Value{New(0.33, 0.06), New(0.94, 0.04)}
	ws := []float64{0.7, 0.3}
	ms, err := MixtureSummary(modes, ws)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	xs := make([]float64, 100000)
	for i := range xs {
		m := 0
		if rng.Float64() > 0.7 {
			m = 1
		}
		xs[i] = modes[m].Sample(rng)
	}
	if !almostEqual(stats.Mean(xs), ms.Mean, 0.01) {
		t.Errorf("sample mean %g vs %g", stats.Mean(xs), ms.Mean)
	}
	if !almostEqual(2*stats.StdDev(xs), ms.Spread, 0.02) {
		t.Errorf("sample spread %g vs %g", 2*stats.StdDev(xs), ms.Spread)
	}
}

// --- Monte Carlo cross-checks of the Table 2 rules ------------------------

// TestAddUnrelatedMatchesMonteCarlo verifies that the RSS rule is exact for
// independent normals: the sampled sum's 2-sigma spread matches the rule.
func TestAddUnrelatedMatchesMonteCarlo(t *testing.T) {
	a := New(8, 2)
	b := New(5, 1.5)
	pred := a.AddUnrelated(b)
	rng := rand.New(rand.NewSource(61))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = a.Sample(rng) + b.Sample(rng)
	}
	if !almostEqual(stats.Mean(xs), pred.Mean, 0.02) {
		t.Errorf("MC mean %g vs rule %g", stats.Mean(xs), pred.Mean)
	}
	if !almostEqual(2*stats.StdDev(xs), pred.Spread, 0.03) {
		t.Errorf("MC spread %g vs rule %g", 2*stats.StdDev(xs), pred.Spread)
	}
}

// TestAddRelatedBoundsPerfectlyCorrelated verifies the conservative rule
// equals the spread of a perfectly correlated (comonotone) sum — its worst
// case — and therefore upper-bounds the independent case.
func TestAddRelatedBoundsPerfectlyCorrelated(t *testing.T) {
	a := New(8, 2)
	b := New(5, 1.5)
	pred := a.AddRelated(b)
	rng := rand.New(rand.NewSource(62))
	xs := make([]float64, 200000)
	for i := range xs {
		z := rng.NormFloat64()
		xs[i] = (a.Mean + a.Sigma()*z) + (b.Mean + b.Sigma()*z)
	}
	if !almostEqual(2*stats.StdDev(xs), pred.Spread, 0.03) {
		t.Errorf("comonotone MC spread %g vs related rule %g", 2*stats.StdDev(xs), pred.Spread)
	}
	if pred.Spread < a.AddUnrelated(b).Spread {
		t.Error("related spread should dominate unrelated spread")
	}
}

// TestMulUnrelatedMatchesMonteCarlo verifies the product rule's first-order
// accuracy for small relative spreads.
func TestMulUnrelatedMatchesMonteCarlo(t *testing.T) {
	a := New(10, 0.8) // rel 0.08
	b := New(4, 0.4)  // rel 0.10
	pred := a.MulUnrelated(b)
	rng := rand.New(rand.NewSource(63))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = a.Sample(rng) * b.Sample(rng)
	}
	if !almostEqual(stats.Mean(xs), pred.Mean, 0.05) {
		t.Errorf("MC mean %g vs rule %g", stats.Mean(xs), pred.Mean)
	}
	// First-order rule; allow a few percent slack.
	if math.Abs(2*stats.StdDev(xs)-pred.Spread)/pred.Spread > 0.05 {
		t.Errorf("MC spread %g vs rule %g", 2*stats.StdDev(xs), pred.Spread)
	}
}

// --- Properties ------------------------------------------------------------

func TestArithmeticProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	// Commutativity of all four binary ops.
	comm := func(m1, s1, m2, s2 float64) bool {
		a, b := genValue(m1, s1), genValue(m2, s2)
		return a.AddRelated(b).ApproxEqual(b.AddRelated(a), 1e-9) &&
			a.AddUnrelated(b).ApproxEqual(b.AddUnrelated(a), 1e-9) &&
			a.MulRelated(b).ApproxEqual(b.MulRelated(a), 1e-9) &&
			a.MulUnrelated(b).ApproxEqual(b.MulUnrelated(a), 1e-9)
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}

	// Identity: adding Point(0), multiplying by Point(1).
	ident := func(m, s float64) bool {
		v := genValue(m, s)
		return v.AddRelated(Point(0)) == v &&
			v.AddUnrelated(Point(0)).ApproxEqual(v, 1e-12) &&
			v.MulRelated(Point(1)) == v &&
			(v.Mean == 0 || v.MulUnrelated(Point(1)).ApproxEqual(v, 1e-9))
	}
	if err := quick.Check(ident, cfg); err != nil {
		t.Errorf("identity: %v", err)
	}

	// Spread is never negative, and related >= unrelated spreads.
	width := func(m1, s1, m2, s2 float64) bool {
		a, b := genValue(m1, s1), genValue(m2, s2)
		ar, au := a.AddRelated(b), a.AddUnrelated(b)
		mr, mu := a.MulRelated(b), a.MulUnrelated(b)
		if ar.Spread < 0 || au.Spread < 0 || mr.Spread < 0 || mu.Spread < 0 {
			return false
		}
		if ar.Spread+1e-9 < au.Spread {
			return false
		}
		return mr.Spread+1e-9*(1+mr.Spread) >= mu.Spread
	}
	if err := quick.Check(width, cfg); err != nil {
		t.Errorf("width ordering: %v", err)
	}

	// Point values degenerate correctly: combining two points yields the
	// ordinary arithmetic result under every rule.
	points := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		a, b := Point(x), Point(y)
		if a.AddRelated(b) != Point(x+y) || a.AddUnrelated(b) != Point(x+y) {
			return false
		}
		if a.MulRelated(b) != Point(x*y) {
			return false
		}
		mu := a.MulUnrelated(b)
		if x == 0 || y == 0 {
			return mu == Point(0)
		}
		return mu.ApproxEqual(Point(x*y), 1e-9*math.Abs(x*y))
	}
	if err := quick.Check(points, cfg); err != nil {
		t.Errorf("point degeneration: %v", err)
	}

	// Associativity of related addition (exact) and unrelated addition
	// (RSS is associative too).
	assoc := func(m1, s1, m2, s2, m3, s3 float64) bool {
		a, b, c := genValue(m1, s1), genValue(m2, s2), genValue(m3, s3)
		tol := 1e-6
		if !a.AddRelated(b).AddRelated(c).ApproxEqual(a.AddRelated(b.AddRelated(c)), tol) {
			return false
		}
		return a.AddUnrelated(b).AddUnrelated(c).ApproxEqual(a.AddUnrelated(b.AddUnrelated(c)), tol)
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}

	// MulPoint distributes over both additions.
	distrib := func(m1, s1, m2, s2, kRaw float64) bool {
		a, b := genValue(m1, s1), genValue(m2, s2)
		k := math.Mod(kRaw, 50)
		if math.IsNaN(k) || math.IsInf(k, 0) {
			k = 2
		}
		tol := 1e-6 * (1 + math.Abs(k))
		lhs := a.AddRelated(b).MulPoint(k)
		rhs := a.MulPoint(k).AddRelated(b.MulPoint(k))
		if !lhs.ApproxEqual(rhs, tol) {
			return false
		}
		lhs = a.AddUnrelated(b).MulPoint(k)
		rhs = a.MulPoint(k).AddUnrelated(b.MulPoint(k))
		return lhs.ApproxEqual(rhs, tol)
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}
