package stochastic

import (
	"math"
	"math/rand"
	"testing"

	"prodpred/internal/dist"
	"prodpred/internal/stats"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestPointAndNew(t *testing.T) {
	p := Point(12)
	if !p.IsPoint() || p.Mean != 12 || p.Spread != 0 {
		t.Errorf("Point(12)=%+v", p)
	}
	v := New(12, 3.6)
	if v.IsPoint() || v.Sigma() != 1.8 {
		t.Errorf("New=%+v sigma=%g", v, v.Sigma())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with negative spread should panic")
		}
	}()
	New(1, -1)
}

func TestTryNew(t *testing.T) {
	if _, err := TryNew(1, -0.5); err == nil {
		t.Error("negative spread should fail")
	}
	if _, err := TryNew(math.NaN(), 1); err == nil {
		t.Error("NaN mean should fail")
	}
	if _, err := TryNew(1, math.NaN()); err == nil {
		t.Error("NaN spread should fail")
	}
	v, err := TryNew(2, 0.5)
	if err != nil || v.Mean != 2 || v.Spread != 0.5 {
		t.Errorf("TryNew=%+v err=%v", v, err)
	}
}

func TestFromPercent(t *testing.T) {
	// The paper's Table 1: 12 sec ± 30% -> [8.4, 15.6].
	v := FromPercent(12, 30)
	lo, hi := v.Interval()
	if !almostEqual(lo, 8.4, 1e-12) || !almostEqual(hi, 15.6, 1e-12) {
		t.Errorf("interval [%g,%g] want [8.4,15.6]", lo, hi)
	}
	// 12 ± 5% -> [11.4, 12.6].
	v = FromPercent(12, 5)
	lo, hi = v.Interval()
	if !almostEqual(lo, 11.4, 1e-12) || !almostEqual(hi, 12.6, 1e-12) {
		t.Errorf("interval [%g,%g] want [11.4,12.6]", lo, hi)
	}
	// Negative mean or percent still yields non-negative spread.
	if FromPercent(-10, 20).Spread != 2 {
		t.Errorf("negative mean spread=%g", FromPercent(-10, 20).Spread)
	}
	if FromPercent(10, -20).Spread != 2 {
		t.Errorf("negative pct spread=%g", FromPercent(10, -20).Spread)
	}
}

func TestFromMeanSigma(t *testing.T) {
	v := FromMeanSigma(0.48, 0.025)
	if !almostEqual(v.Spread, 0.05, 1e-12) {
		t.Errorf("spread=%g", v.Spread)
	}
	if FromMeanSigma(1, -0.5).Spread != 1 {
		t.Error("negative sigma should be absolute-valued")
	}
}

func TestFromSample(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := dist.Normal{Mu: 5.25, Sigma: 0.4}
	xs := dist.SampleN(n, rng, 4000)
	v, err := FromSample(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v.Mean, 5.25, 0.05) || !almostEqual(v.Spread, 0.8, 0.05) {
		t.Errorf("FromSample=%v", v)
	}
	if _, err := FromSample(nil); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestFromNormalAndDistributionRoundTrip(t *testing.T) {
	n := dist.Normal{Mu: 12, Sigma: 0.6}
	v := FromNormal(n)
	if v.Mean != 12 || v.Spread != 1.2 {
		t.Errorf("FromNormal=%v", v)
	}
	back, err := v.Distribution()
	if err != nil || back.Mu != 12 || back.Sigma != 0.6 {
		t.Errorf("round trip=%+v err=%v", back, err)
	}
	if _, err := Point(3).Distribution(); err == nil {
		t.Error("point value should have no distribution")
	}
}

func TestIntervalQueries(t *testing.T) {
	v := New(10, 2)
	if v.Lo() != 8 || v.Hi() != 12 {
		t.Errorf("Lo/Hi = %g/%g", v.Lo(), v.Hi())
	}
	for _, c := range []struct {
		x    float64
		in   bool
		eOut float64
	}{
		{8, true, 0}, {12, true, 0}, {10, true, 0},
		{7, false, 1}, {13.5, false, 1.5},
	} {
		if got := v.Contains(c.x); got != c.in {
			t.Errorf("Contains(%g)=%v", c.x, got)
		}
		if got := v.ErrorOutside(c.x); !almostEqual(got, c.eOut, 1e-12) {
			t.Errorf("ErrorOutside(%g)=%g want %g", c.x, got, c.eOut)
		}
	}
}

func TestRelativeErrorOutside(t *testing.T) {
	v := New(100, 10)
	if got := v.RelativeErrorOutside(120); !almostEqual(got, 10.0/120.0, 1e-12) {
		t.Errorf("rel err=%g", got)
	}
	if got := v.RelativeErrorOutside(105); got != 0 {
		t.Errorf("inside rel err=%g", got)
	}
	w := New(5, 1)
	if !math.IsInf(w.RelativeErrorOutside(0), 1) {
		t.Error("x=0 outside should be +Inf")
	}
}

func TestRelativeSpread(t *testing.T) {
	if got := New(12, 3.6).RelativeSpread(); !almostEqual(got, 0.3, 1e-12) {
		t.Errorf("RelativeSpread=%g", got)
	}
	if got := Point(0).RelativeSpread(); got != 0 {
		t.Errorf("Point(0)=%g", got)
	}
	if !math.IsInf(New(0, 1).RelativeSpread(), 1) {
		t.Error("zero mean nonzero spread should be Inf")
	}
}

func TestSamplePointIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Point(7)
	for i := 0; i < 100; i++ {
		if p.Sample(rng) != 7 {
			t.Fatal("point sample not exact")
		}
	}
}

func TestSampleMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	v := New(12, 1.2) // sigma 0.6
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = v.Sample(rng)
	}
	if m := stats.Mean(xs); !almostEqual(m, 12, 0.02) {
		t.Errorf("sample mean=%g", m)
	}
	if s := stats.StdDev(xs); !almostEqual(s, 0.6, 0.02) {
		t.Errorf("sample sigma=%g", s)
	}
	// ~95% inside the stochastic interval: the defining property.
	if c := stats.Coverage(xs, v.Lo(), v.Hi()); math.Abs(c-0.9545) > 0.01 {
		t.Errorf("interval coverage=%g", c)
	}
}

func TestCDFAndQuantile(t *testing.T) {
	v := New(10, 2) // sigma 1
	if got := v.CDF(10); got != 0.5 {
		t.Errorf("CDF(mean)=%g", got)
	}
	if got := v.CDF(12); !almostEqual(got, 0.9772498680518208, 1e-9) {
		t.Errorf("CDF(+2sigma)=%g", got)
	}
	if got := v.Quantile(0.5); !almostEqual(got, 10, 1e-9) {
		t.Errorf("median=%g", got)
	}
	p := Point(5)
	if p.CDF(4.999) != 0 || p.CDF(5) != 1 {
		t.Error("point CDF should be a step at the mean")
	}
	if p.Quantile(0.3) != 5 {
		t.Error("point quantile should be the mean")
	}
}

func TestString(t *testing.T) {
	if got := New(12, 3.6).String(); got != "12 ± 3.6" {
		t.Errorf("String=%q", got)
	}
	if got := Point(7.5).String(); got != "7.5" {
		t.Errorf("point String=%q", got)
	}
}

func TestApproxEqual(t *testing.T) {
	a := New(1, 0.5)
	if !a.ApproxEqual(New(1.0001, 0.5001), 0.001) {
		t.Error("should be approx equal")
	}
	if a.ApproxEqual(New(1.1, 0.5), 0.001) {
		t.Error("should not be approx equal")
	}
}
