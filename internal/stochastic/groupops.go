package stochastic

import (
	"errors"
	"math"

	"prodpred/internal/stats"
)

var (
	errEmptyModes     = errors.New("stochastic: no modes")
	errWeightMismatch = errors.New("stochastic: weight length mismatch")
	errBadWeight      = errors.New("stochastic: negative or NaN weight")
	errZeroWeights    = errors.New("stochastic: weights sum to zero")
	errEmptyGroup     = errors.New("stochastic: empty group operation")
)

// MaxStrategy selects how the Max/Min group operators of §2.3.3 resolve a
// set of stochastic values. The paper stresses that the right choice is
// situation-dependent: it depends on the penalty for guessing wrong and on
// the quality of information required.
type MaxStrategy int

const (
	// LargestMean picks the value with the largest mean — "on average, the
	// values of A are likely to be higher than the values of B".
	LargestMean MaxStrategy = iota
	// LargestMagnitude picks the value with the largest magnitude anywhere
	// in its range (largest Mean+Spread) — the conservative choice when the
	// penalty for underestimating is high.
	LargestMagnitude
	// Probabilistic computes moments of the maximum of the underlying
	// independent normals (Clark's pairwise approximation), yielding a new
	// stochastic value rather than selecting an input.
	Probabilistic
)

// Max combines vs under the given strategy. For LargestMean and
// LargestMagnitude the result is one of the inputs; for Probabilistic it is
// a fresh value approximating max(X1, ..., Xn) of independent normals.
func Max(strategy MaxStrategy, vs ...Value) (Value, error) {
	if len(vs) == 0 {
		return Value{}, errEmptyGroup
	}
	switch strategy {
	case LargestMean:
		best := vs[0]
		for _, v := range vs[1:] {
			if v.Mean > best.Mean {
				best = v
			}
		}
		return best, nil
	case LargestMagnitude:
		best := vs[0]
		for _, v := range vs[1:] {
			if v.Hi() > best.Hi() {
				best = v
			}
		}
		return best, nil
	case Probabilistic:
		out := vs[0]
		for _, v := range vs[1:] {
			out = clarkMax(out, v)
		}
		return out, nil
	}
	return Value{}, errors.New("stochastic: unknown max strategy")
}

// Min combines vs under the given strategy, mirroring Max: LargestMean
// becomes smallest mean, LargestMagnitude becomes smallest Lo(), and
// Probabilistic approximates min(X1, ..., Xn) via -max(-X).
func Min(strategy MaxStrategy, vs ...Value) (Value, error) {
	if len(vs) == 0 {
		return Value{}, errEmptyGroup
	}
	switch strategy {
	case LargestMean:
		best := vs[0]
		for _, v := range vs[1:] {
			if v.Mean < best.Mean {
				best = v
			}
		}
		return best, nil
	case LargestMagnitude:
		best := vs[0]
		for _, v := range vs[1:] {
			if v.Lo() < best.Lo() {
				best = v
			}
		}
		return best, nil
	case Probabilistic:
		neg := make([]Value, len(vs))
		for i, v := range vs {
			neg[i] = v.Neg()
		}
		m, err := Max(Probabilistic, neg...)
		if err != nil {
			return Value{}, err
		}
		return m.Neg(), nil
	}
	return Value{}, errors.New("stochastic: unknown min strategy")
}

// clarkMax returns Clark's (1961) moment-matching approximation to
// max(A, B) for independent normals A and B, expressed as a stochastic
// value. When both inputs are point values the result is the exact maximum.
func clarkMax(a, b Value) Value {
	sa, sb := a.Sigma(), b.Sigma()
	theta := math.Sqrt(sa*sa + sb*sb)
	if theta == 0 {
		return Point(math.Max(a.Mean, b.Mean))
	}
	alpha := (a.Mean - b.Mean) / theta
	phi := stats.NormalPDF(alpha)
	PhiA := stats.NormalCDF(alpha)
	PhiB := stats.NormalCDF(-alpha)
	mean := a.Mean*PhiA + b.Mean*PhiB + theta*phi
	second := (a.Mean*a.Mean+sa*sa)*PhiA +
		(b.Mean*b.Mean+sb*sb)*PhiB +
		(a.Mean+b.Mean)*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Value{Mean: mean, Spread: 2 * math.Sqrt(variance)}
}

// MaxIndex returns the index of the element Max(strategy, vs...) would
// select, for the selecting strategies (LargestMean, LargestMagnitude).
// Probabilistic does not select an input; requesting it is an error.
func MaxIndex(strategy MaxStrategy, vs []Value) (int, error) {
	if len(vs) == 0 {
		return 0, errEmptyGroup
	}
	key := func(v Value) float64 { return v.Mean }
	switch strategy {
	case LargestMean:
	case LargestMagnitude:
		key = func(v Value) float64 { return v.Hi() }
	default:
		return 0, errors.New("stochastic: strategy does not select an input")
	}
	best := 0
	for i, v := range vs[1:] {
		if key(v) > key(vs[best]) {
			best = i + 1
		}
	}
	return best, nil
}
