// Package stochastic implements the paper's primary contribution: stochastic
// values — quantities represented as a normal distribution summarized by a
// mean and a range of two standard deviations — together with the arithmetic
// combination rules of Table 2, the group operators of §2.3.3, and the
// interval-error metric used in the evaluation.
//
// A Value is written "X ± a" where X is the mean and a is two standard
// deviations, so the interval [X-a, X+a] nominally covers ~95% of the
// underlying behaviour. A point value is the degenerate case a == 0
// (footnote 1 of the paper: probability 1 at X).
//
// Combination rules distinguish *related* distributions (causally coupled,
// e.g. latency and bandwidth under shared congestion) from *unrelated* ones
// (independent). Related combinations use conservative absolute-error
// accumulation; unrelated combinations use root-sum-square error
// propagation. Relatedness is a modeling judgement the caller makes; it is
// not inferable from the values themselves, which is why the API exposes
// explicit method pairs (AddRelated/AddUnrelated, ...).
package stochastic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"prodpred/internal/dist"
	"prodpred/internal/stats"
)

// Value is a stochastic value X ± a: mean X and spread a = two standard
// deviations (a >= 0). The zero Value is the point value 0.
type Value struct {
	Mean   float64
	Spread float64 // two standard deviations; 0 for a point value
}

// Point returns the point value x (spread zero).
func Point(x float64) Value { return Value{Mean: x} }

// New returns the stochastic value mean ± spread. It panics if spread is
// negative or either argument is NaN; use TryNew for validated construction
// from untrusted input.
func New(mean, spread float64) Value {
	v, err := TryNew(mean, spread)
	if err != nil {
		panic(err)
	}
	return v
}

// TryNew validates and returns the stochastic value mean ± spread.
func TryNew(mean, spread float64) (Value, error) {
	if math.IsNaN(mean) || math.IsNaN(spread) {
		return Value{}, errors.New("stochastic: NaN parameter")
	}
	if spread < 0 {
		return Value{}, fmt.Errorf("stochastic: negative spread %g", spread)
	}
	return Value{Mean: mean, Spread: spread}, nil
}

// FromPercent returns mean ± pct% of mean, the paper's percentage notation
// (e.g. "12 sec ± 30%" -> 12 ± 3.6). The spread is |mean| * pct / 100.
func FromPercent(mean, pct float64) Value {
	return Value{Mean: mean, Spread: math.Abs(mean) * math.Abs(pct) / 100}
}

// FromMeanSigma returns mean ± 2*sigma.
func FromMeanSigma(mean, sigma float64) Value {
	return Value{Mean: mean, Spread: 2 * math.Abs(sigma)}
}

// FromSample summarizes a data sample as a stochastic value: sample mean ±
// two sample standard deviations. This is how the paper turns benchmark or
// sensor histories into model parameters.
func FromSample(xs []float64) (Value, error) {
	if len(xs) == 0 {
		return Value{}, stats.ErrEmpty
	}
	m, s := stats.MeanStd(xs)
	return Value{Mean: m, Spread: 2 * s}, nil
}

// FromNormal summarizes a normal distribution as mean ± 2 sigma.
func FromNormal(n dist.Normal) Value {
	return Value{Mean: n.Mu, Spread: 2 * n.Sigma}
}

// IsPoint reports whether v is a point value (zero spread).
func (v Value) IsPoint() bool { return v.Spread == 0 }

// Sigma returns one standard deviation (Spread / 2).
func (v Value) Sigma() float64 { return v.Spread / 2 }

// Interval returns the nominal ~95% interval [Mean-Spread, Mean+Spread].
func (v Value) Interval() (lo, hi float64) {
	return v.Mean - v.Spread, v.Mean + v.Spread
}

// Lo returns Mean - Spread.
func (v Value) Lo() float64 { return v.Mean - v.Spread }

// Hi returns Mean + Spread.
func (v Value) Hi() float64 { return v.Mean + v.Spread }

// Contains reports whether x lies within the closed interval of v.
func (v Value) Contains(x float64) bool {
	return x >= v.Lo() && x <= v.Hi()
}

// RelativeSpread returns Spread/|Mean|, or +Inf for a zero mean with
// non-zero spread, or 0 for the point value 0.
func (v Value) RelativeSpread() float64 {
	if v.Mean == 0 {
		if v.Spread == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return v.Spread / math.Abs(v.Mean)
}

// ErrorOutside returns the paper's error metric for an observation x against
// the prediction v (footnote 6): the minimum distance between x and the
// interval (Mean-Spread, Mean+Spread), which is zero when x falls inside.
func (v Value) ErrorOutside(x float64) float64 {
	lo, hi := v.Interval()
	switch {
	case x < lo:
		return lo - x
	case x > hi:
		return x - hi
	}
	return 0
}

// RelativeErrorOutside returns ErrorOutside(x)/|x|, the percentage form the
// evaluation section reports (e.g. "maximum error of approximately 14%").
// It returns +Inf when x is 0 but lies outside the interval.
func (v Value) RelativeErrorOutside(x float64) float64 {
	e := v.ErrorOutside(x)
	if e == 0 {
		return 0
	}
	if x == 0 {
		return math.Inf(1)
	}
	return e / math.Abs(x)
}

// Distribution returns the normal distribution this value summarizes. It
// returns an error for point values, which have no spread to define sigma.
func (v Value) Distribution() (dist.Normal, error) {
	if v.IsPoint() {
		return dist.Normal{}, errors.New("stochastic: point value has no distribution")
	}
	return dist.NewNormal(v.Mean, v.Sigma())
}

// Sample draws one realization. Point values return their mean exactly.
func (v Value) Sample(rng *rand.Rand) float64 {
	if v.IsPoint() {
		return v.Mean
	}
	return v.Mean + v.Sigma()*rng.NormFloat64()
}

// CDF returns P(X <= x) under the normal interpretation. A point value is a
// step function at its mean.
func (v Value) CDF(x float64) float64 {
	if v.IsPoint() {
		if x >= v.Mean {
			return 1
		}
		return 0
	}
	return stats.NormalCDF((x - v.Mean) / v.Sigma())
}

// Quantile returns the p-quantile under the normal interpretation. Point
// values return the mean for every p in (0,1).
func (v Value) Quantile(p float64) float64 {
	if v.IsPoint() {
		return v.Mean
	}
	return v.Mean + v.Sigma()*stats.NormalQuantile(p)
}

// String renders the value in the paper's notation: "X ± a" or a bare
// number for point values.
func (v Value) String() string {
	if v.IsPoint() {
		return fmt.Sprintf("%.6g", v.Mean)
	}
	return fmt.Sprintf("%.6g ± %.6g", v.Mean, v.Spread)
}

// ApproxEqual reports whether two values agree within tol on both mean and
// spread.
func (v Value) ApproxEqual(w Value, tol float64) bool {
	return math.Abs(v.Mean-w.Mean) <= tol && math.Abs(v.Spread-w.Spread) <= tol
}
