package stochastic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count an MC engine uses when none is set. It
// is deliberately larger than any plausible worker count so shards stay
// small enough to balance across workers.
const DefaultShards = 64

// MC is a deterministic, sharded Monte Carlo sampling engine: N draws are
// split across a fixed number of shards, each shard drawing from its own
// rand.Source derived from (Seed, shard index), and shard results are
// combined in shard order. Because the per-shard streams and the merge
// order depend only on (Seed, Shards, N) — never on how many workers
// happen to execute the shards — results are bit-reproducible for any Jobs
// setting, including Jobs == 1.
//
// This is what lets the experiment harness's Monte Carlo validation loops
// (Table 2 cross-checks, group-Max ground truth, coverage sweeps) use every
// core without giving up the "deterministic given its seed" contract.
type MC struct {
	Seed int64
	// Jobs is the number of worker goroutines; <= 0 means GOMAXPROCS.
	// Jobs does not affect results, only wall-clock time.
	Jobs int
	// Shards is the fixed shard count; <= 0 means DefaultShards. Unlike
	// Jobs, Shards is part of the deterministic identity: changing it
	// changes the sample streams.
	Shards int
}

// splitmix64 is the SplitMix64 finalizer, used to spread (Seed, shard)
// pairs into well-decorrelated shard stream states.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mcSource is a SplitMix64-backed rand.Source64. Its state is a single word
// and seeding is O(1), so standing up one generator per shard stays off the
// profile — math/rand's default source re-initializes a 607-word lagged
// Fibonacci table on every Seed, which dominates small-shard workloads.
// Shard starting states come from the splitmix64 finalizer, so the per-shard
// streams are well-separated counter offsets in a 2^64 state space.
type mcSource struct{ state uint64 }

func (s *mcSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *mcSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *mcSource) Seed(seed int64) { s.state = uint64(seed) }

func (mc MC) shards() int {
	if mc.Shards <= 0 {
		return DefaultShards
	}
	return mc.Shards
}

func (mc MC) jobs(shards int) int {
	j := mc.Jobs
	if j <= 0 {
		j = runtime.GOMAXPROCS(0)
	}
	if j > shards {
		j = shards
	}
	return j
}

// shardSeed derives the mcSource starting state for one shard.
func (mc MC) shardSeed(shard int) int64 {
	return int64(splitmix64(uint64(mc.Seed) + uint64(shard)*0x9e3779b97f4a7c15))
}

// run executes gen once per non-empty shard on the worker pool. Shard s
// owns draws [s*n/shards, (s+1)*n/shards).
func (mc MC) run(n int, gen func(shard, lo, hi int, rng *rand.Rand)) error {
	if n <= 0 {
		return fmt.Errorf("stochastic: sample count %d must be positive", n)
	}
	shards := mc.shards()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < mc.jobs(shards); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1) - 1)
				if s >= shards {
					return
				}
				lo, hi := s*n/shards, (s+1)*n/shards
				if lo == hi {
					continue
				}
				gen(s, lo, hi, rand.New(&mcSource{state: uint64(mc.shardSeed(s))}))
			}
		}()
	}
	wg.Wait()
	return nil
}

// mcMoments is a streaming moment accumulator: count, mean, and M2 (the
// sum of squared deviations from the mean).
type mcMoments struct {
	n    int
	mean float64
	m2   float64
}

func (m *mcMoments) add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// merge combines two accumulators with the parallel update of Chan,
// Golub & LeVeque; merging in a fixed order makes the result independent
// of which worker produced which part.
func (m mcMoments) merge(o mcMoments) mcMoments {
	if o.n == 0 {
		return m
	}
	if m.n == 0 {
		return o
	}
	n := m.n + o.n
	d := o.mean - m.mean
	return mcMoments{
		n:    n,
		mean: m.mean + d*float64(o.n)/float64(n),
		m2:   m.m2 + o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n),
	}
}

// value converts the accumulated moments to mean ± two sample standard
// deviations, mirroring FromSample.
func (m mcMoments) value() Value {
	if m.n < 2 {
		return Value{Mean: m.mean}
	}
	return Value{Mean: m.mean, Spread: 2 * math.Sqrt(m.m2/float64(m.n-1))}
}

// Moments draws n samples of f and summarizes them as a stochastic value
// (mean ± two sample standard deviations, as FromSample) without
// materializing the sample. The per-shard moments are merged serially in
// shard order, so the result is identical for every Jobs setting.
func (mc MC) Moments(n int, f func(*rand.Rand) float64) (Value, error) {
	perShard := make([]mcMoments, mc.shards())
	err := mc.run(n, func(shard, lo, hi int, rng *rand.Rand) {
		acc := mcMoments{}
		for k := lo; k < hi; k++ {
			acc.add(f(rng))
		}
		perShard[shard] = acc
	})
	if err != nil {
		return Value{}, err
	}
	total := mcMoments{}
	for _, m := range perShard {
		total = total.merge(m)
	}
	if total.n == 0 {
		return Value{}, errors.New("stochastic: no samples generated")
	}
	return total.value(), nil
}

// Samples draws n samples of f in parallel and returns them in shard order
// — the same slice for every Jobs setting. Use this when a consumer needs
// the raw draws (coverage counting, histograms, quantiles) rather than
// moments.
func (mc MC) Samples(n int, f func(*rand.Rand) float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stochastic: sample count %d must be positive", n)
	}
	out := make([]float64, n)
	err := mc.run(n, func(shard, lo, hi int, rng *rand.Rand) {
		for k := lo; k < hi; k++ {
			out[k] = f(rng)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
