package faults

import (
	"errors"
	"math"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/nws"
	"prodpred/internal/simenv"
)

func constSensor(v float64) nws.Sensor {
	return func(float64) (float64, error) { return v, nil }
}

func TestScheduleValidation(t *testing.T) {
	in := NewInjector(1)
	bad := []Schedule{
		{DropProb: -0.1},
		{DropProb: 1.5},
		{TransientProb: 2},
		{SpikeProb: math.NaN()},
		{SpikeFactor: 0.5, SpikeProb: 0.1},
		{SpikeFactor: -1},
		{Outages: []Window{{Start: 10, End: 10}}},
		{Outages: []Window{{Start: 20, End: 10}}},
	}
	for i, s := range bad {
		if err := in.Set(0, s); err == nil {
			t.Errorf("schedule %d (%+v) should fail validation", i, s)
		}
	}
	if err := in.Set(-1, Schedule{}); err == nil {
		t.Error("negative machine should fail")
	}
	if err := in.Set(0, Schedule{DropProb: 0.2, SpikeProb: 0.1, SpikeFactor: 3,
		Outages: []Window{{Start: 0, End: 5}}}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// scan samples the wrapped sensor at ticks 0,5,...,5*(n-1) and returns the
// observed (value, error-class) sequence as a comparable signature.
func scan(s nws.Sensor, n int) []float64 {
	sig := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		v, err := s(float64(i) * 5)
		code := 0.0
		switch {
		case err == nil:
		case errors.Is(err, nws.ErrSampleDropped):
			code = 1
		case errors.Is(err, nws.ErrOutage):
			code = 2
		case nws.IsTransient(err):
			code = 3
		default:
			code = 4
		}
		sig = append(sig, v, code)
	}
	return sig
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func(seed int64) nws.Sensor {
		in := NewInjector(seed)
		if err := in.Set(0, Schedule{DropProb: 0.2, TransientProb: 0.05,
			SpikeProb: 0.05, Outages: []Window{{Start: 500, End: 700}}}); err != nil {
			t.Fatal(err)
		}
		return in.Sensor(0, constSensor(0.5))
	}
	a := scan(mk(42), 1000)
	b := scan(mk(42), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at position %d: %g vs %g", i, a[i], b[i])
		}
	}
	c := scan(mk(43), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestDecisionsAreOrderIndependent(t *testing.T) {
	in := NewInjector(7)
	if err := in.Set(0, Schedule{DropProb: 0.3}); err != nil {
		t.Fatal(err)
	}
	s := in.Sensor(0, constSensor(1))
	// Sample t=55 cold, then again after sampling other times: the decision
	// must be a pure function of t.
	_, err1 := s(55)
	for i := 0; i < 100; i++ {
		_, _ = s(float64(i))
	}
	_, err2 := s(55)
	if (err1 == nil) != (err2 == nil) {
		t.Errorf("decision at t=55 depends on call history: %v vs %v", err1, err2)
	}
}

func TestDropRateCalibration(t *testing.T) {
	in := NewInjector(9)
	if err := in.Set(0, Schedule{DropProb: 0.2}); err != nil {
		t.Fatal(err)
	}
	s := in.Sensor(0, constSensor(1))
	const n = 5000
	drops := 0
	for i := 0; i < n; i++ {
		if _, err := s(float64(i) * 5); errors.Is(err, nws.ErrSampleDropped) {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("drop rate %.3f far from configured 0.2", frac)
	}
	st := in.Stats(0)
	if st.Drops != drops {
		t.Errorf("Stats.Drops=%d want %d", st.Drops, drops)
	}
	if st.Total() != n {
		t.Errorf("Stats.Total=%d want %d", st.Total(), n)
	}
}

func TestOutageWindowExact(t *testing.T) {
	in := NewInjector(3)
	if err := in.Set(0, Schedule{Outages: []Window{{Start: 100, End: 200}}}); err != nil {
		t.Fatal(err)
	}
	s := in.Sensor(0, constSensor(1))
	for _, tc := range []struct {
		t    float64
		fail bool
	}{{95, false}, {100, true}, {150, true}, {195, true}, {200, false}, {205, false}} {
		_, err := s(tc.t)
		if got := errors.Is(err, nws.ErrOutage); got != tc.fail {
			t.Errorf("t=%g outage=%v want %v", tc.t, got, tc.fail)
		}
	}
	if st := in.Stats(0); st.OutageHits != 3 {
		t.Errorf("OutageHits=%d want 3", st.OutageHits)
	}
}

func TestSpikesScaleValue(t *testing.T) {
	in := NewInjector(5)
	if err := in.Set(0, Schedule{SpikeProb: 1, SpikeFactor: 4}); err != nil {
		t.Fatal(err)
	}
	s := in.Sensor(0, constSensor(0.5))
	up, down := 0, 0
	for i := 0; i < 200; i++ {
		v, err := s(float64(i) * 5)
		if err != nil {
			t.Fatalf("spike should not error: %v", err)
		}
		switch v {
		case 2.0:
			up++
		case 0.125:
			down++
		default:
			t.Fatalf("spiked value %g is neither 0.5*4 nor 0.5/4", v)
		}
	}
	if up == 0 || down == 0 {
		t.Errorf("spikes all one direction: up=%d down=%d", up, down)
	}
	if st := in.Stats(0); st.Spikes != 200 {
		t.Errorf("Spikes=%d want 200", st.Spikes)
	}
}

func TestTransientErrorsAreRetryable(t *testing.T) {
	in := NewInjector(6)
	if err := in.Set(0, Schedule{TransientProb: 1}); err != nil {
		t.Fatal(err)
	}
	s := in.Sensor(0, constSensor(1))
	_, err := s(10)
	if !nws.IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
}

func TestUnscheduledMachinePassesThrough(t *testing.T) {
	in := NewInjector(8)
	s := in.Sensor(3, constSensor(0.7))
	for i := 0; i < 50; i++ {
		v, err := s(float64(i))
		if err != nil || v != 0.7 {
			t.Fatalf("passthrough broken: v=%g err=%v", v, err)
		}
	}
	if st := in.Stats(3); st.Clean != 50 {
		t.Errorf("Clean=%d want 50", st.Clean)
	}
}

func TestCPUSensorWrapsEnv(t *testing.T) {
	plat := cluster.Platform1()
	env, err := simenv.NewDedicated(plat)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(2)
	if err := in.Set(0, Schedule{DropProb: 0.5}); err != nil {
		t.Fatal(err)
	}
	s, err := in.CPUSensor(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	clean, dropped := 0, 0
	for i := 0; i < 400; i++ {
		v, err := s(float64(i) * 5)
		if err != nil {
			dropped++
		} else {
			clean++
			if v != 1 { // dedicated machine
				t.Fatalf("clean sample %g want 1", v)
			}
		}
	}
	if clean == 0 || dropped == 0 {
		t.Errorf("expected a mix of outcomes, got clean=%d dropped=%d", clean, dropped)
	}
	if _, err := in.CPUSensor(env, 99); err == nil {
		t.Error("bad machine should fail")
	}
	if _, err := in.CPUSensor(nil, 0); err == nil {
		t.Error("nil env should fail")
	}
}

func TestTotalStats(t *testing.T) {
	in := NewInjector(4)
	for m := 0; m < 2; m++ {
		if err := in.Set(m, Schedule{DropProb: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < 2; m++ {
		s := in.Sensor(m, constSensor(1))
		for i := 0; i < 10; i++ {
			_, _ = s(float64(i))
		}
	}
	tot := in.TotalStats()
	if tot.Drops != 20 || tot.Total() != 20 {
		t.Errorf("TotalStats=%+v want 20 drops", tot)
	}
}
