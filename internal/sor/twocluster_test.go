package sor

import (
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/simenv"
)

// TestBridgeCrossingDominatesComm verifies the metacomputing scenario the
// AppLeS line of work targets: on a two-cluster platform, strips that
// straddle the slow inter-site bridge pay dramatically more communication
// than a decomposition confined to one site.
func TestBridgeCrossingDominatesComm(t *testing.T) {
	plat := cluster.TwoClusterPlatform()
	env, err := simenv.NewDedicated(plat)
	if err != nil {
		t.Fatal(err)
	}
	n := 130
	part, err := NewEqualPartition(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mapping []int) SimResult {
		g, err := NewGrid(n)
		if err != nil {
			t.Fatal(err)
		}
		g.SetBoundary(func(x, y float64) float64 { return x + y })
		b, err := NewSimBackend(env, part, mapping)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(g, DefaultOmega, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Natural order: strips 0,1 at site A and 2,3 at site B — one bridge
	// crossing between strips 1 and 2.
	oneCrossing := run([]int{0, 1, 2, 3})
	// Interleaved: every adjacent pair crosses the bridge.
	threeCrossings := run([]int{0, 2, 1, 3})
	if threeCrossings.ExecTime <= oneCrossing.ExecTime {
		t.Errorf("interleaved mapping %g should be slower than clustered %g",
			threeCrossings.ExecTime, oneCrossing.ExecTime)
	}
	commOne := oneCrossing.Phases.RedComm + oneCrossing.Phases.BlackComm
	commThree := threeCrossings.Phases.RedComm + threeCrossings.Phases.BlackComm
	if commThree < commOne*1.5 {
		t.Errorf("interleaved comm %g should dwarf clustered %g", commThree, commOne)
	}
}
