package sor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPBackend executes the strip-decomposed red-black SOR as a genuinely
// distributed program: one worker goroutine per strip, each owning only its
// strip (plus ghost rows) and exchanging boundary rows with its neighbours
// over real TCP connections (loopback). This is the closest stdlib-only
// analogue of the paper's implementation, which ran one process per
// workstation over ethernet.
//
// Numeric results are bit-identical to the Local and Sim backends: within a
// color phase every update reads only opposite-color values, so the
// distribution of rows cannot change the arithmetic.
type TCPBackend struct {
	part *Partition
}

// TCPResult reports a distributed run.
type TCPResult struct {
	Iterations int
	Residual   float64
	Elapsed    time.Duration
	// CommTime[p] is the wall-clock time worker p spent in ghost
	// exchanges; CompTime[p] the time in compute sweeps.
	CommTime []time.Duration
	CompTime []time.Duration
	// BytesSent[p] counts worker p's outgoing ghost bytes.
	BytesSent []int64
}

// NewTCPBackend validates the partition and returns a backend.
func NewTCPBackend(part *Partition) (*TCPBackend, error) {
	if part == nil {
		return nil, errors.New("sor: nil partition")
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	return &TCPBackend{part: part}, nil
}

// tcpWorker is one distributed node: its slab holds rows [lo-1, hi] of the
// global grid (one ghost row on each side).
type tcpWorker struct {
	idx      int
	lo, hi   int // absolute interior row range [lo, hi)
	n        int
	h        float64
	slab     []float64 // (hi-lo+2) x n
	fslab    []float64 // source rows, same shape (nil for Laplace)
	up, down net.Conn  // nil at the edges
	comm     time.Duration
	comp     time.Duration
	sent     atomic.Int64 // updated from concurrent send goroutines
}

func (w *tcpWorker) rows() int { return w.hi - w.lo + 2 }

// slabIndex maps an absolute grid row to a slab row.
func (w *tcpWorker) slabIndex(absRow int) int { return absRow - (w.lo - 1) }

// sweep runs one color phase over the worker's interior rows using exactly
// the same per-point update as Grid.SweepPhase.
func (w *tcpWorker) sweep(p Phase, omega float64) {
	n := w.n
	h2 := w.h * w.h
	for abs := w.lo; abs < w.hi; abs++ {
		r := w.slabIndex(abs)
		jStart := 1 + (abs+1+int(p))%2
		row := r * n
		for j := jStart; j < n-1; j += 2 {
			idx := row + j
			sum := w.slab[idx-n] + w.slab[idx+n] + w.slab[idx-1] + w.slab[idx+1]
			var f float64
			if w.fslab != nil {
				f = w.fslab[idx]
			}
			gs := 0.25 * (sum - h2*f)
			w.slab[idx] += omega * (gs - w.slab[idx])
		}
	}
}

// exchange swaps boundary rows with both neighbours. Sends run in their own
// goroutines so that blocking receives cannot deadlock against a
// full-buffer send on large rows.
func (w *tcpWorker) exchange() error {
	n := w.n
	var wg sync.WaitGroup
	sendErr := make(chan error, 2)
	send := func(conn net.Conn, absRow int) {
		defer wg.Done()
		r := w.slabIndex(absRow)
		if err := writeRow(conn, w.slab[r*n:(r+1)*n]); err != nil {
			sendErr <- err
			return
		}
		w.sent.Add(int64(8 * n))
	}
	if w.up != nil {
		wg.Add(1)
		go send(w.up, w.lo) // my first interior row becomes their bottom ghost
	}
	if w.down != nil {
		wg.Add(1)
		go send(w.down, w.hi-1)
	}
	if w.up != nil {
		r := w.slabIndex(w.lo - 1)
		if err := readRow(w.up, w.slab[r*n:(r+1)*n]); err != nil {
			return fmt.Errorf("worker %d: read from upper neighbour: %w", w.idx, err)
		}
	}
	if w.down != nil {
		r := w.slabIndex(w.hi)
		if err := readRow(w.down, w.slab[r*n:(r+1)*n]); err != nil {
			return fmt.Errorf("worker %d: read from lower neighbour: %w", w.idx, err)
		}
	}
	wg.Wait()
	select {
	case err := <-sendErr:
		return fmt.Errorf("worker %d: send: %w", w.idx, err)
	default:
	}
	return nil
}

func writeRow(conn net.Conn, row []float64) error {
	buf := make([]byte, 8*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := conn.Write(buf)
	return err
}

func readRow(conn net.Conn, row []float64) error {
	buf := make([]byte, 8*len(row))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return err
	}
	for i := range row {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// connectWorkers builds the TCP pipeline: worker i listens, worker i+1
// dials it, giving each adjacent pair one loopback connection.
func connectWorkers(p int) (up, down []net.Conn, err error) {
	up = make([]net.Conn, p)   // up[i]: connection to worker i-1
	down = make([]net.Conn, p) // down[i]: connection to worker i+1
	listeners := make([]net.Listener, p)
	defer func() {
		for _, l := range listeners {
			if l != nil {
				l.Close()
			}
		}
		if err != nil {
			for _, c := range up {
				if c != nil {
					c.Close()
				}
			}
			for _, c := range down {
				if c != nil {
					c.Close()
				}
			}
		}
	}()
	for i := 0; i < p-1; i++ {
		l, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return nil, nil, lerr
		}
		listeners[i] = l
		accepted := make(chan net.Conn, 1)
		acceptErr := make(chan error, 1)
		go func(l net.Listener) {
			c, aerr := l.Accept()
			if aerr != nil {
				acceptErr <- aerr
				return
			}
			accepted <- c
		}(l)
		dial, derr := net.Dial("tcp", l.Addr().String())
		if derr != nil {
			return nil, nil, derr
		}
		select {
		case c := <-accepted:
			down[i] = c    // worker i talks down to i+1
			up[i+1] = dial // worker i+1 talks up to i
		case aerr := <-acceptErr:
			dial.Close()
			return nil, nil, aerr
		case <-time.After(5 * time.Second):
			dial.Close()
			return nil, nil, errors.New("sor: worker connection timed out")
		}
	}
	return up, down, nil
}

// Run executes `iterations` red-black iterations distributed over TCP and
// writes the converged values back into g.
func (b *TCPBackend) Run(g *Grid, omega float64, iterations int) (TCPResult, error) {
	if g == nil {
		return TCPResult{}, errors.New("sor: nil grid")
	}
	if g.N != b.part.N {
		return TCPResult{}, fmt.Errorf("sor: grid size %d does not match partition %d", g.N, b.part.N)
	}
	if omega <= 0 || omega >= 2 {
		return TCPResult{}, fmt.Errorf("sor: omega %g outside (0,2)", omega)
	}
	if iterations <= 0 {
		return TCPResult{}, errors.New("sor: iterations must be positive")
	}
	p := b.part.P()
	up, down, err := connectWorkers(p)
	if err != nil {
		return TCPResult{}, err
	}
	defer func() {
		for i := 0; i < p; i++ {
			if up[i] != nil {
				up[i].Close()
			}
			if down[i] != nil {
				down[i].Close()
			}
		}
	}()

	n := g.N
	workers := make([]*tcpWorker, p)
	for i := 0; i < p; i++ {
		lo, hi := b.part.Bounds(i)
		w := &tcpWorker{idx: i, lo: lo, hi: hi, n: n, h: g.H, up: up[i], down: down[i]}
		w.slab = make([]float64, w.rows()*n)
		copy(w.slab, g.U[(lo-1)*n:(hi+1)*n])
		if g.F != nil {
			w.fslab = make([]float64, w.rows()*n)
			copy(w.fslab, g.F[(lo-1)*n:(hi+1)*n])
		}
		workers[i] = w
	}

	start := time.Now()
	errs := make(chan error, p)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *tcpWorker) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				for _, phase := range []Phase{Red, Black} {
					t0 := time.Now()
					w.sweep(phase, omega)
					w.comp += time.Since(t0)
					t0 = time.Now()
					if err := w.exchange(); err != nil {
						errs <- err
						// Unblock neighbours waiting on this worker so the
						// error cascades instead of deadlocking the run.
						if w.up != nil {
							w.up.Close()
						}
						if w.down != nil {
							w.down.Close()
						}
						return
					}
					w.comm += time.Since(t0)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return TCPResult{}, err
	default:
	}
	elapsed := time.Since(start)

	// Gather the interior rows back into the global grid.
	for _, w := range workers {
		copy(g.U[w.lo*n:w.hi*n], w.slab[w.slabIndex(w.lo)*n:w.slabIndex(w.hi)*n])
	}
	res := TCPResult{
		Iterations: iterations,
		Residual:   g.Residual(),
		Elapsed:    elapsed,
		CommTime:   make([]time.Duration, p),
		CompTime:   make([]time.Duration, p),
		BytesSent:  make([]int64, p),
	}
	for i, w := range workers {
		res.CommTime[i] = w.comm
		res.CompTime[i] = w.comp
		res.BytesSent[i] = w.sent.Load()
	}
	return res, nil
}
