package sor

import (
	"math"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(2); err == nil {
		t.Error("n=2 should fail")
	}
	g, err := NewGrid(5)
	if err != nil || g.N != 5 || len(g.U) != 25 {
		t.Fatalf("NewGrid: %+v err=%v", g, err)
	}
	if math.Abs(g.H-0.25) > 1e-15 {
		t.Errorf("H=%g want 0.25", g.H)
	}
}

func TestSetBoundaryAndAccessors(t *testing.T) {
	g, _ := NewGrid(4)
	g.SetBoundary(func(x, y float64) float64 { return x + 10*y })
	if got := g.At(0, 3); math.Abs(got-1) > 1e-12 { // x=1, y=0
		t.Errorf("top-right boundary=%g want 1", got)
	}
	if got := g.At(3, 0); math.Abs(got-10) > 1e-12 { // x=0, y=1
		t.Errorf("bottom-left boundary=%g want 10", got)
	}
	g.Set(1, 2, 42)
	if g.At(1, 2) != 42 {
		t.Error("Set/At mismatch")
	}
}

func TestSolveLaplaceLinearBoundaryIsExact(t *testing.T) {
	// u(x,y) = 1 + 2x + 3y is harmonic and linear, so the 5-point stencil
	// reproduces it exactly: SOR must converge to it to round-off.
	fn := func(x, y float64) float64 { return 1 + 2*x + 3*y }
	g, _ := NewGrid(33)
	g.SetBoundary(fn)
	iters, err := g.Solve(DefaultOmega, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if iters >= 10000 {
		t.Fatalf("did not converge, residual=%g", g.Residual())
	}
	if e := g.MaxErrorAgainst(fn); e > 1e-9 {
		t.Errorf("max error=%g", e)
	}
}

func TestSolveLaplaceHarmonicQuadratic(t *testing.T) {
	// u = x^2 - y^2 is harmonic; the stencil is exact for quadratics too.
	fn := func(x, y float64) float64 { return x*x - y*y }
	g, _ := NewGrid(25)
	g.SetBoundary(fn)
	if _, err := g.Solve(DefaultOmega, 1e-12, 20000); err != nil {
		t.Fatal(err)
	}
	if e := g.MaxErrorAgainst(fn); e > 1e-8 {
		t.Errorf("max error=%g", e)
	}
}

func TestSolvePoissonWithSource(t *testing.T) {
	// u = x^2 + y^2 has Laplacian 4; with f = 4 the discrete solution is
	// exact for this quadratic.
	fn := func(x, y float64) float64 { return x*x + y*y }
	g, _ := NewGrid(21)
	g.SetBoundary(fn)
	g.SetSource(func(x, y float64) float64 { return 4 })
	if _, err := g.Solve(DefaultOmega, 1e-12, 20000); err != nil {
		t.Fatal(err)
	}
	if e := g.MaxErrorAgainst(fn); e > 1e-8 {
		t.Errorf("max error=%g", e)
	}
}

func TestSolveValidation(t *testing.T) {
	g, _ := NewGrid(5)
	if _, err := g.Solve(0, 1e-6, 10); err == nil {
		t.Error("omega=0 should fail")
	}
	if _, err := g.Solve(2, 1e-6, 10); err == nil {
		t.Error("omega=2 should fail")
	}
	if _, err := g.Solve(1.5, 1e-6, 0); err == nil {
		t.Error("maxIters=0 should fail")
	}
}

func TestOptimalOmega(t *testing.T) {
	if got := OptimalOmega(2); got != DefaultOmega {
		t.Errorf("tiny grid omega=%g", got)
	}
	om := OptimalOmega(129)
	if om <= 1.9 || om >= 2 {
		t.Errorf("OptimalOmega(129)=%g want ~1.95", om)
	}
	// Larger grids need omega closer to 2.
	if OptimalOmega(500) <= OptimalOmega(50) {
		t.Error("omega should increase with N")
	}
	// The optimal omega converges dramatically faster than a generic one.
	fn := func(x, y float64) float64 { return x*x - y*y }
	run := func(omega float64) int {
		g, _ := NewGrid(65)
		g.SetBoundary(fn)
		iters, err := g.Solve(omega, 1e-10, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return iters
	}
	generic := run(DefaultOmega)
	optimal := run(OptimalOmega(65))
	if optimal*3 > generic {
		t.Errorf("optimal omega took %d iters vs generic %d", optimal, generic)
	}
}

func TestSweepPhaseCountsAndColors(t *testing.T) {
	g, _ := NewGrid(5) // interior 3x3 = 9 points: 5 of one color, 4 of the other
	red := g.SweepPhase(Red, 1, 4, 1.0)
	black := g.SweepPhase(Black, 1, 4, 1.0)
	if red+black != 9 {
		t.Fatalf("red=%d black=%d sum should be 9", red, black)
	}
	if red != 4 && red != 5 {
		t.Errorf("red=%d", red)
	}
	// Clamped bounds.
	if got := g.SweepPhase(Red, -10, 100, 1.0); got != red {
		t.Errorf("clamped sweep=%d want %d", got, red)
	}
	// Empty range.
	if got := g.SweepPhase(Red, 2, 2, 1.0); got != 0 {
		t.Errorf("empty sweep=%d", got)
	}
}

func TestRedBlackIndependenceWithinPhase(t *testing.T) {
	// Sweeping the red half in two strips (in either order) must equal a
	// single full red sweep: red points never read red points.
	mk := func() *Grid {
		g, _ := NewGrid(17)
		g.SetBoundary(func(x, y float64) float64 { return math.Sin(3*x) + y })
		// Seed the interior deterministically.
		for i := 1; i < 16; i++ {
			for j := 1; j < 16; j++ {
				g.Set(i, j, float64(i*31+j*7%13)/10)
			}
		}
		return g
	}
	whole := mk()
	whole.SweepPhase(Red, 1, 16, 1.4)
	split := mk()
	split.SweepPhase(Red, 8, 16, 1.4) // bottom strip first
	split.SweepPhase(Red, 1, 8, 1.4)
	for i := range whole.U {
		if whole.U[i] != split.U[i] {
			t.Fatalf("strip order changed red sweep at %d: %g vs %g", i, whole.U[i], split.U[i])
		}
	}
}

func TestResidualZeroForExactSolution(t *testing.T) {
	fn := func(x, y float64) float64 { return 2 + x - y }
	g, _ := NewGrid(9)
	g.SetBoundary(fn)
	for i := 1; i < 8; i++ {
		for j := 1; j < 8; j++ {
			g.Set(i, j, fn(float64(j)*g.H, float64(i)*g.H))
		}
	}
	if r := g.Residual(); r > 1e-12 {
		t.Errorf("residual=%g want ~0", r)
	}
}

func TestClone(t *testing.T) {
	g, _ := NewGrid(5)
	g.SetSource(func(x, y float64) float64 { return 1 })
	g.Set(2, 2, 7)
	c := g.Clone()
	c.Set(2, 2, 9)
	c.F[0] = 5
	if g.At(2, 2) != 7 || g.F[0] != 1 {
		t.Error("Clone aliases the original")
	}
	gn, _ := NewGrid(5)
	cn := gn.Clone()
	if cn.F != nil {
		t.Error("Clone of nil source should stay nil")
	}
}

func TestInteriorPoints(t *testing.T) {
	g, _ := NewGrid(10)
	if g.InteriorPoints() != 64 {
		t.Errorf("InteriorPoints=%d", g.InteriorPoints())
	}
}

func TestPhaseString(t *testing.T) {
	if Red.String() != "red" || Black.String() != "black" {
		t.Error("phase strings")
	}
}
