package sor

import (
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/simenv"
)

func laplaceProblem(t *testing.T, n int) *Grid {
	t.Helper()
	g, err := NewGrid(n)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBoundary(func(x, y float64) float64 { return x*x - y*y })
	return g
}

func TestLocalBackendMatchesSequential(t *testing.T) {
	n := 65
	seq := laplaceProblem(t, n)
	for it := 0; it < 50; it++ {
		seq.SweepPhase(Red, 1, n-1, DefaultOmega)
		seq.SweepPhase(Black, 1, n-1, DefaultOmega)
	}
	par := laplaceProblem(t, n)
	pt, err := NewEqualPartition(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLocalBackend(pt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(par, DefaultOmega, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 50 {
		t.Errorf("iterations=%d", res.Iterations)
	}
	for i := range seq.U {
		if seq.U[i] != par.U[i] {
			t.Fatalf("parallel differs from sequential at %d: %g vs %g", i, seq.U[i], par.U[i])
		}
	}
}

func TestLocalBackendConvergesEarly(t *testing.T) {
	g := laplaceProblem(t, 33)
	pt, _ := NewEqualPartition(33, 2)
	b, _ := NewLocalBackend(pt)
	res, err := b.Run(g, DefaultOmega, 100000, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100000 {
		t.Error("did not converge")
	}
	if res.Residual >= 1e-10 {
		t.Errorf("residual=%g", res.Residual)
	}
	if e := g.MaxErrorAgainst(func(x, y float64) float64 { return x*x - y*y }); e > 1e-7 {
		t.Errorf("solution error=%g", e)
	}
}

func TestLocalBackendValidation(t *testing.T) {
	pt, _ := NewEqualPartition(10, 2)
	if _, err := NewLocalBackend(nil); err == nil {
		t.Error("nil partition should fail")
	}
	bad, _ := NewEqualPartition(10, 2)
	bad.Rows[0] = 0
	if _, err := NewLocalBackend(bad); err == nil {
		t.Error("invalid partition should fail")
	}
	b, _ := NewLocalBackend(pt)
	g, _ := NewGrid(12)
	if _, err := b.Run(g, DefaultOmega, 10, 0); err == nil {
		t.Error("grid/partition mismatch should fail")
	}
	g10, _ := NewGrid(10)
	if _, err := b.Run(nil, DefaultOmega, 10, 0); err == nil {
		t.Error("nil grid should fail")
	}
	if _, err := b.Run(g10, 2.5, 10, 0); err == nil {
		t.Error("bad omega should fail")
	}
	if _, err := b.Run(g10, DefaultOmega, 0, 0); err == nil {
		t.Error("zero iterations should fail")
	}
}

func TestBenchmarkElement(t *testing.T) {
	bm, err := BenchmarkElement(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bm <= 0 || bm > 1e-3 {
		t.Errorf("per-element time=%g s", bm)
	}
	if _, err := BenchmarkElement(2, 3); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := BenchmarkElement(64, 0); err == nil {
		t.Error("zero sweeps should fail")
	}
}

func dedicatedSimEnv(t *testing.T) *simenv.Env {
	t.Helper()
	env, err := simenv.NewDedicated(cluster.Platform1())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSimBackendValidation(t *testing.T) {
	env := dedicatedSimEnv(t)
	pt, _ := NewEqualPartition(66, 4)
	if _, err := NewSimBackend(nil, pt, IdentityMapping(4)); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := NewSimBackend(env, nil, nil); err == nil {
		t.Error("nil partition should fail")
	}
	if _, err := NewSimBackend(env, pt, IdentityMapping(3)); err == nil {
		t.Error("mapping length mismatch should fail")
	}
	if _, err := NewSimBackend(env, pt, []int{0, 1, 2, 9}); err == nil {
		t.Error("bad machine index should fail")
	}
	bad, _ := NewEqualPartition(66, 4)
	bad.Rows[0] = 0
	if _, err := NewSimBackend(env, bad, IdentityMapping(4)); err == nil {
		t.Error("invalid partition should fail")
	}
	b, err := NewSimBackend(env, pt, IdentityMapping(4))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGrid(50)
	if _, err := b.Run(g, DefaultOmega, 5, 0); err == nil {
		t.Error("size mismatch should fail")
	}
	g66, _ := NewGrid(66)
	if _, err := b.Run(nil, DefaultOmega, 5, 0); err == nil {
		t.Error("nil grid should fail")
	}
	if _, err := b.Run(g66, 0, 5, 0); err == nil {
		t.Error("bad omega should fail")
	}
	if _, err := b.Run(g66, DefaultOmega, 0, 0); err == nil {
		t.Error("zero iterations should fail")
	}
}

func TestSimBackendNumericsMatchLocal(t *testing.T) {
	n := 34
	env := dedicatedSimEnv(t)
	pt, _ := NewEqualPartition(n, 4)

	gSim := laplaceProblem(t, n)
	sb, err := NewSimBackend(env, pt, IdentityMapping(4))
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sb.Run(gSim, DefaultOmega, 40, 0)
	if err != nil {
		t.Fatal(err)
	}

	gLoc := laplaceProblem(t, n)
	lb, _ := NewLocalBackend(pt)
	if _, err := lb.Run(gLoc, DefaultOmega, 40, 0); err != nil {
		t.Fatal(err)
	}
	for i := range gSim.U {
		if gSim.U[i] != gLoc.U[i] {
			t.Fatalf("sim numerics differ from local at %d", i)
		}
	}
	if simRes.ExecTime <= 0 {
		t.Errorf("ExecTime=%g", simRes.ExecTime)
	}
	if len(simRes.IterationEnd) != 40 {
		t.Errorf("IterationEnd entries=%d", len(simRes.IterationEnd))
	}
}

func TestSimBackendDedicatedTimingSanity(t *testing.T) {
	// On a dedicated platform the slowest machine dominates: with equal
	// strips on Platform 1, the Sparc-2 at 0.5e6 elem/s and strip of
	// (n-2)/4 rows bounds each compute phase.
	n := 402
	env := dedicatedSimEnv(t)
	pt, _ := NewEqualPartition(n, 4)
	g := laplaceProblem(t, n)
	sb, _ := NewSimBackend(env, pt, IdentityMapping(4))
	iters := 10
	res, err := sb.Run(g, DefaultOmega, iters, 0)
	if err != nil {
		t.Fatal(err)
	}
	stripElems := float64(pt.Elems(0)) // 100 rows * 400 cols
	perPhase := stripElems / 2 / 0.5e6 // sparc2 rate
	wantCompute := perPhase * 2 * float64(iters)
	if res.Phases.RedComp+res.Phases.BlackComp < wantCompute*0.99 {
		t.Errorf("compute time %g want >= %g", res.Phases.RedComp+res.Phases.BlackComp, wantCompute*0.99)
	}
	if res.ExecTime < wantCompute {
		t.Errorf("ExecTime %g below compute bound %g", res.ExecTime, wantCompute)
	}
}

func TestSimBackendPhasesMatchExecWhenBalanced(t *testing.T) {
	// When strips are weighted by machine capacity (footnote 2 of the
	// paper), the per-phase Max decomposition should reconstruct the
	// end-to-end time closely — this is exactly the structural model's
	// assumption.
	n := 402
	env := dedicatedSimEnv(t)
	pt, err := NewWeightedPartition(n, []float64{1, 1, 2.5, 3.5})
	if err != nil {
		t.Fatal(err)
	}
	g := laplaceProblem(t, n)
	sb, _ := NewSimBackend(env, pt, IdentityMapping(4))
	res, err := sb.Run(g, DefaultOmega, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total := res.Phases.Total(); total < res.ExecTime*0.9 || total > res.ExecTime*1.15 {
		t.Errorf("phase total %g vs exec %g", total, res.ExecTime)
	}
}

func TestSimBackendSkewBoundedOnDedicated(t *testing.T) {
	// With equal strips and equal machines there is almost no skew.
	n := 66
	machines := []cluster.Machine{
		cluster.Sparc5("a"), cluster.Sparc5("b"), cluster.Sparc5("c"), cluster.Sparc5("d"),
	}
	plat, err := cluster.NewPlatform("uniform", machines, cluster.Ethernet10Mbit())
	if err != nil {
		t.Fatal(err)
	}
	env, err := simenv.NewDedicated(plat)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := NewEqualPartition(n, 4)
	g := laplaceProblem(t, n)
	sb, _ := NewSimBackend(env, pt, IdentityMapping(4))
	res, err := sb.Run(g, DefaultOmega, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Interior strips pay two transfers, edge strips one, so a small skew
	// of order a couple of ghost-row transfer times is expected; it must
	// not accumulate beyond ~P transfer+latency units.
	ghostTime := pt.GhostRowBytes()/1.25e6 + 1e-3
	if res.MaxSkew > 4*2*ghostTime {
		t.Errorf("MaxSkew=%g want <= %g", res.MaxSkew, 4*2*ghostTime)
	}
}

func TestSimBackendSkewGrowsUnderUnevenLoad(t *testing.T) {
	// Loading one machine heavily must increase both skew and exec time.
	n := 66
	plat := cluster.Platform1()
	ded := load.Dedicated()
	slow := load.NewConstant(0.2)
	envLoaded, err := simenv.New(plat, []load.Process{slow, ded, ded, ded}, ded)
	if err != nil {
		t.Fatal(err)
	}
	envClean := dedicatedSimEnv(t)
	pt, _ := NewEqualPartition(n, 4)
	run := func(env *simenv.Env) SimResult {
		g := laplaceProblem(t, n)
		sb, err := NewSimBackend(env, pt, IdentityMapping(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.Run(g, DefaultOmega, 15, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(envClean)
	loaded := run(envLoaded)
	if loaded.ExecTime <= clean.ExecTime {
		t.Errorf("loaded exec %g should exceed clean %g", loaded.ExecTime, clean.ExecTime)
	}
}

func TestSimBackendSameMachineTransfersFree(t *testing.T) {
	// Mapping all strips to one machine removes network cost entirely.
	n := 42
	env := dedicatedSimEnv(t)
	pt, _ := NewEqualPartition(n, 4)
	g := laplaceProblem(t, n)
	sb, err := NewSimBackend(env, pt, []int{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sb.Run(g, DefaultOmega, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.RedComm != 0 || res.Phases.BlackComm != 0 {
		t.Errorf("comm should be free on one machine: %+v", res.Phases)
	}
}

func TestIdentityMapping(t *testing.T) {
	m := IdentityMapping(3)
	if len(m) != 3 || m[0] != 0 || m[2] != 2 {
		t.Errorf("IdentityMapping=%v", m)
	}
}
