package sor

import (
	"net"
	"testing"
	"time"
)

func TestNewTCPBackendValidation(t *testing.T) {
	if _, err := NewTCPBackend(nil); err == nil {
		t.Error("nil partition should fail")
	}
	bad, _ := NewEqualPartition(10, 2)
	bad.Rows[0] = 0
	if _, err := NewTCPBackend(bad); err == nil {
		t.Error("invalid partition should fail")
	}
	good, _ := NewEqualPartition(10, 2)
	if _, err := NewTCPBackend(good); err != nil {
		t.Errorf("valid partition failed: %v", err)
	}
}

func TestTCPBackendRunValidation(t *testing.T) {
	part, _ := NewEqualPartition(10, 2)
	b, _ := NewTCPBackend(part)
	g12, _ := NewGrid(12)
	if _, err := b.Run(nil, DefaultOmega, 5); err == nil {
		t.Error("nil grid should fail")
	}
	if _, err := b.Run(g12, DefaultOmega, 5); err == nil {
		t.Error("size mismatch should fail")
	}
	g10, _ := NewGrid(10)
	if _, err := b.Run(g10, 0, 5); err == nil {
		t.Error("bad omega should fail")
	}
	if _, err := b.Run(g10, DefaultOmega, 0); err == nil {
		t.Error("zero iterations should fail")
	}
}

func TestTCPBackendMatchesSequential(t *testing.T) {
	n := 65
	iters := 30
	seq := laplaceProblem(t, n)
	for it := 0; it < iters; it++ {
		seq.SweepPhase(Red, 1, n-1, DefaultOmega)
		seq.SweepPhase(Black, 1, n-1, DefaultOmega)
	}

	dist := laplaceProblem(t, n)
	part, err := NewEqualPartition(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPBackend(part)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(dist, DefaultOmega, iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.U {
		if seq.U[i] != dist.U[i] {
			t.Fatalf("TCP run differs from sequential at %d: %g vs %g",
				i, seq.U[i], dist.U[i])
		}
	}
	if res.Iterations != iters {
		t.Errorf("iterations=%d", res.Iterations)
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed=%v", res.Elapsed)
	}
}

func TestTCPBackendWithSourceTerm(t *testing.T) {
	n := 33
	fn := func(x, y float64) float64 { return x*x + y*y }
	mk := func() *Grid {
		g, _ := NewGrid(n)
		g.SetBoundary(fn)
		g.SetSource(func(x, y float64) float64 { return 4 })
		return g
	}
	seq := mk()
	for it := 0; it < 25; it++ {
		seq.SweepPhase(Red, 1, n-1, DefaultOmega)
		seq.SweepPhase(Black, 1, n-1, DefaultOmega)
	}
	dist := mk()
	part, _ := NewEqualPartition(n, 3)
	b, _ := NewTCPBackend(part)
	if _, err := b.Run(dist, DefaultOmega, 25); err != nil {
		t.Fatal(err)
	}
	for i := range seq.U {
		if seq.U[i] != dist.U[i] {
			t.Fatalf("Poisson TCP run differs at %d", i)
		}
	}
}

func TestTCPBackendSingleWorker(t *testing.T) {
	// Degenerate one-strip case: no connections at all.
	n := 20
	part, err := NewEqualPartition(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPBackend(part)
	if err != nil {
		t.Fatal(err)
	}
	g := laplaceProblem(t, n)
	res, err := b.Run(g, DefaultOmega, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesSent[0] != 0 {
		t.Errorf("single worker sent %d bytes", res.BytesSent[0])
	}
	if res.CommTime[0] > res.Elapsed {
		t.Errorf("comm %v exceeds elapsed %v", res.CommTime[0], res.Elapsed)
	}
}

func TestTCPBackendAccounting(t *testing.T) {
	n := 42
	iters := 8
	part, _ := NewEqualPartition(n, 3)
	b, _ := NewTCPBackend(part)
	g := laplaceProblem(t, n)
	res, err := b.Run(g, DefaultOmega, iters)
	if err != nil {
		t.Fatal(err)
	}
	// Edge workers exchange with one neighbour, interior with two. Each
	// phase sends one ghost row (n float64s) per neighbour.
	rowBytes := int64(8 * n)
	perPhase := []int64{1, 2, 1} // neighbours per worker
	for i, nb := range perPhase {
		want := rowBytes * nb * int64(2*iters) // red + black phases
		if res.BytesSent[i] != want {
			t.Errorf("worker %d sent %d bytes want %d", i, res.BytesSent[i], want)
		}
		if res.CompTime[i] <= 0 {
			t.Errorf("worker %d comp time %v", i, res.CompTime[i])
		}
	}
	if res.Residual <= 0 {
		t.Errorf("residual=%g (should still be relaxing after %d iters)", res.Residual, iters)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	row := []float64{1.5, -2.25, 0, 1e300, -1e-300}
	done := make(chan error, 1)
	go func() { done <- writeRow(a, row) }()
	got := make([]float64, len(row))
	if err := readRow(b, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatalf("round trip[%d]=%g want %g", i, got[i], row[i])
		}
	}
}

func TestRowCodecErrorsOnClosedConn(t *testing.T) {
	a, b := net.Pipe()
	a.Close()
	b.Close()
	if err := writeRow(a, []float64{1}); err == nil {
		t.Error("write to closed conn should fail")
	}
	if err := readRow(b, make([]float64, 1)); err == nil {
		t.Error("read from closed conn should fail")
	}
}

// TestWorkerExchangeFailureCascades injects a mid-run connection failure
// and verifies the error surfaces instead of deadlocking the peers.
func TestWorkerExchangeFailureCascades(t *testing.T) {
	n := 10
	w1 := &tcpWorker{idx: 0, lo: 1, hi: 5, n: n, h: 1.0 / float64(n-1)}
	w2 := &tcpWorker{idx: 1, lo: 5, hi: 9, n: n, h: w1.h}
	w1.slab = make([]float64, w1.rows()*n)
	w2.slab = make([]float64, w2.rows()*n)
	c1, c2 := net.Pipe()
	w1.down = c1
	w2.up = c2

	// First exchange succeeds.
	errs := make(chan error, 2)
	go func() { errs <- w1.exchange() }()
	go func() { errs <- w2.exchange() }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("healthy exchange failed: %v", err)
		}
	}
	// Kill the pipe; the next exchange must error out promptly on both
	// sides rather than hang.
	c1.Close()
	c2.Close()
	go func() { errs <- w1.exchange() }()
	go func() { errs <- w2.exchange() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("exchange over dead pipe should fail")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("exchange deadlocked on dead pipe")
		}
	}
}

func TestTCPBackendConvergesToAnalytic(t *testing.T) {
	n := 33
	fn := func(x, y float64) float64 { return 1 + 2*x - y }
	g, _ := NewGrid(n)
	g.SetBoundary(fn)
	part, _ := NewEqualPartition(n, 4)
	b, _ := NewTCPBackend(part)
	if _, err := b.Run(g, DefaultOmega, 3000); err != nil {
		t.Fatal(err)
	}
	if e := g.MaxErrorAgainst(fn); e > 1e-8 {
		t.Errorf("max error after distributed solve=%g", e)
	}
}
