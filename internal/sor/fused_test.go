package sor

import (
	"math"
	"testing"
)

// sweepPhaseGeneric is the original, unspecialized half-sweep: per-point
// source-term branch, no neighbor reuse. The specialized kernels must match
// it bit for bit.
func sweepPhaseGeneric(g *Grid, p Phase, rowLo, rowHi int, omega float64) int {
	n := g.N
	if rowLo < 1 {
		rowLo = 1
	}
	if rowHi > n-1 {
		rowHi = n - 1
	}
	h2 := g.H * g.H
	count := 0
	for i := rowLo; i < rowHi; i++ {
		jStart := 1 + (i+1+int(p))%2
		row := i * n
		for j := jStart; j < n-1; j += 2 {
			idx := row + j
			sum := g.U[idx-n] + g.U[idx+n] + g.U[idx-1] + g.U[idx+1]
			var f float64
			if g.F != nil {
				f = g.F[idx]
			}
			gs := 0.25 * (sum - h2*f)
			g.U[idx] += omega * (gs - g.U[idx])
			count++
		}
	}
	return count
}

// residualGeneric is the original full-interior residual with the per-point
// source-term branch, optionally restricted to one color.
func residualGeneric(g *Grid, only *Phase, rowLo, rowHi int) float64 {
	n := g.N
	if rowLo < 1 {
		rowLo = 1
	}
	if rowHi > n-1 {
		rowHi = n - 1
	}
	h2 := g.H * g.H
	worst := 0.0
	for i := rowLo; i < rowHi; i++ {
		row := i * n
		for j := 1; j < n-1; j++ {
			if only != nil && (i+j)%2 != int(*only) {
				continue
			}
			idx := row + j
			var f float64
			if g.F != nil {
				f = g.F[idx]
			}
			r := g.U[idx-n] + g.U[idx+n] + g.U[idx-1] + g.U[idx+1] - 4*g.U[idx] - h2*f
			if r < 0 {
				r = -r
			}
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}

// kernelCase is one problem configuration for the bit-identity tables.
type kernelCase struct {
	name   string
	n      int
	omega  float64
	source func(x, y float64) float64 // nil => Laplace fast path
}

func kernelCases() []kernelCase {
	return []kernelCase{
		{name: "laplace-small", n: 9, omega: 1.0},
		{name: "laplace-odd", n: 33, omega: DefaultOmega},
		{name: "laplace-even", n: 34, omega: 1.9},
		{name: "poisson-small", n: 9, omega: 1.0,
			source: func(x, y float64) float64 { return 4 }},
		{name: "poisson-wavy", n: 33, omega: DefaultOmega,
			source: func(x, y float64) float64 { return math.Sin(5*x) * math.Cos(3*y) }},
		{name: "poisson-even", n: 34, omega: 1.2,
			source: func(x, y float64) float64 { return x*y - 1 }},
	}
}

// kernelGrid builds a deterministic non-trivial grid for a case.
func kernelGrid(t *testing.T, c kernelCase) *Grid {
	t.Helper()
	g, err := NewGrid(c.n)
	if err != nil {
		t.Fatal(err)
	}
	g.SetBoundary(func(x, y float64) float64 { return math.Sin(2*x) + y*y })
	for i := 1; i < c.n-1; i++ {
		for j := 1; j < c.n-1; j++ {
			g.Set(i, j, float64((i*37+j*11)%19)/7-1)
		}
	}
	if c.source != nil {
		g.SetSource(c.source)
	}
	return g
}

func sameU(t *testing.T, name string, want, got *Grid) {
	t.Helper()
	for i := range want.U {
		if want.U[i] != got.U[i] {
			t.Fatalf("%s: U differs at %d: %g vs %g", name, i, want.U[i], got.U[i])
		}
	}
}

func TestSpecializedSweepMatchesGeneric(t *testing.T) {
	for _, c := range kernelCases() {
		t.Run(c.name, func(t *testing.T) {
			ref := kernelGrid(t, c)
			fast := kernelGrid(t, c)
			for it := 0; it < 5; it++ {
				for _, p := range []Phase{Red, Black} {
					wantN := sweepPhaseGeneric(ref, p, 1, c.n-1, c.omega)
					gotN := fast.SweepPhase(p, 1, c.n-1, c.omega)
					if wantN != gotN {
						t.Fatalf("iter %d %v: count %d vs generic %d", it, p, gotN, wantN)
					}
				}
				sameU(t, c.name, ref, fast)
				wantR := residualGeneric(ref, nil, 1, c.n-1)
				if gotR := fast.Residual(); gotR != wantR {
					t.Fatalf("iter %d: Residual %g vs generic %g", it, gotR, wantR)
				}
			}
		})
	}
}

func TestSweepPhaseResidualMatchesGeneric(t *testing.T) {
	for _, c := range kernelCases() {
		t.Run(c.name, func(t *testing.T) {
			ref := kernelGrid(t, c)
			fused := kernelGrid(t, c)
			for it := 0; it < 5; it++ {
				sweepPhaseGeneric(ref, Red, 1, c.n-1, c.omega)
				fused.SweepPhase(Red, 1, c.n-1, c.omega)

				wantN := sweepPhaseGeneric(ref, Black, 1, c.n-1, c.omega)
				gotN, blackR := fused.SweepPhaseResidual(Black, 1, c.n-1, c.omega)
				if gotN != wantN {
					t.Fatalf("iter %d: fused count %d vs generic %d", it, gotN, wantN)
				}
				sameU(t, c.name, ref, fused)

				// The fused black residual must equal a separate black-only
				// pass, and combined with the red half must reproduce the
				// full generic residual exactly.
				black := Black
				if want := residualGeneric(ref, &black, 1, c.n-1); blackR != want {
					t.Fatalf("iter %d: fused black residual %g vs generic %g", it, blackR, want)
				}
				red := Red
				redR := fused.ResidualPhase(Red, 1, c.n-1)
				if want := residualGeneric(ref, &red, 1, c.n-1); redR != want {
					t.Fatalf("iter %d: red ResidualPhase %g vs generic %g", it, redR, want)
				}
				full := redR
				if blackR > full {
					full = blackR
				}
				if want := residualGeneric(ref, nil, 1, c.n-1); full != want {
					t.Fatalf("iter %d: combined residual %g vs generic %g", it, full, want)
				}
			}
		})
	}
}

func TestResidualPhasePartialRows(t *testing.T) {
	for _, c := range kernelCases() {
		t.Run(c.name, func(t *testing.T) {
			g := kernelGrid(t, c)
			g.SweepPhase(Red, 1, c.n-1, c.omega)
			for _, p := range []Phase{Red, Black} {
				p := p
				for _, rows := range [][2]int{{1, c.n - 1}, {2, 5}, {c.n / 2, c.n - 1}, {3, 3}} {
					want := residualGeneric(g, &p, rows[0], rows[1])
					if got := g.ResidualPhase(p, rows[0], rows[1]); got != want {
						t.Fatalf("%v rows %v: %g vs generic %g", p, rows, got, want)
					}
				}
			}
		})
	}
}

func TestGridReset(t *testing.T) {
	fresh := func() *Grid {
		g, _ := NewGrid(12)
		g.SetBoundary(func(x, y float64) float64 { return 1 + x - 2*y })
		g.SetSource(func(x, y float64) float64 { return x + y })
		return g
	}
	g := fresh()
	g.SweepPhase(Red, 1, 11, 1.5)
	g.SweepPhase(Black, 1, 11, 1.5)
	g.Reset()
	want := fresh()
	sameU(t, "reset", want, g)
	for i := range want.F {
		if g.F[i] != want.F[i] {
			t.Fatalf("Reset clobbered source at %d", i)
		}
	}
	// A solve on a reset grid must match a solve on a fresh grid exactly.
	if _, err := g.Solve(DefaultOmega, 1e-9, 10000); err != nil {
		t.Fatal(err)
	}
	if _, err := want.Solve(DefaultOmega, 1e-9, 10000); err != nil {
		t.Fatal(err)
	}
	sameU(t, "reset-solve", want, g)
}

func TestLocalBackendReuseAndClose(t *testing.T) {
	n := 33
	pt, _ := NewEqualPartition(n, 3)
	b, err := NewLocalBackend(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Two runs on the same persistent pool must both match the sequential
	// kernel.
	for run := 0; run < 2; run++ {
		seq := laplaceProblem(t, n)
		for it := 0; it < 20; it++ {
			seq.SweepPhase(Red, 1, n-1, DefaultOmega)
			seq.SweepPhase(Black, 1, n-1, DefaultOmega)
		}
		par := laplaceProblem(t, n)
		if _, err := b.Run(par, DefaultOmega, 20, 0); err != nil {
			t.Fatal(err)
		}
		sameU(t, "pool-run", seq, par)
	}
	b.Close()
	b.Close() // idempotent
	if _, err := b.Run(laplaceProblem(t, n), DefaultOmega, 1, 0); err == nil {
		t.Error("Run after Close should fail")
	}
	// Close on a never-started backend is a no-op.
	b2, _ := NewLocalBackend(pt)
	b2.Close()
}

func TestLocalBackendResidualMatchesSequential(t *testing.T) {
	// The pool's fused residual decomposition (black fused + interior red +
	// edge-row red) must agree exactly with the sequential full pass, for
	// strip counts that produce 1-row and multi-row strips.
	for _, strips := range []int{1, 2, 4, 7} {
		n := 17
		seq := laplaceProblem(t, n)
		for it := 0; it < 9; it++ {
			seq.SweepPhase(Red, 1, n-1, DefaultOmega)
			seq.SweepPhase(Black, 1, n-1, DefaultOmega)
		}
		want := seq.Residual()

		par := laplaceProblem(t, n)
		pt, err := NewEqualPartition(n, strips)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewLocalBackend(pt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(par, DefaultOmega, 9, 0)
		b.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Residual != want {
			t.Errorf("strips=%d: residual %g vs sequential %g", strips, res.Residual, want)
		}
		sameU(t, "resid-run", seq, par)
	}
}
