package sor

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEqualPartition(t *testing.T) {
	pt, err := NewEqualPartition(10, 4) // 8 interior rows over 4 procs
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range pt.Rows {
		if r != 2 {
			t.Errorf("Rows=%v want all 2", pt.Rows)
		}
	}
	lo, hi := pt.Bounds(0)
	if lo != 1 || hi != 3 {
		t.Errorf("Bounds(0)=%d,%d", lo, hi)
	}
	lo, hi = pt.Bounds(3)
	if lo != 7 || hi != 9 {
		t.Errorf("Bounds(3)=%d,%d", lo, hi)
	}
}

func TestNewEqualPartitionRemainder(t *testing.T) {
	pt, err := NewEqualPartition(12, 4) // 10 rows over 4: 3,3,2,2 in some order
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, r := range pt.Rows {
		sum += r
		if r < 2 || r > 3 {
			t.Errorf("Rows=%v", pt.Rows)
		}
	}
	if sum != 10 {
		t.Errorf("sum=%d", sum)
	}
}

func TestNewWeightedPartitionProportional(t *testing.T) {
	// Weights 1:3 over 8 rows -> 2 and 6.
	pt, err := NewWeightedPartition(10, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Rows[0] != 2 || pt.Rows[1] != 6 {
		t.Errorf("Rows=%v want [2 6]", pt.Rows)
	}
}

func TestNewWeightedPartitionFloors(t *testing.T) {
	// A zero-weight processor still receives one row.
	pt, err := NewWeightedPartition(10, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Rows[0] != 1 || pt.Rows[1] != 7 {
		t.Errorf("Rows=%v want [1 7]", pt.Rows)
	}
	if err := pt.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewWeightedPartitionValidation(t *testing.T) {
	if _, err := NewWeightedPartition(10, nil); err == nil {
		t.Error("no processors should fail")
	}
	if _, err := NewWeightedPartition(2, []float64{1}); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := NewWeightedPartition(5, []float64{1, 1, 1, 1}); err == nil {
		t.Error("more procs than rows should fail")
	}
	if _, err := NewWeightedPartition(10, []float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewWeightedPartition(10, []float64{0, 0}); err == nil {
		t.Error("zero weights should fail")
	}
}

func TestPartitionElems(t *testing.T) {
	pt, _ := NewEqualPartition(10, 4)
	if pt.Elems(0) != 2*8 {
		t.Errorf("Elems=%d", pt.Elems(0))
	}
	if pt.TotalElems() != 64 {
		t.Errorf("TotalElems=%d", pt.TotalElems())
	}
	if pt.GhostRowBytes() != 64 {
		t.Errorf("GhostRowBytes=%g", pt.GhostRowBytes())
	}
	if pt.P() != 4 {
		t.Errorf("P=%d", pt.P())
	}
}

func TestPartitionValidateCatchesCorruption(t *testing.T) {
	pt, _ := NewEqualPartition(10, 4)
	pt.Rows[0] = 0
	if err := pt.Validate(); err == nil {
		t.Error("zero-row strip should fail validation")
	}
	pt.Rows[0] = 5
	if err := pt.Validate(); err == nil {
		t.Error("over-covering rows should fail validation")
	}
}

func TestPartitionRender(t *testing.T) {
	pt, _ := NewEqualPartition(10, 2)
	out := pt.Render()
	if !strings.Contains(out, "P1") || !strings.Contains(out, "P2") {
		t.Errorf("render missing processors:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Error("render missing bars")
	}
}

// Property: for any valid inputs, strips cover the interior exactly, in
// order, with >= 1 row each.
func TestWeightedPartitionCoverageProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8, w1, w2, w3 float64) bool {
		p := int(pRaw%3) + 1
		n := int(nRaw%60) + p + 3
		ws := []float64{abs1(w1) + 0.001, abs1(w2) + 0.001, abs1(w3) + 0.001}[:p]
		pt, err := NewWeightedPartition(n, ws)
		if err != nil {
			return false
		}
		if pt.Validate() != nil {
			return false
		}
		// Bounds tile [1, n-1).
		next := 1
		for i := 0; i < p; i++ {
			lo, hi := pt.Bounds(i)
			if lo != next || hi <= lo {
				return false
			}
			next = hi
		}
		return next == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func abs1(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x > 100 {
		x /= 100
	}
	if x != x { // NaN
		return 1
	}
	return x
}
