// Package sor implements the paper's driving application: distributed
// Red-Black Successive Over-Relaxation on an NxN grid with a strip
// decomposition (Figure 6).
//
// The numeric kernel is real — it solves the Poisson problem
// ∇²u = f with Dirichlet boundaries and is verified against analytic
// solutions — and two execution backends share it:
//
//   - LocalBackend runs the strips in parallel goroutines on the host
//     (a genuine shared-memory parallel SOR), and
//   - SimBackend replays the same computation against a simulated
//     production platform (internal/simenv), charging virtual time for each
//     red/black compute phase and each ghost-row exchange, including the
//     loose-synchronization skew of Figure 7.
//
// Both backends produce bit-identical numeric results; they differ only in
// where the time comes from.
package sor

import (
	"errors"
	"fmt"
	"math"
)

// DefaultOmega is the over-relaxation factor used when none is given.
// The optimal omega for the model problem approaches 2/(1+sin(pi/N)); 1.5
// is a robust middle ground across the paper's problem sizes.
const DefaultOmega = 1.5

// OptimalOmega returns the asymptotically optimal over-relaxation factor
// for the model Poisson problem on an n x n grid,
// 2 / (1 + sin(pi/(n-1))), which reduces the iteration count from O(N^2)
// (Gauss-Seidel) to O(N).
func OptimalOmega(n int) float64 {
	if n < 3 {
		return DefaultOmega
	}
	return 2 / (1 + math.Sin(math.Pi/float64(n-1)))
}

// Grid is an NxN solution grid with Dirichlet boundary values held in the
// outermost ring. Interior points are (1..N-2)x(1..N-2).
type Grid struct {
	N int
	U []float64 // row-major NxN
	F []float64 // source term, row-major NxN (nil means Laplace: f == 0)
	H float64   // mesh spacing
}

// NewGrid allocates an N x N grid (N >= 3) with zero values and unit
// domain, i.e. h = 1/(N-1).
func NewGrid(n int) (*Grid, error) {
	if n < 3 {
		return nil, fmt.Errorf("sor: grid size %d too small (need >= 3)", n)
	}
	return &Grid{
		N: n,
		U: make([]float64, n*n),
		H: 1 / float64(n-1),
	}, nil
}

// At returns u(i, j).
func (g *Grid) At(i, j int) float64 { return g.U[i*g.N+j] }

// Set assigns u(i, j).
func (g *Grid) Set(i, j int, v float64) { g.U[i*g.N+j] = v }

// SetBoundary fills the outer ring with fn(x, y), where x = j*h, y = i*h.
func (g *Grid) SetBoundary(fn func(x, y float64) float64) {
	n := g.N
	for k := 0; k < n; k++ {
		g.Set(0, k, fn(float64(k)*g.H, 0))
		g.Set(n-1, k, fn(float64(k)*g.H, float64(n-1)*g.H))
		g.Set(k, 0, fn(0, float64(k)*g.H))
		g.Set(k, n-1, fn(float64(n-1)*g.H, float64(k)*g.H))
	}
}

// SetSource fills the source term with fn(x, y).
func (g *Grid) SetSource(fn func(x, y float64) float64) {
	if g.F == nil {
		g.F = make([]float64, g.N*g.N)
	}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			g.F[i*g.N+j] = fn(float64(j)*g.H, float64(i)*g.H)
		}
	}
}

// Reset re-zeroes the interior of the grid, preserving the boundary ring
// and the source term. A reset grid is indistinguishable from a freshly
// allocated one with the same boundary and source, which lets callers reuse
// one allocation across back-to-back solves instead of paying an NxN
// allocation (and its first-touch page faults) per run.
func (g *Grid) Reset() {
	n := g.N
	for i := 1; i < n-1; i++ {
		base := i * n
		clear(g.U[base+1 : base+n-1])
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{N: g.N, H: g.H, U: append([]float64(nil), g.U...)}
	if g.F != nil {
		out.F = append([]float64(nil), g.F...)
	}
	return out
}

// Phase selects the red or black half of a red-black sweep.
type Phase int

// Red updates points with even (i+j); Black updates odd (i+j).
const (
	Red Phase = iota
	Black
)

func (p Phase) String() string {
	if p == Red {
		return "red"
	}
	return "black"
}

// clampRows restricts [rowLo, rowHi) to the interior rows [1, N-1).
func (g *Grid) clampRows(rowLo, rowHi int) (int, int) {
	if rowLo < 1 {
		rowLo = 1
	}
	if rowHi > g.N-1 {
		rowHi = g.N - 1
	}
	return rowLo, rowHi
}

// colStart returns the first interior column of color p in row i.
func colStart(i int, p Phase) int {
	return 1 + (i+1+int(p))%2
}

// SweepPhase performs one SOR half-sweep of the given color over rows
// [rowLo, rowHi) of the interior, with over-relaxation factor omega.
// It returns the number of points updated.
//
// Red-black ordering makes the two half-sweeps independent within
// themselves: every red point depends only on black neighbors and vice
// versa, which is what allows the strip-parallel execution.
//
// The Laplace (F == nil) and Poisson source terms are dispatched once per
// row rather than per point, and each row is walked through subslices so
// the neighbor of one update is reused as an operand of the next.
func (g *Grid) SweepPhase(p Phase, rowLo, rowHi int, omega float64) int {
	rowLo, rowHi = g.clampRows(rowLo, rowHi)
	n := g.N
	u := g.U
	h2 := g.H * g.H
	count := 0
	for i := rowLo; i < rowHi; i++ {
		base := i * n
		above := u[base-n : base]
		here := u[base : base+n]
		below := u[base+n : base+2*n]
		jStart := colStart(i, p)
		left := here[jStart-1]
		if g.F == nil {
			for j := jStart; j < n-1; j += 2 {
				right := here[j+1]
				gs := 0.25 * (above[j] + below[j] + left + right)
				here[j] += omega * (gs - here[j])
				left = right
			}
		} else {
			frow := g.F[base : base+n]
			for j := jStart; j < n-1; j += 2 {
				right := here[j+1]
				sum := above[j] + below[j] + left + right
				gs := 0.25 * (sum - h2*frow[j])
				here[j] += omega * (gs - here[j])
				left = right
			}
		}
		count += (n - jStart) / 2
	}
	return count
}

// SweepPhaseResidual is SweepPhase fused with the residual of the points it
// updates: it performs the half-sweep and additionally returns the max-norm
// residual over the updated points, evaluated with their post-update values.
//
// When called for the second half-sweep of an iteration (the Black phase in
// the Red-then-Black order used by Solve and the backends), the neighbors
// of every updated point are already final for the iteration, so the
// returned residual is bit-identical to what a separate Residual pass would
// report for those points — combining it with ResidualPhase of the opposite
// color reproduces Residual() exactly while touching the grid one fewer
// time per iteration.
func (g *Grid) SweepPhaseResidual(p Phase, rowLo, rowHi int, omega float64) (int, float64) {
	rowLo, rowHi = g.clampRows(rowLo, rowHi)
	n := g.N
	u := g.U
	h2 := g.H * g.H
	count := 0
	worst := 0.0
	for i := rowLo; i < rowHi; i++ {
		base := i * n
		above := u[base-n : base]
		here := u[base : base+n]
		below := u[base+n : base+2*n]
		jStart := colStart(i, p)
		left := here[jStart-1]
		if g.F == nil {
			for j := jStart; j < n-1; j += 2 {
				right := here[j+1]
				sum := above[j] + below[j] + left + right
				gs := 0.25 * sum
				here[j] += omega * (gs - here[j])
				r := sum - 4*here[j]
				if r < 0 {
					r = -r
				}
				if r > worst {
					worst = r
				}
				left = right
			}
		} else {
			frow := g.F[base : base+n]
			for j := jStart; j < n-1; j += 2 {
				right := here[j+1]
				sum := above[j] + below[j] + left + right
				gs := 0.25 * (sum - h2*frow[j])
				here[j] += omega * (gs - here[j])
				r := sum - 4*here[j] - h2*frow[j]
				if r < 0 {
					r = -r
				}
				if r > worst {
					worst = r
				}
				left = right
			}
		}
		count += (n - jStart) / 2
	}
	return count, worst
}

// ResidualPhase returns the max-norm residual over the points of color p in
// rows [rowLo, rowHi) of the interior.
func (g *Grid) ResidualPhase(p Phase, rowLo, rowHi int) float64 {
	rowLo, rowHi = g.clampRows(rowLo, rowHi)
	n := g.N
	u := g.U
	h2 := g.H * g.H
	worst := 0.0
	for i := rowLo; i < rowHi; i++ {
		base := i * n
		above := u[base-n : base]
		here := u[base : base+n]
		below := u[base+n : base+2*n]
		jStart := colStart(i, p)
		left := here[jStart-1]
		if g.F == nil {
			for j := jStart; j < n-1; j += 2 {
				right := here[j+1]
				r := above[j] + below[j] + left + right - 4*here[j]
				if r < 0 {
					r = -r
				}
				if r > worst {
					worst = r
				}
				left = right
			}
		} else {
			frow := g.F[base : base+n]
			for j := jStart; j < n-1; j += 2 {
				right := here[j+1]
				r := above[j] + below[j] + left + right - 4*here[j] - h2*frow[j]
				if r < 0 {
					r = -r
				}
				if r > worst {
					worst = r
				}
				left = right
			}
		}
	}
	return worst
}

// Residual returns the max-norm of the discrete residual
// |u[i-1,j]+u[i+1,j]+u[i,j-1]+u[i,j+1]-4u[i,j]-h^2 f| over the interior.
func (g *Grid) Residual() float64 {
	n := g.N
	u := g.U
	h2 := g.H * g.H
	worst := 0.0
	for i := 1; i < n-1; i++ {
		base := i * n
		above := u[base-n : base]
		here := u[base : base+n]
		below := u[base+n : base+2*n]
		left, mid := here[0], here[1]
		if g.F == nil {
			for j := 1; j < n-1; j++ {
				right := here[j+1]
				r := above[j] + below[j] + left + right - 4*mid
				if r < 0 {
					r = -r
				}
				if r > worst {
					worst = r
				}
				left, mid = mid, right
			}
		} else {
			frow := g.F[base : base+n]
			for j := 1; j < n-1; j++ {
				right := here[j+1]
				r := above[j] + below[j] + left + right - 4*mid - h2*frow[j]
				if r < 0 {
					r = -r
				}
				if r > worst {
					worst = r
				}
				left, mid = mid, right
			}
		}
	}
	return worst
}

// MaxErrorAgainst returns the max-norm difference between the grid and an
// analytic solution fn(x, y) over the interior.
func (g *Grid) MaxErrorAgainst(fn func(x, y float64) float64) float64 {
	worst := 0.0
	for i := 1; i < g.N-1; i++ {
		for j := 1; j < g.N-1; j++ {
			d := math.Abs(g.At(i, j) - fn(float64(j)*g.H, float64(i)*g.H))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// InteriorPoints returns the number of interior grid points.
func (g *Grid) InteriorPoints() int {
	m := g.N - 2
	return m * m
}

// Solve runs full red-black SOR iterations on a single processor until the
// residual drops below tol or maxIters is reached. It returns the number of
// iterations performed.
func (g *Grid) Solve(omega, tol float64, maxIters int) (int, error) {
	if omega <= 0 || omega >= 2 {
		return 0, fmt.Errorf("sor: omega %g outside (0,2)", omega)
	}
	if maxIters <= 0 {
		return 0, errors.New("sor: maxIters must be positive")
	}
	for it := 1; it <= maxIters; it++ {
		g.SweepPhase(Red, 1, g.N-1, omega)
		// The black half-sweep computes its own residual in-place; only the
		// red half still needs a read pass, so each iteration touches the
		// grid three times instead of four.
		_, r := g.SweepPhaseResidual(Black, 1, g.N-1, omega)
		if rr := g.ResidualPhase(Red, 1, g.N-1); rr > r {
			r = rr
		}
		if r < tol {
			return it, nil
		}
	}
	return maxIters, nil
}
