package sor

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// LocalResult reports a LocalBackend run.
type LocalResult struct {
	Iterations int
	Residual   float64
	Elapsed    time.Duration
}

// LocalBackend executes the strip-decomposed red-black SOR with one
// long-lived goroutine per strip on the host machine — a real shared-memory
// parallel SOR. Red and black half-sweeps are separated by barriers; within
// a half-sweep the strips are independent because red points only read black
// neighbors and vice versa, so workers may touch adjacent ghost rows
// without racing.
//
// The worker pool is started lazily on the first Run and persists across
// runs, so steady-state iteration cost is a channel round-trip per phase
// rather than a goroutine spawn per strip per half-sweep. Call Close to
// release the workers; a backend that is never closed parks P goroutines on
// channel receives, which is harmless but untidy in long-lived processes.
type LocalBackend struct {
	part *Partition

	mu      sync.Mutex // serializes Run/Close; guards the fields below
	started bool
	closed  bool
	cmds    []chan poolCmd
	replies chan poolReply

	// Per-run state, written before each broadcast; the command-channel
	// send/receive pair orders these writes before the workers' reads.
	g     *Grid
	omega float64
}

// poolOp selects what a worker does for one barrier interval.
type poolOp uint8

const (
	// opSweep runs SweepPhase over the strip.
	opSweep poolOp = iota
	// opSweepResid runs SweepPhaseResidual over the strip and additionally
	// computes the opposite color's residual over the strip's interior rows
	// [lo+1, hi-1). It is only issued for the second half-sweep of an
	// iteration: by then the opposite color is final everywhere, and points
	// on interior rows have all their neighbors inside this strip, so no
	// barrier is needed before reading them.
	opSweepResid
	// opResidEdges runs ResidualPhase of the given color over the strip's
	// first and last rows — the rows whose neighbors live in adjacent
	// strips and therefore must wait for the post-sweep barrier.
	opResidEdges
)

type poolCmd struct {
	op    poolOp
	phase Phase
}

type poolReply struct {
	count int
	resid float64
}

// NewLocalBackend validates the partition and returns a backend.
func NewLocalBackend(part *Partition) (*LocalBackend, error) {
	if part == nil {
		return nil, errors.New("sor: nil partition")
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	return &LocalBackend{part: part}, nil
}

// start launches the persistent strip workers. Caller holds b.mu.
func (b *LocalBackend) start() {
	p := b.part.P()
	b.cmds = make([]chan poolCmd, p)
	b.replies = make(chan poolReply, p)
	for w := 0; w < p; w++ {
		// Buffered by one so a barrier broadcast never blocks on a worker
		// that has not reached its receive yet.
		b.cmds[w] = make(chan poolCmd, 1)
		lo, hi := b.part.Bounds(w)
		go b.worker(b.cmds[w], lo, hi)
	}
	b.started = true
}

// worker executes barrier intervals for one strip until its command channel
// is closed.
func (b *LocalBackend) worker(cmds <-chan poolCmd, lo, hi int) {
	for c := range cmds {
		var rep poolReply
		switch c.op {
		case opSweep:
			rep.count = b.g.SweepPhase(c.phase, lo, hi, b.omega)
		case opSweepResid:
			rep.count, rep.resid = b.g.SweepPhaseResidual(c.phase, lo, hi, b.omega)
			opp := Red
			if c.phase == Red {
				opp = Black
			}
			if rr := b.g.ResidualPhase(opp, lo+1, hi-1); rr > rep.resid {
				rep.resid = rr
			}
		case opResidEdges:
			rep.resid = b.g.ResidualPhase(c.phase, lo, lo+1)
			if hi-1 > lo {
				if rr := b.g.ResidualPhase(c.phase, hi-1, hi); rr > rep.resid {
					rep.resid = rr
				}
			}
		}
		b.replies <- rep
	}
}

// barrier broadcasts one command to every worker and waits for all replies,
// returning the max of the partial residuals. Caller holds b.mu.
func (b *LocalBackend) barrier(c poolCmd) float64 {
	p := b.part.P()
	for w := 0; w < p; w++ {
		b.cmds[w] <- c
	}
	worst := 0.0
	for w := 0; w < p; w++ {
		if rep := <-b.replies; rep.resid > worst {
			worst = rep.resid
		}
	}
	return worst
}

// Close shuts down the worker pool. The backend must not be used afterwards.
// Close is idempotent and safe on a backend that never ran.
func (b *LocalBackend) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, c := range b.cmds {
		close(c)
	}
	b.cmds = nil
}

// Run performs iterations full red-black sweeps on g (or stops early when
// the residual drops below tol; pass tol <= 0 to run all iterations).
func (b *LocalBackend) Run(g *Grid, omega float64, iterations int, tol float64) (LocalResult, error) {
	if g == nil {
		return LocalResult{}, errors.New("sor: nil grid")
	}
	if g.N != b.part.N {
		return LocalResult{}, fmt.Errorf("sor: grid size %d does not match partition %d", g.N, b.part.N)
	}
	if omega <= 0 || omega >= 2 {
		return LocalResult{}, fmt.Errorf("sor: omega %g outside (0,2)", omega)
	}
	if iterations <= 0 {
		return LocalResult{}, errors.New("sor: iterations must be positive")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return LocalResult{}, errors.New("sor: backend is closed")
	}
	if !b.started {
		b.start()
	}
	start := time.Now()
	b.g, b.omega = g, omega
	res := LocalResult{}
	for it := 1; it <= iterations; it++ {
		b.barrier(poolCmd{op: opSweep, phase: Red})
		res.Iterations = it
		if tol <= 0 && it < iterations {
			// No residual wanted this iteration: plain black half-sweep.
			b.barrier(poolCmd{op: opSweep, phase: Black})
			continue
		}
		// Fuse the black residual (and the red residual of each strip's
		// interior rows) into the black half-sweep; only the strips' edge
		// rows need a post-barrier red pass. The max over all of it is
		// exactly what a full Residual pass would report.
		r := b.barrier(poolCmd{op: opSweepResid, phase: Black})
		if rr := b.barrier(poolCmd{op: opResidEdges, phase: Red}); rr > r {
			r = rr
		}
		res.Residual = r
		if tol > 0 && r < tol {
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// BenchmarkElement measures the host's time per element update in seconds
// by timing full sweeps over an n x n grid — the BM(Elt) model parameter of
// §2.2.1's benchmark-based computation component.
func BenchmarkElement(n, sweeps int) (float64, error) {
	g, err := NewGrid(n)
	if err != nil {
		return 0, err
	}
	if sweeps <= 0 {
		return 0, errors.New("sor: sweeps must be positive")
	}
	g.SetBoundary(func(x, y float64) float64 { return x + y })
	// One untimed warm-up sweep: a freshly allocated grid pays first-touch
	// page faults on every row, which would otherwise be billed to the
	// first timed sweep and skew BM(Elt) upward.
	g.SweepPhase(Red, 1, n-1, DefaultOmega)
	g.SweepPhase(Black, 1, n-1, DefaultOmega)
	start := time.Now()
	elems := 0
	for s := 0; s < sweeps; s++ {
		elems += g.SweepPhase(Red, 1, n-1, DefaultOmega)
		elems += g.SweepPhase(Black, 1, n-1, DefaultOmega)
	}
	el := time.Since(start).Seconds()
	return el / float64(elems), nil
}
