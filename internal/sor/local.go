package sor

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// LocalResult reports a LocalBackend run.
type LocalResult struct {
	Iterations int
	Residual   float64
	Elapsed    time.Duration
}

// LocalBackend executes the strip-decomposed red-black SOR with one
// goroutine per strip on the host machine — a real shared-memory parallel
// SOR. Red and black half-sweeps are separated by barriers; within a
// half-sweep the strips are independent because red points only read black
// neighbors and vice versa, so workers may touch adjacent ghost rows
// without racing.
type LocalBackend struct {
	part *Partition
}

// NewLocalBackend validates the partition and returns a backend.
func NewLocalBackend(part *Partition) (*LocalBackend, error) {
	if part == nil {
		return nil, errors.New("sor: nil partition")
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	return &LocalBackend{part: part}, nil
}

// Run performs iterations full red-black sweeps on g (or stops early when
// the residual drops below tol; pass tol <= 0 to run all iterations).
func (b *LocalBackend) Run(g *Grid, omega float64, iterations int, tol float64) (LocalResult, error) {
	if g == nil {
		return LocalResult{}, errors.New("sor: nil grid")
	}
	if g.N != b.part.N {
		return LocalResult{}, fmt.Errorf("sor: grid size %d does not match partition %d", g.N, b.part.N)
	}
	if omega <= 0 || omega >= 2 {
		return LocalResult{}, fmt.Errorf("sor: omega %g outside (0,2)", omega)
	}
	if iterations <= 0 {
		return LocalResult{}, errors.New("sor: iterations must be positive")
	}
	start := time.Now()
	p := b.part.P()
	var wg sync.WaitGroup
	sweep := func(phase Phase) {
		wg.Add(p)
		for w := 0; w < p; w++ {
			lo, hi := b.part.Bounds(w)
			go func(lo, hi int) {
				defer wg.Done()
				g.SweepPhase(phase, lo, hi, omega)
			}(lo, hi)
		}
		wg.Wait()
	}
	res := LocalResult{}
	for it := 1; it <= iterations; it++ {
		sweep(Red)
		sweep(Black)
		res.Iterations = it
		if tol > 0 {
			if r := g.Residual(); r < tol {
				res.Residual = r
				res.Elapsed = time.Since(start)
				return res, nil
			}
		}
	}
	res.Residual = g.Residual()
	res.Elapsed = time.Since(start)
	return res, nil
}

// BenchmarkElement measures the host's time per element update in seconds
// by timing full sweeps over an n x n grid — the BM(Elt) model parameter of
// §2.2.1's benchmark-based computation component.
func BenchmarkElement(n, sweeps int) (float64, error) {
	g, err := NewGrid(n)
	if err != nil {
		return 0, err
	}
	if sweeps <= 0 {
		return 0, errors.New("sor: sweeps must be positive")
	}
	g.SetBoundary(func(x, y float64) float64 { return x + y })
	start := time.Now()
	elems := 0
	for s := 0; s < sweeps; s++ {
		elems += g.SweepPhase(Red, 1, n-1, DefaultOmega)
		elems += g.SweepPhase(Black, 1, n-1, DefaultOmega)
	}
	el := time.Since(start).Seconds()
	return el / float64(elems), nil
}
