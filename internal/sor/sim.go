package sor

import (
	"errors"
	"fmt"

	"prodpred/internal/simenv"
)

// PhaseTimes accumulates the virtual time attributed to each structural-
// model component across a run: the Max over processors of each phase,
// summed over iterations — exactly the decomposition of the paper's SOR
// structural model.
type PhaseTimes struct {
	RedComp, RedComm, BlackComp, BlackComm float64
}

// Total returns the sum of the four components.
func (pt PhaseTimes) Total() float64 {
	return pt.RedComp + pt.RedComm + pt.BlackComp + pt.BlackComm
}

// SimResult reports a simulated distributed run.
type SimResult struct {
	Iterations int
	Residual   float64
	// ExecTime is the virtual wall time from start to the last processor's
	// completion.
	ExecTime float64
	// Phases is the per-component breakdown (max over processors per
	// iteration, summed).
	Phases PhaseTimes
	// IterationEnd[i] is the virtual time at which iteration i+1 completed
	// on the last processor, relative to start.
	IterationEnd []float64
	// MaxSkew is the largest spread, over iterations, between the first
	// and last processor to finish an iteration (seconds). The paper's
	// Figure 7 bounds accumulated skew by P iterations' worth of work.
	MaxSkew float64
}

// SimBackend executes the strip-decomposed SOR against a simulated
// production platform. The numeric kernel runs for real on the grid; time
// is charged against the environment's machines and network per phase:
//
//	red compute -> ghost exchange -> black compute -> ghost exchange
//
// with loose synchronization: a processor proceeds once its own sends are
// drained and the ghost rows it needs have arrived, so delays propagate to
// neighbors only (the skew of Figure 7) rather than through a global
// barrier.
type SimBackend struct {
	env      *simenv.Env
	part     *Partition
	machines []int // strip index -> machine index
}

// NewSimBackend binds a partition to machines of the environment's
// platform. machines[p] is the platform machine executing strip p.
func NewSimBackend(env *simenv.Env, part *Partition, machines []int) (*SimBackend, error) {
	if env == nil {
		return nil, errors.New("sor: nil environment")
	}
	if part == nil {
		return nil, errors.New("sor: nil partition")
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	if len(machines) != part.P() {
		return nil, fmt.Errorf("sor: %d machines for %d strips", len(machines), part.P())
	}
	for _, m := range machines {
		if m < 0 || m >= env.Platform().Size() {
			return nil, fmt.Errorf("sor: machine index %d out of range", m)
		}
	}
	return &SimBackend{env: env, part: part, machines: append([]int(nil), machines...)}, nil
}

// Run executes `iterations` red-black iterations starting at virtual time
// start, performing the real numeric sweeps on g.
func (b *SimBackend) Run(g *Grid, omega float64, iterations int, start float64) (SimResult, error) {
	if g == nil {
		return SimResult{}, errors.New("sor: nil grid")
	}
	if g.N != b.part.N {
		return SimResult{}, fmt.Errorf("sor: grid size %d does not match partition %d", g.N, b.part.N)
	}
	if omega <= 0 || omega >= 2 {
		return SimResult{}, fmt.Errorf("sor: omega %g outside (0,2)", omega)
	}
	if iterations <= 0 {
		return SimResult{}, errors.New("sor: iterations must be positive")
	}

	p := b.part.P()
	t := make([]float64, p) // per-processor virtual clocks
	for i := range t {
		t[i] = start
	}
	res := SimResult{Iterations: iterations}
	ghost := b.part.GhostRowBytes()

	for it := 0; it < iterations; it++ {
		for _, phase := range []Phase{Red, Black} {
			// Numeric half-sweep (sequential; identical results to the
			// parallel backend because red/black halves are independent).
			g.SweepPhase(phase, 1, g.N-1, omega)

			// Compute phase: roughly half the strip's points per color.
			compEnd := make([]float64, p)
			var maxComp float64
			for w := 0; w < p; w++ {
				elems := float64(b.part.Elems(w)) / 2
				d, err := b.env.WorkDuration(b.machines[w], elems, t[w])
				if err != nil {
					return SimResult{}, err
				}
				compEnd[w] = t[w] + d
				if d > maxComp {
					maxComp = d
				}
			}

			// Communication phase: each strip exchanges one ghost row with
			// each neighbor. NICs on the shared 10 Mbit ethernet are
			// half-duplex, so a host's send and receive endpoints
			// serialize — the same additive SendLR + ReceLR accounting the
			// structural model uses. A strip may begin its exchange only
			// once it and the neighbors it exchanges with have finished
			// computing; that neighbor-only dependence is the loose
			// synchronization whose delays accumulate as the skew of
			// Figure 7.
			var maxComm float64
			for w := 0; w < p; w++ {
				start := compEnd[w]
				if w > 0 && compEnd[w-1] > start && b.machines[w-1] != b.machines[w] {
					start = compEnd[w-1]
				}
				if w < p-1 && compEnd[w+1] > start && b.machines[w+1] != b.machines[w] {
					start = compEnd[w+1]
				}
				cursor := start
				// Send to and receive from each neighbor, serially.
				neighbors := []int{w - 1, w + 1}
				for _, nb := range neighbors {
					if nb < 0 || nb >= p {
						continue
					}
					for k := 0; k < 2; k++ { // one send + one receive
						d, err := b.transfer(w, nb, ghost, cursor)
						if err != nil {
							return SimResult{}, err
						}
						cursor += d
					}
				}
				if c := cursor - compEnd[w]; c > maxComm {
					maxComm = c
				}
				t[w] = cursor
			}
			if phase == Red {
				res.Phases.RedComp += maxComp
				res.Phases.RedComm += maxComm
			} else {
				res.Phases.BlackComp += maxComp
				res.Phases.BlackComm += maxComm
			}
		}
		first, last := t[0], t[0]
		for _, tw := range t[1:] {
			if tw < first {
				first = tw
			}
			if tw > last {
				last = tw
			}
		}
		if skew := last - first; skew > res.MaxSkew {
			res.MaxSkew = skew
		}
		res.IterationEnd = append(res.IterationEnd, last-start)
	}
	res.ExecTime = res.IterationEnd[len(res.IterationEnd)-1]
	res.Residual = g.Residual()
	return res, nil
}

// transfer wraps Env.TransferDuration, handling strips that share one
// machine: a ghost exchange within the same machine is a memory copy
// charged at zero network cost.
func (b *SimBackend) transfer(fromStrip, toStrip int, bytes, at float64) (float64, error) {
	mf, mt := b.machines[fromStrip], b.machines[toStrip]
	if mf == mt {
		return 0, nil
	}
	return b.env.TransferDuration(mf, mt, bytes, at)
}

// IdentityMapping returns the strip->machine mapping [0, 1, ..., p-1].
func IdentityMapping(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}
