package sor

import (
	"errors"
	"fmt"
	"strings"
)

// Partition is a strip decomposition of the interior rows of an NxN grid
// across P processors: Rows[p] is the number of interior rows owned by
// processor p, in top-to-bottom order (Figure 6).
type Partition struct {
	N    int
	Rows []int
}

// NewEqualPartition splits the interior rows of an NxN grid as evenly as
// possible across p processors. Every processor receives at least one row.
func NewEqualPartition(n, p int) (*Partition, error) {
	weights := make([]float64, p)
	for i := range weights {
		weights[i] = 1
	}
	return NewWeightedPartition(n, weights)
}

// NewWeightedPartition splits the interior rows proportionally to the given
// non-negative weights (e.g. predicted machine capacities — "to balance
// load in a distributed setting, we may assign more work to processors with
// greater capacity", footnote 2). Every processor receives at least one
// row, so the interior must have at least len(weights) rows.
func NewWeightedPartition(n int, weights []float64) (*Partition, error) {
	p := len(weights)
	if p == 0 {
		return nil, errors.New("sor: no processors")
	}
	if n < 3 {
		return nil, fmt.Errorf("sor: grid size %d too small", n)
	}
	interior := n - 2
	if interior < p {
		return nil, fmt.Errorf("sor: %d interior rows cannot cover %d processors", interior, p)
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sor: negative weight %g for processor %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("sor: weights sum to zero")
	}
	rows := make([]int, p)
	assigned := 0
	// Largest-remainder apportionment with a 1-row floor.
	fractions := make([]float64, p)
	for i, w := range weights {
		exact := w / total * float64(interior)
		rows[i] = int(exact)
		if rows[i] < 1 {
			rows[i] = 1
		}
		fractions[i] = exact - float64(int(exact))
		assigned += rows[i]
	}
	for assigned > interior {
		// Floors overshot: take rows back from the largest allocations.
		big := 0
		for i := range rows {
			if rows[i] > rows[big] {
				big = i
			}
		}
		if rows[big] <= 1 {
			return nil, errors.New("sor: cannot satisfy 1-row floors")
		}
		rows[big]--
		assigned--
	}
	for assigned < interior {
		// Distribute remainders to the largest fractional parts.
		best := -1
		for i := range fractions {
			if best == -1 || fractions[i] > fractions[best] {
				best = i
			}
		}
		rows[best]++
		fractions[best] = -1
		assigned++
	}
	return &Partition{N: n, Rows: rows}, nil
}

// P returns the number of processors.
func (pt *Partition) P() int { return len(pt.Rows) }

// Bounds returns the half-open interior row range [lo, hi) owned by
// processor p (rows are absolute grid indices, so lo >= 1).
func (pt *Partition) Bounds(p int) (lo, hi int) {
	lo = 1
	for i := 0; i < p; i++ {
		lo += pt.Rows[i]
	}
	return lo, lo + pt.Rows[p]
}

// Elems returns the number of interior points owned by processor p.
func (pt *Partition) Elems(p int) int {
	return pt.Rows[p] * (pt.N - 2)
}

// TotalElems returns the total interior points across processors.
func (pt *Partition) TotalElems() int {
	m := pt.N - 2
	return m * m
}

// GhostRowBytes returns the size in bytes of one exchanged ghost row
// (N-2 interior float64 values).
func (pt *Partition) GhostRowBytes() float64 {
	return float64(pt.N-2) * 8
}

// Validate checks internal consistency (rows positive, covering the
// interior exactly).
func (pt *Partition) Validate() error {
	sum := 0
	for p, r := range pt.Rows {
		if r < 1 {
			return fmt.Errorf("sor: processor %d owns %d rows", p, r)
		}
		sum += r
	}
	if sum != pt.N-2 {
		return fmt.Errorf("sor: rows sum to %d, interior is %d", sum, pt.N-2)
	}
	return nil
}

// Render draws the strip decomposition as ASCII (one line per processor),
// the textual analogue of the paper's Figure 6.
func (pt *Partition) Render() string {
	var b strings.Builder
	for p, r := range pt.Rows {
		lo, hi := pt.Bounds(p)
		fmt.Fprintf(&b, "P%-2d rows [%4d,%4d) %s (%d rows)\n", p+1, lo, hi,
			strings.Repeat("=", 1+r*40/(pt.N-2)), r)
	}
	return b.String()
}
