package cluster

import (
	"testing"
)

func TestMachineValidate(t *testing.T) {
	good := Machine{Name: "m", ElemRate: 1, MemoryMB: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good machine: %v", err)
	}
	bad := []Machine{
		{Name: "", ElemRate: 1, MemoryMB: 1},
		{Name: "m", ElemRate: 0, MemoryMB: 1},
		{Name: "m", ElemRate: -1, MemoryMB: 1},
		{Name: "m", ElemRate: 1, MemoryMB: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("machine %+v should fail validation", m)
		}
	}
}

func TestFitsInMemory(t *testing.T) {
	m := Machine{Name: "m", ElemRate: 1, MemoryMB: 32}
	// 1000x1000 split 4 ways: 252 rows * 1000 cols * 8 B = ~2 MB: fits.
	if !m.FitsInMemory(1000, 4) {
		t.Error("1000^2 /4 should fit in 32MB")
	}
	// 4000x4000 on one machine: 4002*4000*8 = ~128 MB: does not fit.
	if m.FitsInMemory(4000, 1) {
		t.Error("4000^2 should not fit in 32MB")
	}
}

func TestLinkValidate(t *testing.T) {
	if err := Ethernet10Mbit().Validate(); err != nil {
		t.Errorf("ethernet link: %v", err)
	}
	if err := (Link{DedBW: 0, Latency: 0}).Validate(); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if err := (Link{DedBW: 1, Latency: -1}).Validate(); err == nil {
		t.Error("negative latency should fail")
	}
}

func TestNewPlatformValidation(t *testing.T) {
	link := Ethernet10Mbit()
	if _, err := NewPlatform("p", nil, link); err == nil {
		t.Error("no machines should fail")
	}
	if _, err := NewPlatform("p", []Machine{Sparc2("a"), Sparc2("a")}, link); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewPlatform("p", []Machine{{Name: "x"}}, link); err == nil {
		t.Error("invalid machine should fail")
	}
	if _, err := NewPlatform("p", []Machine{Sparc2("a")}, Link{}); err == nil {
		t.Error("invalid link should fail")
	}
}

func TestPlatformAccessors(t *testing.T) {
	p := Platform1()
	if p.Size() != 4 {
		t.Fatalf("Size=%d", p.Size())
	}
	if p.Machine(0).Name != "sparc2-a" {
		t.Errorf("Machine(0)=%s", p.Machine(0).Name)
	}
	l, err := p.Link(0, 3)
	if err != nil || l.DedBW != 1.25e6 {
		t.Errorf("Link=%+v err=%v", l, err)
	}
	if _, err := p.Link(0, 0); err == nil {
		t.Error("self link should fail")
	}
	if _, err := p.Link(-1, 2); err == nil {
		t.Error("out of range should fail")
	}
	if _, err := p.Link(0, 9); err == nil {
		t.Error("out of range should fail")
	}
	i, err := p.MachineIndex("sparc10")
	if err != nil || i != 3 {
		t.Errorf("MachineIndex=%d err=%v", i, err)
	}
	if _, err := p.MachineIndex("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestSlowestMachine(t *testing.T) {
	p1 := Platform1()
	if got := p1.SlowestMachine(); p1.Machine(got).Name != "sparc2-a" {
		t.Errorf("platform1 slowest=%s", p1.Machine(got).Name)
	}
	p2 := Platform2()
	if got := p2.SlowestMachine(); p2.Machine(got).Name != "sparc5" {
		t.Errorf("platform2 slowest=%s", p2.Machine(got).Name)
	}
}

func TestCatalogRelativeSpeeds(t *testing.T) {
	s2 := Sparc2("a").ElemRate
	if Sparc5("b").ElemRate <= s2 || Sparc10("c").ElemRate <= Sparc5("b").ElemRate ||
		UltraSparc("d").ElemRate <= Sparc10("c").ElemRate {
		t.Error("catalog speeds should be strictly increasing")
	}
	if UltraSparc("d").ElemRate/s2 != 8 {
		t.Errorf("ultrasparc ratio=%g want 8", UltraSparc("d").ElemRate/s2)
	}
}

func TestTwoMachineExample(t *testing.T) {
	p := TwoMachineExample()
	if p.Size() != 2 {
		t.Fatalf("size=%d", p.Size())
	}
	a, b := p.Machine(0), p.Machine(1)
	// Dedicated unit-work times 10 s and 5 s (Table 1 row 1).
	if ta := 1 / a.ElemRate; ta != 10 {
		t.Errorf("A unit time=%g want 10", ta)
	}
	if tb := 1 / b.ElemRate; tb != 5 {
		t.Errorf("B unit time=%g want 5", tb)
	}
}

func TestNewPlatformWithLinksValidation(t *testing.T) {
	ms := []Machine{Sparc2("a"), Sparc2("b")}
	good := [][]Link{
		{{}, Ethernet10Mbit()},
		{Ethernet10Mbit(), {}},
	}
	p, err := NewPlatformWithLinks("p", ms, good)
	if err != nil {
		t.Fatalf("valid matrix failed: %v", err)
	}
	l, err := p.Link(0, 1)
	if err != nil || l.DedBW != 1.25e6 {
		t.Errorf("link=%+v err=%v", l, err)
	}
	if _, err := NewPlatformWithLinks("p", nil, nil); err == nil {
		t.Error("no machines should fail")
	}
	if _, err := NewPlatformWithLinks("p", ms, good[:1]); err == nil {
		t.Error("row count mismatch should fail")
	}
	ragged := [][]Link{{{}}, {Ethernet10Mbit(), {}}}
	if _, err := NewPlatformWithLinks("p", ms, ragged); err == nil {
		t.Error("ragged matrix should fail")
	}
	badLink := [][]Link{
		{{}, {}}, // invalid off-diagonal link
		{Ethernet10Mbit(), {}},
	}
	if _, err := NewPlatformWithLinks("p", ms, badLink); err == nil {
		t.Error("invalid off-diagonal link should fail")
	}
	if _, err := NewPlatformWithLinks("p", []Machine{Sparc2("a"), Sparc2("a")}, good); err == nil {
		t.Error("duplicate names should fail")
	}
	if _, err := NewPlatformWithLinks("p", []Machine{{Name: "x"}, Sparc2("b")}, good); err == nil {
		t.Error("invalid machine should fail")
	}
}

func TestTwoClusterPlatform(t *testing.T) {
	p := TwoClusterPlatform()
	if p.Size() != 4 {
		t.Fatalf("size=%d", p.Size())
	}
	lan, err := p.Link(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wan, err := p.Link(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wan.DedBW >= lan.DedBW {
		t.Errorf("WAN bw %g should be below LAN %g", wan.DedBW, lan.DedBW)
	}
	if wan.Latency <= lan.Latency {
		t.Errorf("WAN latency %g should exceed LAN %g", wan.Latency, lan.Latency)
	}
	// Symmetric.
	back, _ := p.Link(2, 1)
	if back != wan {
		t.Error("bridge link should be symmetric")
	}
}

func TestPlatform2FasterInAggregate(t *testing.T) {
	sum := func(p *Platform) float64 {
		var s float64
		for _, m := range p.Machines {
			s += m.ElemRate
		}
		return s
	}
	if sum(Platform2()) <= sum(Platform1()) {
		t.Error("platform2 should have more aggregate compute")
	}
}
