// Package cluster defines the hardware model of the reproduction: machines
// with dedicated compute rates, links with dedicated bandwidth and latency,
// and the two production platforms of the paper's evaluation:
//
//	Platform 1: two Sparc-2s, a Sparc-5, and a Sparc-10 on 10 Mbit ethernet
//	Platform 2: a Sparc-5, a Sparc-10, and two UltraSparcs on 10 Mbit ethernet
//
// Dedicated rates are calibrated to circa-1997 relative SPEC performance
// (Sparc-2 = 1x); the absolute scale only shifts every runtime by a common
// factor and does not affect any of the paper's comparative claims.
package cluster

import (
	"errors"
	"fmt"
)

// Machine is one workstation.
type Machine struct {
	Name string
	// ElemRate is the dedicated compute rate in SOR element-updates per
	// second (five-point stencil update incl. loop overhead).
	ElemRate float64
	// MemoryMB bounds the problem size that fits in core; the paper's
	// Figure 9 holds "for problem sizes which fit within main memory".
	MemoryMB float64
}

// Validate checks the machine definition.
func (m Machine) Validate() error {
	if m.Name == "" {
		return errors.New("cluster: machine needs a name")
	}
	if !(m.ElemRate > 0) {
		return fmt.Errorf("cluster: machine %s needs a positive ElemRate", m.Name)
	}
	if !(m.MemoryMB > 0) {
		return fmt.Errorf("cluster: machine %s needs positive memory", m.Name)
	}
	return nil
}

// FitsInMemory reports whether an NxN float64 grid plus working copies fits
// in this machine's share of memory when the grid is split across p
// machines. The solver stores the grid once plus two ghost rows.
func (m Machine) FitsInMemory(n, p int) bool {
	rows := float64(n)/float64(p) + 2
	bytes := rows * float64(n) * 8
	return bytes <= m.MemoryMB*1e6*0.8 // leave 20% headroom for OS/code
}

// Link is a point-to-point channel between two machines. On a shared
// ethernet every pair sees the same dedicated bandwidth.
type Link struct {
	// DedBW is the dedicated bandwidth in bytes per second.
	DedBW float64
	// Latency is the per-message latency in seconds.
	Latency float64
}

// Validate checks the link definition.
func (l Link) Validate() error {
	if !(l.DedBW > 0) {
		return errors.New("cluster: link needs positive bandwidth")
	}
	if l.Latency < 0 {
		return errors.New("cluster: negative latency")
	}
	return nil
}

// Platform is a set of machines with a full link matrix.
type Platform struct {
	Name     string
	Machines []Machine
	links    [][]Link
}

// NewPlatform builds a platform where every machine pair is connected by
// the same shared link (the paper's 10 Mbit ethernet topology).
func NewPlatform(name string, machines []Machine, shared Link) (*Platform, error) {
	if len(machines) == 0 {
		return nil, errors.New("cluster: platform needs machines")
	}
	if err := shared.Validate(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("cluster: duplicate machine name %q", m.Name)
		}
		seen[m.Name] = true
	}
	p := &Platform{Name: name, Machines: append([]Machine(nil), machines...)}
	n := len(machines)
	p.links = make([][]Link, n)
	for i := range p.links {
		p.links[i] = make([]Link, n)
		for j := range p.links[i] {
			if i != j {
				p.links[i][j] = shared
			}
		}
	}
	return p, nil
}

// NewPlatformWithLinks builds a platform with an explicit link matrix.
// links must be a square matrix matching the machine count; diagonal
// entries are ignored, all others must validate. Asymmetric matrices are
// allowed (e.g. asymmetric routes), though the presets here are symmetric.
func NewPlatformWithLinks(name string, machines []Machine, links [][]Link) (*Platform, error) {
	if len(machines) == 0 {
		return nil, errors.New("cluster: platform needs machines")
	}
	n := len(machines)
	if len(links) != n {
		return nil, fmt.Errorf("cluster: link matrix has %d rows for %d machines", len(links), n)
	}
	seen := map[string]bool{}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("cluster: duplicate machine name %q", m.Name)
		}
		seen[m.Name] = true
	}
	p := &Platform{Name: name, Machines: append([]Machine(nil), machines...)}
	p.links = make([][]Link, n)
	for i := range links {
		if len(links[i]) != n {
			return nil, fmt.Errorf("cluster: link matrix row %d has %d entries for %d machines", i, len(links[i]), n)
		}
		p.links[i] = make([]Link, n)
		for j := range links[i] {
			if i == j {
				continue
			}
			if err := links[i][j].Validate(); err != nil {
				return nil, fmt.Errorf("cluster: link (%d,%d): %w", i, j, err)
			}
			p.links[i][j] = links[i][j]
		}
	}
	return p, nil
}

// TwoClusterPlatform returns a metacomputing-style topology: two LANs of
// two machines each on fast local ethernet, bridged by a much slower
// wide-area link — the setting where decomposition decisions across the
// bridge dominate performance.
func TwoClusterPlatform() *Platform {
	machines := []Machine{
		Sparc10("site-a-1"), Sparc10("site-a-2"),
		Sparc10("site-b-1"), Sparc10("site-b-2"),
	}
	lan := Ethernet10Mbit()
	wan := Link{DedBW: 1.25e5, Latency: 30e-3} // 1 Mbit/s, 30 ms
	links := make([][]Link, len(machines))
	for i := range links {
		links[i] = make([]Link, len(machines))
		for j := range links[i] {
			if i == j {
				continue
			}
			if (i < 2) == (j < 2) {
				links[i][j] = lan
			} else {
				links[i][j] = wan
			}
		}
	}
	p, err := NewPlatformWithLinks("two-cluster", machines, links)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return p
}

// Size returns the number of machines.
func (p *Platform) Size() int { return len(p.Machines) }

// Machine returns machine i.
func (p *Platform) Machine(i int) Machine { return p.Machines[i] }

// Link returns the link from machine i to machine j; i and j must differ.
func (p *Platform) Link(i, j int) (Link, error) {
	if i < 0 || j < 0 || i >= p.Size() || j >= p.Size() {
		return Link{}, fmt.Errorf("cluster: link index (%d,%d) out of range", i, j)
	}
	if i == j {
		return Link{}, errors.New("cluster: no self link")
	}
	return p.links[i][j], nil
}

// MachineIndex returns the index of the machine with the given name.
func (p *Platform) MachineIndex(name string) (int, error) {
	for i, m := range p.Machines {
		if m.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cluster: no machine named %q", name)
}

// SlowestMachine returns the index of the machine with the lowest dedicated
// rate (the paper tracks "the (consistently) slowest machine").
func (p *Platform) SlowestMachine() int {
	best := 0
	for i, m := range p.Machines {
		if m.ElemRate < p.Machines[best].ElemRate {
			best = i
		}
	}
	return best
}

// Circa-1997 machine catalog. ElemRate is element updates per second for
// the red-black stencil kernel, scaled from relative integer/FP performance
// with Sparc-2 = 1x ~= 0.5 M elements/s.
const sparc2Rate = 0.5e6

// Sparc2 returns a Sparc-2 class machine.
func Sparc2(name string) Machine {
	return Machine{Name: name, ElemRate: sparc2Rate, MemoryMB: 32}
}

// Sparc5 returns a Sparc-5 class machine (~2.5x a Sparc-2).
func Sparc5(name string) Machine {
	return Machine{Name: name, ElemRate: 2.5 * sparc2Rate, MemoryMB: 64}
}

// Sparc10 returns a Sparc-10 class machine (~3.5x a Sparc-2).
func Sparc10(name string) Machine {
	return Machine{Name: name, ElemRate: 3.5 * sparc2Rate, MemoryMB: 128}
}

// UltraSparc returns an UltraSparc class machine (~8x a Sparc-2).
func UltraSparc(name string) Machine {
	return Machine{Name: name, ElemRate: 8 * sparc2Rate, MemoryMB: 256}
}

// Ethernet10Mbit returns the paper's shared 10 Mbit/s ethernet link:
// 1.25 MB/s dedicated bandwidth, 1 ms latency.
func Ethernet10Mbit() Link {
	return Link{DedBW: 1.25e6, Latency: 1e-3}
}

// Platform1 returns the paper's first platform: two Sparc-2s, a Sparc-5,
// and a Sparc-10 on shared 10 Mbit ethernet (§3.1).
func Platform1() *Platform {
	p, err := NewPlatform("platform1",
		[]Machine{
			Sparc2("sparc2-a"),
			Sparc2("sparc2-b"),
			Sparc5("sparc5"),
			Sparc10("sparc10"),
		},
		Ethernet10Mbit(),
	)
	if err != nil {
		panic(err) // static configuration; cannot fail
	}
	return p
}

// Platform2 returns the paper's second platform: a Sparc-5, a Sparc-10,
// and two UltraSparcs on shared 10 Mbit ethernet (§3.2).
func Platform2() *Platform {
	p, err := NewPlatform("platform2",
		[]Machine{
			Sparc5("sparc5"),
			Sparc10("sparc10"),
			UltraSparc("ultra-a"),
			UltraSparc("ultra-b"),
		},
		Ethernet10Mbit(),
	)
	if err != nil {
		panic(err)
	}
	return p
}

// TwoMachineExample returns the abstract two-machine system of the paper's
// §1.2 example: machine A takes 10 s per unit of work dedicated, machine B
// 5 s. Unit work is normalized to A's rate so ElemRate is expressed in
// units-of-work per 10 seconds.
func TwoMachineExample() *Platform {
	p, err := NewPlatform("two-machine",
		[]Machine{
			{Name: "A", ElemRate: 0.1, MemoryMB: 64}, // 10 s per unit
			{Name: "B", ElemRate: 0.2, MemoryMB: 64}, // 5 s per unit
		},
		Ethernet10Mbit(),
	)
	if err != nil {
		panic(err)
	}
	return p
}
