// Package simenv simulates a production distributed system in virtual time.
//
// An Env binds a cluster.Platform to per-machine CPU-availability processes
// and a network-contention process, and answers the two questions the
// distributed SOR execution needs:
//
//   - how long does a given amount of compute take on machine m starting at
//     virtual time t (WorkDuration), and
//   - how long does a message of b bytes take between machines i and j
//     starting at t (TransferDuration).
//
// Both integrate effective capacity over the piecewise-constant availability
// segments of the underlying load processes, so durations respond to load
// changes *during* the operation — the mechanism behind the paper's
// observation that production runtimes wander as load shifts between modes.
// Nothing sleeps: an experiment that spans hours of virtual time costs
// milliseconds of wall-clock time.
package simenv

import (
	"errors"
	"fmt"
	"math"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
)

// minAvail floors effective availability: even on a thrashing production
// machine the application receives some CPU share, and a zero floor would
// make work durations unbounded.
const minAvail = 0.01

// Env is a simulated production environment.
type Env struct {
	platform *cluster.Platform
	cpu      []load.Process
	net      load.Process // shared-ethernet contention (one process)
}

// New binds platform to one CPU process per machine and a shared network
// contention process. Pass load.Dedicated() processes for an unloaded
// system.
func New(platform *cluster.Platform, cpu []load.Process, net load.Process) (*Env, error) {
	if platform == nil {
		return nil, errors.New("simenv: nil platform")
	}
	if len(cpu) != platform.Size() {
		return nil, fmt.Errorf("simenv: %d cpu processes for %d machines", len(cpu), platform.Size())
	}
	for i, p := range cpu {
		if p == nil {
			return nil, fmt.Errorf("simenv: nil cpu process for machine %d", i)
		}
	}
	if net == nil {
		return nil, errors.New("simenv: nil network process")
	}
	return &Env{platform: platform, cpu: append([]load.Process(nil), cpu...), net: net}, nil
}

// NewDedicated returns an Env for the platform with no competing load:
// full CPU availability everywhere and uncontended network.
func NewDedicated(platform *cluster.Platform) (*Env, error) {
	cpu := make([]load.Process, platform.Size())
	for i := range cpu {
		cpu[i] = load.Dedicated()
	}
	return New(platform, cpu, load.Dedicated())
}

// Platform returns the underlying platform.
func (e *Env) Platform() *cluster.Platform { return e.platform }

// CPULoad returns machine m's underlying load process — the trace
// recorder samples it directly so a recording is exactly what the sensors
// saw, unfloored.
func (e *Env) CPULoad(m int) load.Process { return e.cpu[m] }

// NetLoad returns the shared network-contention process.
func (e *Env) NetLoad() load.Process { return e.net }

// CPUAvail returns the CPU fraction available to the application on
// machine m at time t, floored at minAvail.
func (e *Env) CPUAvail(m int, t float64) float64 {
	return math.Max(e.cpu[m].At(t), minAvail)
}

// RawCPUAvail returns the unfloored sensor-visible availability — what an
// NWS CPU sensor would measure.
func (e *Env) RawCPUAvail(m int, t float64) float64 {
	return e.cpu[m].At(t)
}

// BWAvail returns the fraction of dedicated bandwidth available between
// machines i and j at time t, floored at minAvail.
func (e *Env) BWAvail(i, j int, t float64) float64 {
	_ = i
	_ = j // shared ethernet: contention is global
	return math.Max(e.net.At(t), minAvail)
}

// WorkDuration returns how long machine m takes to perform `elems` element
// updates starting at time start, integrating rate = ElemRate * avail(t)
// across availability segments.
func (e *Env) WorkDuration(m int, elems, start float64) (float64, error) {
	if elems < 0 {
		return 0, errors.New("simenv: negative work")
	}
	if m < 0 || m >= e.platform.Size() {
		return 0, fmt.Errorf("simenv: machine %d out of range", m)
	}
	base := e.platform.Machine(m).ElemRate
	return integrate(start, elems, e.cpu[m].Interval(), func(t float64) float64 {
		return base * e.CPUAvail(m, t)
	})
}

// TransferDuration returns how long a b-byte message from machine i to j
// takes starting at time start: link latency plus the bytes integrated over
// available bandwidth.
func (e *Env) TransferDuration(i, j int, bytes, start float64) (float64, error) {
	if bytes < 0 {
		return 0, errors.New("simenv: negative message size")
	}
	link, err := e.platform.Link(i, j)
	if err != nil {
		return 0, err
	}
	dur, err := integrate(start+link.Latency, bytes, e.net.Interval(), func(t float64) float64 {
		return link.DedBW * e.BWAvail(i, j, t)
	})
	if err != nil {
		return 0, err
	}
	return link.Latency + dur, nil
}

// integrate advances from start until `amount` units are completed at the
// piecewise-constant rate rate(t), with segments of length dt aligned to
// multiples of dt, and returns the elapsed time.
func integrate(start, amount, dt float64, rate func(float64) float64) (float64, error) {
	if !(dt > 0) {
		return 0, errors.New("simenv: non-positive process interval")
	}
	if amount == 0 {
		return 0, nil
	}
	t := start
	remaining := amount
	const maxSegments = 100_000_000 // unbounded-loop guard; ~3 virtual years at dt=1
	for seg := 0; seg < maxSegments; seg++ {
		r := rate(t)
		if r <= 0 {
			return 0, errors.New("simenv: non-positive rate")
		}
		// End of the current availability segment.
		segEnd := (math.Floor(t/dt) + 1) * dt
		if segEnd <= t { // float round-off at large t
			segEnd = t + dt
		}
		span := segEnd - t
		capacity := r * span
		if capacity >= remaining {
			return t + remaining/r - start, nil
		}
		remaining -= capacity
		t = segEnd
	}
	return 0, errors.New("simenv: work did not complete (rate too low)")
}

// MeasureCPU samples machine m's raw availability every dt over
// [t0, t1] — the primitive behind the NWS CPU sensor.
func (e *Env) MeasureCPU(m int, t0, t1, dt float64) ([]float64, error) {
	if m < 0 || m >= e.platform.Size() {
		return nil, fmt.Errorf("simenv: machine %d out of range", m)
	}
	if !(dt > 0) || t1 < t0 {
		return nil, errors.New("simenv: bad measurement range")
	}
	n := sampleSteps(t0, t1, dt)
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, e.RawCPUAvail(m, t0+float64(i)*dt))
	}
	return out, nil
}

// sampleSteps returns the number of dt steps from t0 to the last sample at
// or before t1. Iterating on the step index instead of accumulating t += dt
// keeps non-representable periods like 0.1 from drifting enough to skip or
// duplicate the final sample on long ranges.
func sampleSteps(t0, t1, dt float64) int {
	return int(math.Floor((t1-t0)/dt + 1e-9))
}

// MeasureBandwidth probes the link between i and j every dt over [t0, t1],
// returning achieved bandwidth in bytes/second for a probe of probeBytes —
// the primitive behind the NWS network sensor and the data for Figure 3.
func (e *Env) MeasureBandwidth(i, j int, probeBytes, t0, t1, dt float64) ([]float64, error) {
	if !(dt > 0) || t1 < t0 {
		return nil, errors.New("simenv: bad measurement range")
	}
	if !(probeBytes > 0) {
		return nil, errors.New("simenv: probe size must be positive")
	}
	n := sampleSteps(t0, t1, dt)
	out := make([]float64, 0, n+1)
	for k := 0; k <= n; k++ {
		dur, err := e.TransferDuration(i, j, probeBytes, t0+float64(k)*dt)
		if err != nil {
			return nil, err
		}
		out = append(out, probeBytes/dur)
	}
	return out, nil
}
