package simenv

import (
	"math"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/stats"
)

func dedicatedEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewDedicated(cluster.Platform1())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	p := cluster.Platform1()
	ded := load.Dedicated()
	if _, err := New(nil, nil, ded); err == nil {
		t.Error("nil platform should fail")
	}
	if _, err := New(p, []load.Process{ded}, ded); err == nil {
		t.Error("wrong cpu count should fail")
	}
	cpus := []load.Process{ded, ded, ded, nil}
	if _, err := New(p, cpus, ded); err == nil {
		t.Error("nil cpu process should fail")
	}
	cpus[3] = ded
	if _, err := New(p, cpus, nil); err == nil {
		t.Error("nil net process should fail")
	}
	e, err := New(p, cpus, ded)
	if err != nil || e.Platform() != p {
		t.Errorf("valid env failed: %v", err)
	}
}

func TestWorkDurationDedicated(t *testing.T) {
	e := dedicatedEnv(t)
	// sparc2-a: 0.5e6 elems/s. 1e6 elements -> exactly 2 s.
	d, err := e.WorkDuration(0, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-9 {
		t.Errorf("duration=%g want 2", d)
	}
	// Time-invariant when dedicated.
	d2, _ := e.WorkDuration(0, 1e6, 12345.678)
	if math.Abs(d2-2) > 1e-9 {
		t.Errorf("duration at offset=%g want 2", d2)
	}
	// Faster machine takes proportionally less time.
	d3, _ := e.WorkDuration(3, 1e6, 0) // sparc10 = 3.5x
	if math.Abs(d3-2/3.5) > 1e-9 {
		t.Errorf("sparc10 duration=%g want %g", d3, 2/3.5)
	}
}

func TestWorkDurationEdgeCases(t *testing.T) {
	e := dedicatedEnv(t)
	if d, err := e.WorkDuration(0, 0, 5); err != nil || d != 0 {
		t.Errorf("zero work: %g, %v", d, err)
	}
	if _, err := e.WorkDuration(0, -1, 0); err == nil {
		t.Error("negative work should fail")
	}
	if _, err := e.WorkDuration(9, 1, 0); err == nil {
		t.Error("bad machine should fail")
	}
	if _, err := e.WorkDuration(-1, 1, 0); err == nil {
		t.Error("negative machine should fail")
	}
}

func TestWorkDurationUnderHalfLoad(t *testing.T) {
	p := cluster.Platform1()
	half := load.NewConstant(0.5)
	cpus := []load.Process{half, half, half, half}
	e, err := New(p, cpus, load.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.WorkDuration(0, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half availability doubles the dedicated 2 s.
	if math.Abs(d-4) > 1e-9 {
		t.Errorf("duration=%g want 4", d)
	}
}

func TestWorkDurationIntegratesAcrossLoadChange(t *testing.T) {
	// Availability 1.0 for t<10, then 0.25: a job needing 15 "seconds of
	// dedicated work" started at 0 finishes 10 + 5/0.25 = 30 s later.
	p := cluster.TwoMachineExample() // machine A: 0.1 units/s
	step := &stepProcess{switchAt: 10, before: 1.0, after: 0.25}
	e, err := New(p, []load.Process{step, load.Dedicated()}, load.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	// 1.5 units of work = 15 s dedicated on A.
	d, err := e.WorkDuration(0, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-30) > 1e-9 {
		t.Errorf("duration=%g want 30", d)
	}
	// Started after the switch, it's all slow: 15/0.25 = 60.
	d2, _ := e.WorkDuration(0, 1.5, 20)
	if math.Abs(d2-60) > 1e-9 {
		t.Errorf("duration=%g want 60", d2)
	}
}

// stepProcess is a deterministic availability step for integration tests.
type stepProcess struct {
	switchAt      float64
	before, after float64
}

func (s *stepProcess) At(t float64) float64 {
	if t < s.switchAt {
		return s.before
	}
	return s.after
}
func (s *stepProcess) Interval() float64 { return 1 }

func TestCPUAvailFlooring(t *testing.T) {
	p := cluster.Platform1()
	zero := load.NewConstant(0)
	cpus := []load.Process{zero, zero, zero, zero}
	e, err := New(p, cpus, zero)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.CPUAvail(0, 5); got != minAvail {
		t.Errorf("floored avail=%g want %g", got, minAvail)
	}
	if got := e.RawCPUAvail(0, 5); got != 0 {
		t.Errorf("raw avail=%g want 0", got)
	}
	if got := e.BWAvail(0, 1, 5); got != minAvail {
		t.Errorf("floored bw=%g", got)
	}
	// Work still completes thanks to the floor.
	d, err := e.WorkDuration(0, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 / (0.5e6 * minAvail)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("floored duration=%g want %g", d, want)
	}
}

func TestTransferDurationDedicated(t *testing.T) {
	e := dedicatedEnv(t)
	// 1.25 MB over 1.25 MB/s + 1 ms latency = 1.001 s.
	d, err := e.TransferDuration(0, 1, 1.25e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.001) > 1e-9 {
		t.Errorf("duration=%g want 1.001", d)
	}
	// Zero-byte message costs only latency.
	d0, _ := e.TransferDuration(0, 1, 0, 0)
	if math.Abs(d0-1e-3) > 1e-12 {
		t.Errorf("empty message=%g want 0.001", d0)
	}
	if _, err := e.TransferDuration(0, 0, 10, 0); err == nil {
		t.Error("self transfer should fail")
	}
	if _, err := e.TransferDuration(0, 1, -1, 0); err == nil {
		t.Error("negative bytes should fail")
	}
}

func TestTransferSlowsUnderContention(t *testing.T) {
	p := cluster.Platform1()
	ded := load.Dedicated()
	cpus := []load.Process{ded, ded, ded, ded}
	congested, err := New(p, cpus, load.NewConstant(0.5))
	if err != nil {
		t.Fatal(err)
	}
	clean := dedicatedEnv(t)
	dc, _ := clean.TransferDuration(0, 1, 1e6, 0)
	dg, _ := congested.TransferDuration(0, 1, 1e6, 0)
	if dg <= dc*1.9 {
		t.Errorf("congested %g should be ~2x clean %g", dg, dc)
	}
}

func TestMeasureCPU(t *testing.T) {
	p := cluster.Platform1()
	proc, err := load.Platform1CenterMode(31)
	if err != nil {
		t.Fatal(err)
	}
	ded := load.Dedicated()
	e, err := New(p, []load.Process{proc, ded, ded, ded}, ded)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := e.MeasureCPU(0, 0, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1001 {
		t.Fatalf("samples=%d", len(xs))
	}
	if m := stats.Mean(xs); math.Abs(m-0.48) > 0.02 {
		t.Errorf("measured mean=%g want ~0.48", m)
	}
	if _, err := e.MeasureCPU(9, 0, 10, 1); err == nil {
		t.Error("bad machine should fail")
	}
	if _, err := e.MeasureCPU(0, 10, 0, 1); err == nil {
		t.Error("reversed range should fail")
	}
	if _, err := e.MeasureCPU(0, 0, 10, 0); err == nil {
		t.Error("dt=0 should fail")
	}
}

func TestMeasureBandwidthLongTailed(t *testing.T) {
	p := cluster.Platform1()
	ded := load.Dedicated()
	contention, err := load.EthernetContention(37)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(p, []load.Process{ded, ded, ded, ded}, contention)
	if err != nil {
		t.Fatal(err)
	}
	// Short probes so each sample sees one availability segment.
	bws, err := e.MeasureBandwidth(0, 1, 12500, 0, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mean achieved bandwidth ~0.525 * 1.25e6 B/s = 5.25 Mbit/s; the probe
	// latency drags it down slightly.
	mbit := make([]float64, len(bws))
	for i, b := range bws {
		mbit[i] = b * 8 / 1e6
	}
	m := stats.Mean(mbit)
	if m < 4.5 || m > 5.5 {
		t.Errorf("mean bandwidth=%g Mbit/s want ~5.2", m)
	}
	// Left-tailed like Figure 3.
	med, _ := stats.Median(mbit)
	if med <= m {
		t.Errorf("median %g should exceed mean %g", med, m)
	}
	if _, err := e.MeasureBandwidth(0, 1, 0, 0, 10, 1); err == nil {
		t.Error("zero probe should fail")
	}
	if _, err := e.MeasureBandwidth(0, 1, 100, 10, 0, 1); err == nil {
		t.Error("reversed range should fail")
	}
}

func TestWorkDurationDeterminism(t *testing.T) {
	p := cluster.Platform1()
	mk := func() *Env {
		proc, _ := load.Platform2FourModeBursty(77)
		ded := load.Dedicated()
		e, _ := New(p, []load.Process{proc, ded, ded, ded}, ded)
		return e
	}
	a, b := mk(), mk()
	for _, start := range []float64{0, 100, 333.3} {
		da, err := a.WorkDuration(0, 3e6, start)
		if err != nil {
			t.Fatal(err)
		}
		db, _ := b.WorkDuration(0, 3e6, start)
		if da != db {
			t.Fatalf("nondeterministic at start=%g: %g vs %g", start, da, db)
		}
	}
}

func TestMeasureLoopsDoNotDriftOnLongRanges(t *testing.T) {
	// Regression: accumulating t += dt drifts for non-representable steps
	// like 0.1 and dropped the final sample on long ranges (e.g. [0,10000]
	// at dt=0.1 yielded 100000 samples instead of 100001). The loops now
	// iterate on an integer step index.
	p := cluster.Platform1()
	e, err := NewDedicated(p)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := e.MeasureCPU(0, 0, 10000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 100001 {
		t.Errorf("MeasureCPU samples=%d want 100001", len(xs))
	}
	bs, err := e.MeasureBandwidth(0, 1, 1000, 0, 3000, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 10001 {
		t.Errorf("MeasureBandwidth samples=%d want 10001", len(bs))
	}
	// Non-multiple end stays exclusive: [0, 0.95] at dt=0.1 has 10 samples.
	xs, err = e.MeasureCPU(0, 0, 0.95, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 10 {
		t.Errorf("partial-range samples=%d want 10", len(xs))
	}
}
