package structural

import (
	"math"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/simenv"
	"prodpred/internal/stochastic"
)

// twoMachineMW models the §1.2 example: machine A does a unit of work in
// 10 s dedicated, machine B in 5 s.
func twoMachineMW(unitsA, unitsB int) *MasterWorkerConfig {
	plat := cluster.TwoMachineExample()
	return &MasterWorkerConfig{
		Units:       []int{unitsA, unitsB},
		Machines:    []cluster.Machine{plat.Machine(0), plat.Machine(1)},
		UnitElems:   1, // one "element" per unit; rates are units/second
		ResultBytes: 0,
		MaxStrategy: stochastic.LargestMean,
	}
}

func TestMasterWorkerValidation(t *testing.T) {
	good := twoMachineMW(10, 20)
	if _, err := good.Build(); err != nil {
		t.Fatalf("valid config failed: %v", err)
	}
	bad := *good
	bad.Units = nil
	if _, err := bad.Build(); err == nil {
		t.Error("no workers should fail")
	}
	bad = *good
	bad.Units = []int{1}
	if _, err := bad.Build(); err == nil {
		t.Error("length mismatch should fail")
	}
	bad = *good
	bad.Units = []int{-1, 2}
	if _, err := bad.Build(); err == nil {
		t.Error("negative units should fail")
	}
	bad = *good
	bad.UnitElems = 0
	if _, err := bad.Build(); err == nil {
		t.Error("zero UnitElems should fail")
	}
	bad = *good
	bad.ResultBytes = -1
	if _, err := bad.Build(); err == nil {
		t.Error("negative ResultBytes should fail")
	}
	bad = *good
	bad.ResultBytes = 100 // now the link matters
	if _, err := bad.Build(); err == nil {
		t.Error("invalid link with collection should fail")
	}
	bad = *good
	bad.Machines = []cluster.Machine{{Name: "x"}, good.Machines[1]}
	if _, err := bad.Build(); err == nil {
		t.Error("invalid machine should fail")
	}
}

func TestMasterWorkerDedicatedPrediction(t *testing.T) {
	// 30 units on A at 10 s each vs 60 on B at 5 s each: both finish in
	// 300 s, the balanced dedicated split from Table 1's discussion.
	cfg := twoMachineMW(30, 60)
	pred, err := cfg.Predict(cfg.DedicatedParams())
	if err != nil {
		t.Fatal(err)
	}
	if !pred.IsPoint() || math.Abs(pred.Mean-300) > 1e-9 {
		t.Errorf("prediction=%v want point 300", pred)
	}
}

func TestMasterWorkerProductionPrediction(t *testing.T) {
	// Table 1 production: both machines average 12 s/unit. With equal
	// 50/50 split, B's ±30% dominates the interval under
	// LargestMagnitude.
	cfg := twoMachineMW(50, 50)
	params := Params{
		BWAvailParam: stochastic.Point(1),
		// loads such that unit times are 12 s: avail = ded/12.
		LoadParam(0): stochastic.FromPercent(10.0/12.0, 5),
		LoadParam(1): stochastic.FromPercent(5.0/12.0, 30),
	}
	cfg.MaxStrategy = stochastic.LargestMagnitude
	pred, err := cfg.Predict(params)
	if err != nil {
		t.Fatal(err)
	}
	// 50 units * 12 s = 600 s mean; first-order spread ~ ±30% -> ~180.
	if math.Abs(pred.Mean-600) > 1 {
		t.Errorf("mean=%g want ~600", pred.Mean)
	}
	if pred.Spread < 120 || pred.Spread > 240 {
		t.Errorf("spread=%g want ~180", pred.Spread)
	}
}

func TestMasterWorkerCollectionTerm(t *testing.T) {
	cfg := twoMachineMW(10, 10)
	cfg.ResultBytes = 1.25e6 // 1 s per unit-result at dedicated bandwidth
	cfg.Link = cluster.Ethernet10Mbit()
	pred, err := cfg.Predict(cfg.DedicatedParams())
	if err != nil {
		t.Fatal(err)
	}
	// Compute: max(10*10, 10*5) = 100 s. Collection: 20 units * 1 s + 2
	// latencies.
	want := 100.0 + 20 + 2*1e-3
	if math.Abs(pred.Mean-want) > 1e-9 {
		t.Errorf("mean=%g want %g", pred.Mean, want)
	}
	// Zero-unit worker has a zero collection component.
	cfg2 := twoMachineMW(0, 10)
	cfg2.ResultBytes = 100
	cfg2.Link = cluster.Ethernet10Mbit()
	v, err := cfg2.CollectComponent(0).Eval(cfg2.DedicatedParams())
	if err != nil || v != stochastic.Point(0) {
		t.Errorf("zero-unit collect=%v err=%v", v, err)
	}
}

func TestMasterWorkerAgainstSimulation(t *testing.T) {
	// The model's dedicated prediction matches a simulated execution:
	// each machine computes its units, then results drain over the shared
	// link sequentially.
	plat := cluster.TwoMachineExample()
	env, err := simenv.NewDedicated(plat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoMachineMW(30, 60)
	cfg.ResultBytes = 125e3 // 0.1 s per unit result
	cfg.Link = cluster.Ethernet10Mbit()
	pred, err := cfg.Predict(cfg.DedicatedParams())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate: compute in parallel; collection serialized on the medium.
	var maxComp float64
	for p, units := range cfg.Units {
		d, err := env.WorkDuration(p, float64(units)*cfg.UnitElems, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d > maxComp {
			maxComp = d
		}
	}
	tNow := maxComp
	for p, units := range cfg.Units {
		if units == 0 {
			continue
		}
		d, err := env.TransferDuration(p, (p+1)%2, float64(units)*cfg.ResultBytes, tNow)
		if err != nil {
			t.Fatal(err)
		}
		tNow += d
	}
	actual := tNow
	if math.Abs(pred.Mean-actual)/actual > 0.02 {
		t.Errorf("model %g vs simulated %g (>2%%)", pred.Mean, actual)
	}
}

func TestMasterWorkerLoadWidensInterval(t *testing.T) {
	cfg := twoMachineMW(50, 50)
	// Under LargestMean a mean-tie would pick the point-valued machine and
	// silently drop the spread — the §2.3.3 subtlety. Use the magnitude
	// strategy, which sees B's wider range.
	cfg.MaxStrategy = stochastic.LargestMagnitude
	base := cfg.DedicatedParams()
	noisy := cfg.DedicatedParams()
	noisy[LoadParam(1)] = stochastic.New(0.5, 0.2)
	vb, err := cfg.Predict(base)
	if err != nil {
		t.Fatal(err)
	}
	vn, err := cfg.Predict(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if vn.Spread <= vb.Spread {
		t.Errorf("noisy load should widen: %v vs %v", vn, vb)
	}
}
