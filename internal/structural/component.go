// Package structural implements structural performance models (Schopf '97)
// extended with stochastic parameters, the paper's §2.2: a prediction model
// is an expression tree of component models over named parameters, and
// evaluating the tree with stochastic parameter values yields a stochastic
// prediction.
//
// Composition nodes mirror the paper's combination rules: sums and products
// come in related/unrelated variants (Table 2), and group operators (Max)
// take an explicit resolution strategy (§2.3.3).
package structural

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"prodpred/internal/stochastic"
)

// Params maps parameter names to stochastic values. Point parameters are
// stochastic.Point values.
type Params map[string]stochastic.Value

// Clone returns a copy of the parameter set.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Component is a node of a structural model: it evaluates to a stochastic
// value given the model parameters.
type Component interface {
	Eval(p Params) (stochastic.Value, error)
	// String renders the component as a readable expression.
	String() string
}

// Param references a named model parameter.
type Param string

// Eval implements Component.
func (r Param) Eval(p Params) (stochastic.Value, error) {
	v, ok := p[string(r)]
	if !ok {
		return stochastic.Value{}, fmt.Errorf("structural: missing parameter %q", string(r))
	}
	return v, nil
}

// String implements Component.
func (r Param) String() string { return string(r) }

// Const is a fixed stochastic value embedded in the model.
type Const struct{ V stochastic.Value }

// Eval implements Component.
func (c Const) Eval(Params) (stochastic.Value, error) { return c.V, nil }

// String implements Component.
func (c Const) String() string { return c.V.String() }

// PointConst returns a Const holding a point value.
func PointConst(x float64) Const { return Const{V: stochastic.Point(x)} }

// Relation tags a combining node with the paper's relatedness judgement.
type Relation int

// Related distributions are causally coupled (conservative combination);
// Unrelated distributions are independent (root-sum-square combination).
const (
	Related Relation = iota
	Unrelated
)

func (r Relation) String() string {
	if r == Related {
		return "related"
	}
	return "unrelated"
}

// Sum adds its terms under the given relation.
type Sum struct {
	Rel   Relation
	Terms []Component
}

// Eval implements Component.
func (s Sum) Eval(p Params) (stochastic.Value, error) {
	if len(s.Terms) == 0 {
		return stochastic.Value{}, errors.New("structural: empty sum")
	}
	vals := make([]stochastic.Value, len(s.Terms))
	for i, t := range s.Terms {
		v, err := t.Eval(p)
		if err != nil {
			return stochastic.Value{}, err
		}
		vals[i] = v
	}
	if s.Rel == Related {
		return stochastic.SumRelated(vals...), nil
	}
	return stochastic.SumUnrelated(vals...), nil
}

// String implements Component.
func (s Sum) String() string {
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " +"+s.Rel.String()[:3]+" ") + ")"
}

// Mul multiplies two components under the given relation.
type Mul struct {
	Rel  Relation
	A, B Component
}

// Eval implements Component.
func (m Mul) Eval(p Params) (stochastic.Value, error) {
	a, err := m.A.Eval(p)
	if err != nil {
		return stochastic.Value{}, err
	}
	b, err := m.B.Eval(p)
	if err != nil {
		return stochastic.Value{}, err
	}
	if m.Rel == Related {
		return a.MulRelated(b), nil
	}
	return a.MulUnrelated(b), nil
}

// String implements Component.
func (m Mul) String() string {
	return fmt.Sprintf("(%s *%s %s)", m.A.String(), m.Rel.String()[:3], m.B.String())
}

// Div divides A by B under the given relation.
type Div struct {
	Rel  Relation
	A, B Component
}

// Eval implements Component.
func (d Div) Eval(p Params) (stochastic.Value, error) {
	a, err := d.A.Eval(p)
	if err != nil {
		return stochastic.Value{}, err
	}
	b, err := d.B.Eval(p)
	if err != nil {
		return stochastic.Value{}, err
	}
	if b.Mean == 0 {
		return stochastic.Value{}, fmt.Errorf("structural: division by zero-mean %s", d.B.String())
	}
	if d.Rel == Related {
		return a.DivRelated(b), nil
	}
	return a.DivUnrelated(b), nil
}

// String implements Component.
func (d Div) String() string {
	return fmt.Sprintf("(%s /%s %s)", d.A.String(), d.Rel.String()[:3], d.B.String())
}

// Scale multiplies a component by a point factor (e.g. NumIts).
type Scale struct {
	K float64
	C Component
}

// Eval implements Component.
func (s Scale) Eval(p Params) (stochastic.Value, error) {
	v, err := s.C.Eval(p)
	if err != nil {
		return stochastic.Value{}, err
	}
	return v.MulPoint(s.K), nil
}

// String implements Component.
func (s Scale) String() string { return fmt.Sprintf("(%g * %s)", s.K, s.C.String()) }

// MaxOver applies the Max group operator with the given strategy.
type MaxOver struct {
	Strategy stochastic.MaxStrategy
	Terms    []Component
}

// Eval implements Component.
func (m MaxOver) Eval(p Params) (stochastic.Value, error) {
	if len(m.Terms) == 0 {
		return stochastic.Value{}, errors.New("structural: empty max")
	}
	vals := make([]stochastic.Value, len(m.Terms))
	for i, t := range m.Terms {
		v, err := t.Eval(p)
		if err != nil {
			return stochastic.Value{}, err
		}
		vals[i] = v
	}
	return stochastic.Max(m.Strategy, vals...)
}

// String implements Component.
func (m MaxOver) String() string {
	parts := make([]string, len(m.Terms))
	for i, t := range m.Terms {
		parts[i] = t.String()
	}
	return "Max{" + strings.Join(parts, ", ") + "}"
}

// Repeat combines K iid copies of a component under the given relation:
// Related yields mean*K ± spread*K — identical to Scale and the paper's
// implicit choice when summing over iterations, since each iteration draws
// from the same system state — while Unrelated yields mean*K ±
// spread*sqrt(K), treating iterations as independent draws. The difference
// is the subject of the iteration-relation ablation.
type Repeat struct {
	K   float64
	Rel Relation
	C   Component
}

// Eval implements Component.
func (r Repeat) Eval(p Params) (stochastic.Value, error) {
	if r.K < 0 {
		return stochastic.Value{}, fmt.Errorf("structural: negative repeat count %g", r.K)
	}
	v, err := r.C.Eval(p)
	if err != nil {
		return stochastic.Value{}, err
	}
	if r.Rel == Related {
		return v.MulPoint(r.K), nil
	}
	return stochastic.Value{Mean: v.Mean * r.K, Spread: v.Spread * math.Sqrt(r.K)}, nil
}

// String implements Component.
func (r Repeat) String() string {
	return fmt.Sprintf("(%g x%s %s)", r.K, r.Rel.String()[:3], r.C.String())
}

// Func is an escape hatch for custom component models.
type Func struct {
	Label string
	F     func(p Params) (stochastic.Value, error)
}

// Eval implements Component.
func (f Func) Eval(p Params) (stochastic.Value, error) { return f.F(p) }

// String implements Component.
func (f Func) String() string { return f.Label }
