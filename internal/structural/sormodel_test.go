package structural

import (
	"math"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

// platform1Config builds a capacity-balanced SOR config on Platform 1.
func platform1Config(t *testing.T, n, iters int) *SORConfig {
	t.Helper()
	plat := cluster.Platform1()
	weights := make([]float64, plat.Size())
	machines := make([]cluster.Machine, plat.Size())
	for i := range weights {
		machines[i] = plat.Machine(i)
		weights[i] = machines[i].ElemRate
	}
	pt, err := sor.NewWeightedPartition(n, weights)
	if err != nil {
		t.Fatal(err)
	}
	link, err := plat.Link(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &SORConfig{
		N:           n,
		Iterations:  iters,
		Partition:   pt,
		Machines:    machines,
		MachineIdx:  sor.IdentityMapping(plat.Size()),
		Link:        link,
		MaxStrategy: stochastic.LargestMean,
	}
}

func TestSORConfigValidation(t *testing.T) {
	good := platform1Config(t, 100, 10)
	if _, err := good.Build(); err != nil {
		t.Fatalf("valid config failed: %v", err)
	}
	bad := *good
	bad.Partition = nil
	if _, err := bad.Build(); err == nil {
		t.Error("nil partition should fail")
	}
	bad = *good
	bad.N = 99
	if _, err := bad.Build(); err == nil {
		t.Error("N mismatch should fail")
	}
	bad = *good
	bad.Iterations = 0
	if _, err := bad.Build(); err == nil {
		t.Error("zero iterations should fail")
	}
	bad = *good
	bad.Machines = bad.Machines[:2]
	if _, err := bad.Build(); err == nil {
		t.Error("machine count mismatch should fail")
	}
	bad = *good
	bad.MachineIdx = []int{0}
	if _, err := bad.Build(); err == nil {
		t.Error("MachineIdx mismatch should fail")
	}
	bad = *good
	bad.Link = cluster.Link{}
	if _, err := bad.Build(); err == nil {
		t.Error("invalid link should fail")
	}
	bad = *good
	bad.Machines = append([]cluster.Machine(nil), good.Machines...)
	bad.Machines[0] = cluster.Machine{Name: "broken"}
	if _, err := bad.Build(); err == nil {
		t.Error("invalid machine should fail")
	}
}

func TestDedicatedPredictionWithinTwoPercent(t *testing.T) {
	// §2.2.1: "In a dedicated setting, the structural model defined in
	// this section predicted overall application execution times to within
	// 2% of actual execution time."
	for _, n := range []int{400, 1000} {
		cfg := platform1Config(t, n, 20)
		pred, err := cfg.Predict(cfg.DedicatedParams())
		if err != nil {
			t.Fatal(err)
		}
		env, err := simenv.NewDedicated(cluster.Platform1())
		if err != nil {
			t.Fatal(err)
		}
		g, err := sor.NewGrid(n)
		if err != nil {
			t.Fatal(err)
		}
		g.SetBoundary(func(x, y float64) float64 { return x + y })
		sb, err := sor.NewSimBackend(env, cfg.Partition, cfg.MachineIdx)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.Run(g, sor.DefaultOmega, cfg.Iterations, 0)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(pred.Mean-res.ExecTime) / res.ExecTime
		if relErr > 0.02 {
			t.Errorf("n=%d: predicted %.4fs actual %.4fs (%.1f%% error)",
				n, pred.Mean, res.ExecTime, relErr*100)
		}
		// Dedicated parameters are points, so the prediction is a point.
		if !pred.IsPoint() {
			t.Errorf("n=%d: dedicated prediction has spread %g", n, pred.Spread)
		}
	}
}

func TestStochasticPredictionCoversProductionRuns(t *testing.T) {
	// With load 0.48 ± 0.05 on the slowest machine (the paper's §3.1
	// regime), actual production runtimes should land inside the
	// stochastic interval.
	n := 800
	cfg := platform1Config(t, n, 20)
	params := cfg.DedicatedParams()
	params[LoadParam(0)] = stochastic.New(0.48, 0.05)
	params[LoadParam(1)] = stochastic.New(0.48, 0.05)
	pred, err := cfg.Predict(params)
	if err != nil {
		t.Fatal(err)
	}
	if pred.IsPoint() {
		t.Fatal("production prediction should carry spread")
	}

	plat := cluster.Platform1()
	ded := load.Dedicated()
	captured := 0
	const runs = 8
	for seed := int64(0); seed < runs; seed++ {
		proc0, err := load.Platform1CenterMode(100 + seed)
		if err != nil {
			t.Fatal(err)
		}
		proc1, err := load.Platform1CenterMode(200 + seed)
		if err != nil {
			t.Fatal(err)
		}
		env, err := simenv.New(plat, []load.Process{proc0, proc1, ded, ded}, ded)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := sor.NewGrid(n)
		g.SetBoundary(func(x, y float64) float64 { return x + y })
		sb, err := sor.NewSimBackend(env, cfg.Partition, cfg.MachineIdx)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sb.Run(g, sor.DefaultOmega, cfg.Iterations, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Contains(res.ExecTime) {
			captured++
		} else if pred.RelativeErrorOutside(res.ExecTime) > 0.15 {
			t.Errorf("seed %d: runtime %.3f far outside %v", seed, res.ExecTime, pred)
		}
	}
	if captured < runs*3/4 {
		t.Errorf("captured %d/%d runs in %v", captured, runs, pred)
	}
}

func TestPredictionScalesWithProblemSize(t *testing.T) {
	small := platform1Config(t, 500, 10)
	big := platform1Config(t, 1000, 10)
	ps, err := small.Predict(small.DedicatedParams())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := big.Predict(big.DedicatedParams())
	if err != nil {
		t.Fatal(err)
	}
	// Compute scales ~4x with N^2; comm scales ~2x: between 3x and 4.2x.
	ratio := pb.Mean / ps.Mean
	if ratio < 3 || ratio > 4.2 {
		t.Errorf("scaling ratio=%g", ratio)
	}
}

func TestLoadSpreadWidensPrediction(t *testing.T) {
	cfg := platform1Config(t, 600, 10)
	narrow := cfg.DedicatedParams()
	narrow[LoadParam(0)] = stochastic.New(0.5, 0.02)
	wide := cfg.DedicatedParams()
	wide[LoadParam(0)] = stochastic.New(0.5, 0.2)
	vn, err := cfg.Predict(narrow)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := cfg.Predict(wide)
	if err != nil {
		t.Fatal(err)
	}
	if vw.Spread <= vn.Spread {
		t.Errorf("wide load spread %g should widen prediction (narrow %g)", vw.Spread, vn.Spread)
	}
	if math.Abs(vw.Mean-vn.Mean) > 1e-9 {
		t.Errorf("means should agree: %g vs %g", vw.Mean, vn.Mean)
	}
}

func TestCommComponentZeroForSingleStrip(t *testing.T) {
	pt, err := sor.NewEqualPartition(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &SORConfig{
		N: 50, Iterations: 5, Partition: pt,
		Machines:    []cluster.Machine{cluster.Sparc5("solo")},
		Link:        cluster.Ethernet10Mbit(),
		MaxStrategy: stochastic.LargestMean,
	}
	comm := cfg.CommComponent(0)
	v, err := comm.Eval(cfg.DedicatedParams())
	if err != nil {
		t.Fatal(err)
	}
	if v != stochastic.Point(0) {
		t.Errorf("single-strip comm=%v want 0", v)
	}
}

func TestSameMachineCommIsFree(t *testing.T) {
	pt, err := sor.NewEqualPartition(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &SORConfig{
		N: 50, Iterations: 5, Partition: pt,
		Machines:    []cluster.Machine{cluster.Sparc5("m"), cluster.Sparc5("m")},
		MachineIdx:  []int{0, 0},
		Link:        cluster.Ethernet10Mbit(),
		MaxStrategy: stochastic.LargestMean,
	}
	v, err := cfg.CommComponent(0).Eval(cfg.DedicatedParams())
	if err != nil {
		t.Fatal(err)
	}
	if v.Mean != 0 {
		t.Errorf("same-machine comm=%v want 0", v)
	}
}

func TestMissingLoadParamFails(t *testing.T) {
	cfg := platform1Config(t, 100, 5)
	params := cfg.DedicatedParams()
	delete(params, LoadParam(2))
	if _, err := cfg.Predict(params); err == nil {
		t.Error("missing load parameter should fail")
	}
	delete(params, BWAvailParam)
	if _, err := cfg.Predict(params); err == nil {
		t.Error("missing bwavail should fail")
	}
}

func TestMaxStrategyAffectsPrediction(t *testing.T) {
	cfg := platform1Config(t, 600, 10)
	params := cfg.DedicatedParams()
	// Two loaded machines with different variances: strategy choice
	// matters.
	params[LoadParam(0)] = stochastic.New(0.5, 0.02)
	params[LoadParam(1)] = stochastic.New(0.55, 0.25)
	mean := *cfg
	mean.MaxStrategy = stochastic.LargestMean
	mag := *cfg
	mag.MaxStrategy = stochastic.LargestMagnitude
	vMean, err := mean.Predict(params)
	if err != nil {
		t.Fatal(err)
	}
	vMag, err := mag.Predict(params)
	if err != nil {
		t.Fatal(err)
	}
	if vMean == vMag {
		t.Error("strategies should produce different predictions here")
	}
}
