package structural

import (
	"errors"
	"fmt"

	"prodpred/internal/cluster"
	"prodpred/internal/stochastic"
)

// MasterWorkerConfig is the structural model of the embarrassingly parallel
// application class from the paper's §1.2 example: a fixed number of
// independent work units distributed to machines, with per-unit results
// collected back over a shared link. Structural models are meant to be
// adaptable across applications (§2.2); this is the second instantiation
// beside the SOR model:
//
//	ExTime = Max_p{ Comp_p } + Sum_p{ Collect_p }
//	Comp_p    = Units_p * UnitElems * BM_p / load_p
//	Collect_p = Units_p * ResultBytes / (DedBW * BWAvail) + Latency
//
// Collections share the medium, so they combine with the related rule.
type MasterWorkerConfig struct {
	// Units[p] is the number of work units assigned to machine p.
	Units    []int
	Machines []cluster.Machine
	// UnitElems is the compute cost of one unit in element-equivalents
	// (the unit of Machine.ElemRate).
	UnitElems float64
	// ResultBytes is the size of one unit's result sent back to the
	// master. Zero disables the collection term.
	ResultBytes float64
	Link        cluster.Link
	MaxStrategy stochastic.MaxStrategy
}

func (c *MasterWorkerConfig) validate() error {
	if len(c.Units) == 0 {
		return errors.New("structural: no workers")
	}
	if len(c.Units) != len(c.Machines) {
		return errors.New("structural: units/machines length mismatch")
	}
	for i, u := range c.Units {
		if u < 0 {
			return fmt.Errorf("structural: negative units for worker %d", i)
		}
	}
	for _, m := range c.Machines {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	if !(c.UnitElems > 0) {
		return errors.New("structural: UnitElems must be positive")
	}
	if c.ResultBytes < 0 {
		return errors.New("structural: negative ResultBytes")
	}
	if c.ResultBytes > 0 {
		return c.Link.Validate()
	}
	return nil
}

// CompComponent returns worker p's computation component.
func (c *MasterWorkerConfig) CompComponent(p int) Component {
	work := float64(c.Units[p]) * c.UnitElems / c.Machines[p].ElemRate
	return Div{Rel: Unrelated, A: PointConst(work), B: Param(LoadParam(p))}
}

// CollectComponent returns worker p's result-collection component.
func (c *MasterWorkerConfig) CollectComponent(p int) Component {
	if c.ResultBytes == 0 || c.Units[p] == 0 {
		return PointConst(0)
	}
	bytes := float64(c.Units[p]) * c.ResultBytes
	return Sum{Rel: Related, Terms: []Component{
		Div{Rel: Unrelated, A: PointConst(bytes / c.Link.DedBW), B: Param(BWAvailParam)},
		PointConst(c.Link.Latency),
	}}
}

// Build assembles the model.
func (c *MasterWorkerConfig) Build() (Component, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	comps := make([]Component, len(c.Units))
	collects := make([]Component, len(c.Units))
	for p := range c.Units {
		comps[p] = c.CompComponent(p)
		collects[p] = c.CollectComponent(p)
	}
	return Sum{Rel: Related, Terms: []Component{
		MaxOver{Strategy: c.MaxStrategy, Terms: comps},
		Sum{Rel: Related, Terms: collects},
	}}, nil
}

// Predict builds and evaluates the model.
func (c *MasterWorkerConfig) Predict(params Params) (stochastic.Value, error) {
	model, err := c.Build()
	if err != nil {
		return stochastic.Value{}, err
	}
	return model.Eval(params)
}

// DedicatedParams returns point parameters for an unloaded system.
func (c *MasterWorkerConfig) DedicatedParams() Params {
	params := Params{BWAvailParam: stochastic.Point(1)}
	for p := range c.Units {
		params[LoadParam(p)] = stochastic.Point(1)
	}
	return params
}
