package structural

import (
	"errors"
	"fmt"

	"prodpred/internal/cluster"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

// LoadParam returns the parameter name of processor p's CPU availability.
func LoadParam(p int) string { return fmt.Sprintf("load[%d]", p) }

// BWAvailParam is the parameter name of the network-availability fraction.
const BWAvailParam = "bwavail"

// SORConfig describes the distributed SOR run being modeled: the problem,
// the decomposition, and the machines executing each strip.
type SORConfig struct {
	N          int            // grid size
	Iterations int            // NumIts
	Partition  *sor.Partition // strip decomposition
	Machines   []cluster.Machine
	// MachineIdx maps each strip to its platform machine index; strips on
	// the same machine exchange ghost rows for free, matching the
	// simulator. When nil, all strips are assumed to be on distinct
	// machines.
	MachineIdx []int
	Link       cluster.Link
	// MaxStrategy resolves the Max over processors (§2.3.3).
	MaxStrategy stochastic.MaxStrategy
	// IterationRel governs how the per-phase values combine across the
	// NumIts iterations: Related (default, the paper's choice — each
	// iteration sees the same system state, spread scales with NumIts) or
	// Unrelated (iterations as independent draws, spread scales with
	// sqrt(NumIts)). See the iteration-relation ablation.
	IterationRel Relation
}

func (c *SORConfig) validate() error {
	if c.Partition == nil {
		return errors.New("structural: nil partition")
	}
	if err := c.Partition.Validate(); err != nil {
		return err
	}
	if c.N != c.Partition.N {
		return fmt.Errorf("structural: N=%d does not match partition N=%d", c.N, c.Partition.N)
	}
	if c.Iterations <= 0 {
		return errors.New("structural: iterations must be positive")
	}
	if len(c.Machines) != c.Partition.P() {
		return fmt.Errorf("structural: %d machines for %d strips", len(c.Machines), c.Partition.P())
	}
	for _, m := range c.Machines {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	if c.MachineIdx != nil && len(c.MachineIdx) != c.Partition.P() {
		return errors.New("structural: MachineIdx length mismatch")
	}
	return c.Link.Validate()
}

func (c *SORConfig) sameMachine(a, b int) bool {
	if c.MachineIdx == nil {
		return false
	}
	return c.MachineIdx[a] == c.MachineIdx[b]
}

// CompComponent returns the computation component model for one color
// phase on strip p (the paper's Comp_p2 / load form):
//
//	Comp_p = NumElt_p/2 * BM(Elt_p) / load_p
//
// where BM is the dedicated per-element benchmark time (1/ElemRate) and
// load_p is the stochastic CPU-availability parameter.
func (c *SORConfig) CompComponent(p int) Component {
	elems := float64(c.Partition.Elems(p)) / 2
	bm := 1 / c.Machines[p].ElemRate
	return Div{
		Rel: Unrelated,
		A:   PointConst(elems * bm),
		B:   Param(LoadParam(p)),
	}
}

// OpCountComp returns the operation-count computation component of §2.2.1
// (the paper's Comp_p1 form): NumElt * Op(p, Elt) / CPU_p, divided by the
// stochastic load parameter. numElts is the element count for the phase,
// opsPerElt the operations per element, opsPerSec the machine's dedicated
// operation rate, and loadParam the availability parameter name. It is the
// alternative to the benchmark-based CompComponent; with consistent
// calibration (opsPerElt/opsPerSec == 1/ElemRate) the two agree exactly.
func OpCountComp(numElts, opsPerElt, opsPerSec float64, loadParam string) (Component, error) {
	if !(numElts >= 0) || !(opsPerElt > 0) || !(opsPerSec > 0) {
		return nil, fmt.Errorf("structural: invalid op-count parameters (%g, %g, %g)",
			numElts, opsPerElt, opsPerSec)
	}
	return Div{
		Rel: Unrelated,
		A:   PointConst(numElts * opsPerElt / opsPerSec),
		B:   Param(loadParam),
	}, nil
}

// PtToPtComponent returns the point-to-point communication model of
// §2.2.1 for one ghost row from strip x to strip y:
//
//	PtToPt(x,y) = NumElt * Size(Elt) / (DedBW * BWAvail) + Latency
//
// Transfers between strips on the same machine cost zero.
func (c *SORConfig) PtToPtComponent(x, y int) Component {
	if c.sameMachine(x, y) {
		return PointConst(0)
	}
	bytes := c.Partition.GhostRowBytes()
	return Sum{Rel: Related, Terms: []Component{
		Div{
			Rel: Unrelated,
			A:   PointConst(bytes / c.Link.DedBW),
			B:   Param(BWAvailParam),
		},
		PointConst(c.Link.Latency),
	}}
}

// CommComponent returns the communication component for one color phase on
// strip p: SendLR_p + ReceLR_p, the sends to and receipts from both
// neighbors (edge strips have one neighbor).
func (c *SORConfig) CommComponent(p int) Component {
	var terms []Component
	last := c.Partition.P() - 1
	if p > 0 {
		terms = append(terms,
			c.PtToPtComponent(p, p-1), // SendLR: to left neighbor
			c.PtToPtComponent(p-1, p), // ReceLR: from left neighbor
		)
	}
	if p < last {
		terms = append(terms,
			c.PtToPtComponent(p, p+1),
			c.PtToPtComponent(p+1, p),
		)
	}
	if len(terms) == 0 {
		return PointConst(0) // single strip: no communication
	}
	// Successive transfers on the shared medium contend with each other:
	// related combination.
	return Sum{Rel: Related, Terms: terms}
}

// Build assembles the full structural model of §2.2.1:
//
//	ExTime = Sum_{i=1..NumIts} [ Max_p{RedComp_p} + Max_p{RedComm_p}
//	                           + Max_p{BlackComp_p} + Max_p{BlackComm_p} ]
//
// Red and black phases use identical component models (the strips do half
// their points in each), so the sum collapses to NumIts * 2 * (MaxComp +
// MaxComm) with time-invariant parameters.
func (c *SORConfig) Build() (Component, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	p := c.Partition.P()
	comps := make([]Component, p)
	comms := make([]Component, p)
	for i := 0; i < p; i++ {
		comps[i] = c.CompComponent(i)
		comms[i] = c.CommComponent(i)
	}
	perPhasePair := Sum{Rel: Related, Terms: []Component{
		MaxOver{Strategy: c.MaxStrategy, Terms: comps},
		MaxOver{Strategy: c.MaxStrategy, Terms: comms},
	}}
	// Red + Black per iteration = 2 phase pairs; NumIts iterations.
	return Repeat{K: 2 * float64(c.Iterations), Rel: c.IterationRel, C: perPhasePair}, nil
}

// Predict builds the model and evaluates it against params, returning the
// stochastic execution-time prediction.
func (c *SORConfig) Predict(params Params) (stochastic.Value, error) {
	model, err := c.Build()
	if err != nil {
		return stochastic.Value{}, err
	}
	return model.Eval(params)
}

// DedicatedParams returns the parameter set of an unloaded system: every
// load at point value 1 and full bandwidth availability.
func (c *SORConfig) DedicatedParams() Params {
	params := Params{BWAvailParam: stochastic.Point(1)}
	for p := 0; p < c.Partition.P(); p++ {
		params[LoadParam(p)] = stochastic.Point(1)
	}
	return params
}
