package structural

import (
	"errors"
	"math"
	"strings"
	"testing"

	"prodpred/internal/stochastic"
)

func TestParamEval(t *testing.T) {
	p := Params{"x": stochastic.New(3, 1)}
	v, err := Param("x").Eval(p)
	if err != nil || v != stochastic.New(3, 1) {
		t.Errorf("Eval=%v err=%v", v, err)
	}
	if _, err := Param("missing").Eval(p); err == nil {
		t.Error("missing parameter should fail")
	}
	if Param("x").String() != "x" {
		t.Error("String")
	}
}

func TestParamsClone(t *testing.T) {
	p := Params{"x": stochastic.Point(1)}
	c := p.Clone()
	c["x"] = stochastic.Point(2)
	if p["x"] != stochastic.Point(1) {
		t.Error("Clone aliases the original")
	}
}

func TestConstEval(t *testing.T) {
	c := PointConst(5)
	v, err := c.Eval(nil)
	if err != nil || v != stochastic.Point(5) {
		t.Errorf("Eval=%v err=%v", v, err)
	}
	if c.String() != "5" {
		t.Errorf("String=%q", c.String())
	}
}

func TestSumEval(t *testing.T) {
	p := Params{
		"a": stochastic.New(3, 3),
		"b": stochastic.New(4, 4),
	}
	rel := Sum{Rel: Related, Terms: []Component{Param("a"), Param("b")}}
	v, err := rel.Eval(p)
	if err != nil || v != stochastic.New(7, 7) {
		t.Errorf("related sum=%v err=%v", v, err)
	}
	unrel := Sum{Rel: Unrelated, Terms: []Component{Param("a"), Param("b")}}
	v, err = unrel.Eval(p)
	if err != nil || !v.ApproxEqual(stochastic.New(7, 5), 1e-12) {
		t.Errorf("unrelated sum=%v err=%v", v, err)
	}
	if _, err := (Sum{}).Eval(p); err == nil {
		t.Error("empty sum should fail")
	}
	if _, err := (Sum{Terms: []Component{Param("zz")}}).Eval(p); err == nil {
		t.Error("missing param should propagate")
	}
}

func TestMulDivEval(t *testing.T) {
	p := Params{
		"a": stochastic.New(10, 1),
		"b": stochastic.New(5, 2),
	}
	v, err := (Mul{Rel: Related, A: Param("a"), B: Param("b")}).Eval(p)
	if err != nil || v != stochastic.New(50, 27) {
		t.Errorf("related mul=%v err=%v", v, err)
	}
	v, err = (Mul{Rel: Unrelated, A: Param("a"), B: Param("b")}).Eval(p)
	want := stochastic.New(10, 1).MulUnrelated(stochastic.New(5, 2))
	if err != nil || !v.ApproxEqual(want, 1e-12) {
		t.Errorf("unrelated mul=%v err=%v", v, err)
	}
	v, err = (Div{Rel: Unrelated, A: Param("a"), B: Param("b")}).Eval(p)
	if err != nil || math.Abs(v.Mean-2) > 1e-12 {
		t.Errorf("div=%v err=%v", v, err)
	}
	if _, err := (Div{Rel: Related, A: Param("a"), B: PointConst(0)}).Eval(p); err == nil {
		t.Error("divide by zero should fail")
	}
	if _, err := (Mul{Rel: Related, A: Param("zz"), B: Param("a")}).Eval(p); err == nil {
		t.Error("missing A should fail")
	}
	if _, err := (Mul{Rel: Related, A: Param("a"), B: Param("zz")}).Eval(p); err == nil {
		t.Error("missing B should fail")
	}
	if _, err := (Div{Rel: Related, A: Param("zz"), B: Param("a")}).Eval(p); err == nil {
		t.Error("missing div A should fail")
	}
	if _, err := (Div{Rel: Related, A: Param("a"), B: Param("zz")}).Eval(p); err == nil {
		t.Error("missing div B should fail")
	}
}

func TestScaleEval(t *testing.T) {
	p := Params{"a": stochastic.New(2, 0.5)}
	v, err := (Scale{K: 10, C: Param("a")}).Eval(p)
	if err != nil || v != stochastic.New(20, 5) {
		t.Errorf("scale=%v err=%v", v, err)
	}
	if _, err := (Scale{K: 2, C: Param("zz")}).Eval(p); err == nil {
		t.Error("missing param should propagate")
	}
}

func TestMaxOverEval(t *testing.T) {
	p := Params{
		"a": stochastic.New(4, 0.5),
		"b": stochastic.New(3, 2),
	}
	v, err := (MaxOver{Strategy: stochastic.LargestMean,
		Terms: []Component{Param("a"), Param("b")}}).Eval(p)
	if err != nil || v != stochastic.New(4, 0.5) {
		t.Errorf("max=%v err=%v", v, err)
	}
	v, err = (MaxOver{Strategy: stochastic.LargestMagnitude,
		Terms: []Component{Param("a"), Param("b")}}).Eval(p)
	if err != nil || v != stochastic.New(3, 2) {
		t.Errorf("max magnitude=%v err=%v", v, err)
	}
	if _, err := (MaxOver{}).Eval(p); err == nil {
		t.Error("empty max should fail")
	}
	if _, err := (MaxOver{Terms: []Component{Param("zz")}}).Eval(p); err == nil {
		t.Error("missing param should propagate")
	}
}

func TestFuncEval(t *testing.T) {
	f := Func{Label: "custom", F: func(Params) (stochastic.Value, error) {
		return stochastic.Point(9), nil
	}}
	v, err := f.Eval(nil)
	if err != nil || v != stochastic.Point(9) {
		t.Errorf("func=%v err=%v", v, err)
	}
	if f.String() != "custom" {
		t.Error("label")
	}
	fErr := Func{Label: "boom", F: func(Params) (stochastic.Value, error) {
		return stochastic.Value{}, errors.New("boom")
	}}
	if _, err := fErr.Eval(nil); err == nil {
		t.Error("func error should propagate")
	}
}

func TestNestedModelEvaluation(t *testing.T) {
	// A small latency+bandwidth model: Comm = Latency + MsgSize/Bandwidth
	// (§2.3.1's example), with stochastic latency and bandwidth.
	p := Params{
		"latency":   stochastic.New(0.01, 0.002),
		"bandwidth": stochastic.New(1e6, 2e5),
	}
	comm := Sum{Rel: Related, Terms: []Component{
		Param("latency"),
		Div{Rel: Unrelated, A: PointConst(5e5), B: Param("bandwidth")},
	}}
	v, err := comm.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Mean-0.51) > 1e-9 {
		t.Errorf("comm mean=%g want 0.51", v.Mean)
	}
	if v.Spread <= 0.002 {
		t.Errorf("spread=%g should include bandwidth uncertainty", v.Spread)
	}
}

func TestRepeatRelatedEqualsScale(t *testing.T) {
	p := Params{"a": stochastic.New(2, 0.5)}
	rep, err := (Repeat{K: 10, Rel: Related, C: Param("a")}).Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := (Scale{K: 10, C: Param("a")}).Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep != sc {
		t.Errorf("related repeat %v != scale %v", rep, sc)
	}
}

func TestRepeatUnrelatedSqrtScaling(t *testing.T) {
	p := Params{"a": stochastic.New(2, 0.5)}
	v, err := (Repeat{K: 16, Rel: Unrelated, C: Param("a")}).Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	// mean*16, spread*sqrt(16)=4.
	if !v.ApproxEqual(stochastic.New(32, 2), 1e-12) {
		t.Errorf("unrelated repeat=%v want 32±2", v)
	}
	// Unrelated repeat is narrower than related for K > 1.
	r, _ := (Repeat{K: 16, Rel: Related, C: Param("a")}).Eval(p)
	if v.Spread >= r.Spread {
		t.Errorf("unrelated spread %g should be below related %g", v.Spread, r.Spread)
	}
}

func TestRepeatValidation(t *testing.T) {
	p := Params{"a": stochastic.New(2, 0.5)}
	if _, err := (Repeat{K: -1, Rel: Related, C: Param("a")}).Eval(p); err == nil {
		t.Error("negative K should fail")
	}
	if _, err := (Repeat{K: 2, Rel: Related, C: Param("zz")}).Eval(p); err == nil {
		t.Error("missing param should propagate")
	}
	if s := (Repeat{K: 3, Rel: Unrelated, C: Param("a")}).String(); !strings.Contains(s, "xunr") {
		t.Errorf("Repeat string %q", s)
	}
	// K = 0 collapses to the zero point value under both relations.
	z, err := (Repeat{K: 0, Rel: Unrelated, C: Param("a")}).Eval(p)
	if err != nil || z != stochastic.Point(0) {
		t.Errorf("zero repeat=%v err=%v", z, err)
	}
}

func TestOpCountComp(t *testing.T) {
	// Calibrated identically to a benchmark-based component, the op-count
	// form gives the same prediction (§2.2.1 offers them as equivalents).
	c, err := OpCountComp(1e6, 10, 5e6, "load") // 10 ops/elt at 5M ops/s == 0.5M elts/s
	if err != nil {
		t.Fatal(err)
	}
	p := Params{"load": stochastic.New(0.5, 0.05)}
	v, err := c.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	bench := Div{Rel: Unrelated, A: PointConst(1e6 / 0.5e6), B: Param("load")}
	want, err := bench.Eval(p)
	if err != nil {
		t.Fatal(err)
	}
	if !v.ApproxEqual(want, 1e-9) {
		t.Errorf("op-count %v != benchmark %v", v, want)
	}
	for _, bad := range [][3]float64{{-1, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if _, err := OpCountComp(bad[0], bad[1], bad[2], "load"); err == nil {
			t.Errorf("OpCountComp(%v) should fail", bad)
		}
	}
}

func TestStringRendering(t *testing.T) {
	m := Scale{K: 3, C: Sum{Rel: Related, Terms: []Component{
		Param("a"),
		Mul{Rel: Unrelated, A: Param("b"), B: PointConst(2)},
	}}}
	s := m.String()
	for _, want := range []string{"a", "b", "3", "2", "*unr", "+rel"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	d := Div{Rel: Related, A: Param("x"), B: Param("y")}
	if !strings.Contains(d.String(), "/rel") {
		t.Errorf("div string %q", d.String())
	}
	mo := MaxOver{Terms: []Component{Param("x")}}
	if !strings.Contains(mo.String(), "Max{") {
		t.Errorf("max string %q", mo.String())
	}
	if Related.String() != "related" || Unrelated.String() != "unrelated" {
		t.Error("relation strings")
	}
}
