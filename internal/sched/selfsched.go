package sched

import (
	"errors"
	"fmt"

	"prodpred/internal/simenv"
)

// Dynamic self-scheduling: instead of fixing the work division up front
// from predictions, workers pull chunks of units from a central bag as they
// finish — the classic adaptive alternative the paper's conclusion points
// toward ("sophisticated strategies for scheduling"). Static allocation
// commits to a forecast; self-scheduling tracks the load as it shifts, at
// the price of a dispatch overhead per chunk. Both run against the same
// simulated environment so the strategies are directly comparable.

// StaticResult reports a simulated static-allocation run. All times are in
// virtual seconds.
type StaticResult struct {
	// Makespan is the slowest machine's completion time relative to start.
	Makespan float64
	// Finish[p] is machine p's completion time relative to start.
	Finish []float64
}

// SimulateStatic executes a fixed allocation on the environment: machine p
// performs alloc[p]*unitElems element-equivalents starting at start
// (virtual seconds on the environment's clock). The run is deterministic —
// the environment's load trajectories are pure functions of time — and
// read-only on env, so it is as safe for concurrent use as env.WorkDuration
// is.
func SimulateStatic(env *simenv.Env, alloc []int, unitElems, start float64) (StaticResult, error) {
	if env == nil {
		return StaticResult{}, errors.New("sched: nil environment")
	}
	if len(alloc) != env.Platform().Size() {
		return StaticResult{}, fmt.Errorf("sched: %d allocations for %d machines",
			len(alloc), env.Platform().Size())
	}
	if !(unitElems > 0) {
		return StaticResult{}, errors.New("sched: unitElems must be positive")
	}
	res := StaticResult{Finish: make([]float64, len(alloc))}
	for p, units := range alloc {
		if units < 0 {
			return StaticResult{}, fmt.Errorf("sched: negative allocation %d", units)
		}
		d, err := env.WorkDuration(p, float64(units)*unitElems, start)
		if err != nil {
			return StaticResult{}, err
		}
		res.Finish[p] = d
		if d > res.Makespan {
			res.Makespan = d
		}
	}
	return res, nil
}

// SelfSchedResult reports a simulated self-scheduling run.
type SelfSchedResult struct {
	// Makespan is the last machine's completion time relative to start, in
	// virtual seconds.
	Makespan float64
	// UnitsDone[p] counts the units machine p ended up executing.
	UnitsDone []int
	// Chunks is the total number of dispatches.
	Chunks int
}

// SimulateSelfScheduling executes totalUnits units with dynamic
// self-scheduling: whenever a machine goes idle it pulls the next chunk of
// units from the bag, paying dispatchCost virtual seconds per pull (the
// request/response on the shared network). Smaller chunks adapt faster but
// pay more dispatch overhead. start is on the environment's virtual clock;
// idle-machine ties break on the lowest machine index, so the run is
// deterministic for identical inputs. Read-only on env: safe for
// concurrent use to the extent env.WorkDuration is.
func SimulateSelfScheduling(env *simenv.Env, totalUnits, chunk int, unitElems, dispatchCost, start float64) (SelfSchedResult, error) {
	if env == nil {
		return SelfSchedResult{}, errors.New("sched: nil environment")
	}
	if totalUnits < 0 {
		return SelfSchedResult{}, errors.New("sched: negative work")
	}
	if chunk <= 0 {
		return SelfSchedResult{}, errors.New("sched: chunk must be positive")
	}
	if !(unitElems > 0) {
		return SelfSchedResult{}, errors.New("sched: unitElems must be positive")
	}
	if dispatchCost < 0 {
		return SelfSchedResult{}, errors.New("sched: negative dispatch cost")
	}
	p := env.Platform().Size()
	clocks := make([]float64, p)
	for i := range clocks {
		clocks[i] = start
	}
	res := SelfSchedResult{UnitsDone: make([]int, p)}
	remaining := totalUnits
	for remaining > 0 {
		// The next idle machine pulls work.
		m := 0
		for i := 1; i < p; i++ {
			if clocks[i] < clocks[m] {
				m = i
			}
		}
		take := chunk
		if take > remaining {
			take = remaining
		}
		remaining -= take
		clocks[m] += dispatchCost
		d, err := env.WorkDuration(m, float64(take)*unitElems, clocks[m])
		if err != nil {
			return SelfSchedResult{}, err
		}
		clocks[m] += d
		res.UnitsDone[m] += take
		res.Chunks++
	}
	for _, c := range clocks {
		if c-start > res.Makespan {
			res.Makespan = c - start
		}
	}
	return res, nil
}
