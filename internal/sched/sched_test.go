package sched

import (
	"math"
	"math/rand"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/stochastic"
)

// table1UnitTimes returns the production unit-work times of the paper's
// Table 1: both machines at 12 s mean, A at ±5%, B at ±30%.
func table1UnitTimes() []stochastic.Value {
	return []stochastic.Value{
		stochastic.FromPercent(12, 5),
		stochastic.FromPercent(12, 30),
	}
}

func TestUnitAllocationMeanBalancedEqualMeans(t *testing.T) {
	alloc, err := UnitAllocation(100, table1UnitTimes(), MeanBalanced)
	if err != nil {
		t.Fatal(err)
	}
	// Equal means -> equal split, the paper's point-value conclusion.
	if alloc[0] != 50 || alloc[1] != 50 {
		t.Errorf("alloc=%v want [50 50]", alloc)
	}
}

func TestUnitAllocationDedicated(t *testing.T) {
	// Dedicated times 10 s and 5 s: "machine B should receive twice as
	// much work as machine A" (Table 1 discussion).
	unit := []stochastic.Value{stochastic.Point(10), stochastic.Point(5)}
	alloc, err := UnitAllocation(90, unit, MeanBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 30 || alloc[1] != 60 {
		t.Errorf("alloc=%v want [30 60]", alloc)
	}
}

func TestUnitAllocationConservativeFavorsStableMachine(t *testing.T) {
	alloc, err := UnitAllocation(100, table1UnitTimes(), Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] <= alloc[1] {
		t.Errorf("conservative alloc=%v should favor the ±5%% machine", alloc)
	}
	if alloc[0]+alloc[1] != 100 {
		t.Errorf("total %d", alloc[0]+alloc[1])
	}
}

func TestUnitAllocationOptimisticFavorsVolatileMachine(t *testing.T) {
	alloc, err := UnitAllocation(100, table1UnitTimes(), Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	// B's best case (8.4 s/unit) beats A's (11.4 s/unit).
	if alloc[1] <= alloc[0] {
		t.Errorf("optimistic alloc=%v should favor the ±30%% machine", alloc)
	}
}

func TestUnitAllocationErrors(t *testing.T) {
	unit := table1UnitTimes()
	if _, err := UnitAllocation(-1, unit, MeanBalanced); err == nil {
		t.Error("negative work should fail")
	}
	if _, err := UnitAllocation(10, nil, MeanBalanced); err == nil {
		t.Error("no machines should fail")
	}
	if _, err := UnitAllocation(10, unit, Strategy(99)); err == nil {
		t.Error("unknown strategy should fail")
	}
	// A unit time whose Lo is negative breaks Optimistic.
	bad := []stochastic.Value{stochastic.New(1, 2)}
	if _, err := UnitAllocation(10, bad, Optimistic); err == nil {
		t.Error("non-positive effective time should fail")
	}
	if _, err := UnitAllocation(10, []stochastic.Value{stochastic.Point(0)}, MeanBalanced); err == nil {
		t.Error("zero unit time should fail")
	}
}

func TestUnitAllocationConservesTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(6)
		unit := make([]stochastic.Value, m)
		for i := range unit {
			mean := 1 + rng.Float64()*20
			unit[i] = stochastic.FromPercent(mean, rng.Float64()*40)
		}
		total := rng.Intn(1000)
		for _, s := range []Strategy{MeanBalanced, Conservative, Optimistic} {
			alloc, err := UnitAllocation(total, unit, s)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for _, a := range alloc {
				if a < 0 {
					t.Fatalf("negative allocation %v", alloc)
				}
				sum += a
			}
			if sum != total {
				t.Fatalf("strategy %v: sum=%d want %d", s, sum, total)
			}
		}
	}
}

func TestPredictMakespan(t *testing.T) {
	unit := table1UnitTimes()
	v, err := PredictMakespan([]int{50, 50}, unit, stochastic.LargestMagnitude)
	if err != nil {
		t.Fatal(err)
	}
	// B's 50 units: 600 ± 180 dominates in magnitude.
	if !v.ApproxEqual(stochastic.New(600, 180), 1e-9) {
		t.Errorf("makespan=%v", v)
	}
	if _, err := PredictMakespan([]int{1}, unit, stochastic.LargestMean); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PredictMakespan(nil, nil, stochastic.LargestMean); err == nil {
		t.Error("empty should fail")
	}
	if _, err := PredictMakespan([]int{-1, 1}, unit, stochastic.LargestMean); err == nil {
		t.Error("negative alloc should fail")
	}
}

func TestSimulateMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	unit := []stochastic.Value{stochastic.Point(2), stochastic.Point(3)}
	m, err := SimulateMakespan([]int{10, 5}, unit, rng)
	if err != nil || m != 20 {
		t.Errorf("makespan=%g err=%v want 20", m, err)
	}
	if _, err := SimulateMakespan([]int{1}, unit, rng); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestOverrunPenalty(t *testing.T) {
	p := OverrunPenalty(10)
	if p(100, 90) != 0 {
		t.Error("early finish should cost nothing")
	}
	if p(100, 103) != 30 {
		t.Errorf("overrun penalty=%g want 30", p(100, 103))
	}
}

func TestConservativeBeatsMeanUnderPenalty(t *testing.T) {
	// The §1.2 thesis: when misses are expensive, planning against the
	// interval (conservative) outperforms planning against the mean.
	rng := rand.New(rand.NewSource(11))
	penalty := OverrunPenalty(100)
	unit := table1UnitTimes()
	mean, err := EvaluatePolicy(100, unit, MeanBalanced, penalty, rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := EvaluatePolicy(100, unit, Conservative, penalty, rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if cons.MeanPenalty >= mean.MeanPenalty {
		t.Errorf("conservative penalty %g should beat mean %g",
			cons.MeanPenalty, mean.MeanPenalty)
	}
	// Conservative promises later but keeps its promises far more often.
	if cons.Promised <= mean.Promised {
		t.Errorf("conservative promise %g should exceed mean promise %g",
			cons.Promised, mean.Promised)
	}
}

func TestOptimisticFastestOnAverageMakespan(t *testing.T) {
	// With no penalty, pushing work to the often-faster volatile machine
	// should not be worse on mean makespan than conservative.
	rng := rand.New(rand.NewSource(13))
	unit := []stochastic.Value{
		stochastic.FromPercent(12, 5),
		stochastic.FromPercent(10, 30), // faster on average AND volatile
	}
	opt, err := EvaluatePolicy(100, unit, Optimistic, OverrunPenalty(0), rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := EvaluatePolicy(100, unit, Conservative, OverrunPenalty(0), rng, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if opt.MeanMakespan > cons.MeanMakespan*1.1 {
		t.Errorf("optimistic makespan %g much worse than conservative %g",
			opt.MeanMakespan, cons.MeanMakespan)
	}
}

func TestEvaluatePolicyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := EvaluatePolicy(10, table1UnitTimes(), MeanBalanced, OverrunPenalty(1), rng, 0); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := EvaluatePolicy(10, nil, MeanBalanced, OverrunPenalty(1), rng, 10); err == nil {
		t.Error("no machines should fail")
	}
}

func TestSORPartitionStrategies(t *testing.T) {
	machines := []cluster.Machine{cluster.Sparc2("slow"), cluster.Sparc10("fast")}
	loads := []stochastic.Value{
		stochastic.New(0.9, 0.05), // slow machine, lightly loaded
		stochastic.New(0.4, 0.3),  // fast machine, heavily and noisily loaded
	}
	n := 102
	mean, err := SORPartition(n, machines, loads, MeanBalanced)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := SORPartition(n, machines, loads, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SORPartition(n, machines, loads, Optimistic)
	if err != nil {
		t.Fatal(err)
	}
	// Conservative trusts the volatile fast machine least; optimistic most.
	if !(cons.Rows[1] < mean.Rows[1] && mean.Rows[1] < opt.Rows[1]) {
		t.Errorf("fast-machine rows: cons=%d mean=%d opt=%d",
			cons.Rows[1], mean.Rows[1], opt.Rows[1])
	}
	if err := mean.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSORPartitionErrors(t *testing.T) {
	machines := []cluster.Machine{cluster.Sparc2("a")}
	loads := []stochastic.Value{stochastic.Point(0.5)}
	if _, err := SORPartition(100, machines, loads[:0], MeanBalanced); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := SORPartition(100, machines, loads, Strategy(42)); err == nil {
		t.Error("unknown strategy should fail")
	}
	bad := []cluster.Machine{{Name: "x"}}
	if _, err := SORPartition(100, bad, loads, MeanBalanced); err == nil {
		t.Error("invalid machine should fail")
	}
}

func TestStrategyString(t *testing.T) {
	if MeanBalanced.String() != "mean" || Conservative.String() != "conservative" ||
		Optimistic.String() != "optimistic" {
		t.Error("strategy names")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy should still render")
	}
}

func TestNegativeLoadLoClampedInPartition(t *testing.T) {
	machines := []cluster.Machine{cluster.Sparc2("a"), cluster.Sparc2("b")}
	loads := []stochastic.Value{
		stochastic.New(0.1, 0.5), // Lo() < 0: clamped to 0 weight, floor gives 1 row
		stochastic.New(0.9, 0.05),
	}
	pt, err := SORPartition(50, machines, loads, Conservative)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Rows[0] < 1 {
		t.Errorf("clamped machine rows=%d", pt.Rows[0])
	}
	if math.Abs(float64(pt.Rows[0]+pt.Rows[1])-48) > 0 {
		t.Errorf("rows=%v", pt.Rows)
	}
}
