package sched

import (
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/load"
	"prodpred/internal/simenv"
	"prodpred/internal/stochastic"
)

func twoMachineEnv(t *testing.T, loadA, loadB load.Process) *simenv.Env {
	t.Helper()
	env, err := simenv.New(cluster.TwoMachineExample(),
		[]load.Process{loadA, loadB}, load.Dedicated())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSimulateStaticDedicated(t *testing.T) {
	env := twoMachineEnv(t, load.Dedicated(), load.Dedicated())
	// A: 30 units at 10 s; B: 60 at 5 s -> both 300 s.
	res, err := SimulateStatic(env, []int{30, 60}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	if res.Makespan < 300-tol || res.Makespan > 300+tol ||
		res.Finish[0] < 300-tol || res.Finish[1] < 300-tol {
		t.Errorf("res=%+v", res)
	}
}

func TestSimulateStaticValidation(t *testing.T) {
	env := twoMachineEnv(t, load.Dedicated(), load.Dedicated())
	if _, err := SimulateStatic(nil, []int{1, 1}, 1, 0); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := SimulateStatic(env, []int{1}, 1, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := SimulateStatic(env, []int{1, -1}, 1, 0); err == nil {
		t.Error("negative alloc should fail")
	}
	if _, err := SimulateStatic(env, []int{1, 1}, 0, 0); err == nil {
		t.Error("zero unitElems should fail")
	}
}

func TestSimulateSelfSchedulingDedicated(t *testing.T) {
	env := twoMachineEnv(t, load.Dedicated(), load.Dedicated())
	res, err := SimulateSelfScheduling(env, 90, 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B is twice as fast, so it should take ~2/3 of the units; makespan
	// near the optimal 300 s (within one unit granularity).
	if res.UnitsDone[1] < 55 || res.UnitsDone[1] > 65 {
		t.Errorf("fast machine did %d units want ~60", res.UnitsDone[1])
	}
	if res.Makespan < 295 || res.Makespan > 310 {
		t.Errorf("makespan=%g want ~300", res.Makespan)
	}
	if res.Chunks != 90 {
		t.Errorf("chunks=%d", res.Chunks)
	}
}

func TestSimulateSelfSchedulingValidation(t *testing.T) {
	env := twoMachineEnv(t, load.Dedicated(), load.Dedicated())
	if _, err := SimulateSelfScheduling(nil, 10, 1, 1, 0, 0); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := SimulateSelfScheduling(env, -1, 1, 1, 0, 0); err == nil {
		t.Error("negative work should fail")
	}
	if _, err := SimulateSelfScheduling(env, 10, 0, 1, 0, 0); err == nil {
		t.Error("zero chunk should fail")
	}
	if _, err := SimulateSelfScheduling(env, 10, 1, 0, 0, 0); err == nil {
		t.Error("zero unitElems should fail")
	}
	if _, err := SimulateSelfScheduling(env, 10, 1, 1, -1, 0); err == nil {
		t.Error("negative dispatch cost should fail")
	}
	// Zero work: zero makespan.
	res, err := SimulateSelfScheduling(env, 0, 5, 1, 0, 0)
	if err != nil || res.Makespan != 0 || res.Chunks != 0 {
		t.Errorf("zero-work res=%+v err=%v", res, err)
	}
}

func TestSelfSchedulingAdaptsToBurstyLoad(t *testing.T) {
	// Under volatile load, self-scheduling should beat a static
	// mean-balanced split on makespan.
	mkEnv := func(seed int64) *simenv.Env {
		la, err := load.NewSingleMode(10.0/12.0, 0.02, 0.8, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := load.NewMarkovModal(
			[]load.ModeSpec{{Mean: 0.15, Sigma: 0.03}, {Mean: 0.75, Sigma: 0.03}},
			[]float64{0.5, 0.5}, 0.02, 0.7, 1, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		return twoMachineEnv(t, la, lb)
	}
	const units = 120
	staticWins, dynamicWins := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		env := mkEnv(100 + seed*13)
		// Static split from the §1.2 point-value logic (equal means).
		alloc, err := UnitAllocation(units,
			[]stochastic.Value{stochastic.Point(12), stochastic.Point(12)}, MeanBalanced)
		if err != nil {
			t.Fatal(err)
		}
		st, err := SimulateStatic(env, alloc, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		dy, err := SimulateSelfScheduling(env, units, 2, 1, 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dy.Makespan < st.Makespan {
			dynamicWins++
		} else {
			staticWins++
		}
	}
	if dynamicWins <= staticWins {
		t.Errorf("self-scheduling won %d/%d runs against static under bursty load",
			dynamicWins, dynamicWins+staticWins)
	}
}

func TestSelfSchedulingChunkTradeoff(t *testing.T) {
	// With a real dispatch cost, tiny chunks pay overhead and huge chunks
	// lose adaptivity; both should lose to a moderate chunk under
	// volatile load.
	lb, err := load.NewMarkovModal(
		[]load.ModeSpec{{Mean: 0.2, Sigma: 0.02}, {Mean: 0.9, Sigma: 0.02}},
		[]float64{0.5, 0.5}, 0.05, 0.7, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	env := twoMachineEnv(t, load.Dedicated(), lb)
	const units = 200
	const dispatch = 2.0 // expensive dispatches make chunk=1 hurt
	mk := func(chunk int) float64 {
		res, err := SimulateSelfScheduling(env, units, chunk, 1, dispatch, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	tiny := mk(1)
	moderate := mk(10)
	huge := mk(units)
	if moderate >= tiny {
		t.Errorf("moderate chunk %g should beat tiny %g with dispatch cost", moderate, tiny)
	}
	if moderate >= huge {
		t.Errorf("moderate chunk %g should beat one-shot %g under volatile load", moderate, huge)
	}
}
