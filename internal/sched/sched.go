// Package sched implements schedulers that consume stochastic performance
// predictions — the application of stochastic values the paper motivates in
// §1.2: "If the accuracy of the prediction is a priority ... more work
// could be assigned to the small variance machine. If there is little
// penalty for poor predictions, we might optimistically assign a greater
// portion of the work to the often faster machine."
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"prodpred/internal/cluster"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

// Strategy selects how a scheduler reads a stochastic prediction.
type Strategy int

const (
	// MeanBalanced plans against the mean — the conventional point-value
	// policy.
	MeanBalanced Strategy = iota
	// Conservative plans against the pessimistic end of each interval
	// (unit times at Hi, capacities at Lo), favouring low-variance
	// machines when a missed prediction is costly.
	Conservative
	// Optimistic plans against the optimistic end (unit times at Lo,
	// capacities at Hi), chasing the best case when misses are cheap.
	Optimistic
)

func (s Strategy) String() string {
	switch s {
	case MeanBalanced:
		return "mean"
	case Conservative:
		return "conservative"
	case Optimistic:
		return "optimistic"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// effectiveUnitTime reads the per-unit execution time a strategy plans
// against. Unit times must be positive throughout their interval.
func effectiveUnitTime(t stochastic.Value, s Strategy) (float64, error) {
	var v float64
	switch s {
	case MeanBalanced:
		v = t.Mean
	case Conservative:
		v = t.Hi()
	case Optimistic:
		v = t.Lo()
	default:
		return 0, fmt.Errorf("sched: unknown strategy %d", s)
	}
	if v <= 0 {
		return 0, fmt.Errorf("sched: non-positive effective unit time %g (value %v)", v, t)
	}
	return v, nil
}

// UnitAllocation splits `total` indivisible units of work across machines
// whose per-unit execution times are the given stochastic values, balancing
// predicted completion times under the strategy: machine i receives work
// proportional to 1/t_i. Every machine receives at least zero units;
// largest-remainder rounding preserves the total.
func UnitAllocation(total int, unitTimes []stochastic.Value, s Strategy) ([]int, error) {
	if total < 0 {
		return nil, errors.New("sched: negative work")
	}
	if len(unitTimes) == 0 {
		return nil, errors.New("sched: no machines")
	}
	rates := make([]float64, len(unitTimes))
	sum := 0.0
	for i, t := range unitTimes {
		v, err := effectiveUnitTime(t, s)
		if err != nil {
			return nil, err
		}
		rates[i] = 1 / v
		sum += rates[i]
	}
	alloc := make([]int, len(rates))
	fracs := make([]float64, len(rates))
	assigned := 0
	for i, r := range rates {
		exact := float64(total) * r / sum
		alloc[i] = int(exact)
		fracs[i] = exact - float64(alloc[i])
		assigned += alloc[i]
	}
	for assigned < total {
		best := 0
		for i := range fracs {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		alloc[best]++
		fracs[best] = -1
		assigned++
	}
	return alloc, nil
}

// PredictMakespan returns the stochastic completion-time prediction of an
// allocation: Max_i of alloc_i * unitTime_i, resolved with the given group
// strategy (§2.3.3).
func PredictMakespan(alloc []int, unitTimes []stochastic.Value, max stochastic.MaxStrategy) (stochastic.Value, error) {
	if len(alloc) != len(unitTimes) {
		return stochastic.Value{}, errors.New("sched: allocation length mismatch")
	}
	if len(alloc) == 0 {
		return stochastic.Value{}, errors.New("sched: empty allocation")
	}
	vals := make([]stochastic.Value, len(alloc))
	for i, n := range alloc {
		if n < 0 {
			return stochastic.Value{}, fmt.Errorf("sched: negative allocation %d", n)
		}
		vals[i] = unitTimes[i].MulPoint(float64(n))
	}
	return stochastic.Max(max, vals...)
}

// SimulateMakespan draws one realization of the allocation's completion
// time: each machine's unit time is sampled once per run (machine-wide
// system state) and its strip completes after alloc_i * t_i.
func SimulateMakespan(alloc []int, unitTimes []stochastic.Value, rng *rand.Rand) (float64, error) {
	if len(alloc) != len(unitTimes) {
		return 0, errors.New("sched: allocation length mismatch")
	}
	worst := 0.0
	for i, n := range alloc {
		t := unitTimes[i].Sample(rng)
		if t < 1e-9 {
			t = 1e-9 // availability cannot make work finish instantly
		}
		if v := float64(n) * t; v > worst {
			worst = v
		}
	}
	return worst, nil
}

// PenaltyFn scores one run: given the scheduler's promised completion time
// and the achieved one, it returns the cost of the miss (0 for a run that
// met its promise).
type PenaltyFn func(promised, actual float64) float64

// OverrunPenalty returns a PenaltyFn charging `rate` per second of overrun
// beyond the promise — the "considerable penalty for an inaccurate
// prediction" regime of §1.2.
func OverrunPenalty(rate float64) PenaltyFn {
	return func(promised, actual float64) float64 {
		if actual <= promised {
			return 0
		}
		return rate * (actual - promised)
	}
}

// EvaluatePolicy Monte-Carlo-evaluates a strategy: it allocates, promises
// the strategy's effective makespan, and averages actual makespan and
// penalty over `trials` sampled runs.
type PolicyReport struct {
	Alloc        []int
	Promised     float64
	MeanMakespan float64
	MeanPenalty  float64
}

// EvaluatePolicy runs the full loop for one strategy.
func EvaluatePolicy(total int, unitTimes []stochastic.Value, s Strategy, penalty PenaltyFn, rng *rand.Rand, trials int) (PolicyReport, error) {
	if trials <= 0 {
		return PolicyReport{}, errors.New("sched: trials must be positive")
	}
	alloc, err := UnitAllocation(total, unitTimes, s)
	if err != nil {
		return PolicyReport{}, err
	}
	promised := 0.0
	for i, n := range alloc {
		v, err := effectiveUnitTime(unitTimes[i], s)
		if err != nil {
			return PolicyReport{}, err
		}
		if m := float64(n) * v; m > promised {
			promised = m
		}
	}
	rep := PolicyReport{Alloc: alloc, Promised: promised}
	for k := 0; k < trials; k++ {
		actual, err := SimulateMakespan(alloc, unitTimes, rng)
		if err != nil {
			return PolicyReport{}, err
		}
		rep.MeanMakespan += actual
		rep.MeanPenalty += penalty(promised, actual)
	}
	rep.MeanMakespan /= float64(trials)
	rep.MeanPenalty /= float64(trials)
	return rep, nil
}

// SORPartition builds a strip decomposition for an NxN SOR across the given
// machines, weighting strips by predicted effective capacity
// ElemRate * load under the strategy (capacities read at Lo for
// Conservative, Hi for Optimistic).
func SORPartition(n int, machines []cluster.Machine, loads []stochastic.Value, s Strategy) (*sor.Partition, error) {
	if len(machines) != len(loads) {
		return nil, errors.New("sched: machines/loads length mismatch")
	}
	weights := make([]float64, len(machines))
	for i, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		var avail float64
		switch s {
		case MeanBalanced:
			avail = loads[i].Mean
		case Conservative:
			avail = loads[i].Lo()
		case Optimistic:
			avail = loads[i].Hi()
		default:
			return nil, fmt.Errorf("sched: unknown strategy %d", s)
		}
		weights[i] = m.ElemRate * math.Max(avail, 0)
	}
	return sor.NewWeightedPartition(n, weights)
}
