package sched

import (
	"errors"
	"fmt"
	"math"

	"prodpred/internal/cluster"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

// Time-balanced partitioning, after the AppLeS scheduler the paper's group
// built around these predictions: instead of cutting strips proportional to
// raw capacity (which ignores communication), iteratively refine the strip
// sizes until every strip's *predicted iteration time* — compute under the
// forecast load plus its own ghost-row exchanges — is equal. Edge strips
// have one neighbour and interior strips two, so the refinement shifts rows
// outward; on communication-heavy problems this beats capacity-proportional
// cuts.

// StripTime predicts one full iteration's time, in virtual seconds, for a
// strip of `rows` rows in an n x n grid on the given machine: compute for
// both colors at the mean forecast availability, plus send+receive of one
// ghost row per neighbour per color phase. loadMean is the forecast
// availability fraction (floored at 0.01 so a dead forecast cannot divide
// by zero). Pure and deterministic: no state, safe for concurrent use.
func StripTime(rows, n, neighbors int, m cluster.Machine, loadMean float64, link cluster.Link) float64 {
	if loadMean < 0.01 {
		loadMean = 0.01
	}
	compute := float64(rows*(n-2)) / (m.ElemRate * loadMean)
	ghost := float64(n-2) * 8
	perTransfer := ghost/link.DedBW + link.Latency
	// Two color phases, each with a send and a receive per neighbour.
	comm := float64(4*neighbors) * perTransfer
	return compute + comm
}

// TimeBalancedPartition builds a strip decomposition whose predicted
// per-iteration strip times are equalized by fixed-point refinement. loads
// are the stochastic availability forecasts (dimensionless fractions); the
// mean is planned against (use Conservative/Optimistic reads upstream by
// shifting the loads). refinements bounds the fixed-point iterations; 8 is
// plenty in practice. The refinement is deterministic — identical inputs
// produce the identical partition — and touches no shared state, so
// concurrent calls are safe.
func TimeBalancedPartition(n int, machines []cluster.Machine, loads []stochastic.Value, link cluster.Link, refinements int) (*sor.Partition, error) {
	p := len(machines)
	if p == 0 {
		return nil, errors.New("sched: no machines")
	}
	if len(loads) != p {
		return nil, errors.New("sched: machines/loads length mismatch")
	}
	if refinements < 0 {
		return nil, errors.New("sched: negative refinement count")
	}
	if err := link.Validate(); err != nil {
		return nil, err
	}
	for i, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("sched: machine %d: %w", i, err)
		}
	}
	// Start from capacity-proportional weights.
	weights := make([]float64, p)
	for i, m := range machines {
		weights[i] = m.ElemRate * math.Max(loads[i].Mean, 0.01)
	}
	part, err := sor.NewWeightedPartition(n, weights)
	if err != nil {
		return nil, err
	}
	for r := 0; r < refinements; r++ {
		times := stripTimes(part, n, machines, loads, link)
		// Fixed point: rows_new ∝ rows / t  (a strip running long sheds
		// rows to strips running short).
		changed := false
		for i := range weights {
			w := float64(part.Rows[i]) / times[i]
			if math.Abs(w-weights[i]) > 1e-12 {
				changed = true
			}
			weights[i] = w
		}
		next, err := sor.NewWeightedPartition(n, weights)
		if err != nil {
			return nil, err
		}
		same := true
		for i := range next.Rows {
			if next.Rows[i] != part.Rows[i] {
				same = false
				break
			}
		}
		part = next
		if same || !changed {
			break
		}
	}
	return part, nil
}

func stripTimes(part *sor.Partition, n int, machines []cluster.Machine, loads []stochastic.Value, link cluster.Link) []float64 {
	p := part.P()
	out := make([]float64, p)
	for i := 0; i < p; i++ {
		neighbors := 2
		if i == 0 {
			neighbors--
		}
		if i == p-1 {
			neighbors--
		}
		out[i] = StripTime(part.Rows[i], n, neighbors, machines[i], loads[i].Mean, link)
	}
	return out
}

// Imbalance returns the ratio of the slowest to fastest predicted strip
// time under the given decomposition — dimensionless, 1.0 = perfectly
// balanced. Deterministic and safe for concurrent use.
func Imbalance(part *sor.Partition, n int, machines []cluster.Machine, loads []stochastic.Value, link cluster.Link) (float64, error) {
	if part == nil {
		return 0, errors.New("sched: nil partition")
	}
	if len(machines) != part.P() || len(loads) != part.P() {
		return 0, errors.New("sched: machines/loads length mismatch")
	}
	times := stripTimes(part, n, machines, loads, link)
	lo, hi := times[0], times[0]
	for _, t := range times[1:] {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	if lo <= 0 {
		return 0, errors.New("sched: non-positive predicted strip time")
	}
	return hi / lo, nil
}

// PromiseFor converts a stochastic completion-time prediction into a
// service promise with the given miss probability: the time t, in the
// prediction's own unit (virtual seconds throughout this repo), such that
// P(completion > t) <= missProb under the normal interpretation. This is
// the paper's "service range" alternative to hard QoS guarantees —
// "probabilities associated with values in the service range could be used
// in instances where poor performance can be tolerated a small percentage
// of the time." Pure and deterministic; safe for concurrent use.
func PromiseFor(v stochastic.Value, missProb float64) (float64, error) {
	if missProb <= 0 || missProb >= 1 {
		return 0, fmt.Errorf("sched: miss probability %g outside (0,1)", missProb)
	}
	return v.Quantile(1 - missProb), nil
}
