package sched

import (
	"errors"
	"fmt"

	"prodpred/internal/stochastic"
)

// Objective scores a stochastic makespan prediction; lower is better. The
// score is in the prediction's own time unit (virtual seconds throughout
// this repo). This is the paper's "scheduling strategy tuned to the user's
// performance metric": different metrics over the same stochastic
// prediction yield different best allocations. An Objective must be a pure
// function of its argument — the search below re-evaluates it freely and
// assumes identical inputs score identically.
type Objective func(stochastic.Value) float64

// MeanObjective minimizes the expected makespan (virtual seconds).
func MeanObjective(v stochastic.Value) float64 { return v.Mean }

// UpperBoundObjective minimizes the pessimistic end of the interval
// (Mean + Spread, virtual seconds) — for callers who pay for overruns.
func UpperBoundObjective(v stochastic.Value) float64 { return v.Hi() }

// QuantileObjective returns an objective minimizing the q-th quantile of
// the makespan under the normal interpretation (e.g. 0.95 for a 5%-miss
// service promise). As q approaches 1 the score grows without bound for
// any nonzero spread, so high quantiles increasingly favor low-variance
// machines over low-mean ones; on point values (zero spread) every
// quantile collapses to the mean. The returned closure is stateless and
// safe for concurrent use.
func QuantileObjective(q float64) Objective {
	return func(v stochastic.Value) float64 { return v.Quantile(q) }
}

// OptimizeAllocation searches for the unit allocation minimizing
// objective(PredictMakespan(alloc)) by steepest-descent unit moves from a
// mean-balanced start: repeatedly move one unit between the pair of
// machines that improves the objective most, until no single move helps.
// The objective is evaluated through the Probabilistic group Max so that
// spread differences between machines are visible to the search.
//
// unitTimes are per-unit execution times in virtual seconds (one entry per
// machine); the returned allocation sums to total and the returned Value
// is the predicted makespan of that allocation, also in virtual seconds. A
// single-machine fleet yields the only possible allocation. The
// search is deterministic — identical inputs yield the identical
// allocation, with ties broken by machine index — and shares no state, so
// concurrent calls are safe.
func OptimizeAllocation(total int, unitTimes []stochastic.Value, objective Objective) ([]int, stochastic.Value, error) {
	if objective == nil {
		return nil, stochastic.Value{}, errors.New("sched: nil objective")
	}
	alloc, err := UnitAllocation(total, unitTimes, MeanBalanced)
	if err != nil {
		return nil, stochastic.Value{}, err
	}
	score := func(a []int) (float64, stochastic.Value, error) {
		v, err := PredictMakespan(a, unitTimes, stochastic.Probabilistic)
		if err != nil {
			return 0, stochastic.Value{}, err
		}
		return objective(v), v, nil
	}
	best, bestV, err := score(alloc)
	if err != nil {
		return nil, stochastic.Value{}, err
	}
	n := len(alloc)
	const maxMoves = 100000 // termination backstop far above any real search
	for move := 0; move < maxMoves; move++ {
		improved := false
		bestFrom, bestTo := -1, -1
		bestScore := best
		var bestVal stochastic.Value
		for from := 0; from < n; from++ {
			if alloc[from] == 0 {
				continue
			}
			for to := 0; to < n; to++ {
				if to == from {
					continue
				}
				alloc[from]--
				alloc[to]++
				s, v, err := score(alloc)
				alloc[from]++
				alloc[to]--
				if err != nil {
					return nil, stochastic.Value{}, err
				}
				if s < bestScore-1e-12 {
					bestScore, bestVal = s, v
					bestFrom, bestTo = from, to
					improved = true
				}
			}
		}
		if !improved {
			break
		}
		alloc[bestFrom]--
		alloc[bestTo]++
		best, bestV = bestScore, bestVal
	}
	return alloc, bestV, nil
}

// ObjectiveResult is one row of a CompareObjectives sweep: the objective's
// name, the allocation it chose, and that allocation's predicted makespan
// in virtual seconds.
type ObjectiveResult struct {
	Name     string
	Alloc    []int
	Makespan stochastic.Value
}

// CompareObjectives runs OptimizeAllocation under each of the standard
// objectives (mean, upper-bound, p95) on one problem and returns the
// allocations and predictions, for the tuned-metric comparison the paper
// sketches in §1.2. Deterministic and safe for concurrent use, like the
// search it wraps.
func CompareObjectives(total int, unitTimes []stochastic.Value) ([]ObjectiveResult, error) {
	objectives := []struct {
		name string
		obj  Objective
	}{
		{"mean", MeanObjective},
		{"upper-bound", UpperBoundObjective},
		{"p95", QuantileObjective(0.95)},
	}
	out := make([]ObjectiveResult, 0, len(objectives))
	for _, o := range objectives {
		alloc, v, err := OptimizeAllocation(total, unitTimes, o.obj)
		if err != nil {
			return nil, fmt.Errorf("sched: objective %s: %w", o.name, err)
		}
		out = append(out, ObjectiveResult{Name: o.name, Alloc: alloc, Makespan: v})
	}
	return out, nil
}
