package sched

import (
	"math/rand"
	"testing"

	"prodpred/internal/stochastic"
)

func TestOptimizeAllocationDedicated(t *testing.T) {
	// Point unit times 10 and 5: the optimum is the 1:2 split, makespan
	// ~300 for 90 units.
	unit := []stochastic.Value{stochastic.Point(10), stochastic.Point(5)}
	alloc, v, err := OptimizeAllocation(90, unit, MeanObjective)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 30 || alloc[1] != 60 {
		t.Errorf("alloc=%v want [30 60]", alloc)
	}
	if v.Mean != 300 {
		t.Errorf("makespan=%v", v)
	}
}

func TestOptimizeAllocationVarianceAware(t *testing.T) {
	// Equal means, unequal variance (Table 1). Minimizing the upper bound
	// shifts work to the stable machine relative to minimizing the mean.
	unit := []stochastic.Value{
		stochastic.FromPercent(12, 5),
		stochastic.FromPercent(12, 30),
	}
	allocMean, _, err := OptimizeAllocation(100, unit, MeanObjective)
	if err != nil {
		t.Fatal(err)
	}
	allocUB, vUB, err := OptimizeAllocation(100, unit, UpperBoundObjective)
	if err != nil {
		t.Fatal(err)
	}
	if allocUB[0] <= allocMean[0] {
		t.Errorf("upper-bound objective should favor stable machine: %v vs %v",
			allocUB, allocMean)
	}
	// The upper-bound optimum must not be worse than the mean optimum on
	// its own objective.
	vMean, err := PredictMakespan(allocMean, unit, stochastic.Probabilistic)
	if err != nil {
		t.Fatal(err)
	}
	if vUB.Hi() > vMean.Hi()+1e-9 {
		t.Errorf("optimized Hi %g worse than mean-optimal Hi %g", vUB.Hi(), vMean.Hi())
	}
}

func TestOptimizeAllocationBeatsHeuristics(t *testing.T) {
	// On a random heterogeneous problem, the search should never lose to
	// the closed-form heuristics on its own objective.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.Intn(3)
		unit := make([]stochastic.Value, m)
		for i := range unit {
			unit[i] = stochastic.FromPercent(2+rng.Float64()*20, rng.Float64()*40)
		}
		obj := QuantileObjective(0.95)
		alloc, v, err := OptimizeAllocation(60, unit, obj)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, a := range alloc {
			if a < 0 {
				t.Fatalf("negative allocation %v", alloc)
			}
			total += a
		}
		if total != 60 {
			t.Fatalf("allocation total %d", total)
		}
		for _, s := range []Strategy{MeanBalanced, Conservative, Optimistic} {
			h, err := UnitAllocation(60, unit, s)
			if err != nil {
				t.Fatal(err)
			}
			hv, err := PredictMakespan(h, unit, stochastic.Probabilistic)
			if err != nil {
				t.Fatal(err)
			}
			if obj(v) > obj(hv)+1e-9 {
				t.Errorf("trial %d: optimizer %g lost to heuristic %s %g",
					trial, obj(v), s, obj(hv))
			}
		}
	}
}

func TestOptimizeAllocationValidation(t *testing.T) {
	unit := []stochastic.Value{stochastic.Point(1)}
	if _, _, err := OptimizeAllocation(10, unit, nil); err == nil {
		t.Error("nil objective should fail")
	}
	if _, _, err := OptimizeAllocation(10, nil, MeanObjective); err == nil {
		t.Error("no machines should fail")
	}
	// Single machine: everything lands there.
	alloc, v, err := OptimizeAllocation(10, unit, MeanObjective)
	if err != nil || alloc[0] != 10 || v.Mean != 10 {
		t.Errorf("single machine alloc=%v v=%v err=%v", alloc, v, err)
	}
	// Zero work: zero makespan.
	alloc, v, err = OptimizeAllocation(0, unit, MeanObjective)
	if err != nil || alloc[0] != 0 || v.Mean != 0 {
		t.Errorf("zero work alloc=%v v=%v err=%v", alloc, v, err)
	}
}

func TestCompareObjectives(t *testing.T) {
	unit := []stochastic.Value{
		stochastic.FromPercent(12, 5),
		stochastic.FromPercent(12, 30),
	}
	res, err := CompareObjectives(100, unit)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results=%d", len(res))
	}
	names := map[string]bool{}
	for _, r := range res {
		names[r.Name] = true
		if r.Makespan.Mean <= 0 {
			t.Errorf("%s makespan=%v", r.Name, r.Makespan)
		}
	}
	for _, want := range []string{"mean", "upper-bound", "p95"} {
		if !names[want] {
			t.Errorf("missing objective %s", want)
		}
	}
}

// TestOptimizeAllocationEdges covers the degenerate corners of the search:
// single-machine fleets with real spread, zero-variance unit times (every
// objective must agree), and the quantile objective pushed toward q = 1.
func TestOptimizeAllocationEdges(t *testing.T) {
	// Single-machine fleet, stochastic unit time: the only allocation, with
	// the makespan scaled through the group arithmetic.
	solo := []stochastic.Value{stochastic.FromPercent(7, 25)}
	alloc, v, err := OptimizeAllocation(12, solo, QuantileObjective(0.999))
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) != 1 || alloc[0] != 12 {
		t.Errorf("single machine alloc=%v want [12]", alloc)
	}
	if v.Mean <= 0 || v.Spread <= 0 {
		t.Errorf("single machine makespan lost its spread: %v", v)
	}

	// Zero-variance unit times: quantiles collapse to the mean, so the
	// mean, upper-bound, and extreme-quantile objectives must all pick the
	// same allocation with the same score.
	points := []stochastic.Value{stochastic.Point(9), stochastic.Point(3), stochastic.Point(6)}
	var allocs [][]int
	var scores []float64
	for _, obj := range []Objective{MeanObjective, UpperBoundObjective, QuantileObjective(0.999)} {
		a, av, err := OptimizeAllocation(54, points, obj)
		if err != nil {
			t.Fatal(err)
		}
		allocs = append(allocs, a)
		scores = append(scores, obj(av))
	}
	for i := 1; i < len(allocs); i++ {
		for m := range allocs[0] {
			if allocs[i][m] != allocs[0][m] {
				t.Errorf("objective %d alloc %v diverges from mean alloc %v on point values", i, allocs[i], allocs[0])
				break
			}
		}
		if scores[i] != scores[0] {
			t.Errorf("objective %d score %g != mean score %g on point values", i, scores[i], scores[0])
		}
	}

	// q -> 1: the extreme quantile is dominated by spread, so against an
	// equal-mean volatile machine the stable machine must absorb at least
	// as much work as it does under the mean objective, and the chosen
	// allocation must not lose to the mean-optimal one on its own
	// objective.
	unit := []stochastic.Value{
		stochastic.FromPercent(12, 2),
		stochastic.FromPercent(12, 45),
	}
	q := QuantileObjective(0.999)
	allocQ, vQ, err := OptimizeAllocation(100, unit, q)
	if err != nil {
		t.Fatal(err)
	}
	allocMean, _, err := OptimizeAllocation(100, unit, MeanObjective)
	if err != nil {
		t.Fatal(err)
	}
	if allocQ[0] < allocMean[0] {
		t.Errorf("q=0.999 should load the stable machine at least as hard: %v vs mean %v", allocQ, allocMean)
	}
	vMean, err := PredictMakespan(allocMean, unit, stochastic.Probabilistic)
	if err != nil {
		t.Fatal(err)
	}
	if q(vQ) > q(vMean)+1e-9 {
		t.Errorf("q=0.999 optimum %g worse than mean-optimal %g on its own objective", q(vQ), q(vMean))
	}
}
