package sched

import (
	"math"
	"testing"

	"prodpred/internal/cluster"
	"prodpred/internal/simenv"
	"prodpred/internal/sor"
	"prodpred/internal/stochastic"
)

func platform1Machines() []cluster.Machine {
	p := cluster.Platform1()
	out := make([]cluster.Machine, p.Size())
	for i := range out {
		out[i] = p.Machine(i)
	}
	return out
}

func dedicatedLoads(n int) []stochastic.Value {
	out := make([]stochastic.Value, n)
	for i := range out {
		out[i] = stochastic.Point(1)
	}
	return out
}

func TestStripTime(t *testing.T) {
	m := cluster.Sparc2("a") // 0.5e6 elem/s
	link := cluster.Ethernet10Mbit()
	// 100 rows x 98 cols at full availability: compute = 9800/0.5e6.
	got := StripTime(100, 100, 0, m, 1.0, link)
	want := 100 * 98 / 0.5e6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("compute-only StripTime=%g want %g", got, want)
	}
	// Neighbours add 4 transfers each.
	ghost := 98 * 8.0
	per := ghost/1.25e6 + 1e-3
	got2 := StripTime(100, 100, 2, m, 1.0, link)
	if math.Abs(got2-(want+8*per)) > 1e-12 {
		t.Errorf("comm StripTime=%g want %g", got2, want+8*per)
	}
	// Load floors at 0.01.
	if StripTime(10, 100, 0, m, 0, link) != StripTime(10, 100, 0, m, 0.01, link) {
		t.Error("zero load should floor")
	}
}

func TestTimeBalancedPartitionValidation(t *testing.T) {
	ms := platform1Machines()
	link := cluster.Ethernet10Mbit()
	if _, err := TimeBalancedPartition(100, nil, nil, link, 5); err == nil {
		t.Error("no machines should fail")
	}
	if _, err := TimeBalancedPartition(100, ms, dedicatedLoads(2), link, 5); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := TimeBalancedPartition(100, ms, dedicatedLoads(4), link, -1); err == nil {
		t.Error("negative refinements should fail")
	}
	if _, err := TimeBalancedPartition(100, ms, dedicatedLoads(4), cluster.Link{}, 5); err == nil {
		t.Error("bad link should fail")
	}
	bad := append([]cluster.Machine(nil), ms...)
	bad[0] = cluster.Machine{Name: "x"}
	if _, err := TimeBalancedPartition(100, bad, dedicatedLoads(4), link, 5); err == nil {
		t.Error("bad machine should fail")
	}
}

func TestTimeBalancedPartitionReducesImbalance(t *testing.T) {
	// Small grid on a heterogeneous platform: communication is a large
	// share of strip time, so capacity-proportional cuts leave the
	// interior strips overloaded.
	ms := platform1Machines()
	loads := dedicatedLoads(4)
	link := cluster.Ethernet10Mbit()
	n := 120

	capWeights := make([]float64, 4)
	for i, m := range ms {
		capWeights[i] = m.ElemRate
	}
	capPart, err := sor.NewWeightedPartition(n, capWeights)
	if err != nil {
		t.Fatal(err)
	}
	capImb, err := Imbalance(capPart, n, ms, loads, link)
	if err != nil {
		t.Fatal(err)
	}

	balPart, err := TimeBalancedPartition(n, ms, loads, link, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := balPart.Validate(); err != nil {
		t.Fatal(err)
	}
	balImb, err := Imbalance(balPart, n, ms, loads, link)
	if err != nil {
		t.Fatal(err)
	}
	if balImb >= capImb {
		t.Errorf("time-balanced imbalance %.3f should beat capacity %.3f", balImb, capImb)
	}
	if balImb > 1.5 {
		t.Errorf("residual imbalance %.3f too high", balImb)
	}
}

func TestTimeBalancedPartitionBeatsCapacityInSimulation(t *testing.T) {
	// End-to-end: the refined decomposition should run faster on the
	// simulator for a comm-heavy problem.
	plat := cluster.Platform1()
	env, err := simenv.NewDedicated(plat)
	if err != nil {
		t.Fatal(err)
	}
	ms := platform1Machines()
	loads := dedicatedLoads(4)
	link := cluster.Ethernet10Mbit()
	n := 120

	run := func(part *sor.Partition) float64 {
		g, err := sor.NewGrid(n)
		if err != nil {
			t.Fatal(err)
		}
		g.SetBoundary(func(x, y float64) float64 { return x + y })
		b, err := sor.NewSimBackend(env, part, sor.IdentityMapping(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Run(g, sor.DefaultOmega, 20, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	capWeights := make([]float64, 4)
	for i, m := range ms {
		capWeights[i] = m.ElemRate
	}
	capPart, err := sor.NewWeightedPartition(n, capWeights)
	if err != nil {
		t.Fatal(err)
	}
	balPart, err := TimeBalancedPartition(n, ms, loads, link, 8)
	if err != nil {
		t.Fatal(err)
	}
	tc := run(capPart)
	tb := run(balPart)
	if tb >= tc {
		t.Errorf("time-balanced %.4fs should beat capacity-proportional %.4fs", tb, tc)
	}
}

func TestTimeBalancedRespectsLoads(t *testing.T) {
	// A heavily loaded fast machine should receive fewer rows than when
	// dedicated.
	ms := platform1Machines()
	link := cluster.Ethernet10Mbit()
	n := 200
	ded, err := TimeBalancedPartition(n, ms, dedicatedLoads(4), link, 8)
	if err != nil {
		t.Fatal(err)
	}
	loads := dedicatedLoads(4)
	loads[3] = stochastic.New(0.3, 0.05) // sparc10 at 30% availability
	loaded, err := TimeBalancedPartition(n, ms, loads, link, 8)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rows[3] >= ded.Rows[3] {
		t.Errorf("loaded machine rows %d should drop from %d", loaded.Rows[3], ded.Rows[3])
	}
}

func TestImbalanceValidation(t *testing.T) {
	ms := platform1Machines()
	link := cluster.Ethernet10Mbit()
	if _, err := Imbalance(nil, 100, ms, dedicatedLoads(4), link); err == nil {
		t.Error("nil partition should fail")
	}
	part, _ := sor.NewEqualPartition(100, 4)
	if _, err := Imbalance(part, 100, ms[:2], dedicatedLoads(4), link); err == nil {
		t.Error("length mismatch should fail")
	}
	v, err := Imbalance(part, 100, ms, dedicatedLoads(4), link)
	if err != nil || v < 1 {
		t.Errorf("imbalance=%g err=%v", v, err)
	}
}

func TestPromiseFor(t *testing.T) {
	v := stochastic.New(100, 20) // sigma 10
	p5, err := PromiseFor(v, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// 95th percentile of N(100,10) = 116.4.
	if math.Abs(p5-116.448) > 0.1 {
		t.Errorf("promise=%g want ~116.45", p5)
	}
	p50, err := PromiseFor(v, 0.5)
	if err != nil || math.Abs(p50-100) > 1e-9 {
		t.Errorf("median promise=%g err=%v", p50, err)
	}
	// Tighter tolerance -> later promise.
	p1, _ := PromiseFor(v, 0.01)
	if p1 <= p5 {
		t.Errorf("1%% promise %g should exceed 5%% promise %g", p1, p5)
	}
	if _, err := PromiseFor(v, 0); err == nil {
		t.Error("missProb=0 should fail")
	}
	if _, err := PromiseFor(v, 1); err == nil {
		t.Error("missProb=1 should fail")
	}
	// Point prediction: promise is the point.
	pp, err := PromiseFor(stochastic.Point(42), 0.05)
	if err != nil || pp != 42 {
		t.Errorf("point promise=%g err=%v", pp, err)
	}
}
