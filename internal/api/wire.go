package api

import (
	"fmt"

	"prodpred/internal/calib"
	"prodpred/internal/nws"
	"prodpred/internal/predict"
	"prodpred/internal/sched"
	"prodpred/internal/stochastic"
	"prodpred/internal/structural"
)

// PredictRequest is the wire form of predict.Request.
type PredictRequest struct {
	Platform     string  `json:"platform"`
	N            int     `json:"n"`
	Iterations   int     `json:"iterations"`
	Strategy     string  `json:"strategy"`      // mean | conservative | optimistic | balanced
	MaxStrategy  string  `json:"max_strategy"`  // mean | magnitude | probabilistic
	IterationRel string  `json:"iteration_rel"` // related | unrelated
	Advance      float64 `json:"advance"`       // optional virtual seconds to advance first
	// Level / Levels ask for central prediction intervals (each in (0,1))
	// read off the calibrated predictive distribution; the response answers
	// them in dist.intervals, Level first. The same request can also be made
	// per call with the ?level= / ?levels= query parameters.
	Level  float64   `json:"level,omitempty"`
	Levels []float64 `json:"levels,omitempty"`
}

// ToRequest translates the wire enums into the pipeline's typed strategies.
func (pr PredictRequest) ToRequest() (predict.Request, error) {
	req := predict.Request{
		Platform:   pr.Platform,
		N:          pr.N,
		Iterations: pr.Iterations,
	}
	if pr.Level != 0 {
		req.Levels = append(req.Levels, pr.Level)
	}
	req.Levels = append(req.Levels, pr.Levels...)
	switch pr.Strategy {
	case "", "mean":
		req.Strategy = sched.MeanBalanced
	case "conservative":
		req.Strategy = sched.Conservative
	case "optimistic":
		req.Strategy = sched.Optimistic
	case "balanced":
		req.TimeBalanced = true
	default:
		return req, fmt.Errorf("unknown strategy %q", pr.Strategy)
	}
	switch pr.MaxStrategy {
	case "", "mean":
		req.MaxStrategy = stochastic.LargestMean
	case "magnitude":
		req.MaxStrategy = stochastic.LargestMagnitude
	case "probabilistic":
		req.MaxStrategy = stochastic.Probabilistic
	default:
		return req, fmt.Errorf("unknown max_strategy %q", pr.MaxStrategy)
	}
	switch pr.IterationRel {
	case "", "related":
		req.IterationRel = structural.Related
	case "unrelated":
		req.IterationRel = structural.Unrelated
	default:
		return req, fmt.Errorf("unknown iteration_rel %q", pr.IterationRel)
	}
	return req, nil
}

// GapsJSON is the wire form of nws.GapStats.
type GapsJSON struct {
	Clean         int `json:"clean"`
	Recovered     int `json:"recovered"`
	Retries       int `json:"retries"`
	Dropped       int `json:"dropped"`
	Outage        int `json:"outage"`
	TransientLost int `json:"transient_lost"`
	SensorErrors  int `json:"sensor_errors"`
	Missed        int `json:"missed"`
	LongestGap    int `json:"longest_gap"`
}

func toGapsJSON(g nws.GapStats) GapsJSON {
	return GapsJSON{
		Clean: g.Clean, Recovered: g.Recovered, Retries: g.Retries,
		Dropped: g.Dropped, Outage: g.Outage, TransientLost: g.TransientLost,
		SensorErrors: g.SensorErrors, Missed: g.Missed, LongestGap: g.LongestGap,
	}
}

// ComponentJSON is the wire form of nws.Component: one Gaussian mixture
// component of a machine's predictive load distribution.
type ComponentJSON struct {
	Weight float64 `json:"weight"`
	Mean   float64 `json:"mean"`
	Sigma  float64 `json:"sigma"`
}

// LoadJSON is the wire form of predict.MachineReport.
type LoadJSON struct {
	Machine   int      `json:"machine"`
	Mean      float64  `json:"mean"`
	Spread    float64  `json:"spread"`
	Raw       float64  `json:"raw"`
	Staleness float64  `json:"staleness"`
	Widening  float64  `json:"widening"`
	Gaps      GapsJSON `json:"gaps"`
	// Forecaster tags which distribution forecaster produced this machine's
	// load distribution (tournament competitor, "fallback", "prior", or
	// "override"); Components is that distribution as a Gaussian mixture.
	Forecaster string          `json:"forecaster"`
	Components []ComponentJSON `json:"components,omitempty"`
}

func toLoadJSON(r predict.MachineReport) LoadJSON {
	l := LoadJSON{
		Machine: r.Machine, Mean: r.Load.Mean, Spread: r.Load.Spread,
		Raw: r.Raw, Staleness: r.Staleness, Widening: r.Widening,
		Gaps: toGapsJSON(r.Gaps), Forecaster: r.Forecaster,
	}
	for _, c := range r.Components {
		l.Components = append(l.Components, ComponentJSON{Weight: c.Weight, Mean: c.Mean, Sigma: c.Sigma})
	}
	return l
}

// DriftJSON is the wire form of calib.DriftEvent.
type DriftJSON struct {
	Time   float64 `json:"time"`
	Seq    int     `json:"seq"`
	Reason string  `json:"reason"`
	Stat   float64 `json:"stat"`
}

// AccuracyJSON is the wire form of calib.Snapshot — the online accuracy
// and calibration state the /accuracy and /report endpoints expose.
type AccuracyJSON struct {
	Observed             int         `json:"observed"`
	WindowFill           int         `json:"window_fill"`
	RawCapture           float64     `json:"raw_capture"`
	CalibratedCapture    float64     `json:"calibrated_capture"`
	CumRawCapture        float64     `json:"cum_raw_capture"`
	CumCalibratedCapture float64     `json:"cum_calibrated_capture"`
	MeanSignedRelErr     float64     `json:"mean_signed_rel_err"`
	MeanAbsRelErr        float64     `json:"mean_abs_rel_err"`
	MeanRawWidth         float64     `json:"mean_raw_width"`
	MeanCalibratedWidth  float64     `json:"mean_calibrated_width"`
	Scale                float64     `json:"scale"`
	Target               float64     `json:"target"`
	SinceReset           int         `json:"since_reset"`
	Drifts               []DriftJSON `json:"drifts,omitempty"`
	LastTime             float64     `json:"last_time"`
	// Per-quantile calibration state: the central interval levels the
	// calibrator maintains, the current two-sided multipliers (low/high tail,
	// 1 = uncalibrated), and the windowed probability-integral-transform
	// summary (MeanPIT near 0.5 means the distribution is centered).
	QuantileLevels  []float64 `json:"quantile_levels,omitempty"`
	QuantileScaleLo []float64 `json:"quantile_scale_lo,omitempty"`
	QuantileScaleHi []float64 `json:"quantile_scale_hi,omitempty"`
	// QuantileShift is the conformal median recentering term, as a fraction
	// of the predictive median (0 = unbiased or no evidence yet).
	QuantileShift float64 `json:"quantile_shift"`
	MeanPIT       float64 `json:"mean_pit"`
	PITCount      int     `json:"pit_count"`
}

func toAccuracyJSON(s calib.Snapshot) AccuracyJSON {
	a := AccuracyJSON{
		Observed: s.Observed, WindowFill: s.WindowFill,
		RawCapture: s.RawCapture, CalibratedCapture: s.CalibratedCapture,
		CumRawCapture: s.CumRawCapture, CumCalibratedCapture: s.CumCalibratedCapture,
		MeanSignedRelErr: s.MeanSignedRelErr, MeanAbsRelErr: s.MeanAbsRelErr,
		MeanRawWidth: s.MeanRawWidth, MeanCalibratedWidth: s.MeanCalibratedWidth,
		Scale: s.Scale, Target: s.Target, SinceReset: s.SinceReset,
		LastTime:       s.LastTime,
		QuantileLevels: s.QuantileLevels, QuantileScaleLo: s.QuantileScaleLo,
		QuantileScaleHi: s.QuantileScaleHi, QuantileShift: s.QuantileShift,
		MeanPIT: s.MeanPIT, PITCount: s.PITCount,
	}
	for _, d := range s.Drifts {
		a.Drifts = append(a.Drifts, DriftJSON{Time: d.Time, Seq: d.Seq, Reason: d.Reason, Stat: d.Stat})
	}
	return a
}

// IntervalJSON is the wire form of predict.Interval: one requested central
// prediction interval read off the calibrated predictive distribution.
type IntervalJSON struct {
	Level float64 `json:"level"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
}

// DistJSON is the wire form of predict.PredictionDist: the full predictive
// execution-time distribution behind the two-number mean/spread view.
type DistJSON struct {
	// Levels is the quantile grid, ascending; Raw and Calibrated are the
	// uncalibrated and per-level conformally calibrated execution-time
	// quantiles at those levels, in virtual seconds.
	Levels     []float64 `json:"levels"`
	Raw        []float64 `json:"raw"`
	Calibrated []float64 `json:"calibrated"`
	// Forecaster is the dominant per-machine distribution-forecaster tag.
	Forecaster string `json:"forecaster"`
	// Intervals answers the request's level/levels, in order.
	Intervals []IntervalJSON `json:"intervals,omitempty"`
}

func toDistJSON(d predict.PredictionDist) *DistJSON {
	if len(d.Calibrated) == 0 {
		return nil
	}
	dj := &DistJSON{
		Levels: d.Levels, Raw: d.Raw, Calibrated: d.Calibrated,
		Forecaster: d.Forecaster,
	}
	for _, iv := range d.Intervals {
		dj.Intervals = append(dj.Intervals, IntervalJSON{Level: iv.Level, Lo: iv.Lo, Hi: iv.Hi})
	}
	return dj
}

// PredictResponse is the wire form of predict.Prediction.
type PredictResponse struct {
	Platform string  `json:"platform"`
	Time     float64 `json:"time"`
	// ID names this prediction for the POST /observe feedback call.
	ID     uint64  `json:"id"`
	Mean   float64 `json:"mean"`
	Spread float64 `json:"spread"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	// RawSpread is the uncalibrated half-width; Spread is RawSpread ×
	// CalibrationScale (the mean is never rescaled).
	RawSpread        float64    `json:"raw_spread"`
	CalibrationScale float64    `json:"calibration_scale"`
	Degraded         bool       `json:"degraded"`
	PartitionRows    []int      `json:"partition_rows"`
	Loads            []LoadJSON `json:"loads"`
	BWMean           float64    `json:"bw_mean"`
	BWSpread         float64    `json:"bw_spread"`
	BWGaps           GapsJSON   `json:"bw_gaps"`
	// Dist is the distribution-valued prediction (quantile grid, forecaster
	// tag, requested intervals); omitted only when the pipeline produced no
	// grid (never, in the current serving path).
	Dist *DistJSON `json:"dist,omitempty"`
}

// BatchPredictRequest is the POST /predict/batch payload: up to
// MaxBatchSize independent predict requests answered in one round trip.
// Requests may target different platforms; each platform's group is
// resolved in a single shared-clock visit, so repeated request shapes
// within one virtual tick share a single pipeline evaluation.
type BatchPredictRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchPredictItem is one positional result in a batch response: either an
// embedded PredictResponse or an error string, never both.
type BatchPredictItem struct {
	*PredictResponse
	Error string `json:"error,omitempty"`
}

// BatchPredictResponse is the POST /predict/batch payload: one item per
// request, in request order, plus the count of failed items.
type BatchPredictResponse struct {
	Responses []BatchPredictItem `json:"responses"`
	Errors    int                `json:"errors"`
}

// MaxBatchSize bounds one POST /predict/batch call.
const MaxBatchSize = 1024

// ReportResponse is the GET /report payload: one platform's monitor
// reports plus its calibration state.
type ReportResponse struct {
	Platform    string       `json:"platform"`
	Time        float64      `json:"time"`
	Loads       []LoadJSON   `json:"loads"`
	Calibration AccuracyJSON `json:"calibration"`
	Outstanding int          `json:"outstanding"`
}

// ObserveRequest closes the loop on one prediction: the platform that
// issued it, the prediction id, and the measured runtime in seconds.
type ObserveRequest struct {
	Platform string  `json:"platform"`
	ID       uint64  `json:"id"`
	Actual   float64 `json:"actual"`
}

// ObserveResponse acknowledges an observation with the platform's updated
// accuracy state.
type ObserveResponse struct {
	Platform string       `json:"platform"`
	Accuracy AccuracyJSON `json:"accuracy"`
}

// AccuracyPlatform is one platform's entry in the GET /accuracy payload.
type AccuracyPlatform struct {
	Platform    string       `json:"platform"`
	Time        float64      `json:"time"`
	Outstanding int          `json:"outstanding"`
	Accuracy    AccuracyJSON `json:"accuracy"`
}

// AccuracyResponse is the GET /accuracy payload.
type AccuracyResponse struct {
	Platforms []AccuracyPlatform `json:"platforms"`
}

// HealthMachine is one machine's entry in the GET /healthz payload.
type HealthMachine struct {
	Machine   int      `json:"machine"`
	Staleness float64  `json:"staleness"`
	Gaps      GapsJSON `json:"gaps"`
}

// HealthPlatform is one platform's entry in the GET /healthz payload.
type HealthPlatform struct {
	Platform string          `json:"platform"`
	Time     float64         `json:"time"`
	Degraded bool            `json:"degraded"`
	Machines []HealthMachine `json:"machines"`
	BWGaps   GapsJSON        `json:"bw_gaps"`
}

// HealthResponse is the GET /healthz payload.
type HealthResponse struct {
	Status    string           `json:"status"` // ok | degraded
	Platforms []HealthPlatform `json:"platforms"`
}

// AdvanceRequest is the POST /advance payload: a manual virtual-clock step
// for one platform (or all, when Platform is empty).
type AdvanceRequest struct {
	Platform string  `json:"platform"`
	Seconds  float64 `json:"seconds"`
}

// MaxScheduleJobs bounds one POST /schedule submission.
const MaxScheduleJobs = 256

// ScheduleJob is one job in a POST /schedule body.
type ScheduleJob struct {
	// Name optionally labels the job in /schedule/status listings.
	Name string `json:"name,omitempty"`
	// N is the SOR grid size (N x N); Iterations the iteration count.
	N          int `json:"n"`
	Iterations int `json:"iterations"`
	// Deadline is an optional absolute virtual-seconds completion
	// deadline on the fleet's shared timeline (0 = none).
	Deadline float64 `json:"deadline,omitempty"`
}

// ScheduleRequest is the POST /schedule body: jobs to place, plus an
// optional per-request policy override.
type ScheduleRequest struct {
	Jobs []ScheduleJob `json:"jobs"`
	// Policy overrides the daemon's placement policy for this round:
	// "mean", "quantile", or "upper" (empty = daemon default).
	Policy string `json:"policy,omitempty"`
	// Quantile overrides the placement quantile, in (0,1) (0 = daemon
	// default).
	Quantile float64 `json:"quantile,omitempty"`
}

// PlacementJSON reports where one job landed.
type PlacementJSON struct {
	JobID         uint64  `json:"job_id"`
	Name          string  `json:"name,omitempty"`
	Tenant        string  `json:"tenant"`
	Policy        string  `json:"policy"`
	Quantile      float64 `json:"quantile"`
	Score         float64 `json:"score"`
	PredictedMean float64 `json:"predicted_mean"`
	PredictedExec float64 `json:"predicted_exec"`
	PredictionID  uint64  `json:"prediction_id"`
	Time          float64 `json:"time"`
	Deadline      float64 `json:"deadline,omitempty"`
	Skips         int     `json:"skips,omitempty"`
}

// ScheduleResponse answers POST /schedule.
type ScheduleResponse struct {
	Policy     string          `json:"policy"`
	Quantile   float64         `json:"quantile"`
	Placements []PlacementJSON `json:"placements"`
	// Unplaced counts submitted jobs no tenant could be scored for
	// (they are dropped, not queued).
	Unplaced int `json:"unplaced"`
}
